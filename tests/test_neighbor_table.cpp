#include "net/neighbor_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/topology.h"

namespace agilla::net {
namespace {

/// A full grid of link layers + neighbour tables.
struct Mesh {
  sim::Simulator sim{55};
  sim::Network net;
  sim::Topology topo;
  std::vector<std::unique_ptr<LinkLayer>> links;
  std::vector<std::unique_ptr<NeighborTable>> tables;

  Mesh(std::size_t w, std::size_t h,
       NeighborTable::Options options = NeighborTable::Options())
      : net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0})) {
    topo = sim::make_grid(net, w, h);
    for (sim::NodeId id : topo.nodes) {
      links.push_back(std::make_unique<LinkLayer>(net, id));
      tables.push_back(std::make_unique<NeighborTable>(
          net, *links.back(), net.info(id).location, options));
      links.back()->attach();
      tables.back()->start();
    }
  }
};

TEST(NeighborTable, DiscoversGridNeighbors) {
  Mesh mesh(3, 3);
  mesh.sim.run_for(5 * sim::kSecond);
  // Corner node 0 hears 2 neighbours; center node 4 hears 4.
  EXPECT_EQ(mesh.tables[0]->size(), 2u);
  EXPECT_EQ(mesh.tables[4]->size(), 4u);
}

TEST(NeighborTable, EntriesSortedById) {
  Mesh mesh(3, 3);
  mesh.sim.run_for(5 * sim::kSecond);
  const auto& entries = mesh.tables[4]->entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].id, entries[i].id);
  }
}

TEST(NeighborTable, ByIndexAndById) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  const auto by_index = mesh.tables[0]->by_index(0);
  ASSERT_TRUE(by_index.has_value());
  EXPECT_EQ(by_index->id, mesh.topo.nodes[1]);
  EXPECT_TRUE(mesh.tables[0]->by_id(mesh.topo.nodes[1]).has_value());
  EXPECT_FALSE(mesh.tables[0]->by_id(sim::NodeId{99}).has_value());
  EXPECT_FALSE(mesh.tables[0]->by_index(5).has_value());
}

TEST(NeighborTable, RandomNeighborFromPopulatedTable) {
  Mesh mesh(3, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  sim::Rng rng(1);
  const auto pick = mesh.tables[1]->random(rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(pick->id == mesh.topo.nodes[0] ||
              pick->id == mesh.topo.nodes[2]);
}

TEST(NeighborTable, RandomFromEmptyIsNull) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0});
  sim::Rng rng(1);
  EXPECT_FALSE(table.random(rng).has_value());
}

TEST(NeighborTable, ClosestToPrefersNearerNeighbor) {
  Mesh mesh(3, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  // Node 0 at (1,1); neighbours discovered: node 1 at (2,1).
  const auto toward = mesh.tables[1]->closest_to({10, 1});
  ASSERT_TRUE(toward.has_value());
  EXPECT_EQ(toward->id, mesh.topo.nodes[2]);
}

TEST(NeighborTable, DeadNeighborExpires) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  // Kill node 1's radio; its beacons stop and the entry ages out.
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.tables[0]->size(), 0u);
}

TEST(NeighborTable, ManualInsertAndUpdate) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0});
  table.insert(sim::NodeId{5}, {1, 0});
  table.insert(sim::NodeId{5}, {2, 0});  // update, not duplicate
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.by_id(sim::NodeId{5})->location, (sim::Location{2, 0}));
}

TEST(NeighborTable, CapacityEvictsStalest) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0},
                      NeighborTable::Options{.capacity = 2});
  table.insert(sim::NodeId{1}, {1, 0});
  sim.run_for(1);
  table.insert(sim::NodeId{2}, {2, 0});
  sim.run_for(1);
  table.insert(sim::NodeId{3}, {3, 0});  // evicts node 1 (stalest)
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.by_id(sim::NodeId{1}).has_value());
  EXPECT_TRUE(table.by_id(sim::NodeId{3}).has_value());
}

TEST(NeighborTable, BeaconCarriesEnergyStateToListeners) {
  Mesh mesh(2, 1);
  // Node 1 advertises a half-full battery and a 10-unit check period.
  mesh.tables[1]->set_self_state([] {
    return BeaconSelfState{/*residual=*/128, /*period_units=*/10};
  });
  mesh.sim.run_for(3 * sim::kSecond);
  const auto entry = mesh.tables[0]->by_id(mesh.topo.nodes[1]);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->residual, 128);
  EXPECT_EQ(entry->period_units, 10);
  EXPECT_NEAR(entry->residual_frac(), 0.5, 0.01);
  // The sender sizes a unicast preamble from the advertised period.
  const auto ext = mesh.tables[0]->preamble_extension_for(
      mesh.topo.nodes[1], 8 * sim::kMillisecond);
  ASSERT_TRUE(ext.has_value());
  EXPECT_EQ(*ext, 9 * 8 * sim::kMillisecond);
  // An unknown destination falls back to the sender's own schedule.
  EXPECT_FALSE(mesh.tables[0]
                   ->preamble_extension_for(sim::NodeId{77},
                                            8 * sim::kMillisecond)
                   .has_value());
}

TEST(NeighborTable, SuppressionBacksBeaconsOffWhileStable) {
  Mesh mesh(2, 1, NeighborTable::Options{.suppression = true});
  // Discovery settles in the first seconds; after that the table is
  // stable and the period walks 1 s -> 8 s.
  mesh.sim.run_for(10 * sim::kSecond);
  const auto early =
      mesh.net.stats().sent_by_type[sim::AmType::kBeacon];
  mesh.sim.run_for(40 * sim::kSecond);
  const auto late =
      mesh.net.stats().sent_by_type[sim::AmType::kBeacon] - early;
  // 40 s at the 8 s backed-off period: ~5 beacons per node, far below
  // the 40 an unsuppressed node would send.
  EXPECT_LE(late, 2 * 8u);
  EXPECT_GE(late, 2 * 3u);
  EXPECT_EQ(mesh.tables[0]->current_beacon_interval(), 8 * sim::kSecond);
}

TEST(NeighborTable, SuppressedTableStillEvictsTheDead) {
  Mesh mesh(2, 1, NeighborTable::Options{.suppression = true});
  mesh.sim.run_for(40 * sim::kSecond);  // fully backed off
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  // The victim advertised the 8 s interval, so eviction takes up to
  // 3 * 8 s plus a sweep period — well before 30 s.
  mesh.sim.run_for(30 * sim::kSecond);
  EXPECT_EQ(mesh.tables[0]->size(), 0u);
}

TEST(NeighborTable, ResidualDropResetsTheBackoff) {
  Mesh mesh(2, 1, NeighborTable::Options{.suppression = true});
  std::uint8_t residual = 255;
  mesh.tables[1]->set_self_state([&residual] {
    return BeaconSelfState{residual, 1};
  });
  mesh.sim.run_for(40 * sim::kSecond);
  ASSERT_EQ(mesh.tables[1]->current_beacon_interval(), 8 * sim::kSecond);
  // A >= 5 % drop per beacon is material: while the relay keeps
  // draining, every beacon resets the backoff, so the period stays at
  // the base and listeners track the residual closely.
  for (int i = 0; i < 12; ++i) {
    residual = static_cast<std::uint8_t>(residual - 15);
    mesh.sim.run_for(1 * sim::kSecond);
  }
  EXPECT_EQ(mesh.tables[1]->current_beacon_interval(), 1 * sim::kSecond);
  const auto entry = mesh.tables[0]->by_id(mesh.topo.nodes[1]);
  ASSERT_TRUE(entry.has_value());
  // The listener's copy is at most a couple of beacons stale.
  EXPECT_LE(static_cast<int>(entry->residual) -
                static_cast<int>(residual),
            3 * 15);
}

TEST(NeighborTable, PiggybackRefreshesEntriesWithoutBeacons) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  // Silence node 1's beacons entirely; wire its piggyback through the
  // link layer the way the middleware does under suppression.
  mesh.tables[1]->stop();
  mesh.links[1]->set_piggyback(
      [&] { return mesh.tables[1]->make_piggyback(); },
      [&](sim::NodeId from, std::span<const std::uint8_t> bytes) {
        mesh.tables[1]->on_piggyback(from, bytes);
      });
  mesh.links[0]->set_piggyback(
      nullptr, [&](sim::NodeId from, std::span<const std::uint8_t> bytes) {
        mesh.tables[0]->on_piggyback(from, bytes);
      });
  // Data traffic from the silent node keeps its entry alive at node 0
  // long past the 3-period expiry horizon.
  for (int second = 0; second < 12; ++second) {
    mesh.links[1]->send_unacked(mesh.topo.nodes[0], sim::AmType::kTsRequest,
                                {1, 2, 3});
    mesh.sim.run_for(1 * sim::kSecond);
  }
  EXPECT_TRUE(mesh.tables[0]->by_id(mesh.topo.nodes[1]).has_value());
}

TEST(NeighborTable, DiscoveryHandlerFiresOnNewEntriesOnly) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0});
  int discoveries = 0;
  table.set_discovery_handler(
      [&](sim::NodeId, sim::Location) { ++discoveries; });
  table.insert(sim::NodeId{5}, {1, 0});
  table.insert(sim::NodeId{5}, {2, 0});  // refresh, not a discovery
  EXPECT_EQ(discoveries, 1);
  table.insert(sim::NodeId{6}, {3, 0});
  EXPECT_EQ(discoveries, 2);
}

TEST(NeighborTable, StopHaltsBeaconing) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  mesh.tables[0]->stop();
  mesh.tables[1]->stop();
  const auto sent = mesh.net.stats().sent_by_type[sim::AmType::kBeacon];
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(mesh.net.stats().sent_by_type[sim::AmType::kBeacon], sent);
}

}  // namespace
}  // namespace agilla::net

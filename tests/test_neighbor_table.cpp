#include "net/neighbor_table.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/topology.h"

namespace agilla::net {
namespace {

/// A full grid of link layers + neighbour tables.
struct Mesh {
  sim::Simulator sim{55};
  sim::Network net;
  sim::Topology topo;
  std::vector<std::unique_ptr<LinkLayer>> links;
  std::vector<std::unique_ptr<NeighborTable>> tables;

  Mesh(std::size_t w, std::size_t h,
       NeighborTable::Options options = NeighborTable::Options())
      : net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0})) {
    topo = sim::make_grid(net, w, h);
    for (sim::NodeId id : topo.nodes) {
      links.push_back(std::make_unique<LinkLayer>(net, id));
      tables.push_back(std::make_unique<NeighborTable>(
          net, *links.back(), net.info(id).location, options));
      links.back()->attach();
      tables.back()->start();
    }
  }
};

TEST(NeighborTable, DiscoversGridNeighbors) {
  Mesh mesh(3, 3);
  mesh.sim.run_for(5 * sim::kSecond);
  // Corner node 0 hears 2 neighbours; center node 4 hears 4.
  EXPECT_EQ(mesh.tables[0]->size(), 2u);
  EXPECT_EQ(mesh.tables[4]->size(), 4u);
}

TEST(NeighborTable, EntriesSortedById) {
  Mesh mesh(3, 3);
  mesh.sim.run_for(5 * sim::kSecond);
  const auto& entries = mesh.tables[4]->entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].id, entries[i].id);
  }
}

TEST(NeighborTable, ByIndexAndById) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  const auto by_index = mesh.tables[0]->by_index(0);
  ASSERT_TRUE(by_index.has_value());
  EXPECT_EQ(by_index->id, mesh.topo.nodes[1]);
  EXPECT_TRUE(mesh.tables[0]->by_id(mesh.topo.nodes[1]).has_value());
  EXPECT_FALSE(mesh.tables[0]->by_id(sim::NodeId{99}).has_value());
  EXPECT_FALSE(mesh.tables[0]->by_index(5).has_value());
}

TEST(NeighborTable, RandomNeighborFromPopulatedTable) {
  Mesh mesh(3, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  sim::Rng rng(1);
  const auto pick = mesh.tables[1]->random(rng);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(pick->id == mesh.topo.nodes[0] ||
              pick->id == mesh.topo.nodes[2]);
}

TEST(NeighborTable, RandomFromEmptyIsNull) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0});
  sim::Rng rng(1);
  EXPECT_FALSE(table.random(rng).has_value());
}

TEST(NeighborTable, ClosestToPrefersNearerNeighbor) {
  Mesh mesh(3, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  // Node 0 at (1,1); neighbours discovered: node 1 at (2,1).
  const auto toward = mesh.tables[1]->closest_to({10, 1});
  ASSERT_TRUE(toward.has_value());
  EXPECT_EQ(toward->id, mesh.topo.nodes[2]);
}

TEST(NeighborTable, DeadNeighborExpires) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_EQ(mesh.tables[0]->size(), 1u);
  // Kill node 1's radio; its beacons stop and the entry ages out.
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.tables[0]->size(), 0u);
}

TEST(NeighborTable, ManualInsertAndUpdate) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0});
  table.insert(sim::NodeId{5}, {1, 0});
  table.insert(sim::NodeId{5}, {2, 0});  // update, not duplicate
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.by_id(sim::NodeId{5})->location, (sim::Location{2, 0}));
}

TEST(NeighborTable, CapacityEvictsStalest) {
  sim::Simulator sim{1};
  sim::Network net(sim, std::make_unique<sim::PerfectRadio>());
  const sim::NodeId id = net.add_node({0, 0});
  LinkLayer link(net, id);
  NeighborTable table(net, link, {0, 0},
                      NeighborTable::Options{.capacity = 2});
  table.insert(sim::NodeId{1}, {1, 0});
  sim.run_for(1);
  table.insert(sim::NodeId{2}, {2, 0});
  sim.run_for(1);
  table.insert(sim::NodeId{3}, {3, 0});  // evicts node 1 (stalest)
  EXPECT_EQ(table.size(), 2u);
  EXPECT_FALSE(table.by_id(sim::NodeId{1}).has_value());
  EXPECT_TRUE(table.by_id(sim::NodeId{3}).has_value());
}

TEST(NeighborTable, StopHaltsBeaconing) {
  Mesh mesh(2, 1);
  mesh.sim.run_for(3 * sim::kSecond);
  mesh.tables[0]->stop();
  mesh.tables[1]->stop();
  const auto sent = mesh.net.stats().sent_by_type[sim::AmType::kBeacon];
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(mesh.net.stats().sent_by_type[sim::AmType::kBeacon], sent);
}

}  // namespace
}  // namespace agilla::net

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace agilla::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().callback();
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, NextTimeReportsHead) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle handle = q.schedule(10, [&] { fired = true; });
  q.schedule(20, [] {});
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  int popped = 0;
  while (!q.empty()) {
    q.pop().callback();
    ++popped;
  }
  EXPECT_FALSE(fired);
  EXPECT_EQ(popped, 1);
}

TEST(EventQueue, CancelHeadUpdatesEmptyAndNextTime) {
  EventQueue q;
  EventHandle head = q.schedule(5, [] {});
  q.schedule(50, [] {});
  head.cancel();
  EXPECT_EQ(q.next_time(), 50u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAllLeavesQueueEmpty) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (auto& h : handles) {
    h.cancel();
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(1, [] {});
  q.pop().callback();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
  h.cancel();
}

TEST(EventQueue, PendingReflectsState) {
  EventQueue q;
  EventHandle h = q.schedule(1, [] {});
  EXPECT_TRUE(h.pending());
  q.pop();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no crash
}

}  // namespace
}  // namespace agilla::sim

#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/topology.h"

namespace agilla::sim {
namespace {

struct NetFixture {
  Simulator sim{1234};
  Network net;

  explicit NetFixture(double loss = 0.0, RadioTiming timing = RadioTiming())
      : net(sim,
            std::make_unique<GridNeighborRadio>(
                GridNeighborRadio::Options{.spacing = 1.0,
                                           .packet_loss = loss}),
            timing) {}
};

TEST(RadioTiming, AirTimeMatchesBitrate) {
  RadioTiming timing;
  // 36-byte payload + 7-byte header = 43 bytes = 344 bits at 38.4 kbps
  // ~= 8958 us, plus the per-packet MAC overhead.
  const SimTime t = timing.air_time(36);
  EXPECT_EQ(t, timing.per_packet_overhead + 8958);
}

TEST(RadioTiming, LargerFramesTakeLonger) {
  RadioTiming timing;
  EXPECT_LT(timing.air_time(4), timing.air_time(40));
}

TEST(Network, UnicastDeliversToNeighbor) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  std::vector<std::uint8_t> received;
  f.net.set_receiver(b, [&](const Frame& frame) {
    received = frame.payload;
  });
  f.net.send(Frame{a, b, AmType::kBeacon, {1, 2, 3}});
  f.sim.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(f.net.stats().frames_delivered, 1u);
}

TEST(Network, DeliveryTakesAirTime) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  SimTime arrival = 0;
  f.net.set_receiver(b, [&](const Frame&) { arrival = f.sim.now(); });
  f.net.send(Frame{a, b, AmType::kBeacon, {0}});
  f.sim.run();
  EXPECT_GE(arrival, f.net.timing().air_time(1));
}

TEST(Network, NonNeighborUnreachable) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  f.net.add_node({2, 1});
  const NodeId c = f.net.add_node({3, 1});
  bool received = false;
  f.net.set_receiver(c, [&](const Frame&) { received = true; });
  f.net.send(Frame{a, c, AmType::kBeacon, {}});
  f.sim.run();
  EXPECT_FALSE(received);
  EXPECT_EQ(f.net.stats().frames_unreachable, 1u);
}

TEST(Network, BroadcastReachesAllNeighbors) {
  NetFixture f;
  make_grid(f.net, 3, 3);
  const NodeId center{4};  // middle of a 3x3 row-major grid
  int deliveries = 0;
  for (std::uint16_t i = 0; i < 9; ++i) {
    f.net.set_receiver(NodeId{i}, [&](const Frame&) { ++deliveries; });
  }
  f.net.send(Frame{center, kBroadcastNode, AmType::kBeacon, {}});
  f.sim.run();
  EXPECT_EQ(deliveries, 4);  // 4-connected center has 4 neighbours
}

TEST(Network, TransmissionsSerializePerNode) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  std::vector<SimTime> arrivals;
  f.net.set_receiver(b, [&](const Frame&) {
    arrivals.push_back(f.sim.now());
  });
  f.net.send(Frame{a, b, AmType::kBeacon, {0}});
  f.net.send(Frame{a, b, AmType::kBeacon, {1}});
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // The second frame waits for the first to finish transmitting.
  EXPECT_GE(arrivals[1] - arrivals[0], f.net.timing().air_time(1) -
                                           f.net.timing().max_jitter);
}

TEST(Network, LossyChannelDropsRoughlyAtConfiguredRate) {
  NetFixture f(0.3);
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  int received = 0;
  f.net.set_receiver(b, [&](const Frame&) { ++received; });
  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    f.net.send(Frame{a, b, AmType::kBeacon, {}});
  }
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(received) / kFrames, 0.7, 0.05);
  EXPECT_EQ(f.net.stats().frames_lost + f.net.stats().frames_delivered,
            static_cast<std::uint64_t>(kFrames));
}

TEST(Network, DisabledRadioNeitherSendsNorReceives) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  bool received = false;
  f.net.set_receiver(b, [&](const Frame&) { received = true; });

  f.net.set_radio_enabled(b, false);
  f.net.send(Frame{a, b, AmType::kBeacon, {}});
  f.sim.run();
  EXPECT_FALSE(received);

  f.net.set_radio_enabled(b, true);
  f.net.set_radio_enabled(a, false);
  f.net.send(Frame{a, b, AmType::kBeacon, {}});
  f.sim.run();
  EXPECT_FALSE(received);  // sender stalled

  // Re-enabling flushes the queued frame.
  f.net.set_radio_enabled(a, true);
  f.sim.run();
  EXPECT_TRUE(received);
}

TEST(Network, StatsCountByType) {
  NetFixture f;
  const NodeId a = f.net.add_node({1, 1});
  const NodeId b = f.net.add_node({2, 1});
  f.net.set_receiver(b, [](const Frame&) {});
  f.net.send(Frame{a, b, AmType::kBeacon, {}});
  f.net.send(Frame{a, b, AmType::kTsRequest, {}});
  f.net.send(Frame{a, b, AmType::kTsRequest, {}});
  f.sim.run();
  EXPECT_EQ(f.net.stats().sent_by_type.at(AmType::kBeacon), 1u);
  EXPECT_EQ(f.net.stats().sent_by_type.at(AmType::kTsRequest), 2u);
  EXPECT_EQ(f.net.stats().frames_sent, 3u);
}

TEST(Network, ConnectedNeighborsMatchesGrid) {
  NetFixture f;
  const Topology topo = make_grid(f.net, 5, 5);
  // Corner (1,1) = index 0 has 2 neighbours; center (3,3) = index 12 has 4.
  EXPECT_EQ(f.net.connected_neighbors(topo.nodes[0]).size(), 2u);
  EXPECT_EQ(f.net.connected_neighbors(topo.nodes[12]).size(), 4u);
}

}  // namespace
}  // namespace agilla::sim

// Agent migration: smove/wmove/sclone/wclone over one and multiple hops,
// strong vs weak state transfer, failure handling and custody semantics.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

bool has_string_tuple(AgillaMiddleware& node, const std::string& tag) {
  return node.tuple_space()
      .rdp(ts::Template{ts::Value::string(tag)})
      .has_value();
}

bool has_mark(AgillaMiddleware& node, const std::string& tag) {
  return node.tuple_space()
      .rdp(ts::Template{ts::Value::string(tag),
                        ts::Value::type_wildcard(ts::ValueType::kLocation)})
      .has_value();
}

TEST(Migration, SMoveOneHop) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      smove
      pushn arr
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(has_string_tuple(mesh.at(1), "arr"));
  EXPECT_FALSE(has_string_tuple(mesh.at(0), "arr"));
  EXPECT_EQ(mesh.at(0).agents().count(), 0u);
  // The origin's code pool was freed after the move.
  EXPECT_EQ(mesh.at(0).code_pool().used_blocks(), 0u);
}

TEST(Migration, SMoveCarriesStackHeapAndId) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  const auto id = mesh.at(0).inject(assemble_or_die(R"(
      pushc 42
      setvar 0       // heap survives strong move
      pushc 7        // stack survives strong move
      pushloc 2 1
      smove
      getvar 0
      add            // 7 + 42
      aid
      swap
      pushc 2
      out            // <agent-id, 49>
      halt
  )"));
  ASSERT_TRUE(id.has_value());
  mesh.sim.run_for(3 * sim::kSecond);
  const auto t = mesh.at(1).tuple_space().rdp(ts::Template{
      ts::Value::agent_id(id->value), ts::Value::number(49)});
  EXPECT_TRUE(t.has_value());  // same id, same state: strong semantics
}

TEST(Migration, SMoveConditionOneOnArrival) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      smove
      cpush
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  const auto t = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::number(1)});
  EXPECT_TRUE(t.has_value());
}

TEST(Migration, WMoveRestartsFromPcZero) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  // The agent marks every node where it (re)starts; weak moves restart at
  // BEGIN, so both nodes end up marked.
  mesh.at(0).inject(assemble_or_die(R"(
      BEGIN pushn mrk
            loc
            pushc 2
            out            // mark every node where we (re)start
            loc
            pushloc 2 1
            ceq
            rjumpc DONE    // reached the destination: stop
            pushloc 2 1
            wmove          // weak: restarts at BEGIN on the next node
      DONE  halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  // Mark exists on both nodes (restarted from the top at node 2).
  EXPECT_TRUE(has_mark(mesh.at(0), "mrk"));
  EXPECT_TRUE(has_mark(mesh.at(1), "mrk"));
}

TEST(Migration, WMoveToSelfOfAgentAtDestIsNoOp) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  // Moving to its own location: cond=1 and execution continues (no-op).
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 1 1
      smove
      cpush
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(2 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::number(1)});
  EXPECT_TRUE(t.has_value());
}

TEST(Migration, SCloneRunsOnBothNodes) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      sclone
      pushn her
      loc
      pushc 2
      out          // both copies record where they are
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("her"),
                                    ts::Value::location({1, 1})})
                  .has_value());
  EXPECT_TRUE(mesh.at(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("her"),
                                    ts::Value::location({2, 1})})
                  .has_value());
}

TEST(Migration, CloneGetsFreshIdOriginalKeepsItsOwn) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  const auto original = mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      sclone
      aid
      pushc 1
      out
      halt
  )"));
  ASSERT_TRUE(original.has_value());
  mesh.sim.run_for(3 * sim::kSecond);
  const auto at_origin = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kAgentId)});
  const auto at_dest = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kAgentId)});
  ASSERT_TRUE(at_origin.has_value());
  ASSERT_TRUE(at_dest.has_value());
  EXPECT_EQ(at_origin->field(0).as_agent_id(), original->value);
  EXPECT_NE(at_dest->field(0).as_agent_id(), original->value);
}

TEST(Migration, CloneConditionsDistinguishCopies) {
  // Clone at dest: condition 1. Original after success: condition 2.
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      sclone
      cpush
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  const auto orig = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::number(2)});
  const auto clone = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::number(1)});
  EXPECT_TRUE(orig.has_value());
  EXPECT_TRUE(clone.has_value());
}

TEST(Migration, WCloneResetsState) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      BEGIN getvar 0
            pushc 1
            ceq
            rjumpc SECOND   // heap survived: weak semantics were violated
            loc
            pushloc 2 1
            ceq
            rjumpc DONE     // the clone, restarted at the destination
            pushc 1
            setvar 0
            pushloc 2 1
            wclone          // weak clone: restarts at BEGIN, fresh heap
      DONE  halt
      SECOND pushn bad
            pushc 1
            out             // only reachable if heap survived (it must not)
            halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_FALSE(has_string_tuple(mesh.at(1), "bad"));
  EXPECT_FALSE(has_string_tuple(mesh.at(0), "bad"));
}

TEST(Migration, MultiHopSMoveAcrossLine) {
  AgillaMesh mesh(MeshOptions{.width = 5, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 5 1
      smove
      pushn arr
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(6 * sim::kSecond);
  EXPECT_TRUE(has_string_tuple(mesh.at(4), "arr"));
  // Intermediate nodes hosted the agent only transiently.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mesh.at(static_cast<std::size_t>(i)).agents().count(), 0u);
  }
}

TEST(Migration, PaperFig8RoundTrip) {
  AgillaMesh mesh(MeshOptions{.width = 5, .height = 1});
  mesh.warm();
  mesh.at(0).inject(
      assemble_or_die(agents::smove_round_trip({5, 1}, {1, 1})));
  mesh.sim.run_for(10 * sim::kSecond);
  // Made it there and back, then halted; nothing remains anywhere.
  EXPECT_EQ(mesh.total_agents(), 0u);
  EXPECT_GE(mesh.at(0).engine().stats().agents_installed, 1u);
}

TEST(Migration, StrongMoveCarriesReactions) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushn key
      pushc 1
      pushc HIT
      regrxn
      pushloc 2 1
      smove
      wait
      HIT pop
      pushn oky
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  // Reaction moved with the agent: origin registry empty, dest has it.
  EXPECT_EQ(mesh.at(0).tuple_space().reactions().size(), 0u);
  ASSERT_EQ(mesh.at(1).tuple_space().reactions().size(), 1u);
  mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::string("key")});
  mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(has_string_tuple(mesh.at(1), "oky"));
}

TEST(Migration, NoRouteFailsWithConditionZero) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc -9 1
      smove
      cpush
      pushn cnd
      swap
      pushc 2
      out          // <"cnd", condition>
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(ts::Template{
      ts::Value::string("cnd"), ts::Value::number(0)});
  EXPECT_TRUE(t.has_value());
  EXPECT_EQ(mesh.at(0).engine().stats().migrations_failed, 1u);
}

TEST(Migration, DeadNextHopResumesSenderWithConditionZero) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  // Kill node 1 AFTER warmup so node 0 still believes it has a route.
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 3 1
      smove
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(0)})
                  .has_value());
  // The agent was not lost: it still ran to completion at the origin.
  EXPECT_EQ(mesh.total_agents(), 0u);
}

TEST(Migration, ArrivalRejectedWhenAgentSlotsFull) {
  core::AgillaConfig config;
  config.agents.max_agents = 1;
  AgillaMesh mesh(MeshOptions{
      .width = 2, .height = 1, .config = config});
  mesh.warm();
  // Fill node 1's only slot with a sleeper.
  mesh.at(1).inject(
      assemble_or_die("LOOP pushcl 800\nsleep\nrjump LOOP"));
  mesh.sim.run_for(500 * sim::kMillisecond);
  mesh.at(0).inject(assemble_or_die(agents::move_once("smove", {2, 1})));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(mesh.at(1).engine().stats().agents_rejected, 1u);
  EXPECT_EQ(mesh.at(1).agents().count(), 1u);  // just the sleeper
}

TEST(Migration, MigrationTimeIsHundredsOfMilliseconds) {
  // Paper Sec. 4: one-hop migration ~0.3 s at minimum cadence.
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  const sim::SimTime start = mesh.sim.now();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      smove
      pushn arr
      pushc 1
      out
      halt
  )"));
  // Find the arrival time by polling.
  sim::SimTime arrival = 0;
  for (int step = 0; step < 300; ++step) {
    mesh.sim.run_for(10 * sim::kMillisecond);
    if (has_string_tuple(mesh.at(1), "arr")) {
      arrival = mesh.sim.now();
      break;
    }
  }
  ASSERT_GT(arrival, 0u);
  const sim::SimTime elapsed = arrival - start;
  EXPECT_GT(elapsed, 80 * sim::kMillisecond);
  EXPECT_LT(elapsed, 600 * sim::kMillisecond);
}

}  // namespace
}  // namespace agilla::core

// Cross-backend conformance: the same operation sequence driven through
// StoreKind::kLinear and StoreKind::kIndexed via the make_store() seam must
// produce identical observable results, and each backend must honour the
// last_op_bytes_touched() contract documented in store_interface.h
// (insert = record bytes written; probes = record bytes of every candidate
// scanned; take additionally counts bytes moved).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.h"
#include "tuplespace/store_interface.h"

namespace agilla::ts {
namespace {

/// Record bytes of one stored tuple: 1 length byte + encoded fields.
std::size_t record_bytes(const Tuple& t) { return 1 + t.wire_size(); }

Tuple keyed(const char* tag, std::int16_t n) {
  return Tuple{Value::string(tag), Value::number(n)};
}

TEST(StoreConformance, ScriptedSequenceAgreesAcrossBackends) {
  const auto linear = make_store(StoreKind::kLinear, 600);
  const auto indexed = make_store(StoreKind::kIndexed, 600);

  const auto both = [&](auto&& op) {
    op(*linear);
    op(*indexed);
  };

  // Inserts of mixed arity, a read, interleaved takes, a count, a clear,
  // and a refill — one scripted pass over the whole TupleStore surface.
  for (std::int16_t i = 0; i < 8; ++i) {
    both([&](TupleStore& s) { ASSERT_TRUE(s.insert(keyed("fil", i))); });
    both([&](TupleStore& s) {
      ASSERT_TRUE(s.insert(Tuple{Value::number(i)}));
    });
  }
  ASSERT_EQ(linear->tuple_count(), indexed->tuple_count());
  ASSERT_EQ(linear->used_bytes(), indexed->used_bytes());

  const CompiledTemplate fil3(Template{Value::string("fil"),
                                       Value::number(3)});
  ASSERT_EQ(linear->read(fil3), indexed->read(fil3));
  ASSERT_EQ(linear->take(fil3), indexed->take(fil3));
  ASSERT_EQ(linear->take(fil3), std::nullopt);
  ASSERT_EQ(indexed->take(fil3), std::nullopt);

  const CompiledTemplate any_num(
      Template{Value::type_wildcard(ValueType::kNumber)});
  ASSERT_EQ(linear->count_matching(any_num), 8u);
  ASSERT_EQ(indexed->count_matching(any_num), 8u);

  const auto snap_l = linear->snapshot();
  const auto snap_i = indexed->snapshot();
  ASSERT_EQ(snap_l, snap_i);

  both([](TupleStore& s) { s.clear(); });
  ASSERT_EQ(linear->tuple_count(), 0u);
  ASSERT_EQ(indexed->used_bytes(), 0u);
  both([&](TupleStore& s) { ASSERT_TRUE(s.insert(keyed("new", 1))); });
  ASSERT_EQ(linear->read(CompiledTemplate(Template{
                Value::string("new"), Value::type_wildcard(
                                          ValueType::kNumber)})),
            indexed->read(CompiledTemplate(Template{
                Value::string("new"),
                Value::type_wildcard(ValueType::kNumber)})));
}

TEST(StoreConformance, InsertChargesRecordBytesWritten) {
  const Tuple t = keyed("fil", 1);
  for (const StoreKind kind : {StoreKind::kLinear, StoreKind::kIndexed}) {
    const auto store = make_store(kind, 600);
    ASSERT_TRUE(store->insert(t));
    EXPECT_EQ(store->last_op_bytes_touched(), record_bytes(t))
        << to_string(kind);
    // A rejected insert (oversized for remaining capacity) charges 0.
    const auto tiny = make_store(kind, record_bytes(t));
    ASSERT_TRUE(tiny->insert(t));
    ASSERT_FALSE(tiny->insert(t));
    EXPECT_EQ(tiny->last_op_bytes_touched(), 0u) << to_string(kind);
  }
}

TEST(StoreConformance, ProbesChargeEveryCandidateScanned) {
  // All tuples share one arity, so both backends must scan the same
  // candidate set: every record for a miss, records up to and including
  // the match for a hit.
  std::vector<Tuple> stored;
  for (std::int16_t i = 0; i < 6; ++i) {
    stored.push_back(keyed("fil", i));
  }
  const Tuple target = keyed("key", 9);
  stored.push_back(target);

  std::size_t all_bytes = 0;
  for (const Tuple& t : stored) {
    all_bytes += record_bytes(t);
  }

  for (const StoreKind kind : {StoreKind::kLinear, StoreKind::kIndexed}) {
    const auto store = make_store(kind, 600);
    for (const Tuple& t : stored) {
      ASSERT_TRUE(store->insert(t));
    }
    const CompiledTemplate miss(Template{
        Value::string("nop"), Value::type_wildcard(ValueType::kNumber)});
    ASSERT_FALSE(store->read(miss).has_value());
    EXPECT_EQ(store->last_op_bytes_touched(), all_bytes) << to_string(kind);

    const CompiledTemplate hit(Template{
        Value::string("key"), Value::type_wildcard(ValueType::kNumber)});
    ASSERT_TRUE(store->read(hit).has_value());
    // The target sits last: the scan walks every record to reach it.
    EXPECT_EQ(store->last_op_bytes_touched(), all_bytes) << to_string(kind);

    ASSERT_EQ(store->count_matching(hit), 1u);
    EXPECT_EQ(store->last_op_bytes_touched(), all_bytes) << to_string(kind);
  }
}

TEST(StoreConformance, TakeChargesScanPlusBytesMoved) {
  std::vector<Tuple> stored;
  for (std::int16_t i = 0; i < 5; ++i) {
    stored.push_back(keyed("fil", i));
  }
  const std::size_t first_record = record_bytes(stored[0]);
  std::size_t tail_bytes = 0;
  for (std::size_t i = 1; i < stored.size(); ++i) {
    tail_bytes += record_bytes(stored[i]);
  }

  const auto fill = [&](TupleStore& store) {
    for (const Tuple& t : stored) {
      ASSERT_TRUE(store.insert(t));
    }
  };
  const CompiledTemplate first(Template{Value::string("fil"),
                                        Value::number(0)});

  // Linear: removal shifts every byte behind the removed record forward.
  const auto linear = make_store(StoreKind::kLinear, 600);
  fill(*linear);
  ASSERT_TRUE(linear->take(first).has_value());
  EXPECT_EQ(linear->last_op_bytes_touched(), first_record + tail_bytes);

  // Indexed: a tombstone moves nothing; the scan is the whole cost.
  const auto indexed = make_store(StoreKind::kIndexed, 600);
  fill(*indexed);
  ASSERT_TRUE(indexed->take(first).has_value());
  EXPECT_EQ(indexed->last_op_bytes_touched(), first_record);
}

TEST(StoreConformance, RandomOpSequencesStayInLockstep) {
  // Randomized mirror of the scripted test, via the factory seam (the
  // typed equivalent lives in test_indexed_store.cpp; this one guards the
  // make_store() path the harness and middleware actually use).
  for (const std::uint64_t seed : {11ULL, 23ULL, 59ULL}) {
    sim::Rng rng(seed);
    const auto linear = make_store(StoreKind::kLinear, 300);
    const auto indexed = make_store(StoreKind::kIndexed, 300);
    for (int step = 0; step < 400; ++step) {
      const auto tag = std::string(1, 'a' + rng.uniform(3));
      const auto num = static_cast<std::int16_t>(rng.uniform(5));
      switch (rng.uniform(4)) {
        case 0: {
          const Tuple t = rng.chance(0.5) ? keyed(tag.c_str(), num)
                                          : Tuple{Value::number(num)};
          ASSERT_EQ(linear->insert(t), indexed->insert(t)) << "step " << step;
          break;
        }
        case 1: {
          const CompiledTemplate templ(
              Template{Value::string(tag),
                       Value::type_wildcard(ValueType::kNumber)});
          ASSERT_EQ(linear->take(templ), indexed->take(templ))
              << "step " << step;
          break;
        }
        case 2: {
          const CompiledTemplate templ(Template{Value::number(num)});
          ASSERT_EQ(linear->read(templ), indexed->read(templ))
              << "step " << step;
          break;
        }
        default: {
          const CompiledTemplate templ(
              Template{Value::type_wildcard(ValueType::kString),
                       Value::number(num)});
          ASSERT_EQ(linear->count_matching(templ),
                    indexed->count_matching(templ))
              << "step " << step;
          break;
        }
      }
      ASSERT_EQ(linear->tuple_count(), indexed->tuple_count());
      ASSERT_EQ(linear->used_bytes(), indexed->used_bytes());
      ASSERT_EQ(linear->snapshot(), indexed->snapshot()) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace agilla::ts

#include "tuplespace/store.h"

#include <gtest/gtest.h>

namespace agilla::ts {
namespace {

Tuple num_tuple(std::int16_t v) { return Tuple{Value::number(v)}; }

Template num_template(std::int16_t v) { return Template{Value::number(v)}; }

Template any_number() {
  return Template{Value::type_wildcard(ValueType::kNumber)};
}

TEST(LinearTupleStore, InsertAndRead) {
  LinearTupleStore store;
  EXPECT_TRUE(store.insert(num_tuple(7)));
  EXPECT_EQ(store.tuple_count(), 1u);
  const auto found = store.read(num_template(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->field(0).as_number(), 7);
  EXPECT_EQ(store.tuple_count(), 1u);  // read does not remove
}

TEST(LinearTupleStore, TakeRemoves) {
  LinearTupleStore store;
  store.insert(num_tuple(7));
  const auto taken = store.take(num_template(7));
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(store.tuple_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_FALSE(store.take(num_template(7)).has_value());
}

TEST(LinearTupleStore, FifoMatchOrder) {
  LinearTupleStore store;
  store.insert(num_tuple(1));
  store.insert(num_tuple(2));
  store.insert(num_tuple(3));
  EXPECT_EQ(store.take(any_number())->field(0).as_number(), 1);
  EXPECT_EQ(store.take(any_number())->field(0).as_number(), 2);
  EXPECT_EQ(store.take(any_number())->field(0).as_number(), 3);
}

TEST(LinearTupleStore, RemovalShiftsFollowingTuples) {
  LinearTupleStore store;
  store.insert(num_tuple(1));
  store.insert(num_tuple(2));
  store.insert(num_tuple(3));
  const std::size_t used_before = store.used_bytes();
  store.take(num_template(2));
  EXPECT_EQ(store.tuple_count(), 2u);
  EXPECT_LT(store.used_bytes(), used_before);
  // Order of the survivors is preserved.
  const auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].field(0).as_number(), 1);
  EXPECT_EQ(snapshot[1].field(0).as_number(), 3);
}

TEST(LinearTupleStore, RejectsWhenFull) {
  LinearTupleStore store(20);  // room for a few tiny tuples only
  EXPECT_TRUE(store.insert(num_tuple(1)));   // 5 bytes (1 len + 4)
  EXPECT_TRUE(store.insert(num_tuple(2)));
  EXPECT_TRUE(store.insert(num_tuple(3)));
  EXPECT_TRUE(store.insert(num_tuple(4)));
  EXPECT_FALSE(store.insert(num_tuple(5)));
  EXPECT_EQ(store.tuple_count(), 4u);
}

TEST(LinearTupleStore, SpaceReusableAfterRemoval) {
  LinearTupleStore store(20);
  for (std::int16_t i = 0; i < 4; ++i) {
    store.insert(num_tuple(i));
  }
  EXPECT_FALSE(store.insert(num_tuple(9)));
  store.take(num_template(0));
  EXPECT_TRUE(store.insert(num_tuple(9)));
}

TEST(LinearTupleStore, RejectsEmptyTuple) {
  LinearTupleStore store;
  EXPECT_FALSE(store.insert(Tuple{}));
}

TEST(LinearTupleStore, DefaultCapacityIsPaperValue) {
  LinearTupleStore store;
  EXPECT_EQ(store.capacity_bytes(), 600u);
}

TEST(LinearTupleStore, CountMatching) {
  LinearTupleStore store;
  store.insert(num_tuple(1));
  store.insert(num_tuple(1));
  store.insert(num_tuple(2));
  store.insert(Tuple{Value::string("abc")});
  EXPECT_EQ(store.count_matching(num_template(1)), 2u);
  EXPECT_EQ(store.count_matching(any_number()), 3u);
  EXPECT_EQ(store.count_matching(num_template(9)), 0u);
}

TEST(LinearTupleStore, MixedArityMatching) {
  LinearTupleStore store;
  store.insert(Tuple{Value::string("fir"), Value::location({2, 2})});
  store.insert(num_tuple(1));
  const Template fire{Value::string("fir"),
                      Value::type_wildcard(ValueType::kLocation)};
  const auto found = store.take(fire);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->field(1).as_location(), (sim::Location{2, 2}));
  EXPECT_EQ(store.tuple_count(), 1u);
}

TEST(LinearTupleStore, BytesTouchedGrowsWithOccupancy) {
  LinearTupleStore store;
  for (std::int16_t i = 0; i < 20; ++i) {
    store.insert(num_tuple(i));
  }
  (void)store.read(num_template(0));
  const std::size_t first = store.last_op_bytes_touched();
  (void)store.read(num_template(19));
  const std::size_t last = store.last_op_bytes_touched();
  EXPECT_LT(first, last);  // matching deeper scans more bytes
}

TEST(LinearTupleStore, ClearResets) {
  LinearTupleStore store;
  store.insert(num_tuple(1));
  store.clear();
  EXPECT_EQ(store.tuple_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_TRUE(store.insert(num_tuple(2)));
}

TEST(LinearTupleStore, SnapshotDecodesAll) {
  LinearTupleStore store;
  store.insert(Tuple{Value::string("a"), Value::number(1)});
  store.insert(Tuple{Value::location({1, 2})});
  const auto all = store.snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].arity(), 2u);
  EXPECT_EQ(all[1].arity(), 1u);
}

}  // namespace
}  // namespace agilla::ts

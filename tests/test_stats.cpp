#include "sim/stats.h"

#include <gtest/gtest.h>

namespace agilla::sim {
namespace {

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Summary, MeanAndTotal) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.total(), 10.0);
}

TEST(Summary, MinMax) {
  Summary s;
  for (double v : {5.0, -2.0, 9.0, 0.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SampleStddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, StddevOfSingleSampleIsZero) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
}

TEST(Summary, AddAfterPercentileStillCorrect) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Summary, NamedTailAccessors) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.p50(), s.percentile(50.0));
  EXPECT_DOUBLE_EQ(s.p95(), s.percentile(95.0));
  EXPECT_DOUBLE_EQ(s.p99(), s.percentile(99.0));
  // 1..100: rank interpolation over n-1=99 gaps.
  EXPECT_DOUBLE_EQ(s.p50(), 50.5);
  EXPECT_DOUBLE_EQ(s.p95(), 95.05);
  EXPECT_DOUBLE_EQ(s.p99(), 99.01);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
}

TEST(Summary, TailAccessorsOnEmptyAndSingleton) {
  Summary empty;
  EXPECT_DOUBLE_EQ(empty.p99(), 0.0);
  Summary one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.p50(), 7.0);
  EXPECT_DOUBLE_EQ(one.p95(), 7.0);
  EXPECT_DOUBLE_EQ(one.p99(), 7.0);
}

TEST(TrialCounter, RatesAndCounts) {
  TrialCounter c;
  EXPECT_DOUBLE_EQ(c.success_rate(), 0.0);
  c.record(true);
  c.record(true);
  c.record(false);
  c.record(true);
  EXPECT_EQ(c.trials(), 4u);
  EXPECT_EQ(c.successes(), 3u);
  EXPECT_DOUBLE_EQ(c.success_rate(), 0.75);
}

TEST(AsciiBar, WidthAndFill) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
  EXPECT_EQ(ascii_bar(2.0, 4), "####");   // clamped
  EXPECT_EQ(ascii_bar(-1.0, 4), "....");  // clamped
}

}  // namespace
}  // namespace agilla::sim

#include "net/serialize.h"

#include <gtest/gtest.h>

namespace agilla::net {
namespace {

TEST(Writer, LittleEndianLayout) {
  Writer w;
  w.u16(0x1234);
  w.u32(0xAABBCCDD);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w.data()[0], 0x34);
  EXPECT_EQ(w.data()[1], 0x12);
  EXPECT_EQ(w.data()[2], 0xDD);
  EXPECT_EQ(w.data()[3], 0xCC);
  EXPECT_EQ(w.data()[4], 0xBB);
  EXPECT_EQ(w.data()[5], 0xAA);
}

TEST(Writer, ZerosAppendsPadding) {
  Writer w;
  w.u8(1);
  w.zeros(3);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[3], 0u);
}

TEST(RoundTrip, AllScalarTypes) {
  Writer w;
  w.u8(0xFE);
  w.u16(0xBEEF);
  w.i16(-1234);
  w.u32(0xDEADBEEF);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xFE);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.i16(), -1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(RoundTrip, ByteSpans) {
  Writer w;
  const std::vector<std::uint8_t> data{9, 8, 7, 6};
  w.bytes(data);
  Reader r(w.data());
  std::array<std::uint8_t, 4> out{};
  r.bytes(out);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), data);
}

TEST(Reader, UnderrunSetsErrorAndReturnsZero) {
  const std::vector<std::uint8_t> data{0x01};
  Reader r(data);
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, UnderrunZeroFillsByteOutput) {
  const std::vector<std::uint8_t> data{0xFF};
  Reader r(data);
  std::array<std::uint8_t, 4> out{1, 2, 3, 4};
  r.bytes(out);
  EXPECT_FALSE(r.ok());
  for (std::uint8_t b : out) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(Reader, ErrorIsSticky) {
  const std::vector<std::uint8_t> data{0x01, 0x02};
  Reader r(data);
  r.u32();  // underrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failing even though a byte "exists"
  EXPECT_FALSE(r.ok());
}

TEST(Reader, SkipAndRemaining) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  Reader r(data);
  EXPECT_EQ(r.remaining(), 5u);
  r.skip(2);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.u8(), 3u);
  r.skip(10);
  EXPECT_FALSE(r.ok());
}

TEST(Writer, TakeMovesBuffer) {
  Writer w;
  w.u8(7);
  const std::vector<std::uint8_t> taken = w.take();
  EXPECT_EQ(taken, (std::vector<std::uint8_t>{7}));
}

}  // namespace
}  // namespace agilla::net

// Failure injection: nodes dying mid-protocol, partitions, resource
// exhaustion — the middleware must degrade exactly the way the paper's
// design intends (failures surface as condition 0, never as hangs, crashes
// or leaked resources).
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(FailureInjection, DestinationDiesMidMigration) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  // Kill node 1 while the first migration message is in flight: the
  // transfer is multi-message, so cutting the radio right after injection
  // interrupts it mid-stream.
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 2 1
      smove
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(40 * sim::kMillisecond);  // first message on the air
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  mesh.sim.run_for(10 * sim::kSecond);
  // The sender detected the failure and resumed the agent with cond 0.
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(0)})
                  .has_value());
  EXPECT_EQ(mesh.total_agents(), 0u);  // ran to completion at the origin
  EXPECT_EQ(mesh.at(0).code_pool().used_blocks(), 0u);
}

TEST(FailureInjection, MidRouteNodeDiesAgentResumesAlongPath) {
  AgillaMesh mesh(MeshOptions{.width = 4, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 4 1
      smove
      pushn end
      loc
      pushc 2
      out
      halt
  )"));
  // Let the agent reach node 2's custody, then kill node 3.
  mesh.sim.run_for(250 * sim::kMillisecond);
  mesh.net.set_radio_enabled(mesh.topo.nodes[2], false);
  mesh.sim.run_for(15 * sim::kSecond);
  // The agent was never lost: exactly one "end" marker exists somewhere
  // on the surviving path (origin, node 2, or — if it squeaked through
  // before the cut — the destination).
  std::size_t markers = 0;
  for (auto& node : mesh.nodes) {
    markers += node->tuple_space().tcount(ts::Template{
        ts::Value::string("end"),
        ts::Value::type_wildcard(ts::ValueType::kLocation)});
  }
  EXPECT_EQ(markers, 1u);
}

TEST(FailureInjection, PartitionHealsAndTrafficResumes) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);  // cut the bridge
  mesh.sim.run_for(10 * sim::kSecond);  // acquaintance entries expire

  BaseStation base(mesh.at(0));
  bool first_result = true;
  base.rout({3, 1}, ts::Tuple{ts::Value::number(1)},
            [&](bool ok, std::optional<ts::Tuple>) { first_result = ok; });
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_FALSE(first_result);  // partitioned: the op fails cleanly

  mesh.net.set_radio_enabled(mesh.topo.nodes[1], true);  // heal
  mesh.sim.run_for(5 * sim::kSecond);  // beacons repopulate the tables
  bool second_result = false;
  base.rout({3, 1}, ts::Tuple{ts::Value::number(2)},
            [&](bool ok, std::optional<ts::Tuple>) { second_result = ok; });
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_TRUE(second_result);
  EXPECT_TRUE(mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(2)})
                  .has_value());
}

TEST(FailureInjection, ReactionRegistryOverflowOnArrivalIsNonFatal) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  // Fill node 1's registry (capacity 10) with local registrations.
  for (std::int16_t i = 0; i < 10; ++i) {
    ts::Reaction r;
    r.agent_id = 999;
    r.templ = ts::Template{ts::Value::number(i)};
    ASSERT_TRUE(mesh.at(1).tuple_space().register_reaction(r));
  }
  // An agent with a reaction migrates in; its reaction cannot register but
  // the agent itself must still run.
  mesh.at(0).inject(assemble_or_die(R"(
      pushn key
      pushc 1
      pushc HIT
      regrxn
      pushloc 2 1
      smove
      pushn arr
      pushc 1
      out
      halt
      HIT halt
  )"));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("arr")})
                  .has_value());
  EXPECT_EQ(mesh.at(1).tuple_space().reactions().size(), 10u);
}

TEST(FailureInjection, CodePoolChurnDoesNotLeak) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  for (int round = 0; round < 40; ++round) {
    // Alternate small and large agents to fragment the pool.
    std::string source = (round % 2 == 0)
                             ? "pushc 1\npop\nhalt"
                             : std::string(
                                   "pushn abc\npop\npushloc 1 2\npop\n"
                                   "pushcl 300\npop\npushn xyz\npop\nhalt");
    ASSERT_TRUE(mesh.at(0).inject(assemble_or_die(source)).has_value())
        << "round " << round;
    mesh.sim.run_for(1 * sim::kSecond);
    ASSERT_EQ(mesh.at(0).code_pool().used_blocks(), 0u) << "round " << round;
  }
  EXPECT_EQ(mesh.at(0).engine().stats().agents_halted, 40u);
}

TEST(FailureInjection, RemoteOpTargetDiesMidRequest) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  bool completed = false;
  bool ok = true;
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  base.rinp({2, 1}, ts::Template{ts::Value::number(1)},
            [&](bool success, std::optional<ts::Tuple>) {
              completed = true;
              ok = success;
            });
  // 2 s timeout x (1 + 2 retries) then failure.
  mesh.sim.run_for(8 * sim::kSecond);
  EXPECT_TRUE(completed);
  EXPECT_FALSE(ok);
}

TEST(FailureInjection, DeadNodesAgentsAreGoneButNetworkContinues) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(20.0));
  mesh.warm();
  mesh.at(1).inject(assemble_or_die(agents::habitat_monitor(8)));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(mesh.at(1).agents().count(), 1u);
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);  // node 1 "dies"
  mesh.sim.run_for(10 * sim::kSecond);
  // The remaining nodes still route around... a 3x1 line has no alternate
  // path, but local work continues: inject and run an agent at node 0.
  mesh.at(0).inject(assemble_or_die("pushc 5\npushc 1\nout\nhalt"));
  mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(5)})
                  .has_value());
}

TEST(FailureInjection, AgentStormDoesNotCrashOrLeak) {
  // Saturate a node with more migrations than it has slots for.
  core::AgillaConfig config;
  config.agents.max_agents = 2;
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1, .config = config});
  mesh.warm();
  for (int i = 0; i < 6; ++i) {
    mesh.at(0).inject(assemble_or_die(R"(
        pushloc 2 1
        smove
        pushcl 160
        sleep
        halt
    )"));
    mesh.sim.run_for(1 * sim::kSecond);
  }
  mesh.sim.run_for(10 * sim::kSecond);
  // No more agents anywhere than slots allow; rejections were counted.
  EXPECT_LE(mesh.at(1).agents().count(), 2u);
  EXPECT_GT(mesh.at(1).engine().stats().agents_rejected, 0u);
  // Code pool usage matches live agents (no leaked blocks from rejects).
  if (mesh.at(1).agents().count() == 0) {
    EXPECT_EQ(mesh.at(1).code_pool().used_blocks(), 0u);
  }
}

}  // namespace
}  // namespace agilla::core

#include "core/isa.h"

#include <gtest/gtest.h>

namespace agilla::core {
namespace {

TEST(Isa, PaperFig7OpcodesAreHonored) {
  // Every opcode published in paper Fig. 7 keeps its exact value.
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kLoc), 0x01);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kWait), 0x0b);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kSMove), 0x1a);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kWClone), 0x1d);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kGetNbr), 0x20);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kOut), 0x33);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kInp), 0x34);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kRd), 0x37);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kROut), 0x39);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kRInp), 0x3a);
  EXPECT_EQ(static_cast<std::uint8_t>(Opcode::kRegRxn), 0x3e);
}

TEST(Isa, MnemonicLookupIsCaseInsensitive) {
  EXPECT_EQ(opcode_by_mnemonic("smove"), Opcode::kSMove);
  EXPECT_EQ(opcode_by_mnemonic("SMOVE"), Opcode::kSMove);
  EXPECT_EQ(opcode_by_mnemonic("Pushloc"), Opcode::kPushloc);
  EXPECT_FALSE(opcode_by_mnemonic("flibber").has_value());
}

TEST(Isa, OperandWidths) {
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kHalt)), 1u);
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kPushc)), 2u);
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kPushcl)),
            3u);
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kPushn)), 3u);
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kPushloc)),
            5u);
  EXPECT_EQ(instruction_length(static_cast<std::uint8_t>(Opcode::kRjump)), 2u);
}

TEST(Isa, UndefinedOpcodeHasNoInfo) {
  EXPECT_EQ(opcode_info(0xFF), nullptr);
  EXPECT_EQ(instruction_length(0xFF), 0u);
}

TEST(Isa, GetVarSetVarRanges) {
  std::uint8_t slot = 0;
  EXPECT_TRUE(is_getvar(0x40, &slot));
  EXPECT_EQ(slot, 0);
  EXPECT_TRUE(is_getvar(0x4b, &slot));
  EXPECT_EQ(slot, 11);
  EXPECT_FALSE(is_getvar(0x4c));
  EXPECT_TRUE(is_setvar(0x55, &slot));
  EXPECT_EQ(slot, 5);
  EXPECT_FALSE(is_setvar(0x40));
}

TEST(Isa, GetVarInstructionsAreSingleByte) {
  EXPECT_EQ(instruction_length(0x43), 1u);
  EXPECT_EQ(instruction_length(0x57), 1u);
}

TEST(Isa, NamesIncludeSlotForHeapOps) {
  EXPECT_EQ(opcode_name(0x42), "getvar[2]");
  EXPECT_EQ(opcode_name(0x5b), "setvar[11]");
  EXPECT_EQ(opcode_name(static_cast<std::uint8_t>(Opcode::kSMove)), "smove");
}

TEST(Isa, CostClassesMatchPaperGroups) {
  // Paper Fig. 12: loc/aid/numnbrs are the cheap class; pushn/pushcl/
  // pushloc/regrxn/deregrxn/randnbr the memory class; TS ops the slow one.
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kLoc))->cost,
            CostClass::kSimple);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kAid))->cost,
            CostClass::kSimple);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kPushn))->cost,
            CostClass::kMemory);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kRandNbr))->cost,
            CostClass::kMemory);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kRegRxn))->cost,
            CostClass::kMemory);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kOut))->cost,
            CostClass::kTupleOp);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kIn))->cost,
            CostClass::kTupleOp);
  EXPECT_EQ(opcode_info(static_cast<std::uint8_t>(Opcode::kSMove))->cost,
            CostClass::kLongRun);
}

TEST(Isa, EveryTableEntryRoundTripsByMnemonic) {
  for (std::uint16_t raw = 0; raw < 256; ++raw) {
    const OpcodeInfo* info = opcode_info(static_cast<std::uint8_t>(raw));
    if (info == nullptr) {
      continue;
    }
    const auto back = opcode_by_mnemonic(info->mnemonic);
    ASSERT_TRUE(back.has_value()) << info->mnemonic;
  }
}

}  // namespace
}  // namespace agilla::core

#include "core/vm_costs.h"

#include <gtest/gtest.h>

namespace agilla::core {
namespace {

std::uint8_t raw(Opcode op) { return static_cast<std::uint8_t>(op); }

TEST(VmCosts, ThreeClassesOrderedLikePaperFig12) {
  const VmCostModel model;
  const auto simple = model.instruction_cost(raw(Opcode::kLoc), 0, false);
  const auto memory = model.instruction_cost(raw(Opcode::kPushn), 0, false);
  const auto tuple = model.instruction_cost(raw(Opcode::kOut), 100, false);
  EXPECT_LT(simple, memory);
  EXPECT_LT(memory, tuple);
}

TEST(VmCosts, SimpleClassNearPaper75us) {
  const VmCostModel model;
  const auto cost = model.instruction_cost(raw(Opcode::kLoc), 0, false);
  EXPECT_GE(cost, 60u);
  EXPECT_LE(cost, 90u);
}

TEST(VmCosts, MemoryClassNearPaper150us) {
  const VmCostModel model;
  const auto cost = model.instruction_cost(raw(Opcode::kPushloc), 0, false);
  EXPECT_GE(cost, 120u);
  EXPECT_LE(cost, 170u);
}

TEST(VmCosts, TupleOpsScaleWithBytesTouched) {
  const VmCostModel model;
  const auto empty = model.instruction_cost(raw(Opcode::kRdp), 0, false);
  const auto busy = model.instruction_cost(raw(Opcode::kRdp), 400, false);
  EXPECT_LT(empty, busy);
  EXPECT_NEAR(static_cast<double>(busy - empty), 0.33 * 400, 1.0);
}

TEST(VmCosts, TupleOpsFallInPaperRange) {
  // Paper: tuple ops average 292 us, everything within 60-440 us.
  const VmCostModel model;
  for (std::size_t bytes : {0u, 100u, 300u, 600u}) {
    const auto cost = model.instruction_cost(raw(Opcode::kOut), bytes, false);
    EXPECT_GE(cost, 200u);
    EXPECT_LE(cost, 445u);
  }
}

TEST(VmCosts, BlockingWrapperAddsOverhead) {
  // Paper: "blocking tuple space operations take slightly longer than the
  // non-blocking ones".
  const VmCostModel model;
  const auto inp = model.instruction_cost(raw(Opcode::kInp), 50, false);
  const auto in = model.instruction_cost(raw(Opcode::kIn), 50, true);
  EXPECT_GT(in, inp);
  EXPECT_LE(in - inp, 50u);
}

TEST(VmCosts, UnknownOpcodeFallsBackToSimple) {
  const VmCostModel model;
  EXPECT_EQ(model.instruction_cost(0xFF, 0, false),
            model.instruction_cost(raw(Opcode::kLoc), 0, false));
}

TEST(VmCosts, ContextSwitchSmall) {
  const VmCostModel model;
  EXPECT_GT(model.context_switch_cost(), 0u);
  EXPECT_LT(model.context_switch_cost(), 50u);
}

TEST(VmCosts, ToTimeRounds) {
  EXPECT_EQ(VmCostModel::to_time(1.4), 1u);
  EXPECT_EQ(VmCostModel::to_time(1.6), 2u);
  EXPECT_EQ(VmCostModel::to_time(-5.0), 0u);
}

}  // namespace
}  // namespace agilla::core

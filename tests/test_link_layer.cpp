#include "net/link_layer.h"

#include <gtest/gtest.h>

#include <memory>

namespace agilla::net {
namespace {

struct LinkFixture {
  sim::Simulator sim{77};
  sim::Network net;
  sim::NodeId a;
  sim::NodeId b;
  std::unique_ptr<LinkLayer> link_a;
  std::unique_ptr<LinkLayer> link_b;

  explicit LinkFixture(double loss = 0.0) :
      net(sim, std::make_unique<sim::GridNeighborRadio>(
                   sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                   .packet_loss = loss})) {
    a = net.add_node({1, 1});
    b = net.add_node({2, 1});
    link_a = std::make_unique<LinkLayer>(net, a);
    link_b = std::make_unique<LinkLayer>(net, b);
    link_a->attach();
    link_b->attach();
  }
};

TEST(LinkLayer, UnackedDeliveryStripsHeader) {
  LinkFixture f;
  std::vector<std::uint8_t> got;
  sim::NodeId from;
  f.link_b->register_handler(
      sim::AmType::kTsRequest,
      [&](sim::NodeId src, std::span<const std::uint8_t> p) {
        from = src;
        got.assign(p.begin(), p.end());
        return true;
      });
  f.link_a->send_unacked(f.b, sim::AmType::kTsRequest, {10, 20, 30});
  f.sim.run();
  EXPECT_EQ(from, f.a);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{10, 20, 30}));
}

TEST(LinkLayer, AckedSendSucceedsOnCleanChannel) {
  LinkFixture f;
  f.link_b->register_handler(sim::AmType::kAgentState,
                             [](sim::NodeId, std::span<const std::uint8_t>) { return true; });
  bool delivered = false;
  bool called = false;
  f.link_a->send_acked(f.b, sim::AmType::kAgentState, {1}, [&](bool ok) {
    called = true;
    delivered = ok;
  });
  f.sim.run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.link_a->stats().send_failures, 0u);
  EXPECT_EQ(f.link_b->stats().acks_sent, 1u);
}

TEST(LinkLayer, AckedSendFailsToUnreachableNode) {
  LinkFixture f;
  const sim::NodeId far = f.net.add_node({9, 9});
  bool delivered = true;
  f.link_a->send_acked(far, sim::AmType::kAgentState, {1},
                       [&](bool ok) { delivered = ok; });
  f.sim.run();
  EXPECT_FALSE(delivered);
  // First try + 4 retransmissions (paper Sec. 3.2).
  EXPECT_EQ(f.link_a->stats().retransmissions, 4u);
  EXPECT_EQ(f.link_a->stats().send_failures, 1u);
}

TEST(LinkLayer, FailureTakesAboutHalfASecond) {
  // 5 attempts x 0.1 s ack timeout.
  LinkFixture f;
  const sim::NodeId far = f.net.add_node({9, 9});
  sim::SimTime failed_at = 0;
  f.link_a->send_acked(far, sim::AmType::kAgentState, {1},
                       [&](bool) { failed_at = f.sim.now(); });
  f.sim.run();
  EXPECT_GE(failed_at, 500 * sim::kMillisecond);
  EXPECT_LE(failed_at, 700 * sim::kMillisecond);
}

TEST(LinkLayer, RetransmitsUntilSuccessOnLossyChannel) {
  // 50% loss: nearly every transfer needs at least one retransmission but
  // 5 attempts nearly always get through.
  LinkFixture f(0.5);
  f.link_b->register_handler(sim::AmType::kAgentState,
                             [](sim::NodeId, std::span<const std::uint8_t>) { return true; });
  int ok = 0;
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    f.link_a->send_acked(f.b, sim::AmType::kAgentState, {1}, [&](bool s) {
      ++done;
      ok += s ? 1 : 0;
    });
    f.sim.run();
  }
  EXPECT_EQ(done, 40);
  // Per attempt both the data frame and the ack must survive (p ~ 0.25);
  // with 5 attempts ~76% of transfers succeed.
  EXPECT_GE(ok, 20);
  EXPECT_LE(ok, 38);
  EXPECT_GT(f.link_a->stats().retransmissions, 0u);
}

TEST(LinkLayer, DuplicateDataSuppressedButReAcked) {
  // Drop the first ack by disabling b's radio transmission... instead use a
  // lossy channel until a duplicate arrives; simpler: send the same frame
  // by simulating ack loss with 70% loss and count handler invocations vs
  // transmissions received.
  LinkFixture f(0.4);
  int handled = 0;
  f.link_b->register_handler(
      sim::AmType::kAgentState,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++handled;
        return true;
      });
  for (int i = 0; i < 30; ++i) {
    f.link_a->send_acked(f.b, sim::AmType::kAgentState,
                         {static_cast<std::uint8_t>(i)}, nullptr);
    f.sim.run();
  }
  // Every sequence number is handled at most once even when the data frame
  // was retransmitted because an ACK (not the data) was lost; the repeats
  // show up as suppressed duplicates instead of double deliveries.
  EXPECT_LE(handled, 30);
  EXPECT_GT(f.link_b->stats().duplicates_dropped, 0u);
}

TEST(LinkLayer, ManyOutstandingAckedSends) {
  LinkFixture f;
  f.link_b->register_handler(sim::AmType::kAgentCode,
                             [](sim::NodeId, std::span<const std::uint8_t>) { return true; });
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    f.link_a->send_acked(f.b, sim::AmType::kAgentCode,
                         {static_cast<std::uint8_t>(i)},
                         [&](bool ok) { completions += ok ? 1 : 0; });
  }
  f.sim.run();
  EXPECT_EQ(completions, 10);
}

TEST(LinkLayer, HandlersDispatchByAmType) {
  LinkFixture f;
  int beacons = 0;
  int requests = 0;
  f.link_b->register_handler(
      sim::AmType::kBeacon,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++beacons;
        return true;
      });
  f.link_b->register_handler(
      sim::AmType::kTsRequest,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++requests;
        return true;
      });
  f.link_a->send_unacked(f.b, sim::AmType::kBeacon, {});
  f.link_a->send_unacked(f.b, sim::AmType::kTsRequest, {});
  f.sim.run();
  EXPECT_EQ(beacons, 1);
  EXPECT_EQ(requests, 1);
}

TEST(LinkLayer, BroadcastGoesUnacked) {
  LinkFixture f;
  int received = 0;
  f.link_b->register_handler(
      sim::AmType::kBeacon,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++received;
        return true;
      });
  f.link_a->send_unacked(sim::kBroadcastNode, sim::AmType::kBeacon, {});
  f.sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.link_b->stats().acks_sent, 0u);
}

TEST(LinkLayer, SequenceWraparoundDoesNotSuppressNewMessages) {
  // Regression: an acked message whose 8-bit sequence number collides with
  // a stale dedup-cache entry (256 sends later) must still be DELIVERED —
  // a false "duplicate" here is silently re-acked and the payload lost,
  // which once cost a migrating agent its life (see DESIGN.md).
  LinkFixture f;
  int handled = 0;
  f.link_b->register_handler(
      sim::AmType::kAgentState,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++handled;
        return true;
      });
  // Message with seq 0.
  f.link_a->send_acked(f.b, sim::AmType::kAgentState, {1}, nullptr);
  f.sim.run();
  ASSERT_EQ(handled, 1);
  // Advance the sender's sequence counter through a full wrap; the sends
  // also advance virtual time well past the dedup window.
  for (int i = 0; i < 255; ++i) {
    f.link_a->send_unacked(f.b, sim::AmType::kBeacon, {});
  }
  f.sim.run();
  // This message reuses seq 0. It must reach the handler and be acked.
  bool delivered = false;
  f.link_a->send_acked(f.b, sim::AmType::kAgentState, {2},
                       [&](bool ok) { delivered = ok; });
  f.sim.run();
  EXPECT_EQ(handled, 2);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.link_a->stats().send_failures, 0u);
}

TEST(LinkLayer, DuplicateWithinWindowStillSuppressed) {
  // The wraparound fix must not break genuine duplicate suppression.
  LinkFixture f(0.4);
  int handled = 0;
  f.link_b->register_handler(
      sim::AmType::kAgentState,
      [&](sim::NodeId, std::span<const std::uint8_t>) {
        ++handled;
        return true;
      });
  for (int i = 0; i < 30; ++i) {
    f.link_a->send_acked(f.b, sim::AmType::kAgentState,
                         {static_cast<std::uint8_t>(i)}, nullptr);
    f.sim.run();
  }
  EXPECT_LE(handled, 30);
  EXPECT_GT(f.link_b->stats().duplicates_dropped, 0u);
}

}  // namespace
}  // namespace agilla::net

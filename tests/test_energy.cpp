// The energy & lifetime subsystem: battery ledger conservation, the LPL
// duty cycler's schedule math, battery-driven node death through the
// node-down path (neighbour eviction, failed in-flight migrations), churn
// determinism, and reboot semantics.
#include <gtest/gtest.h>

#include <limits>

#include "core/agent_library.h"
#include "core/assembler.h"
#include "energy/battery.h"
#include "energy/duty_cycler.h"
#include "energy/energy_model.h"
#include "harness/mesh.h"
#include "sim/environment.h"

namespace agilla {
namespace {

using energy::Battery;
using energy::DutyCycler;
using energy::EnergyComponent;

// ------------------------------------------------------------ unit: battery

TEST(Battery, LedgerConservationIsExact) {
  Battery battery(100.0, 0);
  battery.drain(EnergyComponent::kRadioTx, 7.25);
  battery.drain(EnergyComponent::kRadioRx, 1.5);
  battery.drain(EnergyComponent::kCpu, 0.125);
  battery.drain(EnergyComponent::kSense, 0.0625);
  const double by_component =
      battery.drained_mj(EnergyComponent::kRadioTx) +
      battery.drained_mj(EnergyComponent::kRadioRx) +
      battery.drained_mj(EnergyComponent::kRadioIdle) +
      battery.drained_mj(EnergyComponent::kCpu) +
      battery.drained_mj(EnergyComponent::kSense);
  // The total drop IS the sum of the ledger — equality, not tolerance.
  EXPECT_EQ(battery.capacity_mj() - battery.remaining_mj(), by_component);
  EXPECT_EQ(battery.total_drained_mj(), by_component);
  EXPECT_FALSE(battery.depleted());
}

TEST(Battery, DrainClampsAtCapacity) {
  Battery battery(1.0, 0);
  battery.drain(EnergyComponent::kRadioTx, 0.75);
  battery.drain(EnergyComponent::kCpu, 10.0);  // only 0.25 left
  EXPECT_TRUE(battery.depleted());
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
  EXPECT_DOUBLE_EQ(battery.drained_mj(EnergyComponent::kCpu), 0.25);
  battery.drain(EnergyComponent::kSense, 5.0);  // nothing left to give
  EXPECT_DOUBLE_EQ(battery.drained_mj(EnergyComponent::kSense), 0.0);
}

TEST(Battery, SettleAccruesIdleDraw) {
  Battery battery(1000.0, 0);
  battery.set_idle_draw_mw(28.8);
  battery.settle(2 * sim::kSecond);
  EXPECT_DOUBLE_EQ(battery.drained_mj(EnergyComponent::kRadioIdle),
                   28.8 * 2.0);
  battery.settle(2 * sim::kSecond);  // idempotent at a fixed time
  EXPECT_DOUBLE_EQ(battery.drained_mj(EnergyComponent::kRadioIdle),
                   28.8 * 2.0);
  battery.set_idle_draw_mw(0.0);  // radio off: the draw stops
  battery.settle(10 * sim::kSecond);
  EXPECT_DOUBLE_EQ(battery.drained_mj(EnergyComponent::kRadioIdle),
                   28.8 * 2.0);
}

// ------------------------------------------------------- unit: duty cycler

TEST(DutyCycler, AlwaysOnHasNoPreamble) {
  const DutyCycler off{DutyCycler::Options{.listen_fraction = 1.0}};
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.listen_fraction(), 1.0);
  EXPECT_EQ(off.preamble_extension(), 0u);
}

TEST(DutyCycler, PeriodScalesInverselyWithFraction) {
  const DutyCycler lpl{DutyCycler::Options{
      .listen_fraction = 0.1, .wake_time = 8 * sim::kMillisecond}};
  EXPECT_TRUE(lpl.enabled());
  EXPECT_EQ(lpl.check_period(), 80 * sim::kMillisecond);
  EXPECT_EQ(lpl.preamble_extension(), 72 * sim::kMillisecond);
  // Halving the fraction doubles the check period (and the preamble).
  const DutyCycler lpl2{DutyCycler::Options{
      .listen_fraction = 0.05, .wake_time = 8 * sim::kMillisecond}};
  EXPECT_EQ(lpl2.check_period(), 160 * sim::kMillisecond);
}

TEST(DutyCycler, AdaptiveObserveWidensWhenQuietNarrowsUnderLoad) {
  DutyCycler lpl{DutyCycler::Options{.listen_fraction = 0.1,
                                     .adaptive = true,
                                     .min_fraction = 0.02,
                                     .max_fraction = 0.4,
                                     .busy_frames = 4}};
  const sim::SimTime initial = lpl.check_period();
  // A silent tick halves the listen fraction (doubles the period)...
  EXPECT_TRUE(lpl.observe(0));
  EXPECT_EQ(lpl.check_period(), 2 * initial);
  // ...moderate traffic holds steady...
  EXPECT_FALSE(lpl.observe(2));
  EXPECT_EQ(lpl.check_period(), 2 * initial);
  // ...and load at busy_frames snaps it back.
  EXPECT_TRUE(lpl.observe(4));
  EXPECT_EQ(lpl.check_period(), initial);
}

TEST(DutyCycler, AdaptiveStaysWithinConfiguredBounds) {
  DutyCycler lpl{DutyCycler::Options{.listen_fraction = 0.1,
                                     .adaptive = true,
                                     .min_fraction = 0.02,
                                     .max_fraction = 0.4}};
  for (int i = 0; i < 20; ++i) {
    lpl.observe(0);
  }
  EXPECT_DOUBLE_EQ(lpl.listen_fraction(), 0.02);  // clamped at the floor
  for (int i = 0; i < 20; ++i) {
    lpl.observe(100);
  }
  EXPECT_DOUBLE_EQ(lpl.listen_fraction(), 0.4);  // clamped at the ceiling
  // The timeout budget must cover the widest schedule the controller can
  // reach, not the starting point.
  EXPECT_EQ(lpl.max_preamble_extension(),
            DutyCycler{DutyCycler::Options{.listen_fraction = 0.02}}
                .preamble_extension());
}

TEST(DutyCycler, CongestedTxQueueCountsAsBusy) {
  DutyCycler lpl{DutyCycler::Options{.listen_fraction = 0.1,
                                     .adaptive = true,
                                     .min_fraction = 0.02,
                                     .max_fraction = 0.4,
                                     .busy_frames = 4,
                                     .tx_busy_depth = 3}};
  const sim::SimTime initial = lpl.check_period();
  // A silent tick with a congested TX queue NARROWS the period (the
  // node keeps its radio duty up so its backlog can drain) instead of
  // widening it the way a plain silent tick would.
  EXPECT_TRUE(lpl.observe(0, /*tx_pending=*/3));
  EXPECT_EQ(lpl.check_period(), initial / 2);
  // Below the depth threshold the silent-tick widening applies again.
  EXPECT_TRUE(lpl.observe(0, /*tx_pending=*/2));
  EXPECT_EQ(lpl.check_period(), initial);
  // With the coupling disabled (depth 0) backlog is ignored entirely.
  DutyCycler uncoupled{DutyCycler::Options{.listen_fraction = 0.1,
                                           .adaptive = true,
                                           .min_fraction = 0.02,
                                           .max_fraction = 0.4,
                                           .busy_frames = 4}};
  const sim::SimTime start = uncoupled.check_period();
  EXPECT_TRUE(uncoupled.observe(0, /*tx_pending=*/100));
  EXPECT_EQ(uncoupled.check_period(), 2 * start);
}

/// Property (satellite contract): the converged check period is monotone
/// non-increasing in offered load — more traffic never yields a LONGER
/// period, so the controller cannot oscillate against the workload.
TEST(DutyCycler, PropertyConvergedPeriodMonotoneInOfferedLoad) {
  const auto converged_period = [](std::uint32_t frames_per_tick) {
    DutyCycler lpl{DutyCycler::Options{.listen_fraction = 0.1,
                                       .adaptive = true,
                                       .min_fraction = 0.02,
                                       .max_fraction = 0.5,
                                       .busy_frames = 4}};
    for (int tick = 0; tick < 64; ++tick) {
      lpl.observe(frames_per_tick);
    }
    return lpl.check_period();
  };
  sim::SimTime previous = std::numeric_limits<sim::SimTime>::max();
  for (std::uint32_t load = 0; load <= 12; ++load) {
    const sim::SimTime period = converged_period(load);
    EXPECT_LE(period, previous) << "load " << load;
    previous = period;
  }
  // And the extremes really reach the bounds.
  EXPECT_EQ(converged_period(0),
            DutyCycler{DutyCycler::Options{.listen_fraction = 0.02}}
                .check_period());
  EXPECT_EQ(converged_period(50),
            DutyCycler{DutyCycler::Options{.listen_fraction = 0.5}}
                .check_period());
}

TEST(RadioEnergyModel, DutyCycledListenDrawInterpolates) {
  const energy::RadioEnergyModel radio;
  EXPECT_DOUBLE_EQ(radio.listen_mw(1.0), radio.rx_mw);
  EXPECT_DOUBLE_EQ(radio.listen_mw(0.0), radio.sleep_mw);
  EXPECT_LT(radio.listen_mw(0.1), radio.rx_mw * 0.2);
  EXPECT_GT(radio.tx_mj(10 * sim::kMillisecond), radio.tx_startup_mj);
}

// ------------------------------------------- integration: conservation

harness::MeshOptions conservation_options(ts::StoreKind store) {
  harness::MeshOptions options;
  options.width = 3;
  options.height = 1;
  options.packet_loss = 0.0;
  options.store = store;
  options.config.tuple_space.store_kind = store;
  options.battery_mj = 5000.0;
  return options;
}

/// The satellite contract: after a scripted-agent run that exercises
/// radio, VM, and sensing, the sum of per-component draws equals the
/// battery's total drop exactly — on both store backends.
TEST(EnergyConservation, ComponentDrawsEqualTotalDropCrossBackend) {
  for (const ts::StoreKind store :
       {ts::StoreKind::kLinear, ts::StoreKind::kIndexed}) {
    harness::Mesh mesh(conservation_options(store));
    mesh.environment().set_field(sim::SensorType::kTemperature,
                                 std::make_unique<sim::ConstantField>(20.0));
    // A sampling loop on mote 1: sense + arithmetic + tuple churn.
    ASSERT_TRUE(mesh.mote(1)
                    .inject(core::assemble_or_die(R"(
        LOOP pushrt TEMPERATURE
        sense
        pop
        pushc 9
        pushc 1
        out
        pushc 9
        pushc 1
        inp
        pushc 4
        sleep
        jump LOOP
    )"))
                    .has_value());
    mesh.simulator().run_for(20 * sim::kSecond);
    mesh.network().settle_batteries();

    for (std::size_t i = 1; i < mesh.mote_count(); ++i) {
      const energy::Battery* battery =
          mesh.network().battery(mesh.topology().nodes[i]);
      ASSERT_NE(battery, nullptr) << "store=" << to_string(store);
      const double by_component =
          battery->drained_mj(EnergyComponent::kRadioTx) +
          battery->drained_mj(EnergyComponent::kRadioRx) +
          battery->drained_mj(EnergyComponent::kRadioIdle) +
          battery->drained_mj(EnergyComponent::kCpu) +
          battery->drained_mj(EnergyComponent::kSense);
      // The ledger total IS the sum of components — exact equality; the
      // capacity-minus-remaining form only differs by the final rounding
      // of the subtraction.
      EXPECT_EQ(battery->total_drained_mj(), by_component)
          << "store=" << to_string(store) << " node=" << i;
      EXPECT_DOUBLE_EQ(battery->capacity_mj() - battery->remaining_mj(),
                       by_component)
          << "store=" << to_string(store) << " node=" << i;
      // Every radio component really drew something (beacons both ways).
      EXPECT_GT(battery->drained_mj(EnergyComponent::kRadioIdle), 0.0);
      EXPECT_GT(battery->drained_mj(EnergyComponent::kRadioTx), 0.0);
      EXPECT_GT(battery->drained_mj(EnergyComponent::kRadioRx), 0.0);
    }
    // The scripted agent's VM and sensor draws landed on mote 1 only.
    const energy::Battery* active =
        mesh.network().battery(mesh.topology().nodes[1]);
    EXPECT_GT(active->drained_mj(EnergyComponent::kCpu), 0.0);
    EXPECT_GT(active->drained_mj(EnergyComponent::kSense), 0.0);
    const energy::Battery* passive =
        mesh.network().battery(mesh.topology().nodes[2]);
    EXPECT_DOUBLE_EQ(passive->drained_mj(EnergyComponent::kSense), 0.0);
    // The gateway is mains-powered: no battery at node 0.
    EXPECT_EQ(mesh.network().battery(mesh.topology().nodes[0]), nullptr);
  }
}

// ------------------------------------- integration: battery-driven death

harness::MeshOptions two_node_options() {
  harness::MeshOptions options;
  options.width = 2;
  options.height = 1;
  options.packet_loss = 0.0;
  options.battery_mj = 1000.0;
  return options;
}

TEST(BatteryDeath, DepletedNodeDiesNeighborsEvictAndMigrationsFail) {
  harness::Mesh mesh(two_node_options());
  const sim::NodeId victim = mesh.topology().nodes[1];
  energy::Battery* battery = mesh.network().battery(victim);
  ASSERT_NE(battery, nullptr);

  // Exhaust the victim's battery; the next settle tick pronounces death.
  battery->drain(EnergyComponent::kCpu, battery->remaining_mj());
  mesh.simulator().run_for(1100 * sim::kMillisecond);
  EXPECT_FALSE(mesh.network().alive(victim));
  EXPECT_EQ(mesh.network().stats().node_deaths, 1u);
  EXPECT_EQ(mesh.mote(1).agents().count(), 0u);

  // The neighbour entry is still fresh, so a migration is attempted —
  // and must fail cleanly: the agent resumes at the origin with cond 0.
  mesh.mote(0).inject(core::assemble_or_die(R"(
      pushloc 2 1
      smove
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  mesh.simulator().run_for(15 * sim::kSecond);
  EXPECT_TRUE(mesh.mote(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(0)})
                  .has_value());
  EXPECT_GE(mesh.mote(0).engine().stats().migrations_failed, 1u);
  EXPECT_GE(mesh.mote(0).migration().stats().hop_failures, 1u);

  // Beacons stopped: the survivor evicted the dead node.
  EXPECT_FALSE(mesh.mote(0).neighbors().by_id(victim).has_value());
  // The death was logged for lifetime metrics.
  ASSERT_EQ(mesh.death_log().size(), 1u);
  EXPECT_EQ(mesh.death_log()[0].node, victim);
  EXPECT_EQ(mesh.death_log()[0].reason,
            sim::NodeDownReason::kBatteryDepleted);
}

TEST(BatteryDeath, RelayDyingMidForwardDoesNotResurrectTheAgent) {
  // A relay holding custody of a forwarded agent dies. The custody
  // image lived in its RAM: the hop-failure path must NOT install the
  // agent back onto the dead node (a "zombie" that would run code and
  // write tuples into supposedly wiped memory).
  harness::MeshOptions options;
  options.width = 4;
  options.height = 1;
  options.packet_loss = 0.0;
  harness::Mesh mesh(options);
  mesh.mote(0).inject(core::assemble_or_die(R"(
      pushloc 4 1
      smove
      pushn end
      loc
      pushc 2
      out
      halt
  )"));
  // 300 ms: hop 0->1 is complete (~250 ms) and node 1 is mid-forward.
  mesh.simulator().run_for(300 * sim::kMillisecond);
  mesh.network().kill_node(mesh.topology().nodes[1],
                           sim::NodeDownReason::kChurnCrash);
  mesh.simulator().run_for(15 * sim::kSecond);

  EXPECT_EQ(mesh.mote(1).engine().stats().agents_installed, 0u);
  EXPECT_EQ(mesh.mote(1).agents().count(), 0u);
  const ts::Template end_marker{
      ts::Value::string("end"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  EXPECT_EQ(mesh.mote(1).tuple_space().tcount(end_marker), 0u);
  // The agent is either truly lost with the dead relay's RAM or made it
  // past the relay before the crash — never duplicated onto the corpse.
  std::size_t markers = 0;
  for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
    markers += mesh.mote(i).tuple_space().tcount(end_marker);
  }
  EXPECT_LE(markers, 1u);
}

// ------------------------------------------------- integration: churn

harness::MeshOptions churn_options(std::uint64_t seed) {
  harness::MeshOptions options;
  options.width = 3;
  options.height = 3;
  options.seed = seed;
  options.churn_rate = 0.05;
  options.churn_reboot_s = 5.0;
  return options;
}

TEST(Churn, CrashScheduleIsDeterministicForAFixedSeed) {
  harness::Mesh a(churn_options(42));
  harness::Mesh b(churn_options(42));
  a.simulator().run_for(60 * sim::kSecond);
  b.simulator().run_for(60 * sim::kSecond);
  ASSERT_GT(a.death_log().size(), 0u);
  ASSERT_EQ(a.death_log().size(), b.death_log().size());
  for (std::size_t i = 0; i < a.death_log().size(); ++i) {
    EXPECT_EQ(a.death_log()[i].node, b.death_log()[i].node);
    EXPECT_EQ(a.death_log()[i].at, b.death_log()[i].at);
    EXPECT_EQ(a.death_log()[i].reason, sim::NodeDownReason::kChurnCrash);
  }
  EXPECT_EQ(a.reboot_count(), b.reboot_count());
  EXPECT_GT(a.reboot_count(), 0u);
  // The gateway is spared so injection keeps working under churn.
  EXPECT_TRUE(a.network().alive(a.topology().nodes[0]));
}

TEST(Churn, RebootedNodeRejoinsWithEmptyRam) {
  harness::MeshOptions options;
  options.width = 2;
  options.height = 1;
  options.packet_loss = 0.0;
  harness::Mesh mesh(options);

  // Put an agent and a tuple on node 1, then crash and reboot it.
  mesh.mote(1).inject(
      core::assemble_or_die("pushcl 400\nsleep\nhalt"));
  mesh.simulator().run_for(1 * sim::kSecond);
  ASSERT_EQ(mesh.mote(1).agents().count(), 1u);

  mesh.network().kill_node(mesh.topology().nodes[1],
                           sim::NodeDownReason::kChurnCrash);
  EXPECT_EQ(mesh.mote(1).agents().count(), 0u);
  EXPECT_EQ(mesh.mote(1).engine().stats().agents_power_lost, 1u);
  EXPECT_EQ(mesh.mote(1).neighbors().size(), 0u);

  mesh.network().revive_node(mesh.topology().nodes[1]);
  EXPECT_TRUE(mesh.network().alive(mesh.topology().nodes[1]));
  mesh.simulator().run_for(5 * sim::kSecond);
  // Beacons repopulated both acquaintance lists and work resumed.
  EXPECT_TRUE(
      mesh.mote(0).neighbors().by_id(mesh.topology().nodes[1]).has_value());
  EXPECT_TRUE(
      mesh.mote(1).neighbors().by_id(mesh.topology().nodes[0]).has_value());
  EXPECT_TRUE(mesh.mote(1)
                  .inject(core::assemble_or_die("pushc 5\npushc 1\nout\nhalt"))
                  .has_value());
  mesh.simulator().run_for(1 * sim::kSecond);
  EXPECT_TRUE(mesh.mote(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(5)})
                  .has_value());
  EXPECT_EQ(mesh.reboot_count(), 1u);
}

// ----------------------------------------- duty cycle latency visibility

TEST(DutyCycle, LplStretchesDeliveryLatency) {
  const auto one_hop_latency = [](double duty) {
    harness::MeshOptions options;
    options.width = 2;
    options.height = 1;
    options.packet_loss = 0.0;
    options.duty_cycle = duty;
    harness::Mesh mesh(options);
    const sim::SimTime start = mesh.simulator().now();
    mesh.mote(0).inject(core::assemble_or_die(R"(
        pushc 7
        pushc 1
        pushloc 2 1
        rout
        halt
    )"));
    const auto seen = mesh.await_tuple(
        mesh.mote(1), ts::Template{ts::Value::number(7)},
        20 * sim::kSecond);
    EXPECT_TRUE(seen.has_value());
    return seen.value_or(start) - start;
  };
  const sim::SimTime always_on = one_hop_latency(1.0);
  const sim::SimTime lpl = one_hop_latency(0.1);
  // The LPL preamble (72 ms at 10 %) dominates a one-hop delivery.
  EXPECT_GT(lpl, always_on + 50 * sim::kMillisecond);
}

// ------------------------------------------- adaptive LPL on a live mesh

TEST(AdaptiveLpl, QuietMeshWidensTowardTheFloorBusyMeshDoesNot) {
  const auto fraction_at = [](bool busy) {
    harness::MeshOptions options;
    options.width = 2;
    options.height = 1;
    options.packet_loss = 0.0;
    options.duty_cycle = 0.1;
    options.adaptive_lpl = true;
    options.duty_min = 0.02;
    options.duty_max = 0.5;
    harness::Mesh mesh(options);
    if (busy) {
      // A chatty agent on mote 0: one remote out per VM tick keeps the
      // receiving mote's channel-sample busy every settle tick.
      mesh.mote(0).inject(core::assemble_or_die(R"(
          LOOP pushc 7
          pushc 1
          pushloc 2 1
          rout
          pushc 2
          sleep
          jump LOOP
      )"));
    }
    mesh.simulator().run_for(60 * sim::kSecond);
    return mesh.network()
        .node_duty(mesh.topology().nodes[1])
        .listen_fraction();
  };
  const double quiet = fraction_at(false);
  const double busy = fraction_at(true);
  // Quiet: suppressed beacons leave most settle ticks silent, so the
  // controller walks to the duty floor. Busy: sustained traffic holds
  // the fraction strictly above it (period monotone in offered load).
  EXPECT_DOUBLE_EQ(quiet, 0.02);
  EXPECT_GT(busy, quiet);
}

TEST(AdaptiveLpl, SendersTrackTheReceiversAdvertisedPeriod) {
  // Under per-receiver preamble tracking, a frame to a widened receiver
  // pays that receiver's long preamble even though the SENDER's own
  // schedule may be narrow — visible as delivery latency.
  harness::MeshOptions options;
  options.width = 2;
  options.height = 1;
  options.packet_loss = 0.0;
  options.duty_cycle = 0.5;  // start narrow
  options.adaptive_lpl = true;
  options.duty_min = 0.02;
  options.duty_max = 0.5;
  harness::Mesh mesh(options);
  // Let the idle mesh converge: both nodes widen to the 0.02 floor
  // (400 ms check period) and advertise it in their beacons.
  mesh.simulator().run_for(60 * sim::kSecond);
  const auto& receiver_duty =
      mesh.network().node_duty(mesh.topology().nodes[1]);
  EXPECT_DOUBLE_EQ(receiver_duty.listen_fraction(), 0.02);
  const auto advertised = mesh.mote(0).neighbors().preamble_extension_for(
      mesh.topology().nodes[1], receiver_duty.options().wake_time);
  ASSERT_TRUE(advertised.has_value());
  EXPECT_EQ(*advertised, receiver_duty.preamble_extension());
}

// ------------------------------------------------- re-flood after reboot

/// ROADMAP satellite: a churn-rebooted node must not stay agent-less.
/// The surviving claimer reacts to the fresh <"ctx", loc> tuple its
/// middleware inserts when the rebooted node re-enters the acquaintance
/// list, and re-clones the deployment onto it.
TEST(Reflood, RebootedNodeGetsTheDeploymentAgentBack) {
  harness::MeshOptions options;
  options.width = 3;
  options.height = 1;
  options.packet_loss = 0.0;
  harness::Mesh mesh(options);
  mesh.mote(0).inject(
      core::assemble_or_die(core::agents::sentinel(/*sample_ticks=*/8)));
  mesh.simulator().run_for(15 * sim::kSecond);
  const ts::Template claimed{
      ts::Value::string("stl"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  ASSERT_EQ(mesh.motes_matching(claimed), 3u);  // flood claimed the row

  const sim::NodeId victim = mesh.topology().nodes[2];
  mesh.network().kill_node(victim, sim::NodeDownReason::kChurnCrash);
  EXPECT_EQ(mesh.mote(2).agents().count(), 0u);
  // Long enough for the survivors to evict the corpse (3 beacon periods).
  mesh.simulator().run_for(8 * sim::kSecond);
  EXPECT_FALSE(mesh.mote(1).neighbors().by_id(victim).has_value());

  mesh.network().revive_node(victim);
  mesh.simulator().run_for(15 * sim::kSecond);
  // Rediscovery fired the <"ctx"> reaction on a surviving claimer, which
  // re-cloned the sentinel onto the empty node.
  EXPECT_GE(mesh.mote(2).agents().count(), 1u);
  EXPECT_TRUE(mesh.mote(2).tuple_space().rdp(claimed).has_value());
  EXPECT_EQ(mesh.motes_matching(claimed), 3u);
}

}  // namespace
}  // namespace agilla

// The canonical agents assemble and behave as the paper describes.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(AgentLibrary, AllAgentsAssemble) {
  for (const std::string& source :
       {agents::smove_round_trip({5, 1}, {1, 1}),
        agents::move_once("smove", {2, 1}),
        agents::move_once("wclone", {2, 1}), agents::rout_once({5, 1}),
        agents::remote_probe_once("rinp", {3, 1}),
        agents::remote_probe_once("rrdp", {3, 1}),
        agents::fire_detector({1, 1}), agents::fire_tracker(),
        agents::habitat_monitor(), agents::blinker()}) {
    const AssemblyResult r = assemble(source);
    EXPECT_TRUE(r.ok()) << r.error_text() << "\nsource:\n" << source;
    EXPECT_LE(r.code.size(), 440u) << "agent exceeds the code pool";
  }
}

TEST(AgentLibrary, BlinkerTogglesLeds) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  mesh.at(0).inject(assemble_or_die(agents::blinker(4)));
  mesh.sim.run_for(300 * sim::kMillisecond);
  const std::uint8_t first = mesh.at(0).engine().leds();
  mesh.sim.run_for(600 * sim::kMillisecond);
  const std::uint8_t second = mesh.at(0).engine().leds();
  EXPECT_NE(first, 0);
  EXPECT_NE(first, second);
}

TEST(AgentLibrary, FireDetectorQuietWithoutFire) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(25.0));
  mesh.warm();
  mesh.at(0).inject(
      assemble_or_die(agents::fire_detector({1, 1}, 200, 8)));
  mesh.sim.run_for(20 * sim::kSecond);
  // Detectors spread to both nodes (det markers), but no alert is raised.
  const ts::Template det{ts::Value::string("det"),
                         ts::Value::type_wildcard(ts::ValueType::kLocation)};
  EXPECT_TRUE(mesh.at(0).tuple_space().rdp(det).has_value());
  EXPECT_TRUE(mesh.at(1).tuple_space().rdp(det).has_value());
  const ts::Template alert{
      ts::Value::string("fir"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  EXPECT_FALSE(mesh.at(0).tuple_space().rdp(alert).has_value());
}

TEST(AgentLibrary, FireDetectorRaisesAlertWhenHot) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(300.0));
  mesh.warm();
  mesh.at(1).inject(
      assemble_or_die(agents::fire_detector({1, 1}, 200, 8)));
  mesh.sim.run_for(15 * sim::kSecond);
  // The alert tuple <"fir", detector-location> lands on node (1,1).
  const auto alert = mesh.at(0).tuple_space().rdp(ts::Template{
      ts::Value::string("fir"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)});
  ASSERT_TRUE(alert.has_value());
}

TEST(AgentLibrary, HabitatMonitorLogsAndDiesOnFireAlert) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(20.0));
  mesh.at(0).inject(assemble_or_die(agents::habitat_monitor(8)));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_GE(mesh.at(0).tuple_space().tcount(ts::Template{
                ts::Value::string("hab"),
                ts::Value::type_wildcard(ts::ValueType::kReading)}),
            1u);
  EXPECT_EQ(mesh.at(0).agents().count(), 1u);
  // A fire alert appears: the habitat monitor voluntarily dies
  // (paper Sec. 2.2 decoupling scenario).
  mesh.at(0).tuple_space().out(
      ts::Tuple{ts::Value::string("fir"), ts::Value::location({1, 1})});
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).agents().count(), 0u);
}

TEST(AgentLibrary, RoutAgentMatchesPaperFig8) {
  const std::string source = agents::rout_once({5, 1});
  // Paper Fig. 8 bottom: pushc 1, pushc 1, pushloc 5 1, rout, halt.
  const AssemblyResult r = assemble(source);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code[0], static_cast<std::uint8_t>(Opcode::kPushc));
  EXPECT_EQ(r.code[2], static_cast<std::uint8_t>(Opcode::kPushc));
  EXPECT_EQ(r.code[4], static_cast<std::uint8_t>(Opcode::kPushloc));
  EXPECT_EQ(r.code[9], static_cast<std::uint8_t>(Opcode::kROut));
  EXPECT_EQ(r.code[10], static_cast<std::uint8_t>(Opcode::kHalt));
}

}  // namespace
}  // namespace agilla::core

// IndexedTupleStore: behavioural parity with the paper's linear store plus
// the properties that make it worth having (less work per probe).
#include "tuplespace/indexed_store.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "tuplespace/store.h"
#include "tuplespace/tuple_space.h"

namespace agilla::ts {
namespace {

Tuple num_tuple(std::int16_t v) { return Tuple{Value::number(v)}; }
Template num_template(std::int16_t v) { return Template{Value::number(v)}; }
Template any_number() {
  return Template{Value::type_wildcard(ValueType::kNumber)};
}

TEST(IndexedTupleStore, InsertReadTake) {
  IndexedTupleStore store;
  EXPECT_TRUE(store.insert(num_tuple(7)));
  EXPECT_TRUE(store.read(num_template(7)).has_value());
  EXPECT_EQ(store.tuple_count(), 1u);
  EXPECT_TRUE(store.take(num_template(7)).has_value());
  EXPECT_EQ(store.tuple_count(), 0u);
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(IndexedTupleStore, FifoOrderPreserved) {
  IndexedTupleStore store;
  for (std::int16_t i = 1; i <= 5; ++i) {
    store.insert(num_tuple(i));
  }
  for (std::int16_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(store.take(any_number())->field(0).as_number(), i);
  }
}

TEST(IndexedTupleStore, CapacityMirrorsLinearAccounting) {
  LinearTupleStore linear(40);
  IndexedTupleStore indexed(40);
  int linear_ok = 0;
  int indexed_ok = 0;
  for (std::int16_t i = 0; i < 20; ++i) {
    linear_ok += linear.insert(num_tuple(i)) ? 1 : 0;
    indexed_ok += indexed.insert(num_tuple(i)) ? 1 : 0;
  }
  EXPECT_EQ(linear_ok, indexed_ok);
  EXPECT_EQ(linear.used_bytes(), indexed.used_bytes());
}

TEST(IndexedTupleStore, SpaceReusableAfterTake) {
  IndexedTupleStore store(20);
  for (std::int16_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.insert(num_tuple(i)));
  }
  EXPECT_FALSE(store.insert(num_tuple(9)));
  store.take(num_template(0));
  EXPECT_TRUE(store.insert(num_tuple(9)));
}

TEST(IndexedTupleStore, ArityIndexSkipsOtherArities) {
  IndexedTupleStore store;
  for (std::int16_t i = 0; i < 30; ++i) {
    store.insert(Tuple{Value::number(i), Value::number(i)});  // arity 2
  }
  store.insert(num_tuple(42));  // the only arity-1 tuple
  (void)store.read(num_template(42));
  // The probe only scanned the arity-1 bucket: far fewer bytes than the
  // 30 arity-2 tuples it would walk in the linear store.
  EXPECT_LE(store.last_op_bytes_touched(), 6u);
}

TEST(IndexedTupleStore, TombstoneCompactionKeepsStateConsistent) {
  IndexedTupleStore store(600);
  for (std::int16_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.insert(num_tuple(i)));
  }
  for (std::int16_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(store.take(num_template(i)).has_value());  // forces compact
  }
  EXPECT_EQ(store.tuple_count(), 10u);
  const auto remaining = store.snapshot();
  ASSERT_EQ(remaining.size(), 10u);
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    EXPECT_EQ(remaining[i].field(0).as_number(),
              static_cast<std::int16_t>(40 + i));
  }
  // Everything still findable post-compaction.
  EXPECT_TRUE(store.read(num_template(45)).has_value());
}

TEST(IndexedTupleStore, ClearResets) {
  IndexedTupleStore store;
  store.insert(num_tuple(1));
  store.clear();
  EXPECT_EQ(store.tuple_count(), 0u);
  EXPECT_TRUE(store.insert(num_tuple(1)));
}

TEST(TupleSpaceStoreKind, IndexedBackendSelectable) {
  TupleSpace::Options options;
  options.store_kind = StoreKind::kIndexed;
  TupleSpace space(options);
  EXPECT_TRUE(space.out(Tuple{Value::number(3)}));
  EXPECT_TRUE(space.inp(Template{Value::number(3)}).has_value());
}

/// The headline property: both stores implement identical Linda semantics.
/// Random op sequences applied to both must produce identical observable
/// results and identical visible state at every step.
class StoreEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreEquivalence, LinearAndIndexedAgreeOnEverything) {
  sim::Rng rng(GetParam());
  LinearTupleStore linear(250);
  IndexedTupleStore indexed(250);

  auto random_value = [&rng]() -> Value {
    switch (rng.uniform(4)) {
      case 0:
        return Value::number(static_cast<std::int16_t>(rng.uniform(6)));
      case 1:
        return Value::string(std::string(1, 'a' + rng.uniform(3)));
      case 2:
        return Value::location({static_cast<double>(rng.uniform(3)),
                                static_cast<double>(rng.uniform(3))});
      default:
        return Value::agent_id(static_cast<std::uint16_t>(rng.uniform(4)));
    }
  };
  auto random_tuple = [&] {
    Tuple t;
    const std::size_t arity = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < arity; ++i) {
      t.add(random_value());
    }
    return t;
  };
  auto random_template = [&] {
    Template t;
    const std::size_t arity = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < arity; ++i) {
      if (rng.chance(0.5)) {
        t.add(Value::type_wildcard(random_value().type()));
      } else {
        t.add(random_value());
      }
    }
    return t;
  };

  for (int step = 0; step < 600; ++step) {
    switch (rng.uniform(4)) {
      case 0: {
        const Tuple t = random_tuple();
        ASSERT_EQ(linear.insert(t), indexed.insert(t)) << "step " << step;
        break;
      }
      case 1: {
        const Template t = random_template();
        const auto a = linear.take(t);
        const auto b = indexed.take(t);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a.has_value()) {
          ASSERT_EQ(*a, *b) << "step " << step;
        }
        break;
      }
      case 2: {
        const Template t = random_template();
        const auto a = linear.read(t);
        const auto b = indexed.read(t);
        ASSERT_EQ(a.has_value(), b.has_value()) << "step " << step;
        if (a.has_value()) {
          ASSERT_EQ(*a, *b);
        }
        break;
      }
      default: {
        const Template t = random_template();
        ASSERT_EQ(linear.count_matching(t), indexed.count_matching(t));
        break;
      }
    }
    ASSERT_EQ(linear.tuple_count(), indexed.tuple_count());
    ASSERT_EQ(linear.used_bytes(), indexed.used_bytes());
    const auto snap_a = linear.snapshot();
    const auto snap_b = indexed.snapshot();
    ASSERT_EQ(snap_a.size(), snap_b.size());
    for (std::size_t i = 0; i < snap_a.size(); ++i) {
      ASSERT_EQ(snap_a[i], snap_b[i]) << "step " << step << " pos " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalence,
                         ::testing::Values(7, 21, 42, 77, 101, 202));

}  // namespace
}  // namespace agilla::ts

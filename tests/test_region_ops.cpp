// Region operations (paper Sec. 2.2's generalization of location
// addressing): tuple insertion on one or all nodes in a geographic area.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/region_ops.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

const ts::Tuple kAlert{ts::Value::string("evc"), ts::Value::number(1)};
const ts::Template kAlertTemplate{ts::Value::string("evc"),
                                  ts::Value::number(1)};

std::size_t nodes_holding(AgillaMesh& mesh, const ts::Template& templ) {
  std::size_t n = 0;
  for (auto& node : mesh.nodes) {
    if (node->tuple_space().rdp(templ).has_value()) {
      ++n;
    }
  }
  return n;
}

TEST(RegionOps, AllNodesModeCoversTheRegionOnly) {
  AgillaMesh mesh(MeshOptions{.width = 5, .height = 5});
  mesh.warm();
  // Region: radius 1.2 around (4,4) -> (4,4) and its 4 axis neighbours.
  mesh.at(0).region_ops().out_region(kAlert, {4, 4}, 1.2,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(nodes_holding(mesh, kAlertTemplate), 5u);
  EXPECT_TRUE(mesh.at_loc(4, 4).tuple_space().rdp(kAlertTemplate).has_value());
  EXPECT_TRUE(mesh.at_loc(3, 4).tuple_space().rdp(kAlertTemplate).has_value());
  EXPECT_FALSE(
      mesh.at_loc(1, 1).tuple_space().rdp(kAlertTemplate).has_value());
  EXPECT_FALSE(
      mesh.at_loc(2, 2).tuple_space().rdp(kAlertTemplate).has_value());
}

TEST(RegionOps, AnyNodeModeDeliversToExactlyOne) {
  AgillaMesh mesh(MeshOptions{.width = 5, .height = 5});
  mesh.warm();
  mesh.at(0).region_ops().out_region(kAlert, {4, 4}, 1.2,
                                     RegionMode::kAnyNode);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(nodes_holding(mesh, kAlertTemplate), 1u);
}

TEST(RegionOps, OriginInsideRegionStillCoversAll) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.warm();
  // Origin (1,1) is itself inside the radius-1.2 region around (1,1).
  mesh.at(0).region_ops().out_region(kAlert, {1, 1}, 1.2,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  // (1,1), (2,1), (1,2) are within 1.2.
  EXPECT_EQ(nodes_holding(mesh, kAlertTemplate), 3u);
  EXPECT_TRUE(mesh.at(0).tuple_space().rdp(kAlertTemplate).has_value());
}

TEST(RegionOps, WholeNetworkRadiusReachesEveryone) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.warm();
  mesh.at(0).region_ops().out_region(kAlert, {2, 2}, 10.0,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(nodes_holding(mesh, kAlertTemplate), 9u);
}

TEST(RegionOps, FloodIsDuplicateSuppressed) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.warm();
  mesh.at(0).region_ops().out_region(kAlert, {2, 2}, 10.0,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  // Each node inserts the tuple exactly once and relays exactly once.
  for (auto& node : mesh.nodes) {
    EXPECT_EQ(node->tuple_space().tcount(kAlertTemplate), 1u);
    EXPECT_LE(node->region_ops().stats().floods_relayed, 1u);
  }
  // The 9-node flood is bounded: at most one broadcast per node.
  std::uint64_t total_relays = 0;
  for (auto& node : mesh.nodes) {
    total_relays += node->region_ops().stats().floods_relayed;
  }
  EXPECT_LE(total_relays, 9u);
}

TEST(RegionOps, DistinctOperationsAreIndependent) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  mesh.at(0).region_ops().out_region(
      ts::Tuple{ts::Value::number(1)}, {2, 1}, 0.3, RegionMode::kAllNodes);
  mesh.at(0).region_ops().out_region(
      ts::Tuple{ts::Value::number(2)}, {2, 1}, 0.3, RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(mesh.at(1).tuple_space().tcount(
                ts::Template{ts::Value::number(1)}),
            1u);
  EXPECT_EQ(mesh.at(1).tuple_space().tcount(
                ts::Template{ts::Value::number(2)}),
            1u);
}

TEST(RegionOps, SurvivesModerateLoss) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3,
                              .packet_loss = 0.05, .seed = 3});
  mesh.warm();
  mesh.at(0).region_ops().out_region(kAlert, {2, 2}, 10.0,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  // Best effort: most (usually all) nodes hear at least one copy because
  // interior nodes have several flooding neighbours.
  EXPECT_GE(nodes_holding(mesh, kAlertTemplate), 7u);
}

TEST(RegionOps, TriggersReactionsOnRegionNodes) {
  // The point of the extension: a region-wide alert interacts with the
  // normal reaction machinery (e.g. paper Sec. 2.1's evacuation order).
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  mesh.at(2).inject(assemble_or_die(R"(
      pushn evc
      pusht NUMBER
      pushc 2
      pushc HIT
      regrxn
      wait
      HIT pushn oky
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(1 * sim::kSecond);
  mesh.at(0).region_ops().out_region(kAlert, {2, 1}, 1.2,
                                     RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("oky")})
                  .has_value());
}

TEST(RegionOps, BaseStationFacade) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.out_region(kAlert, {3, 1}, 0.3, RegionMode::kAllNodes);
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(2).tuple_space().rdp(kAlertTemplate).has_value());
}

}  // namespace
}  // namespace agilla::core

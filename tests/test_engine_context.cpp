// Context instructions: loc, aid, numnbrs, getnbr, randnbr — backed by the
// beacon-driven acquaintance list.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(EngineContext, LocPushesNodeLocation) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.at(1).inject(assemble_or_die("loc\npushc 1\nout\nhalt"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kLocation)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_location(), (sim::Location{2, 1}));
}

TEST(EngineContext, AidPushesAgentId) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const auto id = mesh.at(0).inject(
      assemble_or_die("aid\npushc 1\nout\nhalt"));
  ASSERT_TRUE(id.has_value());
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kAgentId)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_agent_id(), id->value);
}

TEST(EngineContext, NumNbrsAfterWarmup) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.warm();
  // Center node (2,2) of the 3x3 grid has 4 neighbours.
  mesh.at(4).inject(assemble_or_die("numnbrs\npushc 1\nout\nhalt"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(4).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_number(), 4);
}

TEST(EngineContext, NumNbrsZeroBeforeBeacons) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  // No warmup: inject immediately; the acquaintance list is still empty
  // (beacons have a randomized sub-second offset).
  mesh.at(4).inject(assemble_or_die("numnbrs\npushc 1\nout\nhalt"));
  mesh.sim.run_for(50 * sim::kMillisecond);
  const auto t = mesh.at(4).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_number(), 0);
}

TEST(EngineContext, GetNbrPushesNeighborLocation) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die("pushc 0\ngetnbr\npushc 1\nout\nhalt"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kLocation)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_location(), (sim::Location{2, 1}));
}

TEST(EngineContext, GetNbrOutOfRangeFallsBackToSelf) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushc 9
      getnbr
      cpush        // cond = 0 on bad index
      pushc 2
      out          // <location, cond>
      halt
  )"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(ts::Template{
      ts::Value::type_wildcard(ts::ValueType::kLocation),
      ts::Value::number(0)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_location(), (sim::Location{1, 1}));
}

TEST(EngineContext, RandNbrPicksARealNeighbor) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  // Middle node (2,1): neighbours are (1,1) and (3,1).
  mesh.at(1).inject(assemble_or_die("randnbr\npushc 1\nout\nhalt"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kLocation)});
  ASSERT_TRUE(t.has_value());
  const sim::Location loc = t->field(0).as_location();
  EXPECT_TRUE((loc == sim::Location{1, 1}) || (loc == sim::Location{3, 1}))
      << loc;
}

TEST(EngineContext, NeighborListTracksFailures) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  EXPECT_EQ(mesh.at(0).neighbors().size(), 1u);
  // Node 1 dies; its acquaintance entry expires after ~3 beacon periods.
  mesh.net.set_radio_enabled(mesh.topo.nodes[1], false);
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).neighbors().size(), 0u);
}

}  // namespace
}  // namespace agilla::core

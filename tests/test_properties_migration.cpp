// Property sweeps over migration: across loss rates and seeds, an agent is
// never silently destroyed by a failed move — it arrives, or it resumes
// somewhere along the path with condition 0 (duplicates are allowed for
// clones, paper Sec. 3.2: "having duplicate agents in the network is
// preferable" to losing them).
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

struct SweepParam {
  double loss;
  std::uint64_t seed;
};

class MigrationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MigrationSweep, AgentConservationUnderLoss) {
  const auto [loss, seed] = GetParam();
  AgillaMesh mesh(MeshOptions{
      .width = 5, .height = 1, .packet_loss = loss, .seed = seed});
  mesh.warm();
  // The agent tries to reach (5,1) and drops a marker wherever it ends up
  // (arrival, first-hop failure, or mid-route custody resume).
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 5 1
      smove
      pushn end
      loc
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(30 * sim::kSecond);

  // At least one marker exists somewhere (the agent was never lost). A
  // duplicate is possible when a hop delivered fully but every ack was
  // lost — the paper explicitly prefers duplicates over losses (Sec. 3.2).
  std::size_t markers = 0;
  for (auto& node : mesh.nodes) {
    markers += node->tuple_space().tcount(ts::Template{
        ts::Value::string("end"),
        ts::Value::type_wildcard(ts::ValueType::kLocation)});
  }
  EXPECT_GE(markers, 1u) << "loss=" << loss << " seed=" << seed;
  EXPECT_LE(markers, 2u) << "loss=" << loss << " seed=" << seed;
  EXPECT_EQ(mesh.total_agents(), 0u);
}

TEST_P(MigrationSweep, CloneProducesAtLeastOriginalUnderLoss) {
  const auto [loss, seed] = GetParam();
  AgillaMesh mesh(MeshOptions{
      .width = 3, .height = 1, .packet_loss = loss, .seed = seed});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushloc 3 1
      sclone
      pushn end
      loc
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(30 * sim::kSecond);
  std::size_t markers = 0;
  for (auto& node : mesh.nodes) {
    markers += node->tuple_space().tcount(ts::Template{
        ts::Value::string("end"),
        ts::Value::type_wildcard(ts::ValueType::kLocation)});
  }
  // The original always survives; the clone may or may not make it.
  EXPECT_GE(markers, 1u);
  EXPECT_LE(markers, 2u);
  EXPECT_GE(mesh.at(0).tuple_space().tcount(ts::Template{
                ts::Value::string("end"),
                ts::Value::type_wildcard(ts::ValueType::kLocation)}),
            1u);
}

INSTANTIATE_TEST_SUITE_P(
    LossAndSeeds, MigrationSweep,
    ::testing::Values(SweepParam{0.0, 1}, SweepParam{0.0, 2},
                      SweepParam{0.05, 1}, SweepParam{0.05, 3},
                      SweepParam{0.15, 1}, SweepParam{0.15, 7},
                      SweepParam{0.30, 1}, SweepParam{0.30, 9},
                      SweepParam{0.50, 4}, SweepParam{0.50, 11}));

class ReliabilityTrend : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReliabilityTrend, MoreHopsMeansNoHigherSuccess) {
  // Coarse version of paper Fig. 9's monotone trend: with a lossy channel,
  // 1-hop success rate >= 4-hop success rate (statistically; we use enough
  // trials that an inversion would signal a real protocol bug).
  const std::uint64_t seed = GetParam();
  auto run_trials = [&](std::size_t hops) {
    int successes = 0;
    for (int trial = 0; trial < 12; ++trial) {
      AgillaMesh mesh(MeshOptions{.width = 5, .height = 1,
                                  .packet_loss = 0.2,
                                  .seed = seed * 100 + trial});
      mesh.warm();
      char buffer[128];
      std::snprintf(buffer, sizeof(buffer),
                    "pushloc %zu 1\nsmove\npushn end\npushc 1\nout\nhalt",
                    hops + 1);
      mesh.at(0).inject(assemble_or_die(buffer));
      mesh.sim.run_for(20 * sim::kSecond);
      if (mesh.at(hops)
              .tuple_space()
              .rdp(ts::Template{ts::Value::string("end")})
              .has_value()) {
        ++successes;
      }
    }
    return successes;
  };
  EXPECT_GE(run_trials(1) + 2, run_trials(4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReliabilityTrend, ::testing::Values(1, 2));

}  // namespace
}  // namespace agilla::core

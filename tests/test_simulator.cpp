#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace agilla::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator sim;
  SimTime observed = 0;
  sim.schedule_in(5 * kMillisecond, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed, 5 * kMillisecond);
  EXPECT_EQ(sim.now(), 5 * kMillisecond);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_in(10, [&] {
    times.push_back(sim.now());
    sim.schedule_in(15, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 25}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(10, [&] { ++fired; });
  sim.schedule_in(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(1234);
  EXPECT_EQ(sim.now(), 1234u);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.run_for(100);
  sim.run_for(50);
  EXPECT_EQ(sim.now(), 150u);
}

TEST(Simulator, EventAtDeadlineRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_in(100, [&] { fired = true; });
  sim.run_until(100);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_in(static_cast<SimTime>(i), [] {});
  }
  EXPECT_EQ(sim.run(), 7u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_at(77, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 77u);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_in(10, [&] { fired = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, SameSeedSameRngStream) {
  Simulator a(99);
  Simulator b(99);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

TEST(Simulator, ZeroDelayEventsRunInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(0, [&] {
    order.push_back(1);
    sim.schedule_in(0, [&] { order.push_back(3); });
  });
  sim.schedule_in(0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace agilla::sim

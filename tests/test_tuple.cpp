#include "tuplespace/tuple.h"

#include <gtest/gtest.h>

namespace agilla::ts {
namespace {

TEST(Tuple, BuildAndInspect) {
  const Tuple t{Value::string("fir"), Value::location({3, 3})};
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.field(0), Value::string("fir"));
  EXPECT_EQ(t.field(1), Value::location({3, 3}));
}

TEST(Tuple, RejectsWildcardFields) {
  Tuple t;
  EXPECT_FALSE(t.add(Value::type_wildcard(ValueType::kNumber)));
  EXPECT_FALSE(t.add(Value{}));
  EXPECT_TRUE(t.add(Value::number(1)));
}

TEST(Tuple, EnforcesWireBudget) {
  Tuple t;
  // Locations cost 5 bytes each; 1 count byte + 4 locations = 21; a 5th
  // would make 26 > 25.
  for (int i = 0; i < 4; ++i) {
    const double c = i;
    EXPECT_TRUE(t.add(Value::location({c, c})));
  }
  EXPECT_FALSE(t.add(Value::location({9, 9})));
  EXPECT_EQ(t.arity(), 4u);
  EXPECT_LE(t.wire_size(), kMaxTupleWireBytes);
}

TEST(Tuple, WireRoundTrip) {
  const Tuple t{Value::string("abc"), Value::number(5),
                Value::reading(sim::SensorType::kPhoto, 10)};
  net::Writer w;
  t.encode(w);
  EXPECT_EQ(w.size(), t.wire_size());
  net::Reader r(w.data());
  const auto decoded = Tuple::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, t);
}

TEST(Tuple, DecodeRejectsTruncated) {
  const Tuple t{Value::number(5)};
  net::Writer w;
  t.encode(w);
  auto bytes = w.take();
  bytes.pop_back();
  net::Reader r(bytes);
  EXPECT_FALSE(Tuple::decode(r).has_value());
}

TEST(Tuple, ToStringReadable) {
  const Tuple t{Value::string("fir"), Value::number(7)};
  EXPECT_EQ(t.to_string(), "<\"fir\", 7>");
}

TEST(Template, MatchesRequiresSameArity) {
  const Tuple t{Value::number(1), Value::number(2)};
  const Template one{Value::type_wildcard(ValueType::kNumber)};
  const Template two{Value::type_wildcard(ValueType::kNumber),
                     Value::type_wildcard(ValueType::kNumber)};
  EXPECT_FALSE(one.matches(t));
  EXPECT_TRUE(two.matches(t));
}

TEST(Template, MixedConcreteAndWildcard) {
  const Template templ{Value::string("fir"),
                       Value::type_wildcard(ValueType::kLocation)};
  EXPECT_TRUE(
      templ.matches(Tuple{Value::string("fir"), Value::location({4, 2})}));
  EXPECT_FALSE(
      templ.matches(Tuple{Value::string("ice"), Value::location({4, 2})}));
  EXPECT_FALSE(
      templ.matches(Tuple{Value::string("fir"), Value::number(42)}));
}

TEST(Template, AllConcreteIsExactMatch) {
  const Template templ{Value::number(1), Value::string("ab")};
  EXPECT_TRUE(templ.matches(Tuple{Value::number(1), Value::string("ab")}));
  EXPECT_FALSE(templ.matches(Tuple{Value::number(2), Value::string("ab")}));
}

TEST(Template, EmptyTemplateMatchesOnlyEmptyTuple) {
  const Template empty;
  EXPECT_TRUE(empty.matches(Tuple{}));
  EXPECT_FALSE(empty.matches(Tuple{Value::number(1)}));
}

TEST(Template, WireRoundTripPreservesWildcards) {
  Template templ{Value::string("fir"),
                 Value::type_wildcard(ValueType::kLocation)};
  net::Writer w;
  templ.encode(w);
  net::Reader r(w.data());
  const auto decoded = Template::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, templ);
  EXPECT_TRUE(
      decoded->matches(Tuple{Value::string("fir"), Value::location({1, 1})}));
}

TEST(Template, FieldOrderMatters) {
  const Template templ{Value::type_wildcard(ValueType::kLocation),
                       Value::string("fir")};
  EXPECT_FALSE(
      templ.matches(Tuple{Value::string("fir"), Value::location({1, 1})}));
  EXPECT_TRUE(
      templ.matches(Tuple{Value::location({1, 1}), Value::string("fir")}));
}

TEST(Template, ReadingTypeFieldMatchesReadings) {
  const Template templ{Value::reading_type(sim::SensorType::kTemperature)};
  EXPECT_TRUE(templ.matches(
      Tuple{Value::reading(sim::SensorType::kTemperature, 451)}));
  EXPECT_FALSE(
      templ.matches(Tuple{Value::reading(sim::SensorType::kPhoto, 451)}));
}

}  // namespace
}  // namespace agilla::ts

#include "net/packet.h"

#include <gtest/gtest.h>

namespace agilla::net {
namespace {

TEST(Coordinate, RoundTripsGridCoordinatesExactly) {
  for (double v : {0.0, 1.0, 5.0, -3.0, 100.0}) {
    EXPECT_DOUBLE_EQ(decode_coordinate(encode_coordinate(v)), v);
  }
}

TEST(Coordinate, SubUnitResolution) {
  // Q10.6 gives 1/64 steps.
  EXPECT_DOUBLE_EQ(decode_coordinate(encode_coordinate(2.5)), 2.5);
  EXPECT_NEAR(decode_coordinate(encode_coordinate(1.33)), 1.33, 1.0 / 64.0);
}

TEST(Coordinate, SaturatesAtInt16Range) {
  EXPECT_EQ(encode_coordinate(1e9), 32767);
  EXPECT_EQ(encode_coordinate(-1e9), -32768);
}

TEST(Location, WireRoundTrip) {
  Writer w;
  write_location(w, {3.0, 4.5});
  EXPECT_EQ(w.size(), 4u);
  Reader r(w.data());
  const sim::Location loc = read_location(r);
  EXPECT_DOUBLE_EQ(loc.x, 3.0);
  EXPECT_DOUBLE_EQ(loc.y, 4.5);
}

TEST(Epsilon, RoundTripsSixteenths) {
  EXPECT_DOUBLE_EQ(decode_epsilon(encode_epsilon(0.5)), 0.5);
  EXPECT_DOUBLE_EQ(decode_epsilon(encode_epsilon(0.0)), 0.0);
  EXPECT_NEAR(decode_epsilon(encode_epsilon(0.3)), 0.3, 1.0 / 16.0);
}

TEST(LinkHeader, RoundTrip) {
  Writer w;
  LinkHeader{42, true}.write(w);
  EXPECT_EQ(w.size(), LinkHeader::kWireSize);
  Reader r(w.data());
  const LinkHeader h = LinkHeader::read(r);
  EXPECT_EQ(h.seq, 42);
  EXPECT_TRUE(h.wants_ack);
  EXPECT_FALSE(h.has_piggyback);
}

TEST(LinkHeader, PiggybackFlagRoundTrips) {
  Writer w;
  LinkHeader{7, false, /*has_piggyback=*/true}.write(w);
  Reader r(w.data());
  const LinkHeader h = LinkHeader::read(r);
  EXPECT_EQ(h.seq, 7);
  EXPECT_FALSE(h.wants_ack);
  EXPECT_TRUE(h.has_piggyback);
}

TEST(AckPayload, RoundTrip) {
  Writer w;
  AckPayload{99}.write(w);
  Reader r(w.data());
  EXPECT_EQ(AckPayload::read(r).acked_seq, 99);
}

TEST(BeaconPayload, RoundTripAndWireSize) {
  Writer w;
  BeaconPayload{{2.0, 3.0}, 128, 10, 3}.write(w);
  EXPECT_EQ(w.size(), BeaconPayload::kWireSize);
  Reader r(w.data());
  const BeaconPayload b = BeaconPayload::read(r);
  EXPECT_DOUBLE_EQ(b.location.x, 2.0);
  EXPECT_DOUBLE_EQ(b.location.y, 3.0);
  EXPECT_EQ(b.residual, 128);
  EXPECT_EQ(b.period_units, 10);
  EXPECT_EQ(b.backoff_exp, 3);
}

TEST(Residual, QuantizationErrorIsBounded) {
  // The 1-byte encoding must stay within half a step (1/510) everywhere
  // and be exact at the endpoints (calibration note in DESIGN.md).
  EXPECT_EQ(encode_residual(1.0), 255);
  EXPECT_EQ(encode_residual(0.0), 0);
  EXPECT_EQ(encode_residual(-0.5), 0);   // clamped
  EXPECT_EQ(encode_residual(2.0), 255);  // clamped
  for (int i = 0; i <= 1000; ++i) {
    const double f = static_cast<double>(i) / 1000.0;
    const double back = decode_residual(encode_residual(f));
    EXPECT_NEAR(back, f, 0.5 / 255.0) << "f=" << f;
  }
}

TEST(GeoHeader, RoundTripAndWireSize) {
  GeoHeader h;
  h.inner_am = sim::AmType::kTsReply;
  h.dest = {5.0, 1.0};
  h.origin = {1.0, 1.0};
  h.epsilon = 0.5;
  h.ttl = 17;
  Writer w;
  h.write(w);
  EXPECT_EQ(w.size(), GeoHeader::kWireSize);
  Reader r(w.data());
  const GeoHeader parsed = GeoHeader::read(r);
  EXPECT_EQ(parsed.inner_am, sim::AmType::kTsReply);
  EXPECT_EQ(parsed.dest, (sim::Location{5.0, 1.0}));
  EXPECT_EQ(parsed.origin, (sim::Location{1.0, 1.0}));
  EXPECT_DOUBLE_EQ(parsed.epsilon, 0.5);
  EXPECT_EQ(parsed.ttl, 17);
}

TEST(Payloads, TupleBudgetFitsTinyOsMessage) {
  // The paper caps tuples at 25 bytes to fit the 27-byte TinyOS payload.
  EXPECT_LE(25u + 2u, kTinyOsPayloadBytes + LinkHeader::kWireSize);
  EXPECT_LT(kTinyOsPayloadBytes, kMaxPayloadBytes);
}

}  // namespace
}  // namespace agilla::net

#include "core/agent.h"

#include <gtest/gtest.h>

namespace agilla::core {
namespace {

Agent make_agent() { return Agent(AgentId{7}, CodeHandle{0, 10}); }

TEST(Agent, InitialRegisters) {
  Agent a = make_agent();
  EXPECT_EQ(a.id().value, 7);
  EXPECT_EQ(a.pc(), 0);
  EXPECT_EQ(a.condition(), 0);
  EXPECT_EQ(a.stack_depth(), 0u);
  EXPECT_EQ(a.run_state(), AgentRunState::kReady);
}

TEST(Agent, PushPopLifo) {
  Agent a = make_agent();
  EXPECT_TRUE(a.push(ts::Value::number(1)));
  EXPECT_TRUE(a.push(ts::Value::number(2)));
  EXPECT_EQ(a.pop().as_number(), 2);
  EXPECT_EQ(a.pop().as_number(), 1);
}

TEST(Agent, StackOverflowAtPaperDepth) {
  Agent a = make_agent();
  for (std::size_t i = 0; i < Agent::kStackDepth; ++i) {
    EXPECT_TRUE(a.push(ts::Value::number(static_cast<std::int16_t>(i))));
  }
  EXPECT_FALSE(a.push(ts::Value::number(99)));
  EXPECT_EQ(a.stack_depth(), Agent::kStackDepth);
}

TEST(Agent, PopUnderflowReturnsInvalid) {
  Agent a = make_agent();
  EXPECT_FALSE(a.pop().valid());
}

TEST(Agent, PeekDoesNotConsume) {
  Agent a = make_agent();
  ASSERT_TRUE(a.push(ts::Value::number(1)));
  ASSERT_TRUE(a.push(ts::Value::number(2)));
  EXPECT_EQ(a.peek(0).as_number(), 2);
  EXPECT_EQ(a.peek(1).as_number(), 1);
  EXPECT_FALSE(a.peek(2).valid());
  EXPECT_EQ(a.stack_depth(), 2u);
}

TEST(Agent, HeapTwelveSlots) {
  Agent a = make_agent();
  for (std::size_t i = 0; i < kHeapSlots; ++i) {
    EXPECT_TRUE(
        a.set_heap(i, ts::Value::number(static_cast<std::int16_t>(i))));
  }
  EXPECT_FALSE(a.set_heap(kHeapSlots, ts::Value::number(0)));
  EXPECT_EQ(a.heap(3).as_number(), 3);
  EXPECT_FALSE(a.heap(kHeapSlots).valid());
}

TEST(Agent, HeapEntriesOnlyValidSlots) {
  Agent a = make_agent();
  a.set_heap(2, ts::Value::number(20));
  a.set_heap(7, ts::Value::location({1, 2}));
  const auto entries = a.heap_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 2);
  EXPECT_EQ(entries[1].first, 7);
  EXPECT_EQ(entries[1].second.as_location(), (sim::Location{1, 2}));
}

TEST(Agent, ClearHeapAndStack) {
  Agent a = make_agent();
  ASSERT_TRUE(a.push(ts::Value::number(1)));
  a.set_heap(0, ts::Value::number(1));
  a.clear_stack();
  a.clear_heap();
  EXPECT_EQ(a.stack_depth(), 0u);
  EXPECT_TRUE(a.heap_entries().empty());
}

TEST(Agent, RestoreStackBottomFirst) {
  Agent a = make_agent();
  a.restore_stack({ts::Value::number(1), ts::Value::number(2)});
  EXPECT_EQ(a.pop().as_number(), 2);  // last element is top
  EXPECT_EQ(a.pop().as_number(), 1);
}

TEST(Agent, RestoreStackTruncatesOversize) {
  Agent a = make_agent();
  std::vector<ts::Value> big(Agent::kStackDepth + 5, ts::Value::number(1));
  a.restore_stack(std::move(big));
  EXPECT_EQ(a.stack_depth(), Agent::kStackDepth);
}

TEST(Agent, BlockedProbeStorage) {
  Agent a = make_agent();
  EXPECT_FALSE(a.blocked_probe().has_value());
  a.set_blocked_probe(
      Agent::BlockedProbe{ts::Template{ts::Value::number(1)}, true});
  ASSERT_TRUE(a.blocked_probe().has_value());
  EXPECT_TRUE(a.blocked_probe()->remove);
  a.set_blocked_probe(std::nullopt);
  EXPECT_FALSE(a.blocked_probe().has_value());
}

TEST(Agent, RunStateTransitions) {
  Agent a = make_agent();
  a.set_run_state(AgentRunState::kSleeping);
  EXPECT_EQ(a.run_state(), AgentRunState::kSleeping);
  EXPECT_STREQ(to_string(AgentRunState::kSleeping), "sleeping");
  EXPECT_STREQ(to_string(AgentRunState::kBlockedOp), "blocked-op");
}

}  // namespace
}  // namespace agilla::core

// Sharded event engine (DESIGN.md "Sharded event engine"): shard-count
// outcome invariance, cross-shard ordering at the lookahead boundary,
// churn across shard borders, and the slab queue's handle semantics.
#include <gtest/gtest.h>

#include <vector>

#include "api/deployment.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace agilla {
namespace {

using sim::EventHandle;
using sim::EventQueue;
using sim::NodeId;
using sim::SimTime;
using sim::Simulator;

// ------------------------------------------------ slab handle semantics

TEST(EventSlab, SizeCountsLiveEntriesExactly) {
  EventQueue q;
  EventHandle h1 = q.schedule(10, [] {});
  EventHandle h2 = q.schedule(20, [] {});
  q.schedule(30, [] {});
  EXPECT_EQ(q.size(), 3u);
  h2.cancel();
  EXPECT_EQ(q.size(), 2u);  // dead heap entry no longer counted
  h2.cancel();              // idempotent
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 30u);  // cancelled entry skipped
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  h1.cancel();  // cancel-after-fire is inert
  EXPECT_TRUE(q.empty());
}

TEST(EventSlab, StaleHandleCannotCancelSlotReuser) {
  Simulator sim;
  bool first = false;
  bool second = false;
  EventHandle h = sim.schedule_in(10, [&] { first = true; });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(h.pending());
  h.cancel();  // after fire: no-op
  // The slot is recycled under a new generation; the stale handle must
  // neither report the new event as its own nor be able to cancel it.
  EventHandle h2 = sim.schedule_in(10, [&] { second = true; });
  EXPECT_FALSE(h.pending());
  h.cancel();
  EXPECT_TRUE(h2.pending());
  sim.run();
  EXPECT_TRUE(second);
}

TEST(EventSlab, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

// ------------------------------- cross-shard ordering at the lookahead

// Events landing at exactly t + lookahead from two different shards must
// interleave by the intrinsic key (time, origin stream, seq) — the order
// the serial engine produces — not by worker arrival.
std::vector<int> run_boundary_schedule(std::size_t shards) {
  constexpr SimTime kLook = 1000;
  Simulator sim(42);
  sim.ensure_node_streams(2);
  if (shards > 1) {
    sim.configure_shards(2, {0, 1}, kLook);
  }
  std::vector<int> node1_log;  // shard 1 drains serially: no race
  // Kernel event at the same instant: must run at the barrier, before
  // every same-time node event (kernel stream orders lowest).
  sim.schedule_at(kLook, [&] { node1_log.push_back(1); });
  sim.schedule_at(0, NodeId{0}, [&] {
    // Cross-shard schedules at exactly now + lookahead: the closest
    // virtual distance the conservative window admits.
    sim.schedule_at(sim.now() + kLook, NodeId{1},
                    [&] { node1_log.push_back(100); });
    sim.schedule_at(sim.now() + kLook, NodeId{1},
                    [&] { node1_log.push_back(101); });
  });
  sim.schedule_at(0, NodeId{1}, [&] {
    sim.schedule_at(sim.now() + kLook, NodeId{1},
                    [&] { node1_log.push_back(200); });
  });
  sim.run();
  return node1_log;
}

TEST(ShardEngine, CrossShardOrderingAtLookaheadBoundary) {
  const std::vector<int> serial = run_boundary_schedule(1);
  const std::vector<int> sharded = run_boundary_schedule(2);
  // Kernel first, then node 0's cross-shard events (origin stream 1, in
  // seq order), then node 1's own event (origin stream 2).
  EXPECT_EQ(serial, (std::vector<int>{1, 100, 101, 200}));
  EXPECT_EQ(sharded, serial);
}

TEST(ShardEngine, ShardOfFollowsConfiguredMap) {
  Simulator sim;
  sim.ensure_node_streams(4);
  sim.configure_shards(2, {0, 0, 1, 1}, 500);
  EXPECT_EQ(sim.shard_count(), 2u);
  EXPECT_EQ(sim.lookahead(), 500u);
  EXPECT_EQ(sim.shard_of(NodeId{0}), 0u);
  EXPECT_EQ(sim.shard_of(NodeId{3}), 1u);
}

// --------------------------------------- whole-deployment invariance

api::DeploymentOptions churn_mesh(std::size_t shards) {
  api::DeploymentOptions options;
  options.width = 6;
  options.height = 6;
  options.seed = 7;
  options.warmup = 2 * sim::kSecond;
  options.battery_mj = 500.0;  // dies in tens of virtual seconds
  options.churn_rate = 0.02;   // plus steady crash/reboot churn
  options.churn_reboot_s = 5.0;
  options.sim_shards = shards;
  return options;
}

void expect_same_outcome(api::Deployment& a, api::Deployment& b) {
  const sim::NetworkStats sa = a.network().stats();
  const sim::NetworkStats sb = b.network().stats();
  EXPECT_EQ(sa.frames_sent, sb.frames_sent);
  EXPECT_EQ(sa.frames_delivered, sb.frames_delivered);
  EXPECT_EQ(sa.frames_lost, sb.frames_lost);
  EXPECT_EQ(sa.frames_unreachable, sb.frames_unreachable);
  EXPECT_EQ(sa.bytes_on_air, sb.bytes_on_air);
  EXPECT_EQ(sa.node_deaths, sb.node_deaths);
  EXPECT_EQ(sa.node_reboots, sb.node_reboots);
  EXPECT_EQ(sa.sent_by_type, sb.sent_by_type);

  const auto deaths_a = a.death_log();
  const auto deaths_b = b.death_log();
  ASSERT_EQ(deaths_a.size(), deaths_b.size());
  for (std::size_t i = 0; i < deaths_a.size(); ++i) {
    EXPECT_EQ(deaths_a[i].node, deaths_b[i].node);
    EXPECT_EQ(deaths_a[i].at, deaths_b[i].at);
    EXPECT_EQ(deaths_a[i].reason, deaths_b[i].reason);
  }
  EXPECT_EQ(a.reboot_count(), b.reboot_count());
  EXPECT_EQ(a.network().alive_count(), b.network().alive_count());
  // Per-node battery ledgers: every charge for a node happens in its own
  // stream in the same order whatever the shard count, so the doubles
  // must match bit for bit, not just approximately.
  for (std::size_t n = 0; n < a.network().node_count(); ++n) {
    const auto* battery_a = a.network().battery(NodeId{
        static_cast<std::uint32_t>(n)});
    const auto* battery_b = b.network().battery(NodeId{
        static_cast<std::uint32_t>(n)});
    ASSERT_EQ(battery_a == nullptr, battery_b == nullptr);
    if (battery_a != nullptr) {
      EXPECT_EQ(battery_a->remaining_mj(), battery_b->remaining_mj());
      EXPECT_EQ(battery_a->total_drained_mj(),
                battery_b->total_drained_mj());
    }
  }
}

TEST(ShardEngine, ChurnAndEnergyOutcomeInvariantAcrossShardCounts) {
  api::Deployment serial(churn_mesh(1));
  api::Deployment two(churn_mesh(2));
  api::Deployment four(churn_mesh(4));
  serial.run_for(60 * sim::kSecond);
  two.run_for(60 * sim::kSecond);
  four.run_for(60 * sim::kSecond);

  ASSERT_GT(serial.death_log().size(), 0u)
      << "test needs deaths to compare";
  ASSERT_GT(serial.reboot_count(), 0u) << "test needs reboots to compare";
  expect_same_outcome(serial, two);
  expect_same_outcome(serial, four);

  // The point of the churn leg: some of those kill/revive cycles hit
  // nodes owned by a non-primary shard, i.e. they ran on a worker.
  EXPECT_EQ(four.simulator().shard_count(), 4u);
  bool cross_shard_death = false;
  for (const auto& death : four.death_log()) {
    if (four.simulator().shard_of(death.node) > 0) {
      cross_shard_death = true;
    }
  }
  EXPECT_TRUE(cross_shard_death);
}

TEST(ShardEngine, ShardsRejectObservers) {
  class NullObserver final : public api::Observer {};
  NullObserver observer;
  api::DeploymentOptions options = churn_mesh(2);
  options.warmup = 0;
  EXPECT_THROW(api::Deployment(options, {&observer}),
               std::invalid_argument);
}

}  // namespace
}  // namespace agilla

#include "net/geo_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/topology.h"

namespace agilla::net {
namespace {

struct RoutedMesh {
  sim::Simulator sim{99};
  sim::Network net;
  sim::Topology topo;
  std::vector<std::unique_ptr<LinkLayer>> links;
  std::vector<std::unique_ptr<NeighborTable>> tables;
  std::vector<std::unique_ptr<GeoRouter>> routers;

  RoutedMesh(std::size_t w, std::size_t h, double loss = 0.0)
      : net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                     .packet_loss = loss})) {
    topo = sim::make_grid(net, w, h);
    for (sim::NodeId id : topo.nodes) {
      const sim::Location loc = net.info(id).location;
      links.push_back(std::make_unique<LinkLayer>(net, id));
      tables.push_back(
          std::make_unique<NeighborTable>(net, *links.back(), loc));
      routers.push_back(std::make_unique<GeoRouter>(
          net, *links.back(), *tables.back(), loc));
      links.back()->attach();
      tables.back()->start();
    }
    sim.run_for(5 * sim::kSecond);  // warm the neighbour tables
  }
};

TEST(GeoRouter, DecideDeliversWhenWithinEpsilon) {
  RoutedMesh mesh(3, 1);
  const auto d = mesh.routers[0]->decide({1.05, 1.0}, 0.3);
  EXPECT_EQ(d.kind, GeoRouter::Decision::Kind::kDeliverLocal);
}

TEST(GeoRouter, DecideForwardsToCloserNeighbor) {
  RoutedMesh mesh(3, 1);
  const auto d = mesh.routers[0]->decide({3.0, 1.0}, 0.3);
  ASSERT_EQ(d.kind, GeoRouter::Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, mesh.topo.nodes[1]);
}

TEST(GeoRouter, DecideNoRouteWhenNoProgressPossible) {
  RoutedMesh mesh(2, 1);
  // Destination far to the LEFT of node 0: node 1 is farther, so no route.
  const auto d = mesh.routers[0]->decide({-10.0, 1.0}, 0.3);
  EXPECT_EQ(d.kind, GeoRouter::Decision::Kind::kNoRoute);
}

TEST(GeoRouter, DeliversAcrossMultipleHops) {
  RoutedMesh mesh(5, 1);
  std::vector<std::uint8_t> got;
  sim::Location origin{0, 0};
  mesh.routers[4]->register_handler(
      sim::AmType::kTsRequest,
      [&](const GeoHeader& h, std::span<const std::uint8_t> p) {
        got.assign(p.begin(), p.end());
        origin = h.origin;
      });
  mesh.routers[0]->send({5, 1}, 0.3, sim::AmType::kTsRequest, {7, 7},
                        {1, 1});
  mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{7, 7}));
  EXPECT_EQ(origin, (sim::Location{1, 1}));
  EXPECT_EQ(mesh.routers[4]->stats().delivered, 1u);
}

TEST(GeoRouter, RoutesAroundTwoDimensions) {
  RoutedMesh mesh(4, 4);
  int delivered = 0;
  mesh.routers[15]->register_handler(
      sim::AmType::kTsRequest,
      [&](const GeoHeader&, std::span<const std::uint8_t>) { ++delivered; });
  mesh.routers[0]->send({4, 4}, 0.3, sim::AmType::kTsRequest, {1}, {1, 1});
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(delivered, 1);
}

TEST(GeoRouter, ReplyFlowsBackToOrigin) {
  RoutedMesh mesh(5, 1);
  int replies = 0;
  mesh.routers[4]->register_handler(
      sim::AmType::kTsRequest,
      [&](const GeoHeader& h, std::span<const std::uint8_t>) {
        mesh.routers[4]->send(h.origin, 0.3, sim::AmType::kTsReply, {1},
                              {5, 1});
      });
  mesh.routers[0]->register_handler(
      sim::AmType::kTsReply,
      [&](const GeoHeader&, std::span<const std::uint8_t>) { ++replies; });
  mesh.routers[0]->send({5, 1}, 0.3, sim::AmType::kTsRequest, {}, {1, 1});
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(replies, 1);
}

TEST(GeoRouter, ForwardCountMatchesHops) {
  RoutedMesh mesh(5, 1);
  mesh.routers[4]->register_handler(
      sim::AmType::kTsRequest,
      [](const GeoHeader&, std::span<const std::uint8_t>) {});
  mesh.routers[0]->send({5, 1}, 0.3, sim::AmType::kTsRequest, {}, {1, 1});
  mesh.sim.run_for(3 * sim::kSecond);
  // Origin counts 1 originated + 1 forward (to first hop); intermediate
  // nodes 1..3 each forward once.
  std::uint64_t forwards = 0;
  for (const auto& r : mesh.routers) {
    forwards += r->stats().forwarded;
  }
  EXPECT_EQ(forwards, 4u);  // 4 radio hops for 4 links
}

TEST(GeoRouter, NoRouteCountsWhenStuck) {
  RoutedMesh mesh(2, 1);
  mesh.routers[0]->send({-10, 1}, 0.3, sim::AmType::kTsRequest, {}, {1, 1});
  mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_EQ(mesh.routers[0]->stats().no_route, 1u);
}

TEST(GeoRouter, EpsilonZeroRequiresExactNode) {
  RoutedMesh mesh(3, 1);
  const auto d = mesh.routers[0]->decide({1.2, 1.0}, 0.0);
  // 0.2 away from node 0, all neighbours farther -> no route, not deliver.
  EXPECT_EQ(d.kind, GeoRouter::Decision::Kind::kNoRoute);
}

TEST(GeoRouter, LargeEpsilonDeliversEarly) {
  RoutedMesh mesh(5, 1);
  int delivered_at_3 = 0;
  mesh.routers[3]->register_handler(
      sim::AmType::kTsRequest,
      [&](const GeoHeader&, std::span<const std::uint8_t>) {
        ++delivered_at_3;
      });
  // Destination (4.6, 1): node 4 at (5,1) is within 0.5... but node 3 at
  // (4,1) is too (0.6 > 0.5, not). Use dest 4.3: node 3 is 0.3 away.
  mesh.routers[0]->send({4.3, 1.0}, 0.35, sim::AmType::kTsRequest, {},
                        {1, 1});
  mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(delivered_at_3, 1);
}

TEST(GeoRouter, TtlBoundsForwarding) {
  RoutedMesh mesh(5, 1);
  int delivered = 0;
  mesh.routers[4]->register_handler(
      sim::AmType::kTsRequest,
      [&](const GeoHeader&, std::span<const std::uint8_t>) { ++delivered; });
  // Hand-craft an envelope with ttl = 1: it can take exactly one more hop
  // after the origin's send, far short of the 4 links to (5,1).
  GeoHeader header;
  header.inner_am = sim::AmType::kTsRequest;
  header.dest = {5, 1};
  header.origin = {1, 1};
  header.epsilon = 0.3;
  header.ttl = 1;
  Writer w;
  header.write(w);
  mesh.links[0]->send_unacked(mesh.topo.nodes[1], sim::AmType::kGeo,
                              w.take());
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(delivered, 0);
  std::uint64_t expired = 0;
  for (const auto& r : mesh.routers) {
    expired += r->stats().ttl_expired;
  }
  EXPECT_EQ(expired, 1u);
}

TEST(GeoRouter, DefaultTtlSufficesForGridDiameters) {
  // The default TTL (32) must comfortably cover the testbed diameter.
  EXPECT_GE(GeoHeader::kDefaultTtl, 2 * (5 + 5));
}

// ------------------------------------------------- max-min residual policy

/// One node with a hand-seeded acquaintance list and a configurable
/// routing policy — decide() is a pure function of the table, so no
/// simulation time needs to pass.
struct PolicyFixture {
  sim::Simulator sim{7};
  sim::Network net;
  sim::NodeId self;
  LinkLayer link;
  NeighborTable table;
  GeoRouter router;

  explicit PolicyFixture(GeoRouter::Options options,
                         sim::Location at = {5, 5})
      : net(sim, std::make_unique<sim::PerfectRadio>()),
        self(net.add_node(at)),
        link(net, self),
        table(net, link, at),
        router(net, link, table, at, options) {}
};

TEST(MaxMinRouting, PrefersChargedNeighborAmongEqualProgress) {
  PolicyFixture f({.policy = RoutePolicy::kMaxMinResidual,
                   .energy_weight = 0.5});
  // Both neighbours offer identical progress toward (1,1); the west one
  // is nearly drained, the south one full.
  f.table.insert(sim::NodeId{1}, {4, 5}, /*residual=*/40,
                 /*period_units=*/1);
  f.table.insert(sim::NodeId{2}, {5, 4}, /*residual=*/255,
                 /*period_units=*/1);
  const auto d = f.router.decide({1, 1}, 0.3);
  ASSERT_EQ(d.kind, GeoRouter::Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, sim::NodeId{2});
}

TEST(MaxMinRouting, UsesDrainedRelayWhenItIsTheOnlyProgress) {
  PolicyFixture f({.policy = RoutePolicy::kMaxMinResidual,
                   .residual_floor = 0.25});
  // The only neighbour with forward progress sits below the floor; a
  // full battery behind us must not lure the packet backwards.
  f.table.insert(sim::NodeId{1}, {4, 5}, /*residual=*/10,
                 /*period_units=*/1);
  f.table.insert(sim::NodeId{2}, {6, 5}, /*residual=*/255,
                 /*period_units=*/1);
  const auto d = f.router.decide({1, 5}, 0.3);
  ASSERT_EQ(d.kind, GeoRouter::Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, sim::NodeId{1});
}

TEST(MaxMinRouting, NoProgressIsNoRouteEvenWithFullBatteries) {
  PolicyFixture f({.policy = RoutePolicy::kMaxMinResidual});
  f.table.insert(sim::NodeId{1}, {6, 5}, 255, 1);
  f.table.insert(sim::NodeId{2}, {5, 6}, 255, 1);
  EXPECT_EQ(f.router.decide({1, 5}, 0.3).kind,
            GeoRouter::Decision::Kind::kNoRoute);
}

/// Property: whenever some neighbour with forward progress sits above
/// the residual floor, max-min never selects one at or below it.
TEST(MaxMinRouting, PropertyNeverPicksBelowFloorWhenAlternativeExists) {
  sim::Rng rng(2024);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const double floor = 0.1 + 0.05 * static_cast<double>(rng.uniform(8));
    PolicyFixture f({.policy = RoutePolicy::kMaxMinResidual,
                     .energy_weight =
                         0.1 * static_cast<double>(rng.uniform(11)),
                     .residual_floor = floor});
    const std::size_t count = 1 + rng.uniform(6);
    for (std::size_t i = 0; i < count; ++i) {
      f.table.insert(
          sim::NodeId{static_cast<std::uint16_t>(i + 1)},
          {1.0 + static_cast<double>(rng.uniform(9)),
           1.0 + static_cast<double>(rng.uniform(9))},
          static_cast<std::uint8_t>(rng.uniform(256)), 1);
    }
    const sim::Location dest{
        1.0 + static_cast<double>(rng.uniform(9)),
        1.0 + static_cast<double>(rng.uniform(9))};
    const auto d = f.router.decide(dest, 0.0);
    if (d.kind != GeoRouter::Decision::Kind::kForward) {
      continue;
    }
    const auto chosen = f.table.by_id(d.next_hop);
    ASSERT_TRUE(chosen.has_value());
    if (chosen->residual_frac() > floor) {
      continue;  // above the floor: nothing to check
    }
    // The policy picked a below-floor relay: that is only legal when no
    // above-floor neighbour makes forward progress.
    const double self_d = distance({5, 5}, dest);
    for (const auto& e : f.table.entries()) {
      EXPECT_FALSE(distance(e.location, dest) < self_d &&
                   e.residual_frac() > floor)
          << "iteration " << iteration << ": below-floor relay chosen "
          << "despite above-floor neighbour n" << e.id.value;
    }
  }
}

/// Property: with the energy term switched off and uniform residuals,
/// max-min degenerates to exactly the greedy choice (same forwarding
/// graph, so enabling the policy cannot change paper-faithful routes
/// until batteries actually diverge).
TEST(MaxMinRouting, PropertyZeroWeightUniformResidualMatchesGreedy) {
  sim::Rng rng(99);
  for (int iteration = 0; iteration < 500; ++iteration) {
    PolicyFixture greedy({.policy = RoutePolicy::kGreedyGeo});
    PolicyFixture maxmin({.policy = RoutePolicy::kMaxMinResidual,
                          .energy_weight = 0.0});
    const std::size_t count = 1 + rng.uniform(6);
    for (std::size_t i = 0; i < count; ++i) {
      const sim::Location loc{
          1.0 + static_cast<double>(rng.uniform(9)),
          1.0 + static_cast<double>(rng.uniform(9))};
      greedy.table.insert(sim::NodeId{static_cast<std::uint16_t>(i + 1)},
                          loc, 200, 1);
      maxmin.table.insert(sim::NodeId{static_cast<std::uint16_t>(i + 1)},
                          loc, 200, 1);
    }
    const sim::Location dest{
        1.0 + static_cast<double>(rng.uniform(9)),
        1.0 + static_cast<double>(rng.uniform(9))};
    const auto dg = greedy.router.decide(dest, 0.0);
    const auto dm = maxmin.router.decide(dest, 0.0);
    EXPECT_EQ(dg.kind, dm.kind) << "iteration " << iteration;
    if (dg.kind == GeoRouter::Decision::Kind::kForward) {
      EXPECT_EQ(dg.next_hop, dm.next_hop) << "iteration " << iteration;
    }
  }
}

}  // namespace
}  // namespace agilla::net

// Remote tuple-space operations: rout / rinp / rrdp — end-to-end delivery,
// timeouts, retransmission, and effectively-once semantics for rinp.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(RemoteTs, ROutInsertsAtRemoteNode) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(agents::rout_once({3, 1})));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(1)})
                  .has_value());
  EXPECT_FALSE(mesh.at(0)
                   .tuple_space()
                   .rdp(ts::Template{ts::Value::number(1)})
                   .has_value());
}

TEST(RemoteTs, ROutSetsConditionOnReply) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushc 1
      pushc 1
      pushloc 2 1
      rout
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(1)})
                  .has_value());
}

TEST(RemoteTs, RInpRemovesRemotelyAndReturnsTuple) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::number(77)});
  mesh.at(0).inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      pushloc 2 1
      rinp
      pushc 1
      out            // republish the fetched tuple locally
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(77)})
                  .has_value());
  EXPECT_FALSE(mesh.at(1)
                   .tuple_space()
                   .rdp(ts::Template{ts::Value::number(77)})
                   .has_value());
}

TEST(RemoteTs, RRdpCopiesWithoutRemoving) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::number(88)});
  mesh.at(0).inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      pushloc 2 1
      rrdp
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(88)})
                  .has_value());
  EXPECT_TRUE(mesh.at(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(88)})
                  .has_value());
}

TEST(RemoteTs, ProbeMissSetsConditionZero) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      pushloc 2 1
      rinp           // no match at the destination
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(0)})
                  .has_value());
}

TEST(RemoteTs, MultiHopRoundTrip) {
  AgillaMesh mesh(MeshOptions{.width = 5, .height = 1});
  mesh.warm();
  mesh.at(4).tuple_space().out(ts::Tuple{ts::Value::number(5)});
  mesh.at(0).inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      pushloc 5 1
      rrdp
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(5)})
                  .has_value());
}

TEST(RemoteTs, UnreachableDestinationTimesOutWithConditionZero) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushc 1
      pushc 1
      pushloc -9 1
      rout
      cpush
      pushn cnd
      swap
      pushc 2
      out
      halt
  )"));
  // Paper: 2 s timeout, at most 2 retransmissions -> ~6 s to give up.
  mesh.sim.run_for(7 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cnd"),
                                    ts::Value::number(0)})
                  .has_value());
  EXPECT_EQ(mesh.at(0).remote_ts().stats().timeouts, 1u);
  EXPECT_EQ(mesh.at(0).remote_ts().stats().retransmissions, 2u);
}

TEST(RemoteTs, BaseStationApiWorks) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  bool ok = false;
  base.rout({3, 1}, ts::Tuple{ts::Value::string("cmd")},
            [&](bool success, std::optional<ts::Tuple>) { ok = success; });
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cmd")})
                  .has_value());

  std::optional<ts::Tuple> fetched;
  base.rinp({3, 1}, ts::Template{ts::Value::string("cmd")},
            [&](bool, std::optional<ts::Tuple> t) { fetched = t; });
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->field(0), ts::Value::string("cmd"));
}

TEST(RemoteTs, RetransmittedRInpDoesNotDoubleRemove) {
  // Lossy channel: the request or reply may be lost, triggering initiator
  // retransmissions. The replay cache must keep rinp effectively-once.
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1,
                              .packet_loss = 0.25, .seed = 7});
  mesh.warm();
  mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::number(1)});
  mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::number(2)});
  BaseStation base(mesh.at(0));
  int fetched = 0;
  for (int i = 0; i < 10; ++i) {
    base.rinp({2, 1},
              ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)},
              [&](bool success, std::optional<ts::Tuple>) {
                fetched += success ? 1 : 0;
              });
    mesh.sim.run_for(8 * sim::kSecond);
  }
  // Exactly two tuples existed; at most two probes can have succeeded even
  // though requests were retransmitted.
  EXPECT_LE(fetched, 2);
  const auto& stats = mesh.at(1).remote_ts().stats();
  EXPECT_EQ(stats.requests_served,
            mesh.at(1).remote_ts().stats().requests_served);
}

TEST(RemoteTs, ConcurrentRequestsFromTwoNodes) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  for (int i = 0; i < 4; ++i) {
    mesh.at(1).tuple_space().out(ts::Tuple{ts::Value::number(
        static_cast<std::int16_t>(i))});
  }
  BaseStation left(mesh.at(0));
  BaseStation right(mesh.at(2));
  int got = 0;
  const ts::Template any{ts::Value::type_wildcard(ts::ValueType::kNumber)};
  for (int i = 0; i < 2; ++i) {
    left.rinp({2, 1}, any,
              [&](bool s, std::optional<ts::Tuple>) { got += s ? 1 : 0; });
    right.rinp({2, 1}, any,
               [&](bool s, std::optional<ts::Tuple>) { got += s ? 1 : 0; });
  }
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(got, 4);
  EXPECT_EQ(mesh.at(1).tuple_space().store().tuple_count(), 0u);
}

TEST(RemoteTs, LatencyIsTensOfMilliseconds) {
  // Paper Fig. 11: one-hop rout ~55 ms (request + op + reply).
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  sim::SimTime done_at = 0;
  const sim::SimTime start = mesh.sim.now();
  base.rout({2, 1}, ts::Tuple{ts::Value::number(1)},
            [&](bool, std::optional<ts::Tuple>) { done_at = mesh.sim.now(); });
  mesh.sim.run_for(2 * sim::kSecond);
  ASSERT_GT(done_at, 0u);
  const sim::SimTime elapsed = done_at - start;
  EXPECT_GT(elapsed, 20 * sim::kMillisecond);
  EXPECT_LT(elapsed, 120 * sim::kMillisecond);
}

}  // namespace
}  // namespace agilla::core

#include "tuplespace/reaction.h"

#include <gtest/gtest.h>

namespace agilla::ts {
namespace {

Reaction make(std::uint16_t agent, std::int16_t key, std::uint16_t pc) {
  Reaction r;
  r.agent_id = agent;
  r.templ = Template{Value::number(key)};
  r.handler_pc = pc;
  return r;
}

TEST(ReactionRegistry, AddAndMatch) {
  ReactionRegistry reg;
  EXPECT_TRUE(reg.add(make(1, 7, 100)));
  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].agent_id, 1);
  EXPECT_EQ(hits[0].handler_pc, 100);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(8)}).empty());
}

TEST(ReactionRegistry, DuplicateRegistrationRejected) {
  ReactionRegistry reg;
  EXPECT_TRUE(reg.add(make(1, 7, 100)));
  EXPECT_FALSE(reg.add(make(1, 7, 200)));  // same agent + template
  EXPECT_TRUE(reg.add(make(2, 7, 200)));   // different agent is fine
}

TEST(ReactionRegistry, CapacityIsTenByDefault) {
  // Paper Sec. 3.2: 400 bytes / 10 reactions.
  ReactionRegistry reg;
  EXPECT_EQ(reg.capacity(), 10u);
  for (std::int16_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg.add(make(1, i, 0)));
  }
  EXPECT_FALSE(reg.add(make(1, 99, 0)));
}

TEST(ReactionRegistry, RemoveSpecific) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(1, 8, 100));
  EXPECT_TRUE(reg.remove(1, Template{Value::number(7)}));
  EXPECT_FALSE(reg.remove(1, Template{Value::number(7)}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ReactionRegistry, RemoveRequiresMatchingAgent) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  EXPECT_FALSE(reg.remove(2, Template{Value::number(7)}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ReactionRegistry, ExtractAllForAgent) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(2, 8, 200));
  reg.add(make(1, 9, 300));
  const auto extracted = reg.extract_all(1);
  EXPECT_EQ(extracted.size(), 2u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(8)}).size() == 1);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(7)}).empty());
}

TEST(ReactionRegistry, MultipleMatchesInRegistrationOrder) {
  ReactionRegistry reg;
  Reaction wild;
  wild.agent_id = 3;
  wild.templ = Template{Value::type_wildcard(ValueType::kNumber)};
  wild.handler_pc = 50;
  reg.add(make(1, 7, 100));
  reg.add(wild);
  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].agent_id, 1);
  EXPECT_EQ(hits[1].agent_id, 3);
}

TEST(ReactionRegistry, KeyedDispatchPreservesRegistrationOrder) {
  // The keyed rewrite buckets templates by arity and prefilters with a
  // fingerprint; firing order must still be registration order. Interleave
  // arity-1 and arity-2 registrations from several agents so a stable sort
  // by bucket would be detectable.
  ReactionRegistry reg;
  Reaction wild;
  wild.agent_id = 5;
  wild.templ = Template{Value::type_wildcard(ValueType::kNumber)};
  wild.handler_pc = 10;
  Reaction pair;
  pair.agent_id = 6;
  pair.templ = Template{Value::number(7), Value::number(8)};
  pair.handler_pc = 20;
  EXPECT_TRUE(reg.add(make(1, 7, 100)));  // arity 1, matches 7
  EXPECT_TRUE(reg.add(pair));             // arity 2, never fires below
  EXPECT_TRUE(reg.add(wild));             // arity 1, matches any number
  EXPECT_TRUE(reg.add(make(2, 7, 300)));  // arity 1, matches 7

  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].handler_pc, 100);
  EXPECT_EQ(hits[1].handler_pc, 10);
  EXPECT_EQ(hits[2].handler_pc, 300);

  // Removal in the middle keeps the survivors' relative order.
  EXPECT_TRUE(reg.remove(5, wild.templ));
  const auto after = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].handler_pc, 100);
  EXPECT_EQ(after[1].handler_pc, 300);
}

TEST(ReactionRegistry, ExtractAllOnMigrationLeavesDispatchConsistent) {
  // Strong migration extracts the agent's reactions; the keyed index must
  // neither fire the extracted entries nor disturb the remaining ones.
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(2, 7, 200));
  reg.add(make(1, 8, 300));
  const auto extracted = reg.extract_all(1);
  ASSERT_EQ(extracted.size(), 2u);
  EXPECT_EQ(extracted[0].handler_pc, 100);  // registration order preserved
  EXPECT_EQ(extracted[1].handler_pc, 300);

  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].agent_id, 2);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(8)}).empty());

  // The freed capacity and the (agent, template) pair are reusable, as on
  // a later arrival of the same agent.
  for (const Reaction& r : extracted) {
    EXPECT_TRUE(reg.add(r));
  }
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.owned_by(1).size(), 2u);
}

TEST(ReactionRegistry, OwnedByCopiesWithoutRemoving) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(2, 8, 200));
  reg.add(make(1, 9, 300));
  const auto owned = reg.owned_by(1);
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0].handler_pc, 100);
  EXPECT_EQ(owned[1].handler_pc, 300);
  EXPECT_EQ(reg.size(), 3u);  // unlike extract_all, nothing is removed
}

TEST(ReactionRegistry, CapacityRejectionAcrossMixedArities) {
  // Fill to capacity with templates landing in different arity buckets;
  // the budget is global, not per bucket.
  ReactionRegistry reg;
  for (std::int16_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(reg.add(make(1, i, 0)));
    Reaction two;
    two.agent_id = 1;
    two.templ = Template{Value::number(i), Value::number(i)};
    two.handler_pc = 0;
    EXPECT_TRUE(reg.add(two));
  }
  EXPECT_EQ(reg.size(), 10u);
  EXPECT_FALSE(reg.add(make(1, 99, 0)));
  // Duplicate add of an existing entry is rejected on identity, not
  // capacity, and leaves the registry unchanged.
  EXPECT_FALSE(reg.add(make(1, 0, 7)));
  EXPECT_EQ(reg.size(), 10u);
}

TEST(ReactionRegistry, CustomBudget) {
  ReactionRegistry reg(
      ReactionRegistry::Options{.capacity_bytes = 80,
                                .bytes_per_reaction = 40});
  EXPECT_EQ(reg.capacity(), 2u);
  EXPECT_TRUE(reg.add(make(1, 1, 0)));
  EXPECT_TRUE(reg.add(make(1, 2, 0)));
  EXPECT_FALSE(reg.add(make(1, 3, 0)));
}

}  // namespace
}  // namespace agilla::ts

#include "tuplespace/reaction.h"

#include <gtest/gtest.h>

namespace agilla::ts {
namespace {

Reaction make(std::uint16_t agent, std::int16_t key, std::uint16_t pc) {
  Reaction r;
  r.agent_id = agent;
  r.templ = Template{Value::number(key)};
  r.handler_pc = pc;
  return r;
}

TEST(ReactionRegistry, AddAndMatch) {
  ReactionRegistry reg;
  EXPECT_TRUE(reg.add(make(1, 7, 100)));
  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].agent_id, 1);
  EXPECT_EQ(hits[0].handler_pc, 100);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(8)}).empty());
}

TEST(ReactionRegistry, DuplicateRegistrationRejected) {
  ReactionRegistry reg;
  EXPECT_TRUE(reg.add(make(1, 7, 100)));
  EXPECT_FALSE(reg.add(make(1, 7, 200)));  // same agent + template
  EXPECT_TRUE(reg.add(make(2, 7, 200)));   // different agent is fine
}

TEST(ReactionRegistry, CapacityIsTenByDefault) {
  // Paper Sec. 3.2: 400 bytes / 10 reactions.
  ReactionRegistry reg;
  EXPECT_EQ(reg.capacity(), 10u);
  for (std::int16_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg.add(make(1, i, 0)));
  }
  EXPECT_FALSE(reg.add(make(1, 99, 0)));
}

TEST(ReactionRegistry, RemoveSpecific) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(1, 8, 100));
  EXPECT_TRUE(reg.remove(1, Template{Value::number(7)}));
  EXPECT_FALSE(reg.remove(1, Template{Value::number(7)}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ReactionRegistry, RemoveRequiresMatchingAgent) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  EXPECT_FALSE(reg.remove(2, Template{Value::number(7)}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ReactionRegistry, ExtractAllForAgent) {
  ReactionRegistry reg;
  reg.add(make(1, 7, 100));
  reg.add(make(2, 8, 200));
  reg.add(make(1, 9, 300));
  const auto extracted = reg.extract_all(1);
  EXPECT_EQ(extracted.size(), 2u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(8)}).size() == 1);
  EXPECT_TRUE(reg.matches(Tuple{Value::number(7)}).empty());
}

TEST(ReactionRegistry, MultipleMatchesInRegistrationOrder) {
  ReactionRegistry reg;
  Reaction wild;
  wild.agent_id = 3;
  wild.templ = Template{Value::type_wildcard(ValueType::kNumber)};
  wild.handler_pc = 50;
  reg.add(make(1, 7, 100));
  reg.add(wild);
  const auto hits = reg.matches(Tuple{Value::number(7)});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].agent_id, 1);
  EXPECT_EQ(hits[1].agent_id, 3);
}

TEST(ReactionRegistry, CustomBudget) {
  ReactionRegistry reg(
      ReactionRegistry::Options{.capacity_bytes = 80,
                                .bytes_per_reaction = 40});
  EXPECT_EQ(reg.capacity(), 2u);
  EXPECT_TRUE(reg.add(make(1, 1, 0)));
  EXPECT_TRUE(reg.add(make(1, 2, 0)));
  EXPECT_FALSE(reg.add(make(1, 3, 0)));
}

}  // namespace
}  // namespace agilla::ts

// The Mate-like baseline: capsule VM, versioning, and viral flooding.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mate/mate_node.h"
#include "sim/topology.h"

namespace agilla::mate {
namespace {

struct MateMesh {
  sim::Simulator sim{31};
  sim::Network net;
  sim::Topology topo;
  sim::SensorEnvironment env;
  std::vector<std::unique_ptr<MateNode>> nodes;

  MateMesh(std::size_t w, std::size_t h)
      : net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0})) {
    topo = sim::make_grid(net, w, h);
    for (sim::NodeId id : topo.nodes) {
      nodes.push_back(std::make_unique<MateNode>(
          net, id, &env, MateNode::Options{}));
      nodes.back()->start();
    }
  }
};

Capsule blink_forw_capsule(std::uint8_t version) {
  const std::uint8_t code[] = {
      static_cast<std::uint8_t>(MateOp::kPushc), version,
      static_cast<std::uint8_t>(MateOp::kPutLed),
      static_cast<std::uint8_t>(MateOp::kForw),
      static_cast<std::uint8_t>(MateOp::kHalt),
  };
  return make_capsule(CapsuleType::kClock, version, code);
}

TEST(MateVm, ArithmeticAndStack) {
  const std::uint8_t code[] = {
      static_cast<std::uint8_t>(MateOp::kPushc), 5,
      static_cast<std::uint8_t>(MateOp::kPushc), 7,
      static_cast<std::uint8_t>(MateOp::kAdd),
      static_cast<std::uint8_t>(MateOp::kInc),
      static_cast<std::uint8_t>(MateOp::kPutLed),
      static_cast<std::uint8_t>(MateOp::kHalt),
  };
  std::uint8_t leds = 0;
  MateHost host;
  host.set_leds = [&](std::uint8_t v) { leds = v; };
  const auto result = run_capsule(
      make_capsule(CapsuleType::kClock, 1, code), host);
  EXPECT_TRUE(result.halted);
  EXPECT_FALSE(result.error);
  EXPECT_EQ(leds, 13 & 0x7);
}

TEST(MateVm, StackUnderflowIsError) {
  const std::uint8_t code[] = {static_cast<std::uint8_t>(MateOp::kAdd)};
  const auto result =
      run_capsule(make_capsule(CapsuleType::kClock, 1, code), MateHost{});
  EXPECT_TRUE(result.error);
}

TEST(MateVm, SenseAndRandUseHost) {
  const std::uint8_t code[] = {
      static_cast<std::uint8_t>(MateOp::kSense),
      static_cast<std::uint8_t>(MateOp::kPutLed),
      static_cast<std::uint8_t>(MateOp::kHalt),
  };
  MateHost host;
  host.sense = [] { return std::int16_t{5}; };
  std::uint8_t leds = 0;
  host.set_leds = [&](std::uint8_t v) { leds = v; };
  run_capsule(make_capsule(CapsuleType::kClock, 1, code), host);
  EXPECT_EQ(leds, 5);
}

TEST(Capsule, WireRoundTrip) {
  const Capsule c = blink_forw_capsule(9);
  net::Writer w;
  c.write(w);
  EXPECT_EQ(w.size(), Capsule::kWireSize);
  net::Reader r(w.data());
  const Capsule parsed = Capsule::read(r);
  EXPECT_EQ(parsed.version, 9);
  EXPECT_EQ(parsed.type, CapsuleType::kClock);
  EXPECT_EQ(parsed.length, c.length);
  EXPECT_EQ(parsed.code, c.code);
}

TEST(Capsule, VersionComparisonWraps) {
  Capsule a = blink_forw_capsule(10);
  Capsule b = blink_forw_capsule(5);
  EXPECT_TRUE(a.newer_than(b));
  EXPECT_FALSE(b.newer_than(a));
  // 8-bit wraparound: 2 is "newer" than 250.
  Capsule wrapped = blink_forw_capsule(2);
  Capsule old = blink_forw_capsule(250);
  EXPECT_TRUE(wrapped.newer_than(old));
}

TEST(MateNode, InstallAndRunClockCapsule) {
  MateMesh mesh(1, 1);
  mesh.nodes[0]->install(blink_forw_capsule(1));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_GE(mesh.nodes[0]->stats().clock_runs, 3u);
  EXPECT_EQ(mesh.nodes[0]->leds(), 1);
}

TEST(MateNode, CapsuleFloodsWholeNetwork) {
  // Paper Sec. 1: "applications are divided into capsules that are flooded
  // throughout the network."
  MateMesh mesh(5, 5);
  mesh.nodes[0]->install(blink_forw_capsule(1));
  mesh.sim.run_for(60 * sim::kSecond);
  for (const auto& node : mesh.nodes) {
    EXPECT_EQ(node->version_of(CapsuleType::kClock), 1)
        << "node " << node->node_id();
  }
}

TEST(MateNode, NewerVersionSupersedesEverywhere) {
  MateMesh mesh(3, 3);
  mesh.nodes[0]->install(blink_forw_capsule(1));
  mesh.sim.run_for(30 * sim::kSecond);
  // Reprogram: inject version 2 at the opposite corner.
  mesh.nodes[8]->install(blink_forw_capsule(2));
  mesh.sim.run_for(30 * sim::kSecond);
  for (const auto& node : mesh.nodes) {
    EXPECT_EQ(node->version_of(CapsuleType::kClock), 2);
  }
}

TEST(MateNode, OlderVersionIsIgnored) {
  MateMesh mesh(2, 1);
  mesh.nodes[0]->install(blink_forw_capsule(5));
  mesh.sim.run_for(10 * sim::kSecond);
  ASSERT_EQ(mesh.nodes[1]->version_of(CapsuleType::kClock), 5);
  const auto installs_before = mesh.nodes[1]->stats().capsules_installed;
  mesh.nodes[0]->install(blink_forw_capsule(3));  // stale
  mesh.sim.run_for(10 * sim::kSecond);
  // Node 1 never adopts the older capsule. (Node 0 does hold it: install()
  // is the unconditioned base-station entry point.)
  EXPECT_EQ(mesh.nodes[1]->version_of(CapsuleType::kClock), 5);
  EXPECT_EQ(mesh.nodes[1]->stats().capsules_installed, installs_before);
}

TEST(MateNode, FloodingCostGrowsWithNetwork) {
  // The structural contrast with Agilla (paper Sec. 5): reprogramming via
  // Mate touches every node, so total broadcasts scale with network size.
  MateMesh small(2, 2);
  small.nodes[0]->install(blink_forw_capsule(1));
  small.sim.run_for(30 * sim::kSecond);
  std::uint64_t small_broadcasts = 0;
  for (const auto& n : small.nodes) {
    small_broadcasts += n->stats().capsules_broadcast;
  }

  MateMesh large(5, 5);
  large.nodes[0]->install(blink_forw_capsule(1));
  large.sim.run_for(30 * sim::kSecond);
  std::uint64_t large_broadcasts = 0;
  for (const auto& n : large.nodes) {
    large_broadcasts += n->stats().capsules_broadcast;
  }
  EXPECT_GT(large_broadcasts, small_broadcasts * 3);
}

}  // namespace
}  // namespace agilla::mate

#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace agilla::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(9);
  double total = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    total += rng.uniform01();
  }
  EXPECT_NEAR(total / kSamples, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace agilla::sim

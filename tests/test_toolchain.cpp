// Agent toolchain guarantees: the disassembler/assembler round trip
// (assemble(disassemble(code)) == code for ANY byte string), synthetic
// label reconstruction, the engine's instruction trace taps (identical
// across dispatch modes, zero observable effect when unset), and the
// api::Deployment::inject_file path reproducing the hand-built
// fire-detector byte-for-byte and tuple-for-tuple.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "agilla_test_helpers.h"
#include "api/deployment.h"
#include "core/agent_library.h"
#include "core/assembler.h"
#include "sim/rng.h"

namespace agilla {
namespace {

namespace fs = std::filesystem;

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry :
       fs::directory_iterator(fs::path(AGILLA_SOURCE_DIR) / "tests" /
                              "agents")) {
    if (entry.path().extension() == ".aga") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

// ------------------------------------------------------------- round trip

TEST(RoundTrip, CorpusFilesSurviveDisassembleReassemble) {
  const std::vector<fs::path> files = corpus_files();
  ASSERT_GE(files.size(), 10u) << "conformance corpus went missing";
  for (const fs::path& file : files) {
    const core::AssemblyResult original = core::assemble_file(file.string());
    ASSERT_TRUE(original.ok()) << file << "\n" << original.error_text();
    const std::string listing = core::disassemble(original.code);
    const core::AssemblyResult again = core::assemble(listing);
    ASSERT_TRUE(again.ok()) << file << "\n"
                            << again.error_text() << "\n"
                            << listing;
    EXPECT_EQ(again.code, original.code) << file << "\n" << listing;
  }
}

TEST(RoundTrip, ArbitraryBytecodeSurvives) {
  // The disassembler must never lose information: undefined opcodes,
  // truncated operands, and non-canonical encodings all come back as
  // .byte lines that reassemble to the original image.
  for (const std::uint64_t seed : {3u, 14u, 159u, 2653u}) {
    sim::Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      std::vector<std::uint8_t> code(rng.uniform(65));
      for (auto& b : code) {
        b = static_cast<std::uint8_t>(rng.uniform(256));
      }
      const std::string listing = core::disassemble(code);
      const core::AssemblyResult again = core::assemble(listing);
      ASSERT_TRUE(again.ok())
          << "seed " << seed << " case " << i << "\n"
          << again.error_text() << "\n"
          << listing;
      ASSERT_EQ(again.code, code)
          << "seed " << seed << " case " << i << "\n"
          << listing;
    }
  }
}

TEST(RoundTrip, MacroSourcesReassembleFromListing) {
  // Macro-generated code disassembles to plain instructions that round
  // trip; the golden corpus already covers this per file, this pins the
  // inline path.
  const core::AssemblyResult original = core::assemble(R"(
      .macro CLAIM name
          pushn name
          loc
          pushc 2
          out
      .endm
      BEGIN CLAIM det
            pushc 0
            setvar 1
      LOOP  getvar 1
            inc
            setvar 1
            rjump LOOP
  )");
  ASSERT_TRUE(original.ok()) << original.error_text();
  const std::string listing = core::disassemble(original.code);
  EXPECT_EQ(core::assemble(listing).code, original.code) << listing;
}

TEST(Disassembler, ReconstructsJumpLabels) {
  const core::AssemblyResult r = core::assemble(R"(
      BEGIN pushc 1
            rjumpc FWD
            rjump BEGIN
      FWD   halt
  )");
  ASSERT_TRUE(r.ok());
  const std::string listing = core::disassemble(r.code);
  // Both targets land on decode boundaries, so they come back as
  // synthetic L_<addr> labels, not raw numeric offsets.
  EXPECT_NE(listing.find("L_0:"), std::string::npos) << listing;
  EXPECT_NE(listing.find("L_6:"), std::string::npos) << listing;
  EXPECT_NE(listing.find("rjumpc L_6"), std::string::npos) << listing;
  EXPECT_NE(listing.find("rjump L_0"), std::string::npos) << listing;
  EXPECT_EQ(core::assemble(listing).code, r.code);
}

TEST(Disassembler, MidInstructionTargetStaysNumeric) {
  // rjump -1 points into the middle of its own encoding: no label can
  // represent that, so the offset must stay numeric (and round trip).
  const std::vector<std::uint8_t> code = {
      0x60, 7,                              // pushc 7
      0x28, static_cast<std::uint8_t>(-1),  // rjump into the operand byte
  };
  const std::string listing = core::disassemble(code);
  EXPECT_EQ(listing.find("L_"), std::string::npos) << listing;
  EXPECT_NE(listing.find("rjump -1"), std::string::npos) << listing;
  EXPECT_EQ(core::assemble(listing).code, code);
}

// ------------------------------------------------------------- trace taps

struct TapLog {
  std::vector<std::string> events;

  void attach(core::AgillaEngine& engine, std::size_t mote) {
    engine.hooks().on_pre_insn = [this, mote](const core::InsnEvent& e) {
      std::ostringstream os;
      os << "m" << mote << " a" << e.agent.value << " pc" << e.pc << " op"
         << static_cast<int>(e.opcode);
      events.push_back(os.str());
    };
  }
};

std::vector<std::string> traced_run(core::DispatchMode mode,
                                    const std::vector<std::uint8_t>& code) {
  MeshOptions options;
  options.width = 3;
  options.height = 3;
  options.seed = 7;
  options.config.engine.dispatch = mode;
  AgillaMesh mesh(options);
  TapLog log;
  for (std::size_t i = 0; i < mesh.nodes.size(); ++i) {
    log.attach(mesh.at(i).engine(), i);
  }
  mesh.warm();
  mesh.at(0).inject(code);
  mesh.sim.run_for(30 * sim::kSecond);
  return std::move(log.events);
}

TEST(TraceTaps, IdenticalAcrossDispatchModes) {
  // Every corpus program, switch vs threaded: the pre-instruction event
  // stream (mote, agent, pc, opcode) must match exactly.
  for (const fs::path& file : corpus_files()) {
    const core::AssemblyResult r = core::assemble_file(file.string());
    ASSERT_TRUE(r.ok()) << file;
    const auto sw = traced_run(core::DispatchMode::kSwitch, r.code);
    const auto th = traced_run(core::DispatchMode::kThreaded, r.code);
    ASSERT_FALSE(sw.empty()) << file;
    EXPECT_EQ(sw, th) << file;
  }
}

TEST(TraceTaps, PostInsnSkipsDestroyedAgents) {
  MeshOptions options;
  options.width = 1;
  options.height = 1;
  AgillaMesh mesh(options);
  std::vector<std::uint8_t> pre_ops;
  std::vector<std::uint8_t> post_ops;
  mesh.at(0).engine().hooks().on_pre_insn =
      [&](const core::InsnEvent& e) { pre_ops.push_back(e.opcode); };
  mesh.at(0).engine().hooks().on_post_insn =
      [&](const core::InsnEvent& e) { post_ops.push_back(e.opcode); };
  // halt destroys the agent: pre fires, post must not.
  mesh.at(0).inject(core::assemble_or_die("pushc 1\nhalt"));
  mesh.sim.run_for(sim::kSecond);
  ASSERT_EQ(pre_ops.size(), 2u);
  ASSERT_EQ(post_ops.size(), 1u);
  EXPECT_EQ(post_ops[0], pre_ops[0]);  // only pushc got a post event
}

std::string final_state(core::DispatchMode mode, bool trace,
                        const std::vector<std::uint8_t>& code) {
  MeshOptions options;
  options.width = 1;
  options.height = 1;
  options.seed = 7;
  options.config.engine.dispatch = mode;
  AgillaMesh mesh(options);
  if (trace) {
    mesh.at(0).engine().enable_trace_ring(16);
  }
  mesh.warm();
  mesh.at(0).inject(code);
  mesh.sim.run_for(20 * sim::kSecond);
  std::ostringstream os;
  const core::EngineStats& s = mesh.at(0).engine().stats();
  os << s.instructions << " " << s.slices << " " << s.vm_errors << " "
     << s.agents_halted << "\n";
  for (const ts::Tuple& t : mesh.at(0).tuple_space().store().snapshot()) {
    os << t.to_string() << "\n";
  }
  return os.str();
}

TEST(TraceTaps, TracingDoesNotPerturbSimulation) {
  const auto code = core::assemble_file(
      (fs::path(AGILLA_SOURCE_DIR) / "tests/agents/arith.aga").string());
  ASSERT_TRUE(code.ok());
  const std::string off = final_state(core::DispatchMode::kThreaded, false,
                                      code.code);
  const std::string on = final_state(core::DispatchMode::kThreaded, true,
                                     code.code);
  EXPECT_EQ(off, on);
  EXPECT_EQ(final_state(core::DispatchMode::kSwitch, false, code.code), off);
}

TEST(TraceTaps, RingIsBoundedAndOldestFirst) {
  MeshOptions options;
  options.width = 1;
  options.height = 1;
  AgillaMesh mesh(options);
  std::vector<std::uint16_t> all_pcs;
  mesh.at(0).engine().hooks().on_pre_insn =
      [&](const core::InsnEvent& e) { all_pcs.push_back(e.pc); };
  mesh.at(0).engine().enable_trace_ring(8);
  const auto code = core::assemble_file(
      (fs::path(AGILLA_SOURCE_DIR) / "tests/agents/arith.aga").string());
  ASSERT_TRUE(code.ok());
  mesh.at(0).inject(code.code);
  mesh.sim.run_for(5 * sim::kSecond);

  const std::vector<core::TraceRecord> ring =
      mesh.at(0).engine().trace_ring();
  ASSERT_GT(all_pcs.size(), 8u);
  ASSERT_EQ(ring.size(), 8u);  // bounded at capacity
  // Oldest-first: the ring holds exactly the last 8 events, in order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ring[i].pc, all_pcs[all_pcs.size() - 8 + i]) << i;
  }
  // Monotonic timestamps.
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LE(ring[i - 1].at, ring[i].at);
  }
}

TEST(TraceTaps, SingleStepLimitsSlicesToOneInstruction) {
  const auto code = core::assemble_file(
      (fs::path(AGILLA_SOURCE_DIR) / "tests/agents/heap_macro.aga").string());
  ASSERT_TRUE(code.ok());
  auto run = [&](bool single_step) {
    MeshOptions options;
    options.width = 1;
    options.height = 1;
    AgillaMesh mesh(options);
    mesh.at(0).engine().set_single_step(single_step);
    mesh.at(0).inject(code.code);
    mesh.sim.run_for(20 * sim::kSecond);
    const core::EngineStats& s = mesh.at(0).engine().stats();
    std::string tuples;
    for (const ts::Tuple& t : mesh.at(0).tuple_space().store().snapshot()) {
      tuples += t.to_string();
    }
    return std::tuple(s.instructions, s.slices, tuples);
  };
  const auto [insn_fast, slices_fast, tuples_fast] = run(false);
  const auto [insn_step, slices_step, tuples_step] = run(true);
  // Same program outcome either way...
  EXPECT_EQ(insn_fast, insn_step);
  EXPECT_EQ(tuples_fast, tuples_step);
  EXPECT_EQ(tuples_step, "<\"fac\", 120>");
  // ...but single-stepping takes one slice per instruction.
  EXPECT_EQ(slices_step, insn_step);
  EXPECT_LT(slices_fast, slices_step);
}

// ------------------------------------------------------------ inject_file

api::DeploymentOptions small_grid() {
  api::DeploymentOptions options;
  options.width = 3;
  options.height = 3;
  options.packet_loss = 0.0;
  options.per_byte_loss = 0.0;
  options.seed = 11;
  return options;
}

std::string tuple_dump(api::Deployment& d) {
  std::ostringstream os;
  for (std::size_t m = 0; m < d.mote_count(); ++m) {
    for (const ts::Tuple& t : d.mote(m).tuple_space().store().snapshot()) {
      os << m << " " << t.to_string() << "\n";
    }
  }
  return os.str();
}

TEST(InjectFile, FireDetectorMatchesHandBuiltAgent) {
  const fs::path source =
      fs::path(AGILLA_SOURCE_DIR) / "tests/agents/fire_detector.aga";
  // Byte-for-byte: the corpus file is the library builder's program.
  const core::AssemblyResult from_file =
      core::assemble_file(source.string());
  ASSERT_TRUE(from_file.ok()) << from_file.error_text();
  const std::vector<std::uint8_t> hand = core::assemble_or_die(
      core::agents::fire_detector({0, 0}, 200, 80, 0));
  ASSERT_EQ(from_file.code, hand);

  // And behaviourally: same seed, file-injected vs hand-built, identical
  // tuple spaces after the detector floods the mesh.
  api::Deployment via_file(small_grid());
  ASSERT_TRUE(via_file.inject_file(source.string()).has_value());
  via_file.run_for(30 * sim::kSecond);

  api::Deployment via_library(small_grid());
  ASSERT_TRUE(via_library.mote(0).inject(hand).has_value());
  via_library.run_for(30 * sim::kSecond);

  const std::string dump = tuple_dump(via_file);
  EXPECT_EQ(dump, tuple_dump(via_library));
  // Every mote got claimed by exactly one <"det", loc> tuple.
  EXPECT_EQ(via_file.motes_matching(
                ts::Template{ts::Value::string("det"),
                             ts::Value::type_wildcard(ts::ValueType::kLocation)}),
            via_file.mote_count());
  EXPECT_NE(dump.find("<\"det\", (1,1)>"), std::string::npos) << dump;
}

TEST(InjectFile, BadSourceThrowsWithDiagnostics) {
  api::Deployment d(small_grid());
  const fs::path bad = fs::path(::testing::TempDir()) / "bad_agent.aga";
  std::ofstream(bad) << "halt\nbogus 1\n";
  try {
    d.inject_file(bad.string());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad_agent.aga:2"), std::string::npos) << what;
  }
  EXPECT_THROW(d.inject_file("/nonexistent/nope.aga"), std::runtime_error);
}

}  // namespace
}  // namespace agilla

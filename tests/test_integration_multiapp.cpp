// Multiple independent applications sharing one network (paper Secs. 1/2:
// "Multiple applications can coexist since agents belonging to different
// applications can coexist").
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(MultiApp, HabitatMonitorAndBlinkerCoexist) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(20.0));
  mesh.at(0).inject(assemble_or_die(agents::habitat_monitor(8)));
  mesh.at(0).inject(assemble_or_die(agents::blinker(4)));
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).agents().count(), 2u);
  EXPECT_GE(mesh.at(0).tuple_space().tcount(ts::Template{
                ts::Value::string("hab"),
                ts::Value::type_wildcard(ts::ValueType::kReading)}),
            1u);
  EXPECT_NE(mesh.at(0).engine().leds(), 0u);
}

TEST(MultiApp, FireAlertKillsHabitatMonitorViaTupleSpace) {
  // The Sec. 2.2 decoupling scenario: the fire application and the habitat
  // application never reference each other — coordination happens through
  // the <"fir", loc> tuple alone.
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(300.0));
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(agents::habitat_monitor(8)));
  mesh.sim.run_for(2 * sim::kSecond);
  ASSERT_EQ(mesh.at(0).agents().count(), 1u);
  // A detector on node 2 routs a fire alert onto node 1's tuple space.
  mesh.at(1).inject(assemble_or_die(R"(
      pushn fir
      loc
      pushc 2
      pushloc 1 1
      rout
      halt
  )"));
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).agents().count(), 0u);  // monitor self-terminated
}

TEST(MultiApp, AgentsFromDifferentAppsShareTupleSpaceSafely) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  // App A publishes <1,x>; app B publishes <"b",x>; each consumes only its
  // own tuples.
  mesh.at(0).inject(assemble_or_die(R"(
      pushc 1
      pushc 10
      pushc 2
      out
      pushc 1
      pusht NUMBER
      pushc 2
      inp
      pop
      pop
      pushn okA
      pushc 1
      out
      halt
  )"));
  mesh.at(0).inject(assemble_or_die(R"(
      pushn b
      pushc 20
      pushc 2
      out
      pushn b
      pusht NUMBER
      pushc 2
      inp
      pop
      pop
      pushn okB
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("oka")})
                  .has_value());
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("okb")})
                  .has_value());
}

TEST(MultiApp, InNetworkReprogrammingByInjectingNewAgents) {
  // "An Agilla network is deployed with no pre-installed application" —
  // inject app 1, let it finish, inject app 2.
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject_at(assemble_or_die("pushn ap1\npushc 1\nout\nhalt"), {2, 1});
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("ap1")})
                  .has_value());
  EXPECT_EQ(mesh.at(1).agents().count(), 0u);  // app 1 finished and died
  base.inject_at(assemble_or_die("pushn ap2\npushc 1\nout\nhalt"), {2, 1});
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(mesh.at(1)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("ap2")})
                  .has_value());
}

TEST(MultiApp, FourConcurrentAgentsRoundRobinFairly) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  // Four counters, each outs its tag then halts after N iterations; all
  // four must complete (round-robin guarantees progress for everyone).
  for (int k = 0; k < 4; ++k) {
    std::string tag = "a";
    tag[0] = static_cast<char>('a' + k);
    mesh.at(0).inject(assemble_or_die(
        "pushc 30\nsetvar 0\n"
        "LOOP getvar 0\ndec\nsetvar 0\ngetvar 0\npushc 0\nceq\n"
        "rjumpc DONE\nrjump LOOP\n"
        "DONE pushn " + tag + "\npushc 1\nout\nhalt\n"));
  }
  mesh.sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).engine().stats().agents_halted, 4u);
  for (int k = 0; k < 4; ++k) {
    std::string tag = "a";
    tag[0] = static_cast<char>('a' + k);
    EXPECT_TRUE(mesh.at(0)
                    .tuple_space()
                    .rdp(ts::Template{ts::Value::string(tag)})
                    .has_value())
        << tag;
  }
}

}  // namespace
}  // namespace agilla::core

// The per-node facade: construction, wiring, config plumbing.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(Middleware, DefaultsMatchPaper) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const AgillaConfig& config = mesh.at(0).config();
  EXPECT_EQ(config.code_pool_blocks, 20u);                      // 440 B
  EXPECT_EQ(config.agents.max_agents, 4u);
  EXPECT_EQ(config.tuple_space.store_capacity_bytes, 600u);
  EXPECT_EQ(config.tuple_space.registry.capacity_bytes, 400u);
  EXPECT_EQ(config.link.ack_timeout, 100 * sim::kMillisecond);
  EXPECT_EQ(config.link.max_retries, 4);
  EXPECT_EQ(config.migration.receiver_abort, 250 * sim::kMillisecond);
  EXPECT_EQ(config.remote_ts.reply_timeout, 2 * sim::kSecond);
  EXPECT_EQ(config.remote_ts.max_retries, 2);
  EXPECT_EQ(config.engine.instructions_per_slice, 4u);
}

TEST(Middleware, LocationComesFromNetwork) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 2});
  EXPECT_EQ(mesh.at(0).location(), (sim::Location{1, 1}));
  EXPECT_EQ(mesh.at(5).location(), (sim::Location{3, 2}));
}

TEST(Middleware, StartIsIdempotentEnough) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.at(0).start();  // second call: must not crash or double-beacon
  mesh.warm();
  EXPECT_EQ(mesh.at(0).neighbors().size(), 1u);
}

TEST(Middleware, InjectRunsAgent) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const auto id = mesh.at(0).inject(
      assemble_or_die("pushc 3\npushc 1\nout\nhalt"));
  ASSERT_TRUE(id.has_value());
  mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(3)})
                  .has_value());
}

TEST(Middleware, CustomConfigHonored) {
  AgillaConfig config;
  config.agents.max_agents = 2;
  config.code_pool_blocks = 5;
  config.tuple_space.store_capacity_bytes = 100;
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1, .config = config});
  EXPECT_EQ(mesh.at(0).agents().capacity(), 2u);
  EXPECT_EQ(mesh.at(0).code_pool().capacity_bytes(), 110u);
  EXPECT_EQ(mesh.at(0).tuple_space().store().capacity_bytes(), 100u);
}

TEST(Middleware, TraceReceivesAgentEvents) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  sim::TraceRecorder recorder;
  recorder.attach(mesh.trace);
  mesh.at(0).inject(assemble_or_die("halt"));
  mesh.sim.run_for(100 * sim::kMillisecond);
  EXPECT_GE(recorder.count_containing("launched"), 1u);
  EXPECT_GE(recorder.count_containing("halt"), 1u);
}

TEST(Middleware, NodesAreIsolatedStacks) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.at(0).tuple_space().out(ts::Tuple{ts::Value::number(1)});
  EXPECT_EQ(mesh.at(1).tuple_space().store().tuple_count(), 0u);
}

}  // namespace
}  // namespace agilla::core

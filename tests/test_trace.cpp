#include "sim/trace.h"

#include <gtest/gtest.h>

namespace agilla::sim {
namespace {

TEST(Trace, DisabledWithoutSubscribers) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  trace.emit(0, TraceCategory::kAgent, NodeId{1}, "ignored");  // no crash
}

TEST(Trace, RecorderCapturesRecords) {
  Trace trace;
  TraceRecorder recorder;
  recorder.attach(trace);
  EXPECT_TRUE(trace.enabled());
  trace.emit(100, TraceCategory::kMigration, NodeId{3}, "arrival agent#7");
  trace.emit(200, TraceCategory::kAgent, NodeId{3}, "halt");
  ASSERT_EQ(recorder.records().size(), 2u);
  EXPECT_EQ(recorder.records()[0].time, 100u);
  EXPECT_EQ(recorder.records()[0].category, TraceCategory::kMigration);
  EXPECT_EQ(recorder.records()[1].message, "halt");
}

TEST(Trace, CountContaining) {
  Trace trace;
  TraceRecorder recorder;
  recorder.attach(trace);
  trace.emit(0, TraceCategory::kAgent, NodeId{0}, "agent#1 launched");
  trace.emit(0, TraceCategory::kAgent, NodeId{0}, "agent#2 launched");
  trace.emit(0, TraceCategory::kAgent, NodeId{0}, "agent#1 halt");
  EXPECT_EQ(recorder.count_containing("launched"), 2u);
  EXPECT_EQ(recorder.count_containing("agent#1"), 2u);
  EXPECT_EQ(recorder.count_containing("nothing"), 0u);
}

TEST(Trace, MultipleSubscribersAllReceive) {
  Trace trace;
  TraceRecorder a;
  TraceRecorder b;
  a.attach(trace);
  b.attach(trace);
  trace.emit(1, TraceCategory::kLink, NodeId{2}, "x");
  EXPECT_EQ(a.records().size(), 1u);
  EXPECT_EQ(b.records().size(), 1u);
}

TEST(Trace, FormatIsHumanReadable) {
  const TraceRecord record{1500, TraceCategory::kTupleSpace, NodeId{4},
                           "out <1>"};
  const std::string line = format(record);
  EXPECT_NE(line.find("1500us"), std::string::npos);
  EXPECT_NE(line.find("[ts]"), std::string::npos);
  EXPECT_NE(line.find("n4"), std::string::npos);
  EXPECT_NE(line.find("out <1>"), std::string::npos);
}

TEST(Trace, CategoryNames) {
  EXPECT_STREQ(to_string(TraceCategory::kMigration), "migration");
  EXPECT_STREQ(to_string(TraceCategory::kRemoteOp), "remote-op");
  EXPECT_STREQ(to_string(TraceCategory::kMate), "mate");
}

}  // namespace
}  // namespace agilla::sim

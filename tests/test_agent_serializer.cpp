#include "core/agent_serializer.h"

#include <gtest/gtest.h>

#include <numeric>

namespace agilla::core {
namespace {

AgentImage sample_image() {
  AgentImage image;
  image.agent_id = 0x0305;
  image.op = MigrationOp::kSMove;
  image.dest = {5, 1};
  image.pc = 17;
  image.condition = 1;
  image.code.resize(50);
  std::iota(image.code.begin(), image.code.end(), std::uint8_t{1});
  image.stack = {ts::Value::number(4), ts::Value::location({2, 2}),
                 ts::Value::string("abc"), ts::Value::number(-9),
                 ts::Value::agent_id(3)};
  image.heap = {{1, ts::Value::number(10)},
                {5, ts::Value::reading(sim::SensorType::kPhoto, 7)}};
  ts::Reaction rxn;
  rxn.agent_id = 0x0305;
  rxn.templ = ts::Template{ts::Value::string("fir"),
                           ts::Value::type_wildcard(ts::ValueType::kLocation)};
  rxn.handler_pc = 11;
  image.reactions = {rxn};
  return image;
}

AgentImage round_trip(const AgentImage& image) {
  const auto messages = to_messages(image, 42);
  ImageAssembler assembler;
  for (const auto& m : messages) {
    EXPECT_TRUE(assembler.feed(m.am, m.payload));
  }
  EXPECT_TRUE(assembler.complete());
  return assembler.take();
}

TEST(Serializer, MessageSizesMatchPaperFig5) {
  const auto messages = to_messages(sample_image(), 1);
  for (const auto& m : messages) {
    switch (m.am) {
      case sim::AmType::kAgentState:
        EXPECT_EQ(m.payload.size(), kStateMessageBytes);   // 20 B
        break;
      case sim::AmType::kAgentCode:
        EXPECT_EQ(m.payload.size(), kCodeMessageBytes);    // 28 B
        break;
      case sim::AmType::kAgentHeap:
        EXPECT_EQ(m.payload.size(), kHeapMessageBytes);    // 32 B
        break;
      case sim::AmType::kAgentStack:
        EXPECT_EQ(m.payload.size(), kStackMessageBytes);   // 30 B
        break;
      case sim::AmType::kAgentReaction:
        EXPECT_EQ(m.payload.size(), kReactionMessageBytes);// 36 B
        break;
      default:
        FAIL() << "unexpected AM type";
    }
  }
  EXPECT_EQ(kStateMessageBytes, 20u);
  EXPECT_EQ(kCodeMessageBytes, 28u);
  EXPECT_EQ(kHeapMessageBytes, 32u);
  EXPECT_EQ(kStackMessageBytes, 30u);
  EXPECT_EQ(kReactionMessageBytes, 36u);
}

TEST(Serializer, MessageBreakdownForSampleAgent) {
  // 50 code bytes -> 3 blocks; 5 stack values -> 2 messages; 2 heap vars ->
  // 1 message; 1 reaction; 1 state. Total 8.
  const auto messages = to_messages(sample_image(), 1);
  EXPECT_EQ(messages.size(), 8u);
  EXPECT_EQ(messages[0].am, sim::AmType::kAgentState);
}

TEST(Serializer, MinimalAgentIsTwoMessages) {
  // Paper Sec. 3.2: "At a minimum, a migration requires two messages: one
  // state and one code."
  AgentImage image;
  image.agent_id = 1;
  image.op = MigrationOp::kWMove;
  image.code = {0x00};
  const auto messages = to_messages(image, 0);
  EXPECT_EQ(messages.size(), 2u);
}

TEST(Serializer, StrongOpsAlwaysShipStackAndHeapMessages) {
  // Even an empty-context strong move transmits one stack and one heap
  // message — the fixed 4-message cost behind the Fig. 11 smove latency.
  AgentImage image;
  image.agent_id = 1;
  image.op = MigrationOp::kSMove;
  image.code = {0x00};
  const auto messages = to_messages(image, 0);
  ASSERT_EQ(messages.size(), 4u);
  EXPECT_EQ(messages[2].am, sim::AmType::kAgentStack);
  EXPECT_EQ(messages[3].am, sim::AmType::kAgentHeap);

  ImageAssembler assembler;
  for (const auto& m : messages) {
    ASSERT_TRUE(assembler.feed(m.am, m.payload));
  }
  ASSERT_TRUE(assembler.complete());
  const AgentImage copy = assembler.take();
  EXPECT_TRUE(copy.stack.empty());
  EXPECT_TRUE(copy.heap.empty());
}

TEST(Serializer, RoundTripPreservesEverything) {
  const AgentImage original = sample_image();
  const AgentImage copy = round_trip(original);
  EXPECT_EQ(copy.agent_id, original.agent_id);
  EXPECT_EQ(copy.op, original.op);
  EXPECT_EQ(copy.dest, original.dest);
  EXPECT_EQ(copy.pc, original.pc);
  EXPECT_EQ(copy.code, original.code);
  ASSERT_EQ(copy.stack.size(), original.stack.size());
  for (std::size_t i = 0; i < copy.stack.size(); ++i) {
    EXPECT_EQ(copy.stack[i], original.stack[i]) << i;
  }
  ASSERT_EQ(copy.heap.size(), original.heap.size());
  EXPECT_EQ(copy.heap[0].first, 1);
  EXPECT_EQ(copy.heap[1].second.sensor(), sim::SensorType::kPhoto);
  ASSERT_EQ(copy.reactions.size(), 1u);
  EXPECT_EQ(copy.reactions[0].handler_pc, 11);
  EXPECT_TRUE(copy.reactions[0].templ.matches(
      ts::Tuple{ts::Value::string("fir"), ts::Value::location({9, 9})}));
}

TEST(Serializer, WeakImageCarriesOnlyCode) {
  AgentImage image = sample_image();
  image.op = MigrationOp::kWClone;
  image.weaken();
  EXPECT_EQ(image.pc, 0);
  EXPECT_TRUE(image.stack.empty());
  EXPECT_TRUE(image.heap.empty());
  EXPECT_TRUE(image.reactions.empty());
  const auto messages = to_messages(image, 3);
  EXPECT_EQ(messages.size(), 1u + CodePool::blocks_needed(image.code.size()));
}

TEST(Serializer, OutOfOrderNonStateMessagesRejected) {
  const auto messages = to_messages(sample_image(), 9);
  ImageAssembler assembler;
  // Code before state: rejected (sender always ships state first).
  EXPECT_FALSE(assembler.feed(messages[1].am, messages[1].payload));
  EXPECT_TRUE(assembler.feed(messages[0].am, messages[0].payload));
  EXPECT_TRUE(assembler.feed(messages[1].am, messages[1].payload));
}

TEST(Serializer, CodeBlocksInAnyOrderAfterState) {
  const auto messages = to_messages(sample_image(), 9);
  ImageAssembler assembler;
  EXPECT_TRUE(assembler.feed(messages[0].am, messages[0].payload));
  // Feed everything else in reverse.
  for (std::size_t i = messages.size(); i-- > 1;) {
    EXPECT_TRUE(assembler.feed(messages[i].am, messages[i].payload));
  }
  EXPECT_TRUE(assembler.complete());
  EXPECT_EQ(assembler.take().code, sample_image().code);
}

TEST(Serializer, IncompleteIsNotComplete) {
  const auto messages = to_messages(sample_image(), 9);
  ImageAssembler assembler;
  for (std::size_t i = 0; i + 1 < messages.size(); ++i) {
    assembler.feed(messages[i].am, messages[i].payload);
    EXPECT_FALSE(assembler.complete());
  }
}

TEST(Serializer, DuplicateMessagesAreIdempotent) {
  const auto messages = to_messages(sample_image(), 9);
  ImageAssembler assembler;
  for (const auto& m : messages) {
    EXPECT_TRUE(assembler.feed(m.am, m.payload));
    assembler.feed(m.am, m.payload);  // duplicate (retransmission)
  }
  ASSERT_TRUE(assembler.complete());
  const AgentImage image = assembler.take();
  EXPECT_EQ(image.heap.size(), 2u);  // not duplicated
  EXPECT_EQ(image.stack.size(), 5u);
}

TEST(Serializer, ForeignTransferRejected) {
  const auto mine = to_messages(sample_image(), 9);
  AgentImage other_image = sample_image();
  other_image.agent_id = 0x9999;
  const auto other = to_messages(other_image, 9);
  ImageAssembler assembler;
  EXPECT_TRUE(assembler.feed(mine[0].am, mine[0].payload));
  EXPECT_FALSE(assembler.feed(other[1].am, other[1].payload));
}

TEST(Serializer, MalformedStateRejected) {
  ImageAssembler assembler;
  const std::vector<std::uint8_t> garbage(kStateMessageBytes, 0xFF);
  EXPECT_FALSE(assembler.feed(sim::AmType::kAgentState, garbage));
}

TEST(Serializer, TruncatedPayloadRejected) {
  const auto messages = to_messages(sample_image(), 9);
  ImageAssembler assembler;
  std::vector<std::uint8_t> cut(messages[0].payload.begin(),
                                messages[0].payload.begin() + 5);
  EXPECT_FALSE(assembler.feed(sim::AmType::kAgentState, cut));
}

TEST(Serializer, MigrationOpNames) {
  EXPECT_STREQ(to_string(MigrationOp::kSMove), "smove");
  EXPECT_STREQ(to_string(MigrationOp::kWClone), "wclone");
  EXPECT_TRUE(is_strong(MigrationOp::kSClone));
  EXPECT_FALSE(is_strong(MigrationOp::kWMove));
  EXPECT_TRUE(is_clone(MigrationOp::kWClone));
  EXPECT_FALSE(is_clone(MigrationOp::kSMove));
}

TEST(Serializer, FullStackAndHeapRoundTrip) {
  AgentImage image;
  image.agent_id = 2;
  image.op = MigrationOp::kSClone;
  image.code = {0x00};
  for (std::size_t i = 0; i < Agent::kStackDepth; ++i) {
    image.stack.push_back(ts::Value::number(static_cast<std::int16_t>(i)));
  }
  for (std::uint8_t i = 0; i < kHeapSlots; ++i) {
    image.heap.emplace_back(i, ts::Value::number(i));
  }
  const auto messages = to_messages(image, 1);
  // 1 state + 1 code + 4 stack (16/4) + 3 heap (12/4).
  EXPECT_EQ(messages.size(), 9u);
  ImageAssembler assembler;
  for (const auto& m : messages) {
    ASSERT_TRUE(assembler.feed(m.am, m.payload));
  }
  ASSERT_TRUE(assembler.complete());
  const AgentImage copy = assembler.take();
  EXPECT_EQ(copy.stack.size(), Agent::kStackDepth);
  EXPECT_EQ(copy.heap.size(), kHeapSlots);
}

}  // namespace
}  // namespace agilla::core

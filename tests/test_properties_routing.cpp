// Property sweeps over greedy geographic routing: progress (each hop is
// strictly closer to the destination), no loops, and delivery on connected
// grids without loss.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/geo_router.h"
#include "sim/topology.h"

namespace agilla::net {
namespace {

struct RoutedMesh {
  sim::Simulator sim;
  sim::Network net;
  sim::Topology topo;
  std::vector<std::unique_ptr<LinkLayer>> links;
  std::vector<std::unique_ptr<NeighborTable>> tables;
  std::vector<std::unique_ptr<GeoRouter>> routers;

  RoutedMesh(std::size_t w, std::size_t h, std::uint64_t seed)
      : sim(seed),
        net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0})) {
    topo = sim::make_grid(net, w, h);
    for (sim::NodeId id : topo.nodes) {
      const sim::Location loc = net.info(id).location;
      links.push_back(std::make_unique<LinkLayer>(net, id));
      tables.push_back(
          std::make_unique<NeighborTable>(net, *links.back(), loc));
      routers.push_back(std::make_unique<GeoRouter>(
          net, *links.back(), *tables.back(), loc));
      links.back()->attach();
      tables.back()->start();
    }
    sim.run_for(5 * sim::kSecond);
  }
};

class RoutingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingSweep, GreedyPathMakesStrictProgress) {
  RoutedMesh mesh(5, 5, GetParam());
  sim::Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t src = rng.uniform(mesh.topo.size());
    const std::size_t dst = rng.uniform(mesh.topo.size());
    const sim::Location dest_loc =
        mesh.net.info(mesh.topo.nodes[dst]).location;

    // Follow decide() by hand and check distance decreases every hop.
    std::size_t current = src;
    std::size_t hops = 0;
    while (true) {
      ASSERT_LT(hops, mesh.topo.size()) << "routing loop detected";
      const auto decision = mesh.routers[current]->decide(dest_loc, 0.3);
      if (decision.kind == GeoRouter::Decision::Kind::kDeliverLocal) {
        EXPECT_EQ(current, dst);
        break;
      }
      ASSERT_EQ(decision.kind, GeoRouter::Decision::Kind::kForward)
          << "no route on a fully connected grid";
      const double before = distance(
          mesh.net.info(mesh.topo.nodes[current]).location, dest_loc);
      current = decision.next_hop.value;
      const double after = distance(
          mesh.net.info(mesh.topo.nodes[current]).location, dest_loc);
      EXPECT_LT(after, before);
      ++hops;
    }
    // Greedy on a full grid takes exactly the Manhattan distance.
    const auto manhattan = hop_distance(mesh.net, mesh.topo.nodes[src],
                                        mesh.topo.nodes[dst]);
    ASSERT_TRUE(manhattan.has_value());
    EXPECT_EQ(hops, *manhattan);
  }
}

TEST_P(RoutingSweep, EveryPairDeliversOnLosslessGrid) {
  RoutedMesh mesh(4, 4, GetParam());
  int delivered = 0;
  for (std::size_t dst = 0; dst < mesh.topo.size(); ++dst) {
    mesh.routers[dst]->register_handler(
        sim::AmType::kTsRequest,
        [&](const GeoHeader&, std::span<const std::uint8_t>) {
          ++delivered;
        });
  }
  int sent = 0;
  for (std::size_t src = 0; src < mesh.topo.size(); ++src) {
    for (std::size_t dst = 0; dst < mesh.topo.size(); ++dst) {
      if (src == dst) {
        continue;
      }
      mesh.routers[src]->send(
          mesh.net.info(mesh.topo.nodes[dst]).location, 0.3,
          sim::AmType::kTsRequest, {},
          mesh.net.info(mesh.topo.nodes[src]).location);
      ++sent;
    }
  }
  mesh.sim.run_for(120 * sim::kSecond);
  EXPECT_EQ(delivered, sent);
}

TEST_P(RoutingSweep, HolesCauseNoRouteNotLoops) {
  // Disable a column of a 5x1 line: greedy routing must fail cleanly.
  RoutedMesh mesh(5, 1, GetParam());
  mesh.net.set_radio_enabled(mesh.topo.nodes[2], false);
  mesh.sim.run_for(10 * sim::kSecond);  // let the entry expire
  const auto d = mesh.routers[1]->decide({5, 1}, 0.3);
  // Node 1's only remaining neighbour (node 0) is farther from (5,1).
  EXPECT_EQ(d.kind, GeoRouter::Decision::Kind::kNoRoute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingSweep, ::testing::Values(3, 17, 99));

}  // namespace
}  // namespace agilla::net

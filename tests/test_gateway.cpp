// The base-station command console (paper Sec. 3.1's interactive laptop).
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/gateway.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

struct ConsoleFixture {
  ConsoleFixture()
      : mesh(MeshOptions{.width = 3, .height = 1}),
        base(mesh.at(0)),
        console(base, [this](const std::string& line) {
          lines.push_back(line);
        }) {
    mesh.env.set_field(sim::SensorType::kTemperature,
                       std::make_unique<sim::ConstantField>(21.0));
    mesh.warm();
  }

  bool saw(const std::string& needle) const {
    for (const auto& line : lines) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  AgillaMesh mesh;
  BaseStation base;
  std::vector<std::string> lines;
  GatewayConsole console{base};
};

TEST(Gateway, HelpAndUnknownCommands) {
  ConsoleFixture f;
  EXPECT_NE(f.console.execute("help").find("inject"), std::string::npos);
  EXPECT_NE(f.console.execute("frobnicate").find("error"),
            std::string::npos);
  EXPECT_EQ(f.console.execute(""), "");
}

TEST(Gateway, InjectAsmRunsAgent) {
  ConsoleFixture f;
  const std::string response =
      f.console.execute("inject asm pushc 9; pushc 1; out; halt");
  EXPECT_NE(response.find("ok"), std::string::npos) << response;
  f.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(9)})
                  .has_value());
}

TEST(Gateway, InjectAsmReportsAssemblyErrors) {
  ConsoleFixture f;
  const std::string response = f.console.execute("inject asm bogus op");
  EXPECT_NE(response.find("error"), std::string::npos);
}

TEST(Gateway, InjectNamedAgent) {
  ConsoleFixture f;
  const std::string response =
      f.console.execute("inject agent blinker");
  EXPECT_NE(response.find("ok"), std::string::npos);
  f.mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_NE(f.mesh.at(0).engine().leds(), 0u);
  EXPECT_NE(f.console.execute("inject agent nosuch").find("error"),
            std::string::npos);
}

TEST(Gateway, RemoteInjectAt) {
  ConsoleFixture f;
  const std::string response = f.console.execute(
      "inject at 3 1 asm pushn arr; pushc 1; out; halt");
  EXPECT_NE(response.find("ok"), std::string::npos) << response;
  f.mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("arr")})
                  .has_value());
  EXPECT_TRUE(f.saw("handed off"));
}

TEST(Gateway, RoutAndRrdpRoundTrip) {
  ConsoleFixture f;
  f.console.execute("rout 3 1 str:cmd num:7");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cmd"),
                                    ts::Value::number(7)})
                  .has_value());
  EXPECT_TRUE(f.saw("rout ok"));

  f.console.execute("rrdp 3 1 str:cmd ?num");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rrdp -> <\"cmd\", 7>"));
  EXPECT_EQ(f.console.async_results(), 2u);
}

TEST(Gateway, RinpRemoves) {
  ConsoleFixture f;
  f.mesh.at(2).tuple_space().out(ts::Tuple{ts::Value::number(42)});
  f.console.execute("rinp 3 1 ?num");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rinp -> <42>"));
  EXPECT_EQ(f.mesh.at(2).tuple_space().store().tuple_count(), 0u);
}

TEST(Gateway, FailedRemoteOpReportsAsync) {
  ConsoleFixture f;
  f.console.execute("rinp 3 1 ?str");  // nothing matches
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rinp failed"));
}

TEST(Gateway, RegionCommand) {
  ConsoleFixture f;
  f.console.execute("region 2 1 1.2 all str:evc num:1");
  f.mesh.sim.run_for(5 * sim::kSecond);
  const ts::Template alert{ts::Value::string("evc"), ts::Value::number(1)};
  EXPECT_TRUE(f.mesh.at(0).tuple_space().rdp(alert).has_value());
  EXPECT_TRUE(f.mesh.at(1).tuple_space().rdp(alert).has_value());
  EXPECT_TRUE(f.mesh.at(2).tuple_space().rdp(alert).has_value());
  EXPECT_NE(f.console.execute("region 2 1 1.2 both str:x").find("error"),
            std::string::npos);
}

TEST(Gateway, StatusSummarizesGateway) {
  ConsoleFixture f;
  const std::string status = f.console.execute("status");
  EXPECT_NE(status.find("agents"), std::string::npos);
  EXPECT_NE(status.find("neighbours"), std::string::npos);
}

TEST(Gateway, FieldParserCoverage) {
  ts::Tuple tuple;
  std::string error;
  EXPECT_TRUE(GatewayConsole::parse_tuple(
      {"x", "num:5", "str:abc", "loc:2,3", "agent:7", "reading:0,42"}, 1,
      &tuple, &error))
      << error;
  EXPECT_EQ(tuple.arity(), 5u);
  EXPECT_EQ(tuple.field(0).as_number(), 5);
  EXPECT_EQ(tuple.field(2).as_location(), (sim::Location{2, 3}));
  EXPECT_EQ(tuple.field(4).sensor(), sim::SensorType::kTemperature);

  ts::Tuple bad;
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "num:abc"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "zzz:1"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "plain"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x"}, 1, &bad, &error));
}

TEST(Gateway, TemplateParserWildcards) {
  ts::Template templ;
  std::string error;
  EXPECT_TRUE(GatewayConsole::parse_template(
      {"x", "str:sig", "?reading", "?loc", "?num", "?agent", "?str"}, 1,
      &templ, &error))
      << error;
  EXPECT_EQ(templ.arity(), 6u);
  EXPECT_EQ(templ.field(1).type(), ts::ValueType::kTypeWildcard);
  EXPECT_EQ(templ.field(1).wrapped_type(), ts::ValueType::kReading);
}

}  // namespace
}  // namespace agilla::core

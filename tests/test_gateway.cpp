// The base-station command console (paper Sec. 3.1's interactive laptop).
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/gateway.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

struct ConsoleFixture {
  ConsoleFixture()
      : mesh(MeshOptions{.width = 3, .height = 1}),
        base(mesh.at(0)),
        console(base, [this](const std::string& line) {
          lines.push_back(line);
        }) {
    mesh.env.set_field(sim::SensorType::kTemperature,
                       std::make_unique<sim::ConstantField>(21.0));
    mesh.warm();
  }

  bool saw(const std::string& needle) const {
    for (const auto& line : lines) {
      if (line.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  AgillaMesh mesh;
  BaseStation base;
  std::vector<std::string> lines;
  GatewayConsole console{base};
};

TEST(Gateway, HelpAndUnknownCommands) {
  ConsoleFixture f;
  EXPECT_NE(f.console.execute("help").find("inject"), std::string::npos);
  EXPECT_NE(f.console.execute("frobnicate").find("error"),
            std::string::npos);
  EXPECT_EQ(f.console.execute(""), "");
}

TEST(Gateway, InjectAsmRunsAgent) {
  ConsoleFixture f;
  const std::string response =
      f.console.execute("inject asm pushc 9; pushc 1; out; halt");
  EXPECT_NE(response.find("ok"), std::string::npos) << response;
  f.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(9)})
                  .has_value());
}

TEST(Gateway, InjectAsmReportsAssemblyErrors) {
  ConsoleFixture f;
  const std::string response = f.console.execute("inject asm bogus op");
  EXPECT_NE(response.find("error"), std::string::npos);
}

TEST(Gateway, InjectNamedAgent) {
  ConsoleFixture f;
  const std::string response =
      f.console.execute("inject agent blinker");
  EXPECT_NE(response.find("ok"), std::string::npos);
  f.mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_NE(f.mesh.at(0).engine().leds(), 0u);
  EXPECT_NE(f.console.execute("inject agent nosuch").find("error"),
            std::string::npos);
}

TEST(Gateway, RemoteInjectAt) {
  ConsoleFixture f;
  const std::string response = f.console.execute(
      "inject at 3 1 asm pushn arr; pushc 1; out; halt");
  EXPECT_NE(response.find("ok"), std::string::npos) << response;
  f.mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("arr")})
                  .has_value());
  EXPECT_TRUE(f.saw("handed off"));
}

TEST(Gateway, RoutAndRrdpRoundTrip) {
  ConsoleFixture f;
  f.console.execute("rout 3 1 str:cmd num:7");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("cmd"),
                                    ts::Value::number(7)})
                  .has_value());
  EXPECT_TRUE(f.saw("rout ok"));

  f.console.execute("rrdp 3 1 str:cmd ?num");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rrdp -> <\"cmd\", 7>"));
  EXPECT_EQ(f.console.async_results(), 2u);
}

TEST(Gateway, RinpRemoves) {
  ConsoleFixture f;
  f.mesh.at(2).tuple_space().out(ts::Tuple{ts::Value::number(42)});
  f.console.execute("rinp 3 1 ?num");
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rinp -> <42>"));
  EXPECT_EQ(f.mesh.at(2).tuple_space().store().tuple_count(), 0u);
}

TEST(Gateway, FailedRemoteOpReportsAsync) {
  ConsoleFixture f;
  f.console.execute("rinp 3 1 ?str");  // nothing matches
  f.mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(f.saw("rinp failed"));
}

TEST(Gateway, RegionCommand) {
  ConsoleFixture f;
  f.console.execute("region 2 1 1.2 all str:evc num:1");
  f.mesh.sim.run_for(5 * sim::kSecond);
  const ts::Template alert{ts::Value::string("evc"), ts::Value::number(1)};
  EXPECT_TRUE(f.mesh.at(0).tuple_space().rdp(alert).has_value());
  EXPECT_TRUE(f.mesh.at(1).tuple_space().rdp(alert).has_value());
  EXPECT_TRUE(f.mesh.at(2).tuple_space().rdp(alert).has_value());
  EXPECT_NE(f.console.execute("region 2 1 1.2 both str:x").find("error"),
            std::string::npos);
}

TEST(Gateway, StatusSummarizesGateway) {
  ConsoleFixture f;
  const std::string status = f.console.execute("status");
  EXPECT_NE(status.find("agents"), std::string::npos);
  EXPECT_NE(status.find("neighbours"), std::string::npos);
}

TEST(Gateway, AsyncResultsCarryCommandIds) {
  ConsoleFixture f;
  std::vector<std::pair<std::uint64_t, bool>> results;
  f.console.set_async_sink(
      [&](std::uint64_t id, bool ok, const std::string&) {
        results.emplace_back(id, ok);
      });
  const std::string r1 =
      f.console.execute("rout 3 1 str:cmd num:7", /*id=*/41);
  EXPECT_NE(r1.find("cmd#41"), std::string::npos) << r1;
  const std::string r2 = f.console.execute("rinp 3 1 ?str", /*id=*/42);
  EXPECT_NE(r2.find("cmd#42"), std::string::npos) << r2;
  f.mesh.sim.run_for(5 * sim::kSecond);
  ASSERT_EQ(results.size(), 2u);
  // Each async result is tagged with the originating command's id, not
  // bare text: the rout succeeds, the unmatched rinp fails.
  EXPECT_EQ(results[0], (std::pair<std::uint64_t, bool>{41, true}));
  EXPECT_EQ(results[1], (std::pair<std::uint64_t, bool>{42, false}));
  EXPECT_TRUE(f.saw("async#41:"));
  EXPECT_TRUE(f.saw("async#42:"));
}

TEST(Gateway, SubscribeNeedsABus) {
  ConsoleFixture f;
  EXPECT_NE(f.console.execute("subscribe node").find("error"),
            std::string::npos);
}

TEST(Gateway, SubscribeBridgesBusEvents) {
  ConsoleFixture f;
  api::EventBus bus;
  f.console.attach_bus(bus);
  std::vector<std::string> events;
  f.console.set_event_sink(
      [&](const std::string& kind, const std::string& text) {
        events.push_back(kind + "|" + text);
      });

  EXPECT_NE(f.console.execute("subscribe bogus").find("error"),
            std::string::npos);
  EXPECT_NE(f.console.execute("subscribe node").find("ok"),
            std::string::npos);
  EXPECT_TRUE(f.console.subscribed("node"));
  EXPECT_EQ(bus.observer_count(), 1u);

  bus.publish_node_down(api::NodeLifecycleEvent{
      7, sim::NodeId{3}, sim::NodeDownReason::kChurnCrash});
  bus.publish_agent_spawn(api::AgentSpawnEvent{9, sim::NodeId{1}, 4, false});
  ASSERT_EQ(events.size(), 1u);  // agent events filtered: not subscribed
  EXPECT_EQ(events[0], "node|down t=7 node=3 reason=churn");
  EXPECT_TRUE(f.saw("event: node down t=7 node=3 reason=churn"));

  EXPECT_NE(f.console.execute("subscribe agent").find("ok"),
            std::string::npos);
  bus.publish_agent_spawn(api::AgentSpawnEvent{11, sim::NodeId{2}, 5, true});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], "agent|spawn t=11 node=2 agent=5 migrated");

  EXPECT_NE(f.console.execute("unsubscribe node").find("ok"),
            std::string::npos);
  bus.publish_node_down(api::NodeLifecycleEvent{
      13, sim::NodeId{3}, sim::NodeDownReason::kBatteryDepleted});
  EXPECT_EQ(events.size(), 2u);

  // Bare unsubscribe drops everything and detaches the bridge.
  EXPECT_NE(f.console.execute("unsubscribe").find("ok"),
            std::string::npos);
  EXPECT_EQ(f.console.subscription_count(), 0u);
  EXPECT_EQ(bus.observer_count(), 0u);
}

TEST(Gateway, ConsoleDestructionDetachesBridgeAndCompletions) {
  ConsoleFixture f;
  api::EventBus bus;
  {
    GatewayConsole scoped(f.base);
    scoped.attach_bus(bus);
    scoped.execute("subscribe tuple");
    EXPECT_EQ(bus.observer_count(), 1u);
    // Leave a remote op in flight when the console dies.
    scoped.execute("rout 3 1 str:lat num:1");
  }
  EXPECT_EQ(bus.observer_count(), 0u);
  // The middleware still completes the op; the dead console's completion
  // must be a no-op rather than a use-after-free (ASan run enforces it).
  f.mesh.sim.run_for(5 * sim::kSecond);
}

TEST(Gateway, FieldParserCoverage) {
  ts::Tuple tuple;
  std::string error;
  EXPECT_TRUE(GatewayConsole::parse_tuple(
      {"x", "num:5", "str:abc", "loc:2,3", "agent:7", "reading:0,42"}, 1,
      &tuple, &error))
      << error;
  EXPECT_EQ(tuple.arity(), 5u);
  EXPECT_EQ(tuple.field(0).as_number(), 5);
  EXPECT_EQ(tuple.field(2).as_location(), (sim::Location{2, 3}));
  EXPECT_EQ(tuple.field(4).sensor(), sim::SensorType::kTemperature);

  ts::Tuple bad;
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "num:abc"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "zzz:1"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x", "plain"}, 1, &bad,
                                           &error));
  EXPECT_FALSE(GatewayConsole::parse_tuple({"x"}, 1, &bad, &error));
}

TEST(Gateway, TemplateParserWildcards) {
  ts::Template templ;
  std::string error;
  EXPECT_TRUE(GatewayConsole::parse_template(
      {"x", "str:sig", "?reading", "?loc", "?num", "?agent", "?str"}, 1,
      &templ, &error))
      << error;
  EXPECT_EQ(templ.arity(), 6u);
  EXPECT_EQ(templ.field(1).type(), ts::ValueType::kTypeWildcard);
  EXPECT_EQ(templ.field(1).wrapped_type(), ts::ValueType::kReading);
}

}  // namespace
}  // namespace agilla::core

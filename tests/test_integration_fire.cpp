// End-to-end reproduction of the paper's Sec. 5 case study: FIREDETECTOR
// agents spread over a grid; a fire ignites and spreads; a detector routs a
// fire alert to the FIRETRACKER waiting at the base station; the tracker
// clones to the fire and builds a perimeter of <"trk", loc> tuples.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

const ts::Template kAlert{ts::Value::string("fir"),
                          ts::Value::type_wildcard(ts::ValueType::kLocation)};
const ts::Template kTrackMark{
    ts::Value::string("trk"),
    ts::Value::type_wildcard(ts::ValueType::kLocation)};
const ts::Template kDetectorMark{
    ts::Value::string("det"),
    ts::Value::type_wildcard(ts::ValueType::kLocation)};

TEST(FireCaseStudy, DetectorsSpreadOverGrid) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(25.0));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::fire_detector({1, 1}, 200, 16));
  mesh.sim.run_for(40 * sim::kSecond);
  std::size_t claimed = 0;
  for (auto& node : mesh.nodes) {
    if (node->tuple_space().rdp(kDetectorMark).has_value()) {
      ++claimed;
    }
  }
  // The wclone flood claims most of the 3x3 grid (transient slot conflicts
  // may leave a straggler or two unclaimed).
  EXPECT_GE(claimed, 7u);
}

TEST(FireCaseStudy, AlertReachesBaseStation) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  // Fire near node (3,1) from t=20 s.
  mesh.env.set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {3, 1},
          .ignition_time = 20 * sim::kSecond,
          .spread_speed = 0.05,
          .peak = 500.0,
          .ambient = 25.0,
          .edge_decay = 0.4}));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::fire_detector({1, 1}, 200, 16));
  mesh.sim.run_for(60 * sim::kSecond);
  const auto alert = mesh.at(0).tuple_space().rdp(kAlert);
  ASSERT_TRUE(alert.has_value());
  // The alert carries the detecting node's location: (3,1) ignites first.
  EXPECT_EQ(alert->field(1).as_location(), (sim::Location{3, 1}));
}

TEST(FireCaseStudy, TrackerClonesToFireAndMarksPerimeter) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.env.set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {3, 3},
          .ignition_time = 15 * sim::kSecond,
          .spread_speed = 0.03,
          .peak = 500.0,
          .ambient = 25.0,
          .edge_decay = 0.5}));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::fire_tracker(180, 8));
  base.inject(agents::fire_detector({1, 1}, 200, 16));
  mesh.sim.run_for(90 * sim::kSecond);

  // Trackers took post at the burning corner and marked the perimeter.
  std::size_t tracked = 0;
  for (auto& node : mesh.nodes) {
    if (node->tuple_space().rdp(kTrackMark).has_value()) {
      ++tracked;
    }
  }
  EXPECT_GE(tracked, 1u);
  // The node at the ignition point is tracked.
  EXPECT_TRUE(mesh.at_loc(3, 3).tuple_space().rdp(kTrackMark).has_value());
}

TEST(FireCaseStudy, PaperFig2ReactionChain) {
  // The exact Fig. 2 interaction: a FIRETRACKER waits on a reaction; a
  // remote rout of a fire-alert tuple wakes it and it clones to the alert
  // location.
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(400.0));
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(agents::fire_tracker(180, 8)));
  mesh.sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(mesh.at(0).agents().count(), 1u);

  // A "detector" on node (3,1) routs the alert to (1,1).
  mesh.at(2).inject(assemble_or_die(R"(
      pushn fir
      loc
      pushc 2
      pushloc 1 1
      rout
      halt
  )"));
  mesh.sim.run_for(30 * sim::kSecond);
  // The tracker cloned to (3,1) (everything is hot, so it stays and marks).
  EXPECT_TRUE(mesh.at(2).tuple_space().rdp(kTrackMark).has_value());
  // The original is still waiting at the base for further alerts.
  EXPECT_GE(mesh.at(0).agents().count(), 1u);
}

TEST(FireCaseStudy, TrackersDieWhenFireEnds) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.env.set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {2, 1},
          .ignition_time = 5 * sim::kSecond,
          .extinction_time = 40 * sim::kSecond,
          .spread_speed = 0.02,
          .peak = 500.0,
          .ambient = 25.0}));
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(agents::fire_tracker(180, 8)));
  mesh.at(1).inject(assemble_or_die(R"(
      pushn fir
      loc
      pushc 2
      pushloc 1 1
      rout
      halt
  )"));
  // Wait until after the fire is out; hold the alert until the fire burns.
  mesh.sim.run_for(120 * sim::kSecond);
  // "Once the fire has died, the tracking agents also die" (Sec. 2.1):
  // the tracker at (2,1) halts and removes its marker. Only the original
  // tracker (still waiting at base) remains.
  EXPECT_FALSE(mesh.at(1).tuple_space().rdp(kTrackMark).has_value());
  EXPECT_EQ(mesh.at(1).agents().count(), 0u);
  EXPECT_EQ(mesh.at(0).agents().count(), 1u);
}

TEST(FireCaseStudy, WorksUnderPacketLoss) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1,
                              .packet_loss = 0.08, .seed = 5});
  mesh.env.set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {3, 1},
          .ignition_time = 20 * sim::kSecond,
          .spread_speed = 0.05,
          .peak = 500.0,
          .ambient = 25.0}));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::fire_detector({1, 1}, 200, 16));
  mesh.sim.run_for(90 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0).tuple_space().rdp(kAlert).has_value());
}

}  // namespace
}  // namespace agilla::core

// Cross-dispatch equivalence: the pre-decoded threaded dispatch
// (core/vm_dispatch.h) must be byte-identical in simulated behaviour to
// the reference switch interpreter — same traces, same stats, same final
// tuple-space state, same agent registers — over hand-written programs, a
// random-bytecode corpus, and a full harness sweep. Only host-side speed
// may differ (bench_vm_throughput measures that).
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "agilla_test_helpers.h"
#include "core/assembler.h"
#include "core/vm_dispatch.h"
#include "harness/runner.h"
#include "sim/rng.h"

namespace agilla {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len + 1));
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return out;
}

/// Everything observable about one mote after a run, rendered to text so
/// failures diff readably.
std::string observable_state(core::AgillaMiddleware& mote,
                             const sim::TraceRecorder& recorder) {
  std::ostringstream out;
  const core::EngineStats& s = mote.engine().stats();
  out << "instructions=" << s.instructions << " slices=" << s.slices
      << " vm_errors=" << s.vm_errors << " launched=" << s.agents_launched
      << " halted=" << s.agents_halted
      << " installed=" << s.agents_installed
      << " rejected=" << s.agents_rejected
      << " migrations=" << s.migrations_started << "/"
      << s.migrations_failed << " remote=" << s.remote_ops
      << " reactions=" << s.reactions_fired << "\n";
  out << "leds=" << static_cast<int>(mote.engine().leds())
      << " pool_blocks=" << mote.code_pool().used_blocks() << "\n";
  for (const auto& agent : mote.agents().agents()) {
    out << "agent#" << agent->id().value << " pc=" << agent->pc()
        << " cond=" << agent->condition()
        << " state=" << core::to_string(agent->run_state())
        << " stack=[";
    for (const ts::Value& v : agent->stack()) {
      out << v.to_string() << ",";
    }
    out << "] heap=[";
    for (const auto& [slot, value] : agent->heap_entries()) {
      out << static_cast<int>(slot) << ":" << value.to_string() << ",";
    }
    out << "]\n";
  }
  for (const ts::Tuple& tuple : mote.tuple_space().store().snapshot()) {
    out << "tuple " << tuple.to_string() << "\n";
  }
  for (const sim::TraceRecord& record : recorder.records()) {
    out << sim::format(record) << "\n";
  }
  return out.str();
}

/// Runs `programs` on a fresh mesh under `mode` and returns the merged
/// observable state of every mote.
std::string run_mesh(core::DispatchMode mode,
                     const std::vector<std::vector<std::uint8_t>>& programs,
                     std::size_t width, std::size_t height,
                     sim::SimTime duration) {
  MeshOptions options;
  options.width = width;
  options.height = height;
  options.seed = 7;
  options.config.engine.dispatch = mode;
  AgillaMesh mesh(options);
  sim::TraceRecorder recorder;
  recorder.attach(mesh.trace);
  mesh.warm();
  for (const auto& program : programs) {
    mesh.at(0).inject(program);
  }
  mesh.sim.run_for(duration);
  std::string merged;
  for (std::size_t i = 0; i < mesh.nodes.size(); ++i) {
    merged += "--- node " + std::to_string(i) + "\n";
    merged += observable_state(mesh.at(i), recorder);
    recorder.clear();  // records were already folded into node 0's block
  }
  return merged;
}

// ---------------------------------------------------------------- programs

// Touch every subsystem a slice can reach: arithmetic, heap, tuple ops,
// reactions, sleep, clone-migration, LEDs, sensing.
const char* const kPrograms[] = {
    // arithmetic + heap round trip, then halt
    "pushc 21\npushc 2\nmul\nsetvar 3\ngetvar 3\npushc 14\nadd\n"
    "setvar 4\nhalt\n",
    // tuple out, blocking in, re-out, rd, halt
    "pushc 9\npushc 1\nout\npusht NUMBER\npushc 1\nin\npushc 1\nout\n"
    "pusht NUMBER\npushc 1\nrd\nhalt\n",
    // sleep then LED
    "pushc 3\nsleep\npushc 7\nputled\nhalt\n",
    // registered reaction + wait; a later out fires the handler
    "pushc 1\npushc 50\nregrxn\npushc 50\npushc 1\nout\nwait\n",
    // sense + comparisons + conditional jump loop
    "pushc 1\nsense\npushc 0\ncgt\npushcl 0\nrjumpc SKIP\npushc 1\n"
    "SKIP pushc 2\nhalt\n",
    // clone to own location (local fork), both halt
    "loc\nwclone\nhalt\n",
    // stack churn: copy/swap/depth/clear
    "pushc 1\npushc 2\ncopy\nswap\ndepth\nclear\nhalt\n",
};

TEST(DispatchEquivalence, HandWrittenProgramsByteIdentical) {
  std::vector<std::vector<std::uint8_t>> programs;
  for (const char* source : kPrograms) {
    programs.push_back(core::assemble_or_die(source));
  }
  for (const auto& program : programs) {
    const std::vector<std::vector<std::uint8_t>> one = {program};
    EXPECT_EQ(
        run_mesh(core::DispatchMode::kSwitch, one, 1, 1, 30 * sim::kSecond),
        run_mesh(core::DispatchMode::kThreaded, one, 1, 1,
                 30 * sim::kSecond));
  }
  // All together on one mote: round-robin interleaving must match too.
  EXPECT_EQ(run_mesh(core::DispatchMode::kSwitch, programs, 1, 1,
                     30 * sim::kSecond),
            run_mesh(core::DispatchMode::kThreaded, programs, 1, 1,
                     30 * sim::kSecond));
}

TEST(DispatchEquivalence, MigratingAgentByteIdentical) {
  // A strong move across a 2x2 mesh exercises serialization, install, and
  // the arrival-side pre-decode.
  const auto program = core::assemble_or_die(
      "pushloc 2 2\nsmove\npushc 5\npushc 1\nout\nhalt\n");
  const std::vector<std::vector<std::uint8_t>> programs = {program};
  EXPECT_EQ(run_mesh(core::DispatchMode::kSwitch, programs, 2, 2,
                     40 * sim::kSecond),
            run_mesh(core::DispatchMode::kThreaded, programs, 2, 2,
                     40 * sim::kSecond));
}

TEST(DispatchEquivalence, RandomBytecodeCorpusByteIdentical) {
  // The fuzz corpus hits undefined opcodes, truncated instructions, jump
  // targets in the middle of instructions, and stack errors — exactly the
  // paths where a pre-decoder could diverge from fetch-at-pc semantics.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    sim::Rng rng(seed);
    std::vector<std::vector<std::uint8_t>> corpus;
    for (int i = 0; i < 40; ++i) {
      auto code = random_bytes(rng, 64);
      if (code.empty()) {
        code.push_back(0x00);
      }
      corpus.push_back(std::move(code));
    }
    for (const auto& program : corpus) {
      const std::vector<std::vector<std::uint8_t>> one = {program};
      ASSERT_EQ(run_mesh(core::DispatchMode::kSwitch, one, 1, 1,
                         10 * sim::kSecond),
                run_mesh(core::DispatchMode::kThreaded, one, 1, 1,
                         10 * sim::kSecond))
          << "seed " << seed;
    }
  }
}

TEST(DispatchEquivalence, TemplateCacheReusedAcrossClones) {
  MeshOptions options;
  options.width = 1;
  options.height = 1;
  AgillaMesh mesh(options);
  const auto program = core::assemble_or_die("pushc 1\nsleep\nhalt\n");
  mesh.at(0).inject(program);
  mesh.at(0).inject(program);
  mesh.at(0).inject(program);
  const core::VmDispatcher::CacheStats stats =
      mesh.at(0).engine().dispatcher().cache_stats();
  EXPECT_EQ(stats.programs_compiled, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(mesh.at(0).engine().dispatcher().cached_programs(), 1u);

  // A different image compiles separately.
  mesh.at(0).inject(core::assemble_or_die("pushc 2\nsleep\nhalt\n"));
  EXPECT_EQ(mesh.at(0).engine().dispatcher().cache_stats().programs_compiled,
            2u);

  // Templates are released with their last agent.
  mesh.sim.run_for(60 * sim::kSecond);
  ASSERT_EQ(mesh.at(0).agents().count(), 0u);
  EXPECT_EQ(mesh.at(0).engine().dispatcher().cached_programs(), 0u);
}

TEST(DispatchEquivalence, SwitchModeCompilesNothing) {
  MeshOptions options;
  options.width = 1;
  options.height = 1;
  options.config.engine.dispatch = core::DispatchMode::kSwitch;
  AgillaMesh mesh(options);
  mesh.at(0).inject(core::assemble_or_die("pushc 1\nsleep\nhalt\n"));
  EXPECT_EQ(mesh.at(0).engine().dispatcher().cache_stats().programs_compiled,
            0u);
  EXPECT_EQ(mesh.at(0).engine().dispatcher().cached_programs(), 0u);
}

TEST(DispatchEquivalence, BatchSizeDoesNotChangeOutcomes) {
  // batch_slices amortizes host-side event overhead. Every slice still
  // charges its full simulated cost, but a batch advances the clock once
  // at its end, so timer *timestamps* may land microseconds apart across
  // batch sizes. All outcomes — instruction counts, final registers,
  // tuple-space state — must be invariant.
  std::vector<std::vector<std::uint8_t>> programs;
  for (const char* source : kPrograms) {
    programs.push_back(core::assemble_or_die(source));
  }
  auto run_with_batch = [&](std::size_t batch) {
    MeshOptions options;
    options.width = 1;
    options.height = 1;
    options.seed = 7;
    options.config.engine.batch_slices = batch;
    AgillaMesh mesh(options);
    mesh.warm();
    for (const auto& program : programs) {
      mesh.at(0).inject(program);
    }
    mesh.sim.run_for(30 * sim::kSecond);
    const sim::TraceRecorder no_trace;
    return observable_state(mesh.at(0), no_trace);
  };
  const std::string batch1 = run_with_batch(1);
  EXPECT_EQ(batch1, run_with_batch(8));
  EXPECT_EQ(batch1, run_with_batch(64));
}

// ---------------------------------------------------------------- harness

/// The runner echoes every spec param into the JSON; the vm_dispatch line
/// is the one *intended* difference between the two sweeps, so strip it
/// before comparing.
std::string strip_dispatch_param(std::string json) {
  return std::regex_replace(
      json, std::regex("[ \t]*\"vm_dispatch\": [0-9]+,?\n"), "");
}

TEST(DispatchEquivalence, FireTrackingSweepByteIdenticalAcrossModes) {
  harness::ExperimentSpec spec;
  spec.name = "dispatch_equivalence";
  spec.scenario = "fire_tracking";
  spec.grids = {{3, 3}};
  spec.loss_rates = {0.0, 0.05};
  spec.trials = 2;
  spec.duration = 30 * sim::kSecond;

  spec.params["vm_dispatch"] = 0.0;
  const std::string sw = strip_dispatch_param(to_json(
      harness::run_experiment(spec, harness::RunnerOptions{.threads = 1})));
  spec.params["vm_dispatch"] = 1.0;
  const std::string th = strip_dispatch_param(to_json(
      harness::run_experiment(spec, harness::RunnerOptions{.threads = 1})));
  EXPECT_EQ(sw, th);

  // And the observer/threading determinism guarantee holds in the new
  // default mode: 1 worker vs 8 workers, byte-identical JSON.
  const std::string th8 = strip_dispatch_param(to_json(
      harness::run_experiment(spec, harness::RunnerOptions{.threads = 8})));
  EXPECT_EQ(th, th8);
}

}  // namespace
}  // namespace agilla

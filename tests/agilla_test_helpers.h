// Shared fixtures for core/integration tests: a grid of full Agilla
// middleware stacks over a (possibly lossy) simulated radio.
#pragma once

#include <memory>
#include <vector>

#include "core/injector.h"
#include "core/middleware.h"
#include "sim/topology.h"

namespace agilla::testing {

struct MeshOptions {
  std::size_t width = 3;
  std::size_t height = 3;
  double packet_loss = 0.0;
  std::uint64_t seed = 1;
  core::AgillaConfig config{};
  bool start = true;
};

class AgillaMesh {
 public:
  explicit AgillaMesh(const MeshOptions& options = MeshOptions())
      : sim(options.seed),
        net(sim, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{
                         .spacing = 1.0, .packet_loss = options.packet_loss})) {
    topo = sim::make_grid(net, options.width, options.height);
    for (sim::NodeId id : topo.nodes) {
      nodes.push_back(std::make_unique<core::AgillaMiddleware>(
          net, id, &env, options.config, &trace));
      if (options.start) {
        nodes.back()->start();
      }
    }
  }

  /// Node by creation index (row-major from (1,1)).
  core::AgillaMiddleware& at(std::size_t index) { return *nodes.at(index); }

  /// Node nearest to a location.
  core::AgillaMiddleware& at_loc(double x, double y) {
    return *nodes.at(
        sim::nearest_node(net, topo, sim::Location{x, y}).value);
  }

  /// Let beacons populate the neighbour tables.
  void warm(sim::SimTime duration = 5 * sim::kSecond) {
    sim.run_for(duration);
  }

  /// Total live agents across the mesh.
  [[nodiscard]] std::size_t total_agents() const {
    std::size_t n = 0;
    for (const auto& node : nodes) {
      n += node->agents().count();
    }
    return n;
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Trace trace;
  sim::SensorEnvironment env;
  sim::Topology topo;
  std::vector<std::unique_ptr<core::AgillaMiddleware>> nodes;
};

}  // namespace agilla::testing

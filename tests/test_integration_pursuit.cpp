// End-to-end intruder pursuit (paper Sec. 1's programming-model claim):
// sentinels publish signal readings; a pursuer chases the loudest node.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

/// The pursuer is wherever 2 agents coexist (sentinel + pursuer).
int pursuer_node(AgillaMesh& mesh) {
  for (std::size_t i = 0; i < mesh.nodes.size(); ++i) {
    if (mesh.at(i).agents().count() >= 2) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(Pursuit, SentinelsCoverGridAndPublishReadings) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  mesh.env.set_field(sim::SensorType::kMagnetometer,
                     std::make_unique<sim::ConstantField>(50.0));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::sentinel(8));
  mesh.sim.run_for(30 * sim::kSecond);
  const ts::Template signal{
      ts::Value::string("sig"),
      ts::Value::type_wildcard(ts::ValueType::kReading)};
  std::size_t publishing = 0;
  for (auto& node : mesh.nodes) {
    if (node->tuple_space().rdp(signal).has_value()) {
      ++publishing;
    }
  }
  EXPECT_GE(publishing, 8u);  // flood covers (nearly) all 9 nodes
}

TEST(Pursuit, PursuerMovesTowardStaticSource) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3});
  // A static source at the far corner (3,3).
  mesh.env.set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::GaussianBumpField>(sim::Location{3, 3}, 400.0,
                                               1.0, 5.0));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::sentinel(8));
  mesh.sim.run_for(20 * sim::kSecond);
  base.inject(agents::pursuer(8));
  mesh.sim.run_for(60 * sim::kSecond);
  const int at = pursuer_node(mesh);
  ASSERT_GE(at, 0);
  // The pursuer climbed the gradient to the source's node.
  EXPECT_EQ(mesh.at(static_cast<std::size_t>(at)).location(),
            (sim::Location{3, 3}));
}

TEST(Pursuit, PursuerFollowsMovingSource) {
  AgillaMesh mesh(MeshOptions{.width = 4, .height = 1});
  mesh.env.set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(sim::MovingBumpField::Options{
          .waypoints = {{1, 1}, {4, 1}},
          .speed = 0.02,
          .peak = 400.0,
          .sigma = 0.9,
          .ambient = 5.0,
          .loop = false}));
  const sim::MovingBumpField truth({.waypoints = {{1, 1}, {4, 1}},
                                    .speed = 0.02,
                                    .peak = 400.0,
                                    .sigma = 0.9,
                                    .ambient = 5.0,
                                    .loop = false});
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::sentinel(8));
  mesh.sim.run_for(15 * sim::kSecond);
  base.inject(agents::pursuer(8));

  // Sample the chase; the pursuer should stay near the source most of the
  // time once locked on.
  int close = 0;
  int samples = 0;
  for (int i = 0; i < 12; ++i) {
    mesh.sim.run_for(15 * sim::kSecond);
    const int at = pursuer_node(mesh);
    if (at < 0) {
      continue;  // mid-migration snapshot
    }
    ++samples;
    const double d = distance(
        mesh.at(static_cast<std::size_t>(at)).location(),
        truth.center(mesh.sim.now()));
    if (d <= 1.5) {
      ++close;
    }
  }
  ASSERT_GE(samples, 8);
  EXPECT_GE(close * 2, samples);  // near the intruder most of the time
}

TEST(Pursuit, PursuerSurvivesLongRuns) {
  // Regression guard for the sequence-wraparound loss: a pursuer that
  // migrates every second for minutes of virtual time must never vanish.
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 3, .packet_loss = 0.02});
  mesh.env.set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(sim::MovingBumpField::Options{
          .waypoints = {{1, 1}, {3, 1}, {3, 3}, {1, 3}},
          .speed = 0.05,
          .peak = 400.0,
          .sigma = 0.9,
          .ambient = 5.0,
          .loop = true}));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject(agents::sentinel(8));
  mesh.sim.run_for(20 * sim::kSecond);
  base.inject(agents::pursuer(8));
  mesh.sim.run_for(300 * sim::kSecond);
  // 9 sentinels + 1 pursuer, all still alive.
  EXPECT_EQ(mesh.total_agents(), 10u);
}

}  // namespace
}  // namespace agilla::core

#include "core/assembler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "net/packet.h"
#include "tuplespace/value.h"

namespace agilla::core {
namespace {

TEST(Assembler, SingleInstruction) {
  const AssemblyResult r = assemble("halt");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x00}));
}

TEST(Assembler, CommentsAndBlankLines) {
  const AssemblyResult r = assemble(R"(
      // comment only
      halt   // trailing comment
      # another style

      loc    ; semicolon comment
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x00, 0x01}));
}

TEST(Assembler, PushcOperand) {
  const AssemblyResult r = assemble("pushc 200");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x60, 200}));
}

TEST(Assembler, PushclLittleEndian) {
  const AssemblyResult r = assemble("pushcl 4800");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code,
            (std::vector<std::uint8_t>{0x61, 4800 & 0xFF, 4800 >> 8}));
}

TEST(Assembler, PushclNegative) {
  const AssemblyResult r = assemble("pushcl -2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x61, 0xFE, 0xFF}));
}

TEST(Assembler, PushnPacksString) {
  const AssemblyResult r = assemble("pushn fir");
  ASSERT_TRUE(r.ok());
  const std::uint16_t packed = ts::pack_string("fir");
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{
                        0x62, static_cast<std::uint8_t>(packed & 0xFF),
                        static_cast<std::uint8_t>(packed >> 8)}));
}

TEST(Assembler, PushnQuoted) {
  EXPECT_EQ(assemble("pushn \"abc\"").code, assemble("pushn abc").code);
}

TEST(Assembler, PushtTypeNames) {
  const AssemblyResult r = assemble("pusht LOCATION");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code[1],
            static_cast<std::uint8_t>(ts::ValueType::kLocation));
  EXPECT_FALSE(assemble("pusht BANANA").ok());
}

TEST(Assembler, PushrtSensorNames) {
  const AssemblyResult r = assemble("pushrt TEMPERATURE");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code[1],
            static_cast<std::uint8_t>(sim::SensorType::kTemperature));
}

TEST(Assembler, PushcAcceptsSensorNames) {
  // Paper Fig. 13 line 1: "pushc TEMPERATURE".
  const AssemblyResult r = assemble("pushc TEMPERATURE");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code[1], 0);
}

TEST(Assembler, PushlocEncodesFixedPoint) {
  const AssemblyResult r = assemble("pushloc 5 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.code.size(), 5u);
  const auto x = static_cast<std::int16_t>(r.code[1] | (r.code[2] << 8));
  const auto y = static_cast<std::int16_t>(r.code[3] | (r.code[4] << 8));
  EXPECT_DOUBLE_EQ(net::decode_coordinate(x), 5.0);
  EXPECT_DOUBLE_EQ(net::decode_coordinate(y), 1.0);
}

TEST(Assembler, PushlocFractional) {
  const AssemblyResult r = assemble("pushloc 2.5 3.25");
  ASSERT_TRUE(r.ok());
  const auto x = static_cast<std::int16_t>(r.code[1] | (r.code[2] << 8));
  EXPECT_DOUBLE_EQ(net::decode_coordinate(x), 2.5);
}

TEST(Assembler, LabelsPaperStyle) {
  // The paper writes labels as bare leading words: "BEGIN pushn fir".
  const AssemblyResult r = assemble(R"(
      BEGIN pushc 1
            rjump BEGIN
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  // rjump offset: target(0) - (addr(2) + 2) = -4.
  EXPECT_EQ(r.code,
            (std::vector<std::uint8_t>{0x60, 1, 0x28,
                                       static_cast<std::uint8_t>(-4)}));
}

TEST(Assembler, LabelsColonStyleAndLabelOnlyLines) {
  const AssemblyResult r = assemble(R"(
      START:
        pushc 7
        rjumpc START
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code[2], 0x29);
  EXPECT_EQ(static_cast<std::int8_t>(r.code[3]), -4);
}

TEST(Assembler, ForwardReferences) {
  const AssemblyResult r = assemble(R"(
      rjump END
      halt
      END halt
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  // rjump at 0, len 2; halt at 2; END at 3. offset = 3 - 2 = 1.
  EXPECT_EQ(static_cast<std::int8_t>(r.code[1]), 1);
}

TEST(Assembler, PushcWithLabelOperand) {
  // Paper Fig. 2 line 4: "pushc FIRE" pushes a handler address.
  const AssemblyResult r = assemble(R"(
      pushc FIRE
      halt
      FIRE halt
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code[1], 3);  // FIRE sits after pushc(2) + halt(1)
}

TEST(Assembler, NumericLinePrefixesTolerated) {
  // The paper's listings carry line numbers ("7: FIRE pop").
  const AssemblyResult r = assemble(R"(
      1: pushc 1
      2: FIRE pop
      3: rjump FIRE
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code.size(), 5u);
}

TEST(Assembler, GetvarSetvarEmbedSlot) {
  const AssemblyResult r = assemble("setvar 3\ngetvar 11");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x53, 0x4b}));
  EXPECT_FALSE(assemble("getvar 12").ok());
  EXPECT_FALSE(assemble("setvar -1").ok());
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  const AssemblyResult r = assemble("halt\nbogus\npushc 5");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_TRUE(r.code.empty());
}

TEST(Assembler, DuplicateLabelRejected) {
  const AssemblyResult r = assemble("A halt\nA halt");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, UnknownJumpTargetRejected) {
  EXPECT_FALSE(assemble("rjump NOWHERE").ok());
}

TEST(Assembler, OperandCountValidated) {
  EXPECT_FALSE(assemble("pushc").ok());
  EXPECT_FALSE(assemble("pushc 1 2").ok());
  EXPECT_FALSE(assemble("halt 1").ok());
  EXPECT_FALSE(assemble("pushloc 1").ok());
}

TEST(Assembler, PushcRangeValidated) {
  EXPECT_TRUE(assemble("pushc 255").ok());
  EXPECT_FALSE(assemble("pushc 256").ok());
  EXPECT_FALSE(assemble("pushc -1").ok());
}

TEST(Assembler, RelativeJumpRangeValidated) {
  // Build a program whose label is ~200 bytes away: out of int8 range.
  std::string source = "rjump FAR\n";
  for (int i = 0; i < 100; ++i) {
    source += "pushc 1\n";  // 2 bytes each
  }
  source += "FAR halt\n";
  EXPECT_FALSE(assemble(source).ok());
}

TEST(Assembler, HexLiterals) {
  const AssemblyResult r = assemble("pushc 0x1f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.code[1], 0x1F);
}

TEST(Assembler, PaperFig2FiretrackerPrologueAssembles) {
  const AssemblyResult r = assemble(R"(
      1: BEGIN pushn fir
      2:       pusht LOCATION
      3:       pushc 2
      4:       pushc FIRE
      5:       regrxn      // register fire alert reaction
      6:       wait        // wait for reaction to fire
      7: FIRE  pop
      8:       sclone      // strong clone to the fire
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  // pushn(3) pusht(2) pushc(2) pushc(2) regrxn(1) wait(1) = 11 -> FIRE=11.
  EXPECT_EQ(r.code[8], 11);  // operand of "pushc FIRE" (opcode at 7)
  EXPECT_EQ(r.code[11], static_cast<std::uint8_t>(Opcode::kPop));
  EXPECT_EQ(r.code[12], static_cast<std::uint8_t>(Opcode::kSClone));
}

TEST(Disassembler, RoundTripReadable) {
  const AssemblyResult r = assemble("pushc 5\nsmove\nhalt");
  ASSERT_TRUE(r.ok());
  const std::string text = disassemble(r.code);
  EXPECT_NE(text.find("pushc"), std::string::npos);
  EXPECT_NE(text.find("smove"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(AssembleOrDie, ReturnsCodeForValidSource) {
  EXPECT_EQ(assemble_or_die("halt").size(), 1u);
}

// ---------------------------------------------------------------------------
// Source-language directives: .const, .macro, .tuple, .byte, .include.
// ---------------------------------------------------------------------------

TEST(AssemblerDirectives, ConstSubstitutesInOperands) {
  const AssemblyResult r = assemble(R"(
      .const THRESH 200
      .equ SLOT 3
      pushc THRESH
      setvar SLOT
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code, assemble("pushc 200\nsetvar 3").code);
}

TEST(AssemblerDirectives, ConstUnknownNameStillErrors) {
  const AssemblyResult r = assemble("pushc NOPE");
  EXPECT_FALSE(r.ok());
}

TEST(AssemblerDirectives, MacroGoldenMatchesHandWritten) {
  const AssemblyResult expanded = assemble(R"(
      .macro OUT2 name value
          pushn name
          pushc value
          pushc 2
          out
      .endm
      BEGIN OUT2 fir 7
            OUT2 hab 9
            halt
  )");
  const AssemblyResult hand = assemble(R"(
      BEGIN pushn fir
            pushc 7
            pushc 2
            out
            pushn hab
            pushc 9
            pushc 2
            out
            halt
  )");
  ASSERT_TRUE(expanded.ok()) << expanded.error_text();
  ASSERT_TRUE(hand.ok());
  EXPECT_EQ(expanded.code, hand.code);
}

TEST(AssemblerDirectives, MacroLabelOperandsResolve) {
  // A macro body can reference labels that only exist at the call site.
  const AssemblyResult r = assemble(R"(
      .macro JUMPTO where
          rjump where
      .endm
      BEGIN JUMPTO END
            halt
      END   halt
  )");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(static_cast<std::int8_t>(r.code[1]), 1);
}

TEST(AssemblerDirectives, MacroErrorNamesInvocationSite) {
  const AssemblyResult r = assemble(R"(.macro BAD
pushc 999
.endm
BAD)");
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  // The faulty line is line 2 (the body), with context naming line 4 (the
  // invocation).
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_NE(r.errors[0].message.find("in macro 'BAD'"), std::string::npos)
      << r.errors[0].message;
  EXPECT_NE(r.errors[0].message.find("invoked from <source>:4"),
            std::string::npos)
      << r.errors[0].message;
}

TEST(AssemblerDirectives, MacroArgumentCountChecked) {
  const AssemblyResult r = assemble(R"(
      .macro PAIR a b
          pushc a
          pushc b
      .endm
      PAIR 1
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("argument"), std::string::npos)
      << r.error_text();
}

TEST(AssemblerDirectives, TupleLiteralExpandsToPushSequence) {
  const AssemblyResult tuple = assemble(".tuple \"fir\", 7\nout");
  const AssemblyResult hand = assemble("pushn fir\npushc 7\npushc 2\nout");
  ASSERT_TRUE(tuple.ok()) << tuple.error_text();
  EXPECT_EQ(tuple.code, hand.code);
}

TEST(AssemblerDirectives, TupleWideAndTypedFields) {
  const AssemblyResult tuple = assemble(".tuple \"b\", 300, NUMBER, loc");
  const AssemblyResult hand =
      assemble("pushn b\npushcl 300\npusht NUMBER\nloc\npushc 4");
  ASSERT_TRUE(tuple.ok()) << tuple.error_text();
  EXPECT_EQ(tuple.code, hand.code);
}

TEST(AssemblerDirectives, TupleStringFieldLengthChecked) {
  const AssemblyResult r = assemble(".tuple \"toolong\", 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("1..3"), std::string::npos) << r.error_text();
}

TEST(AssemblerDirectives, ByteEmitsRawBytes) {
  const AssemblyResult r = assemble("halt\n.byte 0x70 0xff 2\nhalt");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x00, 0x70, 0xFF, 2, 0x00}));
}

TEST(AssemblerDirectives, ByteRangeValidated) {
  EXPECT_FALSE(assemble(".byte 256").ok());
  EXPECT_FALSE(assemble(".byte -1").ok());
}

namespace fs = std::filesystem;

class AssemblerIncludeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "agilla_as_test";
    fs::create_directories(dir_ / "lib");
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write(const std::string& rel, const std::string& text) {
    const fs::path p = dir_ / rel;
    std::ofstream(p) << text;
    return p;
  }

  fs::path dir_;
};

TEST_F(AssemblerIncludeTest, IncludeResolvesRelativeToIncludingFile) {
  write("lib/util.aga", ".macro HALT2\nhalt\nhalt\n.endm\n");
  const fs::path main =
      write("main.aga", ".include \"lib/util.aga\"\nHALT2\n");
  const AssemblyResult r = assemble_file(main.string());
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.code, (std::vector<std::uint8_t>{0x00, 0x00}));
}

TEST_F(AssemblerIncludeTest, ErrorsKeepIncludedFileAndLine) {
  write("lib/bad.aga", "halt\nbogus\n");
  const fs::path main = write("main.aga", ".include \"lib/bad.aga\"\n");
  const AssemblyResult r = assemble_file(main.string());
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_NE(r.errors[0].file.find("bad.aga"), std::string::npos)
      << r.errors[0].file;
  // error_text renders file:line for file-based sources.
  EXPECT_NE(r.error_text().find("bad.aga:2:"), std::string::npos)
      << r.error_text();
}

TEST_F(AssemblerIncludeTest, MacroErrorNamesCrossFileInvocation) {
  write("lib/util.aga", ".macro OUT1 v\npushc v\n.endm\n");
  const fs::path main =
      write("main.aga", ".include \"lib/util.aga\"\nOUT1 999\n");
  const AssemblyResult r = assemble_file(main.string());
  ASSERT_FALSE(r.ok());
  // Fault is in the macro body (util.aga:2), invoked from main.aga:2.
  EXPECT_NE(r.error_text().find("util.aga:2:"), std::string::npos)
      << r.error_text();
  EXPECT_NE(r.error_text().find("invoked from"), std::string::npos);
  EXPECT_NE(r.error_text().find("main.aga:2"), std::string::npos)
      << r.error_text();
}

TEST_F(AssemblerIncludeTest, IncludeCycleDetected) {
  write("a.aga", ".include \"b.aga\"\n");
  write("b.aga", ".include \"a.aga\"\n");
  const AssemblyResult r = assemble_file((dir_ / "a.aga").string());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("cycle"), std::string::npos)
      << r.error_text();
}

TEST_F(AssemblerIncludeTest, MissingIncludeReportsIncludingLine) {
  const fs::path main = write("main.aga", "halt\n.include \"gone.aga\"\n");
  const AssemblyResult r = assemble_file(main.string());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("main.aga:2:"), std::string::npos)
      << r.error_text();
}

}  // namespace
}  // namespace agilla::core

// VM semantics: arithmetic, stack, heap, control flow, lifecycle.
// Agents report results by `out`-ing tuples that the test inspects.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

/// Runs an agent on an isolated node and returns the node's middleware.
struct SingleNode {
  SingleNode() : mesh(MeshOptions{.width = 1, .height = 1}) {}

  AgillaMiddleware& node() { return mesh.at(0); }

  std::optional<AgentId> run(const std::string& source,
                             sim::SimTime for_time = 2 * sim::kSecond) {
    const auto id = node().inject(assemble_or_die(source));
    mesh.sim.run_for(for_time);
    return id;
  }

  std::optional<std::int16_t> result_number() {
    const auto t = node().tuple_space().rdp(
        ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
    if (!t.has_value()) {
      return std::nullopt;
    }
    return t->field(0).as_number();
  }

  AgillaMesh mesh;
};

TEST(EngineBasic, ArithmeticAdd) {
  SingleNode s;
  s.run("pushc 3\npushc 2\nadd\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 5);
}

TEST(EngineBasic, SubIsSecondMinusTop) {
  SingleNode s;
  s.run("pushc 10\npushc 4\nsub\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 6);
}

TEST(EngineBasic, MulModAndOrNot) {
  SingleNode s;
  s.run("pushc 7\npushc 3\nmul\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 21);

  SingleNode s2;
  s2.run("pushc 17\npushc 5\nmod\npushc 1\nout\nhalt");
  EXPECT_EQ(s2.result_number(), 2);

  SingleNode s3;
  s3.run("pushc 12\npushc 10\nand\npushc 1\nout\nhalt");
  EXPECT_EQ(s3.result_number(), 8);

  SingleNode s4;
  s4.run("pushc 12\npushc 10\nor\npushc 1\nout\nhalt");
  EXPECT_EQ(s4.result_number(), 14);

  SingleNode s5;
  s5.run("pushc 0\nnot\npushc 1\nout\nhalt");
  EXPECT_EQ(s5.result_number(), 1);
}

TEST(EngineBasic, IncDec) {
  SingleNode s;
  s.run("pushc 5\ninc\ninc\ndec\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 6);
}

TEST(EngineBasic, ModByZeroKillsAgent) {
  SingleNode s;
  s.run("pushc 5\npushc 0\nmod\npushc 1\nout\nhalt");
  EXPECT_FALSE(s.result_number().has_value());
  EXPECT_EQ(s.node().engine().stats().vm_errors, 1u);
  EXPECT_EQ(s.node().agents().count(), 0u);
}

TEST(EngineBasic, EqPushesBoolean) {
  SingleNode s;
  s.run("pushc 4\npushc 4\neq\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 1);
}

TEST(EngineBasic, CltMatchesPaperFig13Semantics) {
  // Fig. 13: sense; pushcl 200; clt => condition = 1 iff temperature > 200.
  // Equivalent numeric program: push 250, push 200, clt -> cond 1.
  SingleNode s;
  s.run(R"(
      pushcl 250
      pushcl 200
      clt
      cpush
      pushc 1
      out
      halt
  )");
  EXPECT_EQ(s.result_number(), 1);

  SingleNode s2;
  s2.run(R"(
      pushcl 150
      pushcl 200
      clt
      cpush
      pushc 1
      out
      halt
  )");
  EXPECT_EQ(s2.result_number(), 0);
}

TEST(EngineBasic, CgtAndCeq) {
  SingleNode s;
  s.run("pushc 5\npushc 9\ncgt\ncpush\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 1);  // top(9) > second(5)

  SingleNode s2;
  s2.run("pushc 5\npushc 5\nceq\ncpush\npushc 1\nout\nhalt");
  EXPECT_EQ(s2.result_number(), 1);
}

TEST(EngineBasic, StackOps) {
  SingleNode s;
  s.run("pushc 1\npushc 2\nswap\npop\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 2);  // swap put 1 on top; pop removed it

  SingleNode s2;
  s2.run("pushc 6\ncopy\nadd\npushc 1\nout\nhalt");
  EXPECT_EQ(s2.result_number(), 12);

  SingleNode s3;
  s3.run("pushc 1\npushc 2\npushc 3\ndepth\npushc 1\nout\nhalt");
  EXPECT_EQ(s3.result_number(), 3);

  SingleNode s4;
  s4.run("pushc 9\nclear\ndepth\npushc 1\nout\nhalt");
  EXPECT_EQ(s4.result_number(), 0);
}

TEST(EngineBasic, HeapGetSet) {
  SingleNode s;
  s.run("pushc 42\nsetvar 3\ngetvar 3\ngetvar 3\nadd\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 84);
}

TEST(EngineBasic, RelativeJumpLoop) {
  // Count down from 3 using a loop, then out the accumulated sum 3+2+1=6.
  SingleNode s;
  s.run(R"(
      pushc 0
      setvar 0       // sum = 0
      pushc 3
      setvar 1       // i = 3
      LOOP getvar 1
      getvar 0
      add
      setvar 0       // sum += i
      getvar 1
      dec
      setvar 1       // i--
      getvar 1
      pushc 0
      cgt            // cond = (0 > i)? no: top=0, second=i -> 0 > i false while i>0
      rjumpc DONE
      rjump LOOP
      DONE getvar 0
      pushc 1
      out
      halt
  )");
  // cgt: cond = top(0) > second(i) -> true when i < 0... loop runs while
  // i >= 0: sum = 3+2+1+0 = 6.
  EXPECT_EQ(s.result_number(), 6);
}

TEST(EngineBasic, AbsoluteJumpAndJumps) {
  SingleNode s;
  s.run(R"(
      jump OVER
      pushc 99
      pushc 1
      out
      halt
      OVER pushc 7
      pushc 1
      out
      halt
  )");
  EXPECT_EQ(s.result_number(), 7);

  SingleNode s2;
  s2.run(R"(
      pushc TARGET
      jumps
      halt
      TARGET pushc 5
      pushc 1
      out
      halt
  )");
  EXPECT_EQ(s2.result_number(), 5);
}

TEST(EngineBasic, HaltFreesAllResources) {
  SingleNode s;
  s.run("halt");
  EXPECT_EQ(s.node().agents().count(), 0u);
  EXPECT_EQ(s.node().code_pool().used_blocks(), 0u);
  EXPECT_EQ(s.node().engine().stats().agents_halted, 1u);
}

TEST(EngineBasic, StackUnderflowKillsAgent) {
  SingleNode s;
  s.run("pop\nhalt");
  EXPECT_EQ(s.node().engine().stats().vm_errors, 1u);
  EXPECT_EQ(s.node().agents().count(), 0u);
}

TEST(EngineBasic, StackOverflowKillsAgent) {
  std::string source;
  for (std::size_t i = 0; i < Agent::kStackDepth + 1; ++i) {
    source += "pushc 1\n";
  }
  source += "halt\n";
  SingleNode s;
  s.run(source);
  EXPECT_EQ(s.node().engine().stats().vm_errors, 1u);
}

TEST(EngineBasic, PcOutOfRangeKillsAgent) {
  SingleNode s;
  s.run("pushc 1");  // falls off the end of code
  EXPECT_EQ(s.node().engine().stats().vm_errors, 1u);
}

TEST(EngineBasic, PutLedDrivesLeds) {
  SingleNode s;
  s.run("pushc 5\nputled\nhalt");
  EXPECT_EQ(s.node().engine().leds(), 5u);
}

TEST(EngineBasic, RandPushesSomething) {
  SingleNode s;
  s.run("rand\npushc 1\nout\nhalt");
  EXPECT_TRUE(s.result_number().has_value());
}

TEST(EngineBasic, SleepDelaysExecution) {
  SingleNode s;
  // Sleep 8 ticks = 1 s, then out.
  s.node().inject(assemble_or_die("pushc 8\nsleep\npushc 1\npushc 1\nout\nhalt"));
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  EXPECT_FALSE(s.result_number().has_value());
  s.mesh.sim.run_for(700 * sim::kMillisecond);
  EXPECT_TRUE(s.result_number().has_value());
}

TEST(EngineBasic, PushclAndPushnValues) {
  SingleNode s;
  s.run("pushcl 4800\npushc 1\nout\nhalt");
  EXPECT_EQ(s.result_number(), 4800);

  SingleNode s2;
  s2.run("pushn fir\npushc 1\nout\nhalt");
  const auto t = s2.node().tuple_space().rdp(
      ts::Template{ts::Value::string("fir")});
  EXPECT_TRUE(t.has_value());
}

TEST(EngineBasic, MultipleAgentsRoundRobin) {
  SingleNode s;
  s.node().inject(assemble_or_die("pushc 1\npushc 1\nout\nhalt"));
  s.node().inject(assemble_or_die("pushc 2\npushc 1\nout\nhalt"));
  s.node().inject(assemble_or_die("pushc 3\npushc 1\nout\nhalt"));
  s.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_EQ(s.node().tuple_space().tcount(ts::Template{
                ts::Value::type_wildcard(ts::ValueType::kNumber)}),
            3u);
  EXPECT_EQ(s.node().engine().stats().agents_halted, 3u);
}

TEST(EngineBasic, AgentSlotsExhausted) {
  SingleNode s;
  // Default capacity is 4 agents (paper Sec. 3.2); the 5th is rejected.
  const std::string forever = "LOOP pushc 100\nsleep\nrjump LOOP";
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.node().inject(assemble_or_die(forever)).has_value());
  }
  EXPECT_FALSE(s.node().inject(assemble_or_die(forever)).has_value());
  EXPECT_EQ(s.node().engine().stats().agents_rejected, 1u);
}

TEST(EngineBasic, CodePoolExhaustionRejectsInjection) {
  SingleNode s;
  std::string big;
  for (int i = 0; i < 150; ++i) {
    big += "pushc 1\npop\n";  // 3 bytes per pair -> 450 bytes > 440
  }
  big += "halt\n";
  EXPECT_FALSE(s.node().inject(assemble_or_die(big)).has_value());
}

TEST(EngineBasic, InstructionsCountedInStats) {
  SingleNode s;
  s.run("pushc 1\npushc 2\nadd\npop\nhalt");
  EXPECT_EQ(s.node().engine().stats().instructions, 5u);
}

TEST(EngineBasic, ExecutionTakesSimulatedTime) {
  // 100 simple instructions at ~75 us each need roughly 7-8 ms of virtual
  // time (plus context switches) — not zero, and not tens of ms.
  SingleNode s;
  std::string source;
  for (int i = 0; i < 50; ++i) {
    source += "pushc 1\npop\n";
  }
  source += "halt\n";
  s.node().inject(assemble_or_die(source));
  s.mesh.sim.run_for(5 * sim::kMillisecond);
  EXPECT_EQ(s.node().engine().stats().agents_halted, 0u);
  s.mesh.sim.run_for(15 * sim::kMillisecond);
  EXPECT_EQ(s.node().engine().stats().agents_halted, 1u);
}

}  // namespace
}  // namespace agilla::core

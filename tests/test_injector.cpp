// The base station: assembly injection, remote injection, remote TS ops.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_library.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(Injector, AssemblesAndInjects) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  BaseStation base(mesh.at(0));
  const auto id = base.inject("pushc 7\npushc 1\nout\nhalt");
  ASSERT_TRUE(id.has_value());
  mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::number(7)})
                  .has_value());
}

TEST(Injector, RejectsBadAssembly) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  BaseStation base(mesh.at(0));
  EXPECT_FALSE(base.inject("bogus nonsense").has_value());
  EXPECT_EQ(mesh.at(0).agents().count(), 0u);
}

TEST(Injector, InjectAtRemoteLocation) {
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  bool sent = false;
  base.inject_at(assemble_or_die("pushn arr\npushc 1\nout\nhalt"), {3, 1},
                 [&](bool ok) { sent = ok; });
  mesh.sim.run_for(5 * sim::kSecond);
  EXPECT_TRUE(sent);
  EXPECT_TRUE(mesh.at(2)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("arr")})
                  .has_value());
  EXPECT_EQ(mesh.at(0).agents().count(), 0u);  // only passed through
}

TEST(Injector, RemoteInjectionStartsAtPcZero) {
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject_at(assemble_or_die("loc\npushc 1\nout\nhalt"), {2, 1});
  mesh.sim.run_for(3 * sim::kSecond);
  const auto t = mesh.at(1).tuple_space().rdp(
      ts::Template{ts::Value::location({2, 1})});
  EXPECT_TRUE(t.has_value());
}

TEST(Injector, GatewayAccessor) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  BaseStation base(mesh.at(0));
  EXPECT_EQ(&base.gateway(), &mesh.at(0));
}

TEST(Injector, PaperWorkflowInjectThenQueryRemotely) {
  // The paper's base-station workflow: inject an agent that gathers data,
  // then pull results back with remote tuple-space operations.
  AgillaMesh mesh(MeshOptions{.width = 3, .height = 1});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(42.0));
  mesh.warm();
  BaseStation base(mesh.at(0));
  base.inject_at(assemble_or_die(R"(
      pushn dat
      pushc TEMPERATURE
      sense
      pushc 2
      out
      halt
  )"),
                 {3, 1});
  mesh.sim.run_for(5 * sim::kSecond);
  std::optional<ts::Tuple> fetched;
  base.rrdp({3, 1},
            ts::Template{ts::Value::string("dat"),
                         ts::Value::type_wildcard(ts::ValueType::kReading)},
            [&](bool, std::optional<ts::Tuple> t) { fetched = t; });
  mesh.sim.run_for(3 * sim::kSecond);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->field(1).as_number(), 42);
}

}  // namespace
}  // namespace agilla::core

// The gateway service subsystem (src/svc/): wire codec hardening,
// session lifecycle (backpressure, token resume), and deterministic
// multi-client end-to-end runs over the loopback transport.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "api/deployment.h"
#include "svc/gateway_service.h"
#include "svc/transport.h"
#include "svc/wire.h"

namespace agilla::svc {
namespace {

// ------------------------------------------------------------ wire codec

std::vector<wire::Message> decode_all(const std::vector<std::uint8_t>& bytes,
                                      bool* error = nullptr) {
  wire::FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  std::vector<wire::Message> messages;
  for (;;) {
    wire::Message m;
    const auto status = reader.next(&m);
    if (status == wire::FrameReader::Status::kMessage) {
      messages.push_back(std::move(m));
      continue;
    }
    if (error != nullptr) {
      *error = status == wire::FrameReader::Status::kError;
    }
    return messages;
  }
}

TEST(WireCodec, RoundTripsEveryMessageType) {
  const wire::MsgType kTypes[] = {
      wire::MsgType::kHello,       wire::MsgType::kCommand,
      wire::MsgType::kSubscribe,   wire::MsgType::kUnsubscribe,
      wire::MsgType::kPing,        wire::MsgType::kBye,
      wire::MsgType::kWelcome,     wire::MsgType::kReply,
      wire::MsgType::kAsyncResult, wire::MsgType::kEvent,
      wire::MsgType::kError,       wire::MsgType::kPong,
      wire::MsgType::kByeAck,
  };
  std::vector<std::uint8_t> stream;
  std::uint32_t id = 100;
  for (const auto type : kTypes) {
    const wire::Message m{type, id, 77'000'000 + id,
                          "payload for " + std::string(wire::to_string(type))};
    const auto bytes = wire::encode(m);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    ++id;
  }
  bool error = false;
  const auto decoded = decode_all(stream, &error);
  EXPECT_FALSE(error);
  ASSERT_EQ(decoded.size(), std::size(kTypes));
  id = 100;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].type, kTypes[i]);
    EXPECT_EQ(decoded[i].request_id, id);
    EXPECT_EQ(decoded[i].vtime, 77'000'000ull + id);
    EXPECT_EQ(decoded[i].payload,
              "payload for " + std::string(wire::to_string(kTypes[i])));
    ++id;
  }
}

TEST(WireCodec, EmptyPayloadAndChunkedDelivery) {
  const auto bytes =
      wire::encode(wire::Message{wire::MsgType::kPing, 9, 0, ""});
  // Feed one byte at a time: every prefix must be kNeedMore, never an
  // error, and the message must pop out exactly once at the end.
  wire::FrameReader reader;
  wire::Message m;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(&bytes[i], 1);
    EXPECT_EQ(reader.next(&m), wire::FrameReader::Status::kNeedMore)
        << "prefix length " << (i + 1);
  }
  reader.feed(&bytes[bytes.size() - 1], 1);
  ASSERT_EQ(reader.next(&m), wire::FrameReader::Status::kMessage);
  EXPECT_EQ(m.type, wire::MsgType::kPing);
  EXPECT_TRUE(m.payload.empty());
  EXPECT_EQ(reader.next(&m), wire::FrameReader::Status::kNeedMore);
}

TEST(WireCodec, TruncationFuzzNeverErrsOrFabricates) {
  const auto bytes = wire::encode(wire::Message{
      wire::MsgType::kCommand, 7, 123456, "rout 3 1 str:cmd num:7"});
  // Every strict prefix of a valid frame is incomplete, not malformed.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::FrameReader reader;
    reader.feed(bytes.data(), cut);
    wire::Message m;
    EXPECT_EQ(reader.next(&m), wire::FrameReader::Status::kNeedMore)
        << "truncated at " << cut;
  }
}

TEST(WireCodec, MutationFuzzRejectsCorruptHeaders) {
  const auto pristine = wire::encode(wire::Message{
      wire::MsgType::kCommand, 7, 123456, "status"});
  // Flip every byte of the length prefix and header through all 255
  // wrong values: the reader must either reject the frame or (for bytes
  // that only change id/vtime/payload) still produce exactly one
  // message — it must never crash, hang, or over-read.
  std::size_t rejected = 0;
  for (std::size_t pos = 0; pos < wire::kHeaderBytes + 4; ++pos) {
    for (int delta = 1; delta < 256; ++delta) {
      auto bytes = pristine;
      bytes[pos] = static_cast<std::uint8_t>(bytes[pos] + delta);
      wire::FrameReader reader;
      reader.feed(bytes.data(), bytes.size());
      wire::Message m;
      const auto status = reader.next(&m);
      if (status == wire::FrameReader::Status::kError) {
        ++rejected;
        // A poisoned reader stays poisoned even with more input.
        reader.feed(pristine.data(), pristine.size());
        EXPECT_EQ(reader.next(&m), wire::FrameReader::Status::kError);
      }
    }
  }
  // Magic (2 bytes), version, and type corruptions must all reject:
  // 255 wrong values each for 4 single-byte fields is the floor.
  EXPECT_GE(rejected, 4u * 255u - 30u);

  // Oversize declared length is rejected outright, not buffered.
  auto oversize = pristine;
  const std::uint32_t bad_len = wire::kHeaderBytes + wire::kMaxPayload + 1;
  oversize[0] = static_cast<std::uint8_t>(bad_len);
  oversize[1] = static_cast<std::uint8_t>(bad_len >> 8);
  oversize[2] = static_cast<std::uint8_t>(bad_len >> 16);
  oversize[3] = static_cast<std::uint8_t>(bad_len >> 24);
  wire::FrameReader reader;
  reader.feed(oversize.data(), oversize.size());
  wire::Message m;
  EXPECT_EQ(reader.next(&m), wire::FrameReader::Status::kError);
  EXPECT_FALSE(reader.error().empty());
}

// ------------------------------------------------- service over loopback

/// A deployment + loopback transport + service, plus a protocol-speaking
/// test client: send typed requests, pump, and collect typed responses.
struct ServiceFixture {
  explicit ServiceFixture(ServiceOptions options = {},
                          std::uint64_t seed = 1)
      : deployment(make_deployment(seed)),
        service(*deployment, transport, options) {}

  static std::unique_ptr<api::Deployment> make_deployment(
      std::uint64_t seed) {
    api::SimulationBuilder builder;
    builder.grid(3, 3).seed(seed);
    return builder.build();
  }

  struct TestClient {
    LoopbackTransport::Client io;
    wire::FrameReader reader;
    std::vector<wire::Message> inbox;
    std::uint32_t next_id = 1;
  };

  TestClient connect() { return TestClient{transport.connect(), {}, {}, 1}; }

  void send(TestClient& client, wire::MsgType type,
            const std::string& payload) {
    client.io.send(wire::encode(
        wire::Message{type, client.next_id++, 0, payload}));
  }

  /// Pumps the service and drains the client; returns frames received
  /// this round (they are also appended to the client's inbox).
  std::vector<wire::Message> exchange(TestClient& client) {
    service.pump();
    const auto bytes = client.io.drain();
    client.reader.feed(bytes.data(), bytes.size());
    std::vector<wire::Message> fresh;
    wire::Message m;
    while (client.reader.next(&m) == wire::FrameReader::Status::kMessage) {
      fresh.push_back(m);
      client.inbox.push_back(std::move(m));
    }
    return fresh;
  }

  std::unique_ptr<api::Deployment> deployment;
  LoopbackTransport transport;
  GatewayService service;
};

TEST(GatewayService, HelloOpensSessionAndCommandsWork) {
  ServiceFixture f;
  auto client = f.connect();
  f.send(client, wire::MsgType::kHello, "");
  auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kWelcome);
  EXPECT_NE(frames[0].payload.find("session=1"), std::string::npos);
  EXPECT_NE(frames[0].payload.find("resumed=0"), std::string::npos);
  EXPECT_NE(frames[0].payload.find("token="), std::string::npos);

  f.send(client, wire::MsgType::kCommand, "status");
  frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kReply);
  EXPECT_EQ(frames[0].request_id, 2u);
  EXPECT_NE(frames[0].payload.find("agents"), std::string::npos);

  f.send(client, wire::MsgType::kPing, "");
  frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kPong);
  EXPECT_EQ(frames[0].payload, "drops=0");

  f.send(client, wire::MsgType::kBye, "");
  frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kByeAck);
  EXPECT_EQ(f.service.session_count(), 0u);
  EXPECT_EQ(f.service.stats().sessions_closed, 1u);
}

TEST(GatewayService, CommandBeforeHelloIsConnectionFatal) {
  ServiceFixture f;
  auto client = f.connect();
  f.send(client, wire::MsgType::kCommand, "status");
  const auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kError);
  EXPECT_NE(frames[0].payload.find("hello required"), std::string::npos);
  EXPECT_TRUE(client.io.closed());
  EXPECT_EQ(f.service.stats().protocol_errors, 1u);
}

TEST(GatewayService, MalformedBytesAreConnectionFatal) {
  ServiceFixture f;
  auto client = f.connect();
  // A complete 16-byte frame (empty payload) whose magic is wrong.
  std::vector<std::uint8_t> garbage = {0x10, 0x00, 0x00, 0x00, 'X', 'Y'};
  garbage.resize(4 + wire::kHeaderBytes, 0x00);
  client.io.send(garbage);
  const auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kError);
  EXPECT_TRUE(client.io.closed());
  EXPECT_EQ(f.service.stats().protocol_errors, 1u);
}

TEST(GatewayService, RemoteOpDeliversAsyncResultWithCommandId) {
  ServiceFixture f;
  auto client = f.connect();
  f.send(client, wire::MsgType::kHello, "");
  f.exchange(client);
  f.send(client, wire::MsgType::kCommand, "rout 2 1 str:cmd num:7");
  auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kReply);
  EXPECT_NE(frames[0].payload.find("dispatched"), std::string::npos);
  const std::uint32_t cmd_id = frames[0].request_id;

  // Drive the mesh until the remote op completes and lands on the wire.
  wire::Message async{};
  for (int i = 0; i < 200 && async.type != wire::MsgType::kAsyncResult;
       ++i) {
    f.deployment->run_for(50 * sim::kMillisecond);
    for (const auto& m : f.exchange(client)) {
      if (m.type == wire::MsgType::kAsyncResult) {
        async = m;
      }
    }
  }
  ASSERT_EQ(async.type, wire::MsgType::kAsyncResult);
  EXPECT_EQ(async.request_id, cmd_id);
  EXPECT_EQ(async.payload.rfind("ok ", 0), 0u) << async.payload;
  EXPECT_GT(async.vtime, 0u);
}

TEST(GatewayService, SubscribeStreamsEventsWithSubscribeId) {
  ServiceFixture f;
  auto client = f.connect();
  f.send(client, wire::MsgType::kHello, "");
  f.exchange(client);
  f.send(client, wire::MsgType::kSubscribe, "tuple");
  auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kReply);
  EXPECT_NE(frames[0].payload.find("ok"), std::string::npos);
  const std::uint32_t sub_id = frames[0].request_id;

  // A tuple op anywhere in the mesh reaches the subscribed session.
  const ts::Tuple tuple{ts::Value::number(3)};
  f.deployment->bus().publish_tuple_op(
      api::TupleOpEvent{5, sim::NodeId{4}, ts::TupleSpaceOp::kOut, &tuple});
  frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kEvent);
  EXPECT_EQ(frames[0].request_id, sub_id);
  EXPECT_EQ(frames[0].payload.rfind("tuple ", 0), 0u) << frames[0].payload;

  f.send(client, wire::MsgType::kUnsubscribe, "tuple");
  frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  f.deployment->bus().publish_tuple_op(
      api::TupleOpEvent{9, sim::NodeId{4}, ts::TupleSpaceOp::kOut, &tuple});
  EXPECT_TRUE(f.exchange(client).empty());
}

TEST(GatewayService, BackpressureDropsEventsNeverReplies) {
  ServiceOptions options;
  options.queue_cap = 4;
  ServiceFixture f(options);
  auto client = f.connect();
  f.send(client, wire::MsgType::kHello, "");
  f.exchange(client);
  f.send(client, wire::MsgType::kSubscribe, "battery");
  f.exchange(client);

  // Flood 32 events without letting the service flush in between: the
  // outbox caps at 4; the rest are counted drops, not errors.
  for (std::uint64_t i = 0; i < 32; ++i) {
    f.deployment->bus().publish_battery_settle(api::BatterySettleEvent{i});
  }
  const auto frames = f.exchange(client);
  EXPECT_EQ(frames.size(), 4u);
  for (const auto& m : frames) {
    EXPECT_EQ(m.type, wire::MsgType::kEvent);
  }
  EXPECT_EQ(f.service.stats().events_dropped, 28u);

  // Control traffic is exempt from the cap: a ping still answers (and
  // reports the session's drop count to the client).
  f.send(client, wire::MsgType::kPing, "");
  const auto pong = f.exchange(client);
  ASSERT_EQ(pong.size(), 1u);
  EXPECT_EQ(pong[0].type, wire::MsgType::kPong);
  EXPECT_EQ(pong[0].payload, "drops=28");
}

TEST(GatewayService, ReconnectResumesSessionAndBacklog) {
  ServiceFixture f;
  auto client = f.connect();
  f.send(client, wire::MsgType::kHello, "");
  auto frames = f.exchange(client);
  ASSERT_EQ(frames.size(), 1u);
  const std::string welcome = frames[0].payload;
  const auto tok = welcome.find("token=");
  ASSERT_NE(tok, std::string::npos);
  const std::string token =
      welcome.substr(tok + 6, welcome.find(' ', tok) - (tok + 6));
  f.send(client, wire::MsgType::kSubscribe, "battery");
  f.exchange(client);

  // Drop the connection; events published while unbound are queued, not
  // lost, and the session survives.
  client.io.disconnect();
  f.service.pump();
  EXPECT_EQ(f.service.session_count(), 1u);
  EXPECT_EQ(f.service.bound_session_count(), 0u);
  f.deployment->bus().publish_battery_settle(api::BatterySettleEvent{41});
  f.deployment->bus().publish_battery_settle(api::BatterySettleEvent{42});

  // Resume by token on a fresh connection: welcome says resumed=1 and
  // the queued backlog flushes in order.
  auto resumed = f.connect();
  resumed.io.send(wire::encode(
      wire::Message{wire::MsgType::kHello, 50, 0, token}));
  f.service.pump();
  const auto bytes = resumed.io.drain();
  resumed.reader.feed(bytes.data(), bytes.size());
  std::vector<wire::Message> got;
  wire::Message m;
  while (resumed.reader.next(&m) == wire::FrameReader::Status::kMessage) {
    got.push_back(std::move(m));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].type, wire::MsgType::kWelcome);
  EXPECT_NE(got[0].payload.find("resumed=1"), std::string::npos);
  EXPECT_EQ(got[1].type, wire::MsgType::kEvent);
  EXPECT_NE(got[1].payload.find("t=41"), std::string::npos);
  EXPECT_EQ(got[2].type, wire::MsgType::kEvent);
  EXPECT_NE(got[2].payload.find("t=42"), std::string::npos);
  EXPECT_EQ(f.service.stats().sessions_resumed, 1u);

  // A bogus token is refused without touching the live session.
  auto intruder = f.connect();
  intruder.io.send(wire::encode(
      wire::Message{wire::MsgType::kHello, 60, 0, "00000000deadbeef"}));
  f.service.pump();
  const auto ibytes = intruder.io.drain();
  intruder.reader.feed(ibytes.data(), ibytes.size());
  ASSERT_EQ(intruder.reader.next(&m), wire::FrameReader::Status::kMessage);
  EXPECT_EQ(m.type, wire::MsgType::kError);
  EXPECT_EQ(f.service.stats().resume_failures, 1u);
  EXPECT_EQ(f.service.session_count(), 1u);
}

TEST(GatewayService, SessionLimitRejectsTheOverflowClient) {
  ServiceOptions options;
  options.max_sessions = 2;
  ServiceFixture f(options);
  auto a = f.connect();
  auto b = f.connect();
  auto c = f.connect();
  f.send(a, wire::MsgType::kHello, "");
  f.send(b, wire::MsgType::kHello, "");
  f.send(c, wire::MsgType::kHello, "");
  f.service.pump();
  EXPECT_EQ(f.service.session_count(), 2u);
  EXPECT_EQ(f.service.stats().sessions_rejected, 1u);
  const auto frames = f.exchange(c);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::MsgType::kError);
  EXPECT_NE(frames[0].payload.find("session limit"), std::string::npos);
  EXPECT_TRUE(c.io.closed());
}

TEST(GatewayService, ShutdownDrainsEverySession) {
  ServiceFixture f;
  auto a = f.connect();
  auto b = f.connect();
  f.send(a, wire::MsgType::kHello, "");
  f.send(b, wire::MsgType::kHello, "");
  f.exchange(a);
  f.exchange(b);
  f.service.shutdown();
  for (auto* client : {&a, &b}) {
    const auto bytes = client->io.drain();
    client->reader.feed(bytes.data(), bytes.size());
    wire::Message m;
    ASSERT_EQ(client->reader.next(&m),
              wire::FrameReader::Status::kMessage);
    EXPECT_EQ(m.type, wire::MsgType::kByeAck);
    EXPECT_EQ(m.payload, "server shutdown");
    EXPECT_TRUE(client->io.closed());
  }
  EXPECT_EQ(f.service.session_count(), 0u);
  EXPECT_EQ(f.service.stats().sessions_closed, 2u);
  const std::string metrics = f.service.metrics_json();
  EXPECT_NE(metrics.find("\"sessions_closed\""), std::string::npos)
      << metrics;
}

// ------------------------------------------- deterministic multi-client

/// Runs a fixed 6-client script (commands, subscriptions, a mid-script
/// reconnect) and returns every client's full transcript, serialized.
std::vector<std::string> run_scripted_session(std::uint64_t seed) {
  ServiceFixture f({}, seed);
  constexpr std::size_t kClients = 6;
  std::vector<ServiceFixture::TestClient> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(f.connect());
    f.send(clients[i], wire::MsgType::kHello, "");
  }
  for (auto& client : clients) {
    f.exchange(client);
  }
  // Everybody subscribes to tuple traffic; client 0 drives remote outs.
  for (auto& client : clients) {
    f.send(client, wire::MsgType::kSubscribe, "tuple");
  }
  for (std::size_t round = 0; round < 4; ++round) {
    f.send(clients[0], wire::MsgType::kCommand,
           "rout 2 2 str:rnd num:" + std::to_string(round));
    for (std::size_t i = 1; i < kClients; ++i) {
      f.send(clients[i], wire::MsgType::kCommand, "status");
    }
    for (std::size_t step = 0; step < 20; ++step) {
      f.deployment->run_for(50 * sim::kMillisecond);
      for (auto& client : clients) {
        f.exchange(client);
      }
    }
    // Client 3 drops and resumes by token each round.
    if (round == 1) {
      const std::string& welcome = clients[3].inbox.front().payload;
      const auto tok = welcome.find("token=");
      const std::string token = welcome.substr(
          tok + 6, welcome.find(' ', tok) - (tok + 6));
      clients[3].io.disconnect();
      f.service.pump();
      clients[3].io = f.transport.connect();
      clients[3].io.send(wire::encode(
          wire::Message{wire::MsgType::kHello, 999, 0, token}));
      for (auto& client : clients) {
        f.exchange(client);
      }
    }
  }
  std::vector<std::string> transcripts;
  for (auto& client : clients) {
    std::string transcript;
    for (const auto& m : client.inbox) {
      transcript += std::string(wire::to_string(m.type)) + "|" +
                    std::to_string(m.request_id) + "|" +
                    std::to_string(m.vtime) + "|" + m.payload + "\n";
    }
    transcripts.push_back(std::move(transcript));
  }
  return transcripts;
}

TEST(GatewayService, MultiClientTranscriptsAreByteIdenticalAcrossRuns) {
  const auto first = run_scripted_session(7);
  const auto second = run_scripted_session(7);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "client " << i;
    EXPECT_FALSE(first[i].empty());
  }
  // And the runs actually exercised the mesh: someone saw tuple events.
  bool any_event = false;
  for (const auto& t : first) {
    any_event = any_event || t.find("event|") != std::string::npos;
  }
  EXPECT_TRUE(any_event);
  // A different seed yields a different interleaving (the transcripts
  // are a function of the seed, not accidental constants).
  const auto other = run_scripted_session(8);
  bool any_difference = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    any_difference = any_difference || first[i] != other[i];
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace agilla::svc

#include "core/code_pool.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace agilla::core {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), std::uint8_t{1});
  return v;
}

TEST(CodePool, DefaultMatchesPaper) {
  CodePool pool;
  EXPECT_EQ(pool.total_blocks(), 20u);
  EXPECT_EQ(pool.capacity_bytes(), 440u);  // paper Sec. 3.2
  EXPECT_EQ(CodePool::kBlockSize, 22u);
}

TEST(CodePool, StoreAndFetch) {
  CodePool pool;
  const auto code = pattern(10);
  const auto handle = pool.store(code);
  ASSERT_TRUE(handle.has_value());
  for (std::uint16_t i = 0; i < 10; ++i) {
    bool ok = false;
    EXPECT_EQ(pool.fetch(*handle, i, &ok), code[i]);
    EXPECT_TRUE(ok);
  }
}

TEST(CodePool, FetchPastEndFails) {
  CodePool pool;
  const auto handle = pool.store(pattern(10));
  bool ok = true;
  EXPECT_EQ(pool.fetch(*handle, 10, &ok), 0u);
  EXPECT_FALSE(ok);
}

TEST(CodePool, MinimalBlocksAllocated) {
  CodePool pool;
  EXPECT_EQ(pool.store(pattern(1)).has_value(), true);
  EXPECT_EQ(pool.used_blocks(), 1u);
  const auto h2 = pool.store(pattern(22));
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(pool.used_blocks(), 2u);
  const auto h3 = pool.store(pattern(23));
  ASSERT_TRUE(h3.has_value());
  EXPECT_EQ(pool.used_blocks(), 4u);
}

TEST(CodePool, BlocksNeededHelper) {
  EXPECT_EQ(CodePool::blocks_needed(1), 1u);
  EXPECT_EQ(CodePool::blocks_needed(22), 1u);
  EXPECT_EQ(CodePool::blocks_needed(23), 2u);
  EXPECT_EQ(CodePool::blocks_needed(440), 20u);
}

TEST(CodePool, MultiBlockFetchCrossesBoundaries) {
  CodePool pool;
  const auto code = pattern(100);
  const auto handle = pool.store(code);
  ASSERT_TRUE(handle.has_value());
  for (std::uint16_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.fetch(*handle, i), code[i]) << i;
  }
}

TEST(CodePool, ExhaustionRejectsStore) {
  CodePool pool(2);
  EXPECT_TRUE(pool.store(pattern(44)).has_value());
  EXPECT_FALSE(pool.store(pattern(1)).has_value());
}

TEST(CodePool, OversizedRejected) {
  CodePool pool;
  EXPECT_FALSE(pool.store(pattern(441)).has_value());
  EXPECT_FALSE(pool.store({}).has_value());
}

TEST(CodePool, ReleaseRecyclesBlocks) {
  CodePool pool(3);
  const auto a = pool.store(pattern(44));  // 2 blocks
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(pool.free_blocks(), 1u);
  pool.release(*a);
  EXPECT_EQ(pool.free_blocks(), 3u);
  EXPECT_TRUE(pool.store(pattern(60)).has_value());  // 3 blocks now fit
}

TEST(CodePool, ReleaseInvalidHandleIsNoOp) {
  CodePool pool;
  pool.release(CodeHandle{});
  EXPECT_EQ(pool.free_blocks(), 20u);
}

TEST(CodePool, InterleavedAllocationsIndependent) {
  CodePool pool;
  const auto a = pool.store(pattern(30));
  auto b_code = pattern(30);
  for (auto& byte : b_code) {
    byte = static_cast<std::uint8_t>(byte + 100);
  }
  const auto b = pool.store(b_code);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  pool.release(*a);
  // b remains intact after a's blocks are freed.
  for (std::uint16_t i = 0; i < 30; ++i) {
    EXPECT_EQ(pool.fetch(*b, i), b_code[i]);
  }
}

TEST(CodePool, FragmentedPoolStillUsable) {
  CodePool pool(4);
  const auto a = pool.store(pattern(22));
  const auto b = pool.store(pattern(22));
  const auto c = pool.store(pattern(22));
  const auto d = pool.store(pattern(22));
  ASSERT_TRUE(a && b && c && d);
  pool.release(*a);
  pool.release(*c);  // non-adjacent free blocks
  const auto e = pool.store(pattern(44));  // needs 2 scattered blocks
  ASSERT_TRUE(e.has_value());
  const auto out = pool.copy_out(*e);
  EXPECT_EQ(out, pattern(44));
}

TEST(CodePool, CopyOutRoundTrip) {
  CodePool pool;
  const auto code = pattern(77);
  const auto handle = pool.store(code);
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(pool.copy_out(*handle), code);
}

TEST(CodePool, ExactCapacityFits) {
  CodePool pool;
  const auto handle = pool.store(pattern(440));
  ASSERT_TRUE(handle.has_value());
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.copy_out(*handle).size(), 440u);
}

}  // namespace
}  // namespace agilla::core

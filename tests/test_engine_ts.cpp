// Tuple-space instruction semantics: out/inp/rdp/tcount, blocking in/rd,
// reactions (regrxn/deregrxn/wait), and context tuples.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/assembler.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

struct SingleNode {
  SingleNode() : mesh(MeshOptions{.width = 1, .height = 1}) {
    mesh.env.set_field(sim::SensorType::kTemperature,
                       std::make_unique<sim::ConstantField>(25.0));
  }

  AgillaMiddleware& node() { return mesh.at(0); }
  ts::TupleSpace& space() { return node().tuple_space(); }

  void run(const std::string& source,
           sim::SimTime for_time = 2 * sim::kSecond) {
    node().inject(assemble_or_die(source));
    mesh.sim.run_for(for_time);
  }

  AgillaMesh mesh;
};

TEST(EngineTs, OutBuildsTupleInPushOrder) {
  SingleNode s;
  s.run("pushn fir\nloc\npushc 2\nout\nhalt");
  const auto t = s.space().rdp(ts::Template{
      ts::Value::string("fir"), ts::Value::type_wildcard(
                                    ts::ValueType::kLocation)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0), ts::Value::string("fir"));
  EXPECT_EQ(t->field(1).as_location(), (sim::Location{1, 1}));
}

TEST(EngineTs, InpRemovesAndSetsCondition) {
  SingleNode s;
  s.space().out(ts::Tuple{ts::Value::number(7)});
  s.run(R"(
      pusht NUMBER
      pushc 1
      inp            // removes <7>, pushes field, cond=1
      pushc 1
      out            // re-insert what we grabbed as proof
      cpush
      pushn chk
      swap
      pushc 2
      out            // <"chk", cond>
      halt
  )");
  const auto got = s.space().rdp(ts::Template{ts::Value::number(7)});
  EXPECT_TRUE(got.has_value());
  const auto chk = s.space().rdp(ts::Template{
      ts::Value::string("chk"), ts::Value::type_wildcard(
                                    ts::ValueType::kNumber)});
  ASSERT_TRUE(chk.has_value());
  EXPECT_EQ(chk->field(1).as_number(), 1);
}

TEST(EngineTs, FailedInpSetsConditionZero) {
  SingleNode s;
  s.run(R"(
      pusht NUMBER
      pushc 1
      inp
      cpush
      pushn chk
      swap
      pushc 2
      out
      halt
  )");
  const auto chk = s.space().rdp(ts::Template{
      ts::Value::string("chk"), ts::Value::type_wildcard(
                                    ts::ValueType::kNumber)});
  ASSERT_TRUE(chk.has_value());
  EXPECT_EQ(chk->field(1).as_number(), 0);
}

TEST(EngineTs, RdpCopiesWithoutRemoving) {
  SingleNode s;
  s.space().out(ts::Tuple{ts::Value::number(9)});
  s.run("pusht NUMBER\npushc 1\nrdp\npop\nhalt");
  EXPECT_EQ(s.space().tcount(ts::Template{ts::Value::number(9)}), 1u);
}

TEST(EngineTs, TCountCounts) {
  SingleNode s;
  s.space().out(ts::Tuple{ts::Value::number(1)});
  s.space().out(ts::Tuple{ts::Value::number(1)});
  s.space().out(ts::Tuple{ts::Value::number(2)});
  s.run(R"(
      pusht NUMBER
      pushc 1
      tcount
      pushn cnt
      swap
      pushc 2
      out
      halt
  )");
  const auto chk = s.space().rdp(ts::Template{
      ts::Value::string("cnt"), ts::Value::type_wildcard(
                                    ts::ValueType::kNumber)});
  ASSERT_TRUE(chk.has_value());
  EXPECT_EQ(chk->field(1).as_number(), 3);
}

TEST(EngineTs, BlockingInWaitsForInsertion) {
  SingleNode s;
  // Agent A blocks in `in` for a number; later a test-inserted tuple wakes
  // it, and it republishes the value tagged "got".
  s.node().inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      in
      pushn got
      swap
      pushc 2
      out
      halt
  )"));
  s.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_EQ(s.node().agents().count(), 1u);  // still blocked
  s.space().out(ts::Tuple{ts::Value::number(55)});
  s.mesh.sim.run_for(1 * sim::kSecond);
  const auto got = s.space().rdp(ts::Template{
      ts::Value::string("got"), ts::Value::number(55)});
  EXPECT_TRUE(got.has_value());
  EXPECT_EQ(s.node().agents().count(), 0u);
  // The matched tuple was REMOVED by `in`.
  EXPECT_EQ(s.space().tcount(ts::Template{ts::Value::number(55)}), 0u);
}

TEST(EngineTs, BlockingRdLeavesTuple) {
  SingleNode s;
  s.node().inject(assemble_or_die(R"(
      pusht NUMBER
      pushc 1
      rd
      pushn got
      swap
      pushc 2
      out
      halt
  )"));
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  s.space().out(ts::Tuple{ts::Value::number(66)});
  s.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_EQ(s.space().tcount(ts::Template{ts::Value::number(66)}), 1u);
  EXPECT_TRUE(s.space()
                  .rdp(ts::Template{ts::Value::string("got"),
                                    ts::Value::number(66)})
                  .has_value());
}

TEST(EngineTs, BlockedAgentIgnoresNonMatchingInsertions) {
  SingleNode s;
  s.node().inject(assemble_or_die(R"(
      pushn key
      pusht NUMBER
      pushc 2
      in
      pop
      pop
      pushn yes
      pushc 1
      out
      halt
  )"));
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  s.space().out(ts::Tuple{ts::Value::number(1)});  // wrong shape
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  EXPECT_EQ(s.node().agents().count(), 1u);  // still blocked
  s.space().out(ts::Tuple{ts::Value::string("key"), ts::Value::number(2)});
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  EXPECT_TRUE(s.space()
                  .rdp(ts::Template{ts::Value::string("yes")})
                  .has_value());
}

TEST(EngineTs, ReactionFiresOnInsert) {
  SingleNode s;
  // Paper Fig. 2 pattern: register, wait; the reaction handler republishes
  // the alert location under "rx".
  s.node().inject(assemble_or_die(R"(
      BEGIN pushn fir
            pusht LOCATION
            pushc 2
            pushc FIRE
            regrxn
            wait
      FIRE  pop          // drop "fir" (field 0 is on top)
            pushn rx
            swap
            pushc 2
            out          // <"rx", location>
            halt
  )"));
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  s.space().out(
      ts::Tuple{ts::Value::string("fir"), ts::Value::location({4, 2})});
  s.mesh.sim.run_for(1 * sim::kSecond);
  const auto rx = s.space().rdp(ts::Template{
      ts::Value::string("rx"), ts::Value::location({4, 2})});
  EXPECT_TRUE(rx.has_value());
  EXPECT_EQ(s.node().engine().stats().reactions_fired, 1u);
}

TEST(EngineTs, ReactionInterruptsRunningAgent) {
  SingleNode s;
  // The agent registers a reaction and then spins; the reaction must
  // interrupt the loop (paper Sec. 3.2: the PC is redirected).
  s.node().inject(assemble_or_die(R"(
      BEGIN pushc 9
            pusht NUMBER
            pushc 2
            pushc HIT
            regrxn
      SPIN  pushc 1
            pop
            rjump SPIN
      HIT   pushn hit
            pushc 1
            out
            halt
  )"));
  s.mesh.sim.run_for(200 * sim::kMillisecond);
  s.space().out(ts::Tuple{ts::Value::number(9), ts::Value::number(1)});
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  EXPECT_TRUE(
      s.space().rdp(ts::Template{ts::Value::string("hit")}).has_value());
}

TEST(EngineTs, ReactionReturnViaJumps) {
  SingleNode s;
  // Handler consumes the tuple fields and jumps back to the saved PC.
  s.node().inject(assemble_or_die(R"(
      BEGIN pusht NUMBER
            pushc 1
            pushc HIT
            regrxn
            wait
      AFTER pushn aft
            pushc 1
            out
            halt
      HIT   pop          // drop the number field
            jumps        // return to saved pc (the wait fell through)
  )"));
  s.mesh.sim.run_for(300 * sim::kMillisecond);
  s.space().out(ts::Tuple{ts::Value::number(3)});
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  EXPECT_TRUE(
      s.space().rdp(ts::Template{ts::Value::string("aft")}).has_value());
}

TEST(EngineTs, DeregisteredReactionStopsFiring) {
  SingleNode s;
  s.node().inject(assemble_or_die(R"(
      pushc 9
      pusht NUMBER
      pushc 2
      pushc HIT
      regrxn
      pushc 9
      pusht NUMBER
      pushc 2
      deregrxn
      pushc 200
      sleep
      halt
      HIT pushn bad
      pushc 1
      out
      halt
  )"));
  s.mesh.sim.run_for(500 * sim::kMillisecond);
  s.space().out(ts::Tuple{ts::Value::number(9), ts::Value::number(1)});
  s.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_FALSE(
      s.space().rdp(ts::Template{ts::Value::string("bad")}).has_value());
  EXPECT_EQ(s.node().engine().stats().reactions_fired, 0u);
}

TEST(EngineTs, ReactionsSurviveAgentSleep) {
  SingleNode s;
  s.node().inject(assemble_or_die(R"(
      pushn key
      pushc 1
      pushc HIT
      regrxn
      pushcl 800
      sleep          // 100 s — reaction should cut this short
      halt
      HIT pop
      pushn oky
      pushc 1
      out
      halt
  )"));
  s.mesh.sim.run_for(1 * sim::kSecond);
  s.space().out(ts::Tuple{ts::Value::string("key")});
  s.mesh.sim.run_for(1 * sim::kSecond);
  EXPECT_TRUE(
      s.space().rdp(ts::Template{ts::Value::string("oky")}).has_value());
}

TEST(EngineTs, ContextTuplesAdvertiseSensors) {
  // Paper Sec. 2.2: "If a node has a thermometer, Agilla would insert a
  // 'temperature tuple' into its tuple space."
  SingleNode s;  // fixture installs a temperature field before start()...
  // start() ran in the fixture before the field was added; re-seed by
  // checking a fresh mesh instead.
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1, .start = false});
  mesh.env.set_field(sim::SensorType::kTemperature,
                     std::make_unique<sim::ConstantField>(20.0));
  mesh.at(0).start();
  const auto t = mesh.at(0).tuple_space().rdp(ts::Template{
      ts::Value::string("tmp"),
      ts::Value::reading_type(sim::SensorType::kTemperature)});
  EXPECT_TRUE(t.has_value());
  // No photo sensor -> no photo tuple.
  EXPECT_FALSE(mesh.at(0)
                   .tuple_space()
                   .rdp(ts::Template{
                       ts::Value::string("pho"),
                       ts::Value::reading_type(sim::SensorType::kPhoto)})
                   .has_value());
}

TEST(EngineTs, SenseReadsEnvironment) {
  SingleNode s;
  s.run(R"(
      pushc TEMPERATURE
      sense
      pushc 1
      out
      halt
  )");
  const auto t = s.space().rdp(ts::Template{
      ts::Value::reading_type(sim::SensorType::kTemperature)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_number(), 25);
}

TEST(EngineTs, SenseMissingSensorSetsConditionZero) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});  // no fields
  mesh.at(0).inject(assemble_or_die(R"(
      pushc PHOTO
      sense
      pop
      cpush
      pushc 1
      out
      halt
  )"));
  mesh.sim.run_for(1 * sim::kSecond);
  const auto t = mesh.at(0).tuple_space().rdp(
      ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->field(0).as_number(), 0);
}

TEST(EngineTs, ReactionQueuedWhileBlockedOnRemoteOp) {
  // A reaction firing while its agent is mid-remote-op must not interrupt
  // the in-flight operation; it is delivered when the agent resumes (the
  // handler runs FIRST, then `jumps` returns to the post-rinp path).
  AgillaMesh mesh(MeshOptions{.width = 2, .height = 1});
  mesh.warm();
  mesh.at(0).inject(assemble_or_die(R"(
      pushn key
      pushc 1
      pushc HIT
      regrxn
      pusht NUMBER
      pushc 1
      pushloc 2 1
      rinp           // blocks the agent for the round trip (~50 ms)
      pushn nrm
      pushc 1
      out            // the normal path continues after the handler returns
      halt
      HIT pop        // queued reaction delivered at resume: drop "key"
      pushn hit
      pushc 1
      out
      jumps          // return to the saved pc (right after rinp)
  )"));
  mesh.sim.run_for(20 * sim::kMillisecond);  // rinp is now in flight
  mesh.at(0).tuple_space().out(ts::Tuple{ts::Value::string("key")});
  mesh.sim.run_for(3 * sim::kSecond);
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("hit")})
                  .has_value());
  EXPECT_TRUE(mesh.at(0)
                  .tuple_space()
                  .rdp(ts::Template{ts::Value::string("nrm")})
                  .has_value());
}

}  // namespace
}  // namespace agilla::core

#include "sim/environment.h"

#include <gtest/gtest.h>

#include <memory>

namespace agilla::sim {
namespace {

TEST(ConstantField, AlwaysSameValue) {
  ConstantField field(42.0);
  EXPECT_DOUBLE_EQ(field.value({0, 0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(field.value({100, -5}, 99 * kSecond), 42.0);
}

TEST(GaussianBumpField, PeakAtCenterDecaysOutward) {
  GaussianBumpField field({5, 5}, 100.0, 1.0, 20.0);
  EXPECT_NEAR(field.value({5, 5}, 0), 120.0, 1e-9);
  const double near = field.value({5.5, 5}, 0);
  const double far = field.value({8, 5}, 0);
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, 20.0, 1.5);  // ~ambient far away
}

TEST(FireField, AmbientBeforeIgnition) {
  FireField fire({.ignition_point = {3, 3},
                  .ignition_time = 10 * kSecond,
                  .spread_speed = 0.1,
                  .peak = 500.0,
                  .ambient = 25.0});
  EXPECT_DOUBLE_EQ(fire.value({3, 3}, 5 * kSecond), 25.0);
  EXPECT_DOUBLE_EQ(fire.front_radius(5 * kSecond), 0.0);
}

TEST(FireField, PeakInsideBurningFront) {
  FireField fire({.ignition_point = {3, 3},
                  .ignition_time = 0,
                  .spread_speed = 0.5,
                  .peak = 500.0,
                  .ambient = 25.0});
  // After 4 s the front radius is 2; (4,3) is 1 unit away -> burning.
  EXPECT_DOUBLE_EQ(fire.front_radius(4 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(fire.value({4, 3}, 4 * kSecond), 500.0);
}

TEST(FireField, DecaysBeyondFront) {
  FireField fire({.ignition_point = {0, 0},
                  .ignition_time = 0,
                  .spread_speed = 0.1,
                  .peak = 500.0,
                  .ambient = 25.0,
                  .edge_decay = 0.5});
  const double close = fire.value({1, 0}, 1 * kSecond);
  const double far = fire.value({4, 0}, 1 * kSecond);
  EXPECT_GT(close, far);
  EXPECT_GT(close, 25.0);
  EXPECT_NEAR(far, 25.0, 1.0);
}

TEST(FireField, FrontGrowsOverTime) {
  FireField fire({.ignition_point = {0, 0},
                  .ignition_time = 0,
                  .spread_speed = 0.2});
  EXPECT_LT(fire.front_radius(1 * kSecond), fire.front_radius(10 * kSecond));
}

TEST(FireField, ExtinctionReturnsToAmbient) {
  FireField fire({.ignition_point = {0, 0},
                  .ignition_time = 0,
                  .extinction_time = 10 * kSecond,
                  .spread_speed = 1.0,
                  .peak = 500.0,
                  .ambient = 25.0});
  EXPECT_DOUBLE_EQ(fire.value({0, 0}, 5 * kSecond), 500.0);
  EXPECT_DOUBLE_EQ(fire.value({0, 0}, 10 * kSecond), 25.0);
}


TEST(FireField, RingFireBurnsOutBehindTheFront) {
  FireField fire({.ignition_point = {0, 0},
                  .ignition_time = 0,
                  .spread_speed = 1.0,
                  .peak = 500.0,
                  .ambient = 25.0,
                  .edge_decay = 0.5,
                  .ring_width = 1.0,
                  .burned_over = 40.0});
  // At t=4s the front is at radius 4; the ring covers (3, 4].
  EXPECT_DOUBLE_EQ(fire.value({3.5, 0}, 4 * kSecond), 500.0);
  EXPECT_DOUBLE_EQ(fire.value({1.0, 0}, 4 * kSecond), 40.0);   // burned out
  EXPECT_LT(fire.value({6.0, 0}, 4 * kSecond), 500.0);         // not yet
}

TEST(FireField, ZeroRingWidthKeepsDiskSemantics) {
  FireField fire({.ignition_point = {0, 0},
                  .ignition_time = 0,
                  .spread_speed = 1.0,
                  .peak = 500.0,
                  .ambient = 25.0});
  EXPECT_DOUBLE_EQ(fire.value({0, 0}, 10 * kSecond), 500.0);
}


TEST(MovingBumpField, CenterFollowsWaypointsAtSpeed) {
  MovingBumpField field({.waypoints = {{0, 0}, {10, 0}},
                         .speed = 1.0,
                         .loop = false});
  EXPECT_EQ(field.center(0), (Location{0, 0}));
  EXPECT_EQ(field.center(5 * kSecond), (Location{5, 0}));
  EXPECT_EQ(field.center(10 * kSecond), (Location{10, 0}));
  // Non-looping: holds at the last waypoint.
  EXPECT_EQ(field.center(20 * kSecond), (Location{10, 0}));
}

TEST(MovingBumpField, LoopWrapsAroundThePath) {
  MovingBumpField field({.waypoints = {{0, 0}, {4, 0}, {4, 4}, {0, 4}},
                         .speed = 1.0,
                         .loop = true});
  // Perimeter length 16; at t=16s it is back at the start.
  const Location wrapped = field.center(16 * kSecond);
  EXPECT_NEAR(wrapped.x, 0.0, 1e-9);
  EXPECT_NEAR(wrapped.y, 0.0, 1e-9);
  const Location quarter = field.center(4 * kSecond);
  EXPECT_NEAR(quarter.x, 4.0, 1e-9);
  EXPECT_NEAR(quarter.y, 0.0, 1e-9);
}

TEST(MovingBumpField, SignalPeaksAtTheMovingCenter) {
  MovingBumpField field({.waypoints = {{0, 0}, {10, 0}},
                         .speed = 1.0,
                         .peak = 400.0,
                         .sigma = 1.0,
                         .ambient = 5.0,
                         .loop = false});
  const SimTime t = 5 * kSecond;
  const double at_center = field.value({5, 0}, t);
  const double near = field.value({6, 0}, t);
  const double far = field.value({0, 0}, t);
  EXPECT_NEAR(at_center, 405.0, 1e-6);
  EXPECT_GT(at_center, near);
  EXPECT_GT(near, far);
}

TEST(MovingBumpField, DegenerateSingleWaypoint) {
  MovingBumpField field({.waypoints = {{3, 3}}, .speed = 1.0});
  EXPECT_EQ(field.center(99 * kSecond), (Location{3, 3}));
}

TEST(SensorEnvironment, MissingSensorReadsZeroAndReportsAbsent) {
  SensorEnvironment env;
  EXPECT_FALSE(env.has(SensorType::kTemperature));
  EXPECT_DOUBLE_EQ(env.read(SensorType::kTemperature, {0, 0}, 0), 0.0);
}

TEST(SensorEnvironment, InstalledFieldIsUsed) {
  SensorEnvironment env;
  env.set_field(SensorType::kTemperature,
                std::make_unique<ConstantField>(25.0));
  EXPECT_TRUE(env.has(SensorType::kTemperature));
  EXPECT_DOUBLE_EQ(env.read(SensorType::kTemperature, {1, 1}, 0), 25.0);
  EXPECT_FALSE(env.has(SensorType::kPhoto));
}

TEST(SensorEnvironment, FieldsAreIndependentPerType) {
  SensorEnvironment env;
  env.set_field(SensorType::kTemperature,
                std::make_unique<ConstantField>(25.0));
  env.set_field(SensorType::kPhoto, std::make_unique<ConstantField>(800.0));
  EXPECT_DOUBLE_EQ(env.read(SensorType::kTemperature, {0, 0}, 0), 25.0);
  EXPECT_DOUBLE_EQ(env.read(SensorType::kPhoto, {0, 0}, 0), 800.0);
}

TEST(SensorType, NamesAreStable) {
  EXPECT_STREQ(to_string(SensorType::kTemperature), "temperature");
  EXPECT_STREQ(to_string(SensorType::kMagnetometer), "magnetometer");
}

}  // namespace
}  // namespace agilla::sim

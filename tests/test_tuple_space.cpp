#include "tuplespace/tuple_space.h"

#include <gtest/gtest.h>

#include <vector>

namespace agilla::ts {
namespace {

TEST(TupleSpace, OutInpRdpBasics) {
  TupleSpace space;
  EXPECT_TRUE(space.out(Tuple{Value::number(5)}));
  EXPECT_TRUE(space.rdp(Template{Value::number(5)}).has_value());
  EXPECT_TRUE(space.inp(Template{Value::number(5)}).has_value());
  EXPECT_FALSE(space.inp(Template{Value::number(5)}).has_value());
}

TEST(TupleSpace, TCount) {
  TupleSpace space;
  space.out(Tuple{Value::number(1)});
  space.out(Tuple{Value::number(1)});
  EXPECT_EQ(space.tcount(Template{Value::number(1)}), 2u);
  EXPECT_EQ(space.tcount(Template{Value::number(2)}), 0u);
}

TEST(TupleSpace, InsertionCallbackFires) {
  TupleSpace space;
  std::vector<Tuple> inserted;
  space.set_insertion_callback(
      [&](const Tuple& t) { inserted.push_back(t); });
  space.out(Tuple{Value::number(1)});
  space.out(Tuple{Value::number(2)});
  ASSERT_EQ(inserted.size(), 2u);
  EXPECT_EQ(inserted[1].field(0).as_number(), 2);
}

TEST(TupleSpace, RejectedInsertFiresNothing) {
  TupleSpace space(TupleSpace::Options{.store_capacity_bytes = 4,
                                       .registry = {}});
  int insertions = 0;
  space.set_insertion_callback([&](const Tuple&) { ++insertions; });
  EXPECT_FALSE(space.out(Tuple{Value::number(1)}));
  EXPECT_EQ(insertions, 0);
}

TEST(TupleSpace, ReactionFiresOnMatchingInsert) {
  TupleSpace space;
  Reaction r;
  r.agent_id = 9;
  r.templ = Template{Value::string("fir"),
                     Value::type_wildcard(ValueType::kLocation)};
  r.handler_pc = 42;
  ASSERT_TRUE(space.register_reaction(r));

  std::vector<std::pair<Reaction, Tuple>> fired;
  space.set_reaction_callback([&](const Reaction& rx, const Tuple& t) {
    fired.emplace_back(rx, t);
  });

  space.out(Tuple{Value::number(1)});  // no match
  EXPECT_TRUE(fired.empty());
  space.out(Tuple{Value::string("fir"), Value::location({4, 4})});
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first.handler_pc, 42);
  EXPECT_EQ(fired[0].second.field(1).as_location(), (sim::Location{4, 4}));
}

TEST(TupleSpace, ReactionDoesNotConsumeTuple) {
  TupleSpace space;
  Reaction r;
  r.agent_id = 1;
  r.templ = Template{Value::type_wildcard(ValueType::kNumber)};
  space.register_reaction(r);
  space.set_reaction_callback([](const Reaction&, const Tuple&) {});
  space.out(Tuple{Value::number(3)});
  EXPECT_TRUE(space.rdp(Template{Value::number(3)}).has_value());
}

TEST(TupleSpace, DeregisteredReactionSilent) {
  TupleSpace space;
  Reaction r;
  r.agent_id = 1;
  r.templ = Template{Value::number(7)};
  space.register_reaction(r);
  int fired = 0;
  space.set_reaction_callback(
      [&](const Reaction&, const Tuple&) { ++fired; });
  EXPECT_TRUE(space.deregister_reaction(1, Template{Value::number(7)}));
  space.out(Tuple{Value::number(7)});
  EXPECT_EQ(fired, 0);
}

TEST(TupleSpace, ExtractReactionsForMigration) {
  TupleSpace space;
  for (std::int16_t i = 0; i < 3; ++i) {
    Reaction r;
    r.agent_id = 5;
    r.templ = Template{Value::number(i)};
    space.register_reaction(r);
  }
  Reaction other;
  other.agent_id = 6;
  other.templ = Template{Value::number(99)};
  space.register_reaction(other);

  const auto extracted = space.extract_reactions(5);
  EXPECT_EQ(extracted.size(), 3u);
  EXPECT_EQ(space.reactions().size(), 1u);
}

TEST(TupleSpace, CallbackMayRegisterDuringFire) {
  // A reaction handler that registers another reaction must not corrupt
  // the firing iteration (snapshot semantics).
  TupleSpace space;
  Reaction first;
  first.agent_id = 1;
  first.templ = Template{Value::number(1)};
  space.register_reaction(first);
  int fired = 0;
  space.set_reaction_callback([&](const Reaction& r, const Tuple&) {
    ++fired;
    if (r.agent_id == 1) {
      Reaction second;
      second.agent_id = 2;
      second.templ = Template{Value::number(1)};
      space.register_reaction(second);
    }
  });
  space.out(Tuple{Value::number(1)});
  EXPECT_EQ(fired, 1);  // the new reaction only sees future insertions
  space.out(Tuple{Value::number(1)});
  EXPECT_EQ(fired, 3);  // now both fire
}

TEST(TupleSpace, BlockingSemanticsBuildOnProbes) {
  // The engine implements in/rd by retrying inp/rdp; the space just needs
  // probes + the insertion hook. Verify the retry pattern works.
  TupleSpace space;
  bool woken = false;
  space.set_insertion_callback([&](const Tuple&) { woken = true; });
  EXPECT_FALSE(space.inp(Template{Value::number(1)}).has_value());
  space.out(Tuple{Value::number(1)});
  EXPECT_TRUE(woken);
  EXPECT_TRUE(space.inp(Template{Value::number(1)}).has_value());
}

}  // namespace
}  // namespace agilla::ts

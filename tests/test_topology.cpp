#include "sim/topology.h"

#include <gtest/gtest.h>

#include <memory>

namespace agilla::sim {
namespace {

struct GridFixture {
  Simulator sim{1};
  Network net{sim, std::make_unique<GridNeighborRadio>(
                       GridNeighborRadio::Options{.spacing = 1.0})};
};

TEST(Topology, GridPlacesPaperCoordinates) {
  GridFixture f;
  const Topology topo = make_grid(f.net, 5, 5);
  ASSERT_EQ(topo.size(), 25u);
  // Lower-left corner is (1,1), as in paper Fig. 3.
  EXPECT_EQ(f.net.info(topo.nodes[0]).location, (Location{1, 1}));
  EXPECT_EQ(f.net.info(topo.nodes[4]).location, (Location{5, 1}));
  EXPECT_EQ(f.net.info(topo.nodes[24]).location, (Location{5, 5}));
}

TEST(Topology, LineIsOneRow) {
  GridFixture f;
  const Topology topo = make_line(f.net, 6);
  ASSERT_EQ(topo.size(), 6u);
  EXPECT_EQ(f.net.info(topo.nodes[5]).location, (Location{6, 1}));
}

TEST(Topology, RandomPlacementInsideBounds) {
  GridFixture f;
  Rng rng(7);
  const Topology topo = make_random(f.net, 50, 10.0, 20.0, rng);
  for (NodeId id : topo.nodes) {
    const Location loc = f.net.info(id).location;
    EXPECT_GE(loc.x, 0.0);
    EXPECT_LT(loc.x, 10.0);
    EXPECT_GE(loc.y, 0.0);
    EXPECT_LT(loc.y, 20.0);
  }
}

TEST(Topology, HopDistanceAlongLine) {
  GridFixture f;
  const Topology topo = make_line(f.net, 6);
  EXPECT_EQ(hop_distance(f.net, topo.nodes[0], topo.nodes[5]), 5u);
  EXPECT_EQ(hop_distance(f.net, topo.nodes[0], topo.nodes[0]), 0u);
}

TEST(Topology, HopDistanceManhattanOnGrid) {
  GridFixture f;
  const Topology topo = make_grid(f.net, 5, 5);
  // (1,1) -> (5,5): 4 + 4 = 8 hops on a 4-connected grid.
  EXPECT_EQ(hop_distance(f.net, topo.nodes[0], topo.nodes[24]), 8u);
}

TEST(Topology, HopDistanceUnreachable) {
  GridFixture f;
  const Topology a = make_line(f.net, 2);
  const NodeId island = f.net.add_node({100, 100});
  EXPECT_FALSE(hop_distance(f.net, a.nodes[0], island).has_value());
}

TEST(Topology, NearestNodeExactAndApproximate) {
  GridFixture f;
  const Topology topo = make_grid(f.net, 3, 3);
  EXPECT_EQ(nearest_node(f.net, topo, {2, 2}), topo.nodes[4]);
  EXPECT_EQ(nearest_node(f.net, topo, {2.2, 1.9}), topo.nodes[4]);
  EXPECT_EQ(nearest_node(f.net, topo, {0, 0}), topo.nodes[0]);
}

}  // namespace
}  // namespace agilla::sim

// Property-style sweeps over the tuple-space substrate: randomized
// insert/remove workloads checked against a reference model, and matching
// invariants across generated values.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "sim/rng.h"
#include "tuplespace/store.h"

namespace agilla::ts {
namespace {

Value random_value(sim::Rng& rng) {
  switch (rng.uniform(5)) {
    case 0:
      return Value::number(static_cast<std::int16_t>(rng.uniform(100)));
    case 1: {
      const char c = static_cast<char>('a' + rng.uniform(4));
      return Value::string(std::string(1 + rng.uniform(3), c));
    }
    case 2:
      return Value::location({static_cast<double>(rng.uniform(8)),
                              static_cast<double>(rng.uniform(8))});
    case 3:
      return Value::reading(
          static_cast<sim::SensorType>(rng.uniform(sim::kNumSensorTypes)),
          static_cast<std::int16_t>(rng.uniform(500)));
    default:
      return Value::agent_id(static_cast<std::uint16_t>(rng.uniform(32)));
  }
}

Tuple random_tuple(sim::Rng& rng) {
  Tuple t;
  const std::size_t arity = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < arity; ++i) {
    t.add(random_value(rng));
  }
  return t;
}

/// Turns a tuple into the fully-concrete template that matches it exactly,
/// optionally degrading fields into wildcards.
Template to_template(const Tuple& t, sim::Rng& rng, bool wildcards) {
  Template templ;
  for (const Value& f : t.fields()) {
    if (wildcards && rng.chance(0.5)) {
      templ.add(Value::type_wildcard(f.type()));
    } else {
      templ.add(f);
    }
  }
  return templ;
}

class StoreModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreModelSweep, MatchesReferenceModel) {
  sim::Rng rng(GetParam());
  LinearTupleStore store(200);
  std::list<Tuple> model;  // reference: ordered list with byte accounting

  auto model_bytes = [&] {
    std::size_t total = 0;
    for (const Tuple& t : model) {
      total += 1 + t.wire_size();
    }
    return total;
  };

  for (int step = 0; step < 400; ++step) {
    if (rng.chance(0.6)) {
      const Tuple t = random_tuple(rng);
      const bool fits = !t.empty() &&
                        model_bytes() + 1 + t.wire_size() <= 200;
      EXPECT_EQ(store.insert(t), fits) << "step " << step;
      if (fits) {
        model.push_back(t);
      }
    } else if (!model.empty()) {
      // Probe for a random existing tuple (sometimes with wildcards).
      auto it = model.begin();
      std::advance(it, rng.uniform(model.size()));
      const Template templ = to_template(*it, rng, true);
      // The store removes the FIRST match in insertion order; mirror that.
      const auto first = std::find_if(
          model.begin(), model.end(),
          [&](const Tuple& t) { return templ.matches(t); });
      const auto got = store.take(templ);
      ASSERT_TRUE(got.has_value());
      ASSERT_TRUE(first != model.end());
      EXPECT_EQ(*got, *first);
      model.erase(first);
    }
    ASSERT_EQ(store.tuple_count(), model.size());
    ASSERT_EQ(store.used_bytes(), model_bytes());
    ASSERT_LE(store.used_bytes(), store.capacity_bytes());
  }

  // Drain everything; order must match the model.
  const auto snapshot = store.snapshot();
  ASSERT_EQ(snapshot.size(), model.size());
  auto it = model.begin();
  for (const Tuple& t : snapshot) {
    EXPECT_EQ(t, *it++);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class MatchingProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperties, ExactTemplateAlwaysMatchesItsTuple) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Tuple t = random_tuple(rng);
    Template exact = to_template(t, rng, false);
    EXPECT_TRUE(exact.matches(t)) << t.to_string();
    Template wild = to_template(t, rng, true);
    EXPECT_TRUE(wild.matches(t))
        << wild.to_string() << " vs " << t.to_string();
  }
}

TEST_P(MatchingProperties, ArityMismatchNeverMatches) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Tuple t = random_tuple(rng);
    Template templ = to_template(t, rng, true);
    Tuple longer = t;
    if (!longer.add(Value::number(1))) {
      continue;  // at the wire budget; skip
    }
    EXPECT_FALSE(templ.matches(longer));
  }
}

TEST_P(MatchingProperties, WireRoundTripPreservesMatching) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Tuple t = random_tuple(rng);
    const Template templ = to_template(t, rng, true);
    net::Writer wt;
    t.encode(wt);
    net::Writer wm;
    templ.encode(wm);
    net::Reader rt(wt.data());
    net::Reader rm(wm.data());
    const auto t2 = Tuple::decode(rt);
    const auto m2 = Template::decode(rm);
    ASSERT_TRUE(t2.has_value());
    ASSERT_TRUE(m2.has_value());
    EXPECT_TRUE(m2->matches(*t2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperties,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace agilla::ts

// The harness's central promise: experiment results are a pure function
// of the spec — same seed + same grid => byte-identical JSON whether the
// trials ran on 1 worker thread or N, and across repeated runs.
#include "harness/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/json_writer.h"
#include "harness/mesh.h"

namespace agilla::harness {
namespace {

ExperimentSpec small_fire_spec() {
  ExperimentSpec spec;
  spec.name = "determinism_probe";
  spec.scenario = "fire_tracking";
  spec.grids = {{4, 4}};
  spec.loss_rates = {0.0, 0.05};
  spec.stores = {ts::StoreKind::kLinear, ts::StoreKind::kIndexed};
  spec.trials = 2;
  spec.base_seed = 7;
  spec.duration = 40 * sim::kSecond;
  return spec;
}

TEST(Runner, JsonIdenticalAcrossThreadCounts) {
  const ExperimentSpec spec = small_fire_spec();
  const std::string serial =
      to_json(run_experiment(spec, RunnerOptions{.threads = 1}));
  const std::string parallel =
      to_json(run_experiment(spec, RunnerOptions{.threads = 4}));
  const std::string parallel8 =
      to_json(run_experiment(spec, RunnerOptions{.threads = 8}));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, parallel8);
}

TEST(Runner, JsonStableAcrossRepeatedRuns) {
  ExperimentSpec spec;
  spec.scenario = "smove";
  spec.grids = {{5, 5}};
  spec.loss_rates = {0.05};
  spec.per_byte_loss = kDefaultPerByteLoss;
  spec.axes = {{"hops", {1, 3}}};
  spec.trials = 4;
  spec.base_seed = 11;
  const std::string first =
      to_json(run_experiment(spec, RunnerOptions{.threads = 2}));
  const std::string second =
      to_json(run_experiment(spec, RunnerOptions{.threads = 3}));
  EXPECT_EQ(first, second);
}

TEST(Runner, EnergyScenariosJsonIdenticalAcrossThreadCounts) {
  ExperimentSpec lifetime;
  lifetime.scenario = "network_lifetime";
  lifetime.grids = {{4, 4}};
  lifetime.loss_rates = {0.02};
  lifetime.trials = 2;
  lifetime.base_seed = 3;
  lifetime.duration = 50 * sim::kSecond;
  lifetime.params["battery_mj"] = 900.0;
  const ExperimentResult life_result =
      run_experiment(lifetime, RunnerOptions{.threads = 1});
  const std::string life1 = to_json(life_result);
  const std::string life4 =
      to_json(run_experiment(lifetime, RunnerOptions{.threads = 4}));
  EXPECT_EQ(life1, life4);
  // Batteries really depleted: the run saw node deaths.
  EXPECT_GT(life_result.cells.at(0).metrics.at("deaths").summary.total(),
            0.0);

  ExperimentSpec churn;
  churn.scenario = "churn_pursuit";
  churn.grids = {{4, 4}};
  churn.loss_rates = {0.02};
  churn.trials = 2;
  churn.base_seed = 5;
  churn.duration = 40 * sim::kSecond;
  churn.params["churn_rate"] = 0.02;
  churn.params["churn_reboot_s"] = 8.0;
  const ExperimentResult churn_result =
      run_experiment(churn, RunnerOptions{.threads = 1});
  const std::string churn1 = to_json(churn_result);
  const std::string churn4 =
      to_json(run_experiment(churn, RunnerOptions{.threads = 4}));
  EXPECT_EQ(churn1, churn4);
  // Churn really fired: crashes were recorded.
  EXPECT_GT(
      churn_result.cells.at(0).metrics.at("crashes").summary.total(),
      0.0);
}

TEST(Scenario, BuiltInsDeclareTheirKnobs) {
  const ScenarioInfo* lifetime = find_scenario("network_lifetime");
  ASSERT_NE(lifetime, nullptr);
  EXPECT_NE(std::find(lifetime->knobs.begin(), lifetime->knobs.end(),
                      "duty_cycle"),
            lifetime->knobs.end());
  const ScenarioInfo* smove = find_scenario("smove");
  ASSERT_NE(smove, nullptr);
  EXPECT_NE(std::find(smove->knobs.begin(), smove->knobs.end(), "hops"),
            smove->knobs.end());
}

TEST(Runner, SeedChangesResults) {
  ExperimentSpec spec = small_fire_spec();
  spec.loss_rates = {0.15};  // lossy enough that outcomes vary by seed
  spec.stores = {ts::StoreKind::kLinear};
  const std::string a = to_json(run_experiment(spec));
  spec.base_seed = 8;
  const std::string b = to_json(run_experiment(spec));
  EXPECT_NE(a, b);
}

TEST(Runner, BackendSweepRunsBothStores) {
  ExperimentSpec spec;
  spec.scenario = "store_ops";
  spec.grids = {{1, 1}};
  spec.loss_rates = {0.0};
  spec.stores = {ts::StoreKind::kLinear, ts::StoreKind::kIndexed};
  spec.axes = {{"fillers", {40}}};
  spec.trials = 1;
  const ExperimentResult result = run_experiment(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].cell.store, ts::StoreKind::kLinear);
  EXPECT_EQ(result.cells[1].cell.store, ts::StoreKind::kIndexed);
  // Both backends produced the metrics, and the arity index touches
  // strictly fewer bytes than the linear scan on a 40-filler probe.
  const double linear_bytes =
      result.cells[0].metrics.at("rdp_bytes").summary.mean();
  const double indexed_bytes =
      result.cells[1].metrics.at("rdp_bytes").summary.mean();
  EXPECT_GT(linear_bytes, 0.0);
  EXPECT_GT(indexed_bytes, 0.0);
  EXPECT_LT(indexed_bytes, linear_bytes);
}

TEST(Runner, UnknownScenarioThrows) {
  ExperimentSpec spec;
  spec.scenario = "no_such_scenario";
  EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
}

TEST(Experiment, CellExpansionOrderAndCount) {
  ExperimentSpec spec;
  spec.scenario = "smove";
  spec.grids = {{4, 4}, {8, 8}};
  spec.loss_rates = {0.0, 0.1};
  spec.stores = {ts::StoreKind::kLinear, ts::StoreKind::kIndexed};
  spec.axes = {{"hops", {1, 2, 3}}};
  const std::vector<CellSpec> cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 3u);
  // Grid is the outermost dimension, the axis the innermost.
  EXPECT_EQ(cells.front().grid, (GridSize{4, 4}));
  EXPECT_EQ(cells.back().grid, (GridSize{8, 8}));
  EXPECT_DOUBLE_EQ(cells[0].axis_values[0].second, 1.0);
  EXPECT_DOUBLE_EQ(cells[1].axis_values[0].second, 2.0);
  EXPECT_DOUBLE_EQ(cells[2].axis_values[0].second, 3.0);
  EXPECT_EQ(cells[0].store, cells[2].store);
  EXPECT_NE(cells[0].store, cells[3].store);
}

TEST(Experiment, TrialSeedsAreUniqueAndThreadIndependent) {
  ExperimentSpec spec;
  spec.scenario = "smove";
  spec.grids = {{4, 4}};
  spec.loss_rates = {0.0, 0.1};
  spec.stores = {ts::StoreKind::kLinear};
  spec.trials = 25;
  const std::vector<TrialSpec> trials = expand_trials(spec);
  ASSERT_EQ(trials.size(), 50u);
  std::set<std::uint64_t> seeds;
  for (const TrialSpec& t : trials) {
    seeds.insert(t.seed);
    // Seeds are derived from (base, cell, trial) alone.
    EXPECT_EQ(t.seed, derive_trial_seed(spec.base_seed, t.cell,
                                        static_cast<std::uint64_t>(t.trial)));
  }
  EXPECT_EQ(seeds.size(), trials.size());
}

TEST(Experiment, AxisValuesReachTrialParams) {
  ExperimentSpec spec;
  spec.scenario = "smove";
  spec.params["timeout_s"] = 3.0;
  spec.axes = {{"hops", {2, 4}}};
  spec.trials = 1;
  const std::vector<TrialSpec> trials = expand_trials(spec);
  ASSERT_EQ(trials.size(), 2u);
  EXPECT_DOUBLE_EQ(trials[0].param("hops", -1), 2.0);
  EXPECT_DOUBLE_EQ(trials[1].param("hops", -1), 4.0);
  EXPECT_DOUBLE_EQ(trials[0].param("timeout_s", -1), 3.0);
  EXPECT_DOUBLE_EQ(trials[0].param("absent", -1), -1.0);
}

TEST(Experiment, ParseGrid) {
  EXPECT_EQ(parse_grid("16x16"), (GridSize{16, 16}));
  EXPECT_EQ(parse_grid("8x4"), (GridSize{8, 4}));
  EXPECT_EQ(parse_grid("9"), (GridSize{9, 9}));
  EXPECT_EQ(parse_grid("0x4"), std::nullopt);
  EXPECT_EQ(parse_grid("axb"), std::nullopt);
  EXPECT_EQ(parse_grid(""), std::nullopt);
}

TEST(JsonWriter, FormatsDeterministically) {
  JsonWriter json(0);
  json.begin_object();
  json.key("name").value("a \"b\"\n");
  json.key("n").value(8.0);
  json.key("frac").value(0.9798660253208655);
  json.key("list").begin_array().value(1).value(true).end_array();
  json.key("empty").begin_object().end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"a \\\"b\\\"\\n\",\"n\":8,"
            "\"frac\":0.9798660253208655,\"list\":[1,true],\"empty\":{}}");
}

TEST(JsonWriter, NonFiniteDoublesStayValidJson) {
  EXPECT_EQ(JsonWriter::format_double(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(JsonWriter::format_double(
                std::numeric_limits<double>::infinity()),
            "1e308");
}

TEST(Mesh, BuildsArbitraryGridWithSelectedStore) {
  TrialSpec trial;
  trial.grid = {3, 2};
  trial.packet_loss = 0.0;
  trial.store = ts::StoreKind::kIndexed;
  trial.seed = 5;
  Mesh mesh(trial);
  EXPECT_EQ(mesh.mote_count(), 6u);
  // The store seam propagated to every mote's tuple space.
  EXPECT_EQ(mesh.mote(0).config().tuple_space.store_kind,
            ts::StoreKind::kIndexed);
  // Neighbour discovery warmed up: the corner mote heard someone.
  EXPECT_GT(mesh.mote(0).neighbors().size(), 0u);
}

}  // namespace
}  // namespace agilla::harness

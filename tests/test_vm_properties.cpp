// Property sweep over the VM's arithmetic/stack core: random expression
// programs are generated, assembled, run on the engine, and checked
// against a host-side reference interpreter.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "agilla_test_helpers.h"
#include "core/assembler.h"
#include "sim/rng.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

struct Op {
  enum Kind { kPush, kAdd, kSub, kMul, kAnd, kOr, kInc, kDec, kSwapK, kCopyK }
      kind = kPush;
  std::int16_t operand = 0;
};

/// Host-side reference semantics (mirrors engine.cpp's definitions).
std::vector<std::int16_t> reference_eval(const std::vector<Op>& ops) {
  std::vector<std::int16_t> stack;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush:
        stack.push_back(op.operand);
        break;
      case Op::kInc:
        stack.back() = static_cast<std::int16_t>(stack.back() + 1);
        break;
      case Op::kDec:
        stack.back() = static_cast<std::int16_t>(stack.back() - 1);
        break;
      case Op::kCopyK:
        stack.push_back(stack.back());
        break;
      case Op::kSwapK:
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        break;
      default: {
        const std::int16_t a = stack.back();  // top
        stack.pop_back();
        const std::int16_t b = stack.back();  // second
        stack.pop_back();
        std::int16_t r = 0;
        switch (op.kind) {
          case Op::kAdd:
            r = static_cast<std::int16_t>(b + a);
            break;
          case Op::kSub:
            r = static_cast<std::int16_t>(b - a);
            break;
          case Op::kMul:
            r = static_cast<std::int16_t>(b * a);
            break;
          case Op::kAnd:
            r = static_cast<std::int16_t>(b & a);
            break;
          case Op::kOr:
            r = static_cast<std::int16_t>(b | a);
            break;
          default:
            break;
        }
        stack.push_back(r);
        break;
      }
    }
  }
  return stack;
}

std::string to_assembly(const std::vector<Op>& ops) {
  std::ostringstream os;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush:
        os << "pushcl " << op.operand << "\n";
        break;
      case Op::kAdd:
        os << "add\n";
        break;
      case Op::kSub:
        os << "sub\n";
        break;
      case Op::kMul:
        os << "mul\n";
        break;
      case Op::kAnd:
        os << "and\n";
        break;
      case Op::kOr:
        os << "or\n";
        break;
      case Op::kInc:
        os << "inc\n";
        break;
      case Op::kDec:
        os << "dec\n";
        break;
      case Op::kSwapK:
        os << "swap\n";
        break;
      case Op::kCopyK:
        os << "copy\n";
        break;
    }
  }
  return os.str();
}

/// Generates a program that always keeps 1..6 values on the stack and ends
/// with exactly one (folds everything with add).
std::vector<Op> random_program(sim::Rng& rng) {
  std::vector<Op> ops;
  std::size_t depth = 0;
  const std::size_t steps = 4 + rng.uniform(24);
  for (std::size_t i = 0; i < steps; ++i) {
    if (depth == 0 || (depth < 6 && rng.chance(0.5))) {
      ops.push_back(
          {Op::kPush, static_cast<std::int16_t>(rng.uniform_int(-99, 99))});
      ++depth;
    } else if (depth >= 2 && rng.chance(0.5)) {
      const Op::Kind binops[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kAnd,
                                 Op::kOr};
      ops.push_back({binops[rng.uniform(5)], 0});
      --depth;
    } else if (depth >= 2 && rng.chance(0.3)) {
      ops.push_back({Op::kSwapK, 0});
    } else if (depth < 6 && rng.chance(0.4)) {
      ops.push_back({Op::kCopyK, 0});
      ++depth;
    } else {
      ops.push_back({rng.chance(0.5) ? Op::kInc : Op::kDec, 0});
    }
  }
  while (depth > 1) {
    ops.push_back({Op::kAdd, 0});
    --depth;
  }
  return ops;
}

class VmArithmeticSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmArithmeticSweep, MatchesReferenceInterpreter) {
  sim::Rng rng(GetParam());
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  for (int round = 0; round < 30; ++round) {
    const std::vector<Op> program = random_program(rng);
    const auto expected = reference_eval(program);
    ASSERT_EQ(expected.size(), 1u);

    const std::string source =
        to_assembly(program) + "pushc 1\nout\nhalt\n";
    ASSERT_TRUE(mesh.at(0).inject(assemble_or_die(source)).has_value());
    mesh.sim.run_for(3 * sim::kSecond);

    const auto result = mesh.at(0).tuple_space().inp(
        ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
    ASSERT_TRUE(result.has_value()) << "round " << round << "\n" << source;
    EXPECT_EQ(result->field(0).as_number(), expected[0])
        << "round " << round << "\n" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmArithmeticSweep,
                         ::testing::Values(5, 55, 555, 5555));

class HeapRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapRoundTripSweep, GetvarReturnsWhatSetvarStored) {
  sim::Rng rng(GetParam());
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  for (int round = 0; round < 10; ++round) {
    // Store random values into random slots, then read one back.
    std::array<std::int16_t, kHeapSlots> shadow{};
    std::array<bool, kHeapSlots> written{};
    std::ostringstream source;
    const int writes = 1 + static_cast<int>(rng.uniform(20));
    for (int i = 0; i < writes; ++i) {
      const auto slot = rng.uniform(kHeapSlots);
      const auto value = static_cast<std::int16_t>(rng.uniform_int(0, 255));
      shadow[slot] = value;
      written[slot] = true;
      source << "pushc " << value << "\nsetvar " << slot << "\n";
    }
    std::size_t probe = rng.uniform(kHeapSlots);
    while (!written[probe]) {
      probe = (probe + 1) % kHeapSlots;
    }
    source << "getvar " << probe << "\npushc 1\nout\nhalt\n";
    ASSERT_TRUE(
        mesh.at(0).inject(assemble_or_die(source.str())).has_value());
    mesh.sim.run_for(3 * sim::kSecond);
    const auto result = mesh.at(0).tuple_space().inp(
        ts::Template{ts::Value::type_wildcard(ts::ValueType::kNumber)});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->field(0).as_number(), shadow[probe])
        << source.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapRoundTripSweep,
                         ::testing::Values(9, 99));

}  // namespace
}  // namespace agilla::core

// The RAM ledger behind the paper's "3.59 KB of data memory" claim.
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"

namespace agilla::core {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

TEST(MemoryBudget, LedgerArithmetic) {
  MemoryBudget budget;
  budget.add("a", 100);
  budget.add("b", 250);
  EXPECT_EQ(budget.total_bytes(), 350u);
  EXPECT_EQ(budget.items().size(), 2u);
}

TEST(MemoryBudget, TableMentionsEveryItem) {
  MemoryBudget budget;
  budget.add("tuple space store", 600);
  budget.add("code pool", 440);
  const std::string table = budget.to_table();
  EXPECT_NE(table.find("tuple space store"), std::string::npos);
  EXPECT_NE(table.find("600"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(MemoryBudget, DefaultNodeFitsMica2Ram) {
  // The whole point of the paper's accounting: Agilla fits in 4 KB with
  // room to spare (they report 3.59 KB).
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const MemoryBudget budget = mesh.at(0).memory_budget();
  EXPECT_LE(budget.total_bytes(), MemoryBudget::kMica2RamBytes);
  EXPECT_GE(budget.total_bytes(), 2800u);  // same ballpark as 3.59 KB
  EXPECT_LE(budget.total_bytes(), 3900u);
}

TEST(MemoryBudget, CoreLineItemsPresent) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const MemoryBudget budget = mesh.at(0).memory_budget();
  const std::string table = budget.to_table();
  EXPECT_NE(table.find("tuple space store"), std::string::npos);
  EXPECT_NE(table.find("reaction registry"), std::string::npos);
  EXPECT_NE(table.find("instruction manager"), std::string::npos);
  EXPECT_NE(table.find("agent contexts"), std::string::npos);
  EXPECT_NE(table.find("acquaintance list"), std::string::npos);
}

TEST(MemoryBudget, ScalesWithConfig) {
  AgillaConfig small;
  small.tuple_space.store_capacity_bytes = 100;
  small.code_pool_blocks = 5;
  small.agents.max_agents = 1;
  AgillaMesh small_mesh(
      MeshOptions{.width = 1, .height = 1, .config = small});
  AgillaMesh default_mesh(MeshOptions{.width = 1, .height = 1});
  EXPECT_LT(small_mesh.at(0).memory_budget().total_bytes(),
            default_mesh.at(0).memory_budget().total_bytes());
}

TEST(MemoryBudget, PaperDefaultsAppearVerbatim) {
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  const MemoryBudget budget = mesh.at(0).memory_budget();
  bool store600 = false;
  bool registry400 = false;
  bool code440 = false;
  for (const auto& item : budget.items()) {
    store600 |= item.label.find("tuple space") != std::string::npos &&
                item.bytes == 600;
    registry400 |= item.label.find("reaction") != std::string::npos &&
                   item.bytes == 400;
    code440 |= item.label.find("instruction manager") != std::string::npos &&
               item.bytes == 440;
  }
  EXPECT_TRUE(store600);
  EXPECT_TRUE(registry400);
  EXPECT_TRUE(code440);
}

}  // namespace
}  // namespace agilla::core

#include "tuplespace/value.h"

#include <gtest/gtest.h>

namespace agilla::ts {
namespace {

TEST(PackString, RoundTripsThreeLetters) {
  EXPECT_EQ(unpack_string(pack_string("fir")), "fir");
  EXPECT_EQ(unpack_string(pack_string("abc")), "abc");
  EXPECT_EQ(unpack_string(pack_string("zzz")), "zzz");
}

TEST(PackString, ShorterStringsKeepLength) {
  EXPECT_EQ(unpack_string(pack_string("a")), "a");
  EXPECT_EQ(unpack_string(pack_string("ab")), "ab");
  EXPECT_EQ(unpack_string(pack_string("")), "");
}

TEST(PackString, CaseInsensitiveAndTruncates) {
  EXPECT_EQ(pack_string("FIR"), pack_string("fir"));
  EXPECT_EQ(pack_string("fire"), pack_string("fir"));
}

TEST(Value, DefaultIsInvalid) {
  Value v;
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.type(), ValueType::kInvalid);
  EXPECT_FALSE(v.concrete());
}

TEST(Value, NumberBasics) {
  const Value v = Value::number(-321);
  EXPECT_TRUE(v.valid());
  EXPECT_TRUE(v.concrete());
  EXPECT_EQ(v.as_number(), -321);
  EXPECT_EQ(v.to_string(), "-321");
}

TEST(Value, StringBasics) {
  const Value v = Value::string("fir");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.as_packed_string(), pack_string("fir"));
  EXPECT_EQ(v.to_string(), "\"fir\"");
}

TEST(Value, LocationRoundTrip) {
  const Value v = Value::location({3.5, 4.0});
  EXPECT_EQ(v.type(), ValueType::kLocation);
  EXPECT_DOUBLE_EQ(v.as_location().x, 3.5);
  EXPECT_DOUBLE_EQ(v.as_location().y, 4.0);
}

TEST(Value, ReadingCarriesSensorAndValue) {
  const Value v = Value::reading(sim::SensorType::kTemperature, 212);
  EXPECT_EQ(v.sensor(), sim::SensorType::kTemperature);
  EXPECT_EQ(v.as_number(), 212);
}

TEST(Value, AgentIdNumericView) {
  const Value v = Value::agent_id(0x0102);
  EXPECT_EQ(v.as_agent_id(), 0x0102);
}

TEST(Value, EqualityIsExact) {
  EXPECT_EQ(Value::number(5), Value::number(5));
  EXPECT_NE(Value::number(5), Value::number(6));
  EXPECT_NE(Value::number(5), Value::agent_id(5));
  EXPECT_EQ(Value::location({1, 2}), Value::location({1, 2}));
}

TEST(Matching, TypeWildcardMatchesByType) {
  const Value wild = Value::type_wildcard(ValueType::kLocation);
  EXPECT_TRUE(wild.matches(Value::location({1, 1})));
  EXPECT_FALSE(wild.matches(Value::number(1)));
  EXPECT_FALSE(wild.matches(Value::string("loc")));
}

TEST(Matching, ConcreteFieldsMatchByEquality) {
  EXPECT_TRUE(Value::string("fir").matches(Value::string("fir")));
  EXPECT_FALSE(Value::string("fir").matches(Value::string("ice")));
  EXPECT_TRUE(Value::number(7).matches(Value::number(7)));
}

TEST(Matching, ReadingTypeMatchesReadingsOfThatSensor) {
  const Value templ = Value::reading_type(sim::SensorType::kTemperature);
  EXPECT_TRUE(
      templ.matches(Value::reading(sim::SensorType::kTemperature, 99)));
  EXPECT_FALSE(templ.matches(Value::reading(sim::SensorType::kPhoto, 99)));
  EXPECT_TRUE(
      templ.matches(Value::reading_type(sim::SensorType::kTemperature)));
}

TEST(Matching, WildcardForReadingsMatchesAnySensor) {
  const Value wild = Value::type_wildcard(ValueType::kReading);
  EXPECT_TRUE(wild.matches(Value::reading(sim::SensorType::kPhoto, 1)));
  EXPECT_TRUE(
      wild.matches(Value::reading(sim::SensorType::kTemperature, 2)));
}

TEST(CompactWire, RoundTripsEveryType) {
  const Value values[] = {
      Value::number(-5),
      Value::string("abc"),
      Value::type_wildcard(ValueType::kString),
      Value::reading(sim::SensorType::kMicrophone, 321),
      Value::location({2.5, -1.0}),
      Value::agent_id(777),
      Value::reading_type(sim::SensorType::kPhoto),
  };
  for (const Value& v : values) {
    net::Writer w;
    v.encode_compact(w);
    EXPECT_EQ(w.size(), v.compact_size()) << v.to_string();
    net::Reader r(w.data());
    EXPECT_EQ(Value::decode_compact(r), v) << v.to_string();
    EXPECT_TRUE(r.ok());
  }
}

TEST(CompactWire, SizesMatchSpec) {
  EXPECT_EQ(Value::number(1).compact_size(), 3u);
  EXPECT_EQ(Value::string("a").compact_size(), 3u);
  EXPECT_EQ(Value::location({0, 0}).compact_size(), 5u);
  EXPECT_EQ(Value::reading(sim::SensorType::kPhoto, 0).compact_size(), 4u);
  EXPECT_EQ(Value::type_wildcard(ValueType::kNumber).compact_size(), 2u);
  EXPECT_EQ(
      Value::reading_type(sim::SensorType::kTemperature).compact_size(), 2u);
}

TEST(PaddedWire, AlwaysSixBytes) {
  const Value values[] = {
      Value::number(-5),
      Value::location({2.5, -1.0}),
      Value::reading(sim::SensorType::kMicrophone, 321),
      Value{},
  };
  for (const Value& v : values) {
    net::Writer w;
    v.encode_padded(w);
    EXPECT_EQ(w.size(), Value::kPaddedWireSize);
    net::Reader r(w.data());
    EXPECT_EQ(Value::decode_padded(r), v);
  }
}

TEST(Value, InvalidNumericViewIsZero) {
  EXPECT_EQ(Value{}.as_number(), 0);
  EXPECT_EQ(Value::location({5, 5}).as_number(), 0);
}

}  // namespace
}  // namespace agilla::ts

// Fuzz-style robustness sweeps: random bytes into every wire parser and
// random bytecode into the VM. Nothing may crash; malformed input must be
// rejected or contained (a dying agent frees everything it held).
#include <gtest/gtest.h>

#include "agilla_test_helpers.h"
#include "core/agent_serializer.h"
#include "core/assembler.h"
#include "mate/capsule.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "tuplespace/tuple_match.h"

namespace agilla {
namespace {

using agilla::testing::AgillaMesh;
using agilla::testing::MeshOptions;

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform(max_len + 1));
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, TupleAndTemplateDecodeNeverCrash) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 48);
    net::Reader r1(bytes);
    const auto tuple = ts::Tuple::decode(r1);
    if (tuple.has_value()) {
      // Whatever decoded must re-encode without tripping size invariants.
      EXPECT_LE(tuple->arity(), 48u);
    }
    net::Reader r2(bytes);
    const auto templ = ts::Template::decode(r2);
    if (templ.has_value() && tuple.has_value()) {
      (void)templ->matches(*tuple);  // must not crash
    }
  }
}

TEST_P(ParserFuzz, HeadersNeverCrash) {
  sim::Rng rng(GetParam() + 1);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 32);
    {
      net::Reader r(bytes);
      net::GeoHeader::read(r);
    }
    {
      net::Reader r(bytes);
      net::LinkHeader::read(r);
    }
    {
      net::Reader r(bytes);
      mate::Capsule::read(r);
    }
    {
      net::Reader r(bytes);
      ts::Value::decode_compact(r);
      ts::Value::decode_padded(r);
    }
  }
}

TEST_P(ParserFuzz, ImageAssemblerRejectsGarbage) {
  sim::Rng rng(GetParam() + 2);
  const sim::AmType kinds[] = {
      sim::AmType::kAgentState, sim::AmType::kAgentCode,
      sim::AmType::kAgentStack, sim::AmType::kAgentHeap,
      sim::AmType::kAgentReaction};
  for (int round = 0; round < 200; ++round) {
    core::ImageAssembler assembler;
    for (int msg = 0; msg < 10; ++msg) {
      const auto bytes = random_bytes(rng, 40);
      assembler.feed(kinds[rng.uniform(5)], bytes);  // must not crash
      if (assembler.complete()) {
        // Vanishingly unlikely but legal: the image must be well-formed.
        const core::AgentImage image = assembler.take();
        EXPECT_FALSE(image.code.empty());
        break;
      }
    }
  }
}

TEST_P(ParserFuzz, AssemblerSurvivesRandomText) {
  sim::Rng rng(GetParam() + 3);
  const char charset[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \n\t:,#/-.\"";
  for (int i = 0; i < 300; ++i) {
    std::string source;
    const std::size_t len = rng.uniform(200);
    for (std::size_t c = 0; c < len; ++c) {
      source.push_back(charset[rng.uniform(sizeof(charset) - 1)]);
    }
    const core::AssemblyResult result = core::assemble(source);
    if (result.ok()) {
      // If it assembled, it must disassemble without crashing.
      core::disassemble(result.code);
    }
  }
}

TEST_P(ParserFuzz, VmContainsRandomBytecode) {
  sim::Rng rng(GetParam() + 4);
  AgillaMesh mesh(MeshOptions{.width = 1, .height = 1});
  for (int round = 0; round < 60; ++round) {
    auto code = random_bytes(rng, 64);
    if (code.empty()) {
      code.push_back(0x00);
    }
    mesh.at(0).inject(code);
    mesh.sim.run_for(5 * sim::kSecond);
    // Whatever the agent did, it must be gone (halt, vm error, or a
    // migration attempt that failed and ran to exhaustion) or asleep on a
    // legitimate sleep — and resources must balance.
    if (mesh.at(0).agents().count() == 0) {
      ASSERT_EQ(mesh.at(0).code_pool().used_blocks(), 0u)
          << "round " << round;
    }
    // Clean the slate for the next round.
    mesh.sim.run_for(60 * sim::kSecond);
    for (const auto& agent : mesh.at(0).agents().agents()) {
      // Long sleepers are acceptable; nothing else should linger. 16-bit
      // tick sleeps cap at ~2.3 hours, so just drop them explicitly.
      EXPECT_TRUE(agent->run_state() == core::AgentRunState::kSleeping ||
                  agent->run_state() == core::AgentRunState::kBlockedTs ||
                  agent->run_state() == core::AgentRunState::kWaitingRxn ||
                  agent->run_state() == core::AgentRunState::kBlockedOp);
    }
  }
}

TEST_P(ParserFuzz, TupleRefMatchingAgreesWithEagerDecodeAndMatch) {
  // The tuple_match.h equivalence contract over an adversarial corpus:
  // random bytes, truncations of valid encodings, and single-byte
  // mutations of valid encodings. For every (bytes, template) pair the
  // zero-copy wire match must equal eager decode-then-match, and (under
  // ASan) must never read outside the span.
  sim::Rng rng(GetParam() + 5);

  auto random_concrete = [&rng]() -> ts::Value {
    switch (rng.uniform(5)) {
      case 0:
        return ts::Value::number(static_cast<std::int16_t>(rng.uniform(8)));
      case 1:
        return ts::Value::string(std::string(1, 'a' + rng.uniform(3)));
      case 2:
        return ts::Value::location({static_cast<double>(rng.uniform(3)),
                                    static_cast<double>(rng.uniform(3))});
      case 3:
        return ts::Value::reading(sim::SensorType::kPhoto,
                                  static_cast<std::int16_t>(rng.uniform(4)));
      default:
        return ts::Value::agent_id(
            static_cast<std::uint16_t>(rng.uniform(4)));
    }
  };

  // A pool of templates compiled once, fuzzed bytes matched against all.
  std::vector<ts::Template> templates;
  for (int i = 0; i < 24; ++i) {
    ts::Template t;
    const std::size_t arity = rng.uniform(4);  // includes the empty template
    for (std::size_t f = 0; f < arity; ++f) {
      switch (rng.uniform(4)) {
        case 0:
          t.add(ts::Value::type_wildcard(random_concrete().type()));
          break;
        case 1:
          t.add(ts::Value::reading_type(sim::SensorType::kPhoto));
          break;
        default:
          t.add(random_concrete());
          break;
      }
    }
    templates.push_back(t);
  }
  std::vector<ts::CompiledTemplate> compiled(templates.begin(),
                                             templates.end());

  auto check_all = [&](const std::vector<std::uint8_t>& bytes) {
    // Exact-sized heap span: ASan catches any out-of-bounds read.
    const ts::TupleRef ref{std::span<const std::uint8_t>(bytes)};
    net::Reader r(bytes);
    const auto eager = ts::Tuple::decode(r);
    ASSERT_EQ(ref.encoded_size().has_value(), eager.has_value());
    ASSERT_EQ(ref.materialize(), eager);
    for (std::size_t i = 0; i < templates.size(); ++i) {
      const bool expected =
          eager.has_value() && templates[i].matches(*eager);
      ASSERT_EQ(compiled[i].matches(ref), expected)
          << templates[i].to_string() << " over "
          << (eager ? eager->to_string() : "<malformed>");
    }
  };

  for (int round = 0; round < 400; ++round) {
    check_all(random_bytes(rng, 32));

    ts::Tuple valid;
    const std::size_t arity = 1 + rng.uniform(3);
    for (std::size_t f = 0; f < arity; ++f) {
      valid.add(random_concrete());
    }
    net::Writer w;
    valid.encode(w);
    const std::vector<std::uint8_t> encoded = w.take();
    check_all(encoded);  // the untouched encoding must agree too

    std::vector<std::uint8_t> truncated(
        encoded.begin(),
        encoded.begin() + static_cast<std::ptrdiff_t>(
                              rng.uniform(encoded.size())));
    check_all(truncated);

    std::vector<std::uint8_t> mutated = encoded;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    check_all(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(101, 202, 303));

TEST(FuzzRegression, AllOnesStateMessage) {
  core::ImageAssembler assembler;
  const std::vector<std::uint8_t> ones(core::kStateMessageBytes, 0xFF);
  EXPECT_FALSE(assembler.feed(sim::AmType::kAgentState, ones));
  EXPECT_FALSE(assembler.complete());
}

TEST(FuzzRegression, EmptyPayloads) {
  core::ImageAssembler assembler;
  EXPECT_FALSE(assembler.feed(sim::AmType::kAgentState, {}));
  net::Reader r(std::span<const std::uint8_t>{});
  EXPECT_FALSE(ts::Tuple::decode(r).has_value());
}

}  // namespace
}  // namespace agilla

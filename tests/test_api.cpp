// The embedding API's contracts: the KnobRegistry is the single source
// of truth (defaults match DeploymentOptions, every knob is settable,
// readable, and listed; ranges reject bad values), SimulationBuilder
// composes working deployments, the EventBus observes every advertised
// event kind with deterministic dispatch order, and observer-derived
// metrics survive the harness determinism gate (threads 1 vs 8
// byte-identical JSON).
#include "api/agilla.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/json_writer.h"
#include "harness/mesh.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace agilla::api {
namespace {

/// An in-range probe value distinct from the knob's default.
double probe_value(const KnobInfo& knob) {
  switch (knob.type) {
    case KnobType::kBool:
      return knob.def == 0.0 ? 1.0 : 0.0;
    case KnobType::kInt: {
      double candidate = knob.min == knob.def ? knob.min + 1 : knob.min;
      if (candidate > knob.max) {
        candidate = knob.max;
      }
      return candidate;
    }
    case KnobType::kDouble:
      break;
  }
  if (std::isinf(knob.max)) {
    return knob.min + 1.5;
  }
  const double candidate = (knob.min + knob.max) / 2.0;
  return candidate == knob.def ? (candidate + knob.max) / 2.0 : candidate;
}

TEST(KnobRegistry, DefaultsMatchDeploymentOptionsInitializers) {
  const DeploymentOptions defaults;
  for (const KnobInfo& knob : knob_registry()) {
    if (knob.read == nullptr) {
      continue;  // scenario-read knob; its default lives in the scenario
    }
    EXPECT_EQ(knob.read(defaults), knob.def)
        << knob.name << " field initializer disagrees with the registry";
  }
}

TEST(KnobRegistry, EveryKnobSettableReadableListed) {
  for (const KnobInfo& knob : knob_registry()) {
    const double value = probe_value(knob);
    ASSERT_TRUE(validate_knob(knob, value).empty())
        << knob.name << ": probe value " << value << " not in "
        << range_to_string(knob);
    SimulationBuilder builder;
    builder.set(knob.name, value);
    EXPECT_EQ(builder.knob(knob.name), value) << knob.name;
    // Listed: findable by name, with printable metadata.
    const KnobInfo* found = find_knob(knob.name);
    ASSERT_NE(found, nullptr);
    EXPECT_FALSE(range_to_string(*found).empty());
    EXPECT_FALSE(default_to_string(*found).empty());
    EXPECT_NE(found->doc[0], '\0') << knob.name << " has no doc string";
    EXPECT_NE(found->unit[0], '\0') << knob.name << " has no unit";
  }
}

TEST(KnobRegistry, SharedKnobsReachDeploymentOptions) {
  // Every shared knob must map onto DeploymentOptions — a shared knob
  // nothing applies would silently do nothing in every scenario.
  for (const KnobInfo& knob : knob_registry()) {
    if (knob.shared()) {
      EXPECT_NE(knob.apply, nullptr) << knob.name;
      EXPECT_NE(knob.read, nullptr) << knob.name;
    } else {
      EXPECT_EQ(knob.apply, nullptr)
          << knob.name << ": scenario-read knobs must not alias options";
    }
  }
}

TEST(KnobRegistry, RangeValidation) {
  EXPECT_TRUE(validate_knob("duty_cycle", 0.2).empty());
  EXPECT_TRUE(validate_knob("duty_cycle", 1.0).empty());
  // Open lower bound: 0 is out.
  EXPECT_FALSE(validate_knob("duty_cycle", 0.0).empty());
  EXPECT_FALSE(validate_knob("duty_cycle", 1.5).empty());
  // Int knobs reject fractional values, bools anything but 0/1.
  EXPECT_FALSE(validate_knob("route_policy", 0.5).empty());
  EXPECT_FALSE(validate_knob("route_policy", 2.0).empty());
  EXPECT_TRUE(validate_knob("beacon_suppression", -1.0).empty());
  EXPECT_FALSE(validate_knob("beacon_suppression", -2.0).empty());
  EXPECT_FALSE(validate_knob("adaptive_lpl", 0.5).empty());
  EXPECT_FALSE(validate_knob("gateway_powered", 2.0).empty());
  // The error names the range and the unit (the CLI relays it verbatim).
  const std::string error = validate_knob("duty_cycle", 0.0);
  EXPECT_NE(error.find("(0, 1]"), std::string::npos) << error;
  EXPECT_NE(error.find("fraction"), std::string::npos) << error;
  EXPECT_FALSE(validate_knob("no_such_knob", 1.0).empty());
}

TEST(KnobRegistry, BuilderRejectsBadKnobs) {
  SimulationBuilder builder;
  EXPECT_THROW(builder.set("no_such_knob", 1.0), std::invalid_argument);
  EXPECT_THROW(builder.set("duty_cycle", 2.0), std::invalid_argument);
  EXPECT_THROW(builder.knob("no_such_knob"), std::invalid_argument);
}

TEST(KnobRegistry, ScenarioKnobListsDeriveFromRegistry) {
  const harness::ScenarioInfo* fire =
      harness::find_scenario("fire_tracking");
  ASSERT_NE(fire, nullptr);
  EXPECT_EQ(fire->knobs, scenario_knob_names("fire_tracking"));
  const auto has = [&](const char* name) {
    return std::find(fire->knobs.begin(), fire->knobs.end(), name) !=
           fire->knobs.end();
  };
  EXPECT_TRUE(has("spread_speed"));
  EXPECT_TRUE(has("gateway_powered"));
  EXPECT_TRUE(has("overhearing"));
  EXPECT_FALSE(has("hops"));
  // store_ops runs no radio: only its own knob.
  const harness::ScenarioInfo* store = harness::find_scenario("store_ops");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->knobs, std::vector<std::string>{"fillers"});
}

TEST(KnobRegistry, ApplyKnobsMatchesBuilderSet) {
  const std::map<std::string, double> params = {
      {"battery_mj", 1500.0}, {"duty_cycle", 0.25},
      {"route_policy", 1.0},  {"gateway_powered", 0.0},
      {"overhearing", 1.0},   {"spread_speed", 0.5}};
  DeploymentOptions via_apply;
  apply_knobs(via_apply, params);
  SimulationBuilder builder;
  for (const auto& [name, value] : params) {
    builder.set(name, value);
  }
  for (const KnobInfo& knob : knob_registry()) {
    if (knob.read != nullptr) {
      EXPECT_EQ(knob.read(via_apply), knob.read(builder.options()))
          << knob.name;
    }
  }
  // The scenario-read knob landed in the builder's param map instead.
  EXPECT_EQ(builder.params().at("spread_speed"), 0.5);
}

// ---------------------------------------------------------- event bus

TEST(EventBus, ObservesAgentTupleFrameAndMigrationEvents) {
  EventCounter counter;
  auto net = SimulationBuilder()
                 .grid(2, 1)
                 .seed(5)
                 .packet_loss(0.0)
                 .observe(counter)
                 .build();
  EXPECT_GT(counter.beacons, 0u) << "warm-up beacons reach observers";
  EXPECT_GT(counter.frames_tx, 0u);
  EXPECT_GT(counter.frames_rx, 0u);
  EXPECT_GT(counter.tuple_ops, 0u) << "context seeding is observable";

  const std::uint64_t spawns_before = counter.agent_spawns;
  net->mote(0).inject(core::assemble_or_die(
      "pushloc 2 1\nsmove\nhalt\n"));
  net->run_for(5 * sim::kSecond);
  // Injection spawn + arrival install on the far node.
  EXPECT_GE(counter.agent_spawns, spawns_before + 2);
  EXPECT_EQ(counter.agent_migrations, 1u);
  // Departure ("migrated") + the arrival's eventual halt.
  EXPECT_EQ(counter.agent_kills, 2u);
  EXPECT_EQ(net->agent_count(), 0u);
}

TEST(EventBus, ObservesAgentBlockAndResume) {
  struct BlockLog : Observer {
    std::vector<std::string> reasons;
    std::uint64_t resumes = 0;
    void on_agent_block(const AgentBlockEvent& event) override {
      reasons.emplace_back(event.reason);
    }
    void on_agent_resume(const AgentResumeEvent&) override { ++resumes; }
  };
  BlockLog log;
  auto net = SimulationBuilder()
                 .grid(1, 1)
                 .seed(5)
                 .packet_loss(0.0)
                 .observe(log)
                 .build();
  log.reasons.clear();
  log.resumes = 0;

  // sleep blocks and the timer resumes; the blocking in blocks until the
  // second agent's out resumes it.
  net->mote(0).inject(core::assemble_or_die(
      "pushc 2\nsleep\npusht NUMBER\npushc 1\nin\nhalt\n"));
  net->run_for(2 * sim::kSecond);
  ASSERT_EQ(log.reasons, (std::vector<std::string>{"sleep", "tuple"}));
  EXPECT_EQ(log.resumes, 1u) << "sleep timer fired; in still parked";

  net->mote(0).inject(core::assemble_or_die(
      "pushc 9\npushc 1\nout\nhalt\n"));
  net->run_for(2 * sim::kSecond);
  EXPECT_EQ(log.resumes, 2u) << "matching out resumed the blocked in";
  EXPECT_EQ(net->agent_count(), 0u);
}

TEST(EventBus, DispatchFollowsSubscriptionOrder) {
  struct Tagger : Observer {
    std::vector<int>* log;
    int tag;
    Tagger(std::vector<int>* l, int t) : log(l), tag(t) {}
    void on_frame_tx(const FrameEvent&) override { log->push_back(tag); }
  };
  std::vector<int> log;
  Tagger first(&log, 1);
  Tagger second(&log, 2);
  auto net = SimulationBuilder()
                 .grid(2, 1)
                 .seed(5)
                 .observe(first)
                 .observe(second)
                 .build();
  ASSERT_GE(log.size(), 4u);
  for (std::size_t i = 0; i + 1 < log.size(); i += 2) {
    EXPECT_EQ(log[i], 1);
    EXPECT_EQ(log[i + 1], 2);
  }
  // Late subscription works too, and unsubscribe stops delivery.
  net->bus().unsubscribe(first);
  const std::size_t frozen = log.size();
  net->run_for(2 * sim::kSecond);
  EXPECT_GT(log.size(), frozen);
  EXPECT_TRUE(std::all_of(log.begin() + static_cast<long>(frozen),
                          log.end(), [](int t) { return t == 2; }));
}

TEST(EventBus, UnsubscribeFromInsideACallbackIsSafe) {
  struct StopAfterOne : Observer {
    EventBus* bus = nullptr;
    std::uint64_t seen = 0;
    void on_frame_tx(const FrameEvent&) override {
      ++seen;
      bus->unsubscribe(*this);  // re-entrant: must not break dispatch
    }
  };
  auto net = SimulationBuilder().grid(2, 1).seed(5).build();
  StopAfterOne quitter;
  quitter.bus = &net->bus();
  EventCounter counter;
  net->bus().subscribe(quitter);  // dispatches before counter
  net->bus().subscribe(counter);
  net->run_for(5 * sim::kSecond);
  EXPECT_EQ(quitter.seen, 1u);
  EXPECT_GT(counter.frames_tx, 1u)
      << "later subscribers keep receiving after a mid-dispatch erase";
  EXPECT_EQ(net->bus().observer_count(), 1u);
}

TEST(Deployment, OverhearingIsPureEnergyAccounting) {
  // With adaptive LPL active but NO batteries, the energy subsystem is
  // attached yet overhearing must change nothing: it only charges
  // ledgers (absent here) and never feeds the controller's traffic
  // signal, so schedules, deliveries, and stats stay identical.
  const auto frames_sent = [](bool overhearing) {
    SimulationBuilder builder;
    builder.grid(3, 1).seed(31).set("adaptive_lpl", 1.0);
    builder.set("overhearing", overhearing ? 1.0 : 0.0);
    auto net = builder.build();
    net->mote(1).inject(core::assemble_or_die(
        "LOOP pushn rpt\nloc\npushc 2\npushloc 3 1\nrout\n"
        "pushcl 8\nsleep\njump LOOP\n"));
    net->run_for(20 * sim::kSecond);
    return net->network().stats().frames_sent;
  };
  EXPECT_EQ(frames_sent(false), frames_sent(true));
}

TEST(EventBus, NodeLifecycleAndBatterySettleEvents) {
  EventCounter counter;
  auto net = SimulationBuilder()
                 .grid(3, 1)
                 .seed(9)
                 .set("battery_mj", 40.0)  // dies in seconds always-on
                 .observe(counter)
                 .build();
  net->run_for(10 * sim::kSecond);
  EXPECT_GT(counter.battery_settles, 0u);
  EXPECT_GT(counter.nodes_down, 0u);
  EXPECT_EQ(counter.nodes_down, net->death_log().size())
      << "bus and death log agree";
}

// --------------------------------------------- gateway & overhearing

TEST(Deployment, GatewayPoweredKnobPutsTheSinkOnBattery) {
  {
    auto net = SimulationBuilder()
                   .grid(2, 1)
                   .set("battery_mj", 1000.0)
                   .warmup(0)
                   .build();
    EXPECT_EQ(net->network().battery(sim::NodeId{0}), nullptr)
        << "default: mains-powered gateway";
    EXPECT_NE(net->network().battery(sim::NodeId{1}), nullptr);
  }
  auto net = SimulationBuilder()
                 .grid(2, 1)
                 .set("battery_mj", 1000.0)
                 .set("gateway_powered", 0.0)
                 .warmup(0)
                 .build();
  EXPECT_NE(net->network().battery(sim::NodeId{0}), nullptr)
      << "gateway_powered=0: the sink pays like everyone else";
}

TEST(Deployment, UnpoweredGatewayIsChurnedToo) {
  auto net = SimulationBuilder()
                 .grid(2, 1)
                 .seed(3)
                 .set("churn_rate", 0.5)
                 .set("gateway_powered", 0.0)
                 .build();
  net->run_for(60 * sim::kSecond);
  const auto& deaths = net->death_log();
  EXPECT_TRUE(std::any_of(deaths.begin(), deaths.end(),
                          [](const Deployment::DeathEvent& d) {
                            return d.node.value == 0;
                          }))
      << "node 0 must crash under churn when not mains-powered";
}

TEST(Deployment, OverhearingChargesFilteringReceivers) {
  // 3x1 line: node 1 (middle) acks and relays unicast; node 0 and node 2
  // overhear each other's unicast traffic only when the model is on.
  const auto rx_drain = [](bool overhearing) {
    SimulationBuilder builder;
    builder.grid(3, 1).seed(21).packet_loss(0.0).set("battery_mj", 5000.0);
    builder.set("gateway_powered", 0.0);  // node 0 needs a ledger to read
    if (overhearing) {
      builder.set("overhearing", 1.0);
    }
    auto net = builder.build();
    // Unicast stream: remote out from the middle node to the right end;
    // its acks are unicast back — node 0 overhears all of it.
    net->mote(1).inject(core::assemble_or_die(
        "LOOP pushn rpt\nloc\npushc 2\npushloc 3 1\nrout\n"
        "pushcl 8\nsleep\njump LOOP\n"));
    net->run_for(20 * sim::kSecond);
    net->network().settle_batteries();
    return net->network().battery(sim::NodeId{0})->drained_mj(
        energy::EnergyComponent::kRadioRx);
  };
  const double off = rx_drain(false);
  const double on = rx_drain(true);
  EXPECT_GT(on, off)
      << "overhearing must charge RX to in-range filtering nodes";
}

// ----------------------------------------------- harness determinism

/// A scenario whose metrics come ONLY from an event-bus observer: if
/// observer dispatch were racy or order-dependent, this JSON would
/// differ between thread counts.
harness::TrialMetrics run_observer_probe(const harness::TrialSpec& trial) {
  EventCounter counter;
  harness::Mesh mesh(trial);
  mesh.bus().subscribe(counter);
  mesh.base().inject(core::agents::sentinel(/*sample_ticks=*/8));
  mesh.simulator().run_for(trial.duration);
  harness::TrialMetrics metrics;
  metrics.set("obs_spawns", static_cast<double>(counter.agent_spawns));
  metrics.set("obs_migrations",
              static_cast<double>(counter.agent_migrations));
  metrics.set("obs_frames_tx", static_cast<double>(counter.frames_tx));
  metrics.set("obs_frames_rx", static_cast<double>(counter.frames_rx));
  metrics.set("obs_beacons", static_cast<double>(counter.beacons));
  metrics.set("obs_blocks", static_cast<double>(counter.agent_blocks));
  metrics.set("obs_resumes", static_cast<double>(counter.agent_resumes));
  metrics.set("obs_tuple_ops", static_cast<double>(counter.tuple_ops));
  metrics.set("success", counter.agent_spawns > 0 ? 1.0 : 0.0);
  return metrics;
}

TEST(EventBus, ObserverMetricsJsonIdenticalAcrossThreadCounts) {
  harness::register_scenario(
      {"api_observer_probe", "observer-derived metrics determinism probe",
       run_observer_probe, {}});
  harness::ExperimentSpec spec;
  spec.name = "observer_probe";
  spec.scenario = "api_observer_probe";
  spec.grids = {{3, 3}};
  spec.loss_rates = {0.02};
  spec.trials = 3;
  spec.base_seed = 13;
  spec.duration = 25 * sim::kSecond;
  const std::string serial =
      to_json(run_experiment(spec, harness::RunnerOptions{.threads = 1}));
  const std::string parallel =
      to_json(run_experiment(spec, harness::RunnerOptions{.threads = 8}));
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("obs_migrations"), std::string::npos);
}

}  // namespace
}  // namespace agilla::api

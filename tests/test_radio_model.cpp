#include "sim/radio_model.h"

#include <gtest/gtest.h>

namespace agilla::sim {
namespace {

NodeInfo node(std::uint16_t id, double x, double y) {
  return NodeInfo{NodeId{id}, Location{x, y}, true};
}

TEST(GridNeighborRadio, AxisNeighborsConnected) {
  GridNeighborRadio radio({.spacing = 1.0});
  EXPECT_TRUE(radio.connected(node(0, 1, 1), node(1, 2, 1)));
  EXPECT_TRUE(radio.connected(node(0, 1, 1), node(1, 1, 2)));
  EXPECT_TRUE(radio.connected(node(0, 2, 2), node(1, 1, 2)));
}

TEST(GridNeighborRadio, DiagonalExcludedWith4Connectivity) {
  GridNeighborRadio radio({.spacing = 1.0});
  EXPECT_FALSE(radio.connected(node(0, 1, 1), node(1, 2, 2)));
}

TEST(GridNeighborRadio, DiagonalIncludedWith8Connectivity) {
  GridNeighborRadio radio({.spacing = 1.0, .eight_connected = true});
  EXPECT_TRUE(radio.connected(node(0, 1, 1), node(1, 2, 2)));
}

TEST(GridNeighborRadio, DistantNodesNotConnected) {
  GridNeighborRadio radio({.spacing = 1.0});
  EXPECT_FALSE(radio.connected(node(0, 1, 1), node(1, 3, 1)));
  EXPECT_FALSE(radio.connected(node(0, 1, 1), node(1, 1, 1)));  // self-coord
}

TEST(GridNeighborRadio, SelfNeverConnected) {
  GridNeighborRadio radio({.spacing = 1.0});
  const NodeInfo a = node(5, 1, 1);
  EXPECT_FALSE(radio.connected(a, a));
}

TEST(GridNeighborRadio, CustomSpacing) {
  GridNeighborRadio radio({.spacing = 2.5});
  EXPECT_TRUE(radio.connected(node(0, 0, 0), node(1, 2.5, 0)));
  EXPECT_FALSE(radio.connected(node(0, 0, 0), node(1, 1.0, 0)));
}

TEST(GridNeighborRadio, LossIsConfiguredConstant) {
  GridNeighborRadio radio({.spacing = 1.0, .packet_loss = 0.06});
  EXPECT_DOUBLE_EQ(radio.loss_probability(node(0, 1, 1), node(1, 2, 1), 20),
                   0.06);
}

TEST(GridNeighborRadio, PerByteLossGrowsWithSize) {
  GridNeighborRadio radio(
      {.spacing = 1.0, .packet_loss = 0.02, .per_byte_loss = 0.001});
  const double small =
      radio.loss_probability(node(0, 1, 1), node(1, 2, 1), 10);
  const double large =
      radio.loss_probability(node(0, 1, 1), node(1, 2, 1), 40);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large - small, 0.03, 1e-12);
}

TEST(GridNeighborRadio, LossClampedToOne) {
  GridNeighborRadio radio(
      {.spacing = 1.0, .packet_loss = 0.9, .per_byte_loss = 0.1});
  EXPECT_DOUBLE_EQ(
      radio.loss_probability(node(0, 1, 1), node(1, 2, 1), 100), 1.0);
}

TEST(UnitDiskRadio, ConnectivityWithinRange) {
  UnitDiskRadio radio({.range = 1.5});
  EXPECT_TRUE(radio.connected(node(0, 0, 0), node(1, 1, 1)));   // d~1.41
  EXPECT_FALSE(radio.connected(node(0, 0, 0), node(1, 2, 0)));  // d=2
}

TEST(UnitDiskRadio, LossGrowsWithDistance) {
  UnitDiskRadio radio(
      {.range = 2.0, .base_loss = 0.01, .max_loss = 0.5, .steepness = 2.0});
  const double near =
      radio.loss_probability(node(0, 0, 0), node(1, 0.5, 0), 20);
  const double far =
      radio.loss_probability(node(0, 0, 0), node(1, 1.9, 0), 20);
  EXPECT_LT(near, far);
  EXPECT_GE(near, 0.01);
  EXPECT_LE(far, 0.5);
}

TEST(UnitDiskRadio, LossAtRangeEqualsMax) {
  UnitDiskRadio radio(
      {.range = 1.0, .base_loss = 0.0, .max_loss = 0.4, .steepness = 1.0});
  EXPECT_NEAR(radio.loss_probability(node(0, 0, 0), node(1, 1, 0), 20), 0.4,
              1e-9);
}

TEST(PerfectRadio, NoLossWithinRange) {
  PerfectRadio radio(1.5);
  EXPECT_TRUE(radio.connected(node(0, 0, 0), node(1, 1, 0)));
  EXPECT_DOUBLE_EQ(radio.loss_probability(node(0, 0, 0), node(1, 1, 0), 20),
                   0.0);
  EXPECT_FALSE(radio.connected(node(0, 0, 0), node(1, 5, 0)));
}

}  // namespace
}  // namespace agilla::sim

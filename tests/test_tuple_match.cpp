// The zero-copy matching layer (tuple_match.h): fingerprint prefilter
// soundness (a fingerprint may pass a non-match through, but must never
// reject a true match), TupleRef bounds behaviour, and lazy-vs-eager match
// agreement on well-formed encodings. The adversarial byte-mutation sweep
// lives in test_fuzz.cpp.
#include "tuplespace/tuple_match.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace agilla::ts {
namespace {

std::vector<std::uint8_t> encode(const Tuple& t) {
  net::Writer w;
  t.encode(w);
  return w.take();
}

TupleRef ref_of(const std::vector<std::uint8_t>& bytes) {
  return TupleRef(std::span<const std::uint8_t>(bytes));
}

TEST(Fingerprint, EqualTuplesShareAFingerprint) {
  const Tuple a{Value::string("fir"), Value::number(7)};
  const Tuple b{Value::string("fir"), Value::number(7)};
  EXPECT_EQ(fingerprint_of(a), fingerprint_of(b));
}

TEST(Fingerprint, ArityAndTypesAndFirstFieldAllContribute) {
  const Fingerprint base =
      fingerprint_of(Tuple{Value::string("fir"), Value::number(7)});
  EXPECT_NE(base, fingerprint_of(Tuple{Value::string("fir")}));
  EXPECT_NE(base,
            fingerprint_of(Tuple{Value::string("fir"), Value::string("ab")}));
  EXPECT_NE(base,
            fingerprint_of(Tuple{Value::string("ice"), Value::number(7)}));
}

TEST(CompiledTemplate, NeverRejectsAMatchingTuple) {
  // Soundness sweep: random template/tuple pairs; whenever the eager match
  // succeeds, the fingerprint prefilter must have let the tuple through.
  sim::Rng rng(2026);
  auto random_value = [&rng]() -> Value {
    switch (rng.uniform(5)) {
      case 0:
        return Value::number(static_cast<std::int16_t>(rng.uniform(4)));
      case 1:
        return Value::string(std::string(1, 'a' + rng.uniform(2)));
      case 2:
        return Value::location({static_cast<double>(rng.uniform(2)), 1.0});
      case 3:
        return Value::reading(sim::SensorType::kPhoto,
                              static_cast<std::int16_t>(rng.uniform(3)));
      default:
        return Value::agent_id(static_cast<std::uint16_t>(rng.uniform(3)));
    }
  };
  std::size_t matched = 0;
  for (int i = 0; i < 5000; ++i) {
    Tuple tuple;
    const std::size_t arity = 1 + rng.uniform(3);
    for (std::size_t f = 0; f < arity; ++f) {
      tuple.add(random_value());
    }
    Template templ;
    const std::size_t templ_arity = 1 + rng.uniform(3);
    for (std::size_t f = 0; f < templ_arity; ++f) {
      switch (rng.uniform(3)) {
        case 0:
          templ.add(Value::type_wildcard(random_value().type()));
          break;
        case 1:
          templ.add(Value::reading_type(sim::SensorType::kPhoto));
          break;
        default:
          templ.add(random_value());
          break;
      }
    }
    const CompiledTemplate compiled(templ);
    if (templ.matches(tuple)) {
      ++matched;
      EXPECT_FALSE(compiled.key_rejects(fingerprint_of(tuple)))
          << templ.to_string() << " vs " << tuple.to_string();
    }
  }
  EXPECT_GT(matched, 0u);  // the sweep must actually exercise matches
}

TEST(CompiledTemplate, RejectsDifferentFirstFieldWithoutScanning) {
  const CompiledTemplate compiled(
      Template{Value::string("key"), Value::type_wildcard(ValueType::kNumber)});
  EXPECT_TRUE(compiled.key_rejects(
      fingerprint_of(Tuple{Value::string("fil"), Value::number(1)})));
  EXPECT_TRUE(compiled.key_rejects(fingerprint_of(Tuple{Value::number(1)})));
  EXPECT_FALSE(compiled.key_rejects(
      fingerprint_of(Tuple{Value::string("key"), Value::number(1)})));
}

TEST(CompiledTemplate, ReadingTypeFieldDoesNotPinTheFieldType) {
  // A reading-type template field accepts both a reading of that sensor
  // and the identical reading-type value — the prefilter must admit both.
  const CompiledTemplate compiled(
      Template{Value::reading_type(sim::SensorType::kTemperature)});
  const Tuple reading{Value::reading(sim::SensorType::kTemperature, 300)};
  const Tuple designator{Value::reading_type(sim::SensorType::kTemperature)};
  EXPECT_FALSE(compiled.key_rejects(fingerprint_of(reading)));
  EXPECT_FALSE(compiled.key_rejects(fingerprint_of(designator)));
  EXPECT_TRUE(compiled.matches(reading));
  EXPECT_TRUE(compiled.matches(designator));
}

TEST(CompiledTemplate, WireMatchAgreesWithEagerMatchOnValidEncodings) {
  const Tuple stored{Value::string("fir"), Value::location({2, 3})};
  const auto bytes = encode(stored);
  const Template hit{Value::string("fir"),
                     Value::type_wildcard(ValueType::kLocation)};
  const Template wrong_type{Value::string("fir"),
                            Value::type_wildcard(ValueType::kNumber)};
  const Template wrong_arity{Value::string("fir")};
  EXPECT_EQ(CompiledTemplate(hit).matches(ref_of(bytes)),
            hit.matches(stored));
  EXPECT_EQ(CompiledTemplate(wrong_type).matches(ref_of(bytes)),
            wrong_type.matches(stored));
  EXPECT_EQ(CompiledTemplate(wrong_arity).matches(ref_of(bytes)),
            wrong_arity.matches(stored));
}

TEST(CompiledTemplate, EmptyTemplateMatchesEmptyEncodingOnly) {
  const std::vector<std::uint8_t> empty_tuple{0x00};
  const CompiledTemplate compiled((Template{}));
  EXPECT_TRUE(compiled.matches(ref_of(empty_tuple)));
  EXPECT_FALSE(compiled.matches(ref_of(encode(Tuple{Value::number(1)}))));
  EXPECT_FALSE(compiled.matches(TupleRef{}));  // no bytes at all
}

TEST(TupleRef, EncodedSizeWalksExactlyOneTuple) {
  const Tuple t{Value::string("abc"), Value::number(5)};
  auto bytes = encode(t);
  const std::size_t exact = bytes.size();
  bytes.push_back(0xFF);  // trailing garbage must not count
  const auto size = ref_of(bytes).encoded_size();
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, exact);
  EXPECT_EQ(exact, t.wire_size());
}

TEST(TupleRef, TruncationAndOversizeAreRejected) {
  const Tuple t{Value::location({1, 2}), Value::number(5)};
  const auto bytes = encode(t);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const TupleRef truncated(
        std::span<const std::uint8_t>(bytes.data(), len));
    EXPECT_FALSE(truncated.encoded_size().has_value()) << "len " << len;
    EXPECT_FALSE(truncated.materialize().has_value()) << "len " << len;
  }
  // A count beyond kMaxTupleFields cannot belong to a storable tuple.
  const std::vector<std::uint8_t> oversized{
      static_cast<std::uint8_t>(kMaxTupleFields + 1)};
  EXPECT_FALSE(ref_of(oversized).encoded_size().has_value());
}

TEST(TupleRef, MaterializeRoundTrips) {
  const Tuple t{Value::reading(sim::SensorType::kMagnetometer, 42),
                Value::agent_id(7)};
  const auto bytes = encode(t);
  const auto decoded = ref_of(bytes).materialize();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, t);
}

}  // namespace
}  // namespace agilla::ts

// agilla_gatewayd: the networked gateway daemon — the paper Sec. 3.1
// base-station server ("an RMI server that allows anyone on the Internet
// to remotely access the sensor network") rebuilt on the deterministic
// simulation. It hosts one Agilla mesh and serves the svc::wire protocol
// over TCP: any number of clients open sessions, inject agents, perform
// remote tuple space operations, and subscribe to event streams.
//
//   # 8x8 mesh on an ephemeral port, port written for scripts
//   $ agilla_gatewayd --grid 8x8 --listen 127.0.0.1:0 --port-file port.txt
//
// SIGINT/SIGTERM drain every session (byeack, flush), write the metrics
// JSON (--metrics FILE, default stdout), and exit 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "api/deployment.h"
#include "svc/gateway_service.h"
#include "svc/tcp_transport.h"

using namespace agilla;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void print_usage() {
  std::printf(
      "usage: agilla_gatewayd [options]\n"
      "  --grid WxH           mesh size (default: 8x8)\n"
      "  --seed S             RNG seed (default: 1)\n"
      "  --listen HOST:PORT   listen address; port 0 = ephemeral "
      "(default: 127.0.0.1:0)\n"
      "  --port-file FILE     write the resolved port here after bind\n"
      "  --max-sessions N     session limit (default: 1024)\n"
      "  --queue-cap N        per-session outbound queue cap (default: "
      "1024)\n"
      "  --slice-ms M         virtual ms simulated per service turn "
      "(default: 20)\n"
      "  --param NAME=V       registry knob, repeatable (see agilla_sim "
      "--list-knobs)\n"
      "  --metrics FILE       write the shutdown metrics JSON here "
      "(default: stdout)\n"
      "SIGINT/SIGTERM drain sessions, flush metrics, exit 0.\n");
}

int fail(const char* message) {
  std::fprintf(stderr, "agilla_gatewayd: %s\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t width = 8;
  std::size_t height = 8;
  std::string listen_host = "127.0.0.1";
  int listen_port = 0;
  std::string port_file;
  std::string metrics_file;
  svc::ServiceOptions service_options;
  sim::SimTime slice = 20 * sim::kMillisecond;
  api::SimulationBuilder builder;
  builder.grid(width, height);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--grid") {
      const char* value = next();
      if (value == nullptr ||
          std::sscanf(value, "%zux%zu", &width, &height) != 2 ||
          width == 0 || height == 0) {
        return fail("--grid expects WxH");
      }
      builder.grid(width, height);
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--seed expects a number");
      }
      builder.seed(std::strtoull(value, nullptr, 10));
    } else if (arg == "--listen") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--listen expects HOST:PORT");
      }
      const std::string spec = value;
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos) {
        return fail("--listen expects HOST:PORT");
      }
      listen_host = spec.substr(0, colon);
      listen_port = std::atoi(spec.c_str() + colon + 1);
      if (listen_port < 0 || listen_port > 65535) {
        return fail("--listen port out of range");
      }
    } else if (arg == "--port-file") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--port-file expects a path");
      }
      port_file = value;
    } else if (arg == "--metrics") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--metrics expects a path");
      }
      metrics_file = value;
    } else if (arg == "--max-sessions") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--max-sessions expects a number");
      }
      service_options.max_sessions = std::strtoull(value, nullptr, 10);
    } else if (arg == "--queue-cap") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--queue-cap expects a number");
      }
      service_options.queue_cap = std::strtoull(value, nullptr, 10);
    } else if (arg == "--slice-ms") {
      const char* value = next();
      if (value == nullptr) {
        return fail("--slice-ms expects a number");
      }
      slice = std::strtoull(value, nullptr, 10) * sim::kMillisecond;
    } else if (arg == "--param") {
      const char* value = next();
      const char* eq = value == nullptr ? nullptr : std::strchr(value, '=');
      if (eq == nullptr) {
        return fail("--param expects NAME=VALUE");
      }
      try {
        builder.set(std::string(value, eq), std::atof(eq + 1));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "agilla_gatewayd: %s\n", e.what());
        return 2;
      }
    } else {
      print_usage();
      return fail(("unknown option '" + arg + "'").c_str());
    }
  }

  if (builder.options().sim_shards > 1) {
    // The gateway's event subscriptions ride the EventBus, which the
    // sharded engine cannot dispatch safely (api/events.h).
    return fail("sim_shards > 1 is incompatible with the gateway service");
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  auto deployment = builder.build();

  svc::TcpTransport transport(svc::TcpTransport::Options{
      listen_host, static_cast<std::uint16_t>(listen_port), 128});
  std::string error;
  if (!transport.start(&error)) {
    return fail(error.c_str());
  }
  std::fprintf(stderr, "agilla_gatewayd: %zux%zu mesh, listening on %s:%u\n",
               width, height, listen_host.c_str(), transport.port());
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << transport.port() << "\n";
  }

  svc::GatewayService service(*deployment, transport, service_options);

  // Service loop, entirely on this (the simulation) thread: collect
  // transport events, run the mesh one slice, repeat. The short sleep
  // keeps an idle daemon off the CPU; under load the transport queues
  // bytes while the slice runs.
  while (g_stop == 0) {
    service.pump();
    deployment->run_for(slice);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  service.shutdown();
  transport.stop();

  const std::string metrics = service.metrics_json();
  if (metrics_file.empty()) {
    std::printf("%s\n", metrics.c_str());
  } else {
    std::ofstream out(metrics_file);
    out << metrics << "\n";
  }
  std::fprintf(stderr, "agilla_gatewayd: drained, exiting\n");
  return 0;
}

// agilla_grade — grader-style conformance runner for `.aga` agents.
//
// Each program in the corpus runs on a small deterministic mesh; the
// grader dumps final tuple-space contents, agent fates, and (optionally)
// selected trace events, then diffs the dump against the program's
// sibling `.expect` file:
//
//   agilla_grade tests/agents            grade every *.aga in a directory
//   agilla_grade prog.aga ...            grade specific programs
//   agilla_grade --update PATH...        (re)write the .expect files
//   agilla_grade --strict PATH...        no xfail inversion (CI's
//                                        broken-expect gate)
//   agilla_grade -v PATH...              print every observed dump
//
// Run parameters come from `;!` directive comments inside the program
// (invisible to the assembler — `;` starts a comment):
//
//   ;! grid 4x3        mesh width x height       (default 3x3)
//   ;! seed 7          deployment seed           (default 1)
//   ;! loss 0.05       per-packet loss           (default 0)
//   ;! duration 30     simulated seconds to run  (default 20)
//   ;! warmup 5        discovery warm-up seconds (default 5)
//   ;! inject 4        mote index to inject on   (default 0)
//   ;! trace out smove trace these mnemonics into the [trace] section
//   ;! trace_max 64    cap on recorded trace events (default 200)
//
// Programs whose name ends in `_xfail.aga` are expected to MISMATCH
// their `.expect` (they prove the grader reports a readable diff instead
// of crashing); `--strict` disables the inversion.
//
// Exit status: 0 all pass, 1 any mismatch, 2 usage / I/O errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/deployment.h"
#include "core/assembler.h"
#include "core/engine.h"
#include "core/isa.h"
#include "core/middleware.h"
#include "tuplespace/tuple_space.h"

namespace {

namespace fs = std::filesystem;
using agilla::api::Deployment;
using agilla::api::DeploymentOptions;

struct RunSpec {
  std::size_t width = 3;
  std::size_t height = 3;
  std::uint64_t seed = 1;
  double loss = 0.0;
  double duration_s = 20.0;
  double warmup_s = 5.0;
  std::size_t inject = 0;
  std::vector<std::string> trace;  ///< mnemonics to record
  std::size_t trace_max = 200;
};

/// Parses the `;!` directive comments out of a program source.
bool parse_spec(const std::string& source, const std::string& file,
                RunSpec* spec) {
  std::istringstream stream(source);
  std::string line;
  std::size_t line_no = 0;
  bool ok = true;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto bang = line.find(";!");
    if (bang == std::string::npos ||
        line.find_first_not_of(" \t") != bang) {
      continue;
    }
    std::istringstream rest(line.substr(bang + 2));
    std::string key;
    rest >> key;
    auto fail = [&](const char* what) {
      std::fprintf(stderr, "%s:%zu: bad ;! directive (%s)\n", file.c_str(),
                   line_no, what);
      ok = false;
    };
    if (key == "grid") {
      std::string dims;
      rest >> dims;
      const auto x = dims.find('x');
      std::size_t w = 0;
      std::size_t h = 0;
      if (x == std::string::npos ||
          std::sscanf(dims.c_str(), "%zux%zu", &w, &h) != 2 || w == 0 ||
          h == 0 || w * h > 4096) {
        fail("grid expects WxH");
        continue;
      }
      spec->width = w;
      spec->height = h;
    } else if (key == "seed") {
      if (!(rest >> spec->seed)) {
        fail("seed expects an integer");
      }
    } else if (key == "loss") {
      if (!(rest >> spec->loss) || spec->loss < 0.0 || spec->loss > 1.0) {
        fail("loss expects 0..1");
      }
    } else if (key == "duration") {
      if (!(rest >> spec->duration_s) || spec->duration_s <= 0.0) {
        fail("duration expects seconds > 0");
      }
    } else if (key == "warmup") {
      if (!(rest >> spec->warmup_s) || spec->warmup_s < 0.0) {
        fail("warmup expects seconds >= 0");
      }
    } else if (key == "inject") {
      if (!(rest >> spec->inject)) {
        fail("inject expects a mote index");
      }
    } else if (key == "trace") {
      std::string mnemonic;
      while (rest >> mnemonic) {
        spec->trace.push_back(mnemonic);
      }
    } else if (key == "trace_max") {
      if (!(rest >> spec->trace_max) || spec->trace_max == 0) {
        fail("trace_max expects a positive integer");
      }
    } else {
      fail(("unknown key '" + key + "'").c_str());
    }
  }
  return ok;
}

/// Base mnemonic for a raw opcode byte ("getvar", not "getvar[3]");
/// "undefined" for bytes outside the ISA.
std::string base_mnemonic(std::uint8_t raw) {
  const agilla::core::OpcodeInfo* info = agilla::core::opcode_info(raw);
  return info == nullptr ? "undefined" : info->mnemonic;
}

/// Executes one program and renders the observed dump. Returns false on
/// setup errors (assembly failure, bad directives, bad mote index).
bool run_program(const fs::path& program, std::string* dump_out) {
  std::ifstream in(program);
  if (!in) {
    std::fprintf(stderr, "agilla_grade: cannot read '%s'\n",
                 program.string().c_str());
    return false;
  }
  std::ostringstream source;
  source << in.rdbuf();

  RunSpec spec;
  if (!parse_spec(source.str(), program.string(), &spec)) {
    return false;
  }

  DeploymentOptions options;
  options.width = spec.width;
  options.height = spec.height;
  options.seed = spec.seed;
  options.packet_loss = spec.loss;
  options.per_byte_loss = 0.0;
  options.warmup =
      static_cast<agilla::sim::SimTime>(spec.warmup_s * 1e6);
  Deployment deployment(options);
  if (spec.inject >= deployment.mote_count()) {
    std::fprintf(stderr, "%s: inject mote %zu out of range (grid has %zu)\n",
                 program.string().c_str(), spec.inject,
                 deployment.mote_count());
    return false;
  }

  // Trace collection through the engine's instruction taps: the grader
  // adds on_pre_insn without disturbing the facade's lifecycle hooks.
  struct TraceEvent {
    std::size_t mote;
    std::uint16_t agent;
    std::uint16_t pc;
    std::uint8_t opcode;
  };
  std::vector<TraceEvent> events;
  bool truncated = false;
  if (!spec.trace.empty()) {
    for (std::size_t m = 0; m < deployment.mote_count(); ++m) {
      deployment.mote(m).engine().hooks().on_pre_insn =
          [m, &spec, &events, &truncated](
              const agilla::core::InsnEvent& e) {
            if (std::find(spec.trace.begin(), spec.trace.end(),
                          base_mnemonic(e.opcode)) == spec.trace.end()) {
              return;
            }
            if (events.size() >= spec.trace_max) {
              truncated = true;
              return;
            }
            events.push_back({m, e.agent.value, e.pc, e.opcode});
          };
    }
  }

  try {
    deployment.inject_file(program.string(), spec.inject);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return false;
  }
  deployment.run_for(
      static_cast<agilla::sim::SimTime>(spec.duration_s * 1e6));

  // --- render the dump ----------------------------------------------------
  agilla::core::EngineStats total;
  for (std::size_t m = 0; m < deployment.mote_count(); ++m) {
    const agilla::core::EngineStats& s =
        deployment.mote(m).engine().stats();
    total.instructions += s.instructions;
    total.vm_errors += s.vm_errors;
    total.agents_launched += s.agents_launched;
    total.agents_halted += s.agents_halted;
    total.agents_installed += s.agents_installed;
    total.agents_rejected += s.agents_rejected;
    total.agents_power_lost += s.agents_power_lost;
    total.migrations_started += s.migrations_started;
    total.migrations_failed += s.migrations_failed;
    total.remote_ops += s.remote_ops;
    total.reactions_fired += s.reactions_fired;
  }
  std::ostringstream dump;
  dump << "# agilla_grade v1\n";
  dump << "[agents]\n";
  dump << "alive " << deployment.agent_count() << "\n";
  dump << "launched " << total.agents_launched << " installed "
       << total.agents_installed << " halted " << total.agents_halted
       << " rejected " << total.agents_rejected << " power_lost "
       << total.agents_power_lost << "\n";
  dump << "vm_errors " << total.vm_errors << " migrations "
       << total.migrations_started << "/" << total.migrations_failed
       << " remote_ops " << total.remote_ops << " reactions "
       << total.reactions_fired << "\n";
  dump << "instructions " << total.instructions << "\n";
  dump << "[tuples]\n";
  for (std::size_t m = 0; m < deployment.mote_count(); ++m) {
    for (const agilla::ts::Tuple& tuple :
         deployment.mote(m).tuple_space().store().snapshot()) {
      dump << "mote " << m << " " << tuple.to_string() << "\n";
    }
  }
  if (!spec.trace.empty()) {
    dump << "[trace]\n";
    for (const TraceEvent& e : events) {
      dump << "mote " << e.mote << " agent " << e.agent << " pc " << e.pc
           << " " << base_mnemonic(e.opcode) << "\n";
    }
    if (truncated) {
      dump << "(trace truncated at " << spec.trace_max << " events)\n";
    }
  }
  *dump_out = dump.str();
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

/// Position-aligned diff, readable in CI logs: expected on '-', observed
/// on '+', capped so a wildly wrong run stays scannable.
void print_diff(const std::string& expected, const std::string& observed) {
  const std::vector<std::string> want = split_lines(expected);
  const std::vector<std::string> got = split_lines(observed);
  const std::size_t n = std::max(want.size(), got.size());
  std::size_t shown = 0;
  for (std::size_t i = 0; i < n && shown < 24; ++i) {
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    if (w != nullptr && g != nullptr && *w == *g) {
      continue;
    }
    std::printf("  line %zu:\n", i + 1);
    if (w != nullptr) {
      std::printf("  - %s\n", w->c_str());
    }
    if (g != nullptr) {
      std::printf("  + %s\n", g->c_str());
    }
    ++shown;
  }
  if (shown == 24) {
    std::printf("  (more differences elided)\n");
  }
}

bool is_xfail(const fs::path& program) {
  const std::string stem = program.stem().string();
  return stem.size() > 6 && stem.ends_with("_xfail");
}

}  // namespace

int main(int argc, char** argv) {
  bool update = false;
  bool strict = false;
  bool verbose = false;
  std::vector<fs::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "-v" || arg == "--verbose") {
      verbose = true;
    } else if (arg == "-h" || arg == "--help") {
      std::fprintf(stderr,
                   "usage: agilla_grade [--update] [--strict] [-v] "
                   "PATH...\n       (PATH: .aga file or directory)\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "agilla_grade: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "agilla_grade: no programs given\n");
    return 2;
  }

  // Expand directories into their sorted *.aga contents.
  std::vector<fs::path> programs;
  for (const fs::path& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      std::vector<fs::path> found;
      for (const auto& entry : fs::directory_iterator(path, ec)) {
        if (entry.path().extension() == ".aga") {
          found.push_back(entry.path());
        }
      }
      std::sort(found.begin(), found.end());
      programs.insert(programs.end(), found.begin(), found.end());
    } else {
      programs.push_back(path);
    }
  }
  if (programs.empty()) {
    std::fprintf(stderr, "agilla_grade: no .aga programs found\n");
    return 2;
  }

  int failures = 0;
  int errors = 0;
  for (const fs::path& program : programs) {
    std::string observed;
    if (!run_program(program, &observed)) {
      std::printf("ERROR %s\n", program.string().c_str());
      ++errors;
      continue;
    }
    if (verbose) {
      std::printf("--- %s observed ---\n%s", program.string().c_str(),
                  observed.c_str());
    }
    fs::path expect_path = program;
    expect_path.replace_extension(".expect");

    const bool xfail = !strict && is_xfail(program);
    if (update) {
      if (xfail) {
        std::printf("SKIP %s (xfail .expect files are curated by hand)\n",
                    program.string().c_str());
        continue;
      }
      std::ofstream out(expect_path);
      out << observed;
      std::printf("WROTE %s\n", expect_path.string().c_str());
      continue;
    }

    std::ifstream expect_in(expect_path);
    if (!expect_in) {
      std::printf("FAIL %s (missing %s)\n", program.string().c_str(),
                  expect_path.string().c_str());
      ++failures;
      continue;
    }
    std::ostringstream expect_buf;
    expect_buf << expect_in.rdbuf();
    const std::string expected = expect_buf.str();

    const bool match = expected == observed;
    if (xfail) {
      if (match) {
        std::printf("FAIL %s (xfail program unexpectedly matched)\n",
                    program.string().c_str());
        ++failures;
      } else {
        std::printf("PASS %s (xfail: grader reported the diff)\n",
                    program.string().c_str());
        print_diff(expected, observed);
      }
      continue;
    }
    if (match) {
      std::printf("PASS %s\n", program.string().c_str());
    } else {
      std::printf("FAIL %s: dump differs from %s\n",
                  program.string().c_str(),
                  expect_path.string().c_str());
      print_diff(expected, observed);
      ++failures;
    }
  }
  std::printf("%zu program(s), %d failure(s), %d error(s)\n",
              programs.size(), failures, errors);
  if (errors > 0) {
    return 2;
  }
  return failures > 0 ? 1 : 0;
}

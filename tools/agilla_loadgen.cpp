// agilla_loadgen: scripted load harness for the gateway service.
//
// Drives N protocol clients against one Agilla mesh and reports
// injection throughput, reply latency percentiles, backpressure drops,
// and reconnect success as deterministic JSON. Two modes:
//
//   - loopback (default): builds the deployment in-process and runs the
//     whole exchange on the deterministic LoopbackTransport — no
//     sockets, no threads. For a fixed --seed the per-session
//     transcripts and the metrics JSON are byte-identical across runs
//     (latencies are virtual-time microseconds).
//   - --connect HOST:PORT: real TCP clients against a running
//     agilla_gatewayd (latencies are wall-clock microseconds; only
//     protocol correctness is asserted, not byte determinism).
//
//   $ agilla_loadgen --clients 1000 --grid 16x16 --ops 24 --out m.json
//   $ agilla_loadgen --connect 127.0.0.1:7170 --clients 64 --smoke
//
// The client script is a pure function of (client index, op index):
// status/ping probes, remote tuple ops, agent injections for one cohort,
// event subscriptions for another, and a mid-script disconnect +
// token-resume for every 8th client. Exit status 0 iff every client
// finished its script with zero protocol errors.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/deployment.h"
#include "harness/json_writer.h"
#include "svc/gateway_service.h"
#include "svc/transport.h"
#include "svc/wire.h"

using namespace agilla;
namespace wire = agilla::svc::wire;

namespace {

void print_usage() {
  std::printf(
      "usage: agilla_loadgen [options]\n"
      "  --clients N          concurrent protocol clients (default: 64)\n"
      "  --ops N              scripted ops per client (default: 16)\n"
      "  --loopback           in-process deterministic mode (default)\n"
      "  --connect HOST:PORT  drive a running agilla_gatewayd over TCP\n"
      "  --grid WxH           loopback mesh size (default: 8x8)\n"
      "  --seed S             loopback RNG seed (default: 1)\n"
      "  --queue-cap N        loopback per-session queue cap (default: "
      "1024)\n"
      "  --slice-ms M         loopback virtual ms per service turn "
      "(default: 2)\n"
      "  --out FILE           write the metrics JSON here (default: "
      "stdout)\n"
      "  --smoke              small defaults + PASS/FAIL line on stderr\n");
}

int fail_usage(const char* message) {
  std::fprintf(stderr, "agilla_loadgen: %s\n", message);
  return 2;
}

// ----------------------------------------------------------- client I/O

/// One client's byte pipe — loopback handle or TCP socket.
class ClientIo {
 public:
  virtual ~ClientIo() = default;
  virtual bool open() = 0;
  virtual void send(const std::vector<std::uint8_t>& bytes) = 0;
  virtual void drain(std::vector<std::uint8_t>* out) = 0;
  virtual void disconnect() = 0;
};

class LoopbackIo final : public ClientIo {
 public:
  explicit LoopbackIo(svc::LoopbackTransport& transport)
      : transport_(transport) {}

  bool open() override {
    client_ = transport_.connect();
    return true;
  }
  void send(const std::vector<std::uint8_t>& bytes) override {
    client_.send(bytes);
  }
  void drain(std::vector<std::uint8_t>* out) override {
    const auto bytes = client_.drain();
    out->insert(out->end(), bytes.begin(), bytes.end());
  }
  void disconnect() override { client_.disconnect(); }

 private:
  svc::LoopbackTransport& transport_;
  svc::LoopbackTransport::Client client_;
};

class TcpIo final : public ClientIo {
 public:
  TcpIo(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}
  ~TcpIo() override { disconnect(); }

  bool open() override {
    disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      disconnect();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    return true;
  }

  void send(const std::vector<std::uint8_t>& bytes) override {
    std::size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, 100);
      } else if (errno != EINTR) {
        disconnect();
        return;
      }
    }
  }

  void drain(std::vector<std::uint8_t>* out) override {
    std::uint8_t buf[16 * 1024];
    while (fd_ >= 0) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        out->insert(out->end(), buf, buf + n);
      } else if (n == 0) {
        disconnect();  // server EOF (e.g. after byeack)
        return;
      } else {
        if (errno != EINTR) {
          return;  // EAGAIN: nothing more right now
        }
      }
    }
  }

  void disconnect() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
};

// ------------------------------------------------------- client scripts

struct Op {
  wire::MsgType type = wire::MsgType::kCommand;
  std::string payload;
  bool remote = false;  ///< immediate "dispatched" reply + later asyncresult
  bool inject = false;  ///< counts toward injection throughput
};

/// The deterministic script: op j of client i, on a WxH mesh. Every 16th
/// client opens a tuple event stream first; every 32nd (offset 2) is an
/// injector; everyone else mixes status/ping probes with remote tuple
/// ops whose destinations walk the grid.
Op make_op(std::size_t i, std::size_t j, std::size_t w, std::size_t h) {
  if (j == 0 && i % 16 == 0) {
    return Op{wire::MsgType::kSubscribe, "tuple", false, false};
  }
  const std::size_t x = (i + j) % w;
  const std::size_t y = (i * 3 + j) % h;
  const std::string dest =
      std::to_string(x) + " " + std::to_string(y);
  switch ((i + j) % 6) {
    case 0:
      return Op{wire::MsgType::kCommand, "status", false, false};
    case 1:
      return Op{wire::MsgType::kPing, "", false, false};
    case 2:
      if (i % 32 == 2) {
        return Op{wire::MsgType::kCommand, "inject asm halt", false, true};
      }
      return Op{wire::MsgType::kCommand, "rrdp " + dest + " ?num", true,
                false};
    case 3:
      return Op{wire::MsgType::kCommand,
                "rout " + dest + " str:lg num:" + std::to_string(j % 100),
                true, false};
    case 4:
      return Op{wire::MsgType::kCommand, "status", false, false};
    default:
      return Op{wire::MsgType::kPing, "", false, false};
  }
}

// ------------------------------------------------------------- a client

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t* hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t k = 0; k < size; ++k) {
    *hash = (*hash ^ bytes[k]) * kFnvPrime;
  }
}

struct Client {
  enum class State {
    kConnect,       ///< (re)open + send hello next step
    kAwaitWelcome,  ///< hello sent
    kRun,           ///< scripted ops
    kAwaitByeAck,
    kDone,
    kFailed,
  };

  std::size_t index = 0;
  std::unique_ptr<ClientIo> io;
  wire::FrameReader reader;
  State state = State::kConnect;
  std::string token;  ///< resume token from welcome
  std::size_t next_op = 0;
  std::size_t ops_total = 0;
  bool awaiting_reply = false;
  bool current_remote = false;
  bool current_inject = false;
  /// A remote op on the gateway's own node completes synchronously, so
  /// its asyncresult frame precedes the reply frame; remember it so the
  /// reply does not count a pending async that already arrived.
  bool async_arrived_early = false;
  std::uint32_t next_request = 1;
  std::uint32_t current_request = 0;
  std::size_t pending_async = 0;
  bool will_reconnect = false;
  bool reconnected = false;
  std::uint64_t send_stamp = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> async_sent;
  std::uint64_t transcript = kFnvOffset;
  std::uint64_t drops_reported = 0;  ///< from the last pong probe
  // Tallies (merged into the run metrics at the end).
  std::uint64_t commands = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;
  std::uint64_t injections = 0;
  std::uint64_t injections_ok = 0;
  std::uint64_t async_ok = 0;
  std::uint64_t async_failed = 0;
  std::uint64_t events = 0;
  std::uint64_t protocol_errors = 0;
};

struct RunMetrics {
  std::vector<std::uint64_t> reply_latency;
  std::vector<std::uint64_t> async_latency;
  std::uint64_t reconnects_attempted = 0;
  std::uint64_t reconnects_ok = 0;
};

std::uint64_t percentile(std::vector<std::uint64_t>& values, double p) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

/// Handles every complete frame the client has received; advances the
/// state machine. `now` is the latency clock (virtual µs on loopback).
void process_frames(Client& c, RunMetrics& metrics, std::uint64_t now) {
  std::vector<std::uint8_t> bytes;
  c.io->drain(&bytes);
  if (!bytes.empty()) {
    c.reader.feed(bytes.data(), bytes.size());
  }
  for (;;) {
    wire::Message m;
    const auto status = c.reader.next(&m);
    if (status == wire::FrameReader::Status::kNeedMore) {
      return;
    }
    if (status == wire::FrameReader::Status::kError) {
      ++c.protocol_errors;
      c.state = Client::State::kFailed;
      return;
    }
    // Per-session transcript: every server frame, fully (type, id,
    // vtime, payload) — byte determinism on loopback is asserted by
    // comparing these hashes across runs.
    const std::uint8_t type_byte = static_cast<std::uint8_t>(m.type);
    fnv_mix(&c.transcript, &type_byte, 1);
    fnv_mix(&c.transcript, &m.request_id, sizeof(m.request_id));
    fnv_mix(&c.transcript, &m.vtime, sizeof(m.vtime));
    fnv_mix(&c.transcript, m.payload.data(), m.payload.size());
    switch (m.type) {
      case wire::MsgType::kWelcome: {
        const auto tok = m.payload.find("token=");
        if (tok != std::string::npos) {
          const auto end = m.payload.find(' ', tok);
          c.token = m.payload.substr(tok + 6, end - (tok + 6));
        }
        if (m.payload.find("resumed=1") != std::string::npos) {
          ++metrics.reconnects_ok;
        }
        c.state = Client::State::kRun;
        break;
      }
      case wire::MsgType::kReply:
        metrics.reply_latency.push_back(now - c.send_stamp);
        c.awaiting_reply = false;
        if (m.payload.rfind("error", 0) == 0) {
          ++c.replies_error;
        } else {
          ++c.replies_ok;
          if (c.current_remote && !c.async_arrived_early) {
            ++c.pending_async;
            c.async_sent[m.request_id] = c.send_stamp;
          }
          if (c.current_inject && m.payload.rfind("ok", 0) == 0) {
            ++c.injections_ok;
          }
        }
        c.async_arrived_early = false;
        break;
      case wire::MsgType::kPong: {
        metrics.reply_latency.push_back(now - c.send_stamp);
        c.awaiting_reply = false;
        ++c.replies_ok;
        const auto eq = m.payload.find("drops=");
        if (eq != std::string::npos) {
          c.drops_reported = std::strtoull(
              m.payload.c_str() + eq + 6, nullptr, 10);
        }
        break;
      }
      case wire::MsgType::kAsyncResult: {
        const auto it = c.async_sent.find(m.request_id);
        if (it != c.async_sent.end()) {
          metrics.async_latency.push_back(m.vtime - it->second);
          c.async_sent.erase(it);
          if (c.pending_async > 0) {
            --c.pending_async;
          }
        } else if (c.awaiting_reply && m.request_id == c.current_request) {
          c.async_arrived_early = true;
        }
        if (m.payload.rfind("ok", 0) == 0) {
          ++c.async_ok;
        } else {
          ++c.async_failed;
        }
        break;
      }
      case wire::MsgType::kEvent:
        ++c.events;
        break;
      case wire::MsgType::kByeAck:
        if (c.state == Client::State::kAwaitByeAck ||
            c.state == Client::State::kRun) {
          c.state = Client::State::kDone;  // server shutdown counts too
        }
        return;
      case wire::MsgType::kError:
        ++c.protocol_errors;
        c.state = Client::State::kFailed;
        return;
      default:
        ++c.protocol_errors;
        c.state = Client::State::kFailed;
        return;
    }
  }
}

/// One scheduling step: send the next scripted request when idle.
void step_client(Client& c, RunMetrics& metrics, std::size_t w,
                 std::size_t h, std::uint64_t now) {
  if (c.state == Client::State::kDone ||
      c.state == Client::State::kFailed) {
    return;
  }
  if (c.state == Client::State::kConnect) {
    if (!c.io->open()) {
      c.state = Client::State::kFailed;
      return;
    }
    c.reader = wire::FrameReader();
    const std::uint32_t id = c.next_request++;
    c.io->send(wire::encode(
        wire::Message{wire::MsgType::kHello, id, 0, c.token}));
    c.send_stamp = now;
    c.state = Client::State::kAwaitWelcome;
    return;
  }
  process_frames(c, metrics, now);
  if (c.state != Client::State::kRun || c.awaiting_reply) {
    return;
  }
  // Mid-script reconnect drill: drop the connection and resume by token.
  if (c.will_reconnect && !c.reconnected && c.next_op >= c.ops_total / 2) {
    c.reconnected = true;
    ++metrics.reconnects_attempted;
    c.io->disconnect();
    c.state = Client::State::kConnect;
    return;
  }
  if (c.next_op < c.ops_total) {
    const Op op = make_op(c.index, c.next_op, w, h);
    ++c.next_op;
    const std::uint32_t id = c.next_request++;
    c.current_request = id;
    c.current_remote = op.remote;
    c.current_inject = op.inject;
    if (op.inject) {
      ++c.injections;
    }
    ++c.commands;
    c.send_stamp = now;
    c.awaiting_reply = true;
    c.io->send(wire::encode(wire::Message{op.type, id, 0, op.payload}));
    return;
  }
  if (c.pending_async == 0) {
    const std::uint32_t id = c.next_request++;
    c.io->send(
        wire::encode(wire::Message{wire::MsgType::kBye, id, 0, ""}));
    c.state = Client::State::kAwaitByeAck;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients_n = 64;
  std::size_t ops = 16;
  bool smoke = false;
  bool clients_set = false;
  bool ops_set = false;
  std::string connect_spec;
  std::size_t width = 8;
  std::size_t height = 8;
  std::uint64_t seed = 1;
  std::size_t queue_cap = 1024;
  sim::SimTime slice = 2 * sim::kMillisecond;
  std::string out_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--clients") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--clients expects a number");
      }
      clients_n = std::strtoull(value, nullptr, 10);
      clients_set = true;
    } else if (arg == "--ops") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--ops expects a number");
      }
      ops = std::strtoull(value, nullptr, 10);
      ops_set = true;
    } else if (arg == "--loopback") {
      connect_spec.clear();
    } else if (arg == "--connect") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--connect expects HOST:PORT");
      }
      connect_spec = value;
    } else if (arg == "--grid") {
      const char* value = next();
      if (value == nullptr ||
          std::sscanf(value, "%zux%zu", &width, &height) != 2 ||
          width == 0 || height == 0) {
        return fail_usage("--grid expects WxH");
      }
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--seed expects a number");
      }
      seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--queue-cap") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--queue-cap expects a number");
      }
      queue_cap = std::strtoull(value, nullptr, 10);
    } else if (arg == "--slice-ms") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--slice-ms expects a number");
      }
      slice = std::strtoull(value, nullptr, 10) * sim::kMillisecond;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) {
        return fail_usage("--out expects a path");
      }
      out_file = value;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      print_usage();
      return fail_usage(("unknown option '" + arg + "'").c_str());
    }
  }
  if (smoke) {
    if (!clients_set) {
      clients_n = 64;
    }
    if (!ops_set) {
      ops = 8;
    }
  }
  if (clients_n == 0 || ops == 0) {
    return fail_usage("--clients and --ops must be positive");
  }

  const bool loopback = connect_spec.empty();
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  if (!loopback) {
    const auto colon = connect_spec.rfind(':');
    if (colon == std::string::npos) {
      return fail_usage("--connect expects HOST:PORT");
    }
    tcp_host = connect_spec.substr(0, colon);
    tcp_port = static_cast<std::uint16_t>(
        std::atoi(connect_spec.c_str() + colon + 1));
  }

  // Loopback world: deployment + service + transport, all in-process.
  std::unique_ptr<api::Deployment> deployment;
  std::unique_ptr<svc::LoopbackTransport> transport;
  std::unique_ptr<svc::GatewayService> service;
  if (loopback) {
    api::SimulationBuilder builder;
    builder.grid(width, height).seed(seed);
    deployment = builder.build();
    transport = std::make_unique<svc::LoopbackTransport>();
    svc::ServiceOptions options;
    options.max_sessions = std::max<std::size_t>(clients_n + 8, 1024);
    options.queue_cap = queue_cap;
    service = std::make_unique<svc::GatewayService>(*deployment,
                                                    *transport, options);
  }

  auto clock_now = [&]() -> std::uint64_t {
    if (loopback) {
      return deployment->simulator().now();
    }
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };

  std::vector<Client> clients(clients_n);
  for (std::size_t i = 0; i < clients_n; ++i) {
    Client& c = clients[i];
    c.index = i;
    c.ops_total = ops;
    c.will_reconnect = (i % 8 == 3) && ops >= 4;
    if (loopback) {
      c.io = std::make_unique<LoopbackIo>(*transport);
    } else {
      c.io = std::make_unique<TcpIo>(tcp_host, tcp_port);
    }
  }

  RunMetrics metrics;
  const std::uint64_t vtime_start = loopback ? clock_now() : 0;
  // Scheduling loop: every client gets one step, then the world turns
  // (service pump + one simulation slice on loopback; a short sleep on
  // TCP, where the daemon runs the world). Hard iteration cap so a
  // protocol bug cannot hang the harness.
  constexpr std::size_t kMaxIterations = 2'000'000;
  std::size_t iterations = 0;
  for (; iterations < kMaxIterations; ++iterations) {
    bool all_settled = true;
    for (Client& c : clients) {
      step_client(c, metrics, width, height, clock_now());
      if (c.state != Client::State::kDone &&
          c.state != Client::State::kFailed) {
        all_settled = false;
      }
    }
    if (all_settled) {
      break;
    }
    if (loopback) {
      service->pump();
      deployment->run_for(slice);
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  const std::uint64_t vtime_end = loopback ? clock_now() : 0;

  // ----------------------------------------------------------- tallies
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t commands = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;
  std::uint64_t injections = 0;
  std::uint64_t injections_ok = 0;
  std::uint64_t async_ok = 0;
  std::uint64_t async_failed = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t combined = kFnvOffset;
  for (const Client& c : clients) {
    done += c.state == Client::State::kDone ? 1 : 0;
    failed += c.state == Client::State::kDone ? 0 : 1;
    commands += c.commands;
    replies_ok += c.replies_ok;
    replies_error += c.replies_error;
    injections += c.injections;
    injections_ok += c.injections_ok;
    async_ok += c.async_ok;
    async_failed += c.async_failed;
    events += c.events;
    drops += c.drops_reported;
    protocol_errors += c.protocol_errors;
    fnv_mix(&combined, &c.transcript, sizeof(c.transcript));
  }
  const double virtual_s =
      static_cast<double>(vtime_end - vtime_start) / 1e6;
  const double inject_rate =
      loopback && virtual_s > 0.0
          ? static_cast<double>(injections_ok) / virtual_s
          : 0.0;

  harness::JsonWriter json(2);
  json.begin_object();
  json.key("mode").value(loopback ? "loopback" : "tcp");
  json.key("clients").value(static_cast<std::uint64_t>(clients_n));
  json.key("ops_per_client").value(static_cast<std::uint64_t>(ops));
  if (loopback) {
    json.key("grid").value(std::to_string(width) + "x" +
                           std::to_string(height));
    json.key("seed").value(seed);
    json.key("virtual_seconds").value(virtual_s);
  }
  json.key("completed").value(done);
  json.key("failed").value(failed);
  json.key("iterations").value(static_cast<std::uint64_t>(iterations));
  json.key("commands").value(commands);
  json.key("replies_ok").value(replies_ok);
  json.key("replies_error").value(replies_error);
  json.key("injections").value(injections);
  json.key("injections_ok").value(injections_ok);
  json.key("injection_throughput_per_s").value(inject_rate);
  json.key("async_ok").value(async_ok);
  json.key("async_failed").value(async_failed);
  json.key("events_received").value(events);
  json.key("backpressure_drops").value(drops);
  json.key("reconnects_attempted").value(metrics.reconnects_attempted);
  json.key("reconnects_ok").value(metrics.reconnects_ok);
  json.key("reply_latency_us_p50")
      .value(percentile(metrics.reply_latency, 50));
  json.key("reply_latency_us_p95")
      .value(percentile(metrics.reply_latency, 95));
  json.key("reply_latency_us_p99")
      .value(percentile(metrics.reply_latency, 99));
  json.key("async_latency_us_p50")
      .value(percentile(metrics.async_latency, 50));
  json.key("async_latency_us_p95")
      .value(percentile(metrics.async_latency, 95));
  json.key("async_latency_us_p99")
      .value(percentile(metrics.async_latency, 99));
  json.key("protocol_errors").value(protocol_errors);
  if (loopback) {
    json.key("service_events_dropped")
        .value(service->stats().events_dropped);
    json.key("service_sessions_resumed")
        .value(service->stats().sessions_resumed);
    json.key("service_protocol_errors")
        .value(service->stats().protocol_errors);
    // Per-session transcript hashes: comparing this block across runs
    // asserts byte-identical session transcripts for a fixed seed.
    json.key("transcripts").begin_array();
    for (const Client& c : clients) {
      json.value(hash_hex(c.transcript));
    }
    json.end_array();
  }
  json.key("transcript_hash").value(hash_hex(combined));
  json.end_object();

  if (out_file.empty()) {
    std::printf("%s\n", json.str().c_str());
  } else {
    std::ofstream out(out_file);
    out << json.str() << "\n";
  }

  const bool ok = failed == 0 && protocol_errors == 0 &&
                  metrics.reconnects_ok == metrics.reconnects_attempted;
  if (smoke) {
    std::fprintf(stderr, "agilla_loadgen: %s (%llu clients, %llu ops)\n",
                 ok ? "PASS" : "FAIL",
                 static_cast<unsigned long long>(clients_n),
                 static_cast<unsigned long long>(ops));
  }
  return ok ? 0 : 1;
}

// agilla_sim: the experiment-harness CLI.
//
// Sweeps a scenario over a parameter grid of mesh sizes, packet-loss
// rates, and tuple-store backends, runs every trial on a worker pool, and
// emits deterministic JSON: for a fixed --seed the output is
// byte-identical whatever --threads is.
//
//   # 16x16 fire-tracking sweep, 2 loss rates, both stores, 8 trials/cell
//   $ agilla_sim --scenario fire_tracking --grid 16x16 --trials 8
//       --loss 0.0 --loss 0.05 --stores both --threads 8 --out fire.json
//
//   # Fig. 9/10 style hop sweep
//   $ agilla_sim --scenario smove --axis hops=1,2,3,4,5 --trials 20
//
//   $ agilla_sim --list
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/knob_registry.h"
#include "harness/mesh.h"
#include "harness/runner.h"

using namespace agilla;

namespace {

// Rough per-mote host footprint (middleware + queues + streams), used
// only to warn before very large meshes are attempted — the sharded
// engine handles 100k-mote grids, but they need host RAM.
constexpr double kApproxBytesPerMote = 12.0 * 1024.0;
constexpr std::size_t kWarnGridMotes = 64 * 64;

void print_usage() {
  std::printf(
      "usage: agilla_sim [options]\n"
      "  --scenario NAME      scenario to run (default: fire_tracking)\n"
      "  --list               list registered scenarios and exit\n"
      "  --list-scenarios     machine-readable scenario list (docs gate)\n"
      "  --list-knobs         machine-readable knob-registry table "
      "(docs gate)\n"
      "  --grid WxH           mesh size, repeatable (default: 5x5; large\n"
      "                       grids print a memory estimate — pair with\n"
      "                       --param sim_shards=K for parallel drain)\n"
      "  --trials N           trials per parameter cell (default: 8)\n"
      "  --loss P             packet-loss rate, repeatable (default: "
      "0.02)\n"
      "  --per-byte-loss P    extra per-on-air-byte loss (default: 0)\n"
      "  --stores KIND        linear | indexed | both (default: linear)\n"
      "  --axis NAME=V1,V2    extra sweep axis, repeatable (e.g. "
      "hops=1,2,3)\n"
      "  --param NAME=V       fixed scenario knob, repeatable\n"
      "  --seed S             base RNG seed (default: 1)\n"
      "  --duration SECONDS   virtual seconds per trial (default: 120)\n"
      "  --threads N          worker threads, 0 = hardware (default: 0)\n"
      "  --name NAME          experiment name in the JSON (default: "
      "scenario)\n"
      "  --out FILE           write JSON here and print a summary table;\n"
      "                       without --out the JSON goes to stdout\n");
}

void print_scenarios() {
  std::printf("registered scenarios:\n");
  for (const harness::ScenarioInfo& info : harness::scenarios()) {
    std::printf("  %-18s %s\n", info.name.c_str(),
                info.description.c_str());
    if (!info.knobs.empty()) {
      std::string knobs;
      for (const std::string& knob : info.knobs) {
        knobs += (knobs.empty() ? "" : ", ") + knob;
      }
      std::printf("  %-18s   knobs: %s\n", "", knobs.c_str());
    }
  }
}

// Machine-readable listings, consumed by the docs-consistency gate in
// scripts/check.sh: the committed tables in docs/MANUAL.md must match
// this output byte for byte, so MANUAL.md cannot drift from the binary.
void print_scenario_lines() {
  for (const harness::ScenarioInfo& info : harness::scenarios()) {
    std::printf("%s | %s\n", info.name.c_str(), info.description.c_str());
  }
}

/// One line per registry knob — name, type, unit, default, range, scope
/// (shared = every mesh-backed scenario), doc. Generated solely from the
/// KnobRegistry, so this listing (and the MANUAL.md block the gate
/// checks against it) cannot drift from what the binary accepts.
void print_knob_lines() {
  for (const api::KnobInfo& knob : api::knob_registry()) {
    std::printf("%s | %s | %s | default %s | range %s | %s | %s\n",
                knob.name, std::string(api::to_string(knob.type)).c_str(),
                knob.unit, api::default_to_string(knob).c_str(),
                api::range_to_string(knob).c_str(),
                knob.shared() ? "shared" : knob.scenarios, knob.doc);
  }
}

std::optional<double> parse_double(std::string_view s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size()) {
      return std::nullopt;
    }
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<double> parse_double_list(std::string_view s, bool& ok) {
  std::vector<double> values;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view item = s.substr(0, comma);
    const auto v = parse_double(item);
    if (!v) {
      ok = false;
      return values;
    }
    values.push_back(*v);
    if (comma == std::string_view::npos) {
      break;
    }
    s.remove_prefix(comma + 1);
  }
  ok = !values.empty();
  return values;
}

/// One human-readable line per cell: the cell coordinates plus every
/// metric's mean (the JSON holds the full distributions).
void print_summary(const harness::ExperimentResult& result) {
  std::printf("experiment %s (scenario %s): %zu cells x %d trials\n",
              result.spec.name.c_str(), result.spec.scenario.c_str(),
              result.cells.size(), result.spec.trials);
  for (const harness::CellResult& cell : result.cells) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%zux%zu loss=%g %s",
                  cell.cell.grid.width, cell.cell.grid.height,
                  cell.cell.packet_loss, ts::to_string(cell.cell.store));
    std::string label = buf;
    for (const auto& [name, value] : cell.cell.axis_values) {
      std::snprintf(buf, sizeof(buf), " %s=%g", name.c_str(), value);
      label += buf;
    }
    std::printf("  %-40s", label.c_str());
    for (const auto& [name, aggregate] : cell.metrics) {
      std::printf(" %s=%.3g", name.c_str(), aggregate.summary.mean());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentSpec spec;
  spec.scenario = "fire_tracking";
  spec.grids.clear();
  spec.loss_rates.clear();
  spec.stores.clear();
  harness::RunnerOptions runner;
  std::string out_path;
  std::string name_override;

  const auto fail = [](const std::string& message) {
    std::fprintf(stderr, "agilla_sim: %s\n", message.c_str());
    return 2;
  };

  bool list_scenarios = false;
  bool list_knobs = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--list") {
      print_scenarios();
      return 0;
    }
    if (arg == "--list-scenarios") {
      list_scenarios = true;
      continue;
    }
    if (arg == "--list-knobs") {
      list_knobs = true;
      continue;
    }
    if (i + 1 >= argc) {
      return fail("missing value for " + std::string(arg));
    }
    const std::string_view value = argv[++i];
    if (arg == "--scenario") {
      spec.scenario = value;
    } else if (arg == "--grid") {
      const auto grid = harness::parse_grid(value);
      if (!grid) {
        return fail("bad --grid (want WxH): " + std::string(value));
      }
      if (const std::size_t motes = grid->width * grid->height;
          motes > kWarnGridMotes) {
        std::fprintf(stderr,
                     "agilla_sim: note: %zux%zu = %zu motes, roughly "
                     "%.1f GiB of host memory per concurrent trial; "
                     "consider --threads 1 --param sim_shards=8\n",
                     grid->width, grid->height, motes,
                     static_cast<double>(motes) * kApproxBytesPerMote /
                         (1024.0 * 1024.0 * 1024.0));
      }
      spec.grids.push_back(*grid);
    } else if (arg == "--trials") {
      spec.trials = std::atoi(std::string(value).c_str());
      if (spec.trials <= 0) {
        return fail("bad --trials: " + std::string(value));
      }
    } else if (arg == "--loss") {
      const auto loss = parse_double(value);
      if (!loss || *loss < 0.0 || *loss >= 1.0) {
        return fail("bad --loss (want [0,1)): " + std::string(value));
      }
      spec.loss_rates.push_back(*loss);
    } else if (arg == "--per-byte-loss") {
      const auto loss = parse_double(value);
      if (!loss || *loss < 0.0) {
        return fail("bad --per-byte-loss: " + std::string(value));
      }
      spec.per_byte_loss = *loss;
    } else if (arg == "--stores" || arg == "--store") {
      if (value == "both") {
        spec.stores = {ts::StoreKind::kLinear, ts::StoreKind::kIndexed};
      } else {
        const auto kind = ts::store_kind_from_string(value);
        if (!kind) {
          return fail("bad --stores (linear|indexed|both): " +
                      std::string(value));
        }
        spec.stores.push_back(*kind);
      }
    } else if (arg == "--axis") {
      const std::size_t eq = value.find('=');
      bool ok = false;
      if (eq != std::string_view::npos && eq > 0) {
        harness::Axis axis;
        axis.name = std::string(value.substr(0, eq));
        axis.values = parse_double_list(value.substr(eq + 1), ok);
        if (ok) {
          spec.axes.push_back(std::move(axis));
        }
      }
      if (!ok) {
        return fail("bad --axis (want name=v1,v2,...): " +
                    std::string(value));
      }
    } else if (arg == "--param") {
      const std::size_t eq = value.find('=');
      std::optional<double> v;
      if (eq != std::string_view::npos && eq > 0) {
        v = parse_double(value.substr(eq + 1));
      }
      if (!v) {
        return fail("bad --param (want name=value): " +
                    std::string(value));
      }
      spec.params[std::string(value.substr(0, eq))] = *v;
    } else if (arg == "--seed") {
      spec.base_seed =
          std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      const auto seconds = parse_double(value);
      if (!seconds || *seconds <= 0.0) {
        return fail("bad --duration: " + std::string(value));
      }
      spec.duration = static_cast<sim::SimTime>(*seconds * 1e6);
    } else if (arg == "--threads") {
      runner.threads =
          static_cast<unsigned>(std::atoi(std::string(value).c_str()));
    } else if (arg == "--name") {
      name_override = value;
    } else if (arg == "--out") {
      out_path = value;
    } else {
      print_usage();
      return fail("unknown option: " + std::string(arg));
    }
  }

  if (list_scenarios || list_knobs) {
    if (list_scenarios) {
      print_scenario_lines();
    }
    if (list_knobs) {
      print_knob_lines();
    }
    return 0;
  }

  const harness::ScenarioInfo* scenario =
      harness::find_scenario(spec.scenario);
  if (scenario == nullptr) {
    print_scenarios();
    return fail("unknown scenario: " + spec.scenario);
  }
  // Reject knobs the scenario does not understand instead of silently
  // sweeping (or fixing) a value nothing reads.
  if (!scenario->knobs.empty()) {
    const auto check_knob = [&](const std::string& name,
                                const char* flag) -> std::string {
      if (std::find(scenario->knobs.begin(), scenario->knobs.end(),
                    name) != scenario->knobs.end()) {
        return "";
      }
      std::string valid;
      for (const std::string& knob : scenario->knobs) {
        valid += (valid.empty() ? "" : ", ") + knob;
      }
      return "unknown " + std::string(flag) + " '" + name +
             "' for scenario " + spec.scenario + " (valid: " + valid + ")";
    };
    for (const harness::Axis& axis : spec.axes) {
      if (std::string error = check_knob(axis.name, "--axis");
          !error.empty()) {
        return fail(error);
      }
    }
    for (const auto& [name, value] : spec.params) {
      if (std::string error = check_knob(name, "--param");
          !error.empty()) {
        return fail(error);
      }
    }
  }
  // Range/type validation against the knob registry: an out-of-range
  // value is rejected with the registry's range and unit, so a typo'd
  // magnitude cannot silently run a nonsensical sweep. Knobs of
  // externally registered scenarios have no registry entry and pass.
  const auto range_check = [](const char* flag, const std::string& name,
                              double value) -> std::string {
    const api::KnobInfo* knob = api::find_knob(name);
    if (knob == nullptr) {
      return "";
    }
    const std::string error = api::validate_knob(*knob, value);
    return error.empty() ? "" : "bad " + std::string(flag) + ": " + error;
  };
  for (const harness::Axis& axis : spec.axes) {
    for (const double value : axis.values) {
      if (std::string error = range_check("--axis", axis.name, value);
          !error.empty()) {
        return fail(error);
      }
    }
  }
  for (const auto& [name, value] : spec.params) {
    if (std::string error = range_check("--param", name, value);
        !error.empty()) {
      return fail(error);
    }
  }
  if (spec.grids.empty()) {
    spec.grids.push_back(harness::GridSize{5, 5});
  }
  if (spec.loss_rates.empty()) {
    spec.loss_rates.push_back(harness::kDefaultLoss);
  }
  if (spec.stores.empty()) {
    spec.stores.push_back(ts::StoreKind::kLinear);
  }
  spec.name = name_override.empty() ? spec.scenario : name_override;

  const harness::ExperimentResult result =
      harness::run_experiment(spec, runner);
  const std::string json = to_json(result);

  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      return fail("cannot write " + out_path);
    }
    out << json << "\n";
    out.close();
    print_summary(result);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

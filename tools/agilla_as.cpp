// agilla_as — the Agilla assembler as a command-line tool.
//
//   agilla_as prog.aga               assemble to prog.bin
//   agilla_as -o out.bin prog.aga    assemble to a chosen path
//   agilla_as -o - prog.aga          assemble to stdout (raw bytes)
//   agilla_as -d prog.bin            disassemble bytecode to stdout
//   agilla_as --check prog.aga ...   round-trip gate: assemble, then
//                                    assemble(disassemble(code)) and fail
//                                    unless the bytes are identical
//
// Errors are printed as `file:line: message`, one per line, and the exit
// status is non-zero on any failure — usable directly from CI.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/assembler.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: agilla_as [-o OUT] PROG.aga        assemble\n"
      "       agilla_as -d PROG.bin              disassemble to stdout\n"
      "       agilla_as --check PROG.aga ...     round-trip gate\n");
  return 2;
}

bool read_binary(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  out->assign(bytes.begin(), bytes.end());
  return true;
}

std::string default_output(const std::string& input) {
  const auto dot = input.rfind('.');
  const std::string stem =
      dot == std::string::npos ? input : input.substr(0, dot);
  return stem + ".bin";
}

int assemble_one(const std::string& input, const std::string& output) {
  const agilla::core::AssemblyResult result =
      agilla::core::assemble_file(input);
  if (!result.ok()) {
    std::fputs(result.error_text().c_str(), stderr);
    return 1;
  }
  if (output == "-") {
    std::fwrite(result.code.data(), 1, result.code.size(), stdout);
    return 0;
  }
  std::ofstream out(output, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "agilla_as: cannot write '%s'\n", output.c_str());
    return 1;
  }
  out.write(reinterpret_cast<const char*>(result.code.data()),
            static_cast<std::streamsize>(result.code.size()));
  std::fprintf(stderr, "%s: %zu bytes -> %s\n", input.c_str(),
               result.code.size(), output.c_str());
  return 0;
}

int disassemble_one(const std::string& input) {
  std::vector<std::uint8_t> code;
  if (!read_binary(input, &code)) {
    std::fprintf(stderr, "agilla_as: cannot read '%s'\n", input.c_str());
    return 1;
  }
  std::fputs(agilla::core::disassemble(code).c_str(), stdout);
  return 0;
}

/// The grader-facing contract: disassembly must re-assemble to the exact
/// original bytes for every corpus program.
int check_one(const std::string& input) {
  const agilla::core::AssemblyResult first =
      agilla::core::assemble_file(input);
  if (!first.ok()) {
    std::fputs(first.error_text().c_str(), stderr);
    return 1;
  }
  const std::string text = agilla::core::disassemble(first.code);
  const agilla::core::AssemblyResult second = agilla::core::assemble(text);
  if (!second.ok()) {
    std::fprintf(stderr, "%s: disassembly does not re-assemble:\n%s",
                 input.c_str(), second.error_text().c_str());
    return 1;
  }
  if (second.code != first.code) {
    std::fprintf(stderr,
                 "%s: round trip mismatch (%zu bytes in, %zu bytes out)\n",
                 input.c_str(), first.code.size(), second.code.size());
    return 1;
  }
  std::fprintf(stderr, "%s: round trip ok (%zu bytes)\n", input.c_str(),
               first.code.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  bool disassemble = false;
  bool check = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) {
        return usage();
      }
      output = argv[i];
    } else if (arg == "-d" || arg == "--disassemble") {
      disassemble = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "agilla_as: unknown option '%s'\n", arg.c_str());
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() || (disassemble && check)) {
    return usage();
  }

  int status = 0;
  for (const std::string& input : inputs) {
    if (check) {
      status |= check_one(input);
    } else if (disassemble) {
      status |= disassemble_one(input);
    } else {
      status |= assemble_one(
          input, output.empty() ? default_output(input) : output);
    }
  }
  return status;
}

#!/usr/bin/env bash
# Tier-1 verify, exactly as CI and the roadmap run it:
#   cmake configure + build + full ctest suite.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

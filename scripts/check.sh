#!/usr/bin/env bash
# Tier-1 verify, exactly as CI and the roadmap run it:
#   format check (when clang-format is available) + cmake configure +
#   build + full ctest suite.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format (dry run) =="
  git ls-files '*.h' '*.cpp' | xargs clang-format --dry-run -Werror
else
  echo "== clang-format not found; skipping format check =="
fi

cmake -B build -S . "$@"
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== docs consistency: MANUAL.md vs agilla_sim listings =="
# The two generated blocks in docs/MANUAL.md must match the binary's
# --list-scenarios / --list-knobs output byte for byte.
extract_block() {  # $1 = marker suffix ("--list-scenarios" | "--list-knobs")
  awk -v marker="$1" '
    $0 ~ "BEGIN generated: agilla_sim " marker { grab = 1; next }
    grab && /^```/ { if (inside) { exit } inside = 1; next }
    grab && inside { print }
  ' docs/MANUAL.md
}
extract_block "--list-scenarios" > build/manual_scenarios.txt
extract_block "--list-knobs" > build/manual_knobs.txt
./build/agilla_sim --list-scenarios > build/actual_scenarios.txt
./build/agilla_sim --list-knobs > build/actual_knobs.txt
diff -u build/manual_scenarios.txt build/actual_scenarios.txt \
  || { echo "docs/MANUAL.md scenario table is stale — paste in the output of: agilla_sim --list-scenarios"; exit 1; }
diff -u build/manual_knobs.txt build/actual_knobs.txt \
  || { echo "docs/MANUAL.md knob table is stale — paste in the output of: agilla_sim --list-knobs"; exit 1; }

echo "== examples build-and-run gate =="
# Every examples/ binary must run to completion against the embedding
# API (they are the API's reference users; compiling is not enough).
for example in quickstart fire_tracking intruder_tracking \
               habitat_multiapp search_rescue; do
  ./build/"$example" > /dev/null
  echo "example $example ran clean"
done

echo "== VM dispatch smoke (threaded not slower than switch) =="
# Runs both dispatch modes on every throughput workload and fails if the
# pre-decoded threaded dispatch is ever slower than the reference switch
# interpreter (DESIGN.md "VM dispatch").
./build/bench_vm_throughput --smoke

echo "== dispatch-mode sweep equivalence (switch vs threaded) =="
dispatch_sweep() {  # $1 = vm_dispatch value, $2 = out file
  ./build/agilla_sim --scenario fire_tracking --grid 4x4 --trials 2 \
    --duration 40 --param vm_dispatch="$1" --out "$2" > /dev/null
}
dispatch_sweep 0 build/dispatch_switch.json
dispatch_sweep 1 build/dispatch_threaded.json
# The echoed vm_dispatch param is the one intended difference.
sed '/"vm_dispatch":/d' build/dispatch_switch.json > build/dispatch_switch_norm.json
sed '/"vm_dispatch":/d' build/dispatch_threaded.json > build/dispatch_threaded_norm.json
cmp build/dispatch_switch_norm.json build/dispatch_threaded_norm.json
echo "fire_tracking sweep byte-identical across dispatch modes"

echo "== routing-sweep determinism (threads 1 vs 8) =="
routing_sweep() {  # $1 = threads, $2 = out file
  ./build/agilla_sim --scenario report_collection --grid 4x4 --trials 2 \
    --duration 60 --param battery_mj=800 --param duty_cycle=0.2 \
    --param adaptive_lpl=1 --axis route_policy=0,1 \
    --threads "$1" --out "$2" > /dev/null
}
routing_sweep 1 build/routing_t1.json
routing_sweep 8 build/routing_t8.json
cmp build/routing_t1.json build/routing_t8.json
echo "routing sweep byte-identical across thread counts"

echo "== sharded-engine determinism (shards 1 vs 4) =="
shard_sweep() {  # $1 = sim_shards, $2 = out file
  ./build/agilla_sim --scenario fire_tracking --grid 16x16 --trials 2 \
    --duration 30 --threads 1 --param sim_shards="$1" \
    --out "$2" > /dev/null
}
shard_sweep 1 build/shards_1.json
shard_sweep 4 build/shards_4.json
# The echoed sim_shards param is the one intended difference.
sed '/"sim_shards":/d' build/shards_1.json > build/shards_1_norm.json
sed '/"sim_shards":/d' build/shards_4.json > build/shards_4_norm.json
cmp build/shards_1_norm.json build/shards_4_norm.json
./build/bench_scale --smoke > /dev/null
echo "fire_tracking sweep byte-identical across shard counts"

echo "== agent toolchain: corpus round trip + conformance grade =="
# Every corpus program must survive assemble -> disassemble -> reassemble
# byte-identically, and the grader must reproduce every .expect dump.
./build/agilla_as --check tests/agents/*.aga
./build/agilla_grade tests/agents
# The xfail program's deliberately wrong .expect must make the grader
# exit non-zero (with a diff on stdout) when the inversion is disabled:
# this proves a real regression cannot slip through as a silent pass.
if ./build/agilla_grade --strict tests/agents/broken_expect_xfail.aga \
    > build/grade_broken.txt 2>&1; then
  echo "grader failed to flag a broken .expect"; exit 1
fi
grep -q '^  - ' build/grade_broken.txt
grep -q '^  + ' build/grade_broken.txt
echo "grader corpus green; broken .expect flagged with a diff"

echo "== gateway smoke: loopback determinism (64 clients, 2 runs) =="
# The loadgen exits non-zero on any protocol error, failed client, or
# failed reconnect; two identical-seed runs must produce byte-identical
# metrics (per-session transcript hashes included).
loadgen_loopback() {  # $1 = out file
  ./build/agilla_loadgen --loopback --grid 8x8 --seed 7 --clients 64 \
    --smoke --out "$1" > /dev/null
}
loadgen_loopback build/loadgen_a.json
loadgen_loopback build/loadgen_b.json
cmp build/loadgen_a.json build/loadgen_b.json
grep -q '"protocol_errors": 0' build/loadgen_a.json
echo "gateway loopback smoke byte-identical across runs"

echo "== gateway smoke: live TCP daemon round trip =="
rm -f build/gatewayd_port build/gatewayd_metrics.json
# Background ONLY the daemon command ($! must be the daemon, not a
# compound-statement subshell, or the TERM below orphans it).
./build/agilla_gatewayd --grid 8x8 --seed 7 --listen 127.0.0.1:0 \
  --port-file build/gatewayd_port --metrics build/gatewayd_metrics.json &
GWPID=$!
for _ in $(seq 1 100); do
  [ -s build/gatewayd_port ] && break
  sleep 0.1
done
[ -s build/gatewayd_port ] || { echo "gatewayd never published its port"; kill "$GWPID"; exit 1; }
./build/agilla_loadgen --connect "127.0.0.1:$(cat build/gatewayd_port)" \
  --clients 64 --smoke --out build/loadgen_tcp.json > /dev/null
kill -TERM "$GWPID"
wait "$GWPID"
grep -q '"protocol_errors": 0' build/loadgen_tcp.json
# Graceful TERM: the daemon drains sessions and flushes its metrics.
[ -s build/gatewayd_metrics.json ]
grep -q '"sessions_opened"' build/gatewayd_metrics.json
echo "gateway TCP smoke clean; daemon drained on SIGTERM"

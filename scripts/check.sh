#!/usr/bin/env bash
# Tier-1 verify, exactly as CI and the roadmap run it:
#   format check (when clang-format is available) + cmake configure +
#   build + full ctest suite.
# Usage: scripts/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v clang-format >/dev/null 2>&1; then
  echo "== clang-format (dry run) =="
  git ls-files '*.h' '*.cpp' | xargs clang-format --dry-run -Werror
else
  echo "== clang-format not found; skipping format check =="
fi

cmake -B build -S . "$@"
cmake --build build -j
cd build
ctest --output-on-failure -j "$(nproc)"

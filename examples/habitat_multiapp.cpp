// Multiple applications sharing one deployed network (paper Secs. 1/2.2),
// on the public embedding API: a habitat-monitoring application logs
// temperature readings while a fire application runs beside it. When fire
// is detected the two coordinate WITHOUT knowing each other — purely
// through the <"fir", loc> tuple: the habitat monitor reacts and
// voluntarily dies, freeing its resources.
//
//   $ ./examples/habitat_multiapp
#include <cstdio>

#include "api/agilla.h"

using namespace agilla;

int main() {
  auto net = api::SimulationBuilder()
                 .grid(3, 1)
                 .seed(3)
                 .packet_loss(0.02)
                 .build();

  // Ambient 20 C; a fire ignites near node (3,1) at t = 120 s.
  net->environment().set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {3, 1},
          .ignition_time = 120 * sim::kSecond,
          .spread_speed = 0.01,
          .peak = 450.0,
          .ambient = 20.0,
          .edge_decay = 0.4}));

  core::BaseStation base = net->base();

  // Application 1: habitat monitoring on every node (a biologist's app).
  std::puts("injecting habitat monitors on all three motes...");
  for (std::size_t i = 0; i < net->mote_count(); ++i) {
    if (i == 0) {
      base.inject(core::agents::habitat_monitor(/*sample_ticks=*/64));
    } else {
      base.inject_at(
          core::assemble_or_die(core::agents::habitat_monitor(64)),
          net->mote(i).location());
    }
  }
  // Application 2: fire detection, sharing the same motes.
  std::puts("injecting a fire detector (a fire marshal's app)...");
  base.inject(core::agents::fire_detector(/*alert_to=*/{1, 1},
                                          /*threshold=*/200,
                                          /*sample_ticks=*/32));

  const ts::Template hab_log{
      ts::Value::string("hab"),
      ts::Value::type_wildcard(ts::ValueType::kReading)};
  const ts::Template fire_alert{
      ts::Value::string("fir"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  bool alert_relayed = false;
  for (int tick = 0; tick < 8; ++tick) {
    net->run_for(30 * sim::kSecond);
    const auto alert = net->mote(0).tuple_space().rdp(fire_alert);
    std::printf(
        "t=%3.0fs  live agents: %zu   habitat log tuples: %zu   fire "
        "alert at base: %s\n",
        static_cast<double>(net->simulator().now()) / 1e6,
        net->agent_count(), net->tuples_matching(hab_log),
        alert.has_value() ? "YES" : "no");
    if (alert.has_value() && !alert_relayed) {
      // The base-station operator relays the evacuation order by dropping
      // the same alert tuple onto every mote — the habitat monitors react
      // to it with zero knowledge of who produced it.
      alert_relayed = true;
      std::puts("        -> base relays the alert tuple to every mote");
      for (std::size_t i = 1; i < net->mote_count(); ++i) {
        base.rout(net->mote(i).location(),
                  ts::Tuple{ts::Value::string("fir"),
                            alert->field(1)});
      }
    }
  }

  std::puts("");
  std::puts("After the alert every habitat monitor saw a <\"fir\", loc>");
  std::puts("tuple in its local tuple space, reacted, and halted — two");
  std::puts("applications coordinated with zero mutual knowledge, exactly");
  std::puts("the decoupling argument of paper Sec. 2.2.");

  // Show that the monitors near the fire are gone while their logged data
  // remains available in the tuple spaces.
  for (std::size_t i = 0; i < net->mote_count(); ++i) {
    core::AgillaMiddleware& mote = net->mote(i);
    std::printf("  mote (%.0f,%.0f): %zu agents, %zu habitat readings kept\n",
                mote.location().x, mote.location().y,
                mote.agents().count(),
                mote.tuple_space().tcount(hab_log));
  }
  return 0;
}

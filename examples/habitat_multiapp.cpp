// Multiple applications sharing one deployed network (paper Secs. 1/2.2):
// a habitat-monitoring application logs temperature readings while a fire
// application runs beside it. When fire is detected the two coordinate
// WITHOUT knowing each other — purely through the <"fir", loc> tuple: the
// habitat monitor reacts and voluntarily dies, freeing its resources.
//
//   $ ./examples/habitat_multiapp
#include <cstdio>

#include "core/agent_library.h"
#include "core/injector.h"
#include "core/middleware.h"
#include "sim/topology.h"

using namespace agilla;

int main() {
  sim::Simulator simulator(/*seed=*/3);
  sim::Network network(
      simulator, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                     .packet_loss = 0.02}));
  const sim::Topology grid = sim::make_grid(network, 3, 1);

  // Ambient 20 C; a fire ignites near node (3,1) at t = 120 s.
  sim::SensorEnvironment environment;
  environment.set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(sim::FireField::Options{
          .ignition_point = {3, 1},
          .ignition_time = 120 * sim::kSecond,
          .spread_speed = 0.01,
          .peak = 450.0,
          .ambient = 20.0,
          .edge_decay = 0.4}));

  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes;
  for (const sim::NodeId id : grid.nodes) {
    motes.push_back(
        std::make_unique<core::AgillaMiddleware>(network, id, &environment));
    motes.back()->start();
  }
  simulator.run_for(5 * sim::kSecond);

  core::BaseStation base(*motes.front());

  // Application 1: habitat monitoring on every node (a biologist's app).
  std::puts("injecting habitat monitors on all three motes...");
  for (std::size_t i = 0; i < motes.size(); ++i) {
    if (i == 0) {
      base.inject(core::agents::habitat_monitor(/*sample_ticks=*/64));
    } else {
      base.inject_at(
          core::assemble_or_die(core::agents::habitat_monitor(64)),
          motes[i]->location());
    }
  }
  // Application 2: fire detection, sharing the same motes.
  std::puts("injecting a fire detector (a fire marshal's app)...");
  base.inject(core::agents::fire_detector(/*alert_to=*/{1, 1},
                                          /*threshold=*/200,
                                          /*sample_ticks=*/32));

  const ts::Template hab_log{
      ts::Value::string("hab"),
      ts::Value::type_wildcard(ts::ValueType::kReading)};
  const ts::Template fire_alert{
      ts::Value::string("fir"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  bool alert_relayed = false;
  for (int tick = 0; tick < 8; ++tick) {
    simulator.run_for(30 * sim::kSecond);
    std::size_t logs = 0;
    std::size_t agents = 0;
    for (const auto& mote : motes) {
      agents += mote->agents().count();
      logs += mote->tuple_space().tcount(hab_log);
    }
    const auto alert = motes.front()->tuple_space().rdp(fire_alert);
    std::printf(
        "t=%3.0fs  live agents: %zu   habitat log tuples: %zu   fire "
        "alert at base: %s\n",
        static_cast<double>(simulator.now()) / 1e6, agents, logs,
        alert.has_value() ? "YES" : "no");
    if (alert.has_value() && !alert_relayed) {
      // The base-station operator relays the evacuation order by dropping
      // the same alert tuple onto every mote — the habitat monitors react
      // to it with zero knowledge of who produced it.
      alert_relayed = true;
      std::puts("        -> base relays the alert tuple to every mote");
      for (std::size_t i = 1; i < motes.size(); ++i) {
        base.rout(motes[i]->location(),
                  ts::Tuple{ts::Value::string("fir"),
                            alert->field(1)});
      }
    }
  }

  std::puts("");
  std::puts("After the alert every habitat monitor saw a <\"fir\", loc>");
  std::puts("tuple in its local tuple space, reacted, and halted — two");
  std::puts("applications coordinated with zero mutual knowledge, exactly");
  std::puts("the decoupling argument of paper Sec. 2.2.");

  // Show that the monitors near the fire are gone while their logged data
  // remains available in the tuple spaces.
  for (const auto& mote : motes) {
    std::printf("  mote (%.0f,%.0f): %zu agents, %zu habitat readings kept\n",
                mote->location().x, mote->location().y,
                mote->agents().count(),
                mote->tuple_space().tcount(hab_log));
  }
  return 0;
}

// The paper's Sec. 1 programming-model claim, running on the public
// embedding API: "instead of worrying about how nodes must coordinate to
// track an intruder, a mobile agent programmer can think of an agent
// following the intruder by repeatedly migrating to the node that best
// detects it."
//
// An intruder (a moving magnetometer source) patrols the field; SENTINEL
// agents on every node publish their current reading as a tuple; a single
// PURSUER agent polls its neighbours' tuples with rrdp and strong-moves to
// whichever node hears the intruder loudest. An observer on the event bus
// counts the pursuer's migrations — the coordination the programmer never
// had to write.
//
//   $ ./examples/intruder_tracking
#include <cmath>
#include <cstdio>
#include <string>

#include "api/agilla.h"
#include "sim/stats.h"

using namespace agilla;

namespace {

constexpr std::size_t kGrid = 5;

/// The pursuer is wherever two agents share a node (sentinel + pursuer).
int pursuer_index(api::Deployment& net) {
  for (std::size_t i = 0; i < net.mote_count(); ++i) {
    if (net.mote(i).agents().count() >= 2) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

int main() {
  api::EventCounter counter;
  auto net = api::SimulationBuilder()
                 .grid(kGrid, kGrid)
                 .seed(17)
                 .packet_loss(0.02)
                 .observe(counter)
                 .build();

  // The intruder walks the perimeter of the field, slowly.
  const sim::MovingBumpField::Options intruder_options{
      .waypoints = {{1, 1}, {5, 1}, {5, 5}, {1, 5}},
      .speed = 0.05,
      .peak = 400.0,
      .sigma = 1.0,
      .ambient = 5.0,
      .loop = true};
  net->environment().set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(intruder_options));
  const sim::MovingBumpField intruder(intruder_options);  // for rendering

  core::BaseStation base = net->base();
  std::puts("injecting SENTINEL (flood-deploys, publishes <sig, reading>)");
  base.inject(core::agents::sentinel(/*sample_ticks=*/8));
  net->run_for(30 * sim::kSecond);  // let sentinels claim the grid
  const std::uint64_t deploy_migrations = counter.agent_migrations;
  std::puts("injecting PURSUER (follows the loudest magnetometer signal)\n");
  base.inject(core::agents::pursuer(/*nap_ticks=*/8));

  sim::Summary distance_track;
  for (int frame = 0; frame < 10; ++frame) {
    net->run_for(20 * sim::kSecond);
    const sim::Location truth = intruder.center(net->simulator().now());
    const int pursuer = pursuer_index(*net);
    if (pursuer >= 0) {
      const sim::Location at =
          net->mote(static_cast<std::size_t>(pursuer)).location();
      distance_track.add(distance(truth, at));
    }

    std::printf("t = %3.0f s   intruder at (%.1f,%.1f)\n",
                static_cast<double>(net->simulator().now()) / 1e6, truth.x,
                truth.y);
    for (std::size_t row = kGrid; row-- > 0;) {
      std::string line = "  ";
      for (std::size_t col = 0; col < kGrid; ++col) {
        const std::size_t index = row * kGrid + col;
        const sim::Location cell = net->mote(index).location();
        const bool is_intruder = distance(cell, truth) < 0.71;
        const bool is_pursuer = static_cast<int>(index) == pursuer;
        char glyph = '.';
        if (is_intruder && is_pursuer) {
          glyph = '@';  // caught!
        } else if (is_intruder) {
          glyph = 'I';
        } else if (is_pursuer) {
          glyph = 'P';
        }
        line += glyph;
        line += ' ';
      }
      std::puts(line.c_str());
    }
    std::puts("");
  }

  std::printf("mean pursuer-to-intruder distance: %.2f grid units "
              "(grid diagonal: %.1f)\n",
              distance_track.mean(), std::sqrt(2.0) * (kGrid - 1));
  std::printf("migrations during the chase (event bus): %llu\n",
              static_cast<unsigned long long>(counter.agent_migrations -
                                              deploy_migrations));
  std::puts("The pursuer's entire \"coordination protocol\" is 60 lines of");
  std::puts("agent assembly: sense, rrdp the neighbours, smove to the max.");
  return 0;
}

// The paper's Sec. 1 programming-model claim, running: "instead of
// worrying about how nodes must coordinate to track an intruder, a mobile
// agent programmer can think of an agent following the intruder by
// repeatedly migrating to the node that best detects it."
//
// An intruder (a moving magnetometer source) patrols the field; SENTINEL
// agents on every node publish their current reading as a tuple; a single
// PURSUER agent polls its neighbours' tuples with rrdp and strong-moves to
// whichever node hears the intruder loudest.
//
//   $ ./examples/intruder_tracking
#include <cmath>
#include <cstdio>
#include <string>

#include "core/agent_library.h"
#include "sim/stats.h"
#include "core/injector.h"
#include "core/middleware.h"
#include "sim/topology.h"

using namespace agilla;

namespace {

constexpr std::size_t kGrid = 5;

/// The pursuer is wherever its breadcrumb tuple is freshest: find the node
/// currently hosting 2 agents (sentinel + pursuer).
int pursuer_index(std::vector<std::unique_ptr<core::AgillaMiddleware>>& motes) {
  for (std::size_t i = 0; i < motes.size(); ++i) {
    if (motes[i]->agents().count() >= 2) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

int main() {
  sim::Simulator simulator(/*seed=*/17);
  sim::Network network(
      simulator, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                     .packet_loss = 0.02}));
  const sim::Topology grid = sim::make_grid(network, kGrid, kGrid);

  // The intruder walks the perimeter of the field, slowly.
  const sim::MovingBumpField::Options intruder_options{
      .waypoints = {{1, 1}, {5, 1}, {5, 5}, {1, 5}},
      .speed = 0.05,
      .peak = 400.0,
      .sigma = 1.0,
      .ambient = 5.0,
      .loop = true};
  sim::SensorEnvironment environment;
  environment.set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(intruder_options));
  const sim::MovingBumpField intruder(intruder_options);  // for rendering

  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes;
  for (const sim::NodeId id : grid.nodes) {
    motes.push_back(
        std::make_unique<core::AgillaMiddleware>(network, id, &environment));
    motes.back()->start();
  }
  simulator.run_for(5 * sim::kSecond);

  core::BaseStation base(*motes.front());
  std::puts("injecting SENTINEL (flood-deploys, publishes <sig, reading>)");
  base.inject(core::agents::sentinel(/*sample_ticks=*/8));
  simulator.run_for(30 * sim::kSecond);  // let sentinels claim the grid
  std::puts("injecting PURSUER (follows the loudest magnetometer signal)\n");
  base.inject(core::agents::pursuer(/*nap_ticks=*/8));

  sim::Summary distance_track;
  for (int frame = 0; frame < 10; ++frame) {
    simulator.run_for(20 * sim::kSecond);
    const sim::Location truth = intruder.center(simulator.now());
    const int pursuer = pursuer_index(motes);
    const sim::Location at =
        pursuer >= 0 ? motes[static_cast<std::size_t>(pursuer)]->location()
                     : sim::Location{0, 0};
    if (pursuer >= 0) {
      distance_track.add(distance(truth, at));
    }

    std::printf("t = %3.0f s   intruder at (%.1f,%.1f)\n",
                static_cast<double>(simulator.now()) / 1e6, truth.x,
                truth.y);
    for (std::size_t row = kGrid; row-- > 0;) {
      std::string line = "  ";
      for (std::size_t col = 0; col < kGrid; ++col) {
        const std::size_t index = row * kGrid + col;
        const sim::Location cell = motes[index]->location();
        const bool is_intruder = distance(cell, truth) < 0.71;
        const bool is_pursuer = static_cast<int>(index) == pursuer;
        char glyph = '.';
        if (is_intruder && is_pursuer) {
          glyph = '@';  // caught!
        } else if (is_intruder) {
          glyph = 'I';
        } else if (is_pursuer) {
          glyph = 'P';
        }
        line += glyph;
        line += ' ';
      }
      std::puts(line.c_str());
    }
    std::puts("");
  }

  std::printf("mean pursuer-to-intruder distance: %.2f grid units "
              "(grid diagonal: %.1f)\n",
              distance_track.mean(), std::sqrt(2.0) * (kGrid - 1));
  std::puts("The pursuer's entire \"coordination protocol\" is 60 lines of");
  std::puts("agent assembly: sense, rrdp the neighbours, smove to the max.");
  return 0;
}

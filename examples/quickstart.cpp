// Quickstart, written against the public embedding API (api/agilla.h):
// build a simulated 3x3 mote grid with SimulationBuilder, inject an
// agent written in the paper's assembly language from the base station,
// move it around, and read results back through remote tuple-space
// operations — while an EventCounter observes the run from the bus.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "api/agilla.h"

using namespace agilla;

int main() {
  // 1. One builder call composes the whole mesh: simulator, lossy grid
  //    radio, sensor environment, and an Agilla middleware stack on
  //    every mote. The network starts EMPTY: no application is
  //    installed anywhere (paper Sec. 2.2). The builder's warm-up runs
  //    neighbour discovery before build() returns.
  api::EventCounter counter;  // a thin metrics subscriber on the bus
  auto net = api::SimulationBuilder()
                 .grid(3, 3)
                 .seed(42)
                 .packet_loss(0.02)
                 .observe(counter)
                 .build();

  // 2. The environment the motes sense: a constant 22 C everywhere.
  net->environment().set_field(sim::SensorType::kTemperature,
                               std::make_unique<sim::ConstantField>(22.0));

  // 3. A base station wired to the corner mote at (1,1).
  core::BaseStation base = net->base();

  // 4. Inject an agent, in the paper's assembly language: it strong-moves
  //    to the far corner, senses the temperature, publishes the reading in
  //    the local tuple space, and dies.
  const auto agent = base.inject(R"(
            pushloc 3 3
            smove           // strong move to the far corner
            pushn dat       // tuple tag
            pushc TEMPERATURE
            sense           // read the thermometer
            pushc 2
            out             // publish <"dat", reading>
            halt
  )");
  if (!agent.has_value()) {
    std::puts("injection failed");
    return 1;
  }
  std::printf("injected agent #%u at (1,1)\n", agent->value);

  net->run_for(10 * sim::kSecond);

  // 5. From the base station, read the result back with a remote rdp.
  std::printf("querying the tuple space at (3,3) from the base station...\n");
  base.rrdp({3, 3},
            ts::Template{ts::Value::string("dat"),
                         ts::Value::type_wildcard(ts::ValueType::kReading)},
            [&](bool success, std::optional<ts::Tuple> tuple) {
              if (success && tuple.has_value()) {
                std::printf(
                    "  remote rdp -> %s  (at t=%.2f s)\n",
                    tuple->to_string().c_str(),
                    static_cast<double>(net->simulator().now()) / 1e6);
              } else {
                std::puts("  remote rdp found nothing");
              }
            });
  net->run_for(5 * sim::kSecond);

  // 6. What the observer saw, without touching a single internal field.
  std::printf(
      "bus: %llu frames tx, %llu beacons, %llu agent spawns, %llu tuple "
      "ops, %llu migrations\n",
      static_cast<unsigned long long>(counter.frames_tx),
      static_cast<unsigned long long>(counter.beacons),
      static_cast<unsigned long long>(counter.agent_spawns),
      static_cast<unsigned long long>(counter.tuple_ops),
      static_cast<unsigned long long>(counter.agent_migrations));
  const auto& stats = net->network().stats();
  std::printf(
      "radio: %llu frames sent, %llu delivered, %llu lost on the channel\n",
      static_cast<unsigned long long>(stats.frames_sent),
      static_cast<unsigned long long>(stats.frames_delivered),
      static_cast<unsigned long long>(stats.frames_lost));
  std::printf("agents alive anywhere: %zu (the visitor completed and died)\n",
              net->agent_count());
  return 0;
}

// Quickstart: build a simulated 3x3 mote grid, inject an agent written in
// the paper's assembly language from a base station, move it around, and
// read results back through remote tuple-space operations.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/agent_library.h"
#include "core/injector.h"
#include "core/middleware.h"
#include "sim/topology.h"

using namespace agilla;

int main() {
  // 1. A simulator, a lossy grid radio, and a 3x3 grid of motes.
  sim::Simulator simulator(/*seed=*/42);
  sim::Network network(
      simulator, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                     .packet_loss = 0.02}));
  const sim::Topology grid = sim::make_grid(network, 3, 3);

  // 2. The environment the motes sense: a constant 22 C everywhere.
  sim::SensorEnvironment environment;
  environment.set_field(sim::SensorType::kTemperature,
                        std::make_unique<sim::ConstantField>(22.0));

  // 3. An Agilla middleware stack on every mote. The network starts EMPTY:
  //    no application is installed anywhere (paper Sec. 2.2).
  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes;
  for (const sim::NodeId id : grid.nodes) {
    motes.push_back(
        std::make_unique<core::AgillaMiddleware>(network, id, &environment));
    motes.back()->start();
  }
  simulator.run_for(5 * sim::kSecond);  // let neighbour discovery settle

  // 4. A base station wired to the corner mote at (1,1).
  core::BaseStation base(*motes.front());

  // 5. Inject an agent, in the paper's assembly language: it strong-moves
  //    to the far corner, senses the temperature, publishes the reading in
  //    the local tuple space, and dies.
  const auto agent = base.inject(R"(
            pushloc 3 3
            smove           // strong move to the far corner
            pushn dat       // tuple tag
            pushc TEMPERATURE
            sense           // read the thermometer
            pushc 2
            out             // publish <"dat", reading>
            halt
  )");
  if (!agent.has_value()) {
    std::puts("injection failed");
    return 1;
  }
  std::printf("injected agent #%u at (1,1)\n", agent->value);

  simulator.run_for(10 * sim::kSecond);

  // 6. From the base station, read the result back with a remote rdp.
  std::printf("querying the tuple space at (3,3) from the base station...\n");
  base.rrdp({3, 3},
            ts::Template{ts::Value::string("dat"),
                         ts::Value::type_wildcard(ts::ValueType::kReading)},
            [&](bool success, std::optional<ts::Tuple> tuple) {
              if (success && tuple.has_value()) {
                std::printf("  remote rdp -> %s  (at t=%.2f s)\n",
                            tuple->to_string().c_str(),
                            static_cast<double>(simulator.now()) / 1e6);
              } else {
                std::puts("  remote rdp found nothing");
              }
            });
  simulator.run_for(5 * sim::kSecond);

  // 7. A peek at what the radio did.
  const auto& stats = network.stats();
  std::printf(
      "radio: %llu frames sent, %llu delivered, %llu lost on the channel\n",
      static_cast<unsigned long long>(stats.frames_sent),
      static_cast<unsigned long long>(stats.frames_delivered),
      static_cast<unsigned long long>(stats.frames_lost));
  std::printf("agents alive anywhere: ");
  std::size_t alive = 0;
  for (const auto& mote : motes) {
    alive += mote->agents().count();
  }
  std::printf("%zu (the visitor completed and died)\n", alive);
  return 0;
}

// The second half of the paper's Sec. 2.1 scenario: fire fighters inject
// SEARCHRESCUE agents that spread and repeatedly clone themselves,
// "scouring the region looking for lost hikers". Hikers are modelled as
// <"hkr", id> tuples pre-planted on a few motes (a stand-in for a detector
// of human presence); every find is reported back to the base station as a
// <"fnd", location, id> tuple.
//
//   $ ./examples/search_rescue
#include <cstdio>

#include "core/injector.h"
#include "core/middleware.h"
#include "sim/topology.h"

using namespace agilla;

namespace {

// A custom application agent, written against the public assembly language:
// claim the node, report any hiker found here to the base, then clone to
// every neighbour and die. The claim marker bounds the flood.
std::string search_rescue_agent() {
  return R"(
      BEGIN   pushn sar
              pusht LOCATION
              pushc 2
              rdp            // already searched?
              rjumpc DIE2
              pushn sar
              loc
              pushc 2
              out            // claim this node
              pushn hkr
              pusht NUMBER
              pushc 2
              rdp            // a hiker here?
              rjumpc FOUND
              rjump SPREAD
      FOUND   pop            // drop "hkr"; hiker id on top
              setvar 2
              pushn fnd
              loc
              getvar 2
              pushc 3        // report tuple <"fnd", loc, id>
              pushloc 1 1
              rout           // to the base station at (1,1)
      SPREAD  pushc 0
              setvar 1
      LOOP    getvar 1
              numnbrs
              cgt
              rjumpc NEXT
              halt           // all neighbours visited: die quietly
      NEXT    getvar 1
              getnbr
              wclone         // restart from BEGIN on the neighbour
              getvar 1
              inc
              setvar 1
              rjump LOOP
      DIE2    pop
              pop
              halt
  )";
}

}  // namespace

int main() {
  sim::Simulator simulator(/*seed=*/11);
  sim::Network network(
      simulator, std::make_unique<sim::GridNeighborRadio>(
                     sim::GridNeighborRadio::Options{.spacing = 1.0,
                                                     .packet_loss = 0.03}));
  const sim::Topology grid = sim::make_grid(network, 5, 5);

  sim::SensorEnvironment environment;  // no sensors needed for this app
  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes;
  for (const sim::NodeId id : grid.nodes) {
    motes.push_back(
        std::make_unique<core::AgillaMiddleware>(network, id, &environment));
    motes.back()->start();
  }
  simulator.run_for(5 * sim::kSecond);

  // Three lost hikers, scattered over the burned region.
  struct Hiker {
    sim::Location at;
    std::int16_t id;
  };
  const Hiker hikers[] = {{{4, 2}, 17}, {{2, 5}, 23}, {{5, 5}, 31}};
  for (const Hiker& hiker : hikers) {
    motes[sim::nearest_node(network, grid, hiker.at).value]
        ->tuple_space()
        .out(ts::Tuple{ts::Value::string("hkr"), ts::Value::number(hiker.id)});
    std::printf("hiker #%d lost near (%.0f,%.0f)\n", hiker.id, hiker.at.x,
                hiker.at.y);
  }

  core::BaseStation base(*motes.front());
  std::puts("\ninjecting SEARCHRESCUE at the base station (1,1)...");
  if (!base.inject(search_rescue_agent()).has_value()) {
    std::puts("injection failed");
    return 1;
  }

  for (int tick = 0; tick < 6; ++tick) {
    simulator.run_for(20 * sim::kSecond);
    std::size_t searched = 0;
    for (const auto& mote : motes) {
      if (mote->tuple_space()
              .rdp(ts::Template{ts::Value::string("sar"),
                                ts::Value::type_wildcard(
                                    ts::ValueType::kLocation)})
              .has_value()) {
        ++searched;
      }
    }
    const auto reports = motes.front()->tuple_space().tcount(ts::Template{
        ts::Value::string("fnd"),
        ts::Value::type_wildcard(ts::ValueType::kLocation),
        ts::Value::type_wildcard(ts::ValueType::kNumber)});
    std::printf("t=%3.0fs  nodes searched: %2zu/25   hikers reported: %zu/3\n",
                static_cast<double>(simulator.now()) / 1e6, searched,
                reports);
  }

  std::puts("\nreports received at the base station:");
  auto& base_space = motes.front()->tuple_space();
  const ts::Template report{
      ts::Value::string("fnd"),
      ts::Value::type_wildcard(ts::ValueType::kLocation),
      ts::Value::type_wildcard(ts::ValueType::kNumber)};
  while (const auto t = base_space.inp(report)) {
    std::printf("  %s\n", t->to_string().c_str());
  }
  return 0;
}

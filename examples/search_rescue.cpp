// The second half of the paper's Sec. 2.1 scenario, on the public
// embedding API: fire fighters inject SEARCHRESCUE agents that spread and
// repeatedly clone themselves, "scouring the region looking for lost
// hikers". Hikers are modelled as <"hkr", id> tuples pre-planted on a few
// motes (a stand-in for a detector of human presence); every find is
// reported back to the base station as a <"fnd", location, id> tuple.
//
//   $ ./examples/search_rescue
#include <cstdio>

#include "api/agilla.h"

using namespace agilla;

namespace {

// A custom application agent, written against the public assembly language:
// claim the node, report any hiker found here to the base, then clone to
// every neighbour and die. The claim marker bounds the flood.
std::string search_rescue_agent() {
  return R"(
      BEGIN   pushn sar
              pusht LOCATION
              pushc 2
              rdp            // already searched?
              rjumpc DIE2
              pushn sar
              loc
              pushc 2
              out            // claim this node
              pushn hkr
              pusht NUMBER
              pushc 2
              rdp            // a hiker here?
              rjumpc FOUND
              rjump SPREAD
      FOUND   pop            // drop "hkr"; hiker id on top
              setvar 2
              pushn fnd
              loc
              getvar 2
              pushc 3        // report tuple <"fnd", loc, id>
              pushloc 1 1
              rout           // to the base station at (1,1)
      SPREAD  pushc 0
              setvar 1
      LOOP    getvar 1
              numnbrs
              cgt
              rjumpc NEXT
              halt           // all neighbours visited: die quietly
      NEXT    getvar 1
              getnbr
              wclone         // restart from BEGIN on the neighbour
              getvar 1
              inc
              setvar 1
              rjump LOOP
      DIE2    pop
              pop
              halt
  )";
}

}  // namespace

int main() {
  auto net = api::SimulationBuilder()
                 .grid(5, 5)
                 .seed(11)
                 .packet_loss(0.03)
                 .build();  // no sensors needed for this app

  // Three lost hikers, scattered over the burned region.
  struct Hiker {
    sim::Location at;
    std::int16_t id;
  };
  const Hiker hikers[] = {{{4, 2}, 17}, {{2, 5}, 23}, {{5, 5}, 31}};
  for (const Hiker& hiker : hikers) {
    net->mote_at(hiker.at.x, hiker.at.y)
        .tuple_space()
        .out(ts::Tuple{ts::Value::string("hkr"), ts::Value::number(hiker.id)});
    std::printf("hiker #%d lost near (%.0f,%.0f)\n", hiker.id, hiker.at.x,
                hiker.at.y);
  }

  core::BaseStation base = net->base();
  std::puts("\ninjecting SEARCHRESCUE at the base station (1,1)...");
  if (!base.inject(search_rescue_agent()).has_value()) {
    std::puts("injection failed");
    return 1;
  }

  const ts::Template claimed{
      ts::Value::string("sar"),
      ts::Value::type_wildcard(ts::ValueType::kLocation)};
  const ts::Template report{
      ts::Value::string("fnd"),
      ts::Value::type_wildcard(ts::ValueType::kLocation),
      ts::Value::type_wildcard(ts::ValueType::kNumber)};
  for (int tick = 0; tick < 6; ++tick) {
    net->run_for(20 * sim::kSecond);
    std::printf("t=%3.0fs  nodes searched: %2zu/25   hikers reported: %zu/3\n",
                static_cast<double>(net->simulator().now()) / 1e6,
                net->motes_matching(claimed),
                net->mote(0).tuple_space().tcount(report));
  }

  std::puts("\nreports received at the base station:");
  auto& base_space = net->mote(0).tuple_space();
  while (const auto t = base_space.inp(report)) {
    std::printf("  %s\n", t->to_string().c_str());
  }
  return 0;
}

// The paper's Sec. 5 case study, end to end, on the public embedding
// API: FIREDETECTOR agents flood a 5x5 grid; a fire ignites and spreads;
// detectors alert the FIRETRACKER at the base station; trackers swarm to
// the fire and maintain a perimeter of <"trk", loc> tuples, which this
// program renders as an ASCII map over time.
//
//   $ ./examples/fire_tracking
#include <cstdio>
#include <string>

#include "api/agilla.h"

using namespace agilla;

namespace {

constexpr std::size_t kGrid = 5;

char glyph_for(core::AgillaMiddleware& mote, const sim::FireField& fire,
               sim::SimTime now) {
  const bool burning =
      fire.value(mote.location(), now) > 200.0;
  const bool tracked =
      mote.tuple_space()
          .rdp(ts::Template{ts::Value::string("trk"),
                            ts::Value::type_wildcard(
                                ts::ValueType::kLocation)})
          .has_value();
  if (burning && tracked) {
    return 'X';  // burning and tracked
  }
  if (burning) {
    return '*';  // burning, not (yet) tracked
  }
  if (tracked) {
    return 'T';  // tracker holding position near the front
  }
  const bool detector =
      mote.tuple_space()
          .rdp(ts::Template{ts::Value::string("det"),
                            ts::Value::type_wildcard(
                                ts::ValueType::kLocation)})
          .has_value();
  return detector ? 'd' : '.';
}

}  // namespace

int main() {
  auto net = api::SimulationBuilder()
                 .grid(kGrid, kGrid)
                 .seed(7)
                 .packet_loss(0.03)
                 .build();

  // A fire ignites at (4,4) after 60 s; the burning front is a ring ~1.6
  // units wide that sweeps outward, leaving burned-out ground behind.
  const sim::FireField::Options fire_options{
      .ignition_point = {4, 4},
      .ignition_time = 60 * sim::kSecond,
      .extinction_time = 0,
      .spread_speed = 0.02,
      .peak = 500.0,
      .ambient = 25.0,
      .edge_decay = 0.45,
      .ring_width = 1.6,
      .burned_over = 40.0};
  net->environment().set_field(sim::SensorType::kTemperature,
                               std::make_unique<sim::FireField>(fire_options));
  const sim::FireField fire(fire_options);  // a copy for rendering

  core::BaseStation base = net->base();
  std::puts("t=5s    injecting FIRETRACKER (waits at base for alerts)");
  base.inject(core::agents::fire_tracker(/*threshold=*/180,
                                         /*nap_ticks=*/16));
  std::puts("t=5s    injecting FIREDETECTOR (flood-clones over the grid)");
  base.inject(core::agents::fire_detector(/*alert_to=*/{1, 1},
                                          /*threshold=*/200,
                                          /*sample_ticks=*/32));

  const ts::Template trk{ts::Value::string("trk"),
                         ts::Value::type_wildcard(ts::ValueType::kLocation)};
  for (int frame = 0; frame < 7; ++frame) {
    net->run_for(40 * sim::kSecond);
    const sim::SimTime now = net->simulator().now();
    const double t = static_cast<double>(now) / 1e6;
    std::printf("\n--- t = %.0f s   (fire front radius %.2f) ---\n", t,
                fire.front_radius(now));
    for (std::size_t row = kGrid; row-- > 0;) {
      std::string line = "  ";
      for (std::size_t col = 0; col < kGrid; ++col) {
        line += glyph_for(net->mote(row * kGrid + col), fire, now);
        line += ' ';
      }
      std::puts(line.c_str());
    }
    std::printf("  legend: d detector, * burning, T tracker, X both | "
                "%zu live agents, %zu perimeter marks\n",
                net->agent_count(), net->tuples_matching(trk));
  }

  std::puts("\nThe perimeter marks follow the fire front: the tracker");
  std::puts("clones toward hot nodes and dies where the front has passed,");
  std::puts("exactly the behaviour the paper's Sec. 2.1 scenario sketches.");
  return 0;
}

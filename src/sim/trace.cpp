#include "sim/trace.h"

#include <iomanip>

namespace agilla::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kRadio:
      return "radio";
    case TraceCategory::kLink:
      return "link";
    case TraceCategory::kRouting:
      return "routing";
    case TraceCategory::kNeighbor:
      return "neighbor";
    case TraceCategory::kTupleSpace:
      return "ts";
    case TraceCategory::kAgent:
      return "agent";
    case TraceCategory::kMigration:
      return "migration";
    case TraceCategory::kRemoteOp:
      return "remote-op";
    case TraceCategory::kEngine:
      return "engine";
    case TraceCategory::kMate:
      return "mate";
  }
  return "unknown";
}

void Trace::emit(SimTime time, TraceCategory category, NodeId node,
                 std::string message) const {
  if (sinks_.empty()) {
    return;
  }
  const TraceRecord record{time, category, node, std::move(message)};
  for (const auto& sink : sinks_) {
    sink(record);
  }
}

void TraceRecorder::attach(Trace& trace) {
  trace.subscribe([this](const TraceRecord& r) { records_.push_back(r); });
}

std::size_t TraceRecorder::count_containing(const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

std::string format(const TraceRecord& record) {
  std::ostringstream os;
  os << std::setw(10) << record.time << "us [" << to_string(record.category)
     << "] " << record.node << ": " << record.message;
  return os.str();
}

}  // namespace agilla::sim

#include "sim/types.h"

namespace agilla::sim {

const char* to_string(AmType t) {
  switch (t) {
    case AmType::kAck:
      return "ACK";
    case AmType::kBeacon:
      return "BEACON";
    case AmType::kGeo:
      return "GEO";
    case AmType::kAgentState:
      return "AGENT_STATE";
    case AmType::kAgentCode:
      return "AGENT_CODE";
    case AmType::kAgentHeap:
      return "AGENT_HEAP";
    case AmType::kAgentStack:
      return "AGENT_STACK";
    case AmType::kAgentReaction:
      return "AGENT_REACTION";
    case AmType::kTsRequest:
      return "TS_REQUEST";
    case AmType::kTsReply:
      return "TS_REPLY";
    case AmType::kRegionOut:
      return "REGION_OUT";
    case AmType::kRegionFlood:
      return "REGION_FLOOD";
    case AmType::kMateCapsule:
      return "MATE_CAPSULE";
  }
  return "UNKNOWN";
}

}  // namespace agilla::sim

#include "sim/radio_model.h"

#include <algorithm>
#include <cmath>

namespace agilla::sim {
namespace {

constexpr double kTolerance = 1e-6;

bool approximately(double a, double b) { return std::abs(a - b) < kTolerance; }

}  // namespace

bool GridNeighborRadio::connected(const NodeInfo& from,
                                  const NodeInfo& to) const {
  if (from.id == to.id) {
    return false;
  }
  const double dx = std::abs(from.location.x - to.location.x);
  const double dy = std::abs(from.location.y - to.location.y);
  const double s = options_.spacing;
  const bool axis = (approximately(dx, s) && approximately(dy, 0.0)) ||
                    (approximately(dx, 0.0) && approximately(dy, s));
  if (axis) {
    return true;
  }
  if (options_.eight_connected) {
    return approximately(dx, s) && approximately(dy, s);
  }
  return false;
}

double GridNeighborRadio::loss_probability(const NodeInfo&, const NodeInfo&,
                                           std::size_t bytes) const {
  const double p = options_.packet_loss +
                   options_.per_byte_loss * static_cast<double>(bytes);
  return std::clamp(p, 0.0, 1.0);
}

double GridNeighborRadio::max_range() const {
  const double diag = options_.eight_connected ? std::sqrt(2.0) : 1.0;
  return options_.spacing * diag + kTolerance;
}

bool UnitDiskRadio::connected(const NodeInfo& from, const NodeInfo& to) const {
  if (from.id == to.id) {
    return false;
  }
  return distance(from.location, to.location) <= options_.range + kTolerance;
}

double UnitDiskRadio::loss_probability(const NodeInfo& from,
                                       const NodeInfo& to,
                                       std::size_t /*bytes*/) const {
  const double d = distance(from.location, to.location);
  if (options_.range <= 0.0) {
    return 1.0;
  }
  const double frac = std::clamp(d / options_.range, 0.0, 1.0);
  const double p = options_.base_loss +
                   (options_.max_loss - options_.base_loss) *
                       std::pow(frac, options_.steepness);
  return std::clamp(p, 0.0, 1.0);
}

bool PerfectRadio::connected(const NodeInfo& from, const NodeInfo& to) const {
  if (from.id == to.id) {
    return false;
  }
  return distance(from.location, to.location) <= range_ + kTolerance;
}

}  // namespace agilla::sim

#include "sim/environment.h"

#include <cmath>
#include <utility>

namespace agilla::sim {

const char* to_string(SensorType t) {
  switch (t) {
    case SensorType::kTemperature:
      return "temperature";
    case SensorType::kPhoto:
      return "photo";
    case SensorType::kMicrophone:
      return "microphone";
    case SensorType::kMagnetometer:
      return "magnetometer";
    case SensorType::kAccelerometer:
      return "accelerometer";
  }
  return "unknown";
}

double GaussianBumpField::value(Location at, SimTime /*when*/) const {
  const double d = distance(at, center_);
  return ambient_ + peak_ * std::exp(-(d * d) / (2.0 * sigma_ * sigma_));
}

double FireField::front_radius(SimTime when) const {
  if (when < options_.ignition_time) {
    return 0.0;
  }
  if (options_.extinction_time != 0 && when >= options_.extinction_time) {
    return 0.0;
  }
  const double elapsed_s =
      static_cast<double>(when - options_.ignition_time) /
      static_cast<double>(kSecond);
  return options_.spread_speed * elapsed_s;
}

double FireField::value(Location at, SimTime when) const {
  if (when < options_.ignition_time) {
    return options_.ambient;
  }
  if (options_.extinction_time != 0 && when >= options_.extinction_time) {
    return options_.ambient;
  }
  const double r = front_radius(when);
  const double d = distance(at, options_.ignition_point);
  if (d <= r) {
    if (options_.ring_width > 0.0 && d < r - options_.ring_width) {
      return options_.burned_over;  // behind the front: burned out
    }
    return options_.peak;
  }
  const double beyond = d - r;
  return options_.ambient +
         (options_.peak - options_.ambient) *
             std::exp(-beyond / options_.edge_decay);
}


MovingBumpField::MovingBumpField(Options options)
    : options_(std::move(options)) {
  if (options_.waypoints.empty()) {
    options_.waypoints.push_back(Location{0, 0});
  }
  const std::size_t n = options_.waypoints.size();
  const std::size_t legs = options_.loop ? n : (n > 0 ? n - 1 : 0);
  for (std::size_t i = 0; i < legs; ++i) {
    const Location& a = options_.waypoints[i];
    const Location& b = options_.waypoints[(i + 1) % n];
    leg_lengths_.push_back(distance(a, b));
    path_length_ += leg_lengths_.back();
  }
}

Location MovingBumpField::center(SimTime when) const {
  if (leg_lengths_.empty() || path_length_ <= 0.0 ||
      options_.speed <= 0.0) {
    return options_.waypoints.front();
  }
  double travelled = options_.speed * static_cast<double>(when) /
                     static_cast<double>(kSecond);
  if (options_.loop) {
    travelled = std::fmod(travelled, path_length_);
  } else if (travelled >= path_length_) {
    return options_.waypoints.back();
  }
  const std::size_t n = options_.waypoints.size();
  for (std::size_t i = 0; i < leg_lengths_.size(); ++i) {
    if (travelled <= leg_lengths_[i] || leg_lengths_[i] <= 0.0) {
      if (leg_lengths_[i] <= 0.0) {
        continue;
      }
      const double frac = travelled / leg_lengths_[i];
      const Location& a = options_.waypoints[i];
      const Location& b = options_.waypoints[(i + 1) % n];
      return Location{a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac};
    }
    travelled -= leg_lengths_[i];
  }
  return options_.waypoints.back();
}

double MovingBumpField::value(Location at, SimTime when) const {
  const Location c = center(when);
  const double d = distance(at, c);
  return options_.ambient +
         options_.peak *
             std::exp(-(d * d) / (2.0 * options_.sigma * options_.sigma));
}

void SensorEnvironment::set_field(SensorType type,
                                  std::unique_ptr<ScalarField> field) {
  fields_[type] = std::move(field);
}

bool SensorEnvironment::has(SensorType type) const {
  return fields_.contains(type);
}

double SensorEnvironment::read(SensorType type, Location at,
                               SimTime when) const {
  const auto it = fields_.find(type);
  if (it == fields_.end()) {
    return 0.0;
  }
  return it->second->value(at, when);
}

}  // namespace agilla::sim

#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace agilla::sim {

void EventHandle::cancel() {
  if (queue_ != nullptr) {
    queue_->cancel_slot(slot_, generation_);
  }
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->slot_pending(slot_, generation_);
}

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  return schedule(EventKey{at, kKernelStream, local_seq_++}, kKernelStream,
                  std::move(cb));
}

EventHandle EventQueue::schedule(EventKey key, StreamId target, Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(cb);
  s.target = target;
  s.live = true;
  heap_.push_back(HeapEntry{key, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return EventHandle(this, slot, s.generation);
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slots_.size()) {
    return;
  }
  Slot& s = slots_[slot];
  if (s.generation != generation || !s.live) {
    return;
  }
  // Release the closure eagerly; the heap entry stays until it surfaces,
  // at which point the slot is recycled.
  s.live = false;
  s.callback = nullptr;
  assert(live_ > 0);
  --live_;
}

bool EventQueue::slot_pending(std::uint32_t slot,
                              std::uint32_t generation) const {
  return slot < slots_.size() && slots_[slot].generation == generation &&
         slots_[slot].live;
}

void EventQueue::prune_dead_head() const {
  while (!heap_.empty() && !slots_[heap_.front().slot].live) {
    const std::uint32_t slot = heap_.front().slot;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    slots_[slot].generation++;
    free_slots_.push_back(slot);
  }
}

SimTime EventQueue::next_time() const {
  prune_dead_head();
  assert(!heap_.empty());
  return heap_.front().key.time;
}

const EventKey* EventQueue::peek_key() const {
  prune_dead_head();
  return heap_.empty() ? nullptr : &heap_.front().key;
}

EventQueue::Fired EventQueue::pop() {
  prune_dead_head();
  assert(!heap_.empty());
  const HeapEntry head = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  Slot& s = slots_[head.slot];
  assert(s.live);
  Fired fired{head.key.time, head.key, s.target, std::move(s.callback)};
  s.callback = nullptr;
  s.live = false;
  s.generation++;
  free_slots_.push_back(head.slot);
  assert(live_ > 0);
  --live_;
  return fired;
}

}  // namespace agilla::sim

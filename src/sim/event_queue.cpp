#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace agilla::sim {

void EventHandle::cancel() {
  if (alive_) {
    *alive_ = false;
  }
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{at, next_seq_++, std::move(cb), alive});
  return EventHandle(std::move(alive));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && !*heap_.top().alive) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const&; the callback must be moved out, so we
  // cast away constness of the popped entry (safe: we pop immediately).
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.callback)};
  *top.alive = false;
  heap_.pop();
  return fired;
}

}  // namespace agilla::sim

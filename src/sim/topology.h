// Topology builders and hop-distance oracle.
//
// The paper's testbed (Fig. 3) is a 5x5 grid with coordinates starting at
// (1,1) in the lower-left corner; make_grid reproduces that by default.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/network.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace agilla::sim {

/// The set of nodes created by a builder, in creation order.
struct Topology {
  std::vector<NodeId> nodes;

  [[nodiscard]] std::size_t size() const { return nodes.size(); }
};

/// A `width` x `height` grid with pitch `spacing`; node (col,row) sits at
/// (origin.x + col*spacing, origin.y + row*spacing). Creation order is
/// row-major from the origin corner.
Topology make_grid(Network& net, std::size_t width, std::size_t height,
                   double spacing = 1.0, Location origin = {1.0, 1.0});

/// A straight line of `count` nodes along +x.
Topology make_line(Network& net, std::size_t count, double spacing = 1.0,
                   Location origin = {1.0, 1.0});

/// `count` nodes placed uniformly at random in [0,width] x [0,height].
Topology make_random(Network& net, std::size_t count, double width,
                     double height, Rng& rng);

/// BFS hop distance over ground-truth connectivity; nullopt if unreachable.
std::optional<std::size_t> hop_distance(const Network& net, NodeId from,
                                        NodeId to);

/// The node whose location is nearest to `target` (ties broken by id).
NodeId nearest_node(const Network& net, const Topology& topo, Location target);

}  // namespace agilla::sim

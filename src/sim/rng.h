// Deterministic random number generation for the simulator.
//
// All stochastic behaviour (radio loss, MAC jitter, agent `rand`
// instruction, fire spread) draws from a single xoshiro256** stream seeded
// at simulation start, so a run is exactly reproducible from its seed.
// Sub-streams for independent components are derived with SplitMix64 so
// adding a node does not perturb another node's stream.
#pragma once

#include <cstdint>

namespace agilla::sim {

/// SplitMix64: used for seeding and for deriving sub-stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies the essentials of
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Derive an independent sub-stream generator (e.g. one per node).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace agilla::sim

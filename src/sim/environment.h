// The simulated physical world that agents `sense`.
//
// The paper's motes carry real sensor boards; we substitute scalar fields
// over (x, y, t). The FireField reproduces the Sec. 2.1/Sec. 5 scenario: a
// fire ignites at a point and its front spreads radially, so FIREDETECTOR
// agents see temperature cross the detection threshold in a spatial wave.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace agilla::sim {

/// Sensor types available on a (simulated) MICA2 sensor board.
enum class SensorType : std::uint8_t {
  kTemperature = 0,
  kPhoto = 1,
  kMicrophone = 2,
  kMagnetometer = 3,
  kAccelerometer = 4,
};

inline constexpr std::size_t kNumSensorTypes = 5;

[[nodiscard]] const char* to_string(SensorType t);

/// A scalar quantity defined over space and virtual time.
class ScalarField {
 public:
  virtual ~ScalarField() = default;
  [[nodiscard]] virtual double value(Location at, SimTime when) const = 0;
};

class ConstantField final : public ScalarField {
 public:
  explicit ConstantField(double v) : value_(v) {}
  [[nodiscard]] double value(Location, SimTime) const override {
    return value_;
  }

 private:
  double value_;
};

/// A static Gaussian hotspot: ambient + peak * exp(-d^2 / (2 sigma^2)).
class GaussianBumpField final : public ScalarField {
 public:
  GaussianBumpField(Location center, double peak, double sigma,
                    double ambient = 0.0)
      : center_(center), peak_(peak), sigma_(sigma), ambient_(ambient) {}

  [[nodiscard]] double value(Location at, SimTime when) const override;

 private:
  Location center_;
  double peak_;
  double sigma_;
  double ambient_;
};

/// A spreading fire. Before ignition (and after extinction) the field reads
/// ambient. Afterwards the burning front radius grows at `spread_speed`
/// units per simulated second; inside the front the field reads `peak`,
/// outside it decays exponentially with distance to the front.
class FireField final : public ScalarField {
 public:
  struct Options {
    Location ignition_point{0.0, 0.0};
    SimTime ignition_time = 0;
    SimTime extinction_time = 0;  ///< 0 = burns forever
    double spread_speed = 0.1;    ///< front radius growth, units/second
    double peak = 500.0;          ///< reading inside the burning region
    double ambient = 25.0;
    double edge_decay = 0.75;     ///< e-folding distance outside the front
    /// Width of the burning annulus. 0 means the whole disk burns; > 0
    /// means ground more than `ring_width` behind the front has burned out
    /// and cooled back toward ambient — the fire is a moving ring, which
    /// is what makes the paper's trackers a *dynamic* perimeter.
    double ring_width = 0.0;
    double burned_over = 40.0;  ///< reading on burned-out ground
  };

  explicit FireField(Options options) : options_(options) {}

  [[nodiscard]] double value(Location at, SimTime when) const override;

  /// Radius of the burning front at `when` (0 before ignition/after end).
  [[nodiscard]] double front_radius(SimTime when) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// A Gaussian bump whose centre moves along a waypoint path at constant
/// speed (looping). Models a moving signal source — the "intruder" of the
/// paper's Sec. 1 tracking scenario ("an agent following the intruder by
/// repeatedly migrating to the node that best detects it").
class MovingBumpField final : public ScalarField {
 public:
  struct Options {
    std::vector<Location> waypoints{{1, 1}, {5, 5}};
    double speed = 0.1;    ///< units per second along the path
    double peak = 400.0;
    double sigma = 0.9;
    double ambient = 0.0;
    bool loop = true;      ///< cycle the path; else hold at the last point
  };

  explicit MovingBumpField(Options options);

  [[nodiscard]] double value(Location at, SimTime when) const override;

  /// The bump centre at `when`.
  [[nodiscard]] Location center(SimTime when) const;

 private:
  Options options_;
  std::vector<double> leg_lengths_;
  double path_length_ = 0.0;
};

/// Per-simulation registry mapping sensor types to fields. Nodes without a
/// field for a type report that the sensor is absent (and Agilla omits the
/// corresponding context tuple, paper Sec. 2.2).
class SensorEnvironment {
 public:
  void set_field(SensorType type, std::unique_ptr<ScalarField> field);

  [[nodiscard]] bool has(SensorType type) const;

  /// Reads 0.0 when no field is installed for `type`.
  [[nodiscard]] double read(SensorType type, Location at, SimTime when) const;

 private:
  std::unordered_map<SensorType, std::unique_ptr<ScalarField>> fields_;
};

}  // namespace agilla::sim

#include "sim/topology.h"

#include <deque>
#include <limits>
#include <unordered_map>

namespace agilla::sim {

Topology make_grid(Network& net, std::size_t width, std::size_t height,
                   double spacing, Location origin) {
  Topology topo;
  topo.nodes.reserve(width * height);
  for (std::size_t row = 0; row < height; ++row) {
    for (std::size_t col = 0; col < width; ++col) {
      topo.nodes.push_back(net.add_node(
          Location{origin.x + static_cast<double>(col) * spacing,
                   origin.y + static_cast<double>(row) * spacing}));
    }
  }
  return topo;
}

Topology make_line(Network& net, std::size_t count, double spacing,
                   Location origin) {
  return make_grid(net, count, 1, spacing, origin);
}

Topology make_random(Network& net, std::size_t count, double width,
                     double height, Rng& rng) {
  Topology topo;
  topo.nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    topo.nodes.push_back(net.add_node(
        Location{rng.uniform01() * width, rng.uniform01() * height}));
  }
  return topo;
}

std::optional<std::size_t> hop_distance(const Network& net, NodeId from,
                                        NodeId to) {
  if (from == to) {
    return 0;
  }
  std::unordered_map<NodeId, std::size_t> dist;
  std::deque<NodeId> frontier;
  dist[from] = 0;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    const std::size_t d = dist[cur];
    for (NodeId next : net.connected_neighbors(cur)) {
      if (dist.contains(next)) {
        continue;
      }
      if (next == to) {
        return d + 1;
      }
      dist[next] = d + 1;
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

NodeId nearest_node(const Network& net, const Topology& topo,
                    Location target) {
  NodeId best;
  double best_distance = std::numeric_limits<double>::infinity();
  for (NodeId id : topo.nodes) {
    const double d = distance(net.info(id).location, target);
    if (d < best_distance) {
      best_distance = d;
      best = id;
    }
  }
  return best;
}

}  // namespace agilla::sim

// Lightweight structured tracing. Components publish trace records; tests
// and examples subscribe to observe protocol behaviour without poking into
// internals. Disabled (no subscribers) it costs one branch per record.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace agilla::sim {

enum class TraceCategory : std::uint8_t {
  kRadio,
  kLink,
  kRouting,
  kNeighbor,
  kTupleSpace,
  kAgent,
  kMigration,
  kRemoteOp,
  kEngine,
  kMate,
};

[[nodiscard]] const char* to_string(TraceCategory c);

struct TraceRecord {
  SimTime time = 0;
  TraceCategory category = TraceCategory::kEngine;
  NodeId node;
  std::string message;
};

class Trace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  void subscribe(Sink sink) { sinks_.push_back(std::move(sink)); }
  void clear_subscribers() { sinks_.clear(); }

  [[nodiscard]] bool enabled() const { return !sinks_.empty(); }

  void emit(SimTime time, TraceCategory category, NodeId node,
            std::string message) const;

 private:
  std::vector<Sink> sinks_;
};

/// A sink that retains all records in memory; handy in tests.
class TraceRecorder {
 public:
  /// Attach to `trace`; records accumulate in this object.
  void attach(Trace& trace);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count_containing(const std::string& needle) const;
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Format a record as a single human-readable line.
std::string format(const TraceRecord& record);

}  // namespace agilla::sim

#include "sim/simulator.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

namespace agilla::sim {

namespace {
constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();
constexpr std::uint64_t kStreamSalt = 0x9E3779B97F4A7C15ULL;
}  // namespace

/// Epoch barrier for shard workers: the driving thread publishes a key
/// bound, workers drain their shards up to it, the driver waits for all of
/// them. The mutex hand-off also publishes queue/outbox state both ways.
struct Simulator::WorkerPool {
  WorkerPool(Simulator& sim, std::size_t count) : sim_(sim) {
    threads_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      threads_.emplace_back([this, i] { worker(i); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  void run_epoch(const EventKey& bound) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bound_ = bound;
      done_ = 0;
      ++epoch_;
    }
    start_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return done_ == threads_.size(); });
  }

 private:
  void worker(std::uint32_t shard) {
    std::uint64_t seen = 0;
    for (;;) {
      EventKey bound;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) {
          return;
        }
        seen = epoch_;
        bound = bound_;
      }
      sim_.run_shard(shard, bound);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  Simulator& sim_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  EventKey bound_{};
  std::uint64_t epoch_ = 0;
  std::size_t done_ = 0;
  bool stop_ = false;
};

namespace {
thread_local void* tls_exec_ctx = nullptr;
}  // namespace

Simulator::Simulator(std::uint64_t seed) : seed_(seed) {
  streams_.push_back(Stream{Rng(seed), 0, 0});
  shards_.resize(1);
}

Simulator::~Simulator() = default;

Simulator::ExecContext* Simulator::current_context() const {
  auto* ctx = static_cast<ExecContext*>(tls_exec_ctx);
  return (ctx != nullptr && ctx->sim == this) ? ctx : nullptr;
}

SimTime Simulator::now() const {
  const ExecContext* ctx = current_context();
  return ctx != nullptr ? ctx->now : now_;
}

Rng& Simulator::rng() {
  assert(current_context() == nullptr ||
         current_context()->stream == kKernelStream);
  return streams_[kKernelStream].rng;
}

Rng& Simulator::node_rng(NodeId id) {
  const StreamId stream = stream_of(id);
  assert(stream < streams_.size());
  // A node's stream may only be consumed from the kernel (setup, barrier
  // events) or from an event running in that node's own context — anything
  // else would race under sharding and break shard-count invariance.
  assert(current_context() == nullptr ||
         current_context()->stream == kKernelStream ||
         current_context()->stream == stream);
  return streams_[stream].rng;
}

void Simulator::ensure_node_streams(std::size_t count) {
  if (streams_.size() >= count + 1) {
    return;
  }
  assert(!shards_configured_ &&
         "nodes must be added before configure_shards()");
  assert(current_context() == nullptr);
  streams_.reserve(count + 1);
  while (streams_.size() < count + 1) {
    const std::uint64_t idx = streams_.size();
    SplitMix64 mix(seed_ ^ (kStreamSalt * idx));
    streams_.push_back(Stream{Rng(mix.next()), 0, 0});
  }
}

EventHandle Simulator::schedule_key(SimTime at, StreamId target,
                                    EventQueue::Callback cb) {
  ExecContext* ctx = current_context();
  const StreamId origin = ctx != nullptr ? ctx->stream : kKernelStream;
  assert(target < streams_.size());
  const EventKey key{at, origin, streams_[origin].next_seq++};
  if (ctx == nullptr) {
    // Kernel context: no epoch is running, push straight into the
    // destination queue (kernel events keep their own queue so they can
    // be serialized at epoch barriers).
    EventQueue& queue = target == kKernelStream
                            ? kernel_queue_
                            : shards_[streams_[target].shard].queue;
    return queue.schedule(key, target, std::move(cb));
  }
  assert(target != kKernelStream &&
         "node events must not schedule kernel-stream events");
  const std::uint32_t dest = streams_[target].shard;
  if (dest == ctx->shard) {
    return shards_[dest].queue.schedule(key, target, std::move(cb));
  }
  // Cross-shard: buffer until the epoch barrier. The conservative window
  // is only sound if every cross-shard event lands at least one lookahead
  // ahead of its scheduling event.
  assert(at >= ctx->now + lookahead_ &&
         "cross-shard event inside the lookahead window");
  shards_[ctx->shard].outbox.push_back(
      Outgoing{dest, key, target, std::move(cb)});
  return EventHandle{};
}

EventHandle Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  const ExecContext* ctx = current_context();
  const StreamId target = ctx != nullptr ? ctx->stream : kKernelStream;
  return schedule_key(now() + delay, target, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  assert(at >= now());
  const ExecContext* ctx = current_context();
  const StreamId target = ctx != nullptr ? ctx->stream : kKernelStream;
  return schedule_key(at, target, std::move(cb));
}

EventHandle Simulator::schedule_in(SimTime delay, NodeId affinity,
                                   EventQueue::Callback cb) {
  return schedule_key(now() + delay, stream_of(affinity), std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, NodeId affinity,
                                   EventQueue::Callback cb) {
  assert(at >= now());
  return schedule_key(at, stream_of(affinity), std::move(cb));
}

void Simulator::configure_shards(std::size_t shard_count,
                                 std::vector<std::uint32_t> node_shard,
                                 SimTime lookahead) {
  assert(!running_);
  assert(!shards_configured_ && "configure_shards() may be called once");
  assert(node_shard.size() + 1 == streams_.size());
  assert(shards_.size() == 1 && shards_[0].queue.empty() &&
         "node events must not be scheduled before configure_shards()");
  shard_count = std::max<std::size_t>(shard_count, 1);
  assert(shard_count == 1 || lookahead > 0);
  lookahead_ = lookahead;
  shards_ = std::vector<Shard>(shard_count);
  for (std::size_t i = 0; i < node_shard.size(); ++i) {
    assert(node_shard[i] < shard_count);
    streams_[i + 1].shard = node_shard[i];
  }
  shards_configured_ = true;
  if (shard_count > 1) {
    pool_ = std::make_unique<WorkerPool>(*this, shard_count);
  }
}

void Simulator::run_shard(std::uint32_t shard_idx, const EventKey& bound) {
  Shard& shard = shards_[shard_idx];
  ExecContext ctx{this, shard_idx, kKernelStream, now_};
  tls_exec_ctx = &ctx;
  for (;;) {
    const EventKey* key = shard.queue.peek_key();
    if (key == nullptr || !(*key < bound)) {
      break;
    }
    EventQueue::Fired fired = shard.queue.pop();
    ctx.now = fired.key.time;
    ctx.stream = fired.target;
    fired.callback();
    shard.max_executed = fired.key.time;
    ++shard.fired;
  }
  tls_exec_ctx = nullptr;
}

void Simulator::merge_outboxes() {
  for (Shard& shard : shards_) {
    for (Outgoing& out : shard.outbox) {
      // Merge order across outboxes is irrelevant: the destination heap
      // orders by the intrinsic key, which was fixed at schedule time.
      shards_[out.dest_shard].queue.schedule(out.key, out.target,
                                             std::move(out.callback));
    }
    shard.outbox.clear();
  }
}

std::size_t Simulator::drain(SimTime deadline) {
  const EventKey cap = deadline == kMaxTime
                           ? EventKey{kMaxTime,
                                      std::numeric_limits<StreamId>::max(),
                                      std::numeric_limits<std::uint64_t>::max()}
                           : EventKey{deadline + 1, 0, 0};
  std::size_t fired_total = 0;
  running_ = true;
  for (;;) {
    const EventKey* kernel_key = kernel_queue_.peek_key();
    const EventKey* shard_key = nullptr;
    for (Shard& shard : shards_) {
      const EventKey* key = shard.queue.peek_key();
      if (key != nullptr && (shard_key == nullptr || *key < *shard_key)) {
        shard_key = key;
      }
    }
    if (kernel_key != nullptr &&
        (shard_key == nullptr || *kernel_key < *shard_key)) {
      // Kernel events (settle ticks, test/setup events) run serially on
      // the driving thread, with every shard quiescent and every earlier
      // shard event already executed.
      if (kernel_key->time > deadline) {
        break;
      }
      EventQueue::Fired fired = kernel_queue_.pop();
      assert(fired.key.time >= now_);
      now_ = fired.key.time;
      fired.callback();
      ++fired_total;
      continue;
    }
    if (shard_key == nullptr || shard_key->time > deadline) {
      break;
    }
    EventKey bound = cap;
    if (kernel_key != nullptr && *kernel_key < bound) {
      bound = *kernel_key;
    }
    if (shards_.size() > 1) {
      // Conservative window: cross-shard influence costs at least
      // `lookahead_` of virtual latency, so everything below
      // t_min + lookahead is safe to run in parallel.
      const EventKey window{shard_key->time + lookahead_, 0, 0};
      if (window < bound) {
        bound = window;
      }
      pool_->run_epoch(bound);
      merge_outboxes();
    } else {
      run_shard(0, bound);
    }
    for (Shard& shard : shards_) {
      now_ = std::max(now_, shard.max_executed);
      fired_total += std::exchange(shard.fired, std::size_t{0});
    }
  }
  running_ = false;
  return fired_total;
}

std::size_t Simulator::run() { return drain(kMaxTime); }

std::size_t Simulator::run_until(SimTime deadline) {
  const std::size_t fired = drain(deadline);
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

std::size_t Simulator::run_for(SimTime duration) {
  return run_until(now_ + duration);
}

std::size_t Simulator::pending_events() const {
  std::size_t total = kernel_queue_.size();
  for (const Shard& shard : shards_) {
    total += shard.queue.size();
  }
  return total;
}

}  // namespace agilla::sim

#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace agilla::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventHandle Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  assert(at >= now_);
  return queue_.schedule(at, std::move(cb));
}

std::size_t Simulator::drain(SimTime deadline) {
  std::size_t fired = 0;
  running_ = true;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    auto event = queue_.pop();
    assert(event.time >= now_);
    now_ = event.time;
    event.callback();
    ++fired;
  }
  running_ = false;
  return fired;
}

std::size_t Simulator::run() {
  return drain(std::numeric_limits<SimTime>::max());
}

std::size_t Simulator::run_until(SimTime deadline) {
  const std::size_t fired = drain(deadline);
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

std::size_t Simulator::run_for(SimTime duration) {
  return run_until(now_ + duration);
}

}  // namespace agilla::sim

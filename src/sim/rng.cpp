#include "sim/rng.h"

namespace agilla::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace agilla::sim

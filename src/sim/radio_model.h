// Radio connectivity and loss models.
//
// The paper's testbed is a 5x5 MICA2 grid with a software-modified TinyOS
// network stack that "filters out all messages except those from immediate
// neighbors based on the grid topology" (Sec. 4). GridNeighborRadio
// reproduces exactly that methodology; UnitDiskRadio is the more general
// distance-based model used by some property tests.
#pragma once

#include <cstddef>
#include <memory>

#include "sim/types.h"

namespace agilla::sim {

struct NodeInfo {
  NodeId id;
  Location location;
  bool radio_enabled = true;
};

class RadioModel {
 public:
  virtual ~RadioModel() = default;

  /// True if `to` can hear transmissions from `from` at all.
  [[nodiscard]] virtual bool connected(const NodeInfo& from,
                                       const NodeInfo& to) const = 0;

  /// Probability that one packet of `bytes` on-air bytes from->to is lost.
  [[nodiscard]] virtual double loss_probability(const NodeInfo& from,
                                                const NodeInfo& to,
                                                std::size_t bytes) const = 0;

  /// Upper bound on the distance between any connected pair. The network
  /// buckets nodes into cells of this size so receiver enumeration scans
  /// the 3x3 surrounding cells instead of every node (O(1) per frame on
  /// bounded-density deployments).
  [[nodiscard]] virtual double max_range() const = 0;
};

/// Grid adjacency with a fixed per-packet loss probability.
///
/// Nodes are connected iff their locations are one `spacing` apart in
/// exactly one axis (4-connectivity) or also diagonally (8-connectivity).
class GridNeighborRadio final : public RadioModel {
 public:
  struct Options {
    double spacing = 1.0;       ///< grid pitch
    bool eight_connected = false;
    double packet_loss = 0.0;   ///< per-packet Bernoulli loss probability
    double per_byte_loss = 0.0; ///< additional loss per on-air byte
  };

  explicit GridNeighborRadio(Options options) : options_(options) {}

  [[nodiscard]] bool connected(const NodeInfo& from,
                               const NodeInfo& to) const override;
  [[nodiscard]] double loss_probability(const NodeInfo& from,
                                        const NodeInfo& to,
                                        std::size_t bytes) const override;
  [[nodiscard]] double max_range() const override;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Classic unit-disk connectivity; loss grows with distance.
///
/// loss(d) = base + (max - base) * (d / range)^steepness, clamped to [0,1].
class UnitDiskRadio final : public RadioModel {
 public:
  struct Options {
    double range = 1.5;
    double base_loss = 0.0;
    double max_loss = 0.0;  ///< loss at exactly `range`
    double steepness = 2.0;
  };

  explicit UnitDiskRadio(Options options) : options_(options) {}

  [[nodiscard]] bool connected(const NodeInfo& from,
                               const NodeInfo& to) const override;
  [[nodiscard]] double loss_probability(const NodeInfo& from,
                                        const NodeInfo& to,
                                        std::size_t bytes) const override;
  [[nodiscard]] double max_range() const override {
    return options_.range;
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Lossless radio with unit-disk connectivity; used by unit tests that need
/// to isolate protocol logic from the channel.
class PerfectRadio final : public RadioModel {
 public:
  explicit PerfectRadio(double range = 1.5) : range_(range) {}

  [[nodiscard]] bool connected(const NodeInfo& from,
                               const NodeInfo& to) const override;
  [[nodiscard]] double loss_probability(const NodeInfo&, const NodeInfo&,
                                        std::size_t) const override {
    return 0.0;
  }
  [[nodiscard]] double max_range() const override { return range_; }

 private:
  double range_;
};

}  // namespace agilla::sim

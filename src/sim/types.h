// Fundamental types shared by the whole simulation stack.
//
// The simulator models time in microseconds of virtual time (SimTime).
// Nodes are identified by a small integer NodeId, but Agilla itself
// addresses nodes by physical Location (paper Sec. 2.2: "A node's location
// is its address"); the translation happens in the routing layer.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace agilla::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1'000'000;

/// Identity of a node inside one simulation. Dense, assigned by Network.
/// 32-bit so meshes beyond 65k motes (the 316x316 scale runs) fit; the
/// paper's location-is-the-address scheme means node ids never cross the
/// simulated wire, so widening costs nothing at the protocol layer.
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFF;
  static constexpr std::uint32_t kBroadcast = 0xFFFFFFFE;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return value == kBroadcast;
  }

  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "n" << id.value;
}

/// Broadcast pseudo-address for link-layer beacons.
inline constexpr NodeId kBroadcastNode{NodeId::kBroadcast};

/// A physical location. The paper uses small-integer grid coordinates but
/// allows an error epsilon when addressing, so we keep doubles throughout.
struct Location {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Location&, const Location&) = default;
};

[[nodiscard]] inline double distance(const Location& a, const Location& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// True when `a` is within `epsilon` of `b` (paper: location addressing
/// "allows an error epsilon when specifying the address").
[[nodiscard]] inline bool within(const Location& a, const Location& b,
                                 double epsilon) {
  return distance(a, b) <= epsilon;
}

inline std::ostream& operator<<(std::ostream& os, const Location& l) {
  return os << "(" << l.x << "," << l.y << ")";
}

/// TinyOS-style Active Message type. Each protocol module registers a
/// handler for its own AM type (mirrors the AM dispatch in TinyOS).
enum class AmType : std::uint8_t {
  kAck = 0x00,           // link-layer acknowledgement
  kBeacon = 0x01,        // neighbour-discovery beacon
  kGeo = 0x02,           // geographically-routed envelope (carries inner AM)
  kAgentState = 0x10,    // migration: state message   (paper Fig. 5: 20 B)
  kAgentCode = 0x11,     // migration: one code block  (28 B)
  kAgentHeap = 0x12,     // migration: four heap vars  (32 B)
  kAgentStack = 0x13,    // migration: four stack vars (30 B)
  kAgentReaction = 0x14, // migration: one reaction    (36 B)
  kTsRequest = 0x20,     // remote tuple-space request
  kTsReply = 0x21,       // remote tuple-space reply
  kRegionOut = 0x22,     // region op: geo-routed seed toward the region
  kRegionFlood = 0x23,   // region op: scoped flood inside the region
  kMateCapsule = 0x30,   // Mate baseline: capsule flood
};

[[nodiscard]] const char* to_string(AmType t);

}  // namespace agilla::sim

template <>
struct std::hash<agilla::sim::NodeId> {
  std::size_t operator()(agilla::sim::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

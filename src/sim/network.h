// The simulated radio network: node registry, half-duplex transmit queues,
// loss, and delivery upcalls.
//
// Timing model (calibrated to the MICA2 CC1000 / TinyOS stack, see
// DESIGN.md): a frame occupies the sender's radio for
//     per_packet_overhead + on_air_bytes * 8 / bit_rate  (+ MAC jitter)
// after which it is delivered (or lost) at each receiver. A node transmits
// one frame at a time; later sends queue behind it — this is what makes a
// multi-message agent migration take several hundred milliseconds, exactly
// the effect the paper measures in Figs. 10/11.
//
// Energy subsystem (src/energy/): attach_energy() gives every node a
// Battery and charges TX/RX per frame and idle-listen per unit time; a
// depleted battery kills the node through the same node-down path
// set_radio_enabled() uses for failure injection. enable_churn() adds
// Poisson crash (and optional reboot) events on top. Node death and
// rebirth are surfaced through the node-down/up handlers so the
// middleware layer can drop agents and reseed state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "energy/battery.h"
#include "energy/energy_model.h"
#include "sim/radio_model.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace agilla::sim {

/// A radio-level packet. Payload layouts are defined by the net/ layer.
struct Frame {
  NodeId src;
  NodeId dst;  ///< kBroadcastNode for beacons
  AmType am = AmType::kAck;
  std::vector<std::uint8_t> payload;
  /// LPL preamble extension for THIS frame, set by the sender's net layer
  /// when it knows the receiver's advertised check period (adaptive LPL).
  /// nullopt = use the node's own duty-cycler extension (static LPL).
  std::optional<SimTime> preamble;
};

struct RadioTiming {
  double bit_rate_bps = 38'400.0;        ///< CC1000 on MICA2
  /// CC1000 preamble + TinyOS MAC backoff + task handoff. Calibrated so a
  /// one-hop rout round trip lands near the paper's ~55 ms and a one-hop
  /// strong migration (4 acked messages) near ~200 ms (see DESIGN.md).
  SimTime per_packet_overhead = 18 * kMillisecond;
  SimTime max_jitter = 3 * kMillisecond; ///< uniform extra backoff
  std::size_t header_bytes = 7;          ///< TOS_Msg header + CRC

  [[nodiscard]] SimTime air_time(std::size_t payload_bytes) const;

  /// The serialization time alone (header + payload bits on the air),
  /// without the MAC overhead — what the radio actually spends powered in
  /// TX, and what receivers spend decoding. Energy charges use this.
  [[nodiscard]] SimTime serialization_time(std::size_t payload_bytes) const;
};

struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;      ///< channel loss events (per receiver)
  std::uint64_t frames_unreachable = 0;  ///< unicast to a non-neighbour
  std::uint64_t bytes_on_air = 0;
  std::uint64_t node_deaths = 0;      ///< battery depletion + churn crashes
  std::uint64_t node_reboots = 0;
  std::unordered_map<AmType, std::uint64_t> sent_by_type;

  void reset() { *this = NetworkStats{}; }
};

/// Why a node left (or re-joined) the network.
enum class NodeDownReason : std::uint8_t {
  kBatteryDepleted,
  kChurnCrash,
};

struct ChurnOptions {
  /// Poisson crash intensity per node, in crashes per virtual second.
  double crash_rate_per_node_s = 0.0;
  /// Crashed nodes reboot after this long; 0 means they stay down.
  SimTime reboot_after = 0;
  /// Whether node 0 is exempt from churn. nullopt derives the answer
  /// from the energy options (mains-powered gateway is spared; that is
  /// also the default when energy is not attached).
  std::optional<bool> spare_gateway;
};

class Network {
 public:
  using ReceiveHandler = std::function<void(const Frame&)>;
  using NodeDownHandler = std::function<void(NodeId, NodeDownReason)>;
  using NodeUpHandler = std::function<void(NodeId)>;
  /// Pure-observation taps for the api::EventBus instrumentation seam.
  /// Tx fires once per frame that actually left a radio; rx fires per
  /// decoding receiver (with `lost` telling whether the channel then
  /// corrupted the frame); the settle tap fires after each battery
  /// settle tick. None of them consume randomness or affect delivery.
  using FrameTxTap = std::function<void(const Frame&)>;
  using FrameRxTap = std::function<void(const Frame&, NodeId receiver,
                                        bool lost)>;
  using SettleTap = std::function<void()>;

  Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
          RadioTiming timing = {});

  /// Register a node at `loc`. Returns its dense id.
  NodeId add_node(Location loc);

  /// Install the (single) receive upcall for a node. The net/ layer
  /// dispatches by AM type from here.
  void set_receiver(NodeId id, ReceiveHandler handler);

  /// Queue a frame for transmission from frame.src. Takes effect in virtual
  /// time; the call itself returns immediately.
  void send(Frame frame);

  /// Turn a node's radio on/off. A disabled node neither transmits (its
  /// queue stalls) nor receives. Used for failure injection and for the
  /// paper's local-instruction benchmarks ("we disabled the radio").
  void set_radio_enabled(NodeId id, bool enabled);

  // ------------------------------------------------------------- energy
  /// Creates per-node batteries (unless battery_mj <= 0) and starts
  /// charging TX/RX/idle energy. Call once, after all nodes are added;
  /// nodes added later get no battery. With gateway_powered, node 0 is
  /// mains-powered (no battery, never churned).
  void attach_energy(const energy::EnergyOptions& options);

  /// The node's battery; nullptr when energy is not attached, for the
  /// powered gateway, or for an out-of-range id.
  [[nodiscard]] energy::Battery* battery(NodeId id);
  [[nodiscard]] const energy::Battery* battery(NodeId id) const;

  /// Settles every battery's idle draw up to now() (call before reading
  /// ledgers mid-run; death checks do this automatically).
  void settle_batteries();

  [[nodiscard]] const energy::EnergyOptions* energy_options() const {
    return energy_ ? &energy_->options : nullptr;
  }
  [[nodiscard]] const energy::DutyCycler& duty_cycler() const;

  /// The node's own duty cycler. Identical to duty_cycler() under static
  /// LPL; diverges per node once the adaptive controller runs.
  [[nodiscard]] const energy::DutyCycler& node_duty(NodeId id) const;

  // ------------------------------------------------- node death & churn
  /// Starts Poisson per-node crash (and optional reboot) events. Requires
  /// nodes to exist; the gateway is spared when energy options say so (or
  /// always, when energy is not attached).
  void enable_churn(ChurnOptions options);

  /// Kills a node now: radio off, transmit queue frozen, idle draw
  /// stopped, node-down handler invoked. Idempotent.
  void kill_node(NodeId id, NodeDownReason reason);

  /// Reboots a killed node (fresh radio state). No-op if the node is
  /// alive or its battery is depleted.
  void revive_node(NodeId id);

  [[nodiscard]] bool alive(NodeId id) const;
  [[nodiscard]] std::size_t alive_count() const;

  void set_node_down_handler(NodeDownHandler handler) {
    node_down_ = std::move(handler);
  }
  void set_node_up_handler(NodeUpHandler handler) {
    node_up_ = std::move(handler);
  }
  void set_frame_tx_tap(FrameTxTap tap) { tx_tap_ = std::move(tap); }
  void set_frame_rx_tap(FrameRxTap tap) { rx_tap_ = std::move(tap); }
  void set_settle_tap(SettleTap tap) { settle_tap_ = std::move(tap); }

  [[nodiscard]] const NodeInfo& info(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const RadioModel& radio() const { return *radio_; }
  [[nodiscard]] const RadioTiming& timing() const { return timing_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Ground-truth connectivity (what the channel permits). Protocol-level
  /// neighbour knowledge comes from beacons in net::NeighborTable.
  [[nodiscard]] std::vector<NodeId> connected_neighbors(NodeId id) const;

  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

 private:
  struct NodeState {
    NodeInfo info;
    ReceiveHandler receiver;
    std::deque<Frame> tx_queue;
    bool transmitting = false;
    bool alive = true;
    /// The node died mid-transmission: the in-flight frame (and the rest
    /// of the pre-death queue) must be dropped when its finish event
    /// fires, even if the node was revived in the meantime.
    bool tx_doomed = false;
    std::unique_ptr<energy::Battery> battery;
    /// Per-node LPL schedule (meaningful only when energy is attached;
    /// moves per node under the adaptive controller).
    energy::DutyCycler duty;
    /// Frames this node's radio decoded since the last settle tick — the
    /// local traffic rate the adaptive controller observes.
    std::uint32_t frames_heard = 0;
  };

  struct EnergyState {
    energy::EnergyOptions options;
    energy::DutyCycler duty;
  };

  void try_start_tx(NodeState& node);
  void finish_tx(NodeId id);
  /// The LPL preamble extension this frame pays: its per-receiver
  /// override when the net layer set one, the sender's own schedule
  /// otherwise.
  [[nodiscard]] SimTime preamble_for(const NodeState& sender,
                                     const Frame& frame) const;
  void deliver(const Frame& frame, const NodeInfo& sender);
  /// Clamped drain + deferred depletion kill (safe mid-delivery).
  void charge(NodeState& node, energy::EnergyComponent component, double mj);
  void schedule_settle_tick();
  void schedule_crash(NodeId id);

  Simulator& sim_;
  std::unique_ptr<RadioModel> radio_;
  RadioTiming timing_;
  std::vector<NodeState> nodes_;
  std::optional<EnergyState> energy_;
  ChurnOptions churn_;
  NodeDownHandler node_down_;
  NodeUpHandler node_up_;
  FrameTxTap tx_tap_;
  FrameRxTap rx_tap_;
  SettleTap settle_tap_;
  NetworkStats stats_;
};

}  // namespace agilla::sim

// The simulated radio network: node registry, half-duplex transmit queues,
// loss, and delivery upcalls.
//
// Timing model (calibrated to the MICA2 CC1000 / TinyOS stack, see
// DESIGN.md): a frame occupies the sender's radio for
//     per_packet_overhead + on_air_bytes * 8 / bit_rate  (+ MAC jitter)
// after which it is delivered (or lost) at each receiver. A node transmits
// one frame at a time; later sends queue behind it — this is what makes a
// multi-message agent migration take several hundred milliseconds, exactly
// the effect the paper measures in Figs. 10/11.
//
// Sharding model: transmission outcomes are decided receiver-side. When a
// frame starts, the sender enumerates the (static) candidate receivers and
// schedules one delivery event per receiver in the RECEIVER's stream at
// the frame's arrival time; radio-enabled checks, loss draws (from the
// receiver's RNG), RX energy, and the upcall all happen there. Since every
// frame costs at least min_frame_latency() of virtual time, that latency
// is the conservative lookahead window the sharded simulator synchronizes
// on. A frame's fate is sealed when it starts: a sender killed mid-flight
// no longer dooms the frame (the pre-death queue is dropped at kill time
// instead) — see DESIGN.md for why zero-lookahead sender/receiver
// coupling cannot shard.
//
// Energy subsystem (src/energy/): attach_energy() gives every node a
// Battery and charges TX/RX per frame and idle-listen per unit time; a
// depleted battery kills the node through the same node-down path
// set_radio_enabled() uses for failure injection. enable_churn() adds
// Poisson crash (and optional reboot) events on top. Node death and
// rebirth are surfaced through the node-down/up handlers so the
// middleware layer can drop agents and reseed state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "energy/battery.h"
#include "energy/energy_model.h"
#include "sim/radio_model.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace agilla::sim {

/// A radio-level packet. Payload layouts are defined by the net/ layer.
struct Frame {
  NodeId src;
  NodeId dst;  ///< kBroadcastNode for beacons
  AmType am = AmType::kAck;
  std::vector<std::uint8_t> payload;
  /// LPL preamble extension for THIS frame, set by the sender's net layer
  /// when it knows the receiver's advertised check period (adaptive LPL).
  /// nullopt = use the node's own duty-cycler extension (static LPL).
  std::optional<SimTime> preamble;
};

struct RadioTiming {
  double bit_rate_bps = 38'400.0;        ///< CC1000 on MICA2
  /// CC1000 preamble + TinyOS MAC backoff + task handoff. Calibrated so a
  /// one-hop rout round trip lands near the paper's ~55 ms and a one-hop
  /// strong migration (4 acked messages) near ~200 ms (see DESIGN.md).
  SimTime per_packet_overhead = 18 * kMillisecond;
  SimTime max_jitter = 3 * kMillisecond; ///< uniform extra backoff
  std::size_t header_bytes = 7;          ///< TOS_Msg header + CRC

  [[nodiscard]] SimTime air_time(std::size_t payload_bytes) const;

  /// The serialization time alone (header + payload bits on the air),
  /// without the MAC overhead — what the radio actually spends powered in
  /// TX, and what receivers spend decoding. Energy charges use this.
  [[nodiscard]] SimTime serialization_time(std::size_t payload_bytes) const;
};

struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;      ///< channel loss events (per receiver)
  std::uint64_t frames_unreachable = 0;  ///< unicast to a non-neighbour
  std::uint64_t bytes_on_air = 0;
  std::uint64_t node_deaths = 0;      ///< battery depletion + churn crashes
  std::uint64_t node_reboots = 0;
  std::unordered_map<AmType, std::uint64_t> sent_by_type;

  void reset() { *this = NetworkStats{}; }
};

/// Why a node left (or re-joined) the network.
enum class NodeDownReason : std::uint8_t {
  kBatteryDepleted,
  kChurnCrash,
};

struct ChurnOptions {
  /// Poisson crash intensity per node, in crashes per virtual second.
  double crash_rate_per_node_s = 0.0;
  /// Crashed nodes reboot after this long; 0 means they stay down.
  SimTime reboot_after = 0;
  /// Whether node 0 is exempt from churn. nullopt derives the answer
  /// from the energy options (mains-powered gateway is spared; that is
  /// also the default when energy is not attached).
  std::optional<bool> spare_gateway;
};

class Network {
 public:
  using ReceiveHandler = std::function<void(const Frame&)>;
  using NodeDownHandler = std::function<void(NodeId, NodeDownReason)>;
  using NodeUpHandler = std::function<void(NodeId)>;
  /// Pure-observation taps for the api::EventBus instrumentation seam.
  /// Tx fires once per frame that actually left a radio; rx fires per
  /// decoding receiver (with `lost` telling whether the channel then
  /// corrupted the frame); the settle tap fires after each battery
  /// settle tick. None of them consume randomness or affect delivery.
  /// Under sim_shards > 1, tx/rx taps fire from shard worker threads.
  using FrameTxTap = std::function<void(const Frame&)>;
  using FrameRxTap = std::function<void(const Frame&, NodeId receiver,
                                        bool lost)>;
  using SettleTap = std::function<void()>;

  Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
          RadioTiming timing = {});

  /// Register a node at `loc`. Returns its dense id.
  NodeId add_node(Location loc);

  /// Install the (single) receive upcall for a node. The net/ layer
  /// dispatches by AM type from here.
  void set_receiver(NodeId id, ReceiveHandler handler);

  /// Queue a frame for transmission from frame.src. Takes effect in virtual
  /// time; the call itself returns immediately.
  void send(Frame frame);

  /// Turn a node's radio on/off. A disabled node neither starts
  /// transmissions (its queue stalls) nor receives; a frame already on
  /// the air when the radio goes down still lands (its fate was sealed
  /// at transmit start). Used for failure injection and for the paper's
  /// local-instruction benchmarks ("we disabled the radio").
  void set_radio_enabled(NodeId id, bool enabled);

  // ----------------------------------------------------------- sharding
  /// Partitions the deployment into `shards` contiguous x-strips and
  /// configures the simulator's sharded event engine (worker pool, per
  /// shard event queues, conservative lookahead = min_frame_latency()).
  /// Call once, after all nodes are added and before any middleware is
  /// started. shards = 1 (the default engine state) is the exact serial
  /// loop; any K produces byte-identical outcomes.
  void configure_shards(std::size_t shards);

  /// The minimum virtual latency of any frame (MAC overhead plus an empty
  /// payload's serialization time, no preamble, no jitter): the sharded
  /// engine's lookahead window.
  [[nodiscard]] SimTime min_frame_latency() const {
    return timing_.air_time(0);
  }

  // ------------------------------------------------------------- energy
  /// Creates per-node batteries (unless battery_mj <= 0) and starts
  /// charging TX/RX/idle energy. Call once, after all nodes are added;
  /// nodes added later get no battery. With gateway_powered, node 0 is
  /// mains-powered (no battery, never churned).
  void attach_energy(const energy::EnergyOptions& options);

  /// The node's battery; nullptr when energy is not attached, for the
  /// powered gateway, or for an out-of-range id.
  [[nodiscard]] energy::Battery* battery(NodeId id);
  [[nodiscard]] const energy::Battery* battery(NodeId id) const;

  /// Settles every battery's idle draw up to now() (call before reading
  /// ledgers mid-run; death checks do this automatically).
  void settle_batteries();

  [[nodiscard]] const energy::EnergyOptions* energy_options() const {
    return energy_ ? &energy_->options : nullptr;
  }
  [[nodiscard]] const energy::DutyCycler& duty_cycler() const;

  /// The node's own duty cycler. Identical to duty_cycler() under static
  /// LPL; diverges per node once the adaptive controller runs.
  [[nodiscard]] const energy::DutyCycler& node_duty(NodeId id) const;

  // ------------------------------------------------- node death & churn
  /// Starts Poisson per-node crash (and optional reboot) events. Requires
  /// nodes to exist; the gateway is spared when energy options say so (or
  /// always, when energy is not attached).
  void enable_churn(ChurnOptions options);

  /// Kills a node now: radio off, queued-but-unstarted frames dropped,
  /// idle draw stopped, node-down handler invoked. A frame already on the
  /// air completes (fate sealed at start). Idempotent.
  void kill_node(NodeId id, NodeDownReason reason);

  /// Reboots a killed node (fresh radio state). No-op if the node is
  /// alive or its battery is depleted.
  void revive_node(NodeId id);

  [[nodiscard]] bool alive(NodeId id) const;
  [[nodiscard]] std::size_t alive_count() const;

  void set_node_down_handler(NodeDownHandler handler) {
    node_down_ = std::move(handler);
  }
  void set_node_up_handler(NodeUpHandler handler) {
    node_up_ = std::move(handler);
  }
  void set_frame_tx_tap(FrameTxTap tap) { tx_tap_ = std::move(tap); }
  void set_frame_rx_tap(FrameRxTap tap) { rx_tap_ = std::move(tap); }
  void set_settle_tap(SettleTap tap) { settle_tap_ = std::move(tap); }

  [[nodiscard]] const NodeInfo& info(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const RadioModel& radio() const { return *radio_; }
  [[nodiscard]] const RadioTiming& timing() const { return timing_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Ground-truth connectivity (what the channel permits), ascending by
  /// node id. Protocol-level neighbour knowledge comes from beacons in
  /// net::NeighborTable. Served from the spatial bucket index: O(density)
  /// per call, not O(node_count).
  [[nodiscard]] std::vector<NodeId> connected_neighbors(NodeId id) const;

  /// Aggregated traffic/lifecycle counters. Counters accumulate per shard
  /// (each in its owning worker's cache line set) and merge here; call
  /// from the driving thread between run() calls.
  [[nodiscard]] NetworkStats stats() const;

 private:
  struct NodeState {
    NodeInfo info;
    ReceiveHandler receiver;
    std::deque<Frame> tx_queue;
    /// The frame currently on the air (shared with its per-receiver
    /// delivery events). Non-null == transmitting.
    std::shared_ptr<const Frame> in_flight;
    bool alive = true;
    std::unique_ptr<energy::Battery> battery;
    /// Per-node LPL schedule (meaningful only when energy is attached;
    /// moves per node under the adaptive controller).
    energy::DutyCycler duty;
    /// Frames this node's radio decoded since the last settle tick — the
    /// local traffic rate the adaptive controller observes.
    std::uint32_t frames_heard = 0;
  };

  struct EnergyState {
    energy::EnergyOptions options;
    energy::DutyCycler duty;
  };

  /// What a scheduled receiver-side event does with the frame.
  enum class RxRole : std::uint8_t {
    kBroadcast,   ///< broadcast copy: full receive path
    kUnicast,     ///< the addressed unicast target: full receive path
    kOverhear,    ///< in-range bystander: RX energy for the decode only
  };

  void try_start_tx(NodeState& node);
  /// Enumerates receivers and schedules their delivery events plus the
  /// sender-side finish, all at `arrival`.
  void launch_frame(NodeState& node, SimTime arrival);
  void finish_tx(NodeId id);
  /// Receiver-side delivery: runs in the receiver's stream at arrival
  /// time — alive/radio checks, loss draw from the receiver's RNG, RX
  /// energy, stats, and the upcall.
  void deliver_at(const std::shared_ptr<const Frame>& frame, NodeId rx,
                  RxRole role);
  /// The LPL preamble extension this frame pays: its per-receiver
  /// override when the net layer set one, the sender's own schedule
  /// otherwise.
  [[nodiscard]] SimTime preamble_for(const NodeState& sender,
                                     const Frame& frame) const;
  /// Clamped drain + deferred depletion kill (safe mid-delivery).
  void charge(NodeState& node, energy::EnergyComponent component, double mj);
  void schedule_settle_tick();
  void schedule_crash(NodeId id);

  /// The shard-local counter block for events concerning `id`.
  [[nodiscard]] NetworkStats& stats_for(NodeId id);

  // ------------------------------------------- spatial neighbour index
  /// Node ids bucketed into square cells of the radio's max_range().
  /// Rebuilt lazily after add_node (single-shard contexts only) and
  /// eagerly by configure_shards; connectivity itself is still decided by
  /// RadioModel::connected on the 3x3 candidate cells.
  void rebuild_index() const;
  void for_each_in_range(const NodeInfo& from,
                         const std::function<void(const NodeState&)>& fn)
      const;

  Simulator& sim_;
  std::unique_ptr<RadioModel> radio_;
  RadioTiming timing_;
  std::vector<NodeState> nodes_;
  std::optional<EnergyState> energy_;
  ChurnOptions churn_;
  NodeDownHandler node_down_;
  NodeUpHandler node_up_;
  FrameTxTap tx_tap_;
  FrameRxTap rx_tap_;
  SettleTap settle_tap_;
  /// One counter block per shard; stats() sums them.
  std::vector<NetworkStats> shard_stats_{1};

  mutable std::unordered_map<std::uint64_t, std::vector<NodeId>> index_;
  mutable double index_cell_ = 0.0;
  mutable bool index_dirty_ = true;
};

}  // namespace agilla::sim

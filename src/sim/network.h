// The simulated radio network: node registry, half-duplex transmit queues,
// loss, and delivery upcalls.
//
// Timing model (calibrated to the MICA2 CC1000 / TinyOS stack, see
// DESIGN.md): a frame occupies the sender's radio for
//     per_packet_overhead + on_air_bytes * 8 / bit_rate  (+ MAC jitter)
// after which it is delivered (or lost) at each receiver. A node transmits
// one frame at a time; later sends queue behind it — this is what makes a
// multi-message agent migration take several hundred milliseconds, exactly
// the effect the paper measures in Figs. 10/11.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/radio_model.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace agilla::sim {

/// A radio-level packet. Payload layouts are defined by the net/ layer.
struct Frame {
  NodeId src;
  NodeId dst;  ///< kBroadcastNode for beacons
  AmType am = AmType::kAck;
  std::vector<std::uint8_t> payload;
};

struct RadioTiming {
  double bit_rate_bps = 38'400.0;        ///< CC1000 on MICA2
  /// CC1000 preamble + TinyOS MAC backoff + task handoff. Calibrated so a
  /// one-hop rout round trip lands near the paper's ~55 ms and a one-hop
  /// strong migration (4 acked messages) near ~200 ms (see DESIGN.md).
  SimTime per_packet_overhead = 18 * kMillisecond;
  SimTime max_jitter = 3 * kMillisecond; ///< uniform extra backoff
  std::size_t header_bytes = 7;          ///< TOS_Msg header + CRC

  [[nodiscard]] SimTime air_time(std::size_t payload_bytes) const;
};

struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;      ///< channel loss events (per receiver)
  std::uint64_t frames_unreachable = 0;  ///< unicast to a non-neighbour
  std::uint64_t bytes_on_air = 0;
  std::unordered_map<AmType, std::uint64_t> sent_by_type;

  void reset() { *this = NetworkStats{}; }
};

class Network {
 public:
  using ReceiveHandler = std::function<void(const Frame&)>;

  Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
          RadioTiming timing = {});

  /// Register a node at `loc`. Returns its dense id.
  NodeId add_node(Location loc);

  /// Install the (single) receive upcall for a node. The net/ layer
  /// dispatches by AM type from here.
  void set_receiver(NodeId id, ReceiveHandler handler);

  /// Queue a frame for transmission from frame.src. Takes effect in virtual
  /// time; the call itself returns immediately.
  void send(Frame frame);

  /// Turn a node's radio on/off. A disabled node neither transmits (its
  /// queue stalls) nor receives. Used for failure injection and for the
  /// paper's local-instruction benchmarks ("we disabled the radio").
  void set_radio_enabled(NodeId id, bool enabled);

  [[nodiscard]] const NodeInfo& info(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const RadioModel& radio() const { return *radio_; }
  [[nodiscard]] const RadioTiming& timing() const { return timing_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }

  /// Ground-truth connectivity (what the channel permits). Protocol-level
  /// neighbour knowledge comes from beacons in net::NeighborTable.
  [[nodiscard]] std::vector<NodeId> connected_neighbors(NodeId id) const;

  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }

 private:
  struct NodeState {
    NodeInfo info;
    ReceiveHandler receiver;
    std::deque<Frame> tx_queue;
    bool transmitting = false;
  };

  void try_start_tx(NodeState& node);
  void finish_tx(NodeId id);
  void deliver(const Frame& frame, const NodeInfo& sender);

  Simulator& sim_;
  std::unique_ptr<RadioModel> radio_;
  RadioTiming timing_;
  std::vector<NodeState> nodes_;
  NetworkStats stats_;
};

}  // namespace agilla::sim

// The simulation kernel: virtual clock + event loop + the root RNG.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace agilla::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `cb` to run `delay` microseconds from now.
  EventHandle schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute virtual time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, EventQueue::Callback cb);

  /// Run events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= deadline; the clock ends at `deadline` even if
  /// the queue drained earlier. Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  std::size_t run_for(SimTime duration);

  /// True while the event loop is executing a callback.
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  std::size_t drain(SimTime deadline);

  EventQueue queue_;
  SimTime now_ = 0;
  Rng rng_;
  bool running_ = false;
};

}  // namespace agilla::sim

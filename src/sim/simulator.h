// The simulation kernel: virtual clock, event loop, and RNG streams —
// optionally sharded across a worker pool.
//
// Execution model (DESIGN.md "Sharded event engine"):
//
//  - Every event belongs to a stream: the kernel stream (0) for setup code,
//    the main thread between run() calls, and global events (battery settle
//    tick); stream n + 1 for node n. Events are ordered by the intrinsic
//    key (time, scheduled-from stream, per-stream seq), so the total order
//    is a property of the events themselves, never of thread arrival.
//  - Streams are grouped into shards (configure_shards). Each shard owns an
//    event queue; kernel events live in a separate queue and always run on
//    the driving thread with no shard concurrently executing.
//  - With one shard (the default) the loop is serial and processes events
//    in exact key order. With K shards, the loop runs barrier epochs: the
//    window [t_min, t_min + lookahead) is safe because any cross-shard
//    event costs at least `lookahead` of virtual latency (the minimum
//    radio frame time, see Network::min_frame_latency). Inside an epoch
//    each shard drains its own queue in key order on a pool worker;
//    cross-shard schedules buffer in per-shard outboxes and merge at the
//    barrier. Because keys are intrinsic, the merged order — and therefore
//    every simulation outcome — is byte-identical for any shard count.
//  - Each stream also owns an RNG: node-affine randomness (MAC jitter,
//    channel loss, churn, the VM rand instruction) draws from node_rng(),
//    keeping draw sequences independent of shard count. The root rng() is
//    for setup and tests only and must not be consumed from node events.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace agilla::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time: the executing event's timestamp from inside a
  /// callback (shard-local during an epoch), the global clock otherwise.
  [[nodiscard]] SimTime now() const;

  /// The root RNG stream: setup-time draws and tests. Must not be used
  /// from node-context events — those draw from node_rng() so that the
  /// sequence each node sees is independent of shard count.
  [[nodiscard]] Rng& rng();

  /// The node's private RNG stream (derived from the root seed and the
  /// node id). Callable from the kernel context or from an event running
  /// in this node's own stream.
  [[nodiscard]] Rng& node_rng(NodeId id);

  /// Pre-creates streams for nodes [0, count). Called by Network as nodes
  /// are added; setup-time only.
  void ensure_node_streams(std::size_t count);

  /// Schedule `cb` to run `delay` microseconds from now, in the current
  /// context's stream (kernel when called outside any event).
  EventHandle schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Schedule `cb` at absolute virtual time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, EventQueue::Callback cb);

  /// Schedule `cb` to run in node `affinity`'s stream — required when the
  /// scheduling context is not the node itself (setup code, kernel events,
  /// or another node's event, e.g. frame delivery at a receiver). A
  /// cross-shard schedule must land at least `lookahead` ahead of the
  /// scheduling event and returns an inert handle (it cannot be
  /// cancelled from another shard).
  EventHandle schedule_in(SimTime delay, NodeId affinity,
                          EventQueue::Callback cb);
  EventHandle schedule_at(SimTime at, NodeId affinity,
                          EventQueue::Callback cb);

  /// Partitions node streams into `shard_count` shards (node_shard[i] is
  /// node i's shard) and fixes the conservative lookahead window. Call
  /// once, after all nodes exist and before any node-affine event is
  /// scheduled. Shard counts > 1 spawn a persistent worker pool.
  void configure_shards(std::size_t shard_count,
                        std::vector<std::uint32_t> node_shard,
                        SimTime lookahead);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    assert(stream_of(id) < streams_.size());
    return streams_[stream_of(id)].shard;
  }

  /// Run events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= deadline; the clock ends at `deadline` even if
  /// the queue drained earlier. Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  /// Convenience: run_until(now() + duration).
  std::size_t run_for(SimTime duration);

  /// True while the event loop is executing events.
  [[nodiscard]] bool running() const { return running_; }

  /// Live scheduled events across all queues (exact; cancelled events do
  /// not count). Call between run() calls, not from inside events.
  [[nodiscard]] std::size_t pending_events() const;

 private:
  struct Stream {
    Rng rng;
    std::uint64_t next_seq = 0;
    std::uint32_t shard = 0;
  };

  /// A cross-shard (or kernel-scheduled-into-shard) event waiting for the
  /// epoch barrier to be merged into its destination queue.
  struct Outgoing {
    std::uint32_t dest_shard;
    EventKey key;
    StreamId target;
    EventQueue::Callback callback;
  };

  struct Shard {
    EventQueue queue;
    std::vector<Outgoing> outbox;
    SimTime max_executed = 0;
    std::size_t fired = 0;
  };

  struct WorkerPool;

  /// Per-thread execution state during an epoch (worker threads and the
  /// inline single-shard path).
  struct ExecContext {
    Simulator* sim = nullptr;
    std::uint32_t shard = 0;
    StreamId stream = kKernelStream;
    SimTime now = 0;
  };

  [[nodiscard]] ExecContext* current_context() const;
  EventHandle schedule_key(SimTime at, StreamId target,
                           EventQueue::Callback cb);
  std::size_t drain(SimTime deadline);
  /// Executes shard events with key < bound; worker body and the inline
  /// single-shard path.
  void run_shard(std::uint32_t shard, const EventKey& bound);
  void merge_outboxes();

  std::uint64_t seed_;
  EventQueue kernel_queue_;
  std::vector<Stream> streams_;  ///< [0] = kernel, [n+1] = node n
  std::vector<Shard> shards_;
  SimTime lookahead_ = 0;
  SimTime now_ = 0;
  bool running_ = false;
  bool shards_configured_ = false;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace agilla::sim

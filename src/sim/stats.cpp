#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace agilla::sim {

void Summary::add(double sample) {
  samples_.push_back(sample);
  total_ += sample;
  sorted_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return total_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - m) * (s - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  sort_if_needed();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  sort_if_needed();
  return samples_.back();
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  sort_if_needed();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string ascii_bar(double fraction, std::size_t width) {
  const double clamped = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(clamped * static_cast<double>(width) + 0.5);
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace agilla::sim

#include "sim/network.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace agilla::sim {
namespace {

/// Exponential inter-arrival sample for the Poisson churn process.
SimTime exponential_delay(Rng& rng, double rate_per_s) {
  // Clamp u away from 0 so -log(u) stays finite.
  const double u = std::max(rng.uniform01(), 1e-12);
  const double seconds = -std::log(u) / rate_per_s;
  return static_cast<SimTime>(seconds * 1e6) + 1;
}

}  // namespace

SimTime RadioTiming::air_time(std::size_t payload_bytes) const {
  return per_packet_overhead + serialization_time(payload_bytes);
}

SimTime RadioTiming::serialization_time(std::size_t payload_bytes) const {
  const double bits =
      static_cast<double>((payload_bytes + header_bytes) * 8);
  const double seconds = bits / bit_rate_bps;
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

Network::Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
                 RadioTiming timing)
    : sim_(sim), radio_(std::move(radio)), timing_(timing) {
  assert(radio_ != nullptr);
}

NodeId Network::add_node(Location loc) {
  const NodeId id{static_cast<std::uint16_t>(nodes_.size())};
  NodeState node;
  node.info = NodeInfo{id, loc, true};
  nodes_.push_back(std::move(node));
  return id;
}

void Network::set_receiver(NodeId id, ReceiveHandler handler) {
  nodes_.at(id.value).receiver = std::move(handler);
}

void Network::set_radio_enabled(NodeId id, bool enabled) {
  auto& node = nodes_.at(id.value);
  if (node.battery != nullptr &&
      enabled != node.info.radio_enabled) {
    // Pause/resume the idle-listen draw across the outage.
    node.battery->settle(sim_.now());
    node.battery->set_idle_draw_mw(
        enabled ? energy_->options.radio.listen_mw(
                      node.duty.listen_fraction())
                : 0.0);
  }
  node.info.radio_enabled = enabled;
  if (enabled) {
    try_start_tx(node);
  }
}

// --------------------------------------------------------------- energy

const energy::DutyCycler& Network::duty_cycler() const {
  static const energy::DutyCycler kDisabled;
  return energy_ ? energy_->duty : kDisabled;
}

const energy::DutyCycler& Network::node_duty(NodeId id) const {
  if (!energy_ || id.value >= nodes_.size()) {
    return duty_cycler();
  }
  return nodes_[id.value].duty;
}

void Network::attach_energy(const energy::EnergyOptions& options) {
  assert(!energy_.has_value());
  energy_ = EnergyState{options, energy::DutyCycler(options.duty)};
  for (NodeState& node : nodes_) {
    node.duty = energy::DutyCycler(options.duty);
  }
  if (options.battery_mj <= 0.0) {
    // Duty-cycle latency only; nodes stay immortal — but the adaptive
    // controller still needs its traffic tick.
    if (options.duty.adaptive) {
      schedule_settle_tick();
    }
    return;
  }
  for (NodeState& node : nodes_) {
    if (options.gateway_powered && node.info.id.value == 0) {
      continue;
    }
    node.battery =
        std::make_unique<energy::Battery>(options.battery_mj, sim_.now());
    node.battery->set_idle_draw_mw(
        node.info.radio_enabled
            ? options.radio.listen_mw(node.duty.listen_fraction())
            : 0.0);
  }
  schedule_settle_tick();
}

energy::Battery* Network::battery(NodeId id) {
  if (id.value >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[id.value].battery.get();
}

const energy::Battery* Network::battery(NodeId id) const {
  if (id.value >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[id.value].battery.get();
}

void Network::settle_batteries() {
  for (NodeState& node : nodes_) {
    if (node.battery != nullptr) {
      node.battery->settle(sim_.now());
    }
  }
}

void Network::schedule_settle_tick() {
  sim_.schedule_in(energy_->options.settle_period, [this] {
    for (NodeState& node : nodes_) {
      // Adaptive LPL: fold this tick's traffic into the node's schedule
      // and re-base the idle draw when the listen fraction moved.
      const std::uint32_t heard =
          std::exchange(node.frames_heard, std::uint32_t{0});
      const bool fraction_changed =
          node.alive && node.duty.observe(heard);
      if (node.battery == nullptr) {
        continue;
      }
      node.battery->settle(sim_.now());
      if (fraction_changed && node.info.radio_enabled) {
        node.battery->set_idle_draw_mw(energy_->options.radio.listen_mw(
            node.duty.listen_fraction()));
      }
      if (node.alive && node.battery->depleted()) {
        kill_node(node.info.id, NodeDownReason::kBatteryDepleted);
      }
    }
    if (settle_tap_) {
      settle_tap_();
    }
    schedule_settle_tick();
  });
}

void Network::charge(NodeState& node, energy::EnergyComponent component,
                     double mj) {
  if (node.battery == nullptr) {
    return;
  }
  node.battery->drain(component, mj);
  if (node.alive && node.battery->depleted()) {
    // Defer the kill to its own event: we may be mid-delivery, and the
    // node-down handler tears down middleware state.
    const NodeId id = node.info.id;
    sim_.schedule_in(0, [this, id] {
      auto& n = nodes_.at(id.value);
      if (n.alive && n.battery != nullptr && n.battery->depleted()) {
        kill_node(id, NodeDownReason::kBatteryDepleted);
      }
    });
  }
}

// ------------------------------------------------------ death and churn

void Network::enable_churn(ChurnOptions options) {
  churn_ = options;
  if (churn_.crash_rate_per_node_s <= 0.0) {
    return;
  }
  const bool spare_gateway = churn_.spare_gateway.value_or(
      !energy_ || energy_->options.gateway_powered);
  for (const NodeState& node : nodes_) {
    if (spare_gateway && node.info.id.value == 0) {
      continue;
    }
    schedule_crash(node.info.id);
  }
}

void Network::schedule_crash(NodeId id) {
  const SimTime delay =
      exponential_delay(sim_.rng(), churn_.crash_rate_per_node_s);
  sim_.schedule_in(delay, [this, id] {
    auto& node = nodes_.at(id.value);
    if (!node.alive) {
      return;  // already down (battery death); churn stops for it
    }
    kill_node(id, NodeDownReason::kChurnCrash);
    if (churn_.reboot_after > 0) {
      sim_.schedule_in(churn_.reboot_after, [this, id] {
        revive_node(id);
        if (nodes_.at(id.value).alive) {
          schedule_crash(id);
        }
      });
    }
  });
}

void Network::kill_node(NodeId id, NodeDownReason reason) {
  auto& node = nodes_.at(id.value);
  if (!node.alive) {
    return;
  }
  set_radio_enabled(id, false);  // settles + stops the idle draw
  node.alive = false;
  node.tx_doomed = node.transmitting;
  stats_.node_deaths++;
  if (node_down_) {
    node_down_(id, reason);
  }
}

void Network::revive_node(NodeId id) {
  auto& node = nodes_.at(id.value);
  if (node.alive) {
    return;
  }
  if (node.battery != nullptr && node.battery->depleted()) {
    return;  // nothing to boot with
  }
  node.alive = true;
  if (!node.transmitting) {
    node.tx_queue.clear();  // a fresh boot forgets queued frames
  }
  if (energy_) {
    // The adaptive LPL controller's state lived in the wiped RAM: the
    // rebooted MAC restarts from the configured schedule.
    node.duty = energy::DutyCycler(energy_->options.duty);
    node.frames_heard = 0;
  }
  stats_.node_reboots++;
  set_radio_enabled(id, true);  // resumes the idle draw
  if (node_up_) {
    node_up_(id);
  }
}

bool Network::alive(NodeId id) const {
  return id.value < nodes_.size() && nodes_[id.value].alive;
}

std::size_t Network::alive_count() const {
  std::size_t count = 0;
  for (const NodeState& node : nodes_) {
    if (node.alive) {
      ++count;
    }
  }
  return count;
}

// ------------------------------------------------------------ transport

const NodeInfo& Network::info(NodeId id) const {
  return nodes_.at(id.value).info;
}

std::vector<NodeId> Network::connected_neighbors(NodeId id) const {
  const auto& self = nodes_.at(id.value).info;
  std::vector<NodeId> out;
  for (const auto& other : nodes_) {
    if (other.info.id != id && radio_->connected(self, other.info)) {
      out.push_back(other.info.id);
    }
  }
  return out;
}

void Network::send(Frame frame) {
  auto& node = nodes_.at(frame.src.value);
  node.tx_queue.push_back(std::move(frame));
  try_start_tx(node);
}

SimTime Network::preamble_for(const NodeState& sender,
                              const Frame& frame) const {
  return frame.preamble.value_or(sender.duty.preamble_extension());
}

void Network::try_start_tx(NodeState& node) {
  if (node.transmitting || node.tx_queue.empty() ||
      !node.info.radio_enabled) {
    return;
  }
  node.transmitting = true;
  const Frame& frame = node.tx_queue.front();
  SimTime duration = timing_.air_time(frame.payload.size()) +
                     preamble_for(node, frame);
  if (timing_.max_jitter > 0) {
    duration += sim_.rng().uniform(timing_.max_jitter + 1);
  }
  const NodeId id = node.info.id;
  sim_.schedule_in(duration, [this, id] { finish_tx(id); });
}

void Network::finish_tx(NodeId id) {
  auto& node = nodes_.at(id.value);
  assert(node.transmitting && !node.tx_queue.empty());
  Frame frame = std::move(node.tx_queue.front());
  node.tx_queue.pop_front();
  node.transmitting = false;

  if (node.tx_doomed) {
    // The node died while this frame was on the air. Drop it — and the
    // rest of the pre-death queue, which revive_node() could not clear
    // while the finish event was pending — even if the node has already
    // been revived.
    node.tx_doomed = false;
    node.tx_queue.clear();
    return;
  }
  if (!node.info.radio_enabled) {
    return;  // radio switched off mid-transmission; the frame never lands
  }

  stats_.frames_sent++;
  stats_.sent_by_type[frame.am]++;
  stats_.bytes_on_air += frame.payload.size() + timing_.header_bytes;
  if (energy_) {
    charge(node, energy::EnergyComponent::kRadioTx,
           energy_->options.radio.tx_mj(
               timing_.serialization_time(frame.payload.size()) +
               preamble_for(node, frame)));
  }
  if (tx_tap_) {
    tx_tap_(frame);
  }

  deliver(frame, node.info);
  try_start_tx(node);
}

void Network::deliver(const Frame& frame, const NodeInfo& sender) {
  const std::size_t on_air = frame.payload.size() + timing_.header_bytes;
  const SimTime decode_time =
      timing_.serialization_time(frame.payload.size());
  const auto charge_rx = [&](NodeState& receiver) {
    receiver.frames_heard++;  // traffic signal for the adaptive controller
    if (energy_) {
      charge(receiver, energy::EnergyComponent::kRadioRx,
             energy_->options.radio.rx_mj(decode_time));
    }
  };
  if (frame.dst.is_broadcast()) {
    for (auto& other : nodes_) {
      if (other.info.id == sender.id || !other.info.radio_enabled ||
          !radio_->connected(sender, other.info)) {
        continue;
      }
      charge_rx(other);  // the radio decodes the frame, lost or not
      if (sim_.rng().chance(
              radio_->loss_probability(sender, other.info, on_air))) {
        stats_.frames_lost++;
        if (rx_tap_) {
          rx_tap_(frame, other.info.id, /*lost=*/true);
        }
        continue;
      }
      stats_.frames_delivered++;
      if (rx_tap_) {
        rx_tap_(frame, other.info.id, /*lost=*/false);
      }
      if (other.receiver) {
        other.receiver(frame);
      }
    }
    return;
  }

  if (frame.dst.value >= nodes_.size()) {
    stats_.frames_unreachable++;
    return;
  }
  // Overhearing (energy option, off in the paper model): every awake
  // in-range radio decodes the unicast frame before its address filter
  // drops it, and pays RX for the decode. Pure energy accounting —
  // charged before the addressed target in node-index order, no
  // randomness consumed, and deliberately NOT counted in frames_heard
  // (filtered frames are not traffic the adaptive-LPL controller acts
  // on), so delivery outcomes and LPL schedules are untouched.
  if (energy_ && energy_->options.overhearing) {
    const double overheard_mj = energy_->options.radio.rx_mj(decode_time);
    for (auto& other : nodes_) {
      if (other.info.id == sender.id || other.info.id == frame.dst ||
          !other.info.radio_enabled ||
          !radio_->connected(sender, other.info)) {
        continue;
      }
      charge(other, energy::EnergyComponent::kRadioRx, overheard_mj);
    }
  }
  auto& target = nodes_.at(frame.dst.value);
  if (!target.info.radio_enabled ||
      !radio_->connected(sender, target.info)) {
    stats_.frames_unreachable++;
    return;
  }
  charge_rx(target);
  if (sim_.rng().chance(
          radio_->loss_probability(sender, target.info, on_air))) {
    stats_.frames_lost++;
    if (rx_tap_) {
      rx_tap_(frame, target.info.id, /*lost=*/true);
    }
    return;
  }
  stats_.frames_delivered++;
  if (rx_tap_) {
    rx_tap_(frame, target.info.id, /*lost=*/false);
  }
  if (target.receiver) {
    target.receiver(frame);
  }
}

}  // namespace agilla::sim

#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace agilla::sim {
namespace {

/// Exponential inter-arrival sample for the Poisson churn process.
SimTime exponential_delay(Rng& rng, double rate_per_s) {
  // Clamp u away from 0 so -log(u) stays finite.
  const double u = std::max(rng.uniform01(), 1e-12);
  const double seconds = -std::log(u) / rate_per_s;
  return static_cast<SimTime>(seconds * 1e6) + 1;
}

std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

}  // namespace

SimTime RadioTiming::air_time(std::size_t payload_bytes) const {
  return per_packet_overhead + serialization_time(payload_bytes);
}

SimTime RadioTiming::serialization_time(std::size_t payload_bytes) const {
  const double bits =
      static_cast<double>((payload_bytes + header_bytes) * 8);
  const double seconds = bits / bit_rate_bps;
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

Network::Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
                 RadioTiming timing)
    : sim_(sim), radio_(std::move(radio)), timing_(timing) {
  assert(radio_ != nullptr);
}

NodeId Network::add_node(Location loc) {
  const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
  NodeState node;
  node.info = NodeInfo{id, loc, true};
  nodes_.push_back(std::move(node));
  sim_.ensure_node_streams(nodes_.size());
  index_dirty_ = true;
  return id;
}

void Network::set_receiver(NodeId id, ReceiveHandler handler) {
  nodes_.at(id.value).receiver = std::move(handler);
}

void Network::set_radio_enabled(NodeId id, bool enabled) {
  auto& node = nodes_.at(id.value);
  if (node.battery != nullptr &&
      enabled != node.info.radio_enabled) {
    // Pause/resume the idle-listen draw across the outage.
    node.battery->settle(sim_.now());
    node.battery->set_idle_draw_mw(
        enabled ? energy_->options.radio.listen_mw(
                      node.duty.listen_fraction())
                : 0.0);
  }
  node.info.radio_enabled = enabled;
  if (enabled) {
    try_start_tx(node);
  }
}

// ------------------------------------------------------------- sharding

void Network::configure_shards(std::size_t shards) {
  shards = std::max<std::size_t>(shards, 1);
  shards = std::min(shards, std::max<std::size_t>(nodes_.size(), 1));
  // Contiguous x-strips: radio range is short, so strip borders are the
  // only cross-shard traffic, and a uniform grid splits evenly.
  double min_x = 0.0;
  double max_x = 0.0;
  if (!nodes_.empty()) {
    min_x = max_x = nodes_.front().info.location.x;
    for (const NodeState& node : nodes_) {
      min_x = std::min(min_x, node.info.location.x);
      max_x = std::max(max_x, node.info.location.x);
    }
  }
  const double span = max_x - min_x;
  std::vector<std::uint32_t> map(nodes_.size(), 0);
  if (span > 0.0 && shards > 1) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const double frac = (nodes_[i].info.location.x - min_x) / span;
      const auto shard = static_cast<std::uint32_t>(
          frac * static_cast<double>(shards));
      map[i] = std::min(shard, static_cast<std::uint32_t>(shards - 1));
    }
  }
  sim_.configure_shards(shards, std::move(map), min_frame_latency());
  shard_stats_.assign(sim_.shard_count(), NetworkStats{});
  rebuild_index();
}

NetworkStats& Network::stats_for(NodeId id) {
  if (shard_stats_.size() == 1) {
    return shard_stats_.front();
  }
  return shard_stats_[sim_.shard_of(id)];
}

NetworkStats Network::stats() const {
  NetworkStats total;
  for (const NetworkStats& shard : shard_stats_) {
    total.frames_sent += shard.frames_sent;
    total.frames_delivered += shard.frames_delivered;
    total.frames_lost += shard.frames_lost;
    total.frames_unreachable += shard.frames_unreachable;
    total.bytes_on_air += shard.bytes_on_air;
    total.node_deaths += shard.node_deaths;
    total.node_reboots += shard.node_reboots;
    for (const auto& [am, count] : shard.sent_by_type) {
      total.sent_by_type[am] += count;
    }
  }
  return total;
}

// ------------------------------------------- spatial neighbour index

void Network::rebuild_index() const {
  index_.clear();
  index_cell_ = std::max(radio_->max_range(), 1e-9);
  for (const NodeState& node : nodes_) {
    const auto cx = static_cast<std::int32_t>(
        std::floor(node.info.location.x / index_cell_));
    const auto cy = static_cast<std::int32_t>(
        std::floor(node.info.location.y / index_cell_));
    index_[cell_key(cx, cy)].push_back(node.info.id);
  }
  index_dirty_ = false;
}

void Network::for_each_in_range(
    const NodeInfo& from,
    const std::function<void(const NodeState&)>& fn) const {
  if (index_dirty_) {
    // Lazy rebuilds happen only in serial contexts (unit tests adding
    // nodes ad hoc); sharded deployments build eagerly in
    // configure_shards before any traffic exists.
    assert(sim_.shard_count() == 1);
    rebuild_index();
  }
  const auto cx = static_cast<std::int32_t>(
      std::floor(from.location.x / index_cell_));
  const auto cy = static_cast<std::int32_t>(
      std::floor(from.location.y / index_cell_));
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = index_.find(cell_key(cx + dx, cy + dy));
      if (it == index_.end()) {
        continue;
      }
      for (const NodeId id : it->second) {
        fn(nodes_[id.value]);
      }
    }
  }
}

// --------------------------------------------------------------- energy

const energy::DutyCycler& Network::duty_cycler() const {
  static const energy::DutyCycler kDisabled;
  return energy_ ? energy_->duty : kDisabled;
}

const energy::DutyCycler& Network::node_duty(NodeId id) const {
  if (!energy_ || id.value >= nodes_.size()) {
    return duty_cycler();
  }
  return nodes_[id.value].duty;
}

void Network::attach_energy(const energy::EnergyOptions& options) {
  assert(!energy_.has_value());
  energy_ = EnergyState{options, energy::DutyCycler(options.duty)};
  for (NodeState& node : nodes_) {
    node.duty = energy::DutyCycler(options.duty);
  }
  if (options.battery_mj <= 0.0) {
    // Duty-cycle latency only; nodes stay immortal — but the adaptive
    // controller still needs its traffic tick.
    if (options.duty.adaptive) {
      schedule_settle_tick();
    }
    return;
  }
  for (NodeState& node : nodes_) {
    if (options.gateway_powered && node.info.id.value == 0) {
      continue;
    }
    node.battery =
        std::make_unique<energy::Battery>(options.battery_mj, sim_.now());
    node.battery->set_idle_draw_mw(
        node.info.radio_enabled
            ? options.radio.listen_mw(node.duty.listen_fraction())
            : 0.0);
  }
  schedule_settle_tick();
}

energy::Battery* Network::battery(NodeId id) {
  if (id.value >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[id.value].battery.get();
}

const energy::Battery* Network::battery(NodeId id) const {
  if (id.value >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[id.value].battery.get();
}

void Network::settle_batteries() {
  for (NodeState& node : nodes_) {
    if (node.battery != nullptr) {
      node.battery->settle(sim_.now());
    }
  }
}

void Network::schedule_settle_tick() {
  // The settle tick walks every node, so it stays a kernel-stream event:
  // it runs at an epoch barrier with all shards quiescent, in exact node
  // order, exactly as the serial loop ran it.
  sim_.schedule_in(energy_->options.settle_period, [this] {
    for (NodeState& node : nodes_) {
      // Adaptive LPL: fold this tick's traffic into the node's schedule
      // and re-base the idle draw when the listen fraction moved.
      const std::uint32_t heard =
          std::exchange(node.frames_heard, std::uint32_t{0});
      // Congestion signal: the node's own pending TX backlog (queued
      // frames plus the one on air) counts toward "busy" so a loaded
      // node does not widen its check period mid-burst.
      const auto tx_pending = static_cast<std::uint32_t>(
          node.tx_queue.size() + (node.in_flight ? 1 : 0));
      const bool fraction_changed =
          node.alive && node.duty.observe(heard, tx_pending);
      if (node.battery == nullptr) {
        continue;
      }
      node.battery->settle(sim_.now());
      if (fraction_changed && node.info.radio_enabled) {
        node.battery->set_idle_draw_mw(energy_->options.radio.listen_mw(
            node.duty.listen_fraction()));
      }
      if (node.alive && node.battery->depleted()) {
        kill_node(node.info.id, NodeDownReason::kBatteryDepleted);
      }
    }
    if (settle_tap_) {
      settle_tap_();
    }
    schedule_settle_tick();
  });
}

void Network::charge(NodeState& node, energy::EnergyComponent component,
                     double mj) {
  if (node.battery == nullptr) {
    return;
  }
  node.battery->drain(component, mj);
  if (node.alive && node.battery->depleted()) {
    // Defer the kill to its own event: we may be mid-delivery, and the
    // node-down handler tears down middleware state.
    const NodeId id = node.info.id;
    sim_.schedule_in(0, id, [this, id] {
      auto& n = nodes_.at(id.value);
      if (n.alive && n.battery != nullptr && n.battery->depleted()) {
        kill_node(id, NodeDownReason::kBatteryDepleted);
      }
    });
  }
}

// ------------------------------------------------------ death and churn

void Network::enable_churn(ChurnOptions options) {
  churn_ = options;
  if (churn_.crash_rate_per_node_s <= 0.0) {
    return;
  }
  const bool spare_gateway = churn_.spare_gateway.value_or(
      !energy_ || energy_->options.gateway_powered);
  for (const NodeState& node : nodes_) {
    if (spare_gateway && node.info.id.value == 0) {
      continue;
    }
    schedule_crash(node.info.id);
  }
}

void Network::schedule_crash(NodeId id) {
  // Crash delays draw from the node's own stream so churn timing is
  // independent of every other node — and of the shard count.
  const SimTime delay =
      exponential_delay(sim_.node_rng(id), churn_.crash_rate_per_node_s);
  sim_.schedule_in(delay, id, [this, id] {
    auto& node = nodes_.at(id.value);
    if (!node.alive) {
      return;  // already down (battery death); churn stops for it
    }
    kill_node(id, NodeDownReason::kChurnCrash);
    if (churn_.reboot_after > 0) {
      sim_.schedule_in(churn_.reboot_after, id, [this, id] {
        revive_node(id);
        if (nodes_.at(id.value).alive) {
          schedule_crash(id);
        }
      });
    }
  });
}

void Network::kill_node(NodeId id, NodeDownReason reason) {
  auto& node = nodes_.at(id.value);
  if (!node.alive) {
    return;
  }
  set_radio_enabled(id, false);  // settles + stops the idle draw
  node.alive = false;
  // Queued-but-unstarted frames die with the node. A frame already on
  // the air completes: its fate (and its receivers' events) was sealed
  // at transmit start — see DESIGN.md "Sharded event engine".
  node.tx_queue.clear();
  stats_for(id).node_deaths++;
  if (node_down_) {
    node_down_(id, reason);
  }
}

void Network::revive_node(NodeId id) {
  auto& node = nodes_.at(id.value);
  if (node.alive) {
    return;
  }
  if (node.battery != nullptr && node.battery->depleted()) {
    return;  // nothing to boot with
  }
  node.alive = true;
  node.tx_queue.clear();  // a fresh boot forgets queued frames
  if (energy_) {
    // The adaptive LPL controller's state lived in the wiped RAM: the
    // rebooted MAC restarts from the configured schedule.
    node.duty = energy::DutyCycler(energy_->options.duty);
    node.frames_heard = 0;
  }
  stats_for(id).node_reboots++;
  set_radio_enabled(id, true);  // resumes the idle draw
  if (node_up_) {
    node_up_(id);
  }
}

bool Network::alive(NodeId id) const {
  return id.value < nodes_.size() && nodes_[id.value].alive;
}

std::size_t Network::alive_count() const {
  std::size_t count = 0;
  for (const NodeState& node : nodes_) {
    if (node.alive) {
      ++count;
    }
  }
  return count;
}

// ------------------------------------------------------------ transport

const NodeInfo& Network::info(NodeId id) const {
  return nodes_.at(id.value).info;
}

std::vector<NodeId> Network::connected_neighbors(NodeId id) const {
  const auto& self = nodes_.at(id.value).info;
  std::vector<NodeId> out;
  for_each_in_range(self, [&](const NodeState& other) {
    if (other.info.id != id && radio_->connected(self, other.info)) {
      out.push_back(other.info.id);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

void Network::send(Frame frame) {
  auto& node = nodes_.at(frame.src.value);
  node.tx_queue.push_back(std::move(frame));
  try_start_tx(node);
}

SimTime Network::preamble_for(const NodeState& sender,
                              const Frame& frame) const {
  return frame.preamble.value_or(sender.duty.preamble_extension());
}

void Network::try_start_tx(NodeState& node) {
  if (node.in_flight != nullptr || node.tx_queue.empty() ||
      !node.info.radio_enabled) {
    return;
  }
  node.in_flight =
      std::make_shared<const Frame>(std::move(node.tx_queue.front()));
  node.tx_queue.pop_front();
  const Frame& frame = *node.in_flight;
  SimTime duration = timing_.air_time(frame.payload.size()) +
                     preamble_for(node, frame);
  if (timing_.max_jitter > 0) {
    // MAC jitter from the sender's stream: every duration is therefore
    // >= min_frame_latency(), the sharded engine's lookahead.
    duration += sim_.node_rng(frame.src).uniform(timing_.max_jitter + 1);
  }
  launch_frame(node, sim_.now() + duration);
}

void Network::launch_frame(NodeState& node, SimTime arrival) {
  // The frame's fate is decided here, at transmit start: candidate
  // receivers are enumerated from static geometry and each gets a
  // delivery event in its own stream at the arrival time. Receiver-local
  // conditions (radio off, channel loss) are evaluated at delivery, in
  // the receiver's context.
  const std::shared_ptr<const Frame> frame = node.in_flight;
  const NodeInfo& sender = node.info;
  if (frame->dst.is_broadcast()) {
    for_each_in_range(sender, [&](const NodeState& other) {
      if (other.info.id == sender.id ||
          !radio_->connected(sender, other.info)) {
        return;
      }
      const NodeId rx = other.info.id;
      sim_.schedule_at(arrival, rx, [this, frame, rx] {
        deliver_at(frame, rx, RxRole::kBroadcast);
      });
    });
  } else {
    // Overhearing (energy option, off in the paper model): every awake
    // in-range radio decodes the unicast frame before its address filter
    // drops it, and pays RX for the decode. Pure energy accounting — not
    // counted in frames_heard (filtered frames are not traffic the
    // adaptive-LPL controller acts on), no taps, no randomness.
    if (energy_ && energy_->options.overhearing) {
      for_each_in_range(sender, [&](const NodeState& other) {
        if (other.info.id == sender.id || other.info.id == frame->dst ||
            !radio_->connected(sender, other.info)) {
          return;
        }
        const NodeId rx = other.info.id;
        sim_.schedule_at(arrival, rx, [this, frame, rx] {
          deliver_at(frame, rx, RxRole::kOverhear);
        });
      });
    }
    if (frame->dst.value < nodes_.size() &&
        radio_->connected(sender, nodes_[frame->dst.value].info)) {
      const NodeId rx = frame->dst;
      sim_.schedule_at(arrival, rx, [this, frame, rx] {
        deliver_at(frame, rx, RxRole::kUnicast);
      });
    }
    // Out-of-range / invalid destinations are counted unreachable at
    // finish_tx, sender-side.
  }
  const NodeId src = sender.id;
  sim_.schedule_at(arrival, src, [this, src] { finish_tx(src); });
}

void Network::finish_tx(NodeId id) {
  auto& node = nodes_.at(id.value);
  assert(node.in_flight != nullptr);
  const Frame& frame = *node.in_flight;
  NetworkStats& stats = stats_for(id);
  stats.frames_sent++;
  stats.sent_by_type[frame.am]++;
  stats.bytes_on_air += frame.payload.size() + timing_.header_bytes;
  if (!frame.dst.is_broadcast()) {
    if (frame.dst.value >= nodes_.size() ||
        !radio_->connected(node.info, nodes_[frame.dst.value].info)) {
      stats.frames_unreachable++;
    }
  }
  if (energy_) {
    charge(node, energy::EnergyComponent::kRadioTx,
           energy_->options.radio.tx_mj(
               timing_.serialization_time(frame.payload.size()) +
               preamble_for(node, frame)));
  }
  if (tx_tap_) {
    tx_tap_(frame);
  }
  node.in_flight.reset();
  try_start_tx(node);
}

void Network::deliver_at(const std::shared_ptr<const Frame>& frame,
                         NodeId rx_id, RxRole role) {
  auto& rx = nodes_.at(rx_id.value);
  if (!rx.info.radio_enabled) {
    if (role == RxRole::kUnicast) {
      stats_for(rx_id).frames_unreachable++;
    }
    return;
  }
  const SimTime decode_time =
      timing_.serialization_time(frame->payload.size());
  if (role == RxRole::kOverhear) {
    charge(rx, energy::EnergyComponent::kRadioRx,
           energy_->options.radio.rx_mj(decode_time));
    return;
  }
  rx.frames_heard++;  // traffic signal for the adaptive controller
  if (energy_) {
    charge(rx, energy::EnergyComponent::kRadioRx,
           energy_->options.radio.rx_mj(decode_time));
  }
  // Loss draws from the receiver's stream: which frames a node loses is a
  // fact about that node's channel, invariant across shard layouts. Only
  // the sender's static location feeds the loss model.
  const std::size_t on_air = frame->payload.size() + timing_.header_bytes;
  const NodeInfo& sender_info = nodes_[frame->src.value].info;
  if (sim_.node_rng(rx_id).chance(
          radio_->loss_probability(sender_info, rx.info, on_air))) {
    stats_for(rx_id).frames_lost++;
    if (rx_tap_) {
      rx_tap_(*frame, rx_id, /*lost=*/true);
    }
    return;
  }
  stats_for(rx_id).frames_delivered++;
  if (rx_tap_) {
    rx_tap_(*frame, rx_id, /*lost=*/false);
  }
  if (rx.receiver) {
    rx.receiver(*frame);
  }
}

}  // namespace agilla::sim

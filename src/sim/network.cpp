#include "sim/network.h"

#include <cassert>
#include <utility>

namespace agilla::sim {

SimTime RadioTiming::air_time(std::size_t payload_bytes) const {
  const double bits =
      static_cast<double>((payload_bytes + header_bytes) * 8);
  const double seconds = bits / bit_rate_bps;
  return per_packet_overhead +
         static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

Network::Network(Simulator& sim, std::unique_ptr<RadioModel> radio,
                 RadioTiming timing)
    : sim_(sim), radio_(std::move(radio)), timing_(timing) {
  assert(radio_ != nullptr);
}

NodeId Network::add_node(Location loc) {
  const NodeId id{static_cast<std::uint16_t>(nodes_.size())};
  nodes_.push_back(NodeState{NodeInfo{id, loc, true}, nullptr, {}, false});
  return id;
}

void Network::set_receiver(NodeId id, ReceiveHandler handler) {
  nodes_.at(id.value).receiver = std::move(handler);
}

void Network::set_radio_enabled(NodeId id, bool enabled) {
  auto& node = nodes_.at(id.value);
  node.info.radio_enabled = enabled;
  if (enabled) {
    try_start_tx(node);
  }
}

const NodeInfo& Network::info(NodeId id) const {
  return nodes_.at(id.value).info;
}

std::vector<NodeId> Network::connected_neighbors(NodeId id) const {
  const auto& self = nodes_.at(id.value).info;
  std::vector<NodeId> out;
  for (const auto& other : nodes_) {
    if (other.info.id != id && radio_->connected(self, other.info)) {
      out.push_back(other.info.id);
    }
  }
  return out;
}

void Network::send(Frame frame) {
  auto& node = nodes_.at(frame.src.value);
  node.tx_queue.push_back(std::move(frame));
  try_start_tx(node);
}

void Network::try_start_tx(NodeState& node) {
  if (node.transmitting || node.tx_queue.empty() ||
      !node.info.radio_enabled) {
    return;
  }
  node.transmitting = true;
  const Frame& frame = node.tx_queue.front();
  SimTime duration = timing_.air_time(frame.payload.size());
  if (timing_.max_jitter > 0) {
    duration += sim_.rng().uniform(timing_.max_jitter + 1);
  }
  const NodeId id = node.info.id;
  sim_.schedule_in(duration, [this, id] { finish_tx(id); });
}

void Network::finish_tx(NodeId id) {
  auto& node = nodes_.at(id.value);
  assert(node.transmitting && !node.tx_queue.empty());
  Frame frame = std::move(node.tx_queue.front());
  node.tx_queue.pop_front();
  node.transmitting = false;

  stats_.frames_sent++;
  stats_.sent_by_type[frame.am]++;
  stats_.bytes_on_air += frame.payload.size() + timing_.header_bytes;

  deliver(frame, node.info);
  try_start_tx(node);
}

void Network::deliver(const Frame& frame, const NodeInfo& sender) {
  const std::size_t on_air = frame.payload.size() + timing_.header_bytes;
  if (frame.dst.is_broadcast()) {
    for (auto& other : nodes_) {
      if (other.info.id == sender.id || !other.info.radio_enabled ||
          !radio_->connected(sender, other.info)) {
        continue;
      }
      if (sim_.rng().chance(
              radio_->loss_probability(sender, other.info, on_air))) {
        stats_.frames_lost++;
        continue;
      }
      stats_.frames_delivered++;
      if (other.receiver) {
        other.receiver(frame);
      }
    }
    return;
  }

  if (frame.dst.value >= nodes_.size()) {
    stats_.frames_unreachable++;
    return;
  }
  auto& target = nodes_.at(frame.dst.value);
  if (!target.info.radio_enabled ||
      !radio_->connected(sender, target.info)) {
    stats_.frames_unreachable++;
    return;
  }
  if (sim_.rng().chance(
          radio_->loss_probability(sender, target.info, on_air))) {
    stats_.frames_lost++;
    return;
  }
  stats_.frames_delivered++;
  if (target.receiver) {
    target.receiver(frame);
  }
}

}  // namespace agilla::sim

// The discrete-event core: a time-ordered queue of callbacks.
//
// Events are ordered by an intrinsic key (time, stream, seq): the stream is
// the logical context the event was scheduled FROM (kernel = 0, node n =
// n + 1) and seq is that stream's schedule counter at scheduling time. The
// key is a property of the event itself, not of which queue or thread it
// happens to sit in — this is what lets the sharded simulator (see
// sim/simulator.h) merge cross-shard events at epoch barriers and still
// execute in exactly the order a serial run would.
//
// Storage is a slab: entries live in a recycled slot pool addressed by a
// small binary heap of (key, slot) pairs, and EventHandles carry a
// (slot, generation) pair instead of a heap-allocated alive flag. A
// cancelled handle whose slot has been recycled simply sees a stale
// generation and becomes inert. Scheduling a small-capture callback costs
// zero heap allocations once the pools are warm.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace agilla::sim {

/// Logical event stream: the ordering (and RNG) context of an event.
/// Stream 0 is the kernel (setup code, the main thread between runs, and
/// global events like the battery settle tick); node n uses stream n + 1.
using StreamId = std::uint32_t;

inline constexpr StreamId kKernelStream = 0;

[[nodiscard]] constexpr StreamId stream_of(NodeId id) {
  return static_cast<StreamId>(id.value) + 1;
}

/// Total order over events. Scheduled-from context and per-stream sequence
/// break timestamp ties, so the order is independent of heap internals,
/// shard count, and thread arrival.
struct EventKey {
  SimTime time = 0;
  StreamId stream = kKernelStream;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const EventKey&,
                                    const EventKey&) = default;
};

class EventQueue;

/// Handle for cancelling a scheduled event. Internally (queue, slot,
/// generation): when the slot is recycled after the event fires or is
/// cancelled, the generation no longer matches and the handle is inert.
/// Handles must not outlive their queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// after the event fired (even if the slot has been reused since).
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at` on the kernel stream with a
  /// queue-local sequence (the standalone-queue API used by tests; the
  /// simulator always supplies full keys). Ties at the same timestamp
  /// break by insertion order.
  EventHandle schedule(SimTime at, Callback cb);

  /// Schedule `cb` with an explicit ordering key, to be executed in the
  /// context of `target` (the stream whose state/RNG the callback may
  /// touch). Keys must be unique per queue.
  EventHandle schedule(EventKey key, StreamId target, Callback cb);

  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live (scheduled, not cancelled, not fired) events — exact,
  /// including events cancelled in the middle of the heap.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the next live event. Queue must not be empty.
  [[nodiscard]] SimTime next_time() const;

  /// Key of the next live event, or nullptr when empty. The pointer is
  /// valid until the next schedule/pop/cancel.
  [[nodiscard]] const EventKey* peek_key() const;

  /// Pop and return the next live event. Queue must not be empty.
  struct Fired {
    SimTime time = 0;
    EventKey key;
    StreamId target = kKernelStream;
    Callback callback;
  };
  Fired pop();

 private:
  friend class EventHandle;

  struct Slot {
    Callback callback;
    StreamId target = kKernelStream;
    std::uint32_t generation = 0;
    bool live = false;
  };
  struct HeapEntry {
    EventKey key;
    std::uint32_t slot = 0;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return b.key < a.key;  // min-heap on key
    }
  };

  void cancel_slot(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] bool slot_pending(std::uint32_t slot,
                                  std::uint32_t generation) const;
  /// Drops heap entries whose slot was cancelled, recycling the slots.
  void prune_dead_head() const;

  mutable std::vector<HeapEntry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t local_seq_ = 0;
};

}  // namespace agilla::sim

// The discrete-event core: a time-ordered queue of callbacks.
//
// Ties at the same timestamp are broken by insertion order (a monotone
// sequence number), which keeps runs deterministic regardless of heap
// internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace agilla::sim {

/// Handle for cancelling a scheduled event. Cancellation is lazy: the event
/// stays in the heap but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// after the event fired.
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}

  std::shared_ptr<bool> alive_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. `at` may equal the current head
  /// time; events never run before already-queued events with earlier times.
  EventHandle schedule(SimTime at, Callback cb);

  [[nodiscard]] bool empty() const;

  /// Number of queued entries. May overcount by events that were cancelled
  /// but not yet lazily removed from the middle of the heap.
  [[nodiscard]] std::size_t size() const {
    drop_cancelled();
    return heap_.size();
  }

  /// Time of the next live event. Queue must not be empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and return the next live event. Queue must not be empty.
  struct Fired {
    SimTime time = 0;
    Callback callback;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback callback;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace agilla::sim

// Small statistics helpers used by the benchmark harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace agilla::sim {

/// Accumulates samples; computes mean / stddev / min / max / percentiles.
class Summary {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  ///< sample standard deviation
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0,100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  /// Named tail accessors (lifetime / latency reporting).
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] double total() const { return total_; }

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double total_ = 0.0;
};

/// Success/failure counter with a success-rate accessor; used by the
/// reliability experiments (paper Fig. 9).
class TrialCounter {
 public:
  void record(bool success) {
    ++trials_;
    if (success) {
      ++successes_;
    }
  }

  [[nodiscard]] std::size_t trials() const { return trials_; }
  [[nodiscard]] std::size_t successes() const { return successes_; }
  [[nodiscard]] double success_rate() const {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Fixed-width ASCII bar, e.g. for printing figure-like output in benches.
std::string ascii_bar(double fraction, std::size_t width = 40);

}  // namespace agilla::sim

#include "tuplespace/value.h"

#include <array>
#include <cctype>
#include <sstream>

#include "net/packet.h"

namespace agilla::ts {

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kInvalid:
      return "invalid";
    case ValueType::kNumber:
      return "number";
    case ValueType::kString:
      return "string";
    case ValueType::kTypeWildcard:
      return "type";
    case ValueType::kReading:
      return "reading";
    case ValueType::kLocation:
      return "location";
    case ValueType::kAgentId:
      return "agent-id";
    case ValueType::kReadingType:
      return "reading-type";
  }
  return "unknown";
}

std::uint16_t pack_string(std::string_view s) {
  std::uint16_t packed = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    std::uint16_t code = 0;  // 0 = empty slot
    if (i < s.size()) {
      const char c = static_cast<char>(
          std::tolower(static_cast<unsigned char>(s[i])));
      if (c >= 'a' && c <= 'z') {
        code = static_cast<std::uint16_t>(c - 'a' + 1);
      }
    }
    packed = static_cast<std::uint16_t>(packed | (code << (i * 5)));
  }
  return packed;
}

std::string unpack_string(std::uint16_t packed) {
  std::string out;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto code = static_cast<std::uint16_t>((packed >> (i * 5)) & 0x1F);
    if (code >= 1 && code <= 26) {
      out.push_back(static_cast<char>('a' + code - 1));
    }
  }
  return out;
}

Value Value::number(std::int16_t v) { return Value(ValueType::kNumber, v, 0); }

Value Value::string(std::string_view s) {
  return packed_string(pack_string(s));
}

Value Value::packed_string(std::uint16_t packed) {
  return Value(ValueType::kString, static_cast<std::int16_t>(packed), 0);
}

Value Value::type_wildcard(ValueType wrapped) {
  return Value(ValueType::kTypeWildcard,
               static_cast<std::int16_t>(wrapped), 0);
}

Value Value::reading(sim::SensorType sensor, std::int16_t v) {
  return Value(ValueType::kReading, v,
               static_cast<std::int16_t>(sensor));
}

Value Value::location(sim::Location loc) {
  return Value(ValueType::kLocation, net::encode_coordinate(loc.x),
               net::encode_coordinate(loc.y));
}

Value Value::agent_id(std::uint16_t id) {
  return Value(ValueType::kAgentId, static_cast<std::int16_t>(id), 0);
}

Value Value::reading_type(sim::SensorType sensor) {
  return Value(ValueType::kReadingType,
               static_cast<std::int16_t>(sensor), 0);
}

std::int16_t Value::as_number() const {
  switch (type_) {
    case ValueType::kNumber:
    case ValueType::kReading:
      return a_;
    case ValueType::kAgentId:
      return a_;
    default:
      return 0;
  }
}

std::uint16_t Value::as_packed_string() const {
  return static_cast<std::uint16_t>(a_);
}

sim::Location Value::as_location() const {
  return sim::Location{net::decode_coordinate(a_),
                       net::decode_coordinate(b_)};
}

std::uint16_t Value::as_agent_id() const {
  return static_cast<std::uint16_t>(a_);
}

sim::SensorType Value::sensor() const {
  if (type_ == ValueType::kReading) {
    return static_cast<sim::SensorType>(b_);
  }
  return static_cast<sim::SensorType>(a_);
}

ValueType Value::wrapped_type() const {
  return static_cast<ValueType>(a_);
}

bool Value::concrete() const {
  switch (type_) {
    case ValueType::kNumber:
    case ValueType::kString:
    case ValueType::kReading:
    case ValueType::kLocation:
    case ValueType::kAgentId:
    case ValueType::kReadingType:
      return true;
    default:
      return false;
  }
}

bool Value::matches(const Value& v) const {
  switch (type_) {
    case ValueType::kTypeWildcard:
      return v.type() == wrapped_type();
    case ValueType::kReadingType:
      // A reading-type template field accepts readings of that sensor as
      // well as an identical reading-type field.
      if (v.type() == ValueType::kReading) {
        return v.sensor() == sensor();
      }
      return v == *this;
    default:
      return v == *this;
  }
}

std::size_t Value::compact_size() const {
  switch (type_) {
    case ValueType::kInvalid:
      return 1;
    case ValueType::kLocation:
      return 5;  // type + x + y
    case ValueType::kReading:
      return 4;  // type + sensor + value
    case ValueType::kReadingType:
    case ValueType::kTypeWildcard:
      return 2;  // type + designator
    default:
      return 3;  // type + 16-bit payload
  }
}

void Value::encode_compact(net::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type_));
  switch (type_) {
    case ValueType::kInvalid:
      break;
    case ValueType::kLocation:
      w.i16(a_);
      w.i16(b_);
      break;
    case ValueType::kReading:
      w.u8(static_cast<std::uint8_t>(b_));
      w.i16(a_);
      break;
    case ValueType::kReadingType:
    case ValueType::kTypeWildcard:
      w.u8(static_cast<std::uint8_t>(a_));
      break;
    default:
      w.i16(a_);
      break;
  }
}

Value Value::decode_compact(net::Reader& r) {
  const auto type = static_cast<ValueType>(r.u8());
  switch (type) {
    case ValueType::kInvalid:
      return Value{};
    case ValueType::kLocation: {
      const std::int16_t x = r.i16();
      const std::int16_t y = r.i16();
      return Value(type, x, y);
    }
    case ValueType::kReading: {
      const auto sensor = static_cast<std::int16_t>(r.u8());
      const std::int16_t v = r.i16();
      return Value(type, v, sensor);
    }
    case ValueType::kReadingType:
    case ValueType::kTypeWildcard:
      return Value(type, static_cast<std::int16_t>(r.u8()), 0);
    case ValueType::kNumber:
    case ValueType::kString:
    case ValueType::kAgentId:
      return Value(type, r.i16(), 0);
  }
  return Value{};
}

void Value::encode_padded(net::Writer& w) const {
  // type(1) + a(2) + b(2) + reserved(1): matches the fixed 6-byte variable
  // slots of the migration messages (paper Fig. 5).
  w.u8(static_cast<std::uint8_t>(type_));
  w.i16(a_);
  w.i16(b_);
  w.zeros(1);
}

Value Value::decode_padded(net::Reader& r) {
  const auto type = static_cast<ValueType>(r.u8());
  const std::int16_t a = r.i16();
  const std::int16_t b = r.i16();
  r.skip(1);
  return Value(type, a, b);
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (type_) {
    case ValueType::kInvalid:
      os << "<invalid>";
      break;
    case ValueType::kNumber:
      os << a_;
      break;
    case ValueType::kString:
      os << '"' << unpack_string(static_cast<std::uint16_t>(a_)) << '"';
      break;
    case ValueType::kTypeWildcard:
      os << "?" << ts::to_string(wrapped_type());
      break;
    case ValueType::kReading:
      os << sim::to_string(sensor()) << "=" << a_;
      break;
    case ValueType::kLocation:
      os << as_location();
      break;
    case ValueType::kAgentId:
      os << "agent#" << static_cast<std::uint16_t>(a_);
      break;
    case ValueType::kReadingType:
      os << "sensor:" << sim::to_string(sensor());
      break;
  }
  return os.str();
}

}  // namespace agilla::ts

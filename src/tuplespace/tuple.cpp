#include "tuplespace/tuple.h"

#include <sstream>

namespace agilla::ts {
namespace detail {

std::size_t fields_wire_size(std::span<const Value> fields) {
  std::size_t total = 1;  // count byte
  for (const Value& f : fields) {
    total += f.compact_size();
  }
  return total;
}

void encode_fields(net::Writer& w, std::span<const Value> fields) {
  w.u8(static_cast<std::uint8_t>(fields.size()));
  for (const Value& f : fields) {
    f.encode_compact(w);
  }
}

bool decode_fields(net::Reader& r, FieldArray& out, std::uint8_t& count) {
  const std::uint8_t n = r.u8();
  if (!r.ok() || n > kMaxTupleFields) {
    return false;
  }
  for (std::uint8_t i = 0; i < n; ++i) {
    out[i] = Value::decode_compact(r);
  }
  if (!r.ok()) {
    return false;
  }
  count = n;
  return true;
}

std::string fields_to_string(std::span<const Value> fields) {
  std::ostringstream os;
  os << "<";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << fields[i].to_string();
  }
  os << ">";
  return os.str();
}

}  // namespace detail

Tuple::Tuple(std::initializer_list<Value> fields) {
  for (const Value& f : fields) {
    add(f);
  }
}

bool Tuple::add(const Value& field) {
  if (!field.concrete() || field.type() == ValueType::kTypeWildcard) {
    return false;
  }
  if (count_ >= kMaxTupleFields ||
      wire_size() + field.compact_size() > kMaxTupleWireBytes) {
    return false;
  }
  fields_[count_++] = field;
  return true;
}

std::size_t Tuple::wire_size() const {
  return detail::fields_wire_size(fields());
}

void Tuple::encode(net::Writer& w) const {
  detail::encode_fields(w, fields());
}

std::optional<Tuple> Tuple::decode(net::Reader& r) {
  Tuple t;
  if (!detail::decode_fields(r, t.fields_, t.count_)) {
    return std::nullopt;
  }
  return t;
}

std::string Tuple::to_string() const {
  return detail::fields_to_string(fields());
}

Template::Template(std::initializer_list<Value> fields) {
  for (const Value& f : fields) {
    add(f);
  }
}

bool Template::add(const Value& field) {
  if (!field.valid()) {
    return false;
  }
  if (count_ >= kMaxTupleFields ||
      wire_size() + field.compact_size() > kMaxTupleWireBytes) {
    return false;
  }
  fields_[count_++] = field;
  return true;
}

bool Template::matches(const Tuple& tuple) const {
  if (tuple.arity() != count_) {
    return false;
  }
  for (std::size_t i = 0; i < count_; ++i) {
    if (!fields_[i].matches(tuple.field(i))) {
      return false;
    }
  }
  return true;
}

std::size_t Template::wire_size() const {
  return detail::fields_wire_size(fields());
}

void Template::encode(net::Writer& w) const {
  detail::encode_fields(w, fields());
}

std::optional<Template> Template::decode(net::Reader& r) {
  Template t;
  if (!detail::decode_fields(r, t.fields_, t.count_)) {
    return std::nullopt;
  }
  return t;
}

std::string Template::to_string() const {
  return detail::fields_to_string(fields());
}

}  // namespace agilla::ts

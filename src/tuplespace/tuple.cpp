#include "tuplespace/tuple.h"

#include <sstream>

namespace agilla::ts {
namespace detail {

std::size_t fields_wire_size(const std::vector<Value>& fields) {
  std::size_t total = 1;  // count byte
  for (const Value& f : fields) {
    total += f.compact_size();
  }
  return total;
}

void encode_fields(net::Writer& w, const std::vector<Value>& fields) {
  w.u8(static_cast<std::uint8_t>(fields.size()));
  for (const Value& f : fields) {
    f.encode_compact(w);
  }
}

std::optional<std::vector<Value>> decode_fields(net::Reader& r) {
  const std::uint8_t count = r.u8();
  std::vector<Value> fields;
  fields.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    fields.push_back(Value::decode_compact(r));
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return fields;
}

std::string fields_to_string(const std::vector<Value>& fields) {
  std::ostringstream os;
  os << "<";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << fields[i].to_string();
  }
  os << ">";
  return os.str();
}

}  // namespace detail

Tuple::Tuple(std::initializer_list<Value> fields) {
  for (const Value& f : fields) {
    add(f);
  }
}

bool Tuple::add(const Value& field) {
  if (!field.concrete() || field.type() == ValueType::kTypeWildcard) {
    return false;
  }
  if (wire_size() + field.compact_size() > kMaxTupleWireBytes) {
    return false;
  }
  fields_.push_back(field);
  return true;
}

std::size_t Tuple::wire_size() const {
  return detail::fields_wire_size(fields_);
}

void Tuple::encode(net::Writer& w) const {
  detail::encode_fields(w, fields_);
}

std::optional<Tuple> Tuple::decode(net::Reader& r) {
  auto fields = detail::decode_fields(r);
  if (!fields.has_value()) {
    return std::nullopt;
  }
  Tuple t;
  t.fields_ = std::move(*fields);
  return t;
}

std::string Tuple::to_string() const {
  return detail::fields_to_string(fields_);
}

Template::Template(std::initializer_list<Value> fields) {
  for (const Value& f : fields) {
    add(f);
  }
}

bool Template::add(const Value& field) {
  if (!field.valid()) {
    return false;
  }
  if (wire_size() + field.compact_size() > kMaxTupleWireBytes) {
    return false;
  }
  fields_.push_back(field);
  return true;
}

bool Template::matches(const Tuple& tuple) const {
  if (tuple.arity() != fields_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].matches(tuple.field(i))) {
      return false;
    }
  }
  return true;
}

std::size_t Template::wire_size() const {
  return detail::fields_wire_size(fields_);
}

void Template::encode(net::Writer& w) const {
  detail::encode_fields(w, fields_);
}

std::optional<Template> Template::decode(net::Reader& r) {
  auto fields = detail::decode_fields(r);
  if (!fields.has_value()) {
    return std::nullopt;
  }
  Template t;
  t.fields_ = std::move(*fields);
  return t;
}

std::string Template::to_string() const {
  return detail::fields_to_string(fields_);
}

}  // namespace agilla::ts

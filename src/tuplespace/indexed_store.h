// IndexedTupleStore — the "future work" tuple store (paper Sec. 3.2: "We
// leave a more in-depth investigation of efficient tuple space
// implementations as future work").
//
// Tuples are kept decoded in insertion order; an arity index narrows every
// probe to candidate tuples with the right field count (templates only
// ever match same-arity tuples), and removal tombstones the entry instead
// of shifting memory. Byte accounting mirrors the linear store (same wire
// sizes, same capacity limit) so the two are drop-in interchangeable; the
// difference shows up in last_op_bytes_touched() — the quantity the VM
// cost model charges for — and is measured by bench_ablation_store.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tuplespace/store_interface.h"

namespace agilla::ts {

class IndexedTupleStore final : public TupleStore {
 public:
  explicit IndexedTupleStore(std::size_t capacity_bytes = 600);

  bool insert(const Tuple& tuple) override;
  std::optional<Tuple> take(const Template& templ) override;
  [[nodiscard]] std::optional<Tuple> read(
      const Template& templ) const override;
  [[nodiscard]] std::size_t count_matching(
      const Template& templ) const override;

  [[nodiscard]] std::size_t tuple_count() const override {
    return live_count_;
  }
  [[nodiscard]] std::size_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const override {
    return capacity_;
  }
  [[nodiscard]] std::vector<Tuple> snapshot() const override;
  void clear() override;
  [[nodiscard]] std::size_t last_op_bytes_touched() const override {
    return last_op_bytes_;
  }

 private:
  struct Entry {
    Tuple tuple;
    std::size_t wire_bytes = 0;  // incl. the 1-byte length prefix
    bool live = false;
  };

  /// Index of the first live entry matching `templ`, or npos.
  [[nodiscard]] std::size_t find(const Template& templ) const;
  void compact();

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t capacity_;
  std::vector<Entry> entries_;  // insertion order, with tombstones
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_arity_;
  std::size_t used_ = 0;
  std::size_t live_count_ = 0;
  std::size_t tombstones_ = 0;
  mutable std::size_t last_op_bytes_ = 0;
};

}  // namespace agilla::ts

// IndexedTupleStore — the "future work" tuple store (paper Sec. 3.2: "We
// leave a more in-depth investigation of efficient tuple space
// implementations as future work").
//
// Entries keep their wire bytes in a fixed inline buffer (no per-entry
// heap) plus an insertion-time Fingerprint; an arity index narrows every
// probe to candidate tuples with the right field count (templates only
// ever match same-arity tuples), the fingerprint rejects most survivors
// with one integer compare, and removal tombstones the entry instead of
// shifting memory. Byte accounting mirrors the linear store (same wire
// sizes, same capacity limit) so the two are drop-in interchangeable; the
// difference shows up in last_op_bytes_touched() — the quantity the VM
// cost model charges for — and is measured by bench_ablation_store.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/store_interface.h"

namespace agilla::ts {

class IndexedTupleStore final : public TupleStore {
 public:
  explicit IndexedTupleStore(std::size_t capacity_bytes = 600);

  bool insert(const Tuple& tuple) override;
  std::optional<Tuple> take(const CompiledTemplate& templ) override;
  [[nodiscard]] std::optional<Tuple> read(
      const CompiledTemplate& templ) const override;
  [[nodiscard]] std::size_t count_matching(
      const CompiledTemplate& templ) const override;

  [[nodiscard]] std::size_t tuple_count() const override {
    return live_count_;
  }
  [[nodiscard]] std::size_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const override {
    return capacity_;
  }
  [[nodiscard]] std::vector<Tuple> snapshot() const override;
  void clear() override;
  [[nodiscard]] std::size_t last_op_bytes_touched() const override {
    return last_op_bytes_;
  }

 private:
  struct Entry {
    /// Encoded tuple fields (no length prefix), inline: kMaxTupleWireBytes
    /// bounds every stored tuple.
    std::array<std::uint8_t, kMaxTupleWireBytes> wire{};
    std::uint8_t wire_len = 0;
    Fingerprint fp = 0;
    bool live = false;

    /// Record bytes for accounting: same 1-byte length prefix the linear
    /// store pays.
    [[nodiscard]] std::size_t record_bytes() const { return wire_len + 1u; }
    [[nodiscard]] TupleRef ref() const {
      return TupleRef(std::span<const std::uint8_t>(wire.data(), wire_len));
    }
  };

  /// Walks the arity bucket for `templ` in insertion order, charging
  /// last_op_bytes_ for every live candidate scanned, and calls
  /// `visit(index)` for each matching entry. `visit` returns true to stop
  /// the scan (first-match probes) or false to keep counting. The single
  /// implementation behind find_first() and count_matching().
  template <typename Visit>
  void scan_bucket(const CompiledTemplate& templ, Visit&& visit) const;

  /// Index of the first live entry matching `templ`, or kNpos.
  [[nodiscard]] std::size_t find_first(const CompiledTemplate& templ) const;
  void compact();

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t capacity_;
  std::vector<Entry> entries_;  // insertion order, with tombstones
  /// Arity -> entry indices, in insertion order. A flat array, not a hash
  /// map: stored tuples have 1..kMaxTupleFields fields (wire budget), so
  /// the bucket lookup is one indexed load. Templates with a larger arity
  /// match nothing.
  std::array<std::vector<std::uint32_t>, kMaxTupleFields + 1> by_arity_;
  std::size_t used_ = 0;
  std::size_t live_count_ = 0;
  std::size_t tombstones_ = 0;
  mutable std::size_t last_op_bytes_ = 0;
};

}  // namespace agilla::ts

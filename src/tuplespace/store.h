// The paper's tuple store (Sec. 3.2): tuples live in one linearly-allocated
// byte buffer (default 600 bytes). "When a tuple is removed, all following
// tuples are shifted forward. While this may result in more memory
// swapping, it is simple."
//
// We reproduce the layout faithfully because the Fig. 12 latencies of the
// tuple-space instructions are dominated by exactly this scan/shift work;
// the store reports bytes touched per operation so the VM cost model can
// charge for it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/store_interface.h"
#include "tuplespace/tuple.h"

namespace agilla::ts {

class LinearTupleStore final : public TupleStore {
 public:
  explicit LinearTupleStore(std::size_t capacity_bytes = 600);

  /// Inserts a tuple at the end of the buffer. Fails (returns false) when
  /// the tuple is empty, exceeds kMaxTupleWireBytes, or does not fit in the
  /// remaining capacity.
  bool insert(const Tuple& tuple) override;

  /// Finds, removes and returns the first matching tuple (Linda `inp`).
  std::optional<Tuple> take(const Template& templ) override;

  /// Finds and copies the first matching tuple (Linda `rdp`).
  [[nodiscard]] std::optional<Tuple> read(
      const Template& templ) const override;

  /// Number of stored tuples matching `templ` (the `tcount` instruction).
  [[nodiscard]] std::size_t count_matching(
      const Template& templ) const override;

  [[nodiscard]] std::size_t tuple_count() const override {
    return tuple_count_;
  }
  [[nodiscard]] std::size_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const override {
    return buffer_.size();
  }

  /// Decoded copy of every stored tuple, in buffer order.
  [[nodiscard]] std::vector<Tuple> snapshot() const override;

  void clear() override;

  /// Bytes scanned/moved by the most recent operation — consumed by the VM
  /// cycle-cost model (see DESIGN.md "CPU calibration").
  [[nodiscard]] std::size_t last_op_bytes_touched() const override {
    return last_op_bytes_;
  }

 private:
  struct Found {
    std::size_t offset = 0;
    std::size_t size = 0;  // bytes incl. length prefix
    Tuple tuple;
  };

  [[nodiscard]] std::optional<Found> find(const Template& templ) const;

  // Buffer layout: a sequence of records [len u8][tuple bytes], packed from
  // offset 0; used_ marks the end of live data.
  std::vector<std::uint8_t> buffer_;
  std::size_t used_ = 0;
  std::size_t tuple_count_ = 0;
  mutable std::size_t last_op_bytes_ = 0;
};

}  // namespace agilla::ts

// The paper's tuple store (Sec. 3.2): tuples live in one linearly-allocated
// byte buffer (default 600 bytes). "When a tuple is removed, all following
// tuples are shifted forward. While this may result in more memory
// swapping, it is simple."
//
// We reproduce the layout faithfully because the Fig. 12 latencies of the
// tuple-space instructions are dominated by exactly this scan/shift work;
// the store reports bytes touched per operation so the VM cost model can
// charge for it. On the host, matching runs zero-copy: a per-record
// Fingerprint (computed at insertion) rejects most candidates with one
// integer compare, survivors are matched in place against their wire bytes
// (tuple_match.h), and a Tuple is only materialized for a hit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/store_interface.h"
#include "tuplespace/tuple.h"

namespace agilla::ts {

class LinearTupleStore final : public TupleStore {
 public:
  explicit LinearTupleStore(std::size_t capacity_bytes = 600);

  /// Inserts a tuple at the end of the buffer. Fails (returns false) when
  /// the tuple is empty, exceeds kMaxTupleWireBytes, or does not fit in the
  /// remaining capacity.
  bool insert(const Tuple& tuple) override;

  /// Finds, removes and returns the first matching tuple (Linda `inp`).
  std::optional<Tuple> take(const CompiledTemplate& templ) override;

  /// Finds and copies the first matching tuple (Linda `rdp`).
  [[nodiscard]] std::optional<Tuple> read(
      const CompiledTemplate& templ) const override;

  /// Number of stored tuples matching `templ` (the `tcount` instruction).
  [[nodiscard]] std::size_t count_matching(
      const CompiledTemplate& templ) const override;

  [[nodiscard]] std::size_t tuple_count() const override {
    return records_.size();
  }
  [[nodiscard]] std::size_t used_bytes() const override { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const override {
    return buffer_.size();
  }

  /// Decoded copy of every stored tuple, in buffer order.
  [[nodiscard]] std::vector<Tuple> snapshot() const override;

  void clear() override;

  /// See the contract in store_interface.h.
  [[nodiscard]] std::size_t last_op_bytes_touched() const override {
    return last_op_bytes_;
  }

 private:
  /// Side-car of one buffer record, aligned with the buffer walk: the
  /// insertion-time fingerprint plus the record size ([len u8] + tuple
  /// bytes), so a scan skips rejected records without touching the buffer.
  struct RecordMeta {
    Fingerprint fp = 0;
    std::uint8_t size = 0;
  };

  struct Found {
    std::size_t index = 0;   // position in records_
    std::size_t offset = 0;  // byte offset of the record in buffer_
    std::size_t size = 0;    // record bytes incl. length prefix
  };

  [[nodiscard]] std::optional<Found> find(const CompiledTemplate& templ) const;

  /// The record's tuple bytes (without the length prefix) as a view.
  [[nodiscard]] TupleRef record_ref(std::size_t offset,
                                    std::size_t size) const;

  // Buffer layout: a sequence of records [len u8][tuple bytes], packed from
  // offset 0; used_ marks the end of live data. records_ mirrors the
  // record sequence in order.
  std::vector<std::uint8_t> buffer_;
  std::vector<RecordMeta> records_;
  std::size_t used_ = 0;
  mutable std::size_t last_op_bytes_ = 0;
};

}  // namespace agilla::ts

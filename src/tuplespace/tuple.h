// Tuples and templates (paper Sec. 2.2): a tuple is an ordered set of typed
// fields; a template is an ordered set of fields that may contain
// type-wildcards. "A template matches a tuple if they have the same number
// of fields, and each field in the tuple matches the corresponding field in
// the template."
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "tuplespace/value.h"

namespace agilla::ts {

/// Maximum compact wire size of a stored tuple (paper Sec. 3.2: "a tuple
/// may contain up to 25 bytes worth of fields").
inline constexpr std::size_t kMaxTupleWireBytes = 25;

namespace detail {
std::size_t fields_wire_size(const std::vector<Value>& fields);
void encode_fields(net::Writer& w, const std::vector<Value>& fields);
std::optional<std::vector<Value>> decode_fields(net::Reader& r);
std::string fields_to_string(const std::vector<Value>& fields);
}  // namespace detail

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> fields);

  /// Appends a field. Returns false (and leaves the tuple unchanged) if the
  /// field is not concrete or the tuple would exceed kMaxTupleWireBytes.
  bool add(const Value& field);

  [[nodiscard]] std::size_t arity() const { return fields_.size(); }
  [[nodiscard]] bool empty() const { return fields_.empty(); }
  [[nodiscard]] const Value& field(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] const std::vector<Value>& fields() const { return fields_; }

  /// Compact serialized size: 1 count byte + fields.
  [[nodiscard]] std::size_t wire_size() const;

  void encode(net::Writer& w) const;
  static std::optional<Tuple> decode(net::Reader& r);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Tuple& a, const Tuple& b) = default;

 private:
  std::vector<Value> fields_;
};

class Template {
 public:
  Template() = default;
  Template(std::initializer_list<Value> fields);

  /// Appends a field (concrete or wildcard). Returns false if the template
  /// would exceed kMaxTupleWireBytes.
  bool add(const Value& field);

  [[nodiscard]] std::size_t arity() const { return fields_.size(); }
  [[nodiscard]] const Value& field(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] const std::vector<Value>& fields() const { return fields_; }

  [[nodiscard]] bool matches(const Tuple& tuple) const;

  [[nodiscard]] std::size_t wire_size() const;
  void encode(net::Writer& w) const;
  static std::optional<Template> decode(net::Reader& r);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Template& a, const Template& b) = default;

 private:
  std::vector<Value> fields_;
};

}  // namespace agilla::ts

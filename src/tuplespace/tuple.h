// Tuples and templates (paper Sec. 2.2): a tuple is an ordered set of typed
// fields; a template is an ordered set of fields that may contain
// type-wildcards. "A template matches a tuple if they have the same number
// of fields, and each field in the tuple matches the corresponding field in
// the template."
//
// Both store their fields inline (the 25-byte wire budget bounds a tuple at
// kMaxTupleFields fields), so building, copying, and decoding them never
// heap-allocates — the tuple-space data plane moves plain values around.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>

#include "tuplespace/value.h"

namespace agilla::ts {

/// Maximum compact wire size of a stored tuple (paper Sec. 3.2: "a tuple
/// may contain up to 25 bytes worth of fields").
inline constexpr std::size_t kMaxTupleWireBytes = 25;

/// Most fields that budget admits for a buildable tuple/template: every
/// VALID field encodes to >= 2 bytes under a 1-byte count prefix
/// (1 + 12 * 2 = 25). Tuple and Template reserve exactly this many inline
/// slots. Hostile wire encodings can declare more fields in budget (a
/// kInvalid field is 1 byte), so decode_fields enforces this cap
/// explicitly — the inline slot count is a hard contract, not a corollary
/// of the byte budget.
inline constexpr std::size_t kMaxTupleFields = (kMaxTupleWireBytes - 1) / 2;

namespace detail {
using FieldArray = std::array<Value, kMaxTupleFields>;

std::size_t fields_wire_size(std::span<const Value> fields);
void encode_fields(net::Writer& w, std::span<const Value> fields);
/// Reads [count u8][fields...]; false when the stream truncates or the
/// count exceeds kMaxTupleFields (no such encoding fits the wire budget).
bool decode_fields(net::Reader& r, FieldArray& out, std::uint8_t& count);
std::string fields_to_string(std::span<const Value> fields);
}  // namespace detail

class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> fields);

  /// Appends a field. Returns false (and leaves the tuple unchanged) if the
  /// field is not concrete or the tuple would exceed kMaxTupleWireBytes.
  bool add(const Value& field);

  [[nodiscard]] std::size_t arity() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] const Value& field(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] std::span<const Value> fields() const {
    return {fields_.data(), count_};
  }

  /// Compact serialized size: 1 count byte + fields.
  [[nodiscard]] std::size_t wire_size() const;

  void encode(net::Writer& w) const;
  static std::optional<Tuple> decode(net::Reader& r);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Tuple& a, const Tuple& b) = default;

 private:
  detail::FieldArray fields_{};
  std::uint8_t count_ = 0;
};

class Template {
 public:
  Template() = default;
  Template(std::initializer_list<Value> fields);

  /// Appends a field (concrete or wildcard). Returns false if the template
  /// would exceed kMaxTupleWireBytes.
  bool add(const Value& field);

  [[nodiscard]] std::size_t arity() const { return count_; }
  [[nodiscard]] const Value& field(std::size_t i) const { return fields_[i]; }
  [[nodiscard]] std::span<const Value> fields() const {
    return {fields_.data(), count_};
  }

  [[nodiscard]] bool matches(const Tuple& tuple) const;

  [[nodiscard]] std::size_t wire_size() const;
  void encode(net::Writer& w) const;
  static std::optional<Template> decode(net::Reader& r);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Template& a, const Template& b) = default;

 private:
  detail::FieldArray fields_{};
  std::uint8_t count_ = 0;
};

}  // namespace agilla::ts

// Zero-copy tuple matching (the Sec. 3.2 "efficient tuple space
// implementations" future work): templates are compiled once into an
// integer fingerprint filter, and candidates are matched directly against
// their wire bytes through a bounds-checked lazy cursor. Scanning a store
// never heap-allocates; a Tuple is materialized only for an actual hit —
// and materializing is itself allocation-free (tuples store their fields
// inline, see tuple.h).
//
// Three pieces:
//  * Fingerprint      — a 64-bit summary of a stored tuple (arity, per-field
//                       type codes, a hash of field 0) computed once at
//                       insertion time;
//  * TupleRef         — a non-owning view of one encoded tuple record;
//  * CompiledTemplate — a template pre-lowered to (mask, want) over the
//                       fingerprint, so most candidates are rejected with a
//                       single integer compare and the rest are matched
//                       field-by-field straight off the wire.
//
// Equivalence contract (enforced by test_fuzz.cpp): for ANY byte string b
// and template t,
//     CompiledTemplate(t).matches(TupleRef(b))
//  == (Tuple::decode(b) succeeds && t.matches(*Tuple::decode(b))).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "tuplespace/tuple.h"

namespace agilla::ts {

/// 64-bit tuple summary. Layout:
///   bits  0..3   arity (stored tuples have <= kMaxTupleFields fields)
///   bits  4..39  3-bit ValueType code of field i at bits [4+3i, 7+3i)
///   bits 40..63  24-bit hash of field 0 (type + payload)
using Fingerprint = std::uint64_t;

/// Fingerprint of a concrete tuple; computed once per insertion.
[[nodiscard]] Fingerprint fingerprint_of(const Tuple& tuple);

/// Non-owning view of one encoded tuple record ([count u8][fields...]).
/// The bytes are NOT assumed well-formed: every accessor is bounds-checked
/// via net::Reader, so a TupleRef over truncated or mutated input never
/// reads out of range.
class TupleRef {
 public:
  constexpr TupleRef() = default;
  explicit constexpr TupleRef(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }

  /// Declared field count (first byte); 0 for an empty view.
  [[nodiscard]] std::size_t arity() const {
    return bytes_.empty() ? 0 : bytes_[0];
  }

  /// Walks the encoding. Returns the number of bytes one decoded tuple
  /// occupies (count byte + fields), or nullopt when the view truncates
  /// mid-field or declares more than kMaxTupleFields fields — exactly when
  /// Tuple::decode (materialize) would fail.
  [[nodiscard]] std::optional<std::size_t> encoded_size() const;

  /// Decodes into an owning Tuple; called once per matched candidate.
  /// Nullopt on malformed bytes.
  [[nodiscard]] std::optional<Tuple> materialize() const;

 private:
  std::span<const std::uint8_t> bytes_;
};

/// A Template lowered for repeated matching: the fields plus a
/// (mask, want) pair over Fingerprint so stores reject most candidates
/// with one integer compare. Compile once per operation, match many
/// candidates.
class CompiledTemplate {
 public:
  CompiledTemplate() = default;

  /// Deliberately implicit: call sites that probe once may pass a Template
  /// directly; hot paths compile explicitly and reuse the result.
  // NOLINTNEXTLINE(google-explicit-constructor)
  CompiledTemplate(const Template& templ);

  [[nodiscard]] std::size_t arity() const { return templ_.arity(); }
  [[nodiscard]] const Template& source() const { return templ_; }

  /// One-compare prefilter: true when `fp` proves the candidate cannot
  /// match (never true for a candidate that would match).
  [[nodiscard]] bool key_rejects(Fingerprint fp) const {
    return (fp & mask_) != want_;
  }

  /// Matches directly against wire bytes via a lazy field cursor; never
  /// allocates and never reads past `ref.bytes()`.
  [[nodiscard]] bool matches(TupleRef ref) const;

  /// Matches an already-decoded tuple (reaction dispatch path).
  [[nodiscard]] bool matches(const Tuple& tuple) const {
    return templ_.matches(tuple);
  }

 private:
  Template templ_;
  Fingerprint mask_ = 0;
  Fingerprint want_ = 0;
};

}  // namespace agilla::ts

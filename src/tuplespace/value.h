// The tagged value type shared by tuple fields, templates, the VM operand
// stack, and the agent heap (paper Sec. 2.2: "each field has a type and
// value. Types may include integers, strings, locations, and sensor
// readings").
//
// Strings are packed 3 characters x 5 bits into 16 bits, as in the real
// Agilla (the paper's agents use 3-letter strings like "fir").
//
// Two wire encodings exist:
//  * compact  — 1 type byte + minimal payload; used inside the tuple store
//               (600-byte budget, 25-byte tuples) and remote-op messages;
//  * padded   — exactly 6 bytes; used by migration messages so their sizes
//               match paper Fig. 5 (heap 32 B, stack 30 B).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/serialize.h"
#include "sim/environment.h"
#include "sim/types.h"

namespace agilla::ts {

enum class ValueType : std::uint8_t {
  kInvalid = 0,
  kNumber = 1,       ///< 16-bit signed integer
  kString = 2,       ///< packed 3-char string
  kTypeWildcard = 3, ///< template-only: matches any field of wrapped type
  kReading = 4,      ///< sensor type + 16-bit value
  kLocation = 5,     ///< (x, y)
  kAgentId = 6,      ///< 16-bit agent identifier
  kReadingType = 7,  ///< sensor-type designator (sense operand; template
                     ///< field matching readings of that sensor)
};

[[nodiscard]] const char* to_string(ValueType t);

/// Packs the first 3 chars of `s` (case-insensitive a-z) into 15 bits.
std::uint16_t pack_string(std::string_view s);
std::string unpack_string(std::uint16_t packed);

class Value {
 public:
  /// Fixed serialized footprint of the padded (migration) encoding.
  static constexpr std::size_t kPaddedWireSize = 6;

  constexpr Value() = default;

  static Value number(std::int16_t v);
  static Value string(std::string_view s);
  static Value packed_string(std::uint16_t packed);
  static Value type_wildcard(ValueType wrapped);
  static Value reading(sim::SensorType sensor, std::int16_t v);
  static Value location(sim::Location loc);
  static Value agent_id(std::uint16_t id);
  static Value reading_type(sim::SensorType sensor);

  [[nodiscard]] ValueType type() const { return type_; }
  [[nodiscard]] bool valid() const { return type_ != ValueType::kInvalid; }

  /// Numeric view: kNumber -> value, kReading -> reading value, others 0.
  [[nodiscard]] std::int16_t as_number() const;
  [[nodiscard]] std::uint16_t as_packed_string() const;
  [[nodiscard]] sim::Location as_location() const;
  [[nodiscard]] std::uint16_t as_agent_id() const;
  [[nodiscard]] sim::SensorType sensor() const;
  [[nodiscard]] ValueType wrapped_type() const;

  /// Template-field semantics: does this (possibly wildcard) field accept
  /// the concrete field `v`?
  [[nodiscard]] bool matches(const Value& v) const;

  /// Both payload halves as one word — the fingerprint hash input
  /// (tuple_match.h). Equal values always produce equal bits.
  [[nodiscard]] std::uint32_t payload_bits() const {
    return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(a_)) << 16) |
           static_cast<std::uint16_t>(b_);
  }

  /// True for field types that can appear in a stored tuple.
  [[nodiscard]] bool concrete() const;

  [[nodiscard]] std::size_t compact_size() const;  // includes type byte
  void encode_compact(net::Writer& w) const;
  static Value decode_compact(net::Reader& r);

  void encode_padded(net::Writer& w) const;
  static Value decode_padded(net::Reader& r);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  Value(ValueType type, std::int16_t a, std::int16_t b)
      : type_(type), a_(a), b_(b) {}

  ValueType type_ = ValueType::kInvalid;
  std::int16_t a_ = 0;  ///< number / packed string / x / wrapped type / id
  std::int16_t b_ = 0;  ///< y / sensor type
};

}  // namespace agilla::ts

// The tuple-store abstraction. The paper ships the simple linear store and
// notes: "We leave a more in-depth investigation of efficient tuple space
// implementations as future work" (Sec. 3.2) — this interface is the seam
// for that investigation: LinearTupleStore is the paper-faithful baseline,
// IndexedTupleStore the future-work alternative, and
// bench_ablation_store compares them under the simulated cost model.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/tuple.h"

namespace agilla::ts {

class TupleStore {
 public:
  virtual ~TupleStore() = default;

  /// Inserts at logical end. False when empty/oversized/out of capacity.
  virtual bool insert(const Tuple& tuple) = 0;

  /// Removes and returns the FIRST matching tuple in insertion order.
  virtual std::optional<Tuple> take(const Template& templ) = 0;

  /// Copies the first matching tuple.
  [[nodiscard]] virtual std::optional<Tuple> read(
      const Template& templ) const = 0;

  [[nodiscard]] virtual std::size_t count_matching(
      const Template& templ) const = 0;

  [[nodiscard]] virtual std::size_t tuple_count() const = 0;
  [[nodiscard]] virtual std::size_t used_bytes() const = 0;
  [[nodiscard]] virtual std::size_t capacity_bytes() const = 0;

  /// Every stored tuple in insertion order.
  [[nodiscard]] virtual std::vector<Tuple> snapshot() const = 0;

  virtual void clear() = 0;

  /// Bytes scanned/moved by the most recent operation; feeds the VM cost
  /// model (an indexed store touches fewer bytes => cheaper TS ops).
  [[nodiscard]] virtual std::size_t last_op_bytes_touched() const = 0;
};

}  // namespace agilla::ts

// The tuple-store abstraction. The paper ships the simple linear store and
// notes: "We leave a more in-depth investigation of efficient tuple space
// implementations as future work" (Sec. 3.2) — this interface is the seam
// for that investigation: LinearTupleStore is the paper-faithful baseline,
// IndexedTupleStore the future-work alternative, and
// bench_ablation_store compares them under the simulated cost model.
//
// Probes take a CompiledTemplate (tuple_match.h): callers compile a
// Template once and the store matches candidates against their wire bytes
// with a fingerprint prefilter — no allocation on the non-matching path.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "tuplespace/tuple.h"
#include "tuplespace/tuple_match.h"

namespace agilla::ts {

/// Which TupleStore implementation backs a space (paper default is the
/// linear store; indexed is the Sec. 3.2 "future work" alternative).
enum class StoreKind : std::uint8_t {
  kLinear = 0,
  kIndexed = 1,
};

[[nodiscard]] const char* to_string(StoreKind kind);
[[nodiscard]] std::optional<StoreKind> store_kind_from_string(
    std::string_view name);

class TupleStore {
 public:
  virtual ~TupleStore() = default;

  /// Inserts at logical end. False when empty/oversized/out of capacity.
  virtual bool insert(const Tuple& tuple) = 0;

  /// Removes and returns the FIRST matching tuple in insertion order.
  virtual std::optional<Tuple> take(const CompiledTemplate& templ) = 0;

  /// Copies the first matching tuple.
  [[nodiscard]] virtual std::optional<Tuple> read(
      const CompiledTemplate& templ) const = 0;

  [[nodiscard]] virtual std::size_t count_matching(
      const CompiledTemplate& templ) const = 0;

  [[nodiscard]] virtual std::size_t tuple_count() const = 0;
  [[nodiscard]] virtual std::size_t used_bytes() const = 0;
  [[nodiscard]] virtual std::size_t capacity_bytes() const = 0;

  /// Every stored tuple in insertion order.
  [[nodiscard]] virtual std::vector<Tuple> snapshot() const = 0;

  virtual void clear() = 0;

  /// Bytes the most recent operation charged to the VM cost model. The
  /// contract is identical for every backend (asserted by
  /// test_store_conformance.cpp):
  ///   * insert — the record bytes written (1 length byte + encoded
  ///     tuple), 0 on rejection;
  ///   * read/take/count — the record bytes of every candidate SCANNED,
  ///     i.e. each record the scan examined, fingerprint-rejected or not
  ///     (the mote model charges for walking the buffer, not for how
  ///     cleverly the walk compares), with the scan stopping at the first
  ///     match for read/take and covering all candidates for count;
  ///   * take additionally counts each byte MOVED to close the gap (the
  ///     linear store's shift; an indexing backend that tombstones moves
  ///     nothing and reports only the scan).
  /// Backends differ only in which candidates their layout must scan —
  /// the linear buffer walks every record, an index walks its bucket.
  [[nodiscard]] virtual std::size_t last_op_bytes_touched() const = 0;
};

/// Constructs a concrete store for `kind` — the single seam through which
/// every layer (TupleSpace, the experiment harness, the ablation benches)
/// selects a backend.
[[nodiscard]] std::unique_ptr<TupleStore> make_store(
    StoreKind kind, std::size_t capacity_bytes);

}  // namespace agilla::ts

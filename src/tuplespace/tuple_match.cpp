#include "tuplespace/tuple_match.h"

#include <algorithm>

namespace agilla::ts {
namespace {

constexpr Fingerprint kArityMask = 0xF;
constexpr std::size_t kTypeShiftBase = 4;
constexpr std::size_t kTypeBits = 3;
constexpr Fingerprint kTypeMask = 0x7;
constexpr std::size_t kHashShift = 40;
constexpr Fingerprint kHashMask = Fingerprint{0xFFFFFF} << kHashShift;

constexpr Fingerprint type_shift(std::size_t i) {
  return kTypeShiftBase + kTypeBits * i;
}

/// 24-bit mix of one field's type + payload, positioned at kHashShift.
Fingerprint field_hash(const Value& v) {
  std::uint64_t x =
      (static_cast<std::uint64_t>(v.type()) << 32) | v.payload_bits();
  x *= 0x9E3779B97F4A7C15ULL;  // SplitMix64 finalizer constant
  return (x >> kHashShift) << kHashShift;
}

/// True when a template field of this type accepts tuple fields of exactly
/// one ValueType (so its 3-bit code can join the fingerprint mask).
constexpr bool pins_field_type(ValueType t) {
  // kReadingType accepts both kReading fields and kReadingType fields.
  return t != ValueType::kReadingType;
}

/// True when a template field of this type matches by value equality only
/// (so field 0's content hash can join the fingerprint mask).
constexpr bool pins_field_content(ValueType t) {
  return t != ValueType::kReadingType && t != ValueType::kTypeWildcard;
}

}  // namespace

Fingerprint fingerprint_of(const Tuple& tuple) {
  Fingerprint fp = tuple.arity() & kArityMask;
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    fp |= (static_cast<Fingerprint>(tuple.field(i).type()) & kTypeMask)
          << type_shift(i);
  }
  if (tuple.arity() > 0) {
    fp |= field_hash(tuple.field(0));
  }
  return fp;
}

std::optional<std::size_t> TupleRef::encoded_size() const {
  net::Reader r(bytes_);
  const std::uint8_t count = r.u8();
  if (!r.ok() || count > kMaxTupleFields) {
    return std::nullopt;
  }
  for (std::uint8_t i = 0; i < count; ++i) {
    Value::decode_compact(r);  // bounds-checked skip
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return bytes_.size() - r.remaining();
}

std::optional<Tuple> TupleRef::materialize() const {
  net::Reader r(bytes_);
  return Tuple::decode(r);
}

CompiledTemplate::CompiledTemplate(const Template& templ) : templ_(templ) {
  mask_ = kArityMask;
  want_ = templ_.arity() & kArityMask;
  for (std::size_t i = 0; i < templ_.arity(); ++i) {
    const Value& f = templ_.field(i);
    if (!pins_field_type(f.type())) {
      continue;
    }
    const ValueType required = f.type() == ValueType::kTypeWildcard
                                   ? f.wrapped_type()
                                   : f.type();
    mask_ |= kTypeMask << type_shift(i);
    want_ |= (static_cast<Fingerprint>(required) & kTypeMask)
             << type_shift(i);
  }
  if (templ_.arity() > 0 && pins_field_content(templ_.field(0).type())) {
    mask_ |= kHashMask;
    want_ |= field_hash(templ_.field(0));
  }
}

bool CompiledTemplate::matches(TupleRef ref) const {
  net::Reader r(ref.bytes());
  const std::uint8_t count = r.u8();
  if (!r.ok() || count != templ_.arity()) {
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!templ_.field(i).matches(Value::decode_compact(r))) {
      return false;
    }
  }
  // A mutated stream can truncate inside a field AFTER every prefix field
  // compared equal (Reader zero-fills on underrun); the eager path fails
  // Tuple::decode there, so the lazy path must report no-match too.
  return r.ok();
}

}  // namespace agilla::ts

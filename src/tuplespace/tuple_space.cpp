#include "tuplespace/tuple_space.h"

namespace agilla::ts {

std::unique_ptr<TupleStore> make_store(StoreKind kind,
                                       std::size_t capacity_bytes) {
  switch (kind) {
    case StoreKind::kIndexed:
      return std::make_unique<IndexedTupleStore>(capacity_bytes);
    case StoreKind::kLinear:
      break;
  }
  return std::make_unique<LinearTupleStore>(capacity_bytes);
}

const char* to_string(StoreKind kind) {
  switch (kind) {
    case StoreKind::kIndexed:
      return "indexed";
    case StoreKind::kLinear:
      break;
  }
  return "linear";
}

std::optional<StoreKind> store_kind_from_string(std::string_view name) {
  if (name == "linear") {
    return StoreKind::kLinear;
  }
  if (name == "indexed") {
    return StoreKind::kIndexed;
  }
  return std::nullopt;
}

TupleSpace::TupleSpace() : TupleSpace(Options{}) {}

TupleSpace::TupleSpace(Options options)
    : store_(make_store(options.store_kind, options.store_capacity_bytes)),
      registry_(options.registry) {}

bool TupleSpace::out(const Tuple& tuple) {
  if (!store_->insert(tuple)) {
    return false;
  }
  if (on_reaction_) {
    // Snapshot first: a reaction callback may register/deregister.
    const std::vector<Reaction> fired = registry_.matches(tuple);
    for (const Reaction& r : fired) {
      on_reaction_(r, tuple);
    }
  }
  if (on_insertion_) {
    on_insertion_(tuple);
  }
  if (op_tap_) {
    op_tap_(TupleSpaceOp::kOut, tuple);
  }
  return true;
}

std::optional<Tuple> TupleSpace::inp(const CompiledTemplate& templ) {
  std::optional<Tuple> taken = store_->take(templ);
  if (taken.has_value() && op_tap_) {
    op_tap_(TupleSpaceOp::kInp, *taken);
  }
  return taken;
}

std::optional<Tuple> TupleSpace::rdp(const CompiledTemplate& templ) const {
  return store_->read(templ);
}

std::size_t TupleSpace::tcount(const CompiledTemplate& templ) const {
  return store_->count_matching(templ);
}

bool TupleSpace::register_reaction(Reaction reaction) {
  return registry_.add(std::move(reaction));
}

bool TupleSpace::deregister_reaction(std::uint16_t agent_id,
                                     const Template& templ) {
  return registry_.remove(agent_id, templ);
}

std::vector<Reaction> TupleSpace::extract_reactions(std::uint16_t agent_id) {
  return registry_.extract_all(agent_id);
}

}  // namespace agilla::ts

// Reactions (paper Sec. 2.2): an agent registers a template plus the
// address of handler code; when a matching tuple is inserted into the LOCAL
// tuple space the agent is notified. The registry has a fixed byte budget
// (default 400 bytes / 10 reactions, paper Sec. 3.2) and reactions travel
// with the agent on strong migration.
//
// Dispatch is keyed, not scanned: each template is compiled once at
// registration (tuple_match.h) and bucketed by arity, so firing an
// insertion looks up one bucket and prefilters the bucket's entries with a
// fingerprint compare before any field-by-field match runs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/tuple.h"
#include "tuplespace/tuple_match.h"

namespace agilla::ts {

struct Reaction {
  std::uint16_t agent_id = 0;
  Template templ;
  std::uint16_t handler_pc = 0;

  friend bool operator==(const Reaction&, const Reaction&) = default;
};

class ReactionRegistry {
 public:
  struct Options {
    std::size_t capacity_bytes = 400;
    std::size_t bytes_per_reaction = 40;  ///< fixed ledger charge per entry
  };

  ReactionRegistry();
  explicit ReactionRegistry(Options options);

  /// Adds a reaction; fails when the registry is full or the same
  /// (agent, template) pair is already registered. Compiles the template
  /// once, here.
  bool add(Reaction reaction);

  /// Removes the reaction with this agent and template; false if absent.
  bool remove(std::uint16_t agent_id, const Template& templ);

  /// Removes and returns every reaction owned by `agent_id` (used when an
  /// agent migrates or dies), in registration order.
  std::vector<Reaction> extract_all(std::uint16_t agent_id);

  /// All reactions whose template matches `tuple`, in registration order:
  /// one arity-bucket lookup, fingerprint prefilter, then a full match per
  /// surviving entry.
  [[nodiscard]] std::vector<Reaction> matches(const Tuple& tuple) const;

  /// Copies of the reactions owned by `agent_id`, in registration order
  /// (migration images; the agent keeps its registrations).
  [[nodiscard]] std::vector<Reaction> owned_by(std::uint16_t agent_id) const;

  /// Drops every registration (node death: mote RAM is gone).
  void clear();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const {
    return options_.capacity_bytes / options_.bytes_per_reaction;
  }

 private:
  struct Entry {
    Reaction reaction;
    CompiledTemplate compiled;
  };

  /// Rebuilds by_arity_ from entries_ (after any removal; the registry
  /// holds at most ~10 entries, so rebuild beats bookkeeping).
  void reindex();

  Options options_;
  std::vector<Entry> entries_;  // registration order
  /// Template arity -> indices into entries_, in registration order. A
  /// tuple only ever fires the bucket of its own arity, and arity is
  /// bounded by the wire budget, so the lookup is one indexed load (same
  /// shape as IndexedTupleStore's index).
  std::array<std::vector<std::size_t>, kMaxTupleFields + 1> by_arity_;
};

}  // namespace agilla::ts

// Reactions (paper Sec. 2.2): an agent registers a template plus the
// address of handler code; when a matching tuple is inserted into the LOCAL
// tuple space the agent is notified. The registry has a fixed byte budget
// (default 400 bytes / 10 reactions, paper Sec. 3.2) and reactions travel
// with the agent on strong migration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "tuplespace/tuple.h"

namespace agilla::ts {

struct Reaction {
  std::uint16_t agent_id = 0;
  Template templ;
  std::uint16_t handler_pc = 0;

  friend bool operator==(const Reaction&, const Reaction&) = default;
};

class ReactionRegistry {
 public:
  struct Options {
    std::size_t capacity_bytes = 400;
    std::size_t bytes_per_reaction = 40;  ///< fixed ledger charge per entry
  };

  ReactionRegistry();
  explicit ReactionRegistry(Options options);

  /// Adds a reaction; fails when the registry is full or the same
  /// (agent, template) pair is already registered.
  bool add(Reaction reaction);

  /// Removes the reaction with this agent and template; false if absent.
  bool remove(std::uint16_t agent_id, const Template& templ);

  /// Removes and returns every reaction owned by `agent_id` (used when an
  /// agent migrates or dies).
  std::vector<Reaction> extract_all(std::uint16_t agent_id);

  /// All reactions whose template matches `tuple`, in registration order.
  [[nodiscard]] std::vector<Reaction> matches(const Tuple& tuple) const;

  [[nodiscard]] std::size_t size() const { return reactions_.size(); }
  [[nodiscard]] std::size_t capacity() const {
    return options_.capacity_bytes / options_.bytes_per_reaction;
  }
  [[nodiscard]] const std::vector<Reaction>& all() const { return reactions_; }

 private:
  Options options_;
  std::vector<Reaction> reactions_;
};

}  // namespace agilla::ts

#include "tuplespace/store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace agilla::ts {

LinearTupleStore::LinearTupleStore(std::size_t capacity_bytes)
    : buffer_(capacity_bytes, 0) {}

bool LinearTupleStore::insert(const Tuple& tuple) {
  last_op_bytes_ = 0;
  if (tuple.empty()) {
    return false;
  }
  const std::size_t size = tuple.wire_size();
  if (size > kMaxTupleWireBytes) {
    return false;
  }
  if (used_ + 1 + size > buffer_.size()) {
    return false;
  }
  net::Writer w;
  w.u8(static_cast<std::uint8_t>(size));
  tuple.encode(w);
  std::copy(w.data().begin(), w.data().end(),
            buffer_.begin() + static_cast<std::ptrdiff_t>(used_));
  used_ += w.size();
  ++tuple_count_;
  last_op_bytes_ = w.size();
  return true;
}

std::optional<LinearTupleStore::Found> LinearTupleStore::find(
    const Template& templ) const {
  std::size_t offset = 0;
  std::size_t scanned = 0;
  while (offset < used_) {
    const std::uint8_t size = buffer_[offset];
    assert(offset + 1 + size <= used_);
    net::Reader r(
        std::span<const std::uint8_t>(buffer_.data() + offset + 1, size));
    auto tuple = Tuple::decode(r);
    scanned += 1 + size;
    if (tuple.has_value() && templ.matches(*tuple)) {
      last_op_bytes_ = scanned;
      return Found{offset, static_cast<std::size_t>(size) + 1,
                   std::move(*tuple)};
    }
    offset += 1 + size;
  }
  last_op_bytes_ = scanned;
  return std::nullopt;
}

std::optional<Tuple> LinearTupleStore::take(const Template& templ) {
  auto found = find(templ);
  if (!found.has_value()) {
    return std::nullopt;
  }
  // Shift all following tuples forward (paper Sec. 3.2).
  const std::size_t tail_start = found->offset + found->size;
  const std::size_t tail_len = used_ - tail_start;
  if (tail_len > 0) {
    std::memmove(buffer_.data() + found->offset,
                 buffer_.data() + tail_start, tail_len);
    last_op_bytes_ += tail_len;
  }
  used_ -= found->size;
  --tuple_count_;
  return std::move(found->tuple);
}

std::optional<Tuple> LinearTupleStore::read(const Template& templ) const {
  auto found = find(templ);
  if (!found.has_value()) {
    return std::nullopt;
  }
  return std::move(found->tuple);
}

std::size_t LinearTupleStore::count_matching(const Template& templ) const {
  std::size_t count = 0;
  std::size_t offset = 0;
  std::size_t scanned = 0;
  while (offset < used_) {
    const std::uint8_t size = buffer_[offset];
    net::Reader r(
        std::span<const std::uint8_t>(buffer_.data() + offset + 1, size));
    const auto tuple = Tuple::decode(r);
    scanned += 1 + size;
    if (tuple.has_value() && templ.matches(*tuple)) {
      ++count;
    }
    offset += 1 + size;
  }
  last_op_bytes_ = scanned;
  return count;
}

std::vector<Tuple> LinearTupleStore::snapshot() const {
  std::vector<Tuple> out;
  std::size_t offset = 0;
  while (offset < used_) {
    const std::uint8_t size = buffer_[offset];
    net::Reader r(
        std::span<const std::uint8_t>(buffer_.data() + offset + 1, size));
    auto tuple = Tuple::decode(r);
    if (tuple.has_value()) {
      out.push_back(std::move(*tuple));
    }
    offset += 1 + size;
  }
  return out;
}

void LinearTupleStore::clear() {
  used_ = 0;
  tuple_count_ = 0;
  last_op_bytes_ = 0;
}

}  // namespace agilla::ts

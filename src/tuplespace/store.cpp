#include "tuplespace/store.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace agilla::ts {

LinearTupleStore::LinearTupleStore(std::size_t capacity_bytes)
    : buffer_(capacity_bytes, 0) {}

bool LinearTupleStore::insert(const Tuple& tuple) {
  last_op_bytes_ = 0;
  if (tuple.empty()) {
    return false;
  }
  const std::size_t size = tuple.wire_size();
  if (size > kMaxTupleWireBytes) {
    return false;
  }
  if (used_ + 1 + size > buffer_.size()) {
    return false;
  }
  net::Writer w;
  w.u8(static_cast<std::uint8_t>(size));
  tuple.encode(w);
  std::copy(w.data().begin(), w.data().end(),
            buffer_.begin() + static_cast<std::ptrdiff_t>(used_));
  used_ += w.size();
  records_.push_back(RecordMeta{fingerprint_of(tuple),
                                static_cast<std::uint8_t>(w.size())});
  last_op_bytes_ = w.size();
  return true;
}

TupleRef LinearTupleStore::record_ref(std::size_t offset,
                                      std::size_t size) const {
  return TupleRef(
      std::span<const std::uint8_t>(buffer_.data() + offset + 1, size - 1));
}

std::optional<LinearTupleStore::Found> LinearTupleStore::find(
    const CompiledTemplate& templ) const {
  std::size_t offset = 0;
  std::size_t scanned = 0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const RecordMeta& meta = records_[i];
    assert(offset + meta.size <= used_);
    scanned += meta.size;
    if (!templ.key_rejects(meta.fp) &&
        templ.matches(record_ref(offset, meta.size))) {
      last_op_bytes_ = scanned;
      return Found{i, offset, meta.size};
    }
    offset += meta.size;
  }
  last_op_bytes_ = scanned;
  return std::nullopt;
}

std::optional<Tuple> LinearTupleStore::take(const CompiledTemplate& templ) {
  const auto found = find(templ);
  if (!found.has_value()) {
    return std::nullopt;
  }
  std::optional<Tuple> out = record_ref(found->offset, found->size)
                                 .materialize();
  assert(out.has_value());  // insert only writes well-formed records
  // Shift all following tuples forward (paper Sec. 3.2).
  const std::size_t tail_start = found->offset + found->size;
  const std::size_t tail_len = used_ - tail_start;
  if (tail_len > 0) {
    std::memmove(buffer_.data() + found->offset, buffer_.data() + tail_start,
                 tail_len);
    last_op_bytes_ += tail_len;
  }
  used_ -= found->size;
  records_.erase(records_.begin() +
                 static_cast<std::ptrdiff_t>(found->index));
  return out;
}

std::optional<Tuple> LinearTupleStore::read(
    const CompiledTemplate& templ) const {
  const auto found = find(templ);
  if (!found.has_value()) {
    return std::nullopt;
  }
  return record_ref(found->offset, found->size).materialize();
}

std::size_t LinearTupleStore::count_matching(
    const CompiledTemplate& templ) const {
  std::size_t count = 0;
  std::size_t offset = 0;
  std::size_t scanned = 0;
  for (const RecordMeta& meta : records_) {
    scanned += meta.size;
    if (!templ.key_rejects(meta.fp) &&
        templ.matches(record_ref(offset, meta.size))) {
      ++count;
    }
    offset += meta.size;
  }
  last_op_bytes_ = scanned;
  return count;
}

std::vector<Tuple> LinearTupleStore::snapshot() const {
  std::vector<Tuple> out;
  out.reserve(records_.size());
  std::size_t offset = 0;
  for (const RecordMeta& meta : records_) {
    auto tuple = record_ref(offset, meta.size).materialize();
    if (tuple.has_value()) {
      out.push_back(std::move(*tuple));
    }
    offset += meta.size;
  }
  return out;
}

void LinearTupleStore::clear() {
  used_ = 0;
  records_.clear();
  last_op_bytes_ = 0;
}

}  // namespace agilla::ts

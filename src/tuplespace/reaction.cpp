#include "tuplespace/reaction.h"

#include <algorithm>

namespace agilla::ts {

ReactionRegistry::ReactionRegistry() : ReactionRegistry(Options{}) {}

ReactionRegistry::ReactionRegistry(Options options) : options_(options) {}

bool ReactionRegistry::add(Reaction reaction) {
  if (entries_.size() >= capacity()) {
    return false;
  }
  const bool exists = std::any_of(
      entries_.begin(), entries_.end(), [&](const Entry& e) {
        return e.reaction.agent_id == reaction.agent_id &&
               e.reaction.templ == reaction.templ;
      });
  if (exists) {
    return false;
  }
  CompiledTemplate compiled(reaction.templ);
  by_arity_[compiled.arity()].push_back(entries_.size());
  entries_.push_back(Entry{std::move(reaction), std::move(compiled)});
  return true;
}

bool ReactionRegistry::remove(std::uint16_t agent_id, const Template& templ) {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(), [&](const Entry& e) {
        return e.reaction.agent_id == agent_id && e.reaction.templ == templ;
      });
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  reindex();
  return true;
}

std::vector<Reaction> ReactionRegistry::extract_all(std::uint16_t agent_id) {
  std::vector<Reaction> out;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->reaction.agent_id == agent_id) {
      out.push_back(std::move(it->reaction));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (!out.empty()) {
    reindex();
  }
  return out;
}

std::vector<Reaction> ReactionRegistry::matches(const Tuple& tuple) const {
  std::vector<Reaction> out;
  if (tuple.arity() >= by_arity_.size()) {
    return out;
  }
  const Fingerprint fp = fingerprint_of(tuple);
  for (const std::size_t index : by_arity_[tuple.arity()]) {
    const Entry& entry = entries_[index];
    if (!entry.compiled.key_rejects(fp) && entry.compiled.matches(tuple)) {
      out.push_back(entry.reaction);
    }
  }
  return out;
}

std::vector<Reaction> ReactionRegistry::owned_by(
    std::uint16_t agent_id) const {
  std::vector<Reaction> out;
  for (const Entry& entry : entries_) {
    if (entry.reaction.agent_id == agent_id) {
      out.push_back(entry.reaction);
    }
  }
  return out;
}

void ReactionRegistry::clear() {
  entries_.clear();
  reindex();
}

void ReactionRegistry::reindex() {
  for (auto& bucket : by_arity_) {
    bucket.clear();
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_arity_[entries_[i].compiled.arity()].push_back(i);
  }
}

}  // namespace agilla::ts

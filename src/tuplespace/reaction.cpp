#include "tuplespace/reaction.h"

#include <algorithm>

namespace agilla::ts {

ReactionRegistry::ReactionRegistry() : ReactionRegistry(Options{}) {}

ReactionRegistry::ReactionRegistry(Options options) : options_(options) {}

bool ReactionRegistry::add(Reaction reaction) {
  if (reactions_.size() >= capacity()) {
    return false;
  }
  const bool exists = std::any_of(
      reactions_.begin(), reactions_.end(), [&](const Reaction& r) {
        return r.agent_id == reaction.agent_id && r.templ == reaction.templ;
      });
  if (exists) {
    return false;
  }
  reactions_.push_back(std::move(reaction));
  return true;
}

bool ReactionRegistry::remove(std::uint16_t agent_id, const Template& templ) {
  const auto it = std::find_if(
      reactions_.begin(), reactions_.end(), [&](const Reaction& r) {
        return r.agent_id == agent_id && r.templ == templ;
      });
  if (it == reactions_.end()) {
    return false;
  }
  reactions_.erase(it);
  return true;
}

std::vector<Reaction> ReactionRegistry::extract_all(std::uint16_t agent_id) {
  std::vector<Reaction> out;
  auto it = reactions_.begin();
  while (it != reactions_.end()) {
    if (it->agent_id == agent_id) {
      out.push_back(std::move(*it));
      it = reactions_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<Reaction> ReactionRegistry::matches(const Tuple& tuple) const {
  std::vector<Reaction> out;
  for (const Reaction& r : reactions_) {
    if (r.templ.matches(tuple)) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace agilla::ts

// The per-node Tuple Space Manager (paper Fig. 4): non-blocking operations
// over the local LinearTupleStore, the reaction registry, and notification
// hooks used by the engine to wake blocked agents and fire reactions.
//
// Blocking `in`/`rd` are NOT implemented here — per paper Sec. 3.2 they are
// implemented in the agent layer by retrying `inp`/`rdp` and parking the
// agent on the insertion hook.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "tuplespace/indexed_store.h"
#include "tuplespace/reaction.h"
#include "tuplespace/store.h"

namespace agilla::ts {

// StoreKind (which TupleStore implementation backs the space) lives in
// store_interface.h next to the make_store() seam.

/// The state-changing Linda operations, for instrumentation taps.
enum class TupleSpaceOp : std::uint8_t {
  kOut,  ///< tuple inserted
  kInp,  ///< tuple removed
};

class TupleSpace {
 public:
  struct Options {
    std::size_t store_capacity_bytes = 600;  ///< paper Sec. 3.2
    ReactionRegistry::Options registry;
    StoreKind store_kind = StoreKind::kLinear;
  };

  /// Called for each reaction whose template matches a freshly inserted
  /// tuple, with the matched tuple.
  using ReactionCallback =
      std::function<void(const Reaction&, const Tuple&)>;
  /// Called after every successful insertion; the engine uses it to wake
  /// agents blocked in `in`/`rd` so they can re-probe.
  using InsertionCallback = std::function<void(const Tuple&)>;
  /// Pure-observation tap, fired after every successful state-changing
  /// operation (out/inp) — the api::EventBus instrumentation seam. Kept
  /// separate from the engine's insertion callback so embedders cannot
  /// displace the VM's wake-up path.
  using OpTap = std::function<void(TupleSpaceOp, const Tuple&)>;

  TupleSpace();
  explicit TupleSpace(Options options);

  /// Linda out: insert. Fires matching reactions and the insertion hook.
  /// Returns false when the store rejects the tuple (full / oversized).
  bool out(const Tuple& tuple);

  /// Linda inp: non-blocking remove. (Blocking `in` is built on this.)
  /// Probes take a CompiledTemplate (tuple_match.h) — compile once, then
  /// every candidate is fingerprint-filtered and matched against its wire
  /// bytes without allocation.
  std::optional<Tuple> inp(const CompiledTemplate& templ);

  /// Linda rdp: non-blocking copy.
  [[nodiscard]] std::optional<Tuple> rdp(const CompiledTemplate& templ) const;

  /// Number of stored tuples matching the template.
  [[nodiscard]] std::size_t tcount(const CompiledTemplate& templ) const;

  bool register_reaction(Reaction reaction);
  bool deregister_reaction(std::uint16_t agent_id, const Template& templ);
  std::vector<Reaction> extract_reactions(std::uint16_t agent_id);
  /// Drops every registration (node death wipes the mote's RAM).
  void clear_reactions() { registry_.clear(); }
  [[nodiscard]] const ReactionRegistry& reactions() const {
    return registry_;
  }

  void set_reaction_callback(ReactionCallback cb) {
    on_reaction_ = std::move(cb);
  }
  void set_insertion_callback(InsertionCallback cb) {
    on_insertion_ = std::move(cb);
  }
  void set_op_tap(OpTap tap) { op_tap_ = std::move(tap); }

  [[nodiscard]] const TupleStore& store() const { return *store_; }
  [[nodiscard]] TupleStore& store() { return *store_; }

 private:
  std::unique_ptr<TupleStore> store_;
  ReactionRegistry registry_;
  ReactionCallback on_reaction_;
  InsertionCallback on_insertion_;
  OpTap op_tap_;
};

}  // namespace agilla::ts

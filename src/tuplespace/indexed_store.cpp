#include "tuplespace/indexed_store.h"

#include <algorithm>

namespace agilla::ts {

IndexedTupleStore::IndexedTupleStore(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool IndexedTupleStore::insert(const Tuple& tuple) {
  last_op_bytes_ = 0;
  if (tuple.empty()) {
    return false;
  }
  const std::size_t size = tuple.wire_size();
  if (size > kMaxTupleWireBytes || used_ + 1 + size > capacity_) {
    return false;
  }
  by_arity_[tuple.arity()].push_back(entries_.size());
  entries_.push_back(Entry{tuple, 1 + size, true});
  used_ += 1 + size;
  ++live_count_;
  last_op_bytes_ = 1 + size;
  return true;
}

std::size_t IndexedTupleStore::find(const Template& templ) const {
  std::size_t scanned = 0;
  const auto bucket = by_arity_.find(templ.arity());
  if (bucket == by_arity_.end()) {
    last_op_bytes_ = 0;
    return kNpos;
  }
  for (const std::size_t index : bucket->second) {
    const Entry& entry = entries_[index];
    if (!entry.live) {
      continue;
    }
    scanned += entry.wire_bytes;
    if (templ.matches(entry.tuple)) {
      last_op_bytes_ = scanned;
      return index;
    }
  }
  last_op_bytes_ = scanned;
  return kNpos;
}

std::optional<Tuple> IndexedTupleStore::take(const Template& templ) {
  const std::size_t index = find(templ);
  if (index == kNpos) {
    return std::nullopt;
  }
  Entry& entry = entries_[index];
  Tuple out = std::move(entry.tuple);
  entry.live = false;
  used_ -= entry.wire_bytes;
  --live_count_;
  ++tombstones_;
  // No memory shift: removal costs only the scan (the headline win over
  // the linear store); amortized compaction keeps the arrays bounded.
  if (tombstones_ > entries_.size() / 2 && tombstones_ > 8) {
    compact();
  }
  return out;
}

std::optional<Tuple> IndexedTupleStore::read(const Template& templ) const {
  const std::size_t index = find(templ);
  if (index == kNpos) {
    return std::nullopt;
  }
  return entries_[index].tuple;
}

std::size_t IndexedTupleStore::count_matching(const Template& templ) const {
  std::size_t scanned = 0;
  std::size_t count = 0;
  const auto bucket = by_arity_.find(templ.arity());
  if (bucket == by_arity_.end()) {
    last_op_bytes_ = 0;
    return 0;
  }
  for (const std::size_t index : bucket->second) {
    const Entry& entry = entries_[index];
    if (!entry.live) {
      continue;
    }
    scanned += entry.wire_bytes;
    if (templ.matches(entry.tuple)) {
      ++count;
    }
  }
  last_op_bytes_ = scanned;
  return count;
}

std::vector<Tuple> IndexedTupleStore::snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (const Entry& entry : entries_) {
    if (entry.live) {
      out.push_back(entry.tuple);
    }
  }
  return out;
}

void IndexedTupleStore::clear() {
  entries_.clear();
  by_arity_.clear();
  used_ = 0;
  live_count_ = 0;
  tombstones_ = 0;
  last_op_bytes_ = 0;
}

void IndexedTupleStore::compact() {
  std::vector<Entry> survivors;
  survivors.reserve(live_count_);
  for (Entry& entry : entries_) {
    if (entry.live) {
      survivors.push_back(std::move(entry));
    }
  }
  entries_ = std::move(survivors);
  by_arity_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_arity_[entries_[i].tuple.arity()].push_back(i);
  }
  tombstones_ = 0;
}

}  // namespace agilla::ts

#include "tuplespace/indexed_store.h"

#include <algorithm>
#include <cassert>

namespace agilla::ts {

IndexedTupleStore::IndexedTupleStore(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

bool IndexedTupleStore::insert(const Tuple& tuple) {
  last_op_bytes_ = 0;
  if (tuple.empty()) {
    return false;
  }
  const std::size_t size = tuple.wire_size();
  if (size > kMaxTupleWireBytes || used_ + 1 + size > capacity_) {
    return false;
  }
  Entry entry;
  net::Writer w;
  tuple.encode(w);
  assert(w.size() == size && size <= entry.wire.size());
  std::copy(w.data().begin(), w.data().end(), entry.wire.begin());
  entry.wire_len = static_cast<std::uint8_t>(size);
  entry.fp = fingerprint_of(tuple);
  entry.live = true;
  // wire-budget invariant: a storable tuple has at most kMaxTupleFields
  // fields, so the arity always lands in a bucket.
  assert(tuple.arity() < by_arity_.size());
  by_arity_[tuple.arity()].push_back(
      static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(entry);
  used_ += 1 + size;
  ++live_count_;
  last_op_bytes_ = 1 + size;
  return true;
}

template <typename Visit>
void IndexedTupleStore::scan_bucket(const CompiledTemplate& templ,
                                    Visit&& visit) const {
  std::size_t scanned = 0;
  if (templ.arity() < by_arity_.size()) {
    for (const std::uint32_t index : by_arity_[templ.arity()]) {
      const Entry& entry = entries_[index];
      if (!entry.live) {
        continue;
      }
      scanned += entry.record_bytes();
      if (templ.key_rejects(entry.fp) || !templ.matches(entry.ref())) {
        continue;
      }
      if (visit(index)) {
        break;
      }
    }
  }
  last_op_bytes_ = scanned;
}

std::size_t IndexedTupleStore::find_first(
    const CompiledTemplate& templ) const {
  std::size_t found = kNpos;
  scan_bucket(templ, [&found](std::size_t index) {
    found = index;
    return true;  // first match ends the scan
  });
  return found;
}

std::optional<Tuple> IndexedTupleStore::take(const CompiledTemplate& templ) {
  const std::size_t index = find_first(templ);
  if (index == kNpos) {
    return std::nullopt;
  }
  Entry& entry = entries_[index];
  std::optional<Tuple> out = entry.ref().materialize();
  assert(out.has_value());  // insert only writes well-formed records
  entry.live = false;
  used_ -= entry.record_bytes();
  --live_count_;
  ++tombstones_;
  // No memory shift: removal costs only the scan (the headline win over
  // the linear store); amortized compaction keeps the arrays bounded.
  if (tombstones_ > entries_.size() / 2 && tombstones_ > 8) {
    compact();
  }
  return out;
}

std::optional<Tuple> IndexedTupleStore::read(
    const CompiledTemplate& templ) const {
  const std::size_t index = find_first(templ);
  if (index == kNpos) {
    return std::nullopt;
  }
  return entries_[index].ref().materialize();
}

std::size_t IndexedTupleStore::count_matching(
    const CompiledTemplate& templ) const {
  std::size_t count = 0;
  scan_bucket(templ, [&count](std::size_t) {
    ++count;
    return false;  // keep scanning: count covers every candidate
  });
  return count;
}

std::vector<Tuple> IndexedTupleStore::snapshot() const {
  std::vector<Tuple> out;
  out.reserve(live_count_);
  for (const Entry& entry : entries_) {
    if (!entry.live) {
      continue;
    }
    auto tuple = entry.ref().materialize();
    if (tuple.has_value()) {
      out.push_back(std::move(*tuple));
    }
  }
  return out;
}

void IndexedTupleStore::clear() {
  entries_.clear();
  for (auto& bucket : by_arity_) {
    bucket.clear();
  }
  used_ = 0;
  live_count_ = 0;
  tombstones_ = 0;
  last_op_bytes_ = 0;
}

void IndexedTupleStore::compact() {
  std::vector<Entry> survivors;
  survivors.reserve(live_count_);
  for (const Entry& entry : entries_) {
    if (entry.live) {
      survivors.push_back(entry);
    }
  }
  entries_ = std::move(survivors);
  for (auto& bucket : by_arity_) {
    bucket.clear();
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_arity_[entries_[i].ref().arity()].push_back(
        static_cast<std::uint32_t>(i));
  }
  tombstones_ = 0;
}

}  // namespace agilla::ts

// Wire codec of the gateway service (paper Sec. 3.1: the base station is
// "an RMI server that allows anyone on the Internet to remotely access
// the sensor network" — ours speaks a small framed protocol instead of
// RMI).
//
// Frame layout, little-endian:
//
//   offset size
//   0      4   u32 length of everything after this field (header + payload)
//   4      2   magic "AG"
//   6      1   protocol version (kWireVersion)
//   7      1   message type (MsgType)
//   8      4   u32 request id — client-chosen per-session correlation id;
//              responses echo the id of the request (or, for kAsyncResult,
//              the id of the originating command; for kEvent, the id of
//              the subscribe that opened the stream)
//   12     8   u64 virtual timestamp (µs) — stamped by the server when a
//              response is enqueued; clients send 0
//   20     ... payload (UTF-8 text: command line, reply text, event line)
//
// The decoder is strict: bad magic, unknown version, unknown type, or an
// oversized length are connection-fatal (FrameReader::Status::kError);
// a truncated frame is simply incomplete (kNeedMore) until more bytes
// arrive. tests/test_gateway_service.cpp fuzzes truncation and mutation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace agilla::svc::wire {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;  ///< after the length field
inline constexpr std::size_t kMaxPayload = 64 * 1024;

enum class MsgType : std::uint8_t {
  // client -> server
  kHello = 1,        ///< payload: "" (new session) or a resume token
  kCommand = 2,      ///< payload: one GatewayConsole command line
  kSubscribe = 3,    ///< payload: event kind (agent|tuple|node|frame|battery)
  kUnsubscribe = 4,  ///< payload: event kind, or "" for all
  kPing = 5,         ///< payload: ignored
  kBye = 6,          ///< orderly close; the session is destroyed
  // server -> client
  kWelcome = 16,      ///< payload: "session=<id> token=<hex> resumed=<0|1>"
  kReply = 17,        ///< immediate response to kCommand/kSubscribe/...
  kAsyncResult = 18,  ///< async remote-op result; id = originating command
  kEvent = 19,        ///< streamed event; id = the owning subscribe
  kError = 20,        ///< protocol error text; usually followed by close
  kPong = 21,         ///< payload: "drops=<events dropped on this session>"
  kByeAck = 22,       ///< final frame of an orderly close / server drain
};

[[nodiscard]] bool is_client_type(MsgType type);
[[nodiscard]] bool is_server_type(MsgType type);
[[nodiscard]] const char* to_string(MsgType type);

struct Message {
  MsgType type = MsgType::kPing;
  std::uint32_t request_id = 0;
  std::uint64_t vtime = 0;  ///< virtual µs; server-stamped on responses
  std::string payload;
};

/// Encodes one frame (length prefix included).
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

/// Incremental decoder over a reassembly buffer: feed() arbitrary byte
/// chunks, then next() until it stops returning kMessage. After kError
/// the stream is poisoned (the connection must be dropped).
class FrameReader {
 public:
  enum class Status : std::uint8_t {
    kMessage,   ///< *out holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< malformed stream; `error()` says why
  };

  void feed(const std::uint8_t* data, std::size_t size);
  Status next(Message* out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted opportunistically
  std::string error_;
  bool poisoned_ = false;
};

}  // namespace agilla::svc::wire

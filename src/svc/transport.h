// The transport seam of the gateway service: how client byte streams
// reach the (single-threaded) service and how encoded responses travel
// back. Two implementations:
//
//   - LoopbackTransport (here): a deterministic in-process pipe pair per
//     client. No sockets, no threads — every test, the loadgen's
//     deterministic mode, and every CI determinism gate run on it.
//   - TcpTransport (svc/tcp_transport.h): a real poll()-driven TCP
//     server on its own thread.
//
// Threading contract (DESIGN.md "Gateway service"): poll() is only ever
// called from the simulation thread, and it is the ONLY way connect /
// data / disconnect reach the service — a threaded transport merely
// queues events; it never calls into the service. send()/close() are
// called from the simulation thread too; a threaded transport hands the
// bytes to its I/O thread under its own lock. The sim thread therefore
// stays the sole mutator of all session and mesh state.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

namespace agilla::svc {

using ConnId = std::uint64_t;

struct TransportCallbacks {
  std::function<void(ConnId)> on_connect;
  std::function<void(ConnId, const std::uint8_t*, std::size_t)> on_data;
  std::function<void(ConnId)> on_disconnect;
};

class Transport {
 public:
  virtual ~Transport();

  /// Delivers every queued connect/data/disconnect event, in arrival
  /// order, on the calling (simulation) thread.
  virtual void poll(const TransportCallbacks& callbacks) = 0;

  /// Queues bytes toward the client. No-op on a closed connection.
  virtual void send(ConnId conn, const std::uint8_t* data,
                    std::size_t size) = 0;

  /// Server-side close. The peer sees EOF; no disconnect event is
  /// delivered back to the service (it initiated the close).
  virtual void close(ConnId conn) = 0;
};

/// Deterministic in-process transport. The driving thread plays both
/// sides: client handles push bytes in, poll() hands them to the
/// service, the service's send() lands in the client's inbox, and the
/// client drains it — all in program order, so a fixed client script
/// yields byte-identical transcripts on every run.
class LoopbackTransport final : public Transport {
 public:
  /// Lightweight client endpoint handle (copyable; the transport owns
  /// the state and must outlive every handle).
  class Client {
   public:
    Client() = default;

    void send(const std::vector<std::uint8_t>& bytes);
    /// Moves out everything the server has sent since the last drain.
    [[nodiscard]] std::vector<std::uint8_t> drain();
    /// Client-initiated disconnect (the session stays resumable).
    void disconnect();
    [[nodiscard]] bool closed() const;
    [[nodiscard]] ConnId id() const { return id_; }

   private:
    friend class LoopbackTransport;
    Client(LoopbackTransport* transport, ConnId id)
        : transport_(transport), id_(id) {}

    LoopbackTransport* transport_ = nullptr;
    ConnId id_ = 0;
  };

  /// Opens a new connection; the service learns of it at the next poll().
  [[nodiscard]] Client connect();

  void poll(const TransportCallbacks& callbacks) override;
  void send(ConnId conn, const std::uint8_t* data,
            std::size_t size) override;
  void close(ConnId conn) override;

 private:
  struct Endpoint {
    std::vector<std::uint8_t> to_client;  ///< server -> client inbox
    bool open = true;
  };

  enum class EventKind : std::uint8_t { kConnect, kData, kDisconnect };
  struct Event {
    EventKind kind;
    ConnId conn;
    std::vector<std::uint8_t> bytes;
  };

  std::unordered_map<ConnId, Endpoint> endpoints_;
  std::deque<Event> pending_;
  ConnId next_id_ = 1;
};

}  // namespace agilla::svc

// Per-client session state of the gateway service: its own
// GatewayConsole (so command ids and subscriptions are per-client), a
// bounded outbound queue with explicit drop accounting, and a resume
// token that survives disconnects — a client that reconnects with the
// token picks its queued backlog back up.
//
// Backpressure policy: streamed events are droppable (a slow client
// loses events, counted per session and service-wide), correlated
// responses — welcome, replies, async results, pong, byeack — are not
// (the queue may exceed its cap by control traffic, which is bounded by
// the client's own outstanding requests).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "core/gateway.h"
#include "svc/transport.h"
#include "svc/wire.h"

namespace agilla::svc {

struct SessionStats {
  std::uint64_t commands = 0;
  std::uint64_t replies = 0;
  std::uint64_t async_results = 0;
  std::uint64_t events_enqueued = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t resumes = 0;
};

class Session {
 public:
  Session(std::uint32_t id, std::uint64_t token, core::BaseStation base,
          std::size_t queue_cap);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] std::uint64_t token() const { return token_; }
  [[nodiscard]] std::string token_hex() const;

  [[nodiscard]] core::GatewayConsole& console() { return console_; }

  // ------------------------------------------------------------ binding
  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] ConnId conn() const { return conn_; }
  void bind(ConnId conn) {
    bound_ = true;
    conn_ = conn;
  }
  void unbind() { bound_ = false; }

  // ------------------------------------------------------ outbound queue
  /// Queues one response frame. Droppable messages (events) are refused
  /// once the queue is at capacity — the drop is counted and false
  /// returned; control messages always enqueue.
  bool enqueue(wire::Message message, bool droppable);

  [[nodiscard]] std::deque<wire::Message>& outbox() { return outbox_; }
  [[nodiscard]] std::size_t queue_cap() const { return queue_cap_; }

  // ------------------------------------------- subscription correlation
  /// Remembers which subscribe request opened the stream for `kind`, so
  /// kEvent frames can echo that id.
  void set_subscribe_id(const std::string& kind, std::uint32_t id) {
    subscribe_ids_[kind] = id;
  }
  void clear_subscribe_id(const std::string& kind) {
    subscribe_ids_.erase(kind);
  }
  void clear_subscribe_ids() { subscribe_ids_.clear(); }
  [[nodiscard]] std::uint32_t subscribe_id(const std::string& kind) const {
    const auto it = subscribe_ids_.find(kind);
    return it == subscribe_ids_.end() ? 0 : it->second;
  }

  [[nodiscard]] SessionStats& stats() { return stats_; }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }

 private:
  std::uint32_t id_;
  std::uint64_t token_;
  /// Value-semantic handle onto the gateway mote; the console references
  /// it, so it must be declared first.
  core::BaseStation base_;
  core::GatewayConsole console_;
  std::deque<wire::Message> outbox_;
  std::size_t queue_cap_;
  std::map<std::string, std::uint32_t> subscribe_ids_;
  bool bound_ = false;
  ConnId conn_ = 0;
  SessionStats stats_;
};

}  // namespace agilla::svc

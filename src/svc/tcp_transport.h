// Real TCP implementation of the transport seam: a listen socket plus a
// poll(2) loop on a dedicated I/O thread. The thread only moves bytes —
// accepted connections, read chunks, and EOFs are queued as events the
// simulation thread collects via poll(); outbound bytes are appended to
// per-connection write buffers under the same lock and flushed by the
// I/O thread. The service (and with it every mesh mutation) never runs
// off the simulation thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/transport.h"

namespace agilla::svc {

class TcpTransport final : public Transport {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port()
    int backlog = 128;
  };

  explicit TcpTransport(Options options);
  ~TcpTransport() override;

  /// Binds, listens, and starts the I/O thread. False (with *error set)
  /// on any socket failure.
  bool start(std::string* error);

  /// Stops the I/O thread and closes every socket. Idempotent.
  void stop();

  /// The bound port (resolves 0 to the kernel-chosen ephemeral port).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  void poll(const TransportCallbacks& callbacks) override;
  void send(ConnId conn, const std::uint8_t* data,
            std::size_t size) override;
  void close(ConnId conn) override;

 private:
  enum class EventKind : std::uint8_t { kConnect, kData, kDisconnect };
  struct Event {
    EventKind kind;
    ConnId conn;
    std::vector<std::uint8_t> bytes;
  };
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> write_buf;
    bool close_when_flushed = false;
  };

  void io_loop();
  void wake();

  Options options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread io_thread_;
  std::atomic<bool> running_{false};

  std::mutex mutex_;
  std::deque<Event> events_;
  std::unordered_map<ConnId, Conn> conns_;
  ConnId next_id_ = 1;
};

}  // namespace agilla::svc

// GatewayService — the networked front of the paper's base-station
// gateway (Sec. 3.1's "RMI server that allows anyone on the Internet to
// remotely access the sensor network"), rebuilt on the deterministic
// simulation: a session multiplexer that speaks the svc::wire protocol
// over any Transport and drives an api::Deployment through per-session
// GatewayConsoles.
//
// Threading contract: the service runs entirely on the simulation
// thread. pump() — transport poll, message handling, outbox flush — is
// the only entry point, and the embedder calls it between run_for()
// slices. Transports may move bytes on their own threads, but every
// mesh mutation (inject, rout, subscribe) happens here, on the sim
// thread, keeping the determinism contract intact.
//
// Protocol (wire.h has the frame layout):
//   client: hello [token]   -> welcome "session=<id> token=<hex>
//                               resumed=<0|1>" | error (fatal)
//           command <line>  -> reply <text>, later asyncresult for
//                               remote ops (id = the command frame's id)
//           subscribe <kind>   -> reply, then event frames (id = the
//                               subscribe frame's id) until unsubscribe
//           unsubscribe [<kind>] -> reply
//           ping            -> pong "drops=<n>" (liveness + drop probe)
//           bye             -> byeack, connection closed, session freed
// Any malformed frame or out-of-protocol message is connection-fatal:
// error frame, close. The session (if any) stays resumable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "api/deployment.h"
#include "svc/session.h"
#include "svc/transport.h"
#include "svc/wire.h"

namespace agilla::svc {

struct ServiceOptions {
  std::size_t max_sessions = 1024;
  /// Per-session outbound queue cap (droppable events beyond it are
  /// counted and discarded).
  std::size_t queue_cap = 1024;
  /// Mixed into the deployment seed to derive session resume tokens
  /// deterministically.
  std::uint64_t token_seed = 0;
};

struct ServiceStats {
  std::uint64_t connections = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_resumed = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t resume_failures = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t commands = 0;
  std::uint64_t subscribes = 0;
  std::uint64_t pings = 0;
  std::uint64_t async_results = 0;
  std::uint64_t events_sent = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t protocol_errors = 0;
};

class GatewayService {
 public:
  GatewayService(api::Deployment& deployment, Transport& transport,
                 ServiceOptions options = {});
  ~GatewayService();

  GatewayService(const GatewayService&) = delete;
  GatewayService& operator=(const GatewayService&) = delete;

  /// One service turn, on the simulation thread: collect transport
  /// events, handle every complete frame, flush session outboxes.
  void pump();

  /// Graceful drain: byeack to every live connection, flush, close,
  /// free all sessions. pump() becomes a no-op afterwards.
  void shutdown();

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t session_count() const {
    return sessions_.size();
  }
  [[nodiscard]] std::size_t bound_session_count() const;

  /// Deterministic metrics snapshot (stable key order, virtual-time
  /// stamped) — what gatewayd flushes on shutdown.
  [[nodiscard]] std::string metrics_json() const;

 private:
  struct ConnState {
    wire::FrameReader reader;
    Session* session = nullptr;  ///< null until hello
  };

  void on_connect(ConnId conn);
  void on_data(ConnId conn, const std::uint8_t* data, std::size_t size);
  void on_disconnect(ConnId conn);
  void handle_message(ConnId conn, ConnState& state, wire::Message message);
  void handle_hello(ConnId conn, ConnState& state,
                    const wire::Message& message);
  /// Connection-fatal: counts, sends an error frame, closes.
  void fail_conn(ConnId conn, std::uint32_t request_id,
                 const std::string& text);
  void close_session(Session* session);
  void flush();
  /// Encodes and hands one frame to the transport immediately.
  void send_now(ConnId conn, const wire::Message& message);
  void enqueue(Session& session, wire::Message message, bool droppable);
  [[nodiscard]] std::uint64_t token_for(std::uint32_t session_id) const;
  [[nodiscard]] std::uint64_t now() const;

  api::Deployment& deployment_;
  Transport& transport_;
  ServiceOptions options_;
  std::map<ConnId, ConnState> conns_;
  /// Keyed by session id — ordered, so flush order is deterministic.
  std::map<std::uint32_t, std::unique_ptr<Session>> sessions_;
  std::map<std::uint64_t, std::uint32_t> sessions_by_token_;
  std::uint32_t next_session_id_ = 1;
  ServiceStats stats_;
  bool shut_down_ = false;
};

}  // namespace agilla::svc

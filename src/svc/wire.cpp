#include "svc/wire.h"

#include <cstring>

namespace agilla::svc::wire {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

bool known_type(std::uint8_t raw) {
  const auto type = static_cast<MsgType>(raw);
  return is_client_type(type) || is_server_type(type);
}

}  // namespace

bool is_client_type(MsgType type) {
  switch (type) {
    case MsgType::kHello:
    case MsgType::kCommand:
    case MsgType::kSubscribe:
    case MsgType::kUnsubscribe:
    case MsgType::kPing:
    case MsgType::kBye:
      return true;
    default:
      return false;
  }
}

bool is_server_type(MsgType type) {
  switch (type) {
    case MsgType::kWelcome:
    case MsgType::kReply:
    case MsgType::kAsyncResult:
    case MsgType::kEvent:
    case MsgType::kError:
    case MsgType::kPong:
    case MsgType::kByeAck:
      return true;
    default:
      return false;
  }
}

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kCommand:
      return "command";
    case MsgType::kSubscribe:
      return "subscribe";
    case MsgType::kUnsubscribe:
      return "unsubscribe";
    case MsgType::kPing:
      return "ping";
    case MsgType::kBye:
      return "bye";
    case MsgType::kWelcome:
      return "welcome";
    case MsgType::kReply:
      return "reply";
    case MsgType::kAsyncResult:
      return "async";
    case MsgType::kEvent:
      return "event";
    case MsgType::kError:
      return "error";
    case MsgType::kPong:
      return "pong";
    case MsgType::kByeAck:
      return "byeack";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + kHeaderBytes + message.payload.size());
  put_u32(out,
          static_cast<std::uint32_t>(kHeaderBytes + message.payload.size()));
  out.push_back('A');
  out.push_back('G');
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(message.type));
  put_u32(out, message.request_id);
  put_u64(out, message.vtime);
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) {
    return;
  }
  // Compact once the consumed prefix dominates, so long-lived sessions
  // do not grow the buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameReader::Status FrameReader::next(Message* out) {
  if (poisoned_) {
    return Status::kError;
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < 4) {
    return Status::kNeedMore;
  }
  const std::uint8_t* frame = buffer_.data() + pos_;
  const std::uint32_t length = get_u32(frame);
  if (length < kHeaderBytes || length > kHeaderBytes + kMaxPayload) {
    poisoned_ = true;
    error_ = "bad frame length " + std::to_string(length);
    return Status::kError;
  }
  if (avail < 4 + length) {
    return Status::kNeedMore;
  }
  const std::uint8_t* header = frame + 4;
  if (header[0] != 'A' || header[1] != 'G') {
    poisoned_ = true;
    error_ = "bad magic";
    return Status::kError;
  }
  if (header[2] != kWireVersion) {
    poisoned_ = true;
    error_ = "unsupported version " + std::to_string(header[2]);
    return Status::kError;
  }
  if (!known_type(header[3])) {
    poisoned_ = true;
    error_ = "unknown message type " + std::to_string(header[3]);
    return Status::kError;
  }
  out->type = static_cast<MsgType>(header[3]);
  out->request_id = get_u32(header + 4);
  out->vtime = get_u64(header + 8);
  out->payload.assign(
      reinterpret_cast<const char*>(header + kHeaderBytes),
      length - kHeaderBytes);
  pos_ += 4 + length;
  return Status::kMessage;
}

}  // namespace agilla::svc::wire

#include "svc/session.h"

#include <cstdio>

namespace agilla::svc {

Session::Session(std::uint32_t id, std::uint64_t token,
                 core::BaseStation base, std::size_t queue_cap)
    : id_(id), token_(token), base_(base), console_(base_),
      queue_cap_(queue_cap) {}

std::string Session::token_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(token_));
  return buf;
}

bool Session::enqueue(wire::Message message, bool droppable) {
  if (droppable && outbox_.size() >= queue_cap_) {
    ++stats_.events_dropped;
    return false;
  }
  outbox_.push_back(std::move(message));
  return true;
}

}  // namespace agilla::svc

#include "svc/gateway_service.h"

#include <cstdlib>
#include <utility>

#include "harness/json_writer.h"

namespace agilla::svc {
namespace {

/// SplitMix64 — the same mixer the simulator's RNG seeding uses; good
/// enough to make resume tokens non-guessable-by-accident while staying
/// a pure function of (deployment seed, token seed, session id).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool parse_token(const std::string& hex, std::uint64_t* out) {
  if (hex.empty() || hex.size() > 16) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

GatewayService::GatewayService(api::Deployment& deployment,
                               Transport& transport, ServiceOptions options)
    : deployment_(deployment), transport_(transport), options_(options) {}

GatewayService::~GatewayService() = default;

std::uint64_t GatewayService::now() const {
  return static_cast<std::uint64_t>(deployment_.simulator().now());
}

std::uint64_t GatewayService::token_for(std::uint32_t session_id) const {
  return splitmix64(deployment_.options().seed ^ options_.token_seed ^
                    (0x5e55104eULL << 32) ^ session_id);
}

std::size_t GatewayService::bound_session_count() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (session->bound()) {
      ++n;
    }
  }
  return n;
}

void GatewayService::pump() {
  if (shut_down_) {
    return;
  }
  TransportCallbacks callbacks;
  callbacks.on_connect = [this](ConnId conn) { on_connect(conn); };
  callbacks.on_data = [this](ConnId conn, const std::uint8_t* data,
                             std::size_t size) { on_data(conn, data, size); };
  callbacks.on_disconnect = [this](ConnId conn) { on_disconnect(conn); };
  transport_.poll(callbacks);
  flush();
}

void GatewayService::shutdown() {
  if (shut_down_) {
    return;
  }
  for (auto& [id, session] : sessions_) {
    if (session->bound()) {
      session->enqueue(wire::Message{wire::MsgType::kByeAck, 0, now(),
                                     "server shutdown"},
                       false);
    }
  }
  flush();
  for (auto& [conn, state] : conns_) {
    transport_.close(conn);
  }
  stats_.sessions_closed += sessions_.size();
  conns_.clear();
  sessions_by_token_.clear();
  sessions_.clear();  // console dtors unsubscribe from the bus
  shut_down_ = true;
}

void GatewayService::on_connect(ConnId conn) {
  ++stats_.connections;
  conns_[conn];  // default ConnState: fresh reader, no session
}

void GatewayService::on_data(ConnId conn, const std::uint8_t* data,
                             std::size_t size) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  stats_.bytes_in += size;
  it->second.reader.feed(data, size);
  // handle_message can erase the connection (protocol error, bye), so
  // re-find it every iteration instead of holding the iterator.
  for (;;) {
    it = conns_.find(conn);
    if (it == conns_.end()) {
      return;
    }
    wire::Message message;
    const auto status = it->second.reader.next(&message);
    if (status == wire::FrameReader::Status::kNeedMore) {
      return;
    }
    if (status == wire::FrameReader::Status::kError) {
      fail_conn(conn, 0, it->second.reader.error());
      return;
    }
    ++stats_.frames_in;
    handle_message(conn, it->second, std::move(message));
  }
}

void GatewayService::on_disconnect(ConnId conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return;
  }
  if (it->second.session != nullptr) {
    it->second.session->unbind();  // stays resumable by token
  }
  conns_.erase(it);
}

void GatewayService::handle_message(ConnId conn, ConnState& state,
                                    wire::Message message) {
  if (!wire::is_client_type(message.type)) {
    fail_conn(conn, message.request_id,
              std::string("unexpected message type ") +
                  wire::to_string(message.type));
    return;
  }
  if (message.type == wire::MsgType::kHello) {
    handle_hello(conn, state, message);
    return;
  }
  Session* session = state.session;
  if (session == nullptr) {
    fail_conn(conn, message.request_id, "hello required before " +
                                            std::string(wire::to_string(
                                                message.type)));
    return;
  }
  switch (message.type) {
    case wire::MsgType::kCommand: {
      ++stats_.commands;
      ++session->stats().commands;
      const std::string reply =
          session->console().execute(message.payload, message.request_id);
      ++session->stats().replies;
      enqueue(*session, wire::Message{wire::MsgType::kReply,
                                      message.request_id, now(), reply},
              false);
      break;
    }
    case wire::MsgType::kSubscribe: {
      ++stats_.subscribes;
      const std::string reply = session->console().execute(
          "subscribe " + message.payload, message.request_id);
      if (reply.rfind("ok", 0) == 0) {
        session->set_subscribe_id(message.payload, message.request_id);
      }
      enqueue(*session, wire::Message{wire::MsgType::kReply,
                                      message.request_id, now(), reply},
              false);
      break;
    }
    case wire::MsgType::kUnsubscribe: {
      const std::string line = message.payload.empty()
                                   ? std::string("unsubscribe")
                                   : "unsubscribe " + message.payload;
      const std::string reply =
          session->console().execute(line, message.request_id);
      if (reply.rfind("ok", 0) == 0) {
        if (message.payload.empty()) {
          session->clear_subscribe_ids();
        } else {
          session->clear_subscribe_id(message.payload);
        }
      }
      enqueue(*session, wire::Message{wire::MsgType::kReply,
                                      message.request_id, now(), reply},
              false);
      break;
    }
    case wire::MsgType::kPing: {
      ++stats_.pings;
      enqueue(*session,
              wire::Message{wire::MsgType::kPong, message.request_id, now(),
                            "drops=" + std::to_string(
                                           session->stats().events_dropped)},
              false);
      break;
    }
    case wire::MsgType::kBye: {
      enqueue(*session, wire::Message{wire::MsgType::kByeAck,
                                      message.request_id, now(), "bye"},
              false);
      // Flush this session's backlog (byeack last), then close.
      while (!session->outbox().empty()) {
        send_now(conn, session->outbox().front());
        session->outbox().pop_front();
      }
      transport_.close(conn);
      state.session = nullptr;
      conns_.erase(conn);
      close_session(session);
      break;
    }
    default:
      fail_conn(conn, message.request_id, "unhandled message type");
      break;
  }
}

void GatewayService::handle_hello(ConnId conn, ConnState& state,
                                  const wire::Message& message) {
  if (state.session != nullptr) {
    fail_conn(conn, message.request_id, "hello on a bound connection");
    return;
  }
  if (!message.payload.empty()) {
    // Resume: payload is the hex token welcome handed out.
    std::uint64_t token = 0;
    if (!parse_token(message.payload, &token)) {
      ++stats_.resume_failures;
      fail_conn(conn, message.request_id, "malformed session token");
      return;
    }
    const auto it = sessions_by_token_.find(token);
    if (it == sessions_by_token_.end()) {
      ++stats_.resume_failures;
      fail_conn(conn, message.request_id, "unknown session token");
      return;
    }
    Session& session = *sessions_.at(it->second);
    if (session.bound()) {
      ++stats_.resume_failures;
      fail_conn(conn, message.request_id, "session already bound");
      return;
    }
    session.bind(conn);
    state.session = &session;
    ++session.stats().resumes;
    ++stats_.sessions_resumed;
    // Straight to the wire, not the outbox: the backlog queued while the
    // session was unbound flushes right after, and the welcome must
    // precede it so the client knows the resume took before replaying.
    send_now(conn, wire::Message{wire::MsgType::kWelcome, message.request_id,
                                 now(),
                                 "session=" + std::to_string(session.id()) +
                                     " token=" + session.token_hex() +
                                     " resumed=1"});
    return;
  }
  if (sessions_.size() >= options_.max_sessions) {
    ++stats_.sessions_rejected;
    send_now(conn, wire::Message{wire::MsgType::kError, message.request_id,
                                 now(), "session limit reached"});
    transport_.close(conn);
    conns_.erase(conn);
    return;
  }
  const std::uint32_t id = next_session_id_++;
  const std::uint64_t token = token_for(id);
  auto owned = std::make_unique<Session>(id, token, deployment_.base(),
                                         options_.queue_cap);
  Session* session = owned.get();
  session->console().attach_bus(deployment_.bus());
  session->console().set_async_sink(
      [this, session](std::uint64_t cmd_id, bool ok, const std::string& text) {
        ++stats_.async_results;
        ++session->stats().async_results;
        enqueue(*session,
                wire::Message{wire::MsgType::kAsyncResult,
                              static_cast<std::uint32_t>(cmd_id), now(),
                              (ok ? "ok " : "err ") + text},
                false);
      });
  session->console().set_event_sink(
      [this, session](const std::string& kind, const std::string& text) {
        wire::Message event{wire::MsgType::kEvent,
                            session->subscribe_id(kind), now(),
                            kind + " " + text};
        if (session->enqueue(std::move(event), /*droppable=*/true)) {
          ++session->stats().events_enqueued;
          ++stats_.events_sent;
        } else {
          ++stats_.events_dropped;
        }
      });
  session->bind(conn);
  state.session = session;
  sessions_by_token_[token] = id;
  sessions_.emplace(id, std::move(owned));
  ++stats_.sessions_opened;
  enqueue(*session,
          wire::Message{wire::MsgType::kWelcome, message.request_id, now(),
                        "session=" + std::to_string(id) +
                            " token=" + session->token_hex() + " resumed=0"},
          false);
}

void GatewayService::fail_conn(ConnId conn, std::uint32_t request_id,
                               const std::string& text) {
  ++stats_.protocol_errors;
  send_now(conn, wire::Message{wire::MsgType::kError, request_id, now(),
                               "error: " + text});
  transport_.close(conn);
  const auto it = conns_.find(conn);
  if (it != conns_.end()) {
    if (it->second.session != nullptr) {
      it->second.session->unbind();  // resumable despite the error
    }
    conns_.erase(it);
  }
}

void GatewayService::close_session(Session* session) {
  sessions_by_token_.erase(session->token());
  sessions_.erase(session->id());  // console dtor unsubscribes the bus
  ++stats_.sessions_closed;
}

void GatewayService::flush() {
  for (auto& [id, session] : sessions_) {
    if (!session->bound()) {
      continue;  // backlog waits for a resume
    }
    while (!session->outbox().empty()) {
      send_now(session->conn(), session->outbox().front());
      session->outbox().pop_front();
    }
  }
}

void GatewayService::send_now(ConnId conn, const wire::Message& message) {
  const std::vector<std::uint8_t> bytes = wire::encode(message);
  ++stats_.frames_out;
  stats_.bytes_out += bytes.size();
  transport_.send(conn, bytes.data(), bytes.size());
}

void GatewayService::enqueue(Session& session, wire::Message message,
                             bool droppable) {
  session.enqueue(std::move(message), droppable);
}

std::string GatewayService::metrics_json() const {
  harness::JsonWriter json(2);
  json.begin_object();
  json.key("vtime_us").value(now());
  json.key("sessions_live").value(
      static_cast<std::uint64_t>(sessions_.size()));
  json.key("sessions_bound").value(
      static_cast<std::uint64_t>(bound_session_count()));
  json.key("connections").value(stats_.connections);
  json.key("sessions_opened").value(stats_.sessions_opened);
  json.key("sessions_resumed").value(stats_.sessions_resumed);
  json.key("sessions_closed").value(stats_.sessions_closed);
  json.key("sessions_rejected").value(stats_.sessions_rejected);
  json.key("resume_failures").value(stats_.resume_failures);
  json.key("frames_in").value(stats_.frames_in);
  json.key("frames_out").value(stats_.frames_out);
  json.key("bytes_in").value(stats_.bytes_in);
  json.key("bytes_out").value(stats_.bytes_out);
  json.key("commands").value(stats_.commands);
  json.key("subscribes").value(stats_.subscribes);
  json.key("pings").value(stats_.pings);
  json.key("async_results").value(stats_.async_results);
  json.key("events_sent").value(stats_.events_sent);
  json.key("events_dropped").value(stats_.events_dropped);
  json.key("protocol_errors").value(stats_.protocol_errors);
  json.end_object();
  return json.str();
}

}  // namespace agilla::svc

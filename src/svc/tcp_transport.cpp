#include "svc/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace agilla::svc {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

TcpTransport::TcpTransport(Options options) : options_(std::move(options)) {}

TcpTransport::~TcpTransport() { stop(); }

bool TcpTransport::start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad listen address '" + options_.host + "'";
    stop();
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    stop();
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    stop();
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  port_ = ntohs(bound.sin_port);
  if (!set_nonblocking(listen_fd_) || ::pipe(wake_pipe_) != 0 ||
      !set_nonblocking(wake_pipe_[0])) {
    *error = "fcntl/pipe failed";
    stop();
    return false;
  }
  running_.store(true);
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void TcpTransport::stop() {
  if (running_.exchange(false)) {
    wake();
    io_thread_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
    }
  }
  conns_.clear();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void TcpTransport::wake() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void TcpTransport::poll(const TransportCallbacks& callbacks) {
  std::deque<Event> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(events_);
  }
  for (Event& event : batch) {
    switch (event.kind) {
      case EventKind::kConnect:
        if (callbacks.on_connect) {
          callbacks.on_connect(event.conn);
        }
        break;
      case EventKind::kData:
        if (callbacks.on_data) {
          callbacks.on_data(event.conn, event.bytes.data(),
                            event.bytes.size());
        }
        break;
      case EventKind::kDisconnect:
        if (callbacks.on_disconnect) {
          callbacks.on_disconnect(event.conn);
        }
        break;
    }
  }
}

void TcpTransport::send(ConnId conn, const std::uint8_t* data,
                        std::size_t size) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end() || it->second.fd < 0) {
      return;
    }
    it->second.write_buf.insert(it->second.write_buf.end(), data,
                                data + size);
  }
  wake();
}

void TcpTransport::close(ConnId conn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end()) {
      return;
    }
    it->second.close_when_flushed = true;
  }
  wake();
}

void TcpTransport::io_loop() {
  std::vector<pollfd> fds;
  std::vector<ConnId> fd_conn;  ///< parallel to fds, 0 for listen/wake
  std::uint8_t buf[16 * 1024];
  while (running_.load()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(0);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [id, conn] : conns_) {
        if (conn.fd < 0) {
          continue;
        }
        short want = POLLIN;
        if (!conn.write_buf.empty() || conn.close_when_flushed) {
          want |= POLLOUT;
        }
        fds.push_back(pollfd{conn.fd, want, 0});
        fd_conn.push_back(id);
      }
    }
    if (::poll(fds.data(), fds.size(), 100) < 0 && errno != EINTR) {
      break;
    }
    if (fds[1].revents & POLLIN) {
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard<std::mutex> lock(mutex_);
        const ConnId id = next_id_++;
        conns_[id].fd = fd;
        events_.push_back(Event{EventKind::kConnect, id, {}});
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const ConnId id = fd_conn[i];
      const short revents = fds[i].revents;
      if (revents == 0) {
        continue;
      }
      bool dead = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      if (!dead && (revents & POLLIN)) {
        for (;;) {
          const ssize_t n = ::read(fds[i].fd, buf, sizeof(buf));
          if (n > 0) {
            std::lock_guard<std::mutex> lock(mutex_);
            events_.push_back(Event{
                EventKind::kData, id,
                std::vector<std::uint8_t>(buf, buf + n)});
          } else if (n == 0) {
            dead = true;
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              dead = true;
            }
            break;
          }
        }
      }
      if (!dead && (revents & POLLOUT)) {
        std::lock_guard<std::mutex> lock(mutex_);
        Conn& conn = conns_[id];
        while (!conn.write_buf.empty()) {
          const ssize_t n = ::write(fds[i].fd, conn.write_buf.data(),
                                    conn.write_buf.size());
          if (n > 0) {
            conn.write_buf.erase(
                conn.write_buf.begin(),
                conn.write_buf.begin() + static_cast<std::ptrdiff_t>(n));
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              dead = true;
            }
            break;
          }
        }
        if (conn.close_when_flushed && conn.write_buf.empty()) {
          dead = true;
        }
      }
      if (dead) {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = conns_.find(id);
        if (it != conns_.end()) {
          const bool server_initiated = it->second.close_when_flushed;
          ::close(it->second.fd);
          conns_.erase(it);
          if (!server_initiated) {
            events_.push_back(Event{EventKind::kDisconnect, id, {}});
          }
        }
      }
    }
  }
}

}  // namespace agilla::svc

#include "svc/transport.h"

namespace agilla::svc {

Transport::~Transport() = default;

// ------------------------------------------------------------- loopback

LoopbackTransport::Client LoopbackTransport::connect() {
  const ConnId id = next_id_++;
  endpoints_.emplace(id, Endpoint{});
  pending_.push_back(Event{EventKind::kConnect, id, {}});
  return Client(this, id);
}

void LoopbackTransport::poll(const TransportCallbacks& callbacks) {
  // Swap first: a callback may enqueue new client traffic (e.g. a test
  // reacting synchronously), which then waits for the next poll — the
  // same one-batch-per-poll shape the TCP transport has.
  std::deque<Event> batch;
  batch.swap(pending_);
  for (Event& event : batch) {
    switch (event.kind) {
      case EventKind::kConnect:
        if (callbacks.on_connect) {
          callbacks.on_connect(event.conn);
        }
        break;
      case EventKind::kData:
        if (callbacks.on_data) {
          callbacks.on_data(event.conn, event.bytes.data(),
                            event.bytes.size());
        }
        break;
      case EventKind::kDisconnect:
        if (callbacks.on_disconnect) {
          callbacks.on_disconnect(event.conn);
        }
        break;
    }
  }
}

void LoopbackTransport::send(ConnId conn, const std::uint8_t* data,
                             std::size_t size) {
  const auto it = endpoints_.find(conn);
  if (it == endpoints_.end() || !it->second.open) {
    return;
  }
  it->second.to_client.insert(it->second.to_client.end(), data,
                              data + size);
}

void LoopbackTransport::close(ConnId conn) {
  const auto it = endpoints_.find(conn);
  if (it != endpoints_.end()) {
    it->second.open = false;
  }
}

void LoopbackTransport::Client::send(
    const std::vector<std::uint8_t>& bytes) {
  if (transport_ == nullptr || closed()) {
    return;
  }
  transport_->pending_.push_back(
      Event{EventKind::kData, id_, bytes});
}

std::vector<std::uint8_t> LoopbackTransport::Client::drain() {
  if (transport_ == nullptr) {
    return {};
  }
  const auto it = transport_->endpoints_.find(id_);
  if (it == transport_->endpoints_.end()) {
    return {};
  }
  return std::move(it->second.to_client);
}

void LoopbackTransport::Client::disconnect() {
  if (transport_ == nullptr || closed()) {
    return;
  }
  transport_->endpoints_[id_].open = false;
  transport_->pending_.push_back(Event{EventKind::kDisconnect, id_, {}});
}

bool LoopbackTransport::Client::closed() const {
  if (transport_ == nullptr) {
    return true;
  }
  const auto it = transport_->endpoints_.find(id_);
  return it == transport_->endpoints_.end() || !it->second.open;
}

}  // namespace agilla::svc

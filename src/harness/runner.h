// The deterministic multi-trial experiment runner.
//
// run_experiment() expands the spec's parameter grid into independent
// trials, executes them on a pool of worker threads (one Mesh-style
// simulation per trial, each seeded from derive_trial_seed), and folds
// the per-trial metrics into per-cell aggregates IN TRIAL ORDER — so the
// result, and its JSON rendering, is a pure function of the spec:
// byte-identical for 1 worker or 64.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "sim/stats.h"

namespace agilla::harness {

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// Aggregate of one metric across a cell's trials (only the trials that
/// emitted it — e.g. latency of successful migrations).
struct MetricAggregate {
  sim::Summary summary;
};

struct CellResult {
  CellSpec cell;
  int trials = 0;
  /// Ordered by metric name (std::map) => deterministic JSON.
  std::map<std::string, MetricAggregate> metrics;
};

struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<CellResult> cells;
};

/// Runs every trial of `spec` with the registered scenario. Throws
/// std::invalid_argument when spec.scenario is unknown.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentSpec& spec, const RunnerOptions& options = {});

/// Deterministic JSON rendering (no wall-clock or thread-count fields).
[[nodiscard]] std::string to_json(const ExperimentResult& result);

}  // namespace agilla::harness

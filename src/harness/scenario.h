// Scenario registry: the unit of work the harness runs.
//
// A scenario maps one TrialSpec (grid, loss, store backend, seed, knobs)
// to a flat set of named metrics. Scenarios must be pure functions of the
// TrialSpec — no global state, no wall clock, no shared RNG — which is
// what lets the runner execute trials on any number of threads and still
// produce bit-identical aggregates.
//
// Built-ins:
//   fire_tracking    paper Sec. 5 case study (detectors + tracker swarm)
//   intruder_pursuit paper Sec. 1 scenario (sentinels + pursuer)
//   smove            Fig. 8 strong-move round trip  (params: hops)
//   rout             Fig. 8 remote out              (params: hops)
//   store_ops        Sec. 3.2 store ablation micro  (params: fillers)
//   network_lifetime fire tracking on battery power (params: battery_mj,
//                    duty_cycle, route_policy, adaptive_lpl, ...): node
//                    deaths, lifetime percentiles, time-to-first-partition
//   churn_pursuit    intruder pursuit under Poisson crash/reboot churn
//                    (params: churn_rate, churn_reboot_s, ...), incl. the
//                    <"ctx"> re-flood recovery of rebooted nodes
//   report_collection periodic converge-cast to the gateway (params:
//                    report_s, ...): delivery, corridor drain, partition
//
// Every mesh-backed scenario additionally understands the energy-aware
// networking knobs (route_policy, energy_weight, adaptive_lpl, duty_min,
// duty_max, beacon_suppression) — see docs/MANUAL.md for units, defaults,
// and valid ranges (kept in sync by the CI docs-consistency gate).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.h"

namespace agilla::harness {

/// Metrics from one trial. std::map keeps key order deterministic in the
/// JSON output. A metric a trial does not emit (e.g. latency of a failed
/// migration) is simply absent and excluded from that cell's aggregate.
struct TrialMetrics {
  std::map<std::string, double> values;

  void set(const std::string& name, double value) { values[name] = value; }
};

using ScenarioFn = std::function<TrialMetrics(const TrialSpec&)>;

struct ScenarioInfo {
  std::string name;
  std::string description;
  ScenarioFn run;
  /// Knob names this scenario understands (axis/param validation in the
  /// CLI). Empty = accept anything (externally registered scenarios).
  std::vector<std::string> knobs;
};

/// All registered scenarios, built-ins first, in registration order.
[[nodiscard]] const std::vector<ScenarioInfo>& scenarios();

/// nullptr when unknown.
[[nodiscard]] const ScenarioInfo* find_scenario(std::string_view name);

/// Registers an additional scenario (tests and future workloads). Returns
/// false (and does nothing) if the name is taken.
bool register_scenario(ScenarioInfo info);

}  // namespace agilla::harness

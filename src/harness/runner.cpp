#include "harness/runner.h"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "harness/json_writer.h"

namespace agilla::harness {

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunnerOptions& options) {
  const ScenarioInfo* scenario = find_scenario(spec.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario: " + spec.scenario);
  }

  const std::vector<CellSpec> cells = expand_cells(spec);
  const std::vector<TrialSpec> trials = expand_trials(spec);
  std::vector<TrialMetrics> outcomes(trials.size());

  unsigned threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(
      threads, std::max<std::size_t>(trials.size(), 1));

  // Work-stealing by atomic index: WHICH thread runs a trial varies, but
  // each trial is self-contained (own Simulator, own derived seed) and
  // lands in outcomes[i], so the fold below never sees scheduling order.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) {
        return;
      }
      outcomes[i] = scenario->run(trials[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    pool.emplace_back(worker);
  }
  worker();
  for (std::thread& t : pool) {
    t.join();
  }

  ExperimentResult result;
  result.spec = spec;
  result.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellResult cell_result;
    cell_result.cell = cells[c];
    result.cells.push_back(std::move(cell_result));
  }
  for (std::size_t i = 0; i < trials.size(); ++i) {
    CellResult& cell = result.cells[trials[i].cell];
    ++cell.trials;
    for (const auto& [name, value] : outcomes[i].values) {
      cell.metrics[name].summary.add(value);
    }
  }
  return result;
}

std::string to_json(const ExperimentResult& result) {
  const ExperimentSpec& spec = result.spec;
  JsonWriter json;
  json.begin_object();
  json.key("experiment").value(spec.name);
  json.key("scenario").value(spec.scenario);
  json.key("base_seed").value(static_cast<std::uint64_t>(spec.base_seed));
  json.key("trials_per_cell").value(spec.trials);
  json.key("duration_s")
      .value(static_cast<double>(spec.duration) / 1e6);
  if (!spec.params.empty()) {
    json.key("params").begin_object();
    for (const auto& [name, value] : spec.params) {
      json.key(name).value(value);
    }
    json.end_object();
  }
  json.key("cells").begin_array();
  for (const CellResult& cell : result.cells) {
    json.begin_object();
    char grid[32];
    std::snprintf(grid, sizeof(grid), "%zux%zu", cell.cell.grid.width,
                  cell.cell.grid.height);
    json.key("grid").value(grid);
    json.key("packet_loss").value(cell.cell.packet_loss);
    json.key("store").value(ts::to_string(cell.cell.store));
    if (!cell.cell.axis_values.empty()) {
      json.key("axes").begin_object();
      for (const auto& [name, value] : cell.cell.axis_values) {
        json.key(name).value(value);
      }
      json.end_object();
    }
    json.key("trials").value(cell.trials);
    json.key("metrics").begin_object();
    for (const auto& [name, aggregate] : cell.metrics) {
      const sim::Summary& s = aggregate.summary;
      json.key(name).begin_object();
      json.key("count").value(static_cast<std::uint64_t>(s.count()));
      json.key("mean").value(s.mean());
      json.key("stddev").value(s.stddev());
      json.key("min").value(s.min());
      json.key("max").value(s.max());
      json.key("p50").value(s.percentile(50.0));
      json.key("p90").value(s.percentile(90.0));
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace agilla::harness

#include "harness/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/agent_library.h"
#include "core/assembler.h"
#include "core/isa.h"
#include "core/vm_costs.h"
#include "harness/mesh.h"
#include "sim/environment.h"
#include "sim/stats.h"

namespace agilla::harness {
namespace {

ts::Template marker_template(const char* tag) {
  return ts::Template{ts::Value::string(tag),
                      ts::Value::type_wildcard(ts::ValueType::kLocation)};
}

void record_network_stats(const Mesh& mesh, const sim::Network& network,
                          TrialMetrics& metrics) {
  (void)mesh;
  const sim::NetworkStats& stats = network.stats();
  metrics.set("frames_sent", static_cast<double>(stats.frames_sent));
  metrics.set("frames_lost", static_cast<double>(stats.frames_lost));
  const double attempts = static_cast<double>(stats.frames_delivered +
                                              stats.frames_lost);
  if (attempts > 0) {
    metrics.set("delivery_rate",
                static_cast<double>(stats.frames_delivered) / attempts);
  }
}

// ----------------------------------------------------------- fire_tracking

/// Paper Sec. 5 end to end, on an arbitrary WxH mesh: FIREDETECTOR agents
/// flood the grid, a fire ignites at the far corner and spreads, the
/// FIRETRACKER swarm marks the perimeter. Success = the first <"trk", loc>
/// perimeter mark appears before the trial ends.
TrialMetrics run_fire_tracking(const TrialSpec& trial) {
  Mesh mesh(trial);
  const double w = static_cast<double>(trial.grid.width);
  const double h = static_cast<double>(trial.grid.height);
  const double duration_s =
      static_cast<double>(trial.duration) / 1e6;

  // Ignite at the far corner 15 s after injection; scale the spread speed
  // so the front crosses ~80 % of the diagonal within the trial whatever
  // the grid size (overridable via the "spread_speed" knob).
  const sim::SimTime inject_time = mesh.simulator().now();
  const sim::SimTime ignition =
      inject_time + 15 * sim::kSecond;
  const double diagonal = std::hypot(w - 1.0, h - 1.0);
  const double default_speed =
      0.8 * std::max(diagonal, 1.0) / std::max(duration_s - 15.0, 10.0);
  const sim::FireField::Options fire_options{
      .ignition_point = {w, h},
      .ignition_time = ignition,
      .extinction_time = 0,
      .spread_speed = trial.param("spread_speed", default_speed),
      .peak = 500.0,
      .ambient = 25.0,
      .edge_decay = 0.45,
      .ring_width = 1.6,
      .burned_over = 40.0};
  mesh.environment().set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(fire_options));
  const sim::FireField fire(fire_options);  // ground truth for metrics

  const int threshold =
      static_cast<int>(trial.param("alert_threshold", 180));
  core::BaseStation base = mesh.base();
  base.inject(core::agents::fire_tracker(threshold, /*nap_ticks=*/16));
  base.inject(core::agents::fire_detector(/*alert_to=*/{1, 1},
                                          /*threshold=*/200,
                                          /*sample_ticks=*/32));

  const ts::Template trk = marker_template("trk");
  const ts::Template det = marker_template("det");
  const sim::SimTime deadline = inject_time + trial.duration;
  std::optional<sim::SimTime> first_track;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(5 * sim::kSecond);
    if (!first_track && mesh.tuples_matching(trk) > 0) {
      first_track = mesh.simulator().now();
    }
  }

  TrialMetrics metrics;
  metrics.set("success", first_track ? 1.0 : 0.0);
  if (first_track) {
    metrics.set("first_track_s",
                static_cast<double>(*first_track - ignition) / 1e6);
  }
  metrics.set("detector_coverage",
              static_cast<double>(mesh.motes_matching(det)) /
                  static_cast<double>(mesh.mote_count()));
  metrics.set("perimeter_marks",
              static_cast<double>(mesh.tuples_matching(trk)));
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));

  // Of the nodes burning at the end, how many have a tracker mark?
  const sim::SimTime end = mesh.simulator().now();
  std::size_t burning = 0;
  std::size_t burning_tracked = 0;
  for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
    core::AgillaMiddleware& mote = mesh.mote(i);
    if (fire.value(mote.location(), end) > 200.0) {
      ++burning;
      if (mote.tuple_space().rdp(trk).has_value()) {
        ++burning_tracked;
      }
    }
  }
  if (burning > 0) {
    metrics.set("burning_tracked_frac",
                static_cast<double>(burning_tracked) /
                    static_cast<double>(burning));
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// -------------------------------------------------------- intruder_pursuit

/// Paper Sec. 1 tracking claim: SENTINELs publish magnetometer readings,
/// one PURSUER chases the loudest signal. The intruder patrols the mesh
/// perimeter; metrics score how closely the pursuer shadows it.
TrialMetrics run_intruder_pursuit(const TrialSpec& trial) {
  Mesh mesh(trial);
  const double w = static_cast<double>(trial.grid.width);
  const double h = static_cast<double>(trial.grid.height);

  const sim::MovingBumpField::Options intruder_options{
      .waypoints = {{1, 1}, {w, 1}, {w, h}, {1, h}},
      .speed = trial.param("intruder_speed", 0.05),
      .peak = 400.0,
      .sigma = 1.0,
      .ambient = 5.0,
      .loop = true};
  mesh.environment().set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(intruder_options));
  const sim::MovingBumpField intruder(intruder_options);

  core::BaseStation base = mesh.base();
  base.inject(core::agents::sentinel(/*sample_ticks=*/8));
  mesh.simulator().run_for(30 * sim::kSecond);  // sentinels claim the grid
  base.inject(core::agents::pursuer(/*nap_ticks=*/8));

  // The pursuer is wherever two agents share a node (sentinel + pursuer).
  const auto pursuer_location =
      [&mesh]() -> std::optional<sim::Location> {
    for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
      if (mesh.mote(i).agents().count() >= 2) {
        return mesh.mote(i).location();
      }
    }
    return std::nullopt;
  };

  const sim::SimTime deadline = mesh.simulator().now() + trial.duration;
  sim::Summary distance_track;
  std::size_t captures = 0;
  std::size_t samples = 0;
  std::optional<sim::Location> last_seen;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(10 * sim::kSecond);
    const std::optional<sim::Location> at = pursuer_location();
    if (!at) {
      continue;
    }
    last_seen = at;
    const double d =
        distance(intruder.center(mesh.simulator().now()), *at);
    distance_track.add(d);
    ++samples;
    if (d <= 1.0) {
      ++captures;
    }
  }

  TrialMetrics metrics;
  metrics.set("success", last_seen.has_value() ? 1.0 : 0.0);
  if (!distance_track.empty()) {
    metrics.set("mean_distance", distance_track.mean());
    metrics.set("min_distance", distance_track.min());
    metrics.set("capture_frac",
                static_cast<double>(captures) /
                    static_cast<double>(samples));
  }
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// ------------------------------------------------------------ smove / rout

/// The longest hop count the grid can realize along the bottom-row-then-
/// right-edge path the Fig. 8 experiments use.
int max_hops(const GridSize& grid) {
  return static_cast<int>(grid.width) - 1 +
         static_cast<int>(grid.height) - 1;
}

/// Destination exactly `hops` grid hops from the corner (1,1): along the
/// bottom row, then up the right edge (generalizes the Fig. 8 5x5 paths).
/// `hops` must already be clamped to max_hops(grid).
sim::Location hop_target(int hops, const GridSize& grid) {
  const int width_hops = static_cast<int>(grid.width) - 1;
  if (hops <= width_hops) {
    return sim::Location{1.0 + hops, 1.0};
  }
  return sim::Location{static_cast<double>(grid.width),
                       1.0 + (hops - width_hops)};
}

int default_hops(const GridSize& grid) {
  return std::min<int>(4, static_cast<int>(grid.width) - 1);
}

/// Fig. 8 (top): strong-move `hops` out and back. One trial = one fresh
/// mesh + one agent; success when the round trip completes. Latency is
/// halved for the double migration (paper Sec. 4).
TrialMetrics run_smove(const TrialSpec& trial) {
  Mesh mesh(trial);
  // Clamp unrealizable hop counts and report the realized value, so a
  // cell whose axis asks for more hops than the grid has is
  // self-describing in the JSON rather than silently mislabeled.
  const int hops = std::min(
      static_cast<int>(trial.param("hops", default_hops(trial.grid))),
      max_hops(trial.grid));
  const sim::Location target = hop_target(hops, trial.grid);
  char source[256];
  std::snprintf(source, sizeof(source),
                "pushloc %g %g\n"
                "smove\n"
                "rjumpc OK1\nhalt\n"
                "OK1 pushloc 1 1\n"
                "smove\n"
                "rjumpc OK2\nhalt\n"
                "OK2 pushc 7\npushc 1\nout\nhalt\n",
                target.x, target.y);
  const sim::SimTime start = mesh.simulator().now();
  mesh.mote(0).inject(core::assemble_or_die(source));
  const sim::SimTime timeout = static_cast<sim::SimTime>(
      trial.param("timeout_s", 15.0) * 1e6);
  const auto done = mesh.await_tuple(
      mesh.mote(0), ts::Template{ts::Value::number(7)}, timeout);

  TrialMetrics metrics;
  metrics.set("hops_realized", hops);
  metrics.set("success", done ? 1.0 : 0.0);
  if (done) {
    metrics.set("latency_ms",
                static_cast<double>(*done - start) / 1000.0 / 2.0);
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

/// Fig. 8 (bottom): rout a tuple onto the node `hops` away; success when
/// the acknowledged remote op completes.
TrialMetrics run_rout(const TrialSpec& trial) {
  Mesh mesh(trial);
  const int hops = std::min(
      static_cast<int>(trial.param("hops", default_hops(trial.grid))),
      max_hops(trial.grid));
  const sim::Location target = hop_target(hops, trial.grid);
  char source[256];
  std::snprintf(source, sizeof(source),
                "pushc 7\npushc 1\n"
                "pushloc %g %g\n"
                "rout\n"
                "rjumpc OK\nhalt\n"
                "OK pushn ack\npushc 7\npushc 2\nout\nhalt\n",
                target.x, target.y);
  const sim::SimTime start = mesh.simulator().now();
  mesh.mote(0).inject(core::assemble_or_die(source));
  const sim::SimTime timeout = static_cast<sim::SimTime>(
      trial.param("timeout_s", 10.0) * 1e6);
  const auto done = mesh.await_tuple(
      mesh.mote(0),
      ts::Template{ts::Value::string("ack"), ts::Value::number(7)}, timeout);

  TrialMetrics metrics;
  metrics.set("hops_realized", hops);
  metrics.set("success", done ? 1.0 : 0.0);
  if (done) {
    metrics.set("latency_ms", static_cast<double>(*done - start) / 1000.0);
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// --------------------------------------------------------------- store_ops

/// Sec. 3.2 ablation micro-benchmark, no radio: probe and removal cost of
/// the selected store backend with `fillers` tuples in front of the
/// target, in the simulated microseconds the VM cost model charges.
TrialMetrics run_store_ops(const TrialSpec& trial) {
  const int fillers = static_cast<int>(trial.param("fillers", 20));
  const core::VmCostModel costs;
  const auto fill = [](ts::TupleStore& store, int n) {
    for (std::int16_t i = 0; i < n; ++i) {
      if (i % 2 == 0) {
        store.insert(
            ts::Tuple{ts::Value::string("fil"), ts::Value::number(i)});
      } else {
        store.insert(ts::Tuple{ts::Value::number(i)});
      }
    }
  };

  TrialMetrics metrics;
  {
    // Probe: the target sits behind every filler (worst case for the
    // linear scan; the arity index skips the odd arity-1 fillers).
    std::unique_ptr<ts::TupleStore> store = ts::make_store(trial.store, 600);
    fill(*store, fillers);
    store->insert(
        ts::Tuple{ts::Value::string("key"), ts::Value::number(1)});
    const ts::CompiledTemplate target(
        ts::Template{ts::Value::string("key"),
                     ts::Value::type_wildcard(ts::ValueType::kNumber)});
    store->read(target);
    metrics.set("rdp_bytes",
                static_cast<double>(store->last_op_bytes_touched()));
    metrics.set("rdp_cost_us",
                static_cast<double>(costs.instruction_cost(
                    static_cast<std::uint8_t>(core::Opcode::kRdp),
                    store->last_op_bytes_touched(), false)));
  }
  if (fillers > 0) {
    // Removal: the linear store shifts every byte behind the removed
    // tuple; the indexed store tombstones. With nothing stored there is
    // nothing to remove — the inp metrics are simply absent from the
    // fillers=0 cell rather than measured against a fabricated store.
    std::unique_ptr<ts::TupleStore> store = ts::make_store(trial.store, 600);
    fill(*store, fillers);
    const ts::CompiledTemplate first(
        ts::Template{ts::Value::string("fil"), ts::Value::number(0)});
    store->take(first);
    metrics.set("inp_bytes",
                static_cast<double>(store->last_op_bytes_touched()));
    metrics.set("inp_cost_us",
                static_cast<double>(costs.instruction_cost(
                    static_cast<std::uint8_t>(core::Opcode::kInp),
                    store->last_op_bytes_touched(), false)));
  }
  metrics.set("success", 1.0);
  return metrics;
}

std::vector<ScenarioInfo>& registry() {
  static std::vector<ScenarioInfo> scenarios = {
      {"fire_tracking",
       "Sec. 5 case study: detector flood + tracker swarm on a burning "
       "mesh",
       run_fire_tracking},
      {"intruder_pursuit",
       "Sec. 1 scenario: sentinels publish readings, a pursuer shadows "
       "the intruder",
       run_intruder_pursuit},
      {"smove",
       "Fig. 8 strong-move round trip (axis: hops)",
       run_smove},
      {"rout",
       "Fig. 8 remote out with acknowledgement (axis: hops)",
       run_rout},
      {"store_ops",
       "Sec. 3.2 ablation: tuple-store probe/remove cost (axis: fillers)",
       run_store_ops},
  };
  return scenarios;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() { return registry(); }

const ScenarioInfo* find_scenario(std::string_view name) {
  for (const ScenarioInfo& info : registry()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

bool register_scenario(ScenarioInfo info) {
  if (find_scenario(info.name) != nullptr) {
    return false;
  }
  registry().push_back(std::move(info));
  return true;
}

}  // namespace agilla::harness

#include "harness/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <utility>

#include "api/knob_registry.h"
#include "core/agent_library.h"
#include "core/assembler.h"
#include "core/isa.h"
#include "core/vm_costs.h"
#include "energy/battery.h"
#include "harness/mesh.h"
#include "sim/environment.h"
#include "sim/stats.h"

namespace agilla::harness {
namespace {

ts::Template marker_template(const char* tag) {
  return ts::Template{ts::Value::string(tag),
                      ts::Value::type_wildcard(ts::ValueType::kLocation)};
}

void record_network_stats(const Mesh& mesh, const sim::Network& network,
                          TrialMetrics& metrics) {
  (void)mesh;
  const sim::NetworkStats& stats = network.stats();
  metrics.set("frames_sent", static_cast<double>(stats.frames_sent));
  metrics.set("frames_lost", static_cast<double>(stats.frames_lost));
  const auto beacons = stats.sent_by_type.find(sim::AmType::kBeacon);
  metrics.set("beacons_sent",
              beacons == stats.sent_by_type.end()
                  ? 0.0
                  : static_cast<double>(beacons->second));
  const double attempts = static_cast<double>(stats.frames_delivered +
                                              stats.frames_lost);
  if (attempts > 0) {
    metrics.set("delivery_rate",
                static_cast<double>(stats.frames_delivered) / attempts);
  }
}

/// Network-wide per-component energy draw, when batteries are attached.
void record_energy_stats(Mesh& mesh, TrialMetrics& metrics) {
  if (mesh.network().energy_options() == nullptr) {
    return;
  }
  double total = 0.0;
  for (const auto [component, key] :
       {std::pair{energy::EnergyComponent::kRadioTx, "e_tx_mj"},
        std::pair{energy::EnergyComponent::kRadioRx, "e_rx_mj"},
        std::pair{energy::EnergyComponent::kRadioIdle, "e_idle_mj"},
        std::pair{energy::EnergyComponent::kCpu, "e_cpu_mj"},
        std::pair{energy::EnergyComponent::kSense, "e_sense_mj"}}) {
    const double mj = mesh.total_drained_mj(component);
    metrics.set(key, mj);
    total += mj;
  }
  metrics.set("e_total_mj", total);
}

/// True when the alive battery-powered motes no longer form a single
/// connected component over the ground-truth radio graph — the multi-hop
/// mesh (agent migration, remote ops, swarming are all node-to-node) has
/// torn. The mains-powered gateway is infrastructure: it never depletes,
/// so counting it would reduce every converge-cast run to "when did the
/// gateway's own neighbours die" and hide what routing policy does to
/// the corridor between the regions. (With gateway_powered=false there
/// is no mains node and every mote participates.)
bool mesh_partitioned(Mesh& mesh) {
  const sim::Network& network = mesh.network();
  const bool skip_gateway = network.energy_options() != nullptr &&
                            network.energy_options()->gateway_powered;
  std::vector<char> seen(network.node_count(), 0);
  std::vector<sim::NodeId> stack;
  std::size_t population = 0;
  for (const sim::NodeId id : mesh.topology().nodes) {
    if (!network.alive(id) || (skip_gateway && id.value == 0)) {
      continue;
    }
    ++population;
    if (stack.empty()) {
      stack.push_back(id);  // BFS seed: first alive battery mote
      seen[id.value] = 1;
    }
  }
  if (population <= 1) {
    return false;  // nothing left to partition
  }
  std::size_t reached = 1;
  while (!stack.empty()) {
    const sim::NodeId at = stack.back();
    stack.pop_back();
    for (const sim::NodeId next : network.connected_neighbors(at)) {
      if (!network.alive(next) || seen[next.value] != 0 ||
          (skip_gateway && next.value == 0)) {
        continue;
      }
      seen[next.value] = 1;
      ++reached;
      stack.push_back(next);
    }
  }
  return reached < population;
}

/// Residual-energy spread across surviving batteries: how evenly the
/// routing policy drained the mesh (max-min should lift the minimum).
void record_residual_stats(Mesh& mesh, TrialMetrics& metrics) {
  mesh.network().settle_batteries();
  sim::Summary residuals;
  for (const sim::NodeId id : mesh.topology().nodes) {
    if (const energy::Battery* battery = mesh.network().battery(id)) {
      residuals.add(battery->remaining_mj() / battery->capacity_mj());
    }
  }
  if (!residuals.empty()) {
    metrics.set("residual_min_frac", residuals.min());
    metrics.set("residual_mean_frac", residuals.mean());
  }
}

// ----------------------------------------------------------- fire_tracking

/// The Sec. 5 burning world: ignite at the far corner 15 s after
/// `inject_time`, spread speed scaled so the front crosses ~80 % of the
/// diagonal within the trial whatever the grid size (overridable via the
/// "spread_speed" knob). Shared by fire_tracking and network_lifetime.
sim::FireField::Options fire_options_for(const TrialSpec& trial,
                                         sim::SimTime inject_time) {
  const double w = static_cast<double>(trial.grid.width);
  const double h = static_cast<double>(trial.grid.height);
  const double duration_s = static_cast<double>(trial.duration) / 1e6;
  const double diagonal = std::hypot(w - 1.0, h - 1.0);
  const double default_speed =
      0.8 * std::max(diagonal, 1.0) / std::max(duration_s - 15.0, 10.0);
  return sim::FireField::Options{
      .ignition_point = {w, h},
      .ignition_time = inject_time + 15 * sim::kSecond,
      .extinction_time = 0,
      .spread_speed = trial.param("spread_speed", default_speed),
      .peak = 500.0,
      .ambient = 25.0,
      .edge_decay = 0.45,
      .ring_width = 1.6,
      .burned_over = 40.0};
}

/// Paper Sec. 5 end to end, on an arbitrary WxH mesh: FIREDETECTOR agents
/// flood the grid, a fire ignites at the far corner and spreads, the
/// FIRETRACKER swarm marks the perimeter. Success = the first <"trk", loc>
/// perimeter mark appears before the trial ends.
TrialMetrics run_fire_tracking(const TrialSpec& trial) {
  Mesh mesh(trial);
  const sim::SimTime inject_time = mesh.simulator().now();
  const sim::FireField::Options fire_options =
      fire_options_for(trial, inject_time);
  const sim::SimTime ignition = fire_options.ignition_time;
  mesh.environment().set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(fire_options));
  const sim::FireField fire(fire_options);  // ground truth for metrics

  const int threshold =
      static_cast<int>(trial.param("alert_threshold", 180));
  core::BaseStation base = mesh.base();
  base.inject(core::agents::fire_tracker(threshold, /*nap_ticks=*/16));
  base.inject(core::agents::fire_detector(/*alert_to=*/{1, 1},
                                          /*threshold=*/200,
                                          /*sample_ticks=*/32));

  const ts::Template trk = marker_template("trk");
  const ts::Template det = marker_template("det");
  const sim::SimTime deadline = inject_time + trial.duration;
  std::optional<sim::SimTime> first_track;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(5 * sim::kSecond);
    if (!first_track && mesh.tuples_matching(trk) > 0) {
      first_track = mesh.simulator().now();
    }
  }

  TrialMetrics metrics;
  metrics.set("success", first_track ? 1.0 : 0.0);
  if (first_track) {
    metrics.set("first_track_s",
                static_cast<double>(*first_track - ignition) / 1e6);
  }
  metrics.set("detector_coverage",
              static_cast<double>(mesh.motes_matching(det)) /
                  static_cast<double>(mesh.mote_count()));
  metrics.set("perimeter_marks",
              static_cast<double>(mesh.tuples_matching(trk)));
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));

  // Of the nodes burning at the end, how many have a tracker mark?
  const sim::SimTime end = mesh.simulator().now();
  std::size_t burning = 0;
  std::size_t burning_tracked = 0;
  for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
    core::AgillaMiddleware& mote = mesh.mote(i);
    if (fire.value(mote.location(), end) > 200.0) {
      ++burning;
      if (mote.tuple_space().rdp(trk).has_value()) {
        ++burning_tracked;
      }
    }
  }
  if (burning > 0) {
    metrics.set("burning_tracked_frac",
                static_cast<double>(burning_tracked) /
                    static_cast<double>(burning));
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// -------------------------------------------------------- intruder_pursuit

/// The Sec. 1 intruder: a moving magnetometer bump patrolling the mesh
/// perimeter. Shared by intruder_pursuit and churn_pursuit.
sim::MovingBumpField::Options intruder_options_for(const TrialSpec& trial) {
  const double w = static_cast<double>(trial.grid.width);
  const double h = static_cast<double>(trial.grid.height);
  return sim::MovingBumpField::Options{
      .waypoints = {{1, 1}, {w, 1}, {w, h}, {1, h}},
      .speed = trial.param("intruder_speed", 0.05),
      .peak = 400.0,
      .sigma = 1.0,
      .ambient = 5.0,
      .loop = true};
}

/// The pursuer is wherever two agents share a node (sentinel + pursuer).
std::optional<sim::Location> pursuer_location(Mesh& mesh) {
  for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
    if (mesh.mote(i).agents().count() >= 2) {
      return mesh.mote(i).location();
    }
  }
  return std::nullopt;
}

/// Injects the sentinel flood, lets it claim the grid, then releases the
/// pursuer (the shared opening of both pursuit scenarios).
void deploy_pursuit_agents(Mesh& mesh) {
  core::BaseStation base = mesh.base();
  base.inject(core::agents::sentinel(/*sample_ticks=*/8));
  mesh.simulator().run_for(30 * sim::kSecond);  // sentinels claim the grid
  base.inject(core::agents::pursuer(/*nap_ticks=*/8));
}

/// Paper Sec. 1 tracking claim: SENTINELs publish magnetometer readings,
/// one PURSUER chases the loudest signal. The intruder patrols the mesh
/// perimeter; metrics score how closely the pursuer shadows it.
TrialMetrics run_intruder_pursuit(const TrialSpec& trial) {
  Mesh mesh(trial);
  const sim::MovingBumpField::Options intruder_options =
      intruder_options_for(trial);
  mesh.environment().set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(intruder_options));
  const sim::MovingBumpField intruder(intruder_options);
  deploy_pursuit_agents(mesh);

  const sim::SimTime deadline = mesh.simulator().now() + trial.duration;
  sim::Summary distance_track;
  std::size_t captures = 0;
  std::size_t samples = 0;
  std::optional<sim::Location> last_seen;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(10 * sim::kSecond);
    const std::optional<sim::Location> at = pursuer_location(mesh);
    if (!at) {
      continue;
    }
    last_seen = at;
    const double d =
        distance(intruder.center(mesh.simulator().now()), *at);
    distance_track.add(d);
    ++samples;
    if (d <= 1.0) {
      ++captures;
    }
  }

  TrialMetrics metrics;
  metrics.set("success", last_seen.has_value() ? 1.0 : 0.0);
  if (!distance_track.empty()) {
    metrics.set("mean_distance", distance_track.mean());
    metrics.set("min_distance", distance_track.min());
    metrics.set("capture_frac",
                static_cast<double>(captures) /
                    static_cast<double>(samples));
  }
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// ------------------------------------------------------------ smove / rout

/// The longest hop count the grid can realize along the bottom-row-then-
/// right-edge path the Fig. 8 experiments use.
int max_hops(const GridSize& grid) {
  return static_cast<int>(grid.width) - 1 +
         static_cast<int>(grid.height) - 1;
}

/// Destination exactly `hops` grid hops from the corner (1,1): along the
/// bottom row, then up the right edge (generalizes the Fig. 8 5x5 paths).
/// `hops` must already be clamped to max_hops(grid).
sim::Location hop_target(int hops, const GridSize& grid) {
  const int width_hops = static_cast<int>(grid.width) - 1;
  if (hops <= width_hops) {
    return sim::Location{1.0 + hops, 1.0};
  }
  return sim::Location{static_cast<double>(grid.width),
                       1.0 + (hops - width_hops)};
}

int default_hops(const GridSize& grid) {
  return std::min<int>(4, static_cast<int>(grid.width) - 1);
}

/// Fig. 8 (top): strong-move `hops` out and back. One trial = one fresh
/// mesh + one agent; success when the round trip completes. Latency is
/// halved for the double migration (paper Sec. 4).
TrialMetrics run_smove(const TrialSpec& trial) {
  Mesh mesh(trial);
  // Clamp unrealizable hop counts and report the realized value, so a
  // cell whose axis asks for more hops than the grid has is
  // self-describing in the JSON rather than silently mislabeled.
  const int hops = std::min(
      static_cast<int>(trial.param("hops", default_hops(trial.grid))),
      max_hops(trial.grid));
  const sim::Location target = hop_target(hops, trial.grid);
  char source[256];
  std::snprintf(source, sizeof(source),
                "pushloc %g %g\n"
                "smove\n"
                "rjumpc OK1\nhalt\n"
                "OK1 pushloc 1 1\n"
                "smove\n"
                "rjumpc OK2\nhalt\n"
                "OK2 pushc 7\npushc 1\nout\nhalt\n",
                target.x, target.y);
  const sim::SimTime start = mesh.simulator().now();
  mesh.mote(0).inject(core::assemble_or_die(source));
  const sim::SimTime timeout = static_cast<sim::SimTime>(
      trial.param("timeout_s", 15.0) * 1e6);
  const auto done = mesh.await_tuple(
      mesh.mote(0), ts::Template{ts::Value::number(7)}, timeout);

  TrialMetrics metrics;
  metrics.set("hops_realized", hops);
  metrics.set("success", done ? 1.0 : 0.0);
  if (done) {
    metrics.set("latency_ms",
                static_cast<double>(*done - start) / 1000.0 / 2.0);
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

/// Fig. 8 (bottom): rout a tuple onto the node `hops` away; success when
/// the acknowledged remote op completes.
TrialMetrics run_rout(const TrialSpec& trial) {
  Mesh mesh(trial);
  const int hops = std::min(
      static_cast<int>(trial.param("hops", default_hops(trial.grid))),
      max_hops(trial.grid));
  const sim::Location target = hop_target(hops, trial.grid);
  char source[256];
  std::snprintf(source, sizeof(source),
                "pushc 7\npushc 1\n"
                "pushloc %g %g\n"
                "rout\n"
                "rjumpc OK\nhalt\n"
                "OK pushn ack\npushc 7\npushc 2\nout\nhalt\n",
                target.x, target.y);
  const sim::SimTime start = mesh.simulator().now();
  mesh.mote(0).inject(core::assemble_or_die(source));
  const sim::SimTime timeout = static_cast<sim::SimTime>(
      trial.param("timeout_s", 10.0) * 1e6);
  const auto done = mesh.await_tuple(
      mesh.mote(0),
      ts::Template{ts::Value::string("ack"), ts::Value::number(7)}, timeout);

  TrialMetrics metrics;
  metrics.set("hops_realized", hops);
  metrics.set("success", done ? 1.0 : 0.0);
  if (done) {
    metrics.set("latency_ms", static_cast<double>(*done - start) / 1000.0);
  }
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// --------------------------------------------------------------- store_ops

/// Sec. 3.2 ablation micro-benchmark, no radio: probe and removal cost of
/// the selected store backend with `fillers` tuples in front of the
/// target, in the simulated microseconds the VM cost model charges.
TrialMetrics run_store_ops(const TrialSpec& trial) {
  const int fillers = static_cast<int>(trial.param("fillers", 20));
  const core::VmCostModel costs;
  const auto fill = [](ts::TupleStore& store, int n) {
    for (std::int16_t i = 0; i < n; ++i) {
      if (i % 2 == 0) {
        store.insert(
            ts::Tuple{ts::Value::string("fil"), ts::Value::number(i)});
      } else {
        store.insert(ts::Tuple{ts::Value::number(i)});
      }
    }
  };

  TrialMetrics metrics;
  {
    // Probe: the target sits behind every filler (worst case for the
    // linear scan; the arity index skips the odd arity-1 fillers).
    std::unique_ptr<ts::TupleStore> store = ts::make_store(trial.store, 600);
    fill(*store, fillers);
    store->insert(
        ts::Tuple{ts::Value::string("key"), ts::Value::number(1)});
    const ts::CompiledTemplate target(
        ts::Template{ts::Value::string("key"),
                     ts::Value::type_wildcard(ts::ValueType::kNumber)});
    store->read(target);
    metrics.set("rdp_bytes",
                static_cast<double>(store->last_op_bytes_touched()));
    metrics.set("rdp_cost_us",
                static_cast<double>(costs.instruction_cost(
                    static_cast<std::uint8_t>(core::Opcode::kRdp),
                    store->last_op_bytes_touched(), false)));
  }
  if (fillers > 0) {
    // Removal: the linear store shifts every byte behind the removed
    // tuple; the indexed store tombstones. With nothing stored there is
    // nothing to remove — the inp metrics are simply absent from the
    // fillers=0 cell rather than measured against a fabricated store.
    std::unique_ptr<ts::TupleStore> store = ts::make_store(trial.store, 600);
    fill(*store, fillers);
    const ts::CompiledTemplate first(
        ts::Template{ts::Value::string("fil"), ts::Value::number(0)});
    store->take(first);
    metrics.set("inp_bytes",
                static_cast<double>(store->last_op_bytes_touched()));
    metrics.set("inp_cost_us",
                static_cast<double>(costs.instruction_cost(
                    static_cast<std::uint8_t>(core::Opcode::kInp),
                    store->last_op_bytes_touched(), false)));
  }
  metrics.set("success", 1.0);
  return metrics;
}

// -------------------------------------------------------- network_lifetime

/// The fire-tracking workload on battery power: every mote (except the
/// mains-powered gateway) starts with `battery_mj` millijoules and pays
/// for listening, TX/RX, VM cycles, and sensing; nodes die as batteries
/// deplete. Reports when the network starts to die and how long it
/// stays useful, with per-trial lifetime percentiles over node deaths.
TrialMetrics run_network_lifetime(const TrialSpec& trial_in) {
  TrialSpec trial = trial_in;
  // Finite by default: at the CC1000's 28.8 mW listen draw, 2 J lasts
  // ~70 s always-on — deaths land inside the default 120 s trial, and
  // duty-cycled cells visibly outlive always-on ones.
  trial.params.try_emplace("battery_mj", 2000.0);
  Mesh mesh(trial);
  const std::size_t nodes = mesh.mote_count();

  const sim::SimTime inject_time = mesh.simulator().now();
  const sim::FireField::Options fire_options =
      fire_options_for(trial, inject_time);
  mesh.environment().set_field(
      sim::SensorType::kTemperature,
      std::make_unique<sim::FireField>(fire_options));

  const int threshold =
      static_cast<int>(trial.param("alert_threshold", 180));
  // Periodic sense-and-report: burning nodes re-alert every
  // `alert_repeat_s` (converge-cast toward the gateway corner — the
  // relay-corridor load the route_policy axis redistributes). 0 restores
  // the paper's alert-once detector.
  const double alert_repeat_s = trial.param("alert_repeat_s", 4.0);
  core::BaseStation base = mesh.base();
  base.inject(core::agents::fire_tracker(threshold, /*nap_ticks=*/16));
  base.inject(core::agents::fire_detector(
      /*alert_to=*/{1, 1},
      /*threshold=*/200,
      /*sample_ticks=*/32,
      /*alert_every_ticks=*/static_cast<int>(alert_repeat_s * 8.0)));

  const ts::Template trk = marker_template("trk");
  const sim::SimTime deadline = inject_time + trial.duration;
  std::optional<sim::SimTime> first_track;
  std::optional<sim::SimTime> first_partition;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(5 * sim::kSecond);
    if (!first_track && mesh.tuples_matching(trk) > 0) {
      first_track = mesh.simulator().now();
    }
    if (!first_partition && mesh_partitioned(mesh)) {
      first_partition = mesh.simulator().now();
    }
  }

  TrialMetrics metrics;
  metrics.set("success", first_track ? 1.0 : 0.0);
  if (first_track) {
    metrics.set("first_track_s",
                static_cast<double>(*first_track -
                                    fire_options.ignition_time) /
                    1e6);
  }
  // Time-to-first-partition (absent when the mesh stayed connected):
  // the headline metric for the route_policy ablation.
  if (first_partition) {
    metrics.set("first_partition_s",
                static_cast<double>(*first_partition - inject_time) / 1e6);
  }

  // Lifetime accounting: node lifetimes (virtual seconds from boot to
  // death) across this trial's deaths, in death order.
  sim::Summary lifetimes;
  for (const Mesh::DeathEvent& death : mesh.death_log()) {
    lifetimes.add(static_cast<double>(death.at) / 1e6);
  }
  metrics.set("deaths", static_cast<double>(lifetimes.count()));
  metrics.set("alive_frac",
              static_cast<double>(mesh.network().alive_count()) /
                  static_cast<double>(nodes));
  if (!lifetimes.empty()) {
    metrics.set("first_death_s", lifetimes.min());
    metrics.set("lifetime_p50_s", lifetimes.p50());
    metrics.set("lifetime_p95_s", lifetimes.p95());
    metrics.set("lifetime_p99_s", lifetimes.p99());
  }
  // Half-life: the instant the mesh dropped to half strength.
  if (lifetimes.count() >= nodes - nodes / 2) {
    metrics.set(
        "half_dead_s",
        static_cast<double>(
            mesh.death_log()[nodes - nodes / 2 - 1].at) /
            1e6);
  }
  metrics.set("perimeter_marks",
              static_cast<double>(mesh.tuples_matching(trk)));
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));
  record_residual_stats(mesh, metrics);
  record_energy_stats(mesh, metrics);
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// ------------------------------------------------------- report_collection

/// The canonical WSN data-collection workload, isolated from the fire
/// machinery: every battery mote runs a reporter agent that routs a
/// <"rpt", loc> tuple to the gateway every `report_s` seconds. The
/// converge-cast concentrates on the relay corridor toward the gateway
/// corner, which makes this the cleanest testbed for the route_policy /
/// adaptive_lpl / beacon_suppression axes: delivery measures whether the
/// mesh still works, partition and residual spread measure what the
/// policy did to the corridor.
TrialMetrics run_report_collection(const TrialSpec& trial) {
  Mesh mesh(trial);
  const double report_s = trial.param("report_s", 4.0);
  const int report_ticks =
      std::max(1, static_cast<int>(report_s * 8.0));
  char source[128];
  std::snprintf(source, sizeof(source),
                "LOOP pushn rpt\n"
                "loc\n"
                "pushc 2\n"
                "pushloc 1 1\n"
                "rout\n"
                "pushcl %d\n"
                "sleep\n"
                "jump LOOP\n",
                report_ticks);
  const std::vector<std::uint8_t> reporter = core::assemble_or_die(source);
  for (std::size_t i = 1; i < mesh.mote_count(); ++i) {
    mesh.mote(i).inject(reporter);
  }

  const ts::Template rpt = marker_template("rpt");
  const ts::CompiledTemplate rpt_compiled(rpt);
  const sim::SimTime start = mesh.simulator().now();
  const sim::SimTime deadline = start + trial.duration;
  double delivered = 0;
  std::optional<sim::SimTime> first_partition;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(5 * sim::kSecond);
    // Drain the gateway's store so the 600-byte cap never nacks reports.
    delivered += static_cast<double>(
        mesh.mote(0).tuple_space().tcount(rpt_compiled));
    mesh.mote(0).tuple_space().store().clear();
    if (!first_partition && mesh_partitioned(mesh)) {
      first_partition = mesh.simulator().now();
    }
  }

  TrialMetrics metrics;
  const double duration_s = static_cast<double>(trial.duration) / 1e6;
  const double reporters =
      static_cast<double>(mesh.mote_count() - 1);
  metrics.set("reports_delivered", delivered);
  metrics.set("report_rate_per_node_s",
              delivered / (reporters * duration_s));
  // Success: sustained collection — better than one report per node per
  // four nominal periods over the whole run, dead nodes included.
  metrics.set("success",
              delivered >= reporters * duration_s / report_s / 4.0 ? 1.0
                                                                   : 0.0);
  if (first_partition) {
    metrics.set("first_partition_s",
                static_cast<double>(*first_partition - start) / 1e6);
  }
  sim::Summary lifetimes;
  for (const Mesh::DeathEvent& death : mesh.death_log()) {
    lifetimes.add(static_cast<double>(death.at) / 1e6);
  }
  metrics.set("deaths", static_cast<double>(lifetimes.count()));
  if (!lifetimes.empty()) {
    metrics.set("first_death_s", lifetimes.min());
  }
  metrics.set("alive_frac",
              static_cast<double>(mesh.network().alive_count()) /
                  static_cast<double>(mesh.mote_count()));
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));
  record_residual_stats(mesh, metrics);
  record_energy_stats(mesh, metrics);
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// ----------------------------------------------------------- churn_pursuit

/// Intruder pursuit on an unreliable substrate: nodes crash as a Poisson
/// process (`churn_rate` per node per second) and reboot with empty RAM
/// after `churn_reboot_s`. Measures whether the pursuer survives relays
/// dying under it (custody resumes) and how much sentinel coverage the
/// mesh retains — the paper's self-healing claim under real churn.
TrialMetrics run_churn_pursuit(const TrialSpec& trial_in) {
  TrialSpec trial = trial_in;
  // ~0.004 crashes/node/s on a 5x5 mesh = one crash every ~10 s.
  trial.params.try_emplace("churn_rate", 0.004);
  trial.params.try_emplace("churn_reboot_s", 20.0);
  Mesh mesh(trial);
  const sim::MovingBumpField::Options intruder_options =
      intruder_options_for(trial);
  mesh.environment().set_field(
      sim::SensorType::kMagnetometer,
      std::make_unique<sim::MovingBumpField>(intruder_options));
  const sim::MovingBumpField intruder(intruder_options);
  deploy_pursuit_agents(mesh);

  const sim::SimTime pursuit_start = mesh.simulator().now();
  const sim::SimTime deadline = pursuit_start + trial.duration;
  sim::Summary distance_track;
  std::size_t captures = 0;
  std::size_t polls = 0;
  std::size_t sightings = 0;
  std::optional<sim::SimTime> last_seen_at;
  while (mesh.simulator().now() < deadline) {
    mesh.simulator().run_for(10 * sim::kSecond);
    ++polls;
    const std::optional<sim::Location> at = pursuer_location(mesh);
    if (!at) {
      continue;
    }
    ++sightings;
    last_seen_at = mesh.simulator().now();
    const double d =
        distance(intruder.center(mesh.simulator().now()), *at);
    distance_track.add(d);
    if (d <= 1.0) {
      ++captures;
    }
  }

  TrialMetrics metrics;
  // Survived: the pursuer was still observable in the trial's last
  // quarter despite the churn underneath it.
  const bool survived =
      last_seen_at.has_value() &&
      *last_seen_at >= deadline - trial.duration / 4;
  metrics.set("success", survived ? 1.0 : 0.0);
  if (polls > 0) {
    metrics.set("pursuer_seen_frac",
                static_cast<double>(sightings) /
                    static_cast<double>(polls));
  }
  if (!distance_track.empty()) {
    metrics.set("mean_distance", distance_track.mean());
    metrics.set("min_distance", distance_track.min());
    metrics.set("capture_frac",
                static_cast<double>(captures) /
                    static_cast<double>(distance_track.count()));
  }

  // Churn + failure-path accounting, summed across the mesh.
  double hop_failures = 0;
  double custody_resumes = 0;
  double migrations_failed = 0;
  double agents_power_lost = 0;
  std::size_t sentinels = 0;
  for (std::size_t i = 0; i < mesh.mote_count(); ++i) {
    core::AgillaMiddleware& mote = mesh.mote(i);
    hop_failures +=
        static_cast<double>(mote.migration().stats().hop_failures);
    custody_resumes +=
        static_cast<double>(mote.migration().stats().custody_resumes);
    migrations_failed +=
        static_cast<double>(mote.engine().stats().migrations_failed);
    agents_power_lost +=
        static_cast<double>(mote.engine().stats().agents_power_lost);
    if (mote.agents().count() >= 1) {
      ++sentinels;
    }
  }
  metrics.set("crashes", static_cast<double>(mesh.death_log().size()));
  metrics.set("reboots", static_cast<double>(mesh.reboot_count()));
  metrics.set("alive_frac",
              static_cast<double>(mesh.network().alive_count()) /
                  static_cast<double>(mesh.mote_count()));
  metrics.set("sentinel_coverage",
              static_cast<double>(sentinels) /
                  static_cast<double>(mesh.mote_count()));
  metrics.set("hop_failures", hop_failures);
  metrics.set("custody_resumes", custody_resumes);
  metrics.set("migrations_failed", migrations_failed);
  metrics.set("agents_power_lost", agents_power_lost);
  metrics.set("live_agents", static_cast<double>(mesh.agent_count()));
  record_energy_stats(mesh, metrics);
  record_network_stats(mesh, mesh.network(), metrics);
  return metrics;
}

// Knob lists come from the KnobRegistry (api/knob_registry.h): each
// scenario's own knobs first, then the shared mesh set. store_ops runs
// no radio, so it takes only its own.
std::vector<ScenarioInfo>& registry() {
  static std::vector<ScenarioInfo> scenarios = {
      {"fire_tracking",
       "Sec. 5 case study: detector flood + tracker swarm on a burning "
       "mesh",
       run_fire_tracking, api::scenario_knob_names("fire_tracking")},
      {"intruder_pursuit",
       "Sec. 1 scenario: sentinels publish readings, a pursuer shadows "
       "the intruder",
       run_intruder_pursuit, api::scenario_knob_names("intruder_pursuit")},
      {"smove",
       "Fig. 8 strong-move round trip (axis: hops)",
       run_smove, api::scenario_knob_names("smove")},
      {"rout",
       "Fig. 8 remote out with acknowledgement (axis: hops)",
       run_rout, api::scenario_knob_names("rout")},
      {"store_ops",
       "Sec. 3.2 ablation: tuple-store probe/remove cost (axis: fillers)",
       run_store_ops,
       api::scenario_knob_names("store_ops", /*include_shared=*/false)},
      {"network_lifetime",
       "fire tracking on battery power: node deaths, lifetime "
       "percentiles, time-to-first-partition (axes: battery_mj, "
       "duty_cycle, route_policy, adaptive_lpl)",
       run_network_lifetime, api::scenario_knob_names("network_lifetime")},
      {"churn_pursuit",
       "intruder pursuit under Poisson crash/reboot churn, with "
       "re-flood recovery (axes: churn_rate, churn_reboot_s, "
       "route_policy, adaptive_lpl)",
       run_churn_pursuit, api::scenario_knob_names("churn_pursuit")},
      {"report_collection",
       "periodic sense-and-report converge-cast to the gateway: "
       "delivery, corridor drain, partition (axes: report_s, "
       "route_policy, duty_cycle)",
       run_report_collection, api::scenario_knob_names("report_collection")},
  };
  return scenarios;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() { return registry(); }

const ScenarioInfo* find_scenario(std::string_view name) {
  for (const ScenarioInfo& info : registry()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

bool register_scenario(ScenarioInfo info) {
  if (find_scenario(info.name) != nullptr) {
    return false;
  }
  registry().push_back(std::move(info));
  return true;
}

}  // namespace agilla::harness

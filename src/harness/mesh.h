// Mesh: the harness' name for one api::Deployment per trial — the public
// embedding facade (src/api/deployment.h) composed from a TrialSpec. The
// composition itself (simulator, lossy grid radio, sensor environment,
// one AgillaMiddleware per node, energy, churn, event bus) lives in
// agilla::api; this shim only adds the TrialSpec -> DeploymentOptions
// translation, which routes every named knob through the KnobRegistry.
#pragma once

#include "api/deployment.h"
#include "harness/experiment.h"

namespace agilla::harness {

/// Loss calibration shared with the paper experiments (re-exported from
/// the api facade for the benches' historical spelling).
inline constexpr double kDefaultLoss = api::kDefaultLoss;
inline constexpr double kDefaultPerByteLoss = api::kDefaultPerByteLoss;

using MeshOptions = api::DeploymentOptions;

class Mesh : public api::Deployment {
 public:
  using api::Deployment::Deployment;
  /// Mesh for one harness trial: grid/loss/store/seed from the spec,
  /// knobs applied through the registry.
  explicit Mesh(const TrialSpec& trial);
};

/// Translates a TrialSpec into DeploymentOptions: structural parameters
/// by hand, every named knob via api::apply_knobs (the registry seam).
[[nodiscard]] MeshOptions mesh_options_for(const TrialSpec& trial);

}  // namespace agilla::harness

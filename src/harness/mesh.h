// Mesh: a self-contained AgillaMesh simulation — simulator, lossy grid
// radio, sensor environment, and one AgillaMiddleware per node — built
// from a TrialSpec (or explicit options). This generalizes the benches'
// old 5x5 Testbed to arbitrary grid sizes and tuple-store backends, and
// is the unit the harness thread pool runs: one Mesh per trial, no state
// shared between trials.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/injector.h"
#include "core/middleware.h"
#include "harness/experiment.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace agilla::harness {

/// Loss calibration shared with the paper experiments (see bench_common.h
/// for the derivation): per-packet floor + per-byte fade.
inline constexpr double kDefaultLoss = 0.02;
inline constexpr double kDefaultPerByteLoss = 0.0016;

struct MeshOptions {
  std::size_t width = 5;
  std::size_t height = 5;
  double packet_loss = kDefaultLoss;
  double per_byte_loss = 0.0;
  std::uint64_t seed = 1;
  ts::StoreKind store = ts::StoreKind::kLinear;
  core::AgillaConfig config{};
  /// Neighbour-discovery warm-up run before the constructor returns.
  sim::SimTime warmup = 5 * sim::kSecond;
  // Energy & lifetime (src/energy/): 0 / 1.0 / 0 keeps the classic
  // immortal, always-on mesh. The harness axes battery_mj / duty_cycle /
  // churn_rate land here via mesh_options_for().
  double battery_mj = 0.0;   ///< per-node battery; <= 0 = immortal
  double duty_cycle = 1.0;   ///< LPL listen fraction; >= 1 = always on
  double churn_rate = 0.0;   ///< Poisson crashes per node per second
  double churn_reboot_s = 0.0;  ///< crashed nodes reboot after this; 0 = never
  // Energy-aware networking (harness axes route_policy / energy_weight /
  // adaptive_lpl / duty_min / duty_max / beacon_suppression).
  int route_policy = 0;      ///< 0 = greedy-geo, 1 = max-min residual
  double energy_weight = 0.5;   ///< distance/energy weight for max-min
  bool adaptive_lpl = false;    ///< per-node traffic-adaptive LPL
  double duty_min = 0.02;       ///< adaptive controller duty floor
  double duty_max = 0.5;        ///< adaptive controller duty ceiling
  /// Beacon suppression (backoff + piggyback): -1 = auto (on whenever
  /// LPL is active), 0 = off, 1 = on.
  int beacon_suppression = -1;
};

class Mesh {
 public:
  explicit Mesh(MeshOptions options);
  /// Mesh for one harness trial: grid/loss/store/seed from the spec.
  explicit Mesh(const TrialSpec& trial);

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] sim::Network& network() { return network_; }
  [[nodiscard]] sim::SensorEnvironment& environment() {
    return environment_;
  }
  [[nodiscard]] const sim::Topology& topology() const { return topology_; }
  [[nodiscard]] const MeshOptions& options() const { return options_; }

  [[nodiscard]] std::size_t mote_count() const { return motes_.size(); }
  [[nodiscard]] core::AgillaMiddleware& mote(std::size_t index) {
    return *motes_.at(index);
  }
  [[nodiscard]] core::AgillaMiddleware& mote_at(double x, double y);

  /// Base station wired to mote 0 (the grid origin corner). BaseStation
  /// is a value-semantic handle onto the gateway mote.
  [[nodiscard]] core::BaseStation base() {
    return core::BaseStation(*motes_.front());
  }

  /// Empties every mote's tuple store (between dependent sub-runs, so
  /// result markers cannot fill the 600-byte stores).
  void clear_all_stores();

  /// Runs the simulation until `mote`'s space holds a tuple matching
  /// `templ` or `timeout` elapses; returns the virtual observation time.
  std::optional<sim::SimTime> await_tuple(
      core::AgillaMiddleware& mote, const ts::Template& templ,
      sim::SimTime timeout,
      sim::SimTime poll_step = 2 * sim::kMillisecond);

  /// Number of motes whose space currently matches `templ`.
  [[nodiscard]] std::size_t motes_matching(const ts::Template& templ) const;

  /// Total matching tuples across all motes.
  [[nodiscard]] std::size_t tuples_matching(const ts::Template& templ) const;

  /// Total live agents across all motes.
  [[nodiscard]] std::size_t agent_count() const;

  // ------------------------------------------------------------- energy
  struct DeathEvent {
    sim::NodeId node;
    sim::SimTime at = 0;
    sim::NodeDownReason reason = sim::NodeDownReason::kBatteryDepleted;
  };

  /// Node deaths in event order (battery + churn), across the whole run.
  [[nodiscard]] const std::vector<DeathEvent>& death_log() const {
    return death_log_;
  }
  [[nodiscard]] std::size_t reboot_count() const { return reboots_; }

  /// Network-wide drain for one ledger component, batteries settled to
  /// now() first. 0 when energy is disabled.
  [[nodiscard]] double total_drained_mj(energy::EnergyComponent component);

 private:
  MeshOptions options_;
  sim::Simulator simulator_;
  sim::Network network_;
  sim::SensorEnvironment environment_;
  sim::Topology topology_;
  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes_;
  std::vector<DeathEvent> death_log_;
  std::size_t reboots_ = 0;
};

/// Translates a TrialSpec into MeshOptions (store kind lands in
/// config.tuple_space.store_kind — the store_interface.h seam).
[[nodiscard]] MeshOptions mesh_options_for(const TrialSpec& trial);

}  // namespace agilla::harness

#include "harness/mesh.h"

#include "api/knob_registry.h"

namespace agilla::harness {

MeshOptions mesh_options_for(const TrialSpec& trial) {
  MeshOptions options;
  options.width = trial.grid.width;
  options.height = trial.grid.height;
  options.packet_loss = trial.packet_loss;
  options.per_byte_loss = trial.per_byte_loss;
  options.seed = trial.seed;
  options.store = trial.store;
  options.config.tuple_space.store_kind = trial.store;
  api::apply_knobs(options, trial.params);
  return options;
}

Mesh::Mesh(const TrialSpec& trial)
    : api::Deployment(mesh_options_for(trial)) {}

}  // namespace agilla::harness

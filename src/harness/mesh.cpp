#include "harness/mesh.h"

#include "sim/radio_model.h"

namespace agilla::harness {

MeshOptions mesh_options_for(const TrialSpec& trial) {
  MeshOptions options;
  options.width = trial.grid.width;
  options.height = trial.grid.height;
  options.packet_loss = trial.packet_loss;
  options.per_byte_loss = trial.per_byte_loss;
  options.seed = trial.seed;
  options.store = trial.store;
  options.config.tuple_space.store_kind = trial.store;
  return options;
}

Mesh::Mesh(const TrialSpec& trial) : Mesh(mesh_options_for(trial)) {}

Mesh::Mesh(MeshOptions options)
    : options_(options),
      simulator_(options.seed),
      network_(simulator_,
               std::make_unique<sim::GridNeighborRadio>(
                   sim::GridNeighborRadio::Options{
                       .spacing = 1.0,
                       .eight_connected = false,
                       .packet_loss = options.packet_loss,
                       .per_byte_loss = options.per_byte_loss})) {
  options_.config.tuple_space.store_kind = options_.store;
  topology_ = sim::make_grid(network_, options_.width, options_.height);
  motes_.reserve(topology_.nodes.size());
  for (const sim::NodeId id : topology_.nodes) {
    motes_.push_back(std::make_unique<core::AgillaMiddleware>(
        network_, id, &environment_, options_.config));
    motes_.back()->start();
  }
  if (options_.warmup > 0) {
    simulator_.run_for(options_.warmup);
  }
}

core::AgillaMiddleware& Mesh::mote_at(double x, double y) {
  return *motes_.at(
      sim::nearest_node(network_, topology_, sim::Location{x, y}).value);
}

void Mesh::clear_all_stores() {
  for (const auto& mote : motes_) {
    mote->tuple_space().store().clear();
  }
}

std::optional<sim::SimTime> Mesh::await_tuple(core::AgillaMiddleware& mote,
                                              const ts::Template& templ,
                                              sim::SimTime timeout,
                                              sim::SimTime poll_step) {
  const ts::CompiledTemplate compiled(templ);  // one compile, many polls
  const sim::SimTime deadline = simulator_.now() + timeout;
  while (simulator_.now() < deadline) {
    if (mote.tuple_space().rdp(compiled).has_value()) {
      return simulator_.now();
    }
    simulator_.run_for(poll_step);
  }
  return std::nullopt;
}

std::size_t Mesh::motes_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    if (mote->tuple_space().rdp(compiled).has_value()) {
      ++count;
    }
  }
  return count;
}

std::size_t Mesh::tuples_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->tuple_space().tcount(compiled);
  }
  return count;
}

std::size_t Mesh::agent_count() const {
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->agents().count();
  }
  return count;
}

}  // namespace agilla::harness

#include "harness/mesh.h"

#include "sim/radio_model.h"

namespace agilla::harness {

MeshOptions mesh_options_for(const TrialSpec& trial) {
  MeshOptions options;
  options.width = trial.grid.width;
  options.height = trial.grid.height;
  options.packet_loss = trial.packet_loss;
  options.per_byte_loss = trial.per_byte_loss;
  options.seed = trial.seed;
  options.store = trial.store;
  options.config.tuple_space.store_kind = trial.store;
  options.battery_mj = trial.param("battery_mj", 0.0);
  options.duty_cycle = trial.param("duty_cycle", 1.0);
  options.churn_rate = trial.param("churn_rate", 0.0);
  options.churn_reboot_s = trial.param("churn_reboot_s", 0.0);
  options.route_policy = static_cast<int>(trial.param("route_policy", 0.0));
  options.energy_weight = trial.param("energy_weight", 0.5);
  options.adaptive_lpl = trial.param("adaptive_lpl", 0.0) != 0.0;
  options.duty_min = trial.param("duty_min", 0.02);
  options.duty_max = trial.param("duty_max", 0.5);
  options.beacon_suppression =
      static_cast<int>(trial.param("beacon_suppression", -1.0));
  return options;
}

Mesh::Mesh(const TrialSpec& trial) : Mesh(mesh_options_for(trial)) {}

Mesh::Mesh(MeshOptions options)
    : options_(options),
      simulator_(options.seed),
      network_(simulator_,
               std::make_unique<sim::GridNeighborRadio>(
                   sim::GridNeighborRadio::Options{
                       .spacing = 1.0,
                       .eight_connected = false,
                       .packet_loss = options.packet_loss,
                       .per_byte_loss = options.per_byte_loss})) {
  options_.config.tuple_space.store_kind = options_.store;
  topology_ = sim::make_grid(network_, options_.width, options_.height);

  // Routing policy (the route_policy / energy_weight axes).
  options_.config.routing.policy =
      options_.route_policy == 1 ? net::RoutePolicy::kMaxMinResidual
                                 : net::RoutePolicy::kGreedyGeo;
  options_.config.routing.energy_weight = options_.energy_weight;

  const bool lpl_active =
      options_.duty_cycle < 1.0 || options_.adaptive_lpl;
  const bool wants_energy = options_.battery_mj > 0.0 || lpl_active;
  if (wants_energy) {
    energy::EnergyOptions energy;
    energy.battery_mj = options_.battery_mj;
    energy.duty.listen_fraction = options_.duty_cycle;
    energy.duty.adaptive = options_.adaptive_lpl;
    energy.duty.min_fraction = options_.duty_min;
    energy.duty.max_fraction = options_.duty_max;
    network_.attach_energy(energy);
    // LPL stretches every frame by one preamble extension; the per-hop
    // and end-to-end timers must absorb a data frame plus its ack, or
    // every exchange degenerates into retransmissions. Under adaptive
    // LPL the bound is the controller's duty floor.
    const sim::SimTime ext =
        network_.duty_cycler().max_preamble_extension();
    if (ext > 0) {
      options_.config.link.ack_timeout += 2 * ext;
      options_.config.migration.receiver_abort += 4 * ext;
      options_.config.remote_ts.reply_timeout += 4 * ext;
    }
  }
  // Beacon suppression defaults to on exactly when LPL makes beacons
  // expensive (each one pays the preamble extension).
  options_.config.neighbors.suppression =
      options_.beacon_suppression == 1 ||
      (options_.beacon_suppression == -1 && lpl_active);

  motes_.reserve(topology_.nodes.size());
  for (const sim::NodeId id : topology_.nodes) {
    motes_.push_back(std::make_unique<core::AgillaMiddleware>(
        network_, id, &environment_, options_.config));
    motes_.back()->start();
  }

  // Node lifecycle: deaths tear the mote's middleware down through the
  // same path the failure-injection tests use; reboots bring it back
  // with empty RAM.
  network_.set_node_down_handler(
      [this](sim::NodeId id, sim::NodeDownReason reason) {
        death_log_.push_back(DeathEvent{id, simulator_.now(), reason});
        motes_.at(id.value)->power_down();
      });
  network_.set_node_up_handler([this](sim::NodeId id) {
    ++reboots_;
    motes_.at(id.value)->power_up();
  });
  if (options_.churn_rate > 0.0) {
    network_.enable_churn(sim::ChurnOptions{
        .crash_rate_per_node_s = options_.churn_rate,
        .reboot_after = static_cast<sim::SimTime>(
            options_.churn_reboot_s * 1e6)});
  }

  if (options_.warmup > 0) {
    simulator_.run_for(options_.warmup);
  }
}

core::AgillaMiddleware& Mesh::mote_at(double x, double y) {
  return *motes_.at(
      sim::nearest_node(network_, topology_, sim::Location{x, y}).value);
}

void Mesh::clear_all_stores() {
  for (const auto& mote : motes_) {
    mote->tuple_space().store().clear();
  }
}

std::optional<sim::SimTime> Mesh::await_tuple(core::AgillaMiddleware& mote,
                                              const ts::Template& templ,
                                              sim::SimTime timeout,
                                              sim::SimTime poll_step) {
  const ts::CompiledTemplate compiled(templ);  // one compile, many polls
  const sim::SimTime deadline = simulator_.now() + timeout;
  while (simulator_.now() < deadline) {
    if (mote.tuple_space().rdp(compiled).has_value()) {
      return simulator_.now();
    }
    simulator_.run_for(poll_step);
  }
  return std::nullopt;
}

std::size_t Mesh::motes_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    if (mote->tuple_space().rdp(compiled).has_value()) {
      ++count;
    }
  }
  return count;
}

std::size_t Mesh::tuples_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->tuple_space().tcount(compiled);
  }
  return count;
}

std::size_t Mesh::agent_count() const {
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->agents().count();
  }
  return count;
}

double Mesh::total_drained_mj(energy::EnergyComponent component) {
  network_.settle_batteries();
  double total = 0.0;
  for (const sim::NodeId id : topology_.nodes) {
    if (const energy::Battery* battery = network_.battery(id);
        battery != nullptr) {
      total += battery->drained_mj(component);
    }
  }
  return total;
}

}  // namespace agilla::harness

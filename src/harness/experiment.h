// Declarative experiment specifications for the deterministic harness.
//
// An ExperimentSpec names a scenario and the parameter grid to sweep:
// mesh sizes x packet-loss rates x tuple-store backends x any number of
// scenario-specific axes (e.g. hop count for the Fig. 9/10 experiments).
// expand_cells() flattens the grid into an ordered list of parameter
// cells; expand_trials() assigns each cell `trials` independent trials,
// each with its own RNG seed derived from (base_seed, cell, trial) via
// SplitMix64 — so trial outcomes are a pure function of the spec and are
// bit-identical no matter how many worker threads execute them, or in
// what order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "tuplespace/store_interface.h"

namespace agilla::harness {

struct GridSize {
  std::size_t width = 5;
  std::size_t height = 5;

  friend constexpr bool operator==(const GridSize&, const GridSize&) =
      default;
};

/// One extra sweep dimension, e.g. {"hops", {1,2,3,4,5}}.
struct Axis {
  std::string name;
  std::vector<double> values;
};

struct ExperimentSpec {
  std::string name = "experiment";
  std::string scenario;  ///< registered scenario name (see scenario.h)
  std::vector<GridSize> grids = {{5, 5}};
  std::vector<double> loss_rates = {0.02};
  double per_byte_loss = 0.0;
  std::vector<ts::StoreKind> stores = {ts::StoreKind::kLinear};
  std::vector<Axis> axes;
  int trials = 8;
  std::uint64_t base_seed = 1;
  /// Virtual time the scenario should simulate after warm-up.
  sim::SimTime duration = 120 * sim::kSecond;
  /// Fixed scenario knobs, overridden per cell by matching axis values.
  std::map<std::string, double> params;
};

/// One fully-resolved point of the parameter grid.
struct CellSpec {
  GridSize grid;
  double packet_loss = 0.0;
  ts::StoreKind store = ts::StoreKind::kLinear;
  /// Axis name -> value for this cell, in spec axis order.
  std::vector<std::pair<std::string, double>> axis_values;
};

/// One independent simulation run.
struct TrialSpec {
  std::size_t cell = 0;  ///< index into expand_cells(spec)
  int trial = 0;         ///< trial number within the cell
  GridSize grid;
  double packet_loss = 0.0;
  double per_byte_loss = 0.0;
  ts::StoreKind store = ts::StoreKind::kLinear;
  std::uint64_t seed = 1;  ///< derived; unique per (base_seed, cell, trial)
  sim::SimTime duration = 0;
  std::map<std::string, double> params;  ///< spec params + axis overrides

  [[nodiscard]] double param(const std::string& key, double fallback) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

/// Trial seed derivation: hash-mixes (base, cell, trial) so neighbouring
/// trials get statistically independent streams.
[[nodiscard]] std::uint64_t derive_trial_seed(std::uint64_t base_seed,
                                              std::uint64_t cell,
                                              std::uint64_t trial);

/// The parameter grid in deterministic order: grids (outermost) x losses
/// x stores x axes in declaration order (innermost).
[[nodiscard]] std::vector<CellSpec> expand_cells(const ExperimentSpec& spec);

/// All trials, ordered by (cell, trial).
[[nodiscard]] std::vector<TrialSpec> expand_trials(
    const ExperimentSpec& spec);

/// Parses "16x16" / "8" (square shorthand) into a GridSize.
[[nodiscard]] std::optional<GridSize> parse_grid(std::string_view text);

}  // namespace agilla::harness

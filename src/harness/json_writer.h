// A small deterministic JSON emitter for experiment results.
//
// Determinism is the point: the harness promises byte-identical output for
// a fixed seed regardless of worker-thread count, so the writer emits keys
// in exactly the order the caller supplies them, formats doubles with
// std::to_chars (shortest round-trip form, locale-independent), and never
// embeds wall-clock data itself.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agilla::harness {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be followed by a value or container open.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  /// The finished document. Call after the outermost container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Formats one double the way value(double) does (shared with tests).
  static std::string format_double(double v);

 private:
  void prepare_value();
  void newline();
  void append_escaped(std::string_view v);

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool after_key_ = false;
  int indent_;
};

}  // namespace agilla::harness

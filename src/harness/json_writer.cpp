#include "harness/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace agilla::harness {

std::string JsonWriter::format_double(double v) {
  // JSON has no NaN/Inf; clamp to null-adjacent sentinels so a pathological
  // metric cannot produce an unparseable document.
  if (std::isnan(v)) {
    return "null";
  }
  if (std::isinf(v)) {
    return v > 0 ? "1e308" : "-1e308";
  }
  // Integral doubles print as integers ("8" not "8.0"): stable and compact.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) {
    return "null";
  }
  return std::string(buf, ptr);
}

void JsonWriter::newline() {
  if (indent_ <= 0) {
    return;
  }
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_) * first_in_scope_.size(),
              ' ');
}

void JsonWriter::prepare_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) {
      out_ += ',';
    }
    first_in_scope_.back() = false;
    newline();
  }
}

JsonWriter& JsonWriter::begin_object() {
  prepare_value();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool was_empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!was_empty) {
    newline();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_value();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool was_empty = first_in_scope_.back();
  first_in_scope_.pop_back();
  if (!was_empty) {
    newline();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!first_in_scope_.back()) {
    out_ += ',';
  }
  first_in_scope_.back() = false;
  newline();
  append_escaped(name);
  out_ += indent_ > 0 ? ": " : ":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prepare_value();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prepare_value();
  append_escaped(v);
  return *this;
}

void JsonWriter::append_escaped(std::string_view v) {
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace agilla::harness

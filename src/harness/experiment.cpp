#include "harness/experiment.h"

#include <charconv>

#include "sim/rng.h"

namespace agilla::harness {

std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::uint64_t cell,
                                std::uint64_t trial) {
  // Chain three SplitMix64 steps so (base, cell, trial) triples cannot
  // collide the way additive schemes (base + cell * K + trial) do.
  sim::SplitMix64 mix(base_seed ^ 0xA5A5A5A5DEADBEEFULL);
  std::uint64_t s = mix.next();
  sim::SplitMix64 cell_mix(s ^ (cell * 0x9E3779B97F4A7C15ULL));
  s = cell_mix.next();
  sim::SplitMix64 trial_mix(s ^ (trial * 0xD1B54A32D192ED03ULL));
  return trial_mix.next();
}

std::vector<CellSpec> expand_cells(const ExperimentSpec& spec) {
  std::vector<CellSpec> cells;
  // Start from the grid x loss x store product...
  for (const GridSize& grid : spec.grids) {
    for (const double loss : spec.loss_rates) {
      for (const ts::StoreKind store : spec.stores) {
        cells.push_back(CellSpec{grid, loss, store, {}});
      }
    }
  }
  // ...then cross in each axis, preserving declaration order.
  for (const Axis& axis : spec.axes) {
    if (axis.values.empty()) {
      continue;
    }
    std::vector<CellSpec> expanded;
    expanded.reserve(cells.size() * axis.values.size());
    for (const CellSpec& cell : cells) {
      for (const double value : axis.values) {
        CellSpec next = cell;
        next.axis_values.emplace_back(axis.name, value);
        expanded.push_back(std::move(next));
      }
    }
    cells = std::move(expanded);
  }
  return cells;
}

std::vector<TrialSpec> expand_trials(const ExperimentSpec& spec) {
  const std::vector<CellSpec> cells = expand_cells(spec);
  std::vector<TrialSpec> trials;
  trials.reserve(cells.size() * static_cast<std::size_t>(spec.trials));
  for (std::size_t cell_index = 0; cell_index < cells.size(); ++cell_index) {
    const CellSpec& cell = cells[cell_index];
    for (int trial = 0; trial < spec.trials; ++trial) {
      TrialSpec t;
      t.cell = cell_index;
      t.trial = trial;
      t.grid = cell.grid;
      t.packet_loss = cell.packet_loss;
      t.per_byte_loss = spec.per_byte_loss;
      t.store = cell.store;
      t.seed = derive_trial_seed(spec.base_seed, cell_index,
                                 static_cast<std::uint64_t>(trial));
      t.duration = spec.duration;
      t.params = spec.params;
      for (const auto& [name, value] : cell.axis_values) {
        t.params[name] = value;
      }
      trials.push_back(std::move(t));
    }
  }
  return trials;
}

std::optional<GridSize> parse_grid(std::string_view text) {
  const auto parse_size = [](std::string_view s) -> std::optional<std::size_t> {
    std::size_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size() || v == 0) {
      return std::nullopt;
    }
    return v;
  };
  const std::size_t sep = text.find('x');
  if (sep == std::string_view::npos) {
    const auto side = parse_size(text);
    if (!side) {
      return std::nullopt;
    }
    return GridSize{*side, *side};
  }
  const auto w = parse_size(text.substr(0, sep));
  const auto h = parse_size(text.substr(sep + 1));
  if (!w || !h) {
    return std::nullopt;
  }
  return GridSize{*w, *h};
}

}  // namespace agilla::harness

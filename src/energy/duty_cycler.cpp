#include "energy/duty_cycler.h"

namespace agilla::energy {

sim::SimTime DutyCycler::check_period() const {
  if (!enabled()) {
    return options_.wake_time;
  }
  return static_cast<sim::SimTime>(
      static_cast<double>(options_.wake_time) / options_.listen_fraction);
}

sim::SimTime DutyCycler::preamble_extension() const {
  if (!enabled()) {
    return 0;
  }
  return check_period() - options_.wake_time;
}

}  // namespace agilla::energy

#include "energy/duty_cycler.h"

#include <algorithm>
#include <cmath>

namespace agilla::energy {

DutyCycler::DutyCycler(Options options) : options_(options) {
  fraction_ = options_.listen_fraction;
  if (options_.adaptive) {
    fraction_ = std::clamp(fraction_, options_.min_fraction,
                           options_.max_fraction);
  }
}

sim::SimTime DutyCycler::period_for(sim::SimTime wake, double fraction) {
  return static_cast<sim::SimTime>(static_cast<double>(wake) / fraction);
}

sim::SimTime DutyCycler::check_period() const {
  if (!enabled()) {
    return options_.wake_time;
  }
  return period_for(options_.wake_time, fraction_);
}

sim::SimTime DutyCycler::preamble_extension() const {
  if (!enabled()) {
    return 0;
  }
  return check_period() - options_.wake_time;
}

std::uint8_t DutyCycler::period_units() const {
  const double units =
      std::round(static_cast<double>(check_period()) /
                 static_cast<double>(options_.wake_time));
  return static_cast<std::uint8_t>(std::clamp(units, 1.0, 255.0));
}

sim::SimTime DutyCycler::max_preamble_extension() const {
  if (options_.adaptive) {
    return period_for(options_.wake_time, options_.min_fraction) -
           options_.wake_time;
  }
  return preamble_extension();
}

bool DutyCycler::observe(std::uint32_t frames_heard,
                         std::uint32_t tx_pending) {
  if (!options_.adaptive) {
    return false;
  }
  const bool congested =
      options_.tx_busy_depth > 0 && tx_pending >= options_.tx_busy_depth;
  const double before = fraction_;
  if (frames_heard >= options_.busy_frames || congested) {
    fraction_ = std::min(fraction_ * 2.0, options_.max_fraction);
  } else if (frames_heard == 0) {
    fraction_ = std::max(fraction_ / 2.0, options_.min_fraction);
  }
  return fraction_ != before;
}

}  // namespace agilla::energy

// Per-node battery: a finite energy reserve in millijoules plus a
// per-component draw ledger (radio TX/RX/idle-listen, CPU, sensing).
//
// Accounting invariant: the battery's total drop is DEFINED as the sum of
// the per-component draws — remaining() is derived, never tracked
// separately — so conservation (total drop == sum of draws) holds exactly,
// by construction, and tests can assert it with == rather than a
// tolerance. Idle-listen draw is continuous; it is accrued lazily via
// settle(), which charges `idle_draw_mw` for the elapsed virtual time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/types.h"

namespace agilla::energy {

/// Who drew the energy. Indexes the Battery ledger.
enum class EnergyComponent : std::uint8_t {
  kRadioTx = 0,    ///< frame transmissions (incl. LPL preamble, startup)
  kRadioRx = 1,    ///< frame receptions (decode time at the receiver)
  kRadioIdle = 2,  ///< idle listening / sleep baseline, via settle()
  kCpu = 3,        ///< VM instruction execution (VmCostModel microseconds)
  kSense = 4,      ///< ADC acquisitions issued by the sense instruction
};

inline constexpr std::size_t kEnergyComponentCount = 5;

[[nodiscard]] const char* to_string(EnergyComponent c);

class Battery {
 public:
  /// A battery holding `capacity_mj` millijoules, idle accrual starting
  /// at virtual time `now`.
  Battery(double capacity_mj, sim::SimTime now)
      : capacity_mj_(capacity_mj), last_settle_(now) {}

  /// Records a draw against `component`. The applied amount is clamped to
  /// what the battery still holds, so the ledger never exceeds capacity.
  void drain(EnergyComponent component, double mj);

  /// Accrues idle-listen draw (`idle_draw_mw` over the time since the
  /// last settle) into kRadioIdle. Idempotent at a fixed `now`.
  void settle(sim::SimTime now);

  /// Changes the continuous draw rate (duty-cycle wake/sleep, node death).
  /// Call settle() first so the old rate covers the elapsed interval.
  void set_idle_draw_mw(double mw) { idle_draw_mw_ = mw; }

  [[nodiscard]] double capacity_mj() const { return capacity_mj_; }
  [[nodiscard]] double drained_mj(EnergyComponent component) const {
    return drained_[static_cast<std::size_t>(component)];
  }
  /// Sum of the per-component draws — the battery's total drop.
  [[nodiscard]] double total_drained_mj() const;
  [[nodiscard]] double remaining_mj() const;
  [[nodiscard]] bool depleted() const { return remaining_mj() <= 0.0; }
  [[nodiscard]] double idle_draw_mw() const { return idle_draw_mw_; }

 private:
  double capacity_mj_;
  std::array<double, kEnergyComponentCount> drained_{};
  double idle_draw_mw_ = 0.0;
  sim::SimTime last_settle_;
};

}  // namespace agilla::energy

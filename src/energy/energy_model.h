// Energy cost models for the MICA2 platform, in the style of
// core/vm_costs.h: named constants with calibration sources in DESIGN.md,
// combined into millijoule charges by small pure functions.
//
// Power figures are CC1000/ATmega128L datasheet currents at 3 V (the
// numbers PowerTOSSIM and the Mica2 power profiles use): TX at 0 dBm
// ~16.5 mA -> 49.5 mW, RX/listen ~9.6 mA -> 28.8 mW, sleep ~1 uA,
// MCU active ~8 mA -> 24 mW.
#pragma once

#include "energy/duty_cycler.h"
#include "sim/types.h"

namespace agilla::energy {

/// Radio draw: per-frame TX/RX charges from on-air time, continuous
/// listen/sleep draw for the idle baseline.
struct RadioEnergyModel {
  double tx_mw = 49.5;        ///< CC1000 TX at 0 dBm, 3 V
  double rx_mw = 28.8;        ///< CC1000 RX / idle listen
  double sleep_mw = 0.003;    ///< CC1000 power-down (~1 uA)
  /// Per-frame TX fixed cost: preamble + sync + oscillator turnaround.
  double tx_startup_mj = 0.1;

  /// Energy to transmit for `on_air` microseconds (data + LPL preamble).
  [[nodiscard]] double tx_mj(sim::SimTime on_air) const {
    return tx_startup_mj + tx_mw * static_cast<double>(on_air) / 1e6;
  }
  /// Energy to receive/decode a frame of `on_air` microseconds.
  [[nodiscard]] double rx_mj(sim::SimTime on_air) const {
    return rx_mw * static_cast<double>(on_air) / 1e6;
  }
  /// Continuous draw while awake a `listen_fraction` of the time (duty
  /// cycling mixes listen and sleep power).
  [[nodiscard]] double listen_mw(double listen_fraction) const {
    return rx_mw * listen_fraction + sleep_mw * (1.0 - listen_fraction);
  }
};

/// The bridge from VmCostModel's simulated microseconds to millijoules,
/// plus the fixed per-event CPU charges the VM issues.
struct CpuEnergyModel {
  double active_mw = 24.0;          ///< ATmega128L active at 8 MHz, 3 V
  double sense_mj_per_sample = 0.02;  ///< ADC + sensor-board acquisition
  /// Serialization/deserialization work per migration message.
  double migration_msg_mj = 0.004;

  /// Energy for `us` microseconds of active CPU (what the VM cost model
  /// charged for a slice).
  [[nodiscard]] double mj_for(sim::SimTime us) const {
    return active_mw * static_cast<double>(us) / 1e6;
  }
};

/// Everything sim::Network needs to run the energy subsystem.
struct EnergyOptions {
  /// Battery capacity per node; <= 0 means no batteries (immortal nodes,
  /// but duty-cycle latency still applies if configured).
  double battery_mj = 0.0;
  RadioEnergyModel radio{};
  CpuEnergyModel cpu{};
  DutyCycler::Options duty{};
  /// Node 0 (the paper's base-station / gateway mote) is mains-powered:
  /// no battery, never churned. False puts the gateway on battery like
  /// everyone else (the `gateway_powered` harness knob).
  bool gateway_powered = true;
  /// Charge RX to awake in-range nodes that decode a unicast frame only
  /// to filter it out by address — real radios pay for overheard traffic.
  /// Off by default (the paper model charges only connected receivers).
  bool overhearing = false;
  /// Idle-draw settling + depletion-check cadence.
  sim::SimTime settle_period = 1 * sim::kSecond;
};

}  // namespace agilla::energy

// Low-power-listening duty cycler (B-MAC style, as TinyOS ships for the
// CC1000): the receiver wakes for a short channel sample every check
// period and sleeps in between; a sender prepends a preamble long enough
// to span one full check period so the receiver's next sample catches it.
//
// The listen fraction is the knob (`duty_cycle` on the harness axis): the
// wake time is fixed and the check period derived as wake / fraction, so
// a lower fraction means a LONGER check period — less idle draw, but every
// frame pays a longer preamble (more TX energy and more latency). That is
// exactly the tradeoff bench_ablation_energy sweeps.
#pragma once

#include "sim/types.h"

namespace agilla::energy {

class DutyCycler {
 public:
  struct Options {
    /// Fraction of time the radio listens; >= 1 disables duty cycling.
    double listen_fraction = 1.0;
    /// Channel-sample duration per wakeup (B-MAC default scale).
    sim::SimTime wake_time = 8 * sim::kMillisecond;
  };

  DutyCycler() = default;
  explicit DutyCycler(Options options) : options_(options) {}

  [[nodiscard]] bool enabled() const {
    return options_.listen_fraction < 1.0 &&
           options_.listen_fraction > 0.0;
  }

  /// Effective listen fraction in [0,1]; 1 when duty cycling is off.
  [[nodiscard]] double listen_fraction() const {
    return enabled() ? options_.listen_fraction : 1.0;
  }

  /// Interval between channel samples: wake_time / fraction.
  [[nodiscard]] sim::SimTime check_period() const;

  /// Extra on-air time every frame pays for its long preamble
  /// (check_period - wake_time); 0 when duty cycling is off.
  [[nodiscard]] sim::SimTime preamble_extension() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace agilla::energy

// Low-power-listening duty cycler (B-MAC style, as TinyOS ships for the
// CC1000): the receiver wakes for a short channel sample every check
// period and sleeps in between; a sender prepends a preamble long enough
// to span one full check period so the receiver's next sample catches it.
//
// The listen fraction is the knob (`duty_cycle` on the harness axis): the
// wake time is fixed and the check period derived as wake / fraction, so
// a lower fraction means a LONGER check period — less idle draw, but every
// frame pays a longer preamble (more TX energy and more latency). That is
// exactly the tradeoff bench_ablation_energy sweeps.
//
// Adaptive mode (`adaptive_lpl` axis) turns the fraction into a per-node
// controller: each settle tick the node feeds observe() the number of
// frames it heard, and the controller halves the listen fraction (doubles
// the check period) after a silent tick and doubles it (halves the
// period) when traffic exceeds `busy_frames`, clamped to
// [min_fraction, max_fraction]. The control law and its stability bound
// are documented in DESIGN.md ("Routing & LPL").
#pragma once

#include "sim/types.h"

namespace agilla::energy {

class DutyCycler {
 public:
  struct Options {
    /// Fraction of time the radio listens; >= 1 disables duty cycling
    /// (ignored as a disable switch when `adaptive` is set — it is then
    /// the controller's starting point, clamped into the bounds).
    double listen_fraction = 1.0;
    /// Channel-sample duration per wakeup (B-MAC default scale).
    sim::SimTime wake_time = 8 * sim::kMillisecond;
    /// Traffic-adaptive control (per node; bounds below).
    bool adaptive = false;
    double min_fraction = 0.02;  ///< duty floor when the channel is quiet
    double max_fraction = 0.5;   ///< duty ceiling under sustained load
    /// Frames heard per settle tick at or above which the controller
    /// narrows the check period; a tick with zero frames widens it.
    std::uint32_t busy_frames = 4;
    /// Congestion coupling (`lpl_tx_busy` knob): a settle tick whose TX
    /// queue depth is at or above this counts as busy even if nothing
    /// was heard — a congested node keeps its radio duty up so its own
    /// backlog (and its neighbours' retries) drain instead of paying
    /// ever-longer preambles. 0 disables the signal.
    std::uint32_t tx_busy_depth = 0;
  };

  DutyCycler() = default;
  explicit DutyCycler(Options options);

  [[nodiscard]] bool enabled() const {
    return options_.adaptive ||
           (fraction_ < 1.0 && fraction_ > 0.0);
  }

  /// Effective listen fraction in [0,1]; 1 when duty cycling is off.
  [[nodiscard]] double listen_fraction() const {
    return enabled() ? fraction_ : 1.0;
  }

  /// Interval between channel samples: wake_time / fraction.
  [[nodiscard]] sim::SimTime check_period() const;

  /// Extra on-air time every frame pays for its long preamble
  /// (check_period - wake_time); 0 when duty cycling is off.
  [[nodiscard]] sim::SimTime preamble_extension() const;

  /// The check period quantized to wake-time units for the 1-byte beacon
  /// field (1 = always on, 255 caps the advertisable period at ~2 s).
  [[nodiscard]] std::uint8_t period_units() const;

  /// The longest preamble the controller can ever demand (the min_fraction
  /// bound when adaptive, the static extension otherwise) — what protocol
  /// timeouts must absorb per frame.
  [[nodiscard]] sim::SimTime max_preamble_extension() const;

  /// Feeds the controller one settle tick's traffic observation: frames
  /// heard plus the node's own pending-TX depth (the congestion signal).
  /// Returns true when the listen fraction changed (the caller re-bases
  /// the idle draw). No-op unless `adaptive`.
  bool observe(std::uint32_t frames_heard, std::uint32_t tx_pending = 0);

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  [[nodiscard]] static sim::SimTime period_for(sim::SimTime wake,
                                               double fraction);

  Options options_;
  double fraction_ = 1.0;  ///< current listen fraction (moves if adaptive)
};

}  // namespace agilla::energy

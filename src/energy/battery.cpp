#include "energy/battery.h"

#include <algorithm>

namespace agilla::energy {

const char* to_string(EnergyComponent c) {
  switch (c) {
    case EnergyComponent::kRadioTx:
      return "radio_tx";
    case EnergyComponent::kRadioRx:
      return "radio_rx";
    case EnergyComponent::kRadioIdle:
      return "radio_idle";
    case EnergyComponent::kCpu:
      return "cpu";
    case EnergyComponent::kSense:
      return "sense";
  }
  return "?";
}

void Battery::drain(EnergyComponent component, double mj) {
  if (mj <= 0.0) {
    return;
  }
  const double applied = std::min(mj, remaining_mj());
  drained_[static_cast<std::size_t>(component)] += applied;
}

void Battery::settle(sim::SimTime now) {
  if (now <= last_settle_) {
    return;
  }
  const double elapsed_s =
      static_cast<double>(now - last_settle_) / 1e6;
  last_settle_ = now;
  drain(EnergyComponent::kRadioIdle, idle_draw_mw_ * elapsed_s);
}

double Battery::total_drained_mj() const {
  double total = 0.0;
  for (const double d : drained_) {
    total += d;
  }
  return total;
}

double Battery::remaining_mj() const {
  return std::max(0.0, capacity_mj_ - total_drained_mj());
}

}  // namespace agilla::energy

#include "net/packet.h"

#include <algorithm>
#include <cmath>

namespace agilla::net {

std::int16_t encode_coordinate(double v) {
  const double scaled = std::round(v * 64.0);
  const double clamped = std::clamp(scaled, -32768.0, 32767.0);
  return static_cast<std::int16_t>(clamped);
}

double decode_coordinate(std::int16_t v) {
  return static_cast<double>(v) / 64.0;
}

void write_location(Writer& w, sim::Location loc) {
  w.i16(encode_coordinate(loc.x));
  w.i16(encode_coordinate(loc.y));
}

sim::Location read_location(Reader& r) {
  const double x = decode_coordinate(r.i16());
  const double y = decode_coordinate(r.i16());
  return sim::Location{x, y};
}

std::uint8_t encode_epsilon(double eps) {
  const double scaled = std::round(std::clamp(eps, 0.0, 15.9) * 16.0);
  return static_cast<std::uint8_t>(scaled);
}

double decode_epsilon(std::uint8_t e) { return static_cast<double>(e) / 16.0; }

std::uint8_t encode_residual(double fraction) {
  const double scaled = std::round(std::clamp(fraction, 0.0, 1.0) * 255.0);
  return static_cast<std::uint8_t>(scaled);
}

double decode_residual(std::uint8_t v) {
  return static_cast<double>(v) / 255.0;
}

void LinkHeader::write(Writer& w) const {
  w.u8(seq);
  w.u8(static_cast<std::uint8_t>((wants_ack ? 1 : 0) |
                                 (has_piggyback ? 2 : 0)));
}

LinkHeader LinkHeader::read(Reader& r) {
  LinkHeader h;
  h.seq = r.u8();
  const std::uint8_t flags = r.u8();
  h.wants_ack = (flags & 1) != 0;
  h.has_piggyback = (flags & 2) != 0;
  return h;
}

void BeaconPayload::write(Writer& w) const {
  write_location(w, location);
  w.u8(residual);
  w.u8(period_units);
  w.u8(backoff_exp);
}

BeaconPayload BeaconPayload::read(Reader& r) {
  BeaconPayload b;
  b.location = read_location(r);
  b.residual = r.u8();
  b.period_units = r.u8();
  b.backoff_exp = r.u8();
  return b;
}

void GeoHeader::write(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(inner_am));
  write_location(w, dest);
  write_location(w, origin);
  w.u8(encode_epsilon(epsilon));
  w.u8(ttl);
}

GeoHeader GeoHeader::read(Reader& r) {
  GeoHeader h;
  h.inner_am = static_cast<sim::AmType>(r.u8());
  h.dest = read_location(r);
  h.origin = read_location(r);
  h.epsilon = decode_epsilon(r.u8());
  h.ttl = r.u8();
  return h;
}

}  // namespace agilla::net

// Best-effort greedy geographic forwarding (paper Sec. 4: "we implemented a
// simple best-effort greedy-forwarding algorithm that forwards messages to
// the neighbor closest to the destination").
//
// Two services share the same next-hop policy:
//  * decide()         — used by agent migration, which transfers the agent
//                       reliably hop by hop and picks each hop itself;
//  * send()/handlers  — a datagram service for geographically-addressed
//                       payloads (remote tuple-space ops). Packets are
//                       wrapped in a GeoHeader and forwarded without link
//                       acks, end-to-end (paper Sec. 3.2).
#pragma once

#include <functional>
#include <unordered_map>

#include "net/neighbor_table.h"
#include "net/packet.h"

namespace agilla::net {

class GeoRouter {
 public:
  struct Stats {
    std::uint64_t originated = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t no_route = 0;
    std::uint64_t ttl_expired = 0;
  };

  /// Delivered packets hand the inner payload plus the origin location (so
  /// the receiver can reply without knowing sender node ids).
  using Handler = std::function<void(const GeoHeader&,
                                     std::span<const std::uint8_t>)>;

  GeoRouter(sim::Network& network, LinkLayer& link,
            const NeighborTable& neighbors, sim::Location self,
            sim::Trace* trace = nullptr);

  GeoRouter(const GeoRouter&) = delete;
  GeoRouter& operator=(const GeoRouter&) = delete;

  /// Register the upcall for an inner AM type (kTsRequest / kTsReply).
  void register_handler(sim::AmType inner_am, Handler handler);

  /// Originate a geographically-addressed datagram toward `dest`.
  /// Delivered to the first node within `epsilon` of `dest` along the
  /// greedy path; silently dropped on routing failure (best effort).
  void send(sim::Location dest, double epsilon, sim::AmType inner_am,
            std::vector<std::uint8_t> payload, sim::Location origin);

  struct Decision {
    enum class Kind { kDeliverLocal, kForward, kNoRoute };
    Kind kind = Kind::kNoRoute;
    sim::NodeId next_hop;
  };

  /// The greedy next-hop policy, shared with the migration module.
  /// Delivers locally when self is within epsilon of dest *and* no
  /// neighbour is strictly closer; otherwise forwards to the strictly
  /// closest neighbour; otherwise reports no route.
  [[nodiscard]] Decision decide(sim::Location dest, double epsilon) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_geo_frame(sim::NodeId from, std::span<const std::uint8_t> payload);
  void forward(const GeoHeader& header, std::span<const std::uint8_t> inner);

  sim::Network& network_;
  LinkLayer& link_;
  const NeighborTable& neighbors_;
  sim::Location self_;
  sim::Trace* trace_;
  std::unordered_map<sim::AmType, Handler> handlers_;
  Stats stats_;
};

}  // namespace agilla::net

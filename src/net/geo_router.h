// Best-effort greedy geographic forwarding (paper Sec. 4: "we implemented a
// simple best-effort greedy-forwarding algorithm that forwards messages to
// the neighbor closest to the destination").
//
// Two services share the same next-hop policy:
//  * decide()         — used by agent migration, which transfers the agent
//                       reliably hop by hop and picks each hop itself;
//  * send()/handlers  — a datagram service for geographically-addressed
//                       payloads (remote tuple-space ops). Packets are
//                       wrapped in a GeoHeader and forwarded without link
//                       acks, end-to-end (paper Sec. 3.2).
#pragma once

#include <functional>
#include <unordered_map>

#include "net/neighbor_table.h"
#include "net/packet.h"

namespace agilla::net {

/// Next-hop selection policy (DESIGN.md "Routing & LPL").
enum class RoutePolicy : std::uint8_t {
  /// Paper Sec. 4: forward to the neighbour geographically closest to the
  /// destination, ignoring energy.
  kGreedyGeo = 0,
  /// Energy-aware: among neighbours with forward progress, trade progress
  /// against the bottleneck neighbour's residual energy (the local
  /// max-min-residual heuristic), avoiding neighbours below the residual
  /// floor whenever an above-floor alternative with progress exists.
  kMaxMinResidual = 1,
};

class GeoRouter {
 public:
  struct Options {
    RoutePolicy policy = RoutePolicy::kGreedyGeo;
    /// Weight of residual energy vs. forward progress in the max-min
    /// score: 0 = pure distance (greedy among progressing neighbours),
    /// 1 = pure energy. score = (1-w)*progress + w*residual.
    double energy_weight = 0.5;
    /// Residual fraction below which a neighbour is treated as a relay
    /// of last resort (only chosen when no above-floor neighbour makes
    /// forward progress).
    double residual_floor = 0.25;
  };

  struct Stats {
    std::uint64_t originated = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t delivered = 0;
    std::uint64_t no_route = 0;
    std::uint64_t ttl_expired = 0;
  };

  /// Delivered packets hand the inner payload plus the origin location (so
  /// the receiver can reply without knowing sender node ids).
  using Handler = std::function<void(const GeoHeader&,
                                     std::span<const std::uint8_t>)>;

  GeoRouter(sim::Network& network, LinkLayer& link,
            const NeighborTable& neighbors, sim::Location self,
            sim::Trace* trace = nullptr);
  GeoRouter(sim::Network& network, LinkLayer& link,
            const NeighborTable& neighbors, sim::Location self,
            Options options, sim::Trace* trace = nullptr);

  GeoRouter(const GeoRouter&) = delete;
  GeoRouter& operator=(const GeoRouter&) = delete;

  /// Register the upcall for an inner AM type (kTsRequest / kTsReply).
  void register_handler(sim::AmType inner_am, Handler handler);

  /// Originate a geographically-addressed datagram toward `dest`.
  /// Delivered to the first node within `epsilon` of `dest` along the
  /// greedy path; silently dropped on routing failure (best effort).
  void send(sim::Location dest, double epsilon, sim::AmType inner_am,
            std::vector<std::uint8_t> payload, sim::Location origin);

  struct Decision {
    enum class Kind { kDeliverLocal, kForward, kNoRoute };
    Kind kind = Kind::kNoRoute;
    sim::NodeId next_hop;
  };

  /// The next-hop policy, shared with the migration module. Delivers
  /// locally when self is within epsilon of dest; otherwise forwards to
  /// the neighbour the configured RoutePolicy picks among those strictly
  /// closer to dest; otherwise reports no route. Both policies refuse
  /// neighbours without forward progress, so loop-freedom is identical.
  [[nodiscard]] Decision decide(sim::Location dest, double epsilon) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void on_geo_frame(sim::NodeId from, std::span<const std::uint8_t> payload);
  void forward(const GeoHeader& header, std::span<const std::uint8_t> inner);
  [[nodiscard]] std::optional<sim::NodeId> max_min_next_hop(
      sim::Location dest, double self_distance) const;

  sim::Network& network_;
  LinkLayer& link_;
  const NeighborTable& neighbors_;
  sim::Location self_;
  Options options_;
  sim::Trace* trace_;
  std::unordered_map<sim::AmType, Handler> handlers_;
  Stats stats_;
};

}  // namespace agilla::net

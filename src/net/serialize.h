// Bounds-checked little-endian wire (de)serialization.
//
// Reader never throws on truncated input: it sets an error flag and returns
// zeros, so protocol code can parse untrusted bytes and check ok() once.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace agilla::net {

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  /// Writes `n` zero bytes (reserved/padding fields in wire structs).
  void zeros(std::size_t n);

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::uint32_t u32();
  /// Copies `n` bytes into `out`; zero-fills on underrun.
  void bytes(std::span<std::uint8_t> out);
  void skip(std::size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  [[nodiscard]] bool ensure(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace agilla::net

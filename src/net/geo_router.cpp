#include "net/geo_router.h"

#include <utility>

namespace agilla::net {

GeoRouter::GeoRouter(sim::Network& network, LinkLayer& link,
                     const NeighborTable& neighbors, sim::Location self,
                     sim::Trace* trace)
    : GeoRouter(network, link, neighbors, self, Options{}, trace) {}

GeoRouter::GeoRouter(sim::Network& network, LinkLayer& link,
                     const NeighborTable& neighbors, sim::Location self,
                     Options options, sim::Trace* trace)
    : network_(network),
      link_(link),
      neighbors_(neighbors),
      self_(self),
      options_(options),
      trace_(trace) {
  link_.register_handler(
      sim::AmType::kGeo,
      [this](sim::NodeId from, std::span<const std::uint8_t> payload) {
        on_geo_frame(from, payload);
        return true;
      });
}

void GeoRouter::register_handler(sim::AmType inner_am, Handler handler) {
  handlers_[inner_am] = std::move(handler);
}

std::optional<sim::NodeId> GeoRouter::max_min_next_hop(
    sim::Location dest, double self_distance) const {
  // Two passes over the (id-sorted) acquaintance list keep the selection
  // deterministic: first decide whether any progressing neighbour sits
  // above the residual floor, then score the eligible pool. The score
  // trades normalized forward progress against residual energy; ties
  // break toward more progress, then the lower node id.
  const auto progress_of = [&](const NeighborEntry& e) {
    return (self_distance - distance(e.location, dest)) / self_distance;
  };
  bool any_above_floor = false;
  for (const auto& e : neighbors_.entries()) {
    if (progress_of(e) > 0.0 &&
        e.residual_frac() > options_.residual_floor) {
      any_above_floor = true;
      break;
    }
  }
  const double w = options_.energy_weight;
  std::optional<sim::NodeId> best;
  double best_score = 0.0;
  double best_progress = 0.0;
  for (const auto& e : neighbors_.entries()) {
    const double progress = progress_of(e);
    if (progress <= 0.0) {
      continue;  // never route away from the destination
    }
    if (any_above_floor && e.residual_frac() <= options_.residual_floor) {
      continue;  // spare the nearly-drained relay
    }
    const double score =
        (1.0 - w) * progress + w * e.residual_frac();
    if (!best || score > best_score ||
        (score == best_score && progress > best_progress)) {
      best = e.id;
      best_score = score;
      best_progress = progress;
    }
  }
  return best;
}

GeoRouter::Decision GeoRouter::decide(sim::Location dest,
                                      double epsilon) const {
  if (within(self_, dest, epsilon)) {
    return Decision{Decision::Kind::kDeliverLocal, sim::NodeId{}};
  }
  const double self_distance = distance(self_, dest);
  if (options_.policy == RoutePolicy::kMaxMinResidual) {
    if (const auto hop = max_min_next_hop(dest, self_distance)) {
      return Decision{Decision::Kind::kForward, *hop};
    }
    return Decision{Decision::Kind::kNoRoute, sim::NodeId{}};
  }
  const auto closest = neighbors_.closest_to(dest);
  if (closest.has_value() &&
      distance(closest->location, dest) < self_distance) {
    return Decision{Decision::Kind::kForward, closest->id};
  }
  return Decision{Decision::Kind::kNoRoute, sim::NodeId{}};
}

void GeoRouter::send(sim::Location dest, double epsilon,
                     sim::AmType inner_am, std::vector<std::uint8_t> payload,
                     sim::Location origin) {
  stats_.originated++;
  GeoHeader header;
  header.inner_am = inner_am;
  header.dest = dest;
  header.origin = origin;
  header.epsilon = epsilon;
  forward(header, payload);
}

void GeoRouter::forward(const GeoHeader& header,
                        std::span<const std::uint8_t> inner) {
  const Decision decision = decide(header.dest, header.epsilon);
  switch (decision.kind) {
    case Decision::Kind::kDeliverLocal: {
      stats_.delivered++;
      const auto it = handlers_.find(header.inner_am);
      if (it != handlers_.end() && it->second) {
        it->second(header, inner);
      }
      return;
    }
    case Decision::Kind::kForward: {
      if (header.ttl == 0) {
        stats_.ttl_expired++;
        return;
      }
      GeoHeader next = header;
      next.ttl--;
      Writer w;
      next.write(w);
      w.bytes(inner);
      stats_.forwarded++;
      link_.send_unacked(decision.next_hop, sim::AmType::kGeo, w.take());
      return;
    }
    case Decision::Kind::kNoRoute: {
      stats_.no_route++;
      if (trace_ != nullptr) {
        trace_->emit(network_.simulator().now(),
                     sim::TraceCategory::kRouting, link_.self(),
                     "no route toward destination");
      }
      return;
    }
  }
}

void GeoRouter::on_geo_frame(sim::NodeId /*from*/,
                             std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const GeoHeader header = GeoHeader::read(r);
  if (!r.ok()) {
    return;
  }
  const std::span<const std::uint8_t> inner =
      payload.subspan(GeoHeader::kWireSize);
  forward(header, inner);
}

}  // namespace agilla::net

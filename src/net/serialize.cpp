#include "net/serialize.h"

#include <algorithm>

namespace agilla::net {

void Writer::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFF));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Writer::zeros(std::size_t n) { bytes_.insert(bytes_.end(), n, 0); }

bool Reader::ensure(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!ensure(1)) {
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!ensure(2)) {
    return 0;
  }
  const std::uint16_t lo = data_[pos_];
  const std::uint16_t hi = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Reader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

void Reader::bytes(std::span<std::uint8_t> out) {
  if (!ensure(out.size())) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), out.size(),
              out.begin());
  pos_ += out.size();
}

void Reader::skip(std::size_t n) {
  if (ensure(n)) {
    pos_ += n;
  }
}

}  // namespace agilla::net

// Wire formats shared by the protocol modules.
//
// The paper's MICA2 TinyOS stack carries 27-byte payloads by default; the
// real Agilla distribution raised TOSH_DATA_LENGTH so that a maximal tuple
// plus headers fits in one frame. We allow 48-byte payloads for the same
// reason and document it in DESIGN.md; the air-time model always charges
// for the actual bytes transmitted, so radio timing stays honest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/serialize.h"
#include "sim/types.h"

namespace agilla::net {

/// Default TinyOS payload budget (paper Sec. 3.2: tuples are capped at 25
/// bytes "to fit within the 27 byte payload of a single TinyOS message").
inline constexpr std::size_t kTinyOsPayloadBytes = 27;

/// Our extended payload budget (see file comment).
inline constexpr std::size_t kMaxPayloadBytes = 48;

/// Locations travel as Q10.6 fixed point: int16 = round(coordinate * 64).
/// Grid coordinates in the paper are small integers, so this is exact for
/// them and gives ~1.5 cm resolution for everything else.
std::int16_t encode_coordinate(double v);
double decode_coordinate(std::int16_t v);

void write_location(Writer& w, sim::Location loc);  // 4 bytes
sim::Location read_location(Reader& r);

/// Epsilon (location-addressing tolerance) travels as u8 = round(eps * 16),
/// i.e. tolerances up to ~15.9 units in 1/16 steps.
std::uint8_t encode_epsilon(double eps);
double decode_epsilon(std::uint8_t e);

/// Residual battery energy travels as u8 = round(fraction * 255): a 1-byte
/// quantization with <= 1/510 (~0.2 %) error (calibration in DESIGN.md).
/// 255 doubles as "mains-powered / no battery" — indistinguishable from a
/// full battery on the wire, which is exactly how a router should treat it.
std::uint8_t encode_residual(double fraction);
double decode_residual(std::uint8_t v);

/// Link-layer header prepended to every non-ack frame payload (2 bytes).
/// Flag bit 1 marks a piggybacked BeaconPayload appended after the inner
/// payload (beacon suppression: data frames double as beacons).
struct LinkHeader {
  std::uint8_t seq = 0;
  bool wants_ack = false;
  bool has_piggyback = false;

  static constexpr std::size_t kWireSize = 2;

  void write(Writer& w) const;
  static LinkHeader read(Reader& r);
};

/// Acknowledgement payload (AmType::kAck, 1 byte): the acked sequence.
struct AckPayload {
  std::uint8_t acked_seq = 0;

  void write(Writer& w) const { w.u8(acked_seq); }
  static AckPayload read(Reader& r) { return AckPayload{r.u8()}; }
};

/// Beacon payload (AmType::kBeacon, 7 bytes): the sender's location plus
/// the energy state the routing and LPL layers need from a neighbour —
/// residual battery energy (1 byte, see encode_residual), the current LPL
/// check period in wake-time units (1 = always on, so a sender can size
/// its preamble for THIS receiver), and the sender's beacon-backoff
/// exponent (so listeners scale their expiry horizon to the actual
/// beacon interval instead of evicting a suppressed-but-alive node).
/// The same 7 bytes ride piggybacked on data frames under beacon
/// suppression (LinkHeader flag bit 1).
struct BeaconPayload {
  sim::Location location;
  std::uint8_t residual = kResidualFull;  ///< encode_residual(remaining)
  std::uint8_t period_units = 1;          ///< check period / wake_time
  std::uint8_t backoff_exp = 0;           ///< beacon period = base << exp

  /// Mains-powered or battery-less senders advertise a full battery.
  static constexpr std::uint8_t kResidualFull = 255;
  static constexpr std::size_t kWireSize = 7;

  void write(Writer& w) const;
  static BeaconPayload read(Reader& r);
};

/// Geographic routing envelope (AmType::kGeo): 11-byte header + inner
/// payload. Forwarded greedily hop by hop without link acks (used by the
/// remote tuple-space operations, paper Sec. 3.2).
struct GeoHeader {
  sim::AmType inner_am = sim::AmType::kTsRequest;
  sim::Location dest;
  sim::Location origin;
  double epsilon = 0.0;
  std::uint8_t ttl = kDefaultTtl;

  static constexpr std::uint8_t kDefaultTtl = 32;
  static constexpr std::size_t kWireSize = 11;

  void write(Writer& w) const;
  static GeoHeader read(Reader& r);
};

}  // namespace agilla::net

#include "net/neighbor_table.h"

#include <algorithm>
#include <limits>

namespace agilla::net {

NeighborTable::NeighborTable(sim::Network& network, LinkLayer& link,
                             sim::Location self)
    : NeighborTable(network, link, self, Options{}) {}

NeighborTable::NeighborTable(sim::Network& network, LinkLayer& link,
                             sim::Location self, Options options,
                             sim::Trace* trace)
    : network_(network),
      link_(link),
      self_(self),
      options_(options),
      trace_(trace) {
  link_.register_handler(
      sim::AmType::kBeacon,
      [this](sim::NodeId from, std::span<const std::uint8_t> payload) {
        on_beacon(from, payload);
        return true;
      });
}

void NeighborTable::start() {
  if (running_) {
    return;
  }
  running_ = true;
  const sim::SimTime offset =
      network_.simulator().rng().uniform(options_.beacon_period);
  beacon_timer_ = network_.simulator().schedule_in(
      offset, [this] { send_beacon(); });
}

void NeighborTable::stop() {
  running_ = false;
  beacon_timer_.cancel();
}

void NeighborTable::send_beacon() {
  if (!running_) {
    return;
  }
  Writer w;
  BeaconPayload{self_}.write(w);
  link_.send_unacked(sim::kBroadcastNode, sim::AmType::kBeacon, w.take());
  expire();
  beacon_timer_ = network_.simulator().schedule_in(
      options_.beacon_period, [this] { send_beacon(); });
}

void NeighborTable::on_beacon(sim::NodeId from,
                              std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const BeaconPayload beacon = BeaconPayload::read(r);
  if (!r.ok()) {
    return;
  }
  insert(from, beacon.location);
}

void NeighborTable::insert(sim::NodeId id, sim::Location location) {
  const sim::SimTime now = network_.simulator().now();
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const NeighborEntry& e) { return e.id == id; });
  if (it != entries_.end()) {
    it->location = location;
    it->last_heard = now;
    return;
  }
  if (entries_.size() >= options_.capacity) {
    // Evict the stalest entry (mote memory is fixed; paper Sec. 3.2).
    auto stalest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const NeighborEntry& a, const NeighborEntry& b) {
          return a.last_heard < b.last_heard;
        });
    *stalest = NeighborEntry{id, location, now};
  } else {
    entries_.push_back(NeighborEntry{id, location, now});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) {
              return a.id < b.id;
            });
  if (trace_ != nullptr) {
    trace_->emit(now, sim::TraceCategory::kNeighbor, link_.self(),
                 "discovered n" + std::to_string(id.value));
  }
}

void NeighborTable::expire() {
  const sim::SimTime now = network_.simulator().now();
  const sim::SimTime horizon =
      static_cast<sim::SimTime>(options_.expiry_periods) *
      options_.beacon_period;
  std::erase_if(entries_, [&](const NeighborEntry& e) {
    return now > e.last_heard && now - e.last_heard > horizon;
  });
}

std::optional<NeighborEntry> NeighborTable::by_index(std::size_t i) const {
  if (i >= entries_.size()) {
    return std::nullopt;
  }
  return entries_[i];
}

std::optional<NeighborEntry> NeighborTable::by_id(sim::NodeId id) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const NeighborEntry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return *it;
}

std::optional<NeighborEntry> NeighborTable::random(sim::Rng& rng) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return entries_[rng.uniform(entries_.size())];
}

std::optional<NeighborEntry> NeighborTable::closest_to(
    sim::Location dest) const {
  const NeighborEntry* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    const double d = distance(e.location, dest);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return *best;
}

}  // namespace agilla::net

#include "net/neighbor_table.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace agilla::net {

NeighborTable::NeighborTable(sim::Network& network, LinkLayer& link,
                             sim::Location self)
    : NeighborTable(network, link, self, Options{}) {}

NeighborTable::NeighborTable(sim::Network& network, LinkLayer& link,
                             sim::Location self, Options options,
                             sim::Trace* trace)
    : network_(network),
      link_(link),
      self_(self),
      options_(options),
      trace_(trace) {
  link_.register_handler(
      sim::AmType::kBeacon,
      [this](sim::NodeId from, std::span<const std::uint8_t> payload) {
        on_beacon(from, payload);
        return true;
      });
}

void NeighborTable::start() {
  if (running_) {
    return;
  }
  running_ = true;
  backoff_exp_ = 0;
  // Our own stream for the desync offset, our own affinity for the timer:
  // start() is called from setup or reboot (kernel context), and beacon
  // events must run in this node's shard.
  const sim::SimTime offset =
      network_.simulator().node_rng(link_.self()).uniform(
          options_.beacon_period);
  beacon_timer_ = network_.simulator().schedule_in(
      offset, link_.self(), [this] { send_beacon(); });
  if (options_.suppression) {
    // Backed-off beacons check for expiry too rarely: sweep on the base
    // cadence so a silenced-then-dead neighbour is still evicted after
    // `expiry_periods` of ITS advertised interval.
    schedule_expiry_sweep();
  }
}

void NeighborTable::stop() {
  running_ = false;
  beacon_timer_.cancel();
  expiry_timer_.cancel();
}

void NeighborTable::schedule_expiry_sweep() {
  expiry_timer_ = network_.simulator().schedule_in(
      options_.beacon_period, link_.self(), [this] {
        if (!running_) {
          return;
        }
        expire();
        schedule_expiry_sweep();
      });
}

BeaconSelfState NeighborTable::advertised_state() const {
  return self_state_ ? self_state_() : BeaconSelfState{};
}

sim::SimTime NeighborTable::interval_for_exp(std::uint32_t exp) const {
  // The exponent can arrive off the wire (0-255): clamp before shifting
  // (a shift >= 64 is UB, and anything past ~32 is already beyond every
  // plausible max_beacon_period).
  const sim::SimTime interval = options_.beacon_period
                                << std::min<std::uint32_t>(exp, 32);
  return std::min(interval, options_.max_beacon_period);
}

sim::SimTime NeighborTable::current_beacon_interval() const {
  return interval_for_exp(backoff_exp_);
}

void NeighborTable::send_beacon() {
  if (!running_) {
    return;
  }
  const BeaconSelfState state = advertised_state();
  if (options_.suppression) {
    // Stability check: any membership change, or a material self-state
    // change (period moved, or the residual dropped a rebeacon step),
    // snaps the period back to the base; otherwise keep backing off.
    const bool material =
        state.period_units != last_advertised_.period_units ||
        std::abs(static_cast<int>(state.residual) -
                 static_cast<int>(last_advertised_.residual)) >=
            static_cast<int>(options_.residual_restep);
    if (table_changed_ || material) {
      backoff_exp_ = 0;
    } else if (interval_for_exp(backoff_exp_ + 1) >
               interval_for_exp(backoff_exp_)) {
      backoff_exp_++;
    }
    table_changed_ = false;
  }
  last_advertised_ = state;
  link_.send_unacked(sim::kBroadcastNode, sim::AmType::kBeacon,
                     payload_for(state));
  expire();
  beacon_timer_ = network_.simulator().schedule_in(
      current_beacon_interval(), link_.self(), [this] { send_beacon(); });
}

std::vector<std::uint8_t> NeighborTable::payload_for(
    const BeaconSelfState& state) const {
  BeaconPayload beacon;
  beacon.location = self_;
  beacon.residual = state.residual;
  beacon.period_units = state.period_units;
  beacon.backoff_exp = static_cast<std::uint8_t>(
      std::min<std::uint32_t>(backoff_exp_, 255));
  Writer w;
  beacon.write(w);
  return w.take();
}

std::vector<std::uint8_t> NeighborTable::make_piggyback() const {
  return payload_for(advertised_state());
}

void NeighborTable::on_beacon(sim::NodeId from,
                              std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const BeaconPayload beacon = BeaconPayload::read(r);
  if (!r.ok()) {
    return;
  }
  upsert(from, beacon);
}

void NeighborTable::on_piggyback(sim::NodeId from,
                                 std::span<const std::uint8_t> bytes) {
  on_beacon(from, bytes);
}

void NeighborTable::insert(sim::NodeId id, sim::Location location) {
  insert(id, location, BeaconPayload::kResidualFull, 1);
}

void NeighborTable::insert(sim::NodeId id, sim::Location location,
                           std::uint8_t residual,
                           std::uint8_t period_units) {
  upsert(id, BeaconPayload{location, residual, period_units, 0});
}

void NeighborTable::upsert(sim::NodeId id, const BeaconPayload& beacon) {
  const sim::SimTime now = network_.simulator().now();
  NeighborEntry entry;
  entry.id = id;
  entry.location = beacon.location;
  entry.last_heard = now;
  entry.residual = beacon.residual;
  // A period of 0 units is not representable (the sender's own cycler
  // never advertises it); clamp so a malformed frame cannot underflow
  // the preamble math in preamble_extension_for().
  entry.period_units = std::max<std::uint8_t>(beacon.period_units, 1);
  entry.beacon_interval = interval_for_exp(beacon.backoff_exp);
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const NeighborEntry& e) { return e.id == id; });
  if (it != entries_.end()) {
    *it = entry;
    return;
  }
  table_changed_ = true;
  if (entries_.size() >= options_.capacity) {
    // Evict the stalest entry (mote memory is fixed; paper Sec. 3.2).
    auto stalest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const NeighborEntry& a, const NeighborEntry& b) {
          return a.last_heard < b.last_heard;
        });
    *stalest = entry;
  } else {
    entries_.push_back(entry);
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const NeighborEntry& a, const NeighborEntry& b) {
              return a.id < b.id;
            });
  if (trace_ != nullptr) {
    trace_->emit(now, sim::TraceCategory::kNeighbor, link_.self(),
                 "discovered n" + std::to_string(id.value));
  }
  if (discovery_) {
    discovery_(id, beacon.location);
  }
}

void NeighborTable::expire() {
  const sim::SimTime now = network_.simulator().now();
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const NeighborEntry& e) {
    // Expiry clock: the sender's ADVERTISED beacon interval (a backed-off
    // neighbour beacons rarely but is not dead). upsert() always sets it
    // to at least the base period; the max() only defends entries built
    // outside that path.
    const sim::SimTime interval =
        std::max(e.beacon_interval, options_.beacon_period);
    const sim::SimTime horizon =
        static_cast<sim::SimTime>(options_.expiry_periods) * interval;
    return now > e.last_heard && now - e.last_heard > horizon;
  });
  if (entries_.size() != before) {
    table_changed_ = true;
  }
}

std::optional<NeighborEntry> NeighborTable::by_index(std::size_t i) const {
  if (i >= entries_.size()) {
    return std::nullopt;
  }
  return entries_[i];
}

std::optional<NeighborEntry> NeighborTable::by_id(sim::NodeId id) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const NeighborEntry& e) { return e.id == id; });
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return *it;
}

std::optional<NeighborEntry> NeighborTable::random(sim::Rng& rng) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  return entries_[rng.uniform(entries_.size())];
}

std::optional<NeighborEntry> NeighborTable::closest_to(
    sim::Location dest) const {
  const NeighborEntry* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : entries_) {
    const double d = distance(e.location, dest);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return *best;
}

std::optional<sim::SimTime> NeighborTable::preamble_extension_for(
    sim::NodeId dst, sim::SimTime wake_time) const {
  const auto extension_of = [wake_time](const NeighborEntry& e) {
    return static_cast<sim::SimTime>(e.period_units - 1) * wake_time;
  };
  if (dst.is_broadcast()) {
    // A broadcast must outlast the slowest sampler in range.
    std::optional<sim::SimTime> max;
    for (const auto& e : entries_) {
      const sim::SimTime ext = extension_of(e);
      if (!max || ext > *max) {
        max = ext;
      }
    }
    return max;
  }
  const auto entry = by_id(dst);
  if (!entry) {
    return std::nullopt;
  }
  return extension_of(*entry);
}

}  // namespace agilla::net

#include "net/link_layer.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace agilla::net {

LinkLayer::LinkLayer(sim::Network& network, sim::NodeId self)
    : LinkLayer(network, self, Options{}) {}

LinkLayer::LinkLayer(sim::Network& network, sim::NodeId self, Options options,
                     sim::Trace* trace)
    : network_(network), self_(self), options_(options), trace_(trace) {
  dedup_.reserve(options_.dedup_cache);
}

void LinkLayer::attach() {
  network_.set_receiver(self_,
                        [this](const sim::Frame& f) { on_frame(f); });
}

void LinkLayer::register_handler(sim::AmType am, Handler handler) {
  handlers_[am] = std::move(handler);
}

std::vector<std::uint8_t> LinkLayer::frame_payload(
    std::uint8_t seq, bool wants_ack, sim::AmType am,
    std::span<const std::uint8_t> payload) const {
  std::vector<std::uint8_t> piggyback;
  if (piggyback_provider_ && am != sim::AmType::kBeacon &&
      LinkHeader::kWireSize + payload.size() + BeaconPayload::kWireSize <=
          kMaxPayloadBytes) {
    piggyback = piggyback_provider_();
  }
  Writer w;
  LinkHeader{seq, wants_ack, /*has_piggyback=*/!piggyback.empty()}.write(w);
  w.bytes(payload);
  w.bytes(piggyback);
  return w.take();
}

void LinkLayer::send_frame(sim::NodeId dst, sim::AmType am,
                           std::vector<std::uint8_t> payload) {
  sim::Frame frame{self_, dst, am, std::move(payload)};
  if (preamble_oracle_) {
    frame.preamble = preamble_oracle_(dst);
  }
  network_.send(std::move(frame));
}

void LinkLayer::send_unacked(sim::NodeId dst, sim::AmType am,
                             std::vector<std::uint8_t> payload) {
  stats_.data_sent++;
  send_frame(dst, am,
             frame_payload(next_seq_++, /*wants_ack=*/false, am, payload));
}

void LinkLayer::send_acked(sim::NodeId dst, sim::AmType am,
                           std::vector<std::uint8_t> payload,
                           SendCallback done) {
  const std::uint8_t seq = next_seq_++;
  Pending pending;
  pending.dst = dst;
  pending.am = am;
  pending.payload = frame_payload(seq, /*wants_ack=*/true, am, payload);
  pending.done = std::move(done);
  pending_[seq] = std::move(pending);
  transmit(seq);
}

void LinkLayer::transmit(std::uint8_t seq) {
  auto it = pending_.find(seq);
  assert(it != pending_.end());
  Pending& p = it->second;
  p.attempts++;
  stats_.data_sent++;
  if (p.attempts > 1) {
    stats_.retransmissions++;
  }
  send_frame(p.dst, p.am, p.payload);
  p.timer = network_.simulator().schedule_in(
      options_.ack_timeout, self_, [this, seq] { on_timeout(seq); });
}

void LinkLayer::on_timeout(std::uint8_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    return;
  }
  Pending& p = it->second;
  if (p.attempts <= options_.max_retries) {
    if (trace_ != nullptr) {
      trace_->emit(network_.simulator().now(), sim::TraceCategory::kLink,
                   self_, "retransmit seq=" + std::to_string(seq));
    }
    transmit(seq);
    return;
  }
  stats_.send_failures++;
  auto done = std::move(p.done);
  pending_.erase(it);
  if (trace_ != nullptr) {
    trace_->emit(network_.simulator().now(), sim::TraceCategory::kLink,
                 self_, "give up seq=" + std::to_string(seq));
  }
  if (done) {
    done(false);
  }
}

void LinkLayer::send_ack(sim::NodeId to, std::uint8_t seq) {
  Writer w;
  AckPayload{seq}.write(w);
  stats_.acks_sent++;
  send_frame(to, sim::AmType::kAck, w.take());
}

bool* LinkLayer::find_duplicate(sim::NodeId from, std::uint8_t seq,
                                bool acked) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from.value) << 8) | seq;
  const sim::SimTime now = network_.simulator().now();
  const auto it =
      std::find_if(dedup_.begin(), dedup_.end(),
                   [key](const DedupEntry& e) { return e.key == key; });
  if (it != dedup_.end()) {
    if (now - it->seen_at <= options_.dedup_window) {
      it->seen_at = now;
      return &it->acked;
    }
    // Stale entry: the 8-bit sequence space wrapped. Treat as new.
    *it = DedupEntry{key, acked, now};
    return nullptr;
  }
  if (dedup_.size() < options_.dedup_cache) {
    dedup_.push_back(DedupEntry{key, acked, now});
  } else if (!dedup_.empty()) {
    dedup_[dedup_next_] = DedupEntry{key, acked, now};
    dedup_next_ = (dedup_next_ + 1) % dedup_.size();
  }
  return nullptr;
}

void LinkLayer::on_ack(const sim::Frame& frame) {
  Reader r(frame.payload);
  const AckPayload ack = AckPayload::read(r);
  if (!r.ok()) {
    return;
  }
  auto it = pending_.find(ack.acked_seq);
  if (it == pending_.end() || it->second.dst != frame.src) {
    return;  // stale or foreign ack
  }
  it->second.timer.cancel();
  auto done = std::move(it->second.done);
  pending_.erase(it);
  if (done) {
    done(true);
  }
}

void LinkLayer::on_frame(const sim::Frame& frame) {
  if (frame.am == sim::AmType::kAck) {
    on_ack(frame);
    return;
  }
  Reader r(frame.payload);
  const LinkHeader header = LinkHeader::read(r);
  if (!r.ok()) {
    return;
  }
  std::span<const std::uint8_t> inner(
      frame.payload.data() + LinkHeader::kWireSize,
      frame.payload.size() - LinkHeader::kWireSize);
  if (header.has_piggyback) {
    if (inner.size() < BeaconPayload::kWireSize) {
      return;  // malformed: flagged but truncated
    }
    // Split off the trailing beacon and feed it to the neighbour table
    // first, so the frame's own handler sees the refreshed entry.
    const auto piggyback = inner.last(BeaconPayload::kWireSize);
    inner = inner.first(inner.size() - BeaconPayload::kWireSize);
    if (piggyback_sink_) {
      piggyback_sink_(frame.src, piggyback);
    }
  }
  const auto it = handlers_.find(frame.am);

  if (!header.wants_ack) {
    if (it != handlers_.end() && it->second) {
      it->second(frame.src, inner);
    }
    return;
  }

  // Acked path: duplicates are re-acked (if the original was accepted) but
  // not re-delivered; fresh frames are acked only when the handler accepts.
  if (bool* acked = find_duplicate(frame.src, header.seq, false);
      acked != nullptr) {
    stats_.duplicates_dropped++;
    if (*acked) {
      send_ack(frame.src, header.seq);
    }
    return;
  }
  const bool accepted =
      (it != handlers_.end() && it->second) ? it->second(frame.src, inner)
                                            : false;
  if (accepted) {
    send_ack(frame.src, header.seq);
  }
  // Update the remembered entry's acked flag.
  if (bool* acked = find_duplicate(frame.src, header.seq, accepted);
      acked != nullptr) {
    *acked = accepted;
  }
}

}  // namespace agilla::net

// Beacon-based neighbour discovery — the paper's "acquaintance list"
// (Sec. 2.2: "Agilla provides one-hop neighbor discovery using beacons. The
// one-hop neighbor information is stored in an acquaintance list and is
// continuously updated").
//
// Beyond the paper, beacons carry the energy state the routing and LPL
// layers need (residual battery, LPL check period — see BeaconPayload),
// and under `Options::suppression` the table implements the two
// beacon-budget optimisations DESIGN.md's "Routing & LPL" chapter
// documents:
//  * exponential beacon backoff (base period -> max_beacon_period) while
//    the acquaintance list and the advertised self-state are stable; any
//    membership change or a material residual/period change resets the
//    period to the base. The current backoff exponent is advertised in
//    the beacon so listeners scale their expiry horizon to the sender's
//    actual interval.
//  * piggybacking: outgoing data frames carry the same 7-byte payload
//    (wired through LinkLayer::set_piggyback by the middleware), so
//    active neighbours stay fresh without any beacon at all.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/link_layer.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace agilla::net {

struct NeighborEntry {
  sim::NodeId id;
  sim::Location location;
  sim::SimTime last_heard = 0;
  /// Advertised residual energy (encode_residual; 255 = full/mains).
  std::uint8_t residual = BeaconPayload::kResidualFull;
  /// Advertised LPL check period in wake-time units (1 = always on).
  std::uint8_t period_units = 1;
  /// The sender's beacon interval implied by its advertised backoff
  /// exponent — the expiry clock for this entry.
  sim::SimTime beacon_interval = 0;

  [[nodiscard]] double residual_frac() const {
    return decode_residual(residual);
  }
};

/// What this node advertises about itself in beacons and piggybacks
/// (location is added by the table; freshness comes from the provider).
struct BeaconSelfState {
  std::uint8_t residual = BeaconPayload::kResidualFull;
  std::uint8_t period_units = 1;
};

class NeighborTable {
 public:
  struct Options {
    sim::SimTime beacon_period = 1 * sim::kSecond;
    /// Entries older than `expiry_periods * (sender's advertised beacon
    /// interval)` are evicted.
    std::uint32_t expiry_periods = 3;
    std::size_t capacity = 16;  ///< acquaintance-list slots on the mote
    /// Beacon suppression: exponential backoff while stable + piggyback.
    bool suppression = false;
    sim::SimTime max_beacon_period = 8 * sim::kSecond;
    /// A residual drop of at least this many quantization steps (13/255
    /// ~ 5 %) is "material": it resets the beacon backoff so routers
    /// learn about draining relays promptly.
    std::uint8_t residual_restep = 13;
  };

  using SelfStateFn = std::function<BeaconSelfState()>;
  /// Fired when a NEW neighbour enters the table (not on refresh) — the
  /// middleware turns this into a fresh <"ctx", loc> tuple so deployment
  /// agents can re-flood onto rebooted nodes.
  using DiscoveryHandler =
      std::function<void(sim::NodeId, sim::Location)>;

  NeighborTable(sim::Network& network, LinkLayer& link, sim::Location self);
  NeighborTable(sim::Network& network, LinkLayer& link, sim::Location self,
                Options options, sim::Trace* trace = nullptr);

  /// Start periodic beaconing (first beacon after a random sub-period
  /// offset so co-located nodes do not synchronize).
  void start();
  void stop();

  void set_self_state(SelfStateFn fn) { self_state_ = std::move(fn); }
  void set_discovery_handler(DiscoveryHandler handler) {
    discovery_ = std::move(handler);
  }

  /// Entries sorted by node id (stable order for the getnbr instruction).
  [[nodiscard]] const std::vector<NeighborEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::optional<NeighborEntry> by_index(std::size_t i) const;
  [[nodiscard]] std::optional<NeighborEntry> by_id(sim::NodeId id) const;
  [[nodiscard]] std::optional<NeighborEntry> random(sim::Rng& rng) const;

  /// Neighbour strictly closest to `dest` (used by greedy routing).
  [[nodiscard]] std::optional<NeighborEntry> closest_to(
      sim::Location dest) const;

  /// The LPL preamble a frame to `dst` must pay, from the destination's
  /// advertised check period (max over all entries for broadcast).
  /// nullopt when nothing is known — the sender falls back to its own
  /// schedule.
  [[nodiscard]] std::optional<sim::SimTime> preamble_extension_for(
      sim::NodeId dst, sim::SimTime wake_time) const;

  /// The node's current beacon payload bytes (piggyback provider).
  [[nodiscard]] std::vector<std::uint8_t> make_piggyback() const;
  /// Consumes a piggybacked beacon from a data frame (piggyback sink).
  void on_piggyback(sim::NodeId from, std::span<const std::uint8_t> bytes);

  /// Force-insert an entry (tests / warm start).
  void insert(sim::NodeId id, sim::Location location);
  void insert(sim::NodeId id, sim::Location location, std::uint8_t residual,
              std::uint8_t period_units);

  /// Forgets every acquaintance (node death wipes the mote's RAM; a
  /// rebooted node relearns its neighbourhood from beacons).
  void clear() {
    entries_.clear();
    backoff_exp_ = 0;
  }

  /// The interval until this node's next beacon (base << backoff).
  [[nodiscard]] sim::SimTime current_beacon_interval() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void send_beacon();
  void on_beacon(sim::NodeId from, std::span<const std::uint8_t> payload);
  void upsert(sim::NodeId from, const BeaconPayload& beacon);
  [[nodiscard]] std::vector<std::uint8_t> payload_for(
      const BeaconSelfState& state) const;
  void expire();
  void schedule_expiry_sweep();
  [[nodiscard]] BeaconSelfState advertised_state() const;
  [[nodiscard]] sim::SimTime interval_for_exp(std::uint32_t exp) const;

  sim::Network& network_;
  LinkLayer& link_;
  sim::Location self_;
  Options options_;
  sim::Trace* trace_;
  SelfStateFn self_state_;
  DiscoveryHandler discovery_;
  std::vector<NeighborEntry> entries_;
  sim::EventHandle beacon_timer_;
  sim::EventHandle expiry_timer_;
  bool running_ = false;
  // Suppression state: exponent of the current backoff, whether the
  // table changed since the last beacon, and what that beacon advertised.
  std::uint32_t backoff_exp_ = 0;
  bool table_changed_ = false;
  BeaconSelfState last_advertised_;
};

}  // namespace agilla::net

// Beacon-based neighbour discovery — the paper's "acquaintance list"
// (Sec. 2.2: "Agilla provides one-hop neighbor discovery using beacons. The
// one-hop neighbor information is stored in an acquaintance list and is
// continuously updated").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/link_layer.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace agilla::net {

struct NeighborEntry {
  sim::NodeId id;
  sim::Location location;
  sim::SimTime last_heard = 0;
};

class NeighborTable {
 public:
  struct Options {
    sim::SimTime beacon_period = 1 * sim::kSecond;
    /// Entries older than `expiry_periods * beacon_period` are evicted.
    std::uint32_t expiry_periods = 3;
    std::size_t capacity = 16;  ///< acquaintance-list slots on the mote
  };

  NeighborTable(sim::Network& network, LinkLayer& link, sim::Location self);
  NeighborTable(sim::Network& network, LinkLayer& link, sim::Location self,
                Options options, sim::Trace* trace = nullptr);

  /// Start periodic beaconing (first beacon after a random sub-period
  /// offset so co-located nodes do not synchronize).
  void start();
  void stop();

  /// Entries sorted by node id (stable order for the getnbr instruction).
  [[nodiscard]] const std::vector<NeighborEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::optional<NeighborEntry> by_index(std::size_t i) const;
  [[nodiscard]] std::optional<NeighborEntry> by_id(sim::NodeId id) const;
  [[nodiscard]] std::optional<NeighborEntry> random(sim::Rng& rng) const;

  /// Neighbour strictly closest to `dest` (used by greedy routing).
  [[nodiscard]] std::optional<NeighborEntry> closest_to(
      sim::Location dest) const;

  /// Force-insert an entry (tests / warm start).
  void insert(sim::NodeId id, sim::Location location);

  /// Forgets every acquaintance (node death wipes the mote's RAM; a
  /// rebooted node relearns its neighbourhood from beacons).
  void clear() { entries_.clear(); }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void send_beacon();
  void on_beacon(sim::NodeId from, std::span<const std::uint8_t> payload);
  void expire();

  sim::Network& network_;
  LinkLayer& link_;
  sim::Location self_;
  Options options_;
  sim::Trace* trace_;
  std::vector<NeighborEntry> entries_;
  sim::EventHandle beacon_timer_;
  bool running_ = false;
};

}  // namespace agilla::net

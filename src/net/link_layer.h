// The link layer: AM dispatch, optional per-hop acknowledgements with
// retransmission, and duplicate suppression.
//
// Parameters follow paper Sec. 3.2: "If a one-hop acknowledgement is not
// received within 0.1 seconds, the message is retransmitted. This repeats
// up for four times."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace agilla::net {

class LinkLayer {
 public:
  struct Options {
    sim::SimTime ack_timeout = 100 * sim::kMillisecond;
    int max_retries = 4;          ///< retransmissions after the first send
    std::size_t dedup_cache = 16; ///< remembered (src, seq) pairs
    /// Entries older than this are ignored: duplicates only ever arrive
    /// within the retransmission window (max_retries x ack_timeout), and
    /// the 8-bit sequence number wraps, so a stale entry would otherwise
    /// falsely suppress (and falsely re-ack) a NEW message that happens to
    /// reuse the sequence value — silently losing it.
    sim::SimTime dedup_window = 3 * sim::kSecond;
  };

  struct Stats {
    std::uint64_t data_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t send_failures = 0;   ///< acked sends that gave up
    std::uint64_t duplicates_dropped = 0;
  };

  /// `frame.src` is the one-hop sender; handlers get the de-duplicated
  /// inner payload (link header already stripped). The return value
  /// controls acknowledgement of acked sends: a handler that cannot accept
  /// the message returns false and NO ack is sent, so the sender's
  /// retransmissions eventually report failure (this is how a migration
  /// receiver that aborted a stalled transfer pushes the failure back to
  /// the node holding the agent).
  using Handler =
      std::function<bool(sim::NodeId from, std::span<const std::uint8_t>)>;
  using SendCallback = std::function<void(bool delivered)>;

  /// Per-destination LPL preamble extension (adaptive LPL: size the
  /// preamble for the receiver's advertised check period, not a global
  /// constant). nullopt = fall back to the sender's own schedule.
  using PreambleOracle =
      std::function<std::optional<sim::SimTime>(sim::NodeId dst)>;

  /// Beacon suppression: the provider supplies the node's current
  /// BeaconPayload bytes to append to outgoing data frames (empty = skip),
  /// the sink consumes one arriving piggybacked on a neighbour's frame.
  using PiggybackProvider = std::function<std::vector<std::uint8_t>()>;
  using PiggybackSink =
      std::function<void(sim::NodeId from, std::span<const std::uint8_t>)>;

  LinkLayer(sim::Network& network, sim::NodeId self);
  LinkLayer(sim::Network& network, sim::NodeId self, Options options,
            sim::Trace* trace = nullptr);

  LinkLayer(const LinkLayer&) = delete;
  LinkLayer& operator=(const LinkLayer&) = delete;

  void register_handler(sim::AmType am, Handler handler);

  /// Fire-and-forget send (no ack, no retransmission). `dst` may be
  /// kBroadcastNode.
  void send_unacked(sim::NodeId dst, sim::AmType am,
                    std::vector<std::uint8_t> payload);

  /// Reliable one-hop send: retransmits on ack timeout, then reports
  /// success/failure through `done`. Multiple sends may be outstanding.
  void send_acked(sim::NodeId dst, sim::AmType am,
                  std::vector<std::uint8_t> payload, SendCallback done);

  /// Must be called once after construction (wires the radio upcall).
  void attach();

  void set_preamble_oracle(PreambleOracle oracle) {
    preamble_oracle_ = std::move(oracle);
  }
  void set_piggyback(PiggybackProvider provider, PiggybackSink sink) {
    piggyback_provider_ = std::move(provider);
    piggyback_sink_ = std::move(sink);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] sim::NodeId self() const { return self_; }

 private:
  struct Pending {
    sim::NodeId dst;
    sim::AmType am;
    std::vector<std::uint8_t> payload;  // includes link header
    int attempts = 0;
    SendCallback done;
    sim::EventHandle timer;
  };

  void on_frame(const sim::Frame& frame);
  void on_ack(const sim::Frame& frame);
  void transmit(std::uint8_t seq);
  /// Builds the frame payload: link header (+ piggybacked beacon when the
  /// provider is set, the frame is not a beacon, and the budget allows).
  [[nodiscard]] std::vector<std::uint8_t> frame_payload(
      std::uint8_t seq, bool wants_ack, sim::AmType am,
      std::span<const std::uint8_t> payload) const;
  void send_frame(sim::NodeId dst, sim::AmType am,
                  std::vector<std::uint8_t> payload);
  void on_timeout(std::uint8_t seq);
  void send_ack(sim::NodeId to, std::uint8_t seq);
  /// Returns the acked-flag slot for a remembered (src, seq), or nullptr
  /// if this is the first sighting (which is then remembered).
  bool* find_duplicate(sim::NodeId from, std::uint8_t seq, bool acked);

  sim::Network& network_;
  sim::NodeId self_;
  Options options_;
  sim::Trace* trace_;
  struct DedupEntry {
    std::uint64_t key = 0;  // (src << 8) | seq
    bool acked = false;
    sim::SimTime seen_at = 0;
  };

  std::unordered_map<sim::AmType, Handler> handlers_;
  PreambleOracle preamble_oracle_;
  PiggybackProvider piggyback_provider_;
  PiggybackSink piggyback_sink_;
  std::unordered_map<std::uint8_t, Pending> pending_;
  std::vector<DedupEntry> dedup_;  // ring buffer
  std::size_t dedup_next_ = 0;
  std::uint8_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace agilla::net

#include "mate/mate_node.h"

#include <algorithm>

namespace agilla::mate {

MateNode::MateNode(sim::Network& network, sim::NodeId self,
                   const sim::SensorEnvironment* environment, Options options,
                   sim::Trace* trace)
    : network_(network),
      self_(self),
      environment_(environment),
      options_(options),
      trace_(trace),
      link_(network, self, net::LinkLayer::Options{}, trace) {
  link_.register_handler(
      sim::AmType::kMateCapsule,
      [this](sim::NodeId from, std::span<const std::uint8_t> p) {
        on_capsule(from, p);
        return true;
      });
}

void MateNode::start() {
  if (running_) {
    return;
  }
  running_ = true;
  link_.attach();
  const sim::SimTime offset =
      network_.simulator().node_rng(self_).uniform(options_.clock_period);
  clock_ = network_.simulator().schedule_in(offset, self_,
                                            [this] { run_clock(); });
}

void MateNode::install(const Capsule& capsule) {
  const auto slot = static_cast<std::size_t>(capsule.type);
  if (slot >= capsules_.size()) {
    return;
  }
  capsules_[slot] = capsule;
  stats_.capsules_installed++;
  if (trace_ != nullptr) {
    trace_->emit(network_.simulator().now(), sim::TraceCategory::kMate,
                 self_,
                 "installed capsule type " + std::to_string(slot) +
                     " v" + std::to_string(capsule.version));
  }
}

const Capsule* MateNode::capsule(CapsuleType type) const {
  const auto& slot = capsules_[static_cast<std::size_t>(type)];
  return slot.has_value() ? &*slot : nullptr;
}

std::uint8_t MateNode::version_of(CapsuleType type) const {
  const Capsule* c = capsule(type);
  return c == nullptr ? 0 : c->version;
}

void MateNode::run_clock() {
  if (!running_) {
    return;
  }
  if (const Capsule* clock_capsule = capsule(CapsuleType::kClock)) {
    stats_.clock_runs++;
    MateHost host;
    host.forw = [this] { broadcast_capsules(); };
    host.set_leds = [this](std::uint8_t v) { leds_ = v; };
    host.rand = [this] {
      return static_cast<std::uint16_t>(
          network_.simulator().node_rng(self_).next());
    };
    host.sense = [this]() -> std::int16_t {
      if (environment_ == nullptr) {
        return 0;
      }
      const double v = environment_->read(sim::SensorType::kTemperature,
                                          network_.info(self_).location,
                                          network_.simulator().now());
      return static_cast<std::int16_t>(
          std::clamp(v, -32768.0, 32767.0));
    };
    const MateVmResult result = run_capsule(*clock_capsule, host);
    if (result.error) {
      stats_.vm_errors++;
    }
  }
  clock_ = network_.simulator().schedule_in(options_.clock_period, self_,
                                            [this] { run_clock(); });
}

void MateNode::broadcast_capsules() {
  for (const auto& slot : capsules_) {
    if (!slot.has_value()) {
      continue;
    }
    net::Writer w;
    slot->write(w);
    stats_.capsules_broadcast++;
    link_.send_unacked(sim::kBroadcastNode, sim::AmType::kMateCapsule,
                       w.take());
  }
}

void MateNode::on_capsule(sim::NodeId /*from*/,
                          std::span<const std::uint8_t> payload) {
  net::Reader r(payload);
  const Capsule received = Capsule::read(r);
  if (!r.ok()) {
    return;
  }
  const Capsule* mine = capsule(received.type);
  if (mine == nullptr || received.newer_than(*mine)) {
    install(received);
    // Hearing brand-new code is worth reacting to promptly: Mate re-runs
    // the clock capsule (which contains forw) on its own schedule, so the
    // viral spread is paced by clock_period.
  }
}

}  // namespace agilla::mate

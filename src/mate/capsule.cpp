#include "mate/capsule.h"

#include <algorithm>
#include <cassert>

namespace agilla::mate {

void Capsule::write(net::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(version);
  w.u8(length);
  w.bytes(code);
}

Capsule Capsule::read(net::Reader& r) {
  Capsule c;
  c.type = static_cast<CapsuleType>(r.u8());
  c.version = r.u8();
  c.length = r.u8();
  r.bytes(c.code);
  if (c.length > kCapsuleCodeBytes) {
    c.length = kCapsuleCodeBytes;
  }
  return c;
}

Capsule make_capsule(CapsuleType type, std::uint8_t version,
                     std::span<const std::uint8_t> code) {
  assert(code.size() <= kCapsuleCodeBytes);
  Capsule c;
  c.type = type;
  c.version = version;
  c.length = static_cast<std::uint8_t>(code.size());
  std::copy(code.begin(), code.end(), c.code.begin());
  return c;
}

}  // namespace agilla::mate

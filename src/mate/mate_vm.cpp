#include "mate/mate_vm.h"

namespace agilla::mate {

MateVmResult run_capsule(const Capsule& capsule, const MateHost& host) {
  MateVmResult result;
  std::vector<std::int16_t> stack;
  stack.reserve(8);
  std::size_t pc = 0;

  auto pop = [&](std::int16_t* out) {
    if (stack.empty()) {
      return false;
    }
    *out = stack.back();
    stack.pop_back();
    return true;
  };

  while (pc < capsule.length) {
    const auto op = static_cast<MateOp>(capsule.code[pc]);
    ++pc;
    ++result.instructions;
    switch (op) {
      case MateOp::kHalt:
        result.halted = true;
        return result;
      case MateOp::kForw:
        if (host.forw) {
          host.forw();
        }
        break;
      case MateOp::kPushc:
        if (pc >= capsule.length) {
          result.error = true;
          return result;
        }
        stack.push_back(capsule.code[pc]);
        ++pc;
        break;
      case MateOp::kAdd: {
        std::int16_t a = 0;
        std::int16_t b = 0;
        if (!pop(&a) || !pop(&b)) {
          result.error = true;
          return result;
        }
        stack.push_back(static_cast<std::int16_t>(a + b));
        break;
      }
      case MateOp::kInc: {
        std::int16_t a = 0;
        if (!pop(&a)) {
          result.error = true;
          return result;
        }
        stack.push_back(static_cast<std::int16_t>(a + 1));
        break;
      }
      case MateOp::kPutLed: {
        std::int16_t a = 0;
        if (!pop(&a)) {
          result.error = true;
          return result;
        }
        if (host.set_leds) {
          host.set_leds(static_cast<std::uint8_t>(a & 0x7));
        }
        break;
      }
      case MateOp::kRand:
        stack.push_back(host.rand
                            ? static_cast<std::int16_t>(host.rand() & 0x7FFF)
                            : 0);
        break;
      case MateOp::kSense:
        stack.push_back(host.sense ? host.sense() : 0);
        break;
      case MateOp::kCopy:
        if (stack.empty()) {
          result.error = true;
          return result;
        }
        stack.push_back(stack.back());
        break;
      case MateOp::kPop: {
        std::int16_t a = 0;
        if (!pop(&a)) {
          result.error = true;
          return result;
        }
        break;
      }
      default:
        result.error = true;
        return result;
    }
  }
  return result;
}

}  // namespace agilla::mate

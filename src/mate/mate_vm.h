// A compact Mate-like stack interpreter. Just enough of the ASPLOS'02 ISA
// to express the paper's comparison point: a clock capsule that senses,
// blinks, and `forw`ards itself so new versions spread virally.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mate/capsule.h"

namespace agilla::mate {

enum class MateOp : std::uint8_t {
  kHalt = 0x00,
  kForw = 0x01,    ///< broadcast the running capsule (viral propagation)
  kPushc = 0x02,   ///< +1 operand byte
  kAdd = 0x03,
  kInc = 0x04,
  kPutLed = 0x05,
  kRand = 0x06,
  kSense = 0x07,   ///< reads the host's temperature equivalent
  kCopy = 0x08,
  kPop = 0x09,
};

/// Host services a capsule needs; provided by MateNode.
struct MateHost {
  std::function<void()> forw;                ///< re-broadcast capsules
  std::function<std::int16_t()> sense;
  std::function<void(std::uint8_t)> set_leds;
  std::function<std::uint16_t()> rand;
};

struct MateVmResult {
  std::size_t instructions = 0;
  bool halted = false;   ///< saw an explicit halt
  bool error = false;    ///< stack fault / undefined opcode
};

/// Interprets one capsule to completion (capsules are short and run to
/// halt/end; Mate has no blocking ops in this subset).
MateVmResult run_capsule(const Capsule& capsule, const MateHost& host);

}  // namespace agilla::mate

// A Mate-style code capsule (Levis & Culler, ASPLOS'02 — the baseline the
// paper compares against in Secs. 1 and 5).
//
// "applications are divided into capsules that are flooded throughout the
// network. Each node stores the most recent version of each capsule and
// runs the application by interpreting the instructions within them."
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/serialize.h"

namespace agilla::mate {

/// Capsule roles, mirroring Mate's clock/receive/send/subroutine split.
enum class CapsuleType : std::uint8_t {
  kClock = 0,    ///< runs on every timer tick
  kReceive = 1,  ///< runs on packet reception
  kSend = 2,
  kSub0 = 3,     ///< subroutine
};

inline constexpr std::size_t kCapsuleTypes = 4;
inline constexpr std::size_t kCapsuleCodeBytes = 24;  ///< as in Mate

struct Capsule {
  CapsuleType type = CapsuleType::kClock;
  std::uint8_t version = 0;
  std::uint8_t length = 0;
  std::array<std::uint8_t, kCapsuleCodeBytes> code{};

  static constexpr std::size_t kWireSize = 3 + kCapsuleCodeBytes;

  void write(net::Writer& w) const;
  static Capsule read(net::Reader& r);

  [[nodiscard]] bool newer_than(const Capsule& other) const {
    // Wrapping 8-bit version comparison (Mate uses wrapping counters).
    return static_cast<std::int8_t>(version - other.version) > 0;
  }
};

/// Builds a capsule from Mate bytecode (see mate_vm.h for the ISA).
Capsule make_capsule(CapsuleType type, std::uint8_t version,
                     std::span<const std::uint8_t> code);

}  // namespace agilla::mate

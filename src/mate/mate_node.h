// Per-node Mate runtime: capsule store, viral code distribution, and the
// periodic clock-capsule execution.
//
// Distribution follows Mate's model: executing `forw` broadcasts the
// node's capsules; a receiver installs any capsule whose version is newer
// than its own copy and, because the new clock capsule itself contains
// `forw`, keeps spreading it. Reprogramming the network = injecting a
// higher-version capsule at one node (paper Secs. 1/5: Mate floods the
// whole network and supports a single application at a time).
#pragma once

#include <array>
#include <optional>

#include "mate/mate_vm.h"
#include "net/link_layer.h"
#include "sim/network.h"
#include "sim/environment.h"

namespace agilla::mate {

class MateNode {
 public:
  struct Options {
    sim::SimTime clock_period = 1 * sim::kSecond;  ///< clock capsule cadence
  };

  struct Stats {
    std::uint64_t capsules_broadcast = 0;
    std::uint64_t capsules_installed = 0;  ///< newer versions adopted
    std::uint64_t clock_runs = 0;
    std::uint64_t vm_errors = 0;
  };

  MateNode(sim::Network& network, sim::NodeId self,
           const sim::SensorEnvironment* environment, Options options,
           sim::Trace* trace = nullptr);

  MateNode(const MateNode&) = delete;
  MateNode& operator=(const MateNode&) = delete;

  /// Attaches the radio and starts the clock.
  void start();

  /// Installs a capsule locally (base-station injection).
  void install(const Capsule& capsule);

  [[nodiscard]] const Capsule* capsule(CapsuleType type) const;
  [[nodiscard]] std::uint8_t version_of(CapsuleType type) const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint8_t leds() const { return leds_; }
  [[nodiscard]] sim::NodeId node_id() const { return self_; }

 private:
  void run_clock();
  void broadcast_capsules();
  void on_capsule(sim::NodeId from, std::span<const std::uint8_t> payload);

  sim::Network& network_;
  sim::NodeId self_;
  const sim::SensorEnvironment* environment_;
  Options options_;
  sim::Trace* trace_;
  net::LinkLayer link_;
  std::array<std::optional<Capsule>, kCapsuleTypes> capsules_;
  sim::EventHandle clock_;
  std::uint8_t leds_ = 0;
  bool running_ = false;
  Stats stats_;
};

}  // namespace agilla::mate

#include "api/deployment.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "api/knob_registry.h"
#include "core/assembler.h"
#include "sim/radio_model.h"

namespace agilla::api {

Deployment::Deployment(DeploymentOptions options,
                       std::vector<Observer*> observers)
    : options_(options),
      simulator_(options.seed),
      network_(simulator_,
               std::make_unique<sim::GridNeighborRadio>(
                   sim::GridNeighborRadio::Options{
                       .spacing = 1.0,
                       .eight_connected = false,
                       .packet_loss = options.packet_loss,
                       .per_byte_loss = options.per_byte_loss})) {
  for (Observer* observer : observers) {
    bus_.subscribe(*observer);
  }
  options_.config.tuple_space.store_kind = options_.store;
  options_.config.engine.dispatch = options_.vm_dispatch == 0
                                        ? core::DispatchMode::kSwitch
                                        : core::DispatchMode::kThreaded;
  topology_ = sim::make_grid(network_, options_.width, options_.height);

  // Shard the event engine while the world is still inert: every node
  // exists, no node-affine event is scheduled yet. The EventBus contract
  // (subscription-order dispatch on one thread) cannot hold when taps
  // fire from shard workers, so observers and sharding are exclusive.
  if (options_.sim_shards > 1 && !observers.empty()) {
    throw std::invalid_argument(
        "sim_shards > 1 is incompatible with bus observers");
  }
  network_.configure_shards(options_.sim_shards);
  shard_deaths_.resize(simulator_.shard_count());
  shard_reboots_.assign(simulator_.shard_count(), 0);

  // Routing policy (the route_policy / energy_weight knobs).
  options_.config.routing.policy =
      options_.route_policy == 1 ? net::RoutePolicy::kMaxMinResidual
                                 : net::RoutePolicy::kGreedyGeo;
  options_.config.routing.energy_weight = options_.energy_weight;

  const bool lpl_active =
      options_.duty_cycle < 1.0 || options_.adaptive_lpl;
  const bool wants_energy = options_.battery_mj > 0.0 || lpl_active;
  if (wants_energy) {
    energy::EnergyOptions energy;
    energy.battery_mj = options_.battery_mj;
    energy.duty.listen_fraction = options_.duty_cycle;
    energy.duty.adaptive = options_.adaptive_lpl;
    energy.duty.min_fraction = options_.duty_min;
    energy.duty.max_fraction = options_.duty_max;
    energy.duty.tx_busy_depth =
        static_cast<std::uint32_t>(options_.lpl_tx_busy);
    energy.gateway_powered = options_.gateway_powered;
    energy.overhearing = options_.overhearing;
    network_.attach_energy(energy);
    // LPL stretches every frame by one preamble extension; the per-hop
    // and end-to-end timers must absorb a data frame plus its ack, or
    // every exchange degenerates into retransmissions. Under adaptive
    // LPL the bound is the controller's duty floor.
    const sim::SimTime ext =
        network_.duty_cycler().max_preamble_extension();
    if (ext > 0) {
      options_.config.link.ack_timeout += 2 * ext;
      options_.config.migration.receiver_abort += 4 * ext;
      options_.config.remote_ts.reply_timeout += 4 * ext;
    }
  }
  // Beacon suppression defaults to on exactly when LPL makes beacons
  // expensive (each one pays the preamble extension).
  options_.config.neighbors.suppression =
      options_.beacon_suppression == 1 ||
      (options_.beacon_suppression == -1 && lpl_active);

  motes_.reserve(topology_.nodes.size());
  for (const sim::NodeId id : topology_.nodes) {
    motes_.push_back(std::make_unique<core::AgillaMiddleware>(
        network_, id, &environment_, options_.config));
    wire_instrumentation();
    motes_.back()->start();
  }

  // Node lifecycle: deaths tear the mote's middleware down through the
  // same path the failure-injection tests use; reboots bring it back
  // with empty RAM. The death log stays a facade responsibility; the
  // bus re-publishes both transitions to subscribers.
  network_.set_node_down_handler(
      [this](sim::NodeId id, sim::NodeDownReason reason) {
        shard_deaths_[simulator_.shard_of(id)].push_back(
            DeathEvent{id, simulator_.now(), reason});
        motes_.at(id.value)->power_down();
        bus_.publish_node_down(
            NodeLifecycleEvent{simulator_.now(), id, reason});
      });
  network_.set_node_up_handler([this](sim::NodeId id) {
    ++shard_reboots_[simulator_.shard_of(id)];
    motes_.at(id.value)->power_up();
    bus_.publish_node_up(NodeLifecycleEvent{simulator_.now(), id, {}});
  });
  network_.set_frame_tx_tap([this](const sim::Frame& frame) {
    bus_.publish_frame_tx(
        FrameEvent{simulator_.now(), &frame, sim::NodeId{}, false});
  });
  network_.set_frame_rx_tap(
      [this](const sim::Frame& frame, sim::NodeId receiver, bool lost) {
        bus_.publish_frame_rx(
            FrameEvent{simulator_.now(), &frame, receiver, lost});
      });
  network_.set_settle_tap([this] {
    bus_.publish_battery_settle(BatterySettleEvent{simulator_.now()});
  });
  if (options_.churn_rate > 0.0) {
    network_.enable_churn(sim::ChurnOptions{
        .crash_rate_per_node_s = options_.churn_rate,
        .reboot_after = static_cast<sim::SimTime>(
            options_.churn_reboot_s * 1e6),
        .spare_gateway = options_.gateway_powered});
  }

  if (options_.warmup > 0) {
    simulator_.run_for(options_.warmup);
  }
}

/// Wires the just-created mote's lifecycle and tuple taps onto the bus
/// (called before start(), so context-seeding tuple ops are observed).
void Deployment::wire_instrumentation() {
  core::AgillaMiddleware& mote = *motes_.back();
  const sim::NodeId id = mote.node_id();
  mote.engine().set_hooks(core::EngineHooks{
      .on_spawn =
          [this, id](core::AgentId agent, bool via_migration) {
            bus_.publish_agent_spawn(AgentSpawnEvent{
                simulator_.now(), id, agent.value, via_migration});
          },
      .on_kill =
          [this, id](core::AgentId agent, std::string_view reason) {
            bus_.publish_agent_kill(AgentKillEvent{
                simulator_.now(), id, agent.value, reason});
          },
      .on_migrate =
          [this, id](core::AgentId agent, sim::Location dest) {
            bus_.publish_agent_migrate(AgentMigrateEvent{
                simulator_.now(), id, agent.value, dest});
          },
      .on_block =
          [this, id](core::AgentId agent, std::string_view reason) {
            bus_.publish_agent_block(AgentBlockEvent{
                simulator_.now(), id, agent.value, reason});
          },
      .on_resume =
          [this, id](core::AgentId agent) {
            bus_.publish_agent_resume(
                AgentResumeEvent{simulator_.now(), id, agent.value});
          },
      // The instruction taps stay unset here: tools (agilla_grade, the
      // trace tests) add them later through engine().hooks().
      .on_pre_insn = {},
      .on_post_insn = {}});
  mote.tuple_space().set_op_tap(
      [this, id](ts::TupleSpaceOp op, const ts::Tuple& tuple) {
        bus_.publish_tuple_op(
            TupleOpEvent{simulator_.now(), id, op, &tuple});
      });
}

std::optional<core::AgentId> Deployment::inject_file(
    const std::string& path, std::size_t mote_index) {
  core::AssemblyResult assembled = core::assemble_file(path);
  if (!assembled.ok()) {
    throw std::runtime_error("inject_file(" + path + ") failed:\n" +
                             assembled.error_text());
  }
  return motes_.at(mote_index)->inject(assembled.code);
}

core::AgillaMiddleware& Deployment::mote_at(double x, double y) {
  return *motes_.at(
      sim::nearest_node(network_, topology_, sim::Location{x, y}).value);
}

void Deployment::clear_all_stores() {
  for (const auto& mote : motes_) {
    mote->tuple_space().store().clear();
  }
}

std::optional<sim::SimTime> Deployment::await_tuple(
    core::AgillaMiddleware& mote, const ts::Template& templ,
    sim::SimTime timeout, sim::SimTime poll_step) {
  const ts::CompiledTemplate compiled(templ);  // one compile, many polls
  const sim::SimTime deadline = simulator_.now() + timeout;
  while (simulator_.now() < deadline) {
    if (mote.tuple_space().rdp(compiled).has_value()) {
      return simulator_.now();
    }
    simulator_.run_for(poll_step);
  }
  return std::nullopt;
}

std::size_t Deployment::motes_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    if (mote->tuple_space().rdp(compiled).has_value()) {
      ++count;
    }
  }
  return count;
}

std::size_t Deployment::tuples_matching(const ts::Template& templ) const {
  const ts::CompiledTemplate compiled(templ);  // one compile, every mote
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->tuple_space().tcount(compiled);
  }
  return count;
}

std::size_t Deployment::agent_count() const {
  std::size_t count = 0;
  for (const auto& mote : motes_) {
    count += mote->agents().count();
  }
  return count;
}

std::vector<Deployment::DeathEvent> Deployment::death_log() const {
  std::vector<DeathEvent> merged;
  for (const auto& shard : shard_deaths_) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  // (time, node) is exactly the serial emission order: same-time deaths
  // execute in stream order (= node order), and a settle tick kills in
  // node order — so the merge is shard-count invariant.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const DeathEvent& a, const DeathEvent& b) {
                     return std::tie(a.at, a.node.value) <
                            std::tie(b.at, b.node.value);
                   });
  return merged;
}

std::size_t Deployment::reboot_count() const {
  std::size_t total = 0;
  for (const std::size_t count : shard_reboots_) {
    total += count;
  }
  return total;
}

double Deployment::total_drained_mj(energy::EnergyComponent component) {
  network_.settle_batteries();
  double total = 0.0;
  for (const sim::NodeId id : topology_.nodes) {
    if (const energy::Battery* battery = network_.battery(id);
        battery != nullptr) {
      total += battery->drained_mj(component);
    }
  }
  return total;
}

// ----------------------------------------------------- SimulationBuilder

SimulationBuilder& SimulationBuilder::grid(std::size_t width,
                                           std::size_t height) {
  options_.width = width;
  options_.height = height;
  return *this;
}

SimulationBuilder& SimulationBuilder::packet_loss(double loss) {
  options_.packet_loss = loss;
  return *this;
}

SimulationBuilder& SimulationBuilder::per_byte_loss(double loss) {
  options_.per_byte_loss = loss;
  return *this;
}

SimulationBuilder& SimulationBuilder::seed(std::uint64_t seed) {
  options_.seed = seed;
  return *this;
}

SimulationBuilder& SimulationBuilder::store(ts::StoreKind kind) {
  options_.store = kind;
  return *this;
}

SimulationBuilder& SimulationBuilder::warmup(sim::SimTime duration) {
  options_.warmup = duration;
  return *this;
}

SimulationBuilder& SimulationBuilder::config(
    const core::AgillaConfig& config) {
  options_.config = config;
  return *this;
}

SimulationBuilder& SimulationBuilder::set(std::string_view name,
                                          double value) {
  const KnobInfo* knob = find_knob(name);
  if (knob == nullptr) {
    throw std::invalid_argument("unknown knob: " + std::string(name));
  }
  if (const std::string error = validate_knob(*knob, value);
      !error.empty()) {
    throw std::invalid_argument(error);
  }
  if (knob->apply != nullptr) {
    knob->apply(options_, value);
  } else {
    params_[std::string(name)] = value;
  }
  return *this;
}

double SimulationBuilder::knob(std::string_view name) const {
  const KnobInfo* knob = find_knob(name);
  if (knob == nullptr) {
    throw std::invalid_argument("unknown knob: " + std::string(name));
  }
  if (knob->read != nullptr) {
    return knob->read(options_);
  }
  const auto it = params_.find(std::string(name));
  return it == params_.end() ? knob->def : it->second;
}

SimulationBuilder& SimulationBuilder::observe(Observer& observer) {
  observers_.push_back(&observer);
  return *this;
}

std::unique_ptr<Deployment> SimulationBuilder::build() const {
  return std::make_unique<Deployment>(options_, observers_);
}

}  // namespace agilla::api

// The public embedding facade of the Agilla reproduction.
//
// A Deployment composes everything a simulated Agilla mesh needs —
// simulator, lossy grid radio, sensor environment, one AgillaMiddleware
// per mote, the energy/churn subsystems, and the instrumentation
// EventBus — from one DeploymentOptions value, without the caller ever
// wiring harness internals. Third-party workloads (the `examples/`
// programs), the experiment harness' scenarios, and future backends all
// program against this class.
//
// DeploymentOptions is populated three ways, all equivalent:
//   1. directly, by designated initializer;
//   2. through SimulationBuilder's typed setters;
//   3. by name through the KnobRegistry (SimulationBuilder::set,
//      api::apply_knobs) — the path the CLI's --axis/--param take.
// The registry (api/knob_registry.h) is the single definition of every
// named knob: defaults here and ranges/units/docs there are asserted
// consistent by tests/test_api.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/events.h"
#include "core/injector.h"
#include "core/middleware.h"
#include "sim/environment.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace agilla::api {

/// Loss calibration shared with the paper experiments (see bench_common.h
/// for the derivation): per-packet floor + per-byte fade.
inline constexpr double kDefaultLoss = 0.02;
inline constexpr double kDefaultPerByteLoss = 0.0016;

struct DeploymentOptions {
  std::size_t width = 5;
  std::size_t height = 5;
  double packet_loss = kDefaultLoss;
  double per_byte_loss = 0.0;
  std::uint64_t seed = 1;
  ts::StoreKind store = ts::StoreKind::kLinear;
  core::AgillaConfig config{};
  /// Neighbour-discovery warm-up run before the constructor returns.
  sim::SimTime warmup = 5 * sim::kSecond;
  // Energy & lifetime (src/energy/): 0 / 1.0 / 0 keeps the classic
  // immortal, always-on mesh. The registry knobs battery_mj / duty_cycle
  // / churn_rate land here via apply_knobs().
  double battery_mj = 0.0;   ///< per-node battery; <= 0 = immortal
  double duty_cycle = 1.0;   ///< LPL listen fraction; >= 1 = always on
  double churn_rate = 0.0;   ///< Poisson crashes per node per second
  double churn_reboot_s = 0.0;  ///< crashed nodes reboot after this; 0 = never
  // Energy-aware networking (registry knobs route_policy / energy_weight /
  // adaptive_lpl / duty_min / duty_max / beacon_suppression).
  int route_policy = 0;      ///< 0 = greedy-geo, 1 = max-min residual
  double energy_weight = 0.5;   ///< distance/energy weight for max-min
  bool adaptive_lpl = false;    ///< per-node traffic-adaptive LPL
  double duty_min = 0.02;       ///< adaptive controller duty floor
  double duty_max = 0.5;        ///< adaptive controller duty ceiling
  /// Congestion coupling for adaptive LPL (registry knob lpl_tx_busy):
  /// a settle tick with at least this many pending TX frames counts as
  /// busy, so a backlogged node keeps its duty up. 0 = off.
  int lpl_tx_busy = 0;
  /// Beacon suppression (backoff + piggyback): -1 = auto (on whenever
  /// LPL is active), 0 = off, 1 = on.
  int beacon_suppression = -1;
  /// Mains-powered gateway: node 0 gets no battery and is spared from
  /// churn. False makes the sink a battery mote like every other node.
  bool gateway_powered = true;
  /// Charge RX to awake in-range nodes that filter a unicast frame out
  /// (off = the paper model; needs batteries to have any effect).
  bool overhearing = false;
  /// VM bytecode execution strategy (registry knob vm_dispatch): 0 = the
  /// reference switch interpreter, 1 = pre-decoded threaded dispatch.
  /// Simulated behaviour is byte-identical; only host speed differs.
  int vm_dispatch = 1;
  /// Spatial shards of the event engine (registry knob sim_shards): the
  /// mesh is split into contiguous x-strips, each drained by its own
  /// worker inside conservative lookahead epochs. 1 = the exact serial
  /// loop; any K produces byte-identical results (DESIGN.md "Sharded
  /// event engine"). Only host speed differs. Incompatible with bus
  /// observers (the EventBus is not thread-safe): Deployment throws if
  /// both are requested.
  std::size_t sim_shards = 1;
};

/// A fully composed Agilla mesh: the unit every workload runs against,
/// and the unit the harness thread pool executes (one Deployment per
/// trial, no state shared between trials).
class Deployment {
 public:
  /// Builds and warms up the mesh. `observers` are subscribed to the
  /// event bus before any wiring, so they see warm-up traffic too.
  explicit Deployment(DeploymentOptions options,
                      std::vector<Observer*> observers = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] sim::Network& network() { return network_; }
  [[nodiscard]] sim::SensorEnvironment& environment() {
    return environment_;
  }
  [[nodiscard]] const sim::Topology& topology() const { return topology_; }
  [[nodiscard]] const DeploymentOptions& options() const { return options_; }

  /// The instrumentation bus. Subscribe/unsubscribe at any point; events
  /// are dispatched in subscription order (determinism contract in
  /// api/events.h).
  [[nodiscard]] EventBus& bus() { return bus_; }

  [[nodiscard]] std::size_t mote_count() const { return motes_.size(); }
  [[nodiscard]] core::AgillaMiddleware& mote(std::size_t index) {
    return *motes_.at(index);
  }
  [[nodiscard]] core::AgillaMiddleware& mote_at(double x, double y);

  /// Base station wired to mote 0 (the grid origin corner). BaseStation
  /// is a value-semantic handle onto the gateway mote.
  [[nodiscard]] core::BaseStation base() {
    return core::BaseStation(*motes_.front());
  }

  /// Advances virtual time (sugar for simulator().run_for).
  void run_for(sim::SimTime duration) { simulator_.run_for(duration); }

  /// Assembles a `.aga` source file (macros, includes, `.tuple` literals —
  /// see core/assembler.h) and injects the agent on `mote_index` (default:
  /// the gateway mote). Throws std::runtime_error carrying the assembler's
  /// file:line diagnostics when the source does not assemble; returns
  /// nullopt when the mote is out of resources.
  std::optional<core::AgentId> inject_file(const std::string& path,
                                           std::size_t mote_index = 0);

  /// Empties every mote's tuple store (between dependent sub-runs, so
  /// result markers cannot fill the 600-byte stores).
  void clear_all_stores();

  /// Runs the simulation until `mote`'s space holds a tuple matching
  /// `templ` or `timeout` elapses; returns the virtual observation time.
  std::optional<sim::SimTime> await_tuple(
      core::AgillaMiddleware& mote, const ts::Template& templ,
      sim::SimTime timeout,
      sim::SimTime poll_step = 2 * sim::kMillisecond);

  /// Number of motes whose space currently matches `templ`.
  [[nodiscard]] std::size_t motes_matching(const ts::Template& templ) const;

  /// Total matching tuples across all motes.
  [[nodiscard]] std::size_t tuples_matching(const ts::Template& templ) const;

  /// Total live agents across all motes.
  [[nodiscard]] std::size_t agent_count() const;

  // ------------------------------------------------------------- energy
  struct DeathEvent {
    sim::NodeId node;
    sim::SimTime at = 0;
    sim::NodeDownReason reason = sim::NodeDownReason::kBatteryDepleted;
  };

  /// Node deaths (battery + churn) across the whole run, ordered by
  /// (time, node) — the order the serial engine emits them. Recorded per
  /// shard (handlers fire on shard workers under sim_shards > 1) and
  /// merged here; call between run() calls.
  [[nodiscard]] std::vector<DeathEvent> death_log() const;
  [[nodiscard]] std::size_t reboot_count() const;

  /// Network-wide drain for one ledger component, batteries settled to
  /// now() first. 0 when energy is disabled.
  [[nodiscard]] double total_drained_mj(energy::EnergyComponent component);

 private:
  void wire_instrumentation();

  DeploymentOptions options_;
  sim::Simulator simulator_;
  sim::Network network_;
  sim::SensorEnvironment environment_;
  sim::Topology topology_;
  EventBus bus_;
  std::vector<std::unique_ptr<core::AgillaMiddleware>> motes_;
  /// One lifecycle log per shard: node-down/up handlers run in the dying
  /// node's shard context, so each worker appends only to its own slot.
  std::vector<std::vector<DeathEvent>> shard_deaths_;
  std::vector<std::size_t> shard_reboots_;
};

/// Fluent assembly of a Deployment. Typed setters for the structural
/// parameters; `set(name, value)` reaches every registry knob by name
/// (validated against its type and range — std::invalid_argument on a
/// bad name or value, so embedder typos fail loudly, like the CLI's).
class SimulationBuilder {
 public:
  SimulationBuilder& grid(std::size_t width, std::size_t height);
  SimulationBuilder& packet_loss(double loss);
  SimulationBuilder& per_byte_loss(double loss);
  SimulationBuilder& seed(std::uint64_t seed);
  SimulationBuilder& store(ts::StoreKind kind);
  SimulationBuilder& warmup(sim::SimTime duration);
  SimulationBuilder& config(const core::AgillaConfig& config);

  /// Sets a registry knob by name (range-checked). Knobs not mapped onto
  /// DeploymentOptions (scenario-read knobs like "hops") are kept in a
  /// side map readable via knob()/params().
  SimulationBuilder& set(std::string_view name, double value);

  /// Reads a knob's current value (the registry default when unset).
  [[nodiscard]] double knob(std::string_view name) const;

  /// Subscribes `observer` to the deployment's bus at build time, before
  /// warm-up, in call order.
  SimulationBuilder& observe(Observer& observer);

  [[nodiscard]] const DeploymentOptions& options() const { return options_; }
  /// Scenario-read knob values accumulated by set().
  [[nodiscard]] const std::map<std::string, double>& params() const {
    return params_;
  }

  /// Composes the deployment (Deployment is not movable: it is a web of
  /// internal references, hence the unique_ptr).
  [[nodiscard]] std::unique_ptr<Deployment> build() const;

 private:
  DeploymentOptions options_;
  std::map<std::string, double> params_;
  std::vector<Observer*> observers_;
};

}  // namespace agilla::api

#include "api/knob_registry.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace agilla::api {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shorthand builders so the table below stays readable.
KnobInfo shared_knob(const char* name, KnobType type, const char* unit,
                     double def, double min, double max, bool min_open,
                     const char* doc,
                     void (*apply)(DeploymentOptions&, double),
                     double (*read)(const DeploymentOptions&)) {
  KnobInfo knob;
  knob.name = name;
  knob.type = type;
  knob.unit = unit;
  knob.def = def;
  knob.min = min;
  knob.max = max;
  knob.min_open = min_open;
  knob.doc = doc;
  knob.apply = apply;
  knob.read = read;
  return knob;
}

KnobInfo scenario_knob(const char* name, KnobType type, const char* unit,
                       double def, bool auto_default, double min, double max,
                       bool min_open, const char* scenarios,
                       const char* doc) {
  KnobInfo knob;
  knob.name = name;
  knob.type = type;
  knob.unit = unit;
  knob.def = def;
  knob.auto_default = auto_default;
  knob.min = min;
  knob.max = max;
  knob.min_open = min_open;
  knob.scenarios = scenarios;
  knob.doc = doc;
  return knob;
}

std::vector<KnobInfo> build_registry() {
  std::vector<KnobInfo> knobs;

  // ------------------------------------------- scenario-specific knobs
  knobs.push_back(scenario_knob(
      "spread_speed", KnobType::kDouble, "grid units/s", 0.0, true, 0.0,
      kInf, true, "fire_tracking,network_lifetime",
      "fire-front expansion speed; auto fits 80% of the diagonal in the "
      "trial"));
  knobs.push_back(scenario_knob(
      "alert_threshold", KnobType::kDouble, "degC", 180.0, false, 0.0,
      1000.0, false, "fire_tracking,network_lifetime",
      "tracker's node-is-hot threshold"));
  knobs.push_back(scenario_knob(
      "alert_repeat_s", KnobType::kDouble, "s", 4.0, false, 0.0, kInf,
      false, "network_lifetime",
      "burning detectors re-alert this often; 0 = paper's "
      "alert-once-then-halt"));
  knobs.push_back(scenario_knob(
      "intruder_speed", KnobType::kDouble, "grid units/s", 0.05, false,
      0.0, kInf, true, "intruder_pursuit,churn_pursuit",
      "patrol speed of the magnetometer bump"));
  knobs.push_back(scenario_knob(
      "hops", KnobType::kInt, "hops", 4.0, true, 1.0, kInf, false,
      "smove,rout",
      "hop distance of the round trip / remote op; auto = min(4, "
      "width-1), clamped to the grid and reported as hops_realized"));
  knobs.push_back(scenario_knob(
      "timeout_s", KnobType::kDouble, "s", 15.0, true, 0.0, kInf, true,
      "smove,rout",
      "per-trial give-up time; auto = 15 (smove) / 10 (rout)"));
  knobs.push_back(scenario_knob(
      "fillers", KnobType::kInt, "tuples", 20.0, false, 0.0, kInf, false,
      "store_ops", "tuples stored in front of the probe target"));
  knobs.push_back(scenario_knob(
      "report_s", KnobType::kDouble, "s", 4.0, false, 0.0, kInf, true,
      "report_collection",
      "per-node reporting period of the converge-cast"));

  // ------------------------------------------------- shared mesh knobs
  knobs.push_back(shared_knob(
      "battery_mj", KnobType::kDouble, "mJ", 0.0, 0.0, kInf, false,
      "per-node battery capacity; 0 = immortal nodes (network_lifetime "
      "overrides to 2000)",
      [](DeploymentOptions& o, double v) { o.battery_mj = v; },
      [](const DeploymentOptions& o) { return o.battery_mj; }));
  knobs.push_back(shared_knob(
      "duty_cycle", KnobType::kDouble, "fraction", 1.0, 0.0, 1.0, true,
      "LPL listen fraction; 1 = always-on radio; check period = 8 ms / "
      "fraction, every frame pays the period as extra preamble",
      [](DeploymentOptions& o, double v) { o.duty_cycle = v; },
      [](const DeploymentOptions& o) { return o.duty_cycle; }));
  knobs.push_back(shared_knob(
      "churn_rate", KnobType::kDouble, "crashes/node/s", 0.0, 0.0, kInf,
      false,
      "Poisson crash intensity per node (gateway spared while "
      "gateway_powered=1; churn_pursuit overrides to 0.004)",
      [](DeploymentOptions& o, double v) { o.churn_rate = v; },
      [](const DeploymentOptions& o) { return o.churn_rate; }));
  knobs.push_back(shared_knob(
      "churn_reboot_s", KnobType::kDouble, "s", 0.0, 0.0, kInf, false,
      "crashed nodes reboot with empty RAM after this long; 0 = never "
      "(churn_pursuit overrides to 20)",
      [](DeploymentOptions& o, double v) { o.churn_reboot_s = v; },
      [](const DeploymentOptions& o) { return o.churn_reboot_s; }));
  knobs.push_back(shared_knob(
      "route_policy", KnobType::kInt, "enum", 0.0, 0.0, 1.0, false,
      "0 = greedy-geo (paper), 1 = max-min residual (energy-aware; "
      "DESIGN.md Routing & LPL)",
      [](DeploymentOptions& o, double v) {
        o.route_policy = static_cast<int>(v);
      },
      [](const DeploymentOptions& o) {
        return static_cast<double>(o.route_policy);
      }));
  knobs.push_back(shared_knob(
      "energy_weight", KnobType::kDouble, "fraction", 0.5, 0.0, 1.0,
      false,
      "max-min score weight: 0 = pure forward progress, 1 = pure "
      "residual energy",
      [](DeploymentOptions& o, double v) { o.energy_weight = v; },
      [](const DeploymentOptions& o) { return o.energy_weight; }));
  knobs.push_back(shared_knob(
      "adaptive_lpl", KnobType::kBool, "bool", 0.0, 0.0, 1.0, false,
      "per-node traffic-adaptive LPL controller; senders size preambles "
      "from each receiver's advertised check period",
      [](DeploymentOptions& o, double v) { o.adaptive_lpl = v != 0.0; },
      [](const DeploymentOptions& o) {
        return o.adaptive_lpl ? 1.0 : 0.0;
      }));
  knobs.push_back(shared_knob(
      "duty_min", KnobType::kDouble, "fraction", 0.02, 0.0, 1.0, true,
      "adaptive controller's duty floor (quiet channel)",
      [](DeploymentOptions& o, double v) { o.duty_min = v; },
      [](const DeploymentOptions& o) { return o.duty_min; }));
  knobs.push_back(shared_knob(
      "duty_max", KnobType::kDouble, "fraction", 0.5, 0.0, 1.0, true,
      "adaptive controller's duty ceiling (busy channel)",
      [](DeploymentOptions& o, double v) { o.duty_max = v; },
      [](const DeploymentOptions& o) { return o.duty_max; }));
  knobs.push_back(shared_knob(
      "lpl_tx_busy", KnobType::kInt, "frames", 0.0, 0.0, kInf, false,
      "adaptive LPL congestion coupling: a settle tick with >= this many "
      "pending TX frames counts as busy (keeps duty up under backlog); 0 "
      "= off",
      [](DeploymentOptions& o, double v) {
        o.lpl_tx_busy = static_cast<int>(v);
      },
      [](const DeploymentOptions& o) {
        return static_cast<double>(o.lpl_tx_busy);
      }));
  knobs.push_back(shared_knob(
      "beacon_suppression", KnobType::kInt, "tristate", -1.0, -1.0, 1.0,
      false,
      "-1 = auto (on whenever LPL is active), 0 = force 1 Hz beacons, 1 "
      "= force exponential backoff + piggyback",
      [](DeploymentOptions& o, double v) {
        o.beacon_suppression = static_cast<int>(v);
      },
      [](const DeploymentOptions& o) {
        return static_cast<double>(o.beacon_suppression);
      }));
  knobs.push_back(shared_knob(
      "gateway_powered", KnobType::kBool, "bool", 1.0, 0.0, 1.0, false,
      "1 = node 0 is mains-powered (no battery, never churned); 0 = the "
      "sink is a battery mote like every other node",
      [](DeploymentOptions& o, double v) {
        o.gateway_powered = v != 0.0;
      },
      [](const DeploymentOptions& o) {
        return o.gateway_powered ? 1.0 : 0.0;
      }));
  knobs.push_back(shared_knob(
      "overhearing", KnobType::kBool, "bool", 0.0, 0.0, 1.0, false,
      "charge RX to awake in-range nodes that filter a unicast frame "
      "out; 0 = paper model (only addressed receivers pay)",
      [](DeploymentOptions& o, double v) { o.overhearing = v != 0.0; },
      [](const DeploymentOptions& o) {
        return o.overhearing ? 1.0 : 0.0;
      }));
  knobs.push_back(shared_knob(
      "vm_dispatch", KnobType::kInt, "enum", 1.0, 0.0, 1.0, false,
      "0 = reference switch interpreter, 1 = pre-decoded threaded "
      "dispatch (DESIGN.md VM dispatch); simulated behaviour is "
      "byte-identical, only host speed differs",
      [](DeploymentOptions& o, double v) {
        o.vm_dispatch = static_cast<int>(v);
      },
      [](const DeploymentOptions& o) {
        return static_cast<double>(o.vm_dispatch);
      }));
  knobs.push_back(shared_knob(
      "sim_shards", KnobType::kInt, "shards", 1.0, 1.0, 256.0, false,
      "spatial shards of the event engine, each drained by its own "
      "worker thread (DESIGN.md Sharded event engine); results are "
      "byte-identical for any value, only host speed differs",
      [](DeploymentOptions& o, double v) {
        o.sim_shards = static_cast<std::size_t>(v);
      },
      [](const DeploymentOptions& o) {
        return static_cast<double>(o.sim_shards);
      }));
  return knobs;
}

}  // namespace

bool KnobInfo::owned_by(std::string_view scenario) const {
  std::string_view list = scenarios;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    if (list.substr(0, comma) == scenario) {
      return true;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return false;
}

const std::vector<KnobInfo>& knob_registry() {
  static const std::vector<KnobInfo> registry = build_registry();
  return registry;
}

const KnobInfo* find_knob(std::string_view name) {
  for (const KnobInfo& knob : knob_registry()) {
    if (knob.name == name) {
      return &knob;
    }
  }
  return nullptr;
}

std::string_view to_string(KnobType type) {
  switch (type) {
    case KnobType::kInt:
      return "int";
    case KnobType::kBool:
      return "bool";
    case KnobType::kDouble:
      break;
  }
  return "double";
}

namespace {

std::string bound_to_string(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string range_to_string(const KnobInfo& knob) {
  if (knob.type == KnobType::kBool) {
    return "{0, 1}";
  }
  std::string range;
  range += knob.min_open ? '(' : '[';
  range += bound_to_string(knob.min);
  range += ", ";
  range += bound_to_string(knob.max);
  range += std::isinf(knob.max) ? ')' : ']';
  return range;
}

std::string default_to_string(const KnobInfo& knob) {
  return knob.auto_default ? "auto" : bound_to_string(knob.def);
}

std::string validate_knob(const KnobInfo& knob, double value) {
  const auto fail = [&] {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", value);
    return std::string(knob.name) + " = " + buf + " is invalid: want " +
           std::string(to_string(knob.type)) + " in " +
           range_to_string(knob) + " (" + knob.unit + ")";
  };
  if (!std::isfinite(value)) {
    return fail();
  }
  if (knob.type != KnobType::kDouble && value != std::floor(value)) {
    return fail();
  }
  if (value > knob.max || value < knob.min ||
      (knob.min_open && value == knob.min)) {
    return fail();
  }
  return "";
}

std::string validate_knob(std::string_view name, double value) {
  const KnobInfo* knob = find_knob(name);
  if (knob == nullptr) {
    return "unknown knob: " + std::string(name);
  }
  return validate_knob(*knob, value);
}

void apply_knobs(DeploymentOptions& options,
                 const std::map<std::string, double>& params) {
  for (const auto& [name, value] : params) {
    if (const KnobInfo* knob = find_knob(name);
        knob != nullptr && knob->apply != nullptr) {
      knob->apply(options, value);
    }
  }
}

std::vector<std::string> scenario_knob_names(std::string_view scenario,
                                             bool include_shared) {
  std::vector<std::string> names;
  for (const KnobInfo& knob : knob_registry()) {
    if (knob.owned_by(scenario)) {
      names.emplace_back(knob.name);
    }
  }
  if (include_shared) {
    for (const KnobInfo& knob : knob_registry()) {
      if (knob.shared()) {
        names.emplace_back(knob.name);
      }
    }
  }
  return names;
}

}  // namespace agilla::api

#include "api/events.h"

#include <algorithm>

namespace agilla::api {

Observer::~Observer() = default;

void EventBus::subscribe(Observer& observer) {
  if (std::find(observers_.begin(), observers_.end(), &observer) ==
      observers_.end()) {
    observers_.push_back(&observer);
  }
}

void EventBus::unsubscribe(Observer& observer) {
  if (dispatch_depth_ > 0) {
    // Mid-dispatch: erasing would shift the vector under the index loop.
    // Null the slot (ending delivery to this observer immediately) and
    // compact when the outermost dispatch unwinds.
    for (Observer*& slot : observers_) {
      if (slot == &observer) {
        slot = nullptr;
        pending_compact_ = true;
      }
    }
    return;
  }
  std::erase(observers_, &observer);
}

std::size_t EventBus::observer_count() const {
  return static_cast<std::size_t>(
      std::count_if(observers_.begin(), observers_.end(),
                    [](const Observer* o) { return o != nullptr; }));
}

template <typename Fn>
void EventBus::dispatch(Fn&& deliver) {
  if (observers_.empty()) {
    // Zero-subscriber publishes also arrive concurrently from shard
    // worker threads (Deployment rejects observers when sim_shards > 1,
    // so the list is immutable-empty there); the reentrancy bookkeeping
    // below must not run on that path.
    return;
  }
  ++dispatch_depth_;
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    if (Observer* observer = observers_[i]) {
      deliver(*observer);
    }
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && pending_compact_) {
    std::erase(observers_, static_cast<Observer*>(nullptr));
    pending_compact_ = false;
  }
}

void EventBus::publish_agent_spawn(const AgentSpawnEvent& event) {
  dispatch([&](Observer& o) { o.on_agent_spawn(event); });
}

void EventBus::publish_agent_kill(const AgentKillEvent& event) {
  dispatch([&](Observer& o) { o.on_agent_kill(event); });
}

void EventBus::publish_agent_migrate(const AgentMigrateEvent& event) {
  dispatch([&](Observer& o) { o.on_agent_migrate(event); });
}

void EventBus::publish_agent_block(const AgentBlockEvent& event) {
  dispatch([&](Observer& o) { o.on_agent_block(event); });
}

void EventBus::publish_agent_resume(const AgentResumeEvent& event) {
  dispatch([&](Observer& o) { o.on_agent_resume(event); });
}

void EventBus::publish_tuple_op(const TupleOpEvent& event) {
  dispatch([&](Observer& o) { o.on_tuple_op(event); });
}

void EventBus::publish_frame_tx(const FrameEvent& event) {
  dispatch([&](Observer& o) {
    o.on_frame_tx(event);
    if (event.frame->am == sim::AmType::kBeacon) {
      o.on_beacon(event);
    }
  });
}

void EventBus::publish_frame_rx(const FrameEvent& event) {
  dispatch([&](Observer& o) { o.on_frame_rx(event); });
}

void EventBus::publish_node_down(const NodeLifecycleEvent& event) {
  dispatch([&](Observer& o) { o.on_node_down(event); });
}

void EventBus::publish_node_up(const NodeLifecycleEvent& event) {
  dispatch([&](Observer& o) { o.on_node_up(event); });
}

void EventBus::publish_battery_settle(const BatterySettleEvent& event) {
  dispatch([&](Observer& o) { o.on_battery_settle(event); });
}

}  // namespace agilla::api

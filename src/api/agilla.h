// Umbrella header for embedding the Agilla reproduction: one include
// gives an application everything it needs to compose a deployment,
// write/inject agents, and observe the run.
//
//   #include "api/agilla.h"
//
//   agilla::api::EventCounter counter;
//   auto net = agilla::api::SimulationBuilder()
//                  .grid(5, 5)
//                  .seed(42)
//                  .set("duty_cycle", 0.2)
//                  .observe(counter)
//                  .build();
//   net->base().inject("pushloc 3 3\nsmove\nhalt\n");
//   net->run_for(30 * agilla::sim::kSecond);
//
// See DESIGN.md "Embedding API" for the layering contract and
// docs/MANUAL.md for every knob `set()` accepts.
#pragma once

// Deployment + SimulationBuilder, Observer/EventBus/EventCounter, the
// typed knob table, the paper's stock agents (FIREDETECTOR, SENTINEL,
// ...), assemble()/assemble_or_die(), and BaseStation.
#include "api/deployment.h"
#include "api/events.h"
#include "api/knob_registry.h"
#include "core/agent_library.h"
#include "core/assembler.h"
#include "core/injector.h"

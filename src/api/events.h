// The instrumentation side of the embedding API: a typed event vocabulary
// covering every externally observable state change in a deployment
// (agent lifecycle, tuple operations, radio traffic, node lifecycle,
// battery settling), an Observer interface with no-op defaults, and the
// EventBus that fans events out.
//
// Determinism contract: events are published from inside the
// single-threaded simulation, in virtual-time order, and the bus
// dispatches to observers in subscription order — so any metric derived
// from observer callbacks is a pure function of the deployment options
// and the seed, exactly like the built-in NetworkStats counters. The
// harness determinism gates (threads 1 vs N byte-identical JSON) hold
// for observer-derived metrics too; tests/test_api.cpp proves it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/network.h"
#include "sim/types.h"
#include "tuplespace/tuple.h"
#include "tuplespace/tuple_space.h"

namespace agilla::api {

/// Agent creation: a base-station/test injection (`via_migration` false)
/// or an arrival installed by the migration protocol (true — clones and
/// custody resumes included).
struct AgentSpawnEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  std::uint16_t agent = 0;
  bool via_migration = false;
};

/// Agent death on this node. `reason` is a stable short string: "halt"
/// (voluntary), "power" (node death/reboot), "migrated" (strong/weak move
/// departed successfully), or a VM error message.
struct AgentKillEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  std::uint16_t agent = 0;
  std::string_view reason;
};

/// A migration left `node` toward `dest` (moves and clones; fires at
/// protocol start, before the outcome is known).
struct AgentMigrateEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  std::uint16_t agent = 0;
  sim::Location dest;
};

/// An agent left the ready queue. `reason` is a stable short string:
/// "sleep", "wait", "tuple" (blocked in/rd), "migrate" (awaiting the
/// migration protocol's outcome), or "remote" (remote tuple-space op in
/// flight); valid only during dispatch.
struct AgentBlockEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  std::uint16_t agent = 0;
  std::string_view reason;
};

/// A previously blocked agent re-entered the ready queue (timer expiry,
/// tuple insertion, reaction delivery, or protocol completion).
struct AgentResumeEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  std::uint16_t agent = 0;
};

/// A state-changing local tuple-space operation completed on `node`.
/// `tuple` points at the affected tuple and is valid only during dispatch.
struct TupleOpEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  ts::TupleSpaceOp op = ts::TupleSpaceOp::kOut;
  const ts::Tuple* tuple = nullptr;
};

/// A frame left a radio (tx) or was decoded by a receiver (rx). `frame`
/// is valid only during dispatch. For rx, `receiver` is the decoding
/// node and `lost` tells whether the channel then corrupted the frame
/// (the radio pays for lost frames too, so observers see them).
struct FrameEvent {
  sim::SimTime at = 0;
  const sim::Frame* frame = nullptr;
  sim::NodeId receiver;  ///< rx only; invalid for tx
  bool lost = false;     ///< rx only
};

/// A node left the network (battery depletion or churn crash) or came
/// back (churn reboot with empty RAM).
struct NodeLifecycleEvent {
  sim::SimTime at = 0;
  sim::NodeId node;
  sim::NodeDownReason reason = sim::NodeDownReason::kBatteryDepleted;
};

/// The periodic battery-settle tick ran: every battery's idle draw is
/// folded in up to `at` and depletion was checked. Fires only when the
/// energy subsystem is attached.
struct BatterySettleEvent {
  sim::SimTime at = 0;
};

/// Instrumentation interface: subclass and override what you care about.
/// Callbacks run synchronously inside the simulation event loop — keep
/// them cheap and never re-enter the simulator from one.
class Observer {
 public:
  virtual ~Observer();

  virtual void on_agent_spawn(const AgentSpawnEvent&) {}
  virtual void on_agent_kill(const AgentKillEvent&) {}
  virtual void on_agent_migrate(const AgentMigrateEvent&) {}
  virtual void on_agent_block(const AgentBlockEvent&) {}
  virtual void on_agent_resume(const AgentResumeEvent&) {}
  virtual void on_tuple_op(const TupleOpEvent&) {}
  virtual void on_frame_tx(const FrameEvent&) {}
  virtual void on_frame_rx(const FrameEvent&) {}
  /// Beacon transmissions, pre-classified (also reported as on_frame_tx).
  virtual void on_beacon(const FrameEvent&) {}
  virtual void on_node_down(const NodeLifecycleEvent&) {}
  virtual void on_node_up(const NodeLifecycleEvent&) {}
  virtual void on_battery_settle(const BatterySettleEvent&) {}
};

/// Fans one event out to every subscribed observer, in subscription
/// order. Owned by a Deployment; publishing is internal to the facade.
///
/// Re-entrancy: both calls are safe from inside an observer callback.
/// An observer subscribed mid-dispatch starts receiving immediately
/// (including the event being dispatched); one unsubscribed
/// mid-dispatch receives nothing further, the in-flight event included.
class EventBus {
 public:
  /// Subscribes `observer` (no ownership taken; it must outlive the bus
  /// or unsubscribe first). Dispatch order is subscription order.
  void subscribe(Observer& observer);
  void unsubscribe(Observer& observer);

  [[nodiscard]] std::size_t observer_count() const;

  // Publish helpers (called by Deployment's internal taps).
  void publish_agent_spawn(const AgentSpawnEvent& event);
  void publish_agent_kill(const AgentKillEvent& event);
  void publish_agent_migrate(const AgentMigrateEvent& event);
  void publish_agent_block(const AgentBlockEvent& event);
  void publish_agent_resume(const AgentResumeEvent& event);
  void publish_tuple_op(const TupleOpEvent& event);
  void publish_frame_tx(const FrameEvent& event);
  void publish_frame_rx(const FrameEvent& event);
  void publish_node_down(const NodeLifecycleEvent& event);
  void publish_node_up(const NodeLifecycleEvent& event);
  void publish_battery_settle(const BatterySettleEvent& event);

 private:
  /// Index-based fan-out tolerating (un)subscription from callbacks:
  /// unsubscribing mid-dispatch nulls the slot (compacted once the
  /// outermost dispatch unwinds); subscribing appends, which the index
  /// loop picks up without invalidating anything.
  template <typename Fn>
  void dispatch(Fn&& deliver);

  std::vector<Observer*> observers_;
  int dispatch_depth_ = 0;
  bool pending_compact_ = false;
};

/// Ready-made observer that counts every event kind — the "thin metrics
/// subscriber" building block used by tests and examples.
class EventCounter : public Observer {
 public:
  std::uint64_t agent_spawns = 0;
  std::uint64_t agent_kills = 0;
  std::uint64_t agent_migrations = 0;
  std::uint64_t agent_blocks = 0;
  std::uint64_t agent_resumes = 0;
  std::uint64_t tuple_ops = 0;
  std::uint64_t frames_tx = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t beacons = 0;
  std::uint64_t nodes_down = 0;
  std::uint64_t nodes_up = 0;
  std::uint64_t battery_settles = 0;

  void on_agent_spawn(const AgentSpawnEvent&) override { ++agent_spawns; }
  void on_agent_kill(const AgentKillEvent&) override { ++agent_kills; }
  void on_agent_migrate(const AgentMigrateEvent&) override {
    ++agent_migrations;
  }
  void on_agent_block(const AgentBlockEvent&) override { ++agent_blocks; }
  void on_agent_resume(const AgentResumeEvent&) override {
    ++agent_resumes;
  }
  void on_tuple_op(const TupleOpEvent&) override { ++tuple_ops; }
  void on_frame_tx(const FrameEvent&) override { ++frames_tx; }
  void on_frame_rx(const FrameEvent&) override { ++frames_rx; }
  void on_beacon(const FrameEvent&) override { ++beacons; }
  void on_node_down(const NodeLifecycleEvent&) override { ++nodes_down; }
  void on_node_up(const NodeLifecycleEvent&) override { ++nodes_up; }
  void on_battery_settle(const BatterySettleEvent&) override {
    ++battery_settles;
  }
};

}  // namespace agilla::api

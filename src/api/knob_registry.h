// The single source of truth for every named experiment knob.
//
// Each KnobInfo carries the knob's type, unit, default, valid range,
// doc string, owning scenarios, and — for knobs that map onto
// DeploymentOptions — apply/read accessors. Everything that deals in
// knobs derives from this table:
//   - DeploymentOptions population (apply_knobs / SimulationBuilder::set)
//   - per-scenario knob lists (scenario_knob_names -> ScenarioInfo.knobs)
//   - CLI --axis/--param validation, including range checks
//   - the `agilla_sim --list-knobs` listing, and through it the
//     generated knob table in docs/MANUAL.md (CI docs-consistency gate)
// Adding a knob means adding ONE entry here; tests/test_api.cpp asserts
// the registry round-trips (settable, readable, listed) and that every
// default matches the DeploymentOptions field initializer.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "api/deployment.h"

namespace agilla::api {

enum class KnobType : std::uint8_t {
  kDouble,  ///< any real in range
  kInt,     ///< integral values only (enums/counts)
  kBool,    ///< 0 or 1
};

struct KnobInfo {
  const char* name = "";
  KnobType type = KnobType::kDouble;
  /// Unit shown in listings and range errors ("mJ", "fraction", ...).
  const char* unit = "";
  /// Printable default; ignored when auto_default (computed at runtime).
  double def = 0.0;
  bool auto_default = false;
  /// Valid range. min/max are inclusive bounds unless min_open; use
  /// +/-infinity for unbounded sides.
  double min = 0.0;
  double max = 0.0;
  bool min_open = false;
  /// Comma-separated owning scenarios, or "" for the shared set every
  /// mesh-backed scenario understands.
  const char* scenarios = "";
  const char* doc = "";
  /// Mapping onto DeploymentOptions; nullptr for scenario-read knobs
  /// (the scenario fetches them from TrialSpec::param itself).
  void (*apply)(DeploymentOptions&, double) = nullptr;
  double (*read)(const DeploymentOptions&) = nullptr;

  /// True for knobs in the shared mesh set.
  [[nodiscard]] bool shared() const { return scenarios[0] == '\0'; }
  /// True when `scenario` owns this specific (non-shared) knob.
  [[nodiscard]] bool owned_by(std::string_view scenario) const;
};

/// All knobs: scenario-specific first, then the shared mesh set, in
/// stable registration order (the order every listing uses).
[[nodiscard]] const std::vector<KnobInfo>& knob_registry();

/// nullptr when unknown.
[[nodiscard]] const KnobInfo* find_knob(std::string_view name);

[[nodiscard]] std::string_view to_string(KnobType type);

/// "[0, 1]", "(0, inf)", "{0, 1}" (bool) — the range as listings and
/// error messages print it.
[[nodiscard]] std::string range_to_string(const KnobInfo& knob);

/// "auto" or the numeric default, as listings print it.
[[nodiscard]] std::string default_to_string(const KnobInfo& knob);

/// Empty when `value` is valid for `knob`; otherwise a human-readable
/// error naming the offending value, the valid range, and the unit.
[[nodiscard]] std::string validate_knob(const KnobInfo& knob, double value);

/// As above, by name; unknown names are an error too.
[[nodiscard]] std::string validate_knob(std::string_view name, double value);

/// Applies every registry-mapped entry of `params` onto `options`
/// (scenario-read and unknown names are skipped — the CLI has already
/// validated them against the scenario's knob list).
void apply_knobs(DeploymentOptions& options,
                 const std::map<std::string, double>& params);

/// The knob names `scenario` understands: its own specific knobs first,
/// then (unless include_shared is false — store_ops runs no radio) the
/// shared mesh set, both in registry order. This is what scenario
/// registration feeds into ScenarioInfo.knobs.
[[nodiscard]] std::vector<std::string> scenario_knob_names(
    std::string_view scenario, bool include_shared = true);

}  // namespace agilla::api

#include "core/context_manager.h"

#include <array>

namespace agilla::core {

std::optional<sim::Location> ContextManager::neighbor_location(
    std::size_t index) const {
  const auto entry = neighbors_.by_index(index);
  if (!entry.has_value()) {
    return std::nullopt;
  }
  return entry->location;
}

std::optional<sim::Location> ContextManager::random_neighbor(
    sim::Rng& rng) const {
  const auto entry = neighbors_.random(rng);
  if (!entry.has_value()) {
    return std::nullopt;
  }
  return entry->location;
}

void ContextManager::seed_context_tuples(ts::TupleSpace& space,
                                         const SensorBoard& sensors) const {
  // Short names keep within the 3-char packed-string format.
  struct Entry {
    sim::SensorType type;
    const char* name;
  };
  static constexpr std::array<Entry, sim::kNumSensorTypes> kEntries = {{
      {sim::SensorType::kTemperature, "tmp"},
      {sim::SensorType::kPhoto, "pho"},
      {sim::SensorType::kMicrophone, "mic"},
      {sim::SensorType::kMagnetometer, "mag"},
      {sim::SensorType::kAccelerometer, "acc"},
  }};
  for (const Entry& e : kEntries) {
    if (sensors.has(e.type)) {
      space.out(ts::Tuple{ts::Value::string(e.name),
                          ts::Value::reading_type(e.type)});
    }
  }
}

}  // namespace agilla::core

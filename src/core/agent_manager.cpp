#include "core/agent_manager.h"

#include <algorithm>

namespace agilla::core {

AgentManager::AgentManager(sim::NodeId node, Options options)
    : node_(node), options_(options) {}

AgentId AgentManager::next_id() {
  // High byte derives from the creating node, low byte counts creations.
  // 16-bit ids match the agent architecture (paper Fig. 6); wraparound
  // after 256 creations per node is acceptable for mote lifetimes and is
  // documented in DESIGN.md.
  const auto high = static_cast<std::uint16_t>((node_.value & 0xFF) << 8);
  return AgentId{static_cast<std::uint16_t>(high | id_counter_++)};
}

Agent* AgentManager::create(CodeHandle code) {
  return create_with_id(next_id(), code);
}

Agent* AgentManager::create_with_id(AgentId id, CodeHandle code) {
  if (full() || find(id) != nullptr) {
    return nullptr;
  }
  agents_.push_back(std::make_unique<Agent>(id, code));
  return agents_.back().get();
}

void AgentManager::destroy(AgentId id) {
  std::erase_if(agents_, [id](const std::unique_ptr<Agent>& a) {
    return a->id() == id;
  });
}

Agent* AgentManager::find(AgentId id) {
  const auto it =
      std::find_if(agents_.begin(), agents_.end(),
                   [id](const std::unique_ptr<Agent>& a) {
                     return a->id() == id;
                   });
  return it == agents_.end() ? nullptr : it->get();
}

const Agent* AgentManager::find(AgentId id) const {
  const auto it =
      std::find_if(agents_.begin(), agents_.end(),
                   [id](const std::unique_ptr<Agent>& a) {
                     return a->id() == id;
                   });
  return it == agents_.end() ? nullptr : it->get();
}

}  // namespace agilla::core

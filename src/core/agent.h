// The mobile-agent context (paper Fig. 6): operand stack, 12-slot heap, and
// the ID / PC / condition registers. The agent is a passive record; the
// engine interprets it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/code_pool.h"
#include "core/isa.h"
#include "tuplespace/tuple.h"
#include "tuplespace/tuple_match.h"

namespace agilla::core {

class DecodedProgram;

/// Network-unique agent identity: high byte derives from the node that
/// created the agent, low byte is a per-node counter (see DESIGN.md).
struct AgentId {
  std::uint16_t value = 0;

  friend constexpr auto operator<=>(AgentId, AgentId) = default;
};

enum class AgentRunState : std::uint8_t {
  kReady,       ///< in the engine's round-robin queue
  kSleeping,    ///< in `sleep`; a timer will wake it
  kBlockedTs,   ///< blocked in `in`/`rd`, re-probes on insertion
  kWaitingRxn,  ///< in `wait`; a firing reaction resumes it
  kBlockedOp,   ///< a migration / remote op is in flight
  kDead,
};

[[nodiscard]] const char* to_string(AgentRunState s);

class Agent {
 public:
  static constexpr std::size_t kStackDepth = 16;  ///< paper Fig. 6

  Agent(AgentId id, CodeHandle code);

  // --- registers -----------------------------------------------------------
  [[nodiscard]] AgentId id() const { return id_; }
  void set_id(AgentId id) { id_ = id; }
  [[nodiscard]] std::uint16_t pc() const { return pc_; }
  void set_pc(std::uint16_t pc) { pc_ = pc; }
  [[nodiscard]] std::int16_t condition() const { return condition_; }
  void set_condition(std::int16_t c) { condition_ = c; }
  [[nodiscard]] CodeHandle code() const { return code_; }
  void set_code(CodeHandle code) { code_ = code; }

  // --- operand stack ---------------------------------------------------------
  /// False on overflow (a VM error; the engine kills the agent).
  [[nodiscard]] bool push(const ts::Value& v);
  /// Invalid Value on underflow.
  ts::Value pop();
  [[nodiscard]] const ts::Value& peek(std::size_t depth_from_top = 0) const;
  [[nodiscard]] std::size_t stack_depth() const { return stack_.size(); }
  [[nodiscard]] const std::vector<ts::Value>& stack() const { return stack_; }
  void clear_stack() { stack_.clear(); }
  /// Replaces the whole stack (migration restore); excess entries dropped.
  void restore_stack(std::vector<ts::Value> values);

  // --- heap -------------------------------------------------------------------
  [[nodiscard]] const ts::Value& heap(std::size_t slot) const;
  bool set_heap(std::size_t slot, const ts::Value& v);
  /// Slots holding valid values, as (slot, value) pairs (migration image).
  [[nodiscard]] std::vector<std::pair<std::uint8_t, ts::Value>>
  heap_entries() const;
  void clear_heap();

  // --- run state ---------------------------------------------------------------
  [[nodiscard]] AgentRunState run_state() const { return run_state_; }
  void set_run_state(AgentRunState s) { run_state_ = s; }

  /// While blocked in `in`/`rd`: the probe to retry on wakeup. Holds the
  /// compiled form — the template was lowered once when the op first ran,
  /// and every wakeup re-probe reuses it.
  struct BlockedProbe {
    ts::CompiledTemplate templ;
    bool remove = false;  ///< true for `in`, false for `rd`
  };
  [[nodiscard]] const std::optional<BlockedProbe>& blocked_probe() const {
    return blocked_probe_;
  }
  void set_blocked_probe(std::optional<BlockedProbe> probe) {
    blocked_probe_ = std::move(probe);
  }

  /// The pre-decoded template for this agent's code image
  /// (core/vm_dispatch.h); nullptr under the reference switch dispatch.
  /// Set when the code is stored, cleared when the agent is destroyed.
  /// Shared ownership: a handler can destroy the agent (and release its
  /// code handle) mid-slice, so the dispatch loop pins a copy for the
  /// duration of the slice.
  [[nodiscard]] const std::shared_ptr<const DecodedProgram>&
  decoded_program() const {
    return decoded_;
  }
  void set_decoded_program(std::shared_ptr<const DecodedProgram> program) {
    decoded_ = std::move(program);
  }

 private:
  AgentId id_;
  std::uint16_t pc_ = 0;
  std::int16_t condition_ = 0;
  CodeHandle code_;
  std::vector<ts::Value> stack_;
  std::array<ts::Value, kHeapSlots> heap_{};
  AgentRunState run_state_ = AgentRunState::kReady;
  std::optional<BlockedProbe> blocked_probe_;
  std::shared_ptr<const DecodedProgram> decoded_;
};

}  // namespace agilla::core

// The node's sensor board: binds the `sense` instruction to the simulated
// SensorEnvironment and clamps raw field values to the mote's 10-bit-ADC
// style integer readings.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/environment.h"
#include "sim/types.h"

namespace agilla::core {

class SensorBoard {
 public:
  SensorBoard(const sim::SensorEnvironment* environment, sim::Location at)
      : environment_(environment), at_(at) {}

  [[nodiscard]] bool has(sim::SensorType type) const {
    return environment_ != nullptr && environment_->has(type);
  }

  /// Reading at `when`; nullopt when the sensor is absent. Values clamp to
  /// int16 (the VM's numeric range).
  [[nodiscard]] std::optional<std::int16_t> read(sim::SensorType type,
                                                 sim::SimTime when) const;

  [[nodiscard]] sim::Location location() const { return at_; }

 private:
  const sim::SensorEnvironment* environment_;
  sim::Location at_;
};

}  // namespace agilla::core

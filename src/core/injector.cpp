#include "core/injector.h"

namespace agilla::core {

std::optional<AgentId> BaseStation::inject(std::string_view assembly_source) {
  const AssemblyResult result = assemble(assembly_source);
  if (!result.ok()) {
    return std::nullopt;
  }
  return inject_code(result.code);
}

std::optional<AgentId> BaseStation::inject_code(
    std::span<const std::uint8_t> code) {
  return gateway_.inject(code);
}

void BaseStation::inject_at(std::span<const std::uint8_t> code,
                            sim::Location dest,
                            std::function<void(bool)> done) {
  AgentImage image;
  image.agent_id = gateway_.agents().next_id().value;
  image.op = MigrationOp::kWMove;  // fresh agent: starts from pc 0
  image.dest = dest;
  image.code.assign(code.begin(), code.end());
  gateway_.migration().send(std::move(image), std::move(done));
}

void BaseStation::rout(sim::Location dest, const ts::Tuple& tuple,
                       RemoteTsManager::Completion done) {
  gateway_.remote_ts().request_out(dest, tuple, std::move(done));
}

void BaseStation::out_region(const ts::Tuple& tuple, sim::Location center,
                             double radius, RegionMode mode) {
  gateway_.region_ops().out_region(tuple, center, radius, mode);
}

void BaseStation::rinp(sim::Location dest, const ts::Template& templ,
                       RemoteTsManager::Completion done) {
  gateway_.remote_ts().request_probe(RemoteOp::kInp, dest, templ,
                                     std::move(done));
}

void BaseStation::rrdp(sim::Location dest, const ts::Template& templ,
                       RemoteTsManager::Completion done) {
  gateway_.remote_ts().request_probe(RemoteOp::kRdp, dest, templ,
                                     std::move(done));
}

}  // namespace agilla::core

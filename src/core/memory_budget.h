// A RAM ledger modelling the MICA2's 4 KB data memory, reproducing the
// paper's "3.59KB of data memory" accounting (abstract / Sec. 1). Every
// sized structure the middleware allocates registers a line item; the
// bench_memory_footprint binary prints the table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace agilla::core {

class MemoryBudget {
 public:
  struct Item {
    std::string label;
    std::size_t bytes = 0;
  };

  void add(std::string label, std::size_t bytes) {
    items_.push_back(Item{std::move(label), bytes});
  }

  [[nodiscard]] const std::vector<Item>& items() const { return items_; }
  [[nodiscard]] std::size_t total_bytes() const;

  /// MICA2 data memory (paper Sec. 3.1).
  static constexpr std::size_t kMica2RamBytes = 4 * 1024;

  [[nodiscard]] std::string to_table() const;

 private:
  std::vector<Item> items_;
};

}  // namespace agilla::core
